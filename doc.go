// Package ttmqo is a from-scratch reproduction of "Two-Tier Multiple Query
// Optimization for Sensor Networks" (Xiang, Lim, Tan, Zhou — ICDCS 2007):
// a complete sensor-network query-processing stack with the paper's
// two-tier multi-query optimizer on top of a packet-level network
// simulator.
//
// # Architecture
//
// Tier 1 (base-station optimization, §3.1) rewrites the live set of user
// queries into a smaller set of synthetic queries using a cost-based greedy
// algorithm, and derives every user query's results from the synthetic
// streams. Tier 2 (in-network optimization, §3.2) executes the injected
// queries inside the network, sharing sampling across queries on a
// GCD-aligned epoch clock, routing results over a query-aware DAG instead
// of TinyDB's fixed tree, packing one radio message for all queries a
// reading serves, and letting data-less nodes sleep.
//
// The substrate is a deterministic discrete-event simulator with a
// broadcast radio medium (airtime, carrier queueing, contention-dependent
// collisions and retransmissions), a TinyDB-dialect query language, and a
// seeded spatially/temporally correlated sensor field — everything the
// paper ran on TinyDB/TOSSIM, rebuilt in pure Go with no dependencies
// beyond the standard library.
//
// # Quick start
//
//	topo, _ := ttmqo.PaperGrid(4) // 16 nodes, 20ft spacing, 50ft range
//	sim, _ := ttmqo.NewSimulation(ttmqo.SimulationConfig{
//		Topo:   topo,
//		Scheme: ttmqo.SchemeTTMQO,
//		Seed:   1,
//	})
//	id, _ := sim.Post(ttmqo.MustParseQuery(
//		"SELECT nodeid, light WHERE light > 200 EPOCH DURATION 4096ms"))
//	sim.Run(5 * time.Minute)
//	for _, epoch := range sim.Results().RowsFor(id) {
//		fmt.Println(epoch.Time, epoch.Rows)
//	}
//
// The tier-1 optimizer is also usable standalone (see NewOptimizer), and
// the experiment harnesses under RunFigure… regenerate every figure of the
// paper's evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
//
// # Commands
//
// Five programs under cmd/ exercise the stack end to end:
//
//   - ttmqo-bench regenerates the paper's evaluation figures
//     (-fig, -minutes, -runs, -parallel, -seed, -json, -md,
//     -cpuprofile, -memprofile).
//   - ttmqo-sim runs one scenario from flags (-side, -scheme, -workload,
//     -minutes, -seed, -alpha, -concurrency, -queries, -runs, -parallel,
//     -mtbf, -mttr, -v, -trace, -field, -json, -series, -sample,
//     -cpuprofile, -memprofile).
//   - ttmqo-workload generates, inspects and replays JSON workload files
//     (gen/show/run subcommands; -kind, -out, -seed, -queries,
//     -concurrency, -minutes, -side, -scheme, -compare, -parallel, -json).
//   - ttmqo-shell is an interactive console over a live simulation.
//   - ttmqo-serve is the multi-client serving gateway: TCP
//     newline-delimited JSON with semantic dedup, rate limiting and
//     bounded fan-out (-addr, -side, -scheme, -seed, -alpha, -tick,
//     -quantum, -buffer, -quota, -rate, -burst, -mtbf, -mttr, -json,
//     -series, -sample), plus a load-generator mode (-loadgen, -clients,
//     -rounds, -pool, -churn, -maxsubs) and a sharded federation mode
//     (-shards, -waldir) fronting several region-partitioned gateways
//     with a consistent-hash, aggregate-recombining router.
//
// The gateway is also a library: NewGateway wraps a Simulation in a
// goroutine-safe session/subscription front end whose group-commit
// mailbox keeps concurrent use deterministic, and RunLoadgen drives it
// with synthetic clients.
package ttmqo
