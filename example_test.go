package ttmqo_test

import (
	"fmt"
	"time"

	ttmqo "repro"
)

// Example runs two queries through the full two-tier stack and reads back
// an aggregate stream.
func Example() {
	topo, _ := ttmqo.PaperGrid(4)
	sim, _ := ttmqo.NewSimulation(ttmqo.SimulationConfig{
		Topo:   topo,
		Scheme: ttmqo.SchemeTTMQO,
		Seed:   7,
	})
	ids, _ := sim.PostBatch([]ttmqo.Query{
		ttmqo.MustParseQuery("SELECT nodeid, light WHERE light > 200 EPOCH DURATION 4096"),
		ttmqo.MustParseQuery("SELECT MAX(light) WHERE light > 250 EPOCH DURATION 8192"),
	})
	sim.Run(30 * time.Second)

	fmt.Printf("%d queries ran as %d synthetic\n", len(ids), sim.Optimizer().SyntheticCount())
	agg := sim.Results().AggsFor(ids[1])
	fmt.Printf("MAX(light) epochs delivered: %d\n", len(agg))
	// Output:
	// 2 queries ran as 1 synthetic
	// MAX(light) epochs delivered: 3
}

// ExampleParseQuery shows the TinyDB dialect the library accepts.
func ExampleParseQuery() {
	q, err := ttmqo.ParseQuery(
		"SELECT AVG(temp) WHERE 10 < temp AND temp < 90 GROUP BY nodeid BUCKET 4 EPOCH DURATION 8192 LIFETIME 60s")
	if err != nil {
		panic(err)
	}
	fmt.Println(q.IsAggregation(), q.Epoch, q.Lifetime)
	// Output: true 8.192s 1m0s
}

// ExampleOptimizer shows the tier-1 optimizer used standalone: feed it user
// queries, apply the returned changes to your own network.
func ExampleOptimizer() {
	topo, _ := ttmqo.PaperGrid(4)
	model, _ := ttmqo.NewCostModel(topo.LevelSizes(), ttmqo.CostConfig{})
	opt := ttmqo.NewOptimizer(model, ttmqo.OptimizerOptions{Alpha: ttmqo.DefaultAlpha})

	q1 := ttmqo.MustParseQuery("SELECT light WHERE 100 < light AND light < 300 EPOCH DURATION 8192")
	q1.ID = 1
	q2 := ttmqo.MustParseQuery("SELECT light WHERE 150 < light AND light < 500 EPOCH DURATION 8192")
	q2.ID = 2

	ch1, _ := opt.Insert(q1)
	fmt.Printf("q1: inject %d, abort %d\n", len(ch1.Inject), len(ch1.Abort))
	ch2, _ := opt.Insert(q2)
	fmt.Printf("q2: inject %d, abort %d (merged)\n", len(ch2.Inject), len(ch2.Abort))
	fmt.Println("synthetic queries running:", opt.SyntheticCount())
	// Output:
	// q1: inject 1, abort 0
	// q2: inject 1, abort 1 (merged)
	// synthetic queries running: 1
}

// ExampleOptimizer_Explain shows the EXPLAIN facility.
func ExampleOptimizer_Explain() {
	topo, _ := ttmqo.PaperGrid(4)
	model, _ := ttmqo.NewCostModel(topo.LevelSizes(), ttmqo.CostConfig{})
	opt := ttmqo.NewOptimizer(model, ttmqo.OptimizerOptions{})

	q1 := ttmqo.MustParseQuery("SELECT light, temp WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	q1.ID = 1
	q2 := ttmqo.MustParseQuery("SELECT light WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	q2.ID = 2
	opt.Insert(q1)
	opt.Insert(q2)

	e, _ := opt.Explain(2)
	fmt.Println("shared with:", e.SharedWith)
	fmt.Println(e.Steps[0])
	// Output:
	// shared with: [1]
	// decimate epochs: deliver every 4.096s of the 2.048s stream
}
