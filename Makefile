GO ?= go

.PHONY: build test race vet bench bench-parallel bench-check bench-baseline serve-soak chaos-soak admin-smoke trace-smoke fuzz clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The parallel-runner benchmarks: the figure sweep at 1 worker vs one per
# CPU, and the field generator's hot path.
bench-parallel:
	$(GO) test -run '^$$' -bench 'Figure3Parallel|FieldReading' -benchmem .

# The serving hot-path regression gate: run the serve benchmark suite
# (binary vs JSON encode, fan-out, WAL append, dedup lookup) and compare
# against the committed baseline in BENCH_serve.json. Only the
# machine-independent gauges are gated — the binary/JSON speedup ratio and
# allocations per delivered message — so the check is stable across CI
# runners; a >10% regression of either exits non-zero.
bench-check:
	$(GO) run ./cmd/ttmqo-bench -benchcheck BENCH_serve.json

# Refresh the committed serve-suite baseline after intentional hot-path
# changes (commit the regenerated BENCH_serve.json with the change).
bench-baseline:
	$(GO) run ./cmd/ttmqo-bench -benchout BENCH_serve.json

# A short gateway soak under the race detector: 120 concurrent clients
# churning subscriptions through the serving tier, with the admin plane
# mounted. At the end of the soak the load generator scrapes its own
# /metrics endpoint and validates the Prometheus exposition with the
# decoder-side parser — a malformed exposition (or any data race) exits
# non-zero. The printed report includes dedup ratio, latency percentiles
# and the one-line metrics summary.
serve-soak:
	$(GO) run -race ./cmd/ttmqo-serve -loadgen -clients 120 -rounds 16 -pool 10 -seed 1 -admin 127.0.0.1:0

# The admin-plane smoke drill: build the real ttmqo-serve binary, boot it
# with -admin and the built-in crash drill, curl every endpoint, and assert
# the readiness transition (200 -> 503 during the outage -> 200 after WAL
# replay) over the process boundary.
admin-smoke:
	$(GO) test -race -count=1 -v -run TestAdminSmoke ./cmd/ttmqo-serve

# The causal-tracing smoke drill: boot the real binary as a sharing
# coordinator over a two-shard federation router, subscribe over the TCP
# wire with a client-pinned trace ID, and assert the end-to-end story from
# outside the process — the ID echoes on the ack, every update carries it
# plus a provenance stamp, and /tracez?trace=<id> exports a span chain
# walking gateway -> router -> share up to the share/subscribe root.
trace-smoke:
	$(GO) test -race -count=1 -v -run TestTraceSmoke ./cmd/ttmqo-serve

# The chaos soak under the race detector: scripted fault scenarios — node
# churn, loss bursts, partitions, and gateway crash/recover cycles mid-run —
# with the delivery invariants (no duplicates, no sequence gaps, bounded
# completeness loss, no goroutine leaks) asserted after the drain. The
# federation soak reruns the router-tier drills (kill-a-shard,
# partition-the-router) across seeds under the same invariants, and the
# share soak crashes the gateway underneath the sharing coordinator while
# cached replay and live delivery interleave. The overload soak swaps fault
# injection for demand: thundering-herd admission storms, a slow-loris
# subscriber that stops reading, and a shard wedged without crashing, with
# the resilience invariants (bounded mailbox depth, honored retry-after,
# degraded-not-deadlocked watermarks) asserted on top of the delivery ones.
chaos-soak:
	$(GO) test -race -count=1 -v -run 'TestChaosSoak|TestCrashRecoveryInvariants|TestFederationChaosSoak|TestShareChaosSoak|TestOverloadChaosSoak' ./internal/chaos

# A short fuzz pass over the grammar-adjacent surfaces: the query parser's
# robustness invariants (never panic; accepted input round-trips) and the
# canonical dedup/CSE key's byte-stability under predicate reordering,
# duplicate entries and whitespace noise. The seeded corpora live in the
# fuzz tests themselves; this budget is sized for CI.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/query
	$(GO) test -run '^$$' -fuzz FuzzCanonicalKey -fuzztime 10s ./internal/gateway

clean:
	rm -f ttmqo-bench ttmqo-sim ttmqo-workload ttmqo-shell ttmqo-serve
