GO ?= go

.PHONY: build test race vet bench bench-parallel serve-soak chaos-soak clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The parallel-runner benchmarks: the figure sweep at 1 worker vs one per
# CPU, and the field generator's hot path.
bench-parallel:
	$(GO) test -run '^$$' -bench 'Figure3Parallel|FieldReading' -benchmem .

# A short gateway soak under the race detector: 120 concurrent clients
# churning subscriptions through the serving tier. Exits non-zero on any
# data race; the printed report includes dedup ratio and latency
# percentiles.
serve-soak:
	$(GO) run -race ./cmd/ttmqo-serve -loadgen -clients 120 -rounds 16 -pool 10 -seed 1

# The chaos soak under the race detector: scripted fault scenarios — node
# churn, loss bursts, partitions, and gateway crash/recover cycles mid-run —
# with the delivery invariants (no duplicates, no sequence gaps, bounded
# completeness loss, no goroutine leaks) asserted after the drain.
chaos-soak:
	$(GO) test -race -count=1 -v -run 'TestChaosSoak|TestCrashRecoveryInvariants' ./internal/chaos

clean:
	rm -f ttmqo-bench ttmqo-sim ttmqo-workload ttmqo-shell ttmqo-serve
