GO ?= go

.PHONY: build test race vet bench bench-parallel clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The parallel-runner benchmarks: the figure sweep at 1 worker vs one per
# CPU, and the field generator's hot path.
bench-parallel:
	$(GO) test -run '^$$' -bench 'Figure3Parallel|FieldReading' -benchmem .

clean:
	rm -f ttmqo-bench ttmqo-sim ttmqo-workload ttmqo-shell
