package ttmqo

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/gateway"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// These tests pin the docs to the code: every command must be documented,
// every flag a doc line attributes to a command must exist in that
// command's sources, and every flag a command declares must be documented
// somewhere. They are the drift check for README.md and doc.go.

// flagDeclRe matches a flag declaration, e.g. flag.String("json", …) or
// fs.Bool("compare", …).
var flagDeclRe = regexp.MustCompile(`\.(String|Int|Int64|Bool|Float64|Duration)\("([a-z][a-z0-9-]*)"`)

// flagMentionRe matches a "-flag" token in prose or a shell example. The
// leading boundary excludes hyphenated words ("in-network", "base-station");
// a match must follow start-of-line, whitespace, a backtick, '(' or '['.
var flagMentionRe = regexp.MustCompile("(?:^|[\\s`(\\[])-([a-z][a-z0-9-]*)")

// commands returns the cmd/* program names.
func commands(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no commands under cmd/")
	}
	return names
}

// declaredFlags returns the set of flag names a command's sources declare.
func declaredFlags(t *testing.T, cmd string) map[string]bool {
	t.Helper()
	srcs, err := filepath.Glob(filepath.Join("cmd", cmd, "*.go"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("no sources for %s: %v", cmd, err)
	}
	flags := map[string]bool{}
	for _, src := range srcs {
		b, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range flagDeclRe.FindAllStringSubmatch(string(b), -1) {
			flags[m[2]] = true
		}
	}
	return flags
}

func readDoc(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDocsMentionEveryCommand: README.md and the package docs must list
// every program under cmd/.
func TestDocsMentionEveryCommand(t *testing.T) {
	readme := readDoc(t, "README.md")
	pkgdoc := readDoc(t, "doc.go")
	for _, cmd := range commands(t) {
		if !strings.Contains(readme, cmd) {
			t.Errorf("README.md does not mention %s", cmd)
		}
		if !strings.Contains(pkgdoc, cmd) {
			t.Errorf("doc.go does not mention %s", cmd)
		}
	}
}

// TestDocsFlagsExist: any "-flag" on a doc line that names a command must
// be declared by one of the commands named on that line; a "-flag" on a
// line naming no command must at least be declared by some command.
func TestDocsFlagsExist(t *testing.T) {
	cmds := commands(t)
	decls := map[string]map[string]bool{}
	union := map[string]bool{}
	for _, cmd := range cmds {
		decls[cmd] = declaredFlags(t, cmd)
		for f := range decls[cmd] {
			union[f] = true
		}
	}
	for _, path := range []string{"README.md", "doc.go"} {
		for i, line := range strings.Split(readDoc(t, path), "\n") {
			if strings.Contains(line, "go test") {
				continue // go's own flags (-bench, -run, -race, …)
			}
			mentions := flagMentionRe.FindAllStringSubmatch(line, -1)
			if len(mentions) == 0 {
				continue
			}
			var onLine []string
			for _, cmd := range cmds {
				if strings.Contains(line, cmd) {
					onLine = append(onLine, cmd)
				}
			}
			for _, m := range mentions {
				flag := m[1]
				if len(onLine) == 0 {
					if !union[flag] {
						t.Errorf("%s:%d: -%s is not a flag of any command", path, i+1, flag)
					}
					continue
				}
				ok := false
				for _, cmd := range onLine {
					if decls[cmd][flag] {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("%s:%d: -%s is not a flag of %s", path, i+1, flag, strings.Join(onLine, "/"))
				}
			}
		}
	}
}

// TestCommandFlagsDocumented: every flag a command declares must be
// mentioned in README.md, doc.go, or the command's own doc comment — new
// flags must not ship undocumented.
func TestCommandFlagsDocumented(t *testing.T) {
	readme := readDoc(t, "README.md")
	pkgdoc := readDoc(t, "doc.go")
	for _, cmd := range commands(t) {
		var comment strings.Builder
		srcs, _ := filepath.Glob(filepath.Join("cmd", cmd, "*.go"))
		for _, src := range srcs {
			for _, line := range strings.Split(readDoc(t, src), "\n") {
				if strings.HasPrefix(strings.TrimSpace(line), "//") {
					comment.WriteString(line)
					comment.WriteString("\n")
				}
			}
		}
		docs := readme + pkgdoc + comment.String()
		for flag := range declaredFlags(t, cmd) {
			if !strings.Contains(docs, "-"+flag) {
				t.Errorf("%s: flag -%s is documented nowhere (README.md, doc.go, doc comment)", cmd, flag)
			}
		}
	}
}

// TestDocsCoverChaosScenarios: the EXPERIMENTS.md scenario walkthrough
// must cover every parser directive and every builtin scenario, and the
// README's chaos section must name the entry-point flags — the drift
// check for the fault-injection surface.
func TestDocsCoverChaosScenarios(t *testing.T) {
	doc := readDoc(t, "EXPERIMENTS.md")
	for _, d := range chaos.Directives() {
		if !strings.Contains(doc, d) {
			t.Errorf("EXPERIMENTS.md does not document scenario directive %q", d)
		}
	}
	readme := readDoc(t, "README.md")
	for _, n := range chaos.BuiltinNames() {
		if !strings.Contains(doc, n) {
			t.Errorf("EXPERIMENTS.md does not mention builtin scenario %q", n)
		}
		if !strings.Contains(readme, n) {
			t.Errorf("README.md does not mention builtin scenario %q", n)
		}
	}
	for _, f := range []string{"-chaos", "-wal", "-crash-after", "-readtimeout", "-crashround"} {
		if !strings.Contains(readme, f) {
			t.Errorf("README.md does not mention chaos/recovery flag %s", f)
		}
	}
	if !strings.Contains(readme, "chaos-soak") {
		t.Error("README.md does not mention the chaos-soak make target")
	}
}

// TestDocsCoverWireFormat: the README's wire-protocol section must state
// the magic byte and wire version the codec actually uses, name the wire
// flags and the benchmark-gate workflow, and the benchmark suite the gate
// runs must be walked through in EXPERIMENTS.md with its committed
// baseline file. This is the drift check for the serving hot path.
func TestDocsCoverWireFormat(t *testing.T) {
	readme := readDoc(t, "README.md")
	experiments := readDoc(t, "EXPERIMENTS.md")
	// The documented constants must match the code.
	if want := fmt.Sprintf("0x%X", gateway.FrameMagic); !strings.Contains(readme, want) {
		t.Errorf("README.md does not state the frame magic byte %s", want)
	}
	if want := fmt.Sprintf("`%d`", gateway.WireVersion); !strings.Contains(readme, want) {
		t.Errorf("README.md does not state wire version %d", gateway.WireVersion)
	}
	for _, f := range []string{"-wire", "-net", "-for", "-benchout", "-benchcheck"} {
		if !strings.Contains(readme, f) {
			t.Errorf("README.md does not mention wire/bench flag %s", f)
		}
	}
	for _, target := range []string{"bench-check", "bench-baseline"} {
		if !strings.Contains(readme, target) {
			t.Errorf("README.md does not mention the %s make target", target)
		}
	}
	if !strings.Contains(readme, "BENCH_serve.json") {
		t.Error("README.md does not mention the committed baseline BENCH_serve.json")
	}
	if _, err := os.Stat("BENCH_serve.json"); err != nil {
		t.Errorf("committed baseline BENCH_serve.json missing: %v", err)
	}
	// Every row of the serve suite must be walked through in EXPERIMENTS.md.
	for _, row := range []string{
		"encode/binary", "encode/json", "fanout/binary", "fanout/json",
		"fanout/burst", "wal/binary", "wal/json", "dedup/interned", "dedup/string",
	} {
		if !strings.Contains(experiments, row) {
			t.Errorf("EXPERIMENTS.md does not mention serve benchmark row %q", row)
		}
	}
}

// TestDocsCoverFederation: README.md must document the sharded router
// tier — the flags that start it, the federation fault drills and the
// scaling figure — and EXPERIMENTS.md must walk through the drills and
// the router metric families. This is the drift check for the federation
// surface.
func TestDocsCoverFederation(t *testing.T) {
	readme := readDoc(t, "README.md")
	experiments := readDoc(t, "EXPERIMENTS.md")
	for _, f := range []string{"-shards", "-waldir"} {
		if !strings.Contains(readme, f) {
			t.Errorf("README.md does not mention federation flag %s", f)
		}
	}
	if !strings.Contains(readme, "-fig federation") {
		t.Error("README.md does not mention the federation scaling figure (-fig federation)")
	}
	for _, n := range chaos.FedScenarioNames() {
		if !strings.Contains(readme, n) {
			t.Errorf("README.md does not mention federation drill %q", n)
		}
		if !strings.Contains(experiments, n) {
			t.Errorf("EXPERIMENTS.md does not walk through federation drill %q", n)
		}
	}
	// The router metric families the docs walk through must be real
	// registered names — a rename in federation/telemetry.go must show up
	// here.
	for _, fam := range []string{
		"ttmqo_router_up",
		"ttmqo_router_alive_shards",
		"ttmqo_router_merge_latency_seconds",
		"ttmqo_router_merged_epochs_total",
		"ttmqo_router_partial_updates_total",
		"ttmqo_router_upstream_resumes_total",
		"ttmqo_shard_up",
		"ttmqo_shard_virtual_time_seconds",
	} {
		if !strings.Contains(readme+experiments, fam) {
			t.Errorf("docs do not mention federation metric family %s", fam)
		}
	}
}

// TestDocsCoverShare: README.md must document the cross-query sharing
// layer — the serve flags that mount it, the study figure and the chaos
// drill — and EXPERIMENTS.md must walk through the study, the drill and
// the sharing rows of the serve bench suite. The metric families the
// docs name must be the registered ones. This is the drift check for
// the sharing/caching surface.
func TestDocsCoverShare(t *testing.T) {
	readme := readDoc(t, "README.md")
	experiments := readDoc(t, "EXPERIMENTS.md")
	for _, f := range []string{"-share", "-cache-window"} {
		if !strings.Contains(readme, f) {
			t.Errorf("README.md does not mention sharing flag %s", f)
		}
	}
	if !strings.Contains(readme, "-fig share") {
		t.Error("README.md does not mention the sharing study (-fig share)")
	}
	if !strings.Contains(readme, chaos.ShareScenarioName) {
		t.Errorf("README.md does not mention the sharing drill %q", chaos.ShareScenarioName)
	}
	if !strings.Contains(experiments, chaos.ShareScenarioName) {
		t.Errorf("EXPERIMENTS.md does not walk through the sharing drill %q", chaos.ShareScenarioName)
	}
	// The sharing rows of the serve bench suite must be walked through
	// next to the committed baseline they are gated against.
	for _, row := range []string{"share/ttfr-cold", "share/ttfr-warm"} {
		if !strings.Contains(experiments, row) {
			t.Errorf("EXPERIMENTS.md does not mention serve benchmark row %q", row)
		}
	}
	// The metric families the docs walk through must be real registered
	// names — a rename in share/telemetry.go must show up here.
	for _, fam := range []string{
		"ttmqo_share_fragment_reuse_ratio",
		"ttmqo_share_fragments_created_total",
		"ttmqo_share_fragments_reused_total",
		"ttmqo_share_fragments_active",
		"ttmqo_cache_hit_ratio",
		"ttmqo_cache_hits_total",
		"ttmqo_cache_replayed_epochs_total",
	} {
		if !strings.Contains(readme+experiments, fam) {
			t.Errorf("docs do not mention sharing metric family %s", fam)
		}
	}
	if !strings.Contains(readme, "FuzzCanonicalKey") {
		t.Error("README.md does not mention the canonical-key fuzz harness")
	}
	if !strings.Contains(readme, "make fuzz") {
		t.Error("README.md does not mention the fuzz make target")
	}
}

// TestDocsCoverResilience: README.md must document the overload layer —
// the admission-control flags, the drill names and the bench gate — and
// EXPERIMENTS.md must walk through the drills, the resilience metric
// families and the gated overload rows of the serve suite. This is the
// drift check for the overload/degraded-mode surface.
func TestDocsCoverResilience(t *testing.T) {
	readme := readDoc(t, "README.md")
	experiments := readDoc(t, "EXPERIMENTS.md")
	for _, f := range []string{"-max-staged", "-mailbox-deadline", "-max-live-subs", "-write-timeout"} {
		if !strings.Contains(readme, f) {
			t.Errorf("README.md does not mention admission-control flag %s", f)
		}
	}
	for _, n := range chaos.OverloadScenarioNames() {
		if !strings.Contains(readme, n) {
			t.Errorf("README.md does not mention overload drill %q", n)
		}
		if !strings.Contains(experiments, n) {
			t.Errorf("EXPERIMENTS.md does not walk through overload drill %q", n)
		}
	}
	// The gated overload rows and their committed gauge must be walked
	// through next to the baseline that gates them.
	for _, row := range []string{"overload/first-result-unloaded", "overload/p99-under-herd"} {
		if !strings.Contains(experiments, row) {
			t.Errorf("EXPERIMENTS.md does not mention serve benchmark row %q", row)
		}
	}
	if !strings.Contains(readme+experiments, "overload_p99_ratio") {
		t.Error("docs do not mention the gated overload_p99_ratio gauge")
	}
	// The resilience metric families the docs walk through must be real
	// registered names — a rename in any tier's telemetry.go must show up
	// here.
	for _, fam := range []string{
		"ttmqo_resilience_shed_queue_total",
		"ttmqo_resilience_shed_deadline_total",
		"ttmqo_resilience_shed_subs_total",
		"ttmqo_resilience_shed_brownout_total",
		"ttmqo_resilience_brownout_escalations_total",
		"ttmqo_resilience_brownout_recoveries_total",
		"ttmqo_resilience_brownout_level",
		"ttmqo_resilience_breaker_trips_total",
		"ttmqo_resilience_breaker_probes_total",
		"ttmqo_resilience_breaker_recoveries_total",
		"ttmqo_resilience_breaker_state",
		"ttmqo_resilience_degraded_epochs_total",
		"ttmqo_resilience_shard_stalls_total",
		"ttmqo_resilience_stalled_shards",
		"ttmqo_resilience_router_shed_deadline_total",
		"ttmqo_resilience_replay_sheds_total",
		"ttmqo_resilience_share_shed_deadline_total",
		"ttmqo_resilience_share_degraded_epochs_total",
	} {
		if !strings.Contains(readme+experiments, fam) {
			t.Errorf("docs do not mention resilience metric family %s", fam)
		}
	}
}

// TestDocsCoverAdminPlane: README.md must document every admin HTTP
// endpoint the server actually serves, the flags that mount it, and the
// smoke-drill make target; EXPERIMENTS.md must show the readiness drill.
// This is the drift check for the telemetry surface.
func TestDocsCoverAdminPlane(t *testing.T) {
	readme := readDoc(t, "README.md")
	experiments := readDoc(t, "EXPERIMENTS.md")
	for _, ep := range telemetry.Endpoints() {
		if !strings.Contains(readme, ep) {
			t.Errorf("README.md does not document admin endpoint %s", ep)
		}
		if !strings.Contains(experiments, ep) {
			t.Errorf("EXPERIMENTS.md does not mention admin endpoint %s", ep)
		}
	}
	for _, f := range []string{"-admin", "-crash-outage"} {
		if !strings.Contains(readme, f) {
			t.Errorf("README.md does not mention admin-plane flag %s", f)
		}
	}
	for _, target := range []string{"admin-smoke", "serve-soak"} {
		if !strings.Contains(readme, target) {
			t.Errorf("README.md does not mention the %s make target", target)
		}
	}
	// The metric families the docs walk through must be real registered
	// names — a rename in telemetry.go must show up here.
	for _, fam := range []string{
		"ttmqo_gateway_up",
		"ttmqo_gateway_admitted_total",
		"ttmqo_wal_appends_total",
		"ttmqo_node_energy_joules",
		"ttmqo_energy_total_joules",
		"ttmqo_sim_virtual_time_seconds",
		"ttmqo_query_time_to_first_result_seconds",
		"ttmqo_gateway_recoveries_total",
	} {
		if !strings.Contains(readme+experiments, fam) {
			t.Errorf("docs do not mention metric family %s", fam)
		}
	}
}

// TestDocsCoverTracing: README.md must document the causal-tracing
// surface — the trace-dump flag, the smoke-drill make target, the
// per-trace JSON export and the wire provenance fields — and both docs
// must name every span kind a tier can record plus the tracing metric
// families and the gated bench gauges. This is the drift check for the
// tracing/provenance surface.
func TestDocsCoverTracing(t *testing.T) {
	readme := readDoc(t, "README.md")
	experiments := readDoc(t, "EXPERIMENTS.md")
	if !strings.Contains(readme, "-trace-dump") {
		t.Error("README.md does not mention the -trace-dump flag")
	}
	for _, target := range []string{"trace-smoke"} {
		if !strings.Contains(readme, target) {
			t.Errorf("README.md does not mention the %s make target", target)
		}
	}
	for _, doc := range []string{readme, experiments} {
		if !strings.Contains(doc, "/tracez?trace=") {
			t.Error("docs do not show the per-trace JSON export path /tracez?trace=")
			break
		}
	}
	// The wire-level provenance fields must be documented by their JSON
	// names.
	for _, field := range []string{"trace_id", "prov", "shard_mask"} {
		if !strings.Contains(readme, field) {
			t.Errorf("README.md does not document the wire field %q", field)
		}
	}
	// Every span kind a tier can record must be named somewhere in the
	// docs — a new hop kind must not ship undocumented.
	for _, kind := range []string{
		tracing.KindSubscribe, tracing.KindAdmit, tracing.KindDedupHit,
		tracing.KindFirstResult, tracing.KindFanout, tracing.KindShed,
		tracing.KindWALReplay, tracing.KindCrash, tracing.KindReattach,
		tracing.KindShardFanout, tracing.KindMergeRelease, tracing.KindDegraded,
		tracing.KindBreakerOpen, tracing.KindBreakerClose,
		tracing.KindCSEHit, tracing.KindResidualAdmit, tracing.KindCacheReplay,
	} {
		if !strings.Contains(readme+experiments, kind) {
			t.Errorf("docs do not mention span kind %q", kind)
		}
	}
	// The tracing metric families the docs walk through must be real
	// registered names.
	for _, fam := range []string{
		"ttmqo_trace_spans_recorded_total",
		"ttmqo_trace_spans_dropped_total",
		"ttmqo_trace_hop_latency_seconds",
	} {
		if !strings.Contains(readme+experiments, fam) {
			t.Errorf("docs do not mention tracing metric family %s", fam)
		}
	}
	// The gated cost gauges and the traced bench row must be walked
	// through next to the baseline that gates them.
	if !strings.Contains(experiments, "fanout/traced") {
		t.Error("EXPERIMENTS.md does not mention the fanout/traced serve benchmark row")
	}
	for _, gauge := range []string{"tracing_overhead_ratio", "traced_allocs_per_message"} {
		if !strings.Contains(readme+experiments, gauge) {
			t.Errorf("docs do not mention the gated %s gauge", gauge)
		}
	}
}
