// Command ttmqo-shell is an interactive console for a simulated sensor
// network: pose and stop TinyDB-dialect queries, advance virtual time, and
// inspect the optimizer and radio state.
//
// Usage:
//
//	ttmqo-shell [-side N] [-scheme ttmqo] [-seed S] [-series out.csv] [-sample 30s]
//
// Commands:
//
//	post <query>        admit a query, e.g. post SELECT light WHERE light > 200 EPOCH DURATION 4096
//	load <file.json>    admit a workload file (see ttmqo-workload)
//	stop <id>           terminate query <id>
//	run <seconds>       advance virtual time
//	results <id> [n]    show the last n (default 3) delivered epochs
//	queries             list live user queries
//	synthetic           list running synthetic queries (tier-1 schemes)
//	explain <id>        how the base station serves query <id>
//	stats               radio accounting
//	manifest            print the run's identifying manifest as JSON
//	export <file.json>  write the run's machine-readable export so far
//	map                 ASCII map of node states and transmit load
//	trace [n|summary]   tail the event log / summarize it
//	fail <id>           fail a node; revive <id> brings it back
//	help                this text
//	quit
//
// With -series, the session's metrics are sampled every -sample of virtual
// time and written as CSV on quit.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"flag"

	ttmqo "repro"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ttmqo-shell:", err)
		os.Exit(1)
	}
}

func run() error {
	side := flag.Int("side", 4, "grid side length")
	schemeName := flag.String("scheme", "ttmqo", "baseline, base-station, in-network or ttmqo")
	seed := flag.Int64("seed", 1, "random seed")
	seriesOut := flag.String("series", "", "write the session's sampled time series as CSV on quit")
	sample := flag.Duration("sample", ttmqo.DefaultSampleInterval, "virtual-time sampling interval for -series")
	flag.Parse()

	var scheme ttmqo.Scheme
	for _, sc := range []ttmqo.Scheme{
		ttmqo.SchemeBaseline, ttmqo.SchemeBSOnly, ttmqo.SchemeInNetworkOnly, ttmqo.SchemeTTMQO,
	} {
		if sc.String() == *schemeName {
			scheme = sc
		}
	}
	if scheme == 0 {
		return fmt.Errorf("unknown scheme %q", *schemeName)
	}
	topo, err := ttmqo.PaperGrid(*side)
	if err != nil {
		return err
	}
	buf := &ttmqo.Trace{Max: 10000}
	sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
		Topo: topo, Scheme: scheme, Seed: *seed, Trace: buf,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ttmqo-shell: %d-node grid, scheme %s. Type 'help'.\n", topo.Size(), scheme)

	sh := &shell{sim: sim, trace: buf}
	if *seriesOut != "" {
		sh.series = sim.StartSeries(*sample)
	}
	flush := func() error {
		if sh.series == nil {
			return nil
		}
		f, err := os.Create(*seriesOut)
		if err != nil {
			return err
		}
		if err := sh.series.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("series: %s (%d samples)\n", *seriesOut, sh.series.Len())
		return nil
	}
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("[t=%v] > ", time.Duration(sim.Engine().Now()).Round(time.Millisecond))
		if !scanner.Scan() {
			fmt.Println()
			if err := flush(); err != nil {
				return err
			}
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return flush()
		}
		sh.exec(line)
	}
}

type shell struct {
	sim    *ttmqo.Simulation
	trace  *ttmqo.Trace
	series *ttmqo.TimeSeries
}

func (s *shell) exec(line string) {
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case "help":
		fmt.Println("post <query> | stop <id> | run <seconds> | results <id> [n] | queries | synthetic | explain <id> | stats | manifest | export <file> | map | trace [n|summary] | fail <id> | revive <id> | quit")
	case "load":
		f, err := os.Open(strings.TrimSpace(rest))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		ws, err := workload.LoadJSON(f)
		f.Close()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		now := time.Duration(s.sim.Engine().Now())
		for _, w := range ws {
			q := w.Query
			q.ID = 0 // let the simulation assign fresh IDs
			if w.Arrive <= now {
				if id, err := s.sim.Post(q); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Printf("query %d admitted\n", id)
				}
				continue
			}
			q.ID = s.sim.NextID()
			s.sim.PostAt(w.Arrive, q)
			fmt.Printf("query %d scheduled for t=%v\n", q.ID, w.Arrive)
		}
	case "post":
		q, err := ttmqo.ParseQuery(rest)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		id, err := s.sim.Post(q)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("query %d admitted: %s\n", id, q)
	case "stop":
		id, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			fmt.Println("error: stop <id>")
			return
		}
		if err := s.sim.Cancel(ttmqo.QueryID(id)); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("query %d terminated\n", id)
	case "run":
		secs, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil || secs <= 0 {
			fmt.Println("error: run <seconds>")
			return
		}
		s.sim.Run(time.Duration(secs * float64(time.Second)))
		fmt.Printf("advanced to t=%v\n", time.Duration(s.sim.Engine().Now()).Round(time.Millisecond))
	case "results":
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			fmt.Println("error: results <id> [n]")
			return
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			fmt.Println("error: results <id> [n]")
			return
		}
		n := 3
		if len(fields) > 1 {
			if v, err := strconv.Atoi(fields[1]); err == nil {
				n = v
			}
		}
		s.printResults(ttmqo.QueryID(id), n)
	case "queries":
		if opt := s.sim.Optimizer(); opt != nil {
			for _, q := range opt.UserQueries() {
				fmt.Printf("  q%d: %s\n", q.ID, q)
			}
			return
		}
		fmt.Println("  (baseline/in-network scheme: queries run unrewritten; use results <id>)")
	case "explain":
		opt := s.sim.Optimizer()
		if opt == nil {
			fmt.Println("  (this scheme has no base-station optimizer)")
			return
		}
		id, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			fmt.Println("error: explain <id>")
			return
		}
		e, err := opt.Explain(ttmqo.QueryID(id))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		for _, line := range strings.Split(e.String(), "\n") {
			fmt.Println(" ", line)
		}
	case "synthetic":
		opt := s.sim.Optimizer()
		if opt == nil {
			fmt.Println("  (this scheme has no base-station optimizer)")
			return
		}
		for _, sq := range opt.SyntheticQueries() {
			fmt.Printf("  syn %d serves %v: %s\n", sq.ID, opt.FromList(sq.ID), sq)
		}
	case "stats":
		fmt.Printf("  avg transmission time: %.4f%%\n", s.sim.AvgTransmissionTime()*100)
		fmt.Printf("  %s\n", s.sim.Metrics())
	case "manifest":
		m := s.sim.Manifest()
		m.Study = "shell"
		if err := ttmqo.WriteJSON(os.Stdout, m.Hashed()); err != nil {
			fmt.Println("error:", err)
		}
	case "export":
		path := strings.TrimSpace(rest)
		if path == "" {
			fmt.Println("error: export <file.json>")
			return
		}
		if err := s.export(path); err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("wrote %s\n", path)
	case "map":
		s.printMap()
	case "trace":
		arg := strings.TrimSpace(rest)
		if arg == "summary" {
			fmt.Println(" ", s.trace.Summary())
			return
		}
		n := 10
		if v, err := strconv.Atoi(arg); err == nil && v > 0 {
			n = v
		}
		for _, e := range s.trace.Tail(n) {
			fmt.Println(" ", e)
		}
	case "fail", "revive":
		id, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || id <= 0 {
			fmt.Printf("error: %s <node id>\n", cmd)
			return
		}
		if cmd == "fail" {
			s.sim.FailNode(ttmqo.NodeID(id))
			fmt.Printf("node %d failed\n", id)
		} else {
			s.sim.ReviveNode(ttmqo.NodeID(id))
			fmt.Printf("node %d revived\n", id)
		}
	default:
		fmt.Printf("unknown command %q (try help)\n", cmd)
	}
}

// export writes the session's run export — manifest, radio metrics so far,
// optimizer state and any sampled series — as JSON.
func (s *shell) export(path string) error {
	m := s.sim.Manifest()
	m.Study = "shell"
	m.DurationMS = time.Duration(s.sim.Engine().Now()).Milliseconds()
	re := ttmqo.RunExport{
		Manifest: m.Hashed(),
		Metrics: ttmqo.CollectFinalMetrics(s.sim.Metrics(),
			time.Duration(s.sim.Engine().Now()), ttmqo.DefaultEnergyModel()),
		Series: s.series,
	}
	if opt := s.sim.Optimizer(); opt != nil {
		re.Optimizer = &ttmqo.OptimizerState{
			UserQueries:      opt.UserCount(),
			SyntheticQueries: opt.SyntheticCount(),
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ttmqo.WriteJSON(f, re); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (s *shell) printResults(id ttmqo.QueryID, n int) {
	rows := s.sim.Results().RowsFor(id)
	aggs := s.sim.Results().AggsFor(id)
	if len(rows) == 0 && len(aggs) == 0 {
		fmt.Println("  no results yet")
		return
	}
	for i := max(0, len(rows)-n); i < len(rows); i++ {
		ep := rows[i]
		fmt.Printf("  t=%v: %d rows\n", time.Duration(ep.Time), len(ep.Rows))
		for _, r := range ep.Rows {
			fmt.Printf("    node %d: %v\n", r.Node, r.Values)
		}
	}
	for i := max(0, len(aggs)-n); i < len(aggs); i++ {
		ep := aggs[i]
		fmt.Printf("  t=%v:", time.Duration(ep.Time))
		for _, r := range ep.Results {
			label := r.Agg.String()
			if r.Group != 0 {
				label = fmt.Sprintf("%s[g%d]", r.Agg, r.Group)
			}
			if r.Empty {
				fmt.Printf(" %s=∅", label)
			} else {
				fmt.Printf(" %s=%.1f", label, r.Value)
			}
		}
		fmt.Println()
	}
}

// printMap renders the deployment as an ASCII grid: per node its state
// (B=base station, o=awake, z=asleep, X=down) and a 0–9 transmit-load heat
// digit scaled to the busiest node.
func (s *shell) printMap() {
	topo := s.sim.Topology()
	type cell struct {
		x, y float64
		id   ttmqo.NodeID
	}
	cells := make([]cell, 0, topo.Size())
	var maxTx time.Duration
	for i := 0; i < topo.Size(); i++ {
		id := ttmqo.NodeID(i)
		p := topo.Position(id)
		cells = append(cells, cell{x: p.X, y: p.Y, id: id})
		if tx := s.sim.Metrics().TxTime(id); tx > maxTx {
			maxTx = tx
		}
	}
	// Group rows by Y, order columns by X.
	rows := map[float64][]cell{}
	var ys []float64
	for _, c := range cells {
		if _, ok := rows[c.y]; !ok {
			ys = append(ys, c.y)
		}
		rows[c.y] = append(rows[c.y], c)
	}
	sortFloats(ys)
	fmt.Println("  state:                     tx load (0-9):")
	for _, y := range ys {
		row := rows[y]
		for i := 1; i < len(row); i++ {
			for j := i; j > 0 && row[j].x < row[j-1].x; j-- {
				row[j], row[j-1] = row[j-1], row[j]
			}
		}
		var state, heat strings.Builder
		for _, c := range row {
			state.WriteString(" ")
			heat.WriteString(" ")
			switch {
			case c.id == 0:
				state.WriteString("B")
			case s.sim.Node(c.id).Down():
				state.WriteString("X")
			case s.sim.Node(c.id).Asleep():
				state.WriteString("z")
			default:
				state.WriteString("o")
			}
			if maxTx == 0 {
				heat.WriteString("0")
			} else {
				h := int(9 * float64(s.sim.Metrics().TxTime(c.id)) / float64(maxTx))
				heat.WriteString(strconv.Itoa(h))
			}
		}
		pad := 26 - state.Len()
		if pad < 2 {
			pad = 2
		}
		fmt.Printf("  %s%s%s\n", state.String(), strings.Repeat(" ", pad), heat.String())
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
