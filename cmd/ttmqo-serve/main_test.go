package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// procOutput accumulates the child process's output across goroutines.
type procOutput struct {
	mu sync.Mutex
	sb strings.Builder
}

func (p *procOutput) add(line string) {
	p.mu.Lock()
	p.sb.WriteString(line + "\n")
	p.mu.Unlock()
}

func (p *procOutput) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sb.String()
}

// TestAdminSmoke is the end-to-end drill behind `make admin-smoke`: it
// builds the real binary, boots it with -admin and the built-in
// crash/recovery drill, and asserts the admin plane's contract over the
// process boundary — every endpoint answers, /metrics parses under the
// decoder-side validator, and /readyz reads 200 before the crash, 503
// during the held outage, and 200 again once WAL replay recovers the
// gateway, while /healthz stays 200 throughout.
func TestAdminSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the serve binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ttmqo-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-admin", "127.0.0.1:0",
		"-wal", filepath.Join(dir, "gw.wal"),
		"-crash-after", "1s",
		"-crash-outage", "1500ms",
		"-tick", "50ms",
		"-quantum", "512ms",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Collect output and surface the admin address when it is printed.
	adminCh := make(chan string, 1)
	out := &procOutput{}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			l := sc.Text()
			out.add(l)
			if rest, ok := strings.CutPrefix(l, "ttmqo-serve: admin on http://"); ok {
				select {
				case adminCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()

	var admin string
	select {
	case admin = <-adminCh:
	case <-time.After(15 * time.Second):
		t.Fatalf("admin address never printed; output so far:\n%s", out.String())
	}
	base := "http://" + admin
	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// Phase 1: all endpoints answer while the gateway is up.
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before crash = %d (%s), want 200", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", code)
	}
	samples, err := telemetry.ParseExposition(body)
	if err != nil {
		t.Fatalf("/metrics malformed: %v\n%s", err, body)
	}
	for _, name := range []string{
		"ttmqo_gateway_up",
		"ttmqo_gateway_admitted_total",
		"ttmqo_wal_appends_total",
		"ttmqo_radio_messages_total",
		"ttmqo_node_energy_joules",
		"ttmqo_query_time_to_first_result_seconds_count",
	} {
		if _, ok := telemetry.FindSample(samples, name); !ok {
			t.Errorf("/metrics lacks %s", name)
		}
	}
	code, body = get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d, want 200", code)
	}
	var status map[string]any
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, body)
	}
	gwSection, ok := status["gateway"].(map[string]any)
	if !ok {
		t.Fatalf("/statusz lacks a gateway section: %s", body)
	}
	if alive, ok := gwSection["alive"].(bool); !ok || !alive {
		t.Fatalf("/statusz gateway.alive = %v, want true: %s", gwSection["alive"], body)
	}
	if _, ok := status["resilience"].(map[string]any); !ok {
		t.Fatalf("/statusz lacks a resilience section: %s", body)
	}
	if _, ok := status["tracing"]; !ok {
		t.Fatalf("/statusz lacks a tracing section: %s", body)
	}
	if code, _ := get("/tracez"); code != http.StatusOK {
		t.Fatalf("/tracez = %d, want 200", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d, want 200", code)
	}

	// Phase 2: the -crash-after drill fires at 1s and holds the gateway
	// down for 1.5s; poll until /readyz reports the outage.
	sawOutage := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, _ := get("/readyz")
		if code == http.StatusServiceUnavailable {
			sawOutage = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !sawOutage {
		t.Fatalf("/readyz never went 503 during the crash drill; output:\n%s", out.String())
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during outage = %d, want 200 (process liveness)", code)
	}

	// Phase 3: recovery flips readiness back.
	recovered := false
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, _ := get("/readyz")
		if code == http.StatusOK {
			recovered = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("/readyz never recovered to 200 after WAL replay; output:\n%s", out.String())
	}
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics after recovery = %d, want 200", code)
	}
	samples, err = telemetry.ParseExposition(body)
	if err != nil {
		t.Fatalf("/metrics malformed after recovery: %v", err)
	}
	if s, ok := telemetry.FindSample(samples, "ttmqo_gateway_recoveries_total"); !ok || s.Value < 1 {
		t.Fatalf("recoveries_total after drill = %+v, want >= 1", s)
	}

	// Clean shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited non-zero: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not exit after SIGTERM; output:\n%s", out.String())
	}
}

// TestTraceSmoke is the end-to-end drill behind `make trace-smoke`: it
// boots the real binary in its deepest composition — sharing coordinator
// over a two-shard federation router — subscribes over the real TCP wire
// with a client-pinned trace ID, and asserts the whole causal story from
// the outside: the pinned ID echoes on the subscribed ack, every
// delivered update carries it plus a non-empty provenance stamp, and the
// admin plane's /tracez?trace=<id> JSON export contains a span chain that
// walks gateway → router → share tiers up to the share/subscribe root.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the serve binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ttmqo-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-admin", "127.0.0.1:0",
		"-shards", "2",
		"-side", "3",
		"-share",
		"-tick", "50ms",
		"-quantum", "2048ms",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	addrCh := make(chan string, 1)
	adminCh := make(chan string, 1)
	out := &procOutput{}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			l := sc.Text()
			out.add(l)
			if rest, ok := strings.CutPrefix(l, "ttmqo-serve: sharing coordinator on "); ok {
				if f := strings.Fields(rest); len(f) > 0 {
					select {
					case addrCh <- f[0]:
					default:
					}
				}
			}
			if rest, ok := strings.CutPrefix(l, "ttmqo-serve: admin on http://"); ok {
				select {
				case adminCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	var addr, admin string
	for addr == "" || admin == "" {
		select {
		case addr = <-addrCh:
		case admin = <-adminCh:
		case <-time.After(15 * time.Second):
			t.Fatalf("serve banners never printed (addr=%q admin=%q); output so far:\n%s",
				addr, admin, out.String())
		}
	}

	// Subscribe over the binary wire with a client-pinned trace identity.
	// The query straddles the shard boundary (2 shards × side 3 → sensors
	// 1..16, split 8|9), so serving it exercises share fragmentation AND
	// router shard fan-out.
	const pinned = uint64(0xC0FFEE)
	cl, err := gateway.Dial(addr, gateway.ClientConfig{Binary: true, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer cl.Close()
	if _, err := cl.Hello("trace-smoke", ""); err != nil {
		t.Fatalf("hello: %v", err)
	}
	sub, err := cl.SubscribeRetry(
		"SELECT SUM(light) WHERE nodeid >= 5 AND nodeid <= 12 EPOCH DURATION 2048ms",
		"s1", gateway.RetryConfig{TraceID: pinned})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if sub.TraceID != pinned {
		t.Fatalf("subscribed ack echoes trace %#x, want the pinned %#x", sub.TraceID, pinned)
	}

	// Every delivered update must carry the trace and a provenance stamp.
	var update gateway.Response
	for {
		resp, err := cl.Recv()
		if err != nil {
			t.Fatalf("recv: %v\noutput:\n%s", err, out.String())
		}
		if resp.Type == gateway.TypeError {
			t.Fatalf("server error while waiting for an update: %s", resp.Error)
		}
		if (resp.Type == gateway.TypeRows || resp.Type == gateway.TypeAgg) && resp.Sub == sub.Sub {
			update = resp
			break
		}
	}
	if update.TraceID != pinned {
		t.Fatalf("delivered update carries trace %#x, want %#x", update.TraceID, pinned)
	}
	if update.Prov == nil {
		t.Fatalf("delivered update carries no provenance stamp: %+v", update)
	}
	if update.Prov.Frags < 1 {
		t.Fatalf("provenance reports %d fragments, want >= 1: %+v", update.Prov.Frags, update.Prov)
	}
	if update.Prov.ShardMask == 0 {
		t.Fatalf("provenance reports an empty shard mask for a shard-straddling query: %+v", update.Prov)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get("http://" + admin + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// The text tree view names the pinned trace in hex.
	if code, body := get("/tracez"); code != http.StatusOK ||
		!strings.Contains(body, fmt.Sprintf("trace %016x", pinned)) {
		t.Fatalf("/tracez = %d, want 200 naming trace %016x:\n%s", code, pinned, body)
	}

	// The JSON export for the pinned trace must contain a causal chain
	// that starts at a gateway-tier span and walks parent links through
	// the router tier to a share/subscribe root.
	code, body := get(fmt.Sprintf("/tracez?trace=%d", pinned))
	if code != http.StatusOK {
		t.Fatalf("/tracez?trace=%d = %d (%s), want 200", pinned, code, body)
	}
	var tr tracing.TraceSpans
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("trace export is not JSON: %v\n%s", err, body)
	}
	if tr.Trace != pinned {
		t.Fatalf("export is for trace %#x, want %#x", tr.Trace, pinned)
	}
	byID := map[uint64]tracing.Span{}
	for _, s := range tr.Spans {
		byID[s.ID] = s
	}
	sawChain := false
	for _, s := range tr.Spans {
		if s.Tier != tracing.TierGateway {
			continue
		}
		tiers := map[string]bool{}
		cur, ok := s, true
		for ok {
			tiers[cur.Tier] = true
			if cur.Parent == 0 {
				break
			}
			cur, ok = byID[cur.Parent]
		}
		if ok && tiers[tracing.TierGateway] && tiers[tracing.TierRouter] && tiers[tracing.TierShare] &&
			cur.Tier == tracing.TierShare && cur.Kind == tracing.KindSubscribe {
			sawChain = true
			break
		}
	}
	if !sawChain {
		t.Fatalf("no gateway-tier span walks up through router and share to a share/subscribe root:\n%s", body)
	}

	// Clean shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited non-zero: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not exit after SIGTERM; output:\n%s", out.String())
	}
}
