package main

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
	"sync"

	"repro/internal/tracing"
)

// traceSet owns the per-tier causal-trace flight recorders for one serve
// deployment. The recorders are caller-owned, so they survive the tier
// that crashed beneath them (gateway.Recover reuses the same Config and
// keeps appending to the same ring), and everything the admin plane
// serves — the /tracez span trees, the per-trace JSON export, the
// ttmqo_trace_* metric families — reads from this one set.
type traceSet struct {
	mu   sync.Mutex
	recs []*tracing.Recorder
}

func newTraceSet() *traceSet { return &traceSet{} }

// rec mounts one tier's flight recorder.
func (t *traceSet) rec(tier string) *tracing.Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := tracing.New(tier, 0)
	t.recs = append(t.recs, r)
	return r
}

// shardRec memoizes per-shard gateway recorders, so a shard rebuilt after
// a crash keeps its flight history instead of starting an empty ring.
func (t *traceSet) shardRec() func(int) *tracing.Recorder {
	byShard := map[int]*tracing.Recorder{}
	var mu sync.Mutex
	return func(i int) *tracing.Recorder {
		mu.Lock()
		defer mu.Unlock()
		if r, ok := byShard[i]; ok {
			return r
		}
		r := t.rec(tracing.TierGateway)
		byShard[i] = r
		return r
	}
}

func (t *traceSet) recorders() []*tracing.Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*tracing.Recorder(nil), t.recs...)
}

func (t *traceSet) collect() *tracing.Export { return tracing.Collect(t.recorders()...) }

// renderTrees writes the /tracez cross-tier span-tree view.
func (t *traceSet) renderTrees(w io.Writer) { tracing.RenderTrees(w, t.collect()) }

// traceJSON serves /tracez?trace=<id>: one trace's spans as JSON. IDs
// parse as decimal or as the hex the tree view prints; the literal "all"
// exports every trace (the whole flight-recorder contents).
func (t *traceSet) traceJSON(id string) ([]byte, bool) {
	e := t.collect()
	if id == "all" {
		return e.JSON(), true
	}
	n, err := strconv.ParseUint(id, 10, 64)
	if err != nil {
		n, err = strconv.ParseUint(id, 16, 64)
		if err != nil {
			return nil, false
		}
	}
	tr, ok := e.Trace(n)
	if !ok {
		return nil, false
	}
	data, merr := json.MarshalIndent(tr, "", "  ")
	if merr != nil {
		return nil, false
	}
	return append(data, '\n'), true
}

// summary is the /statusz tracing section: per-tier flight-recorder
// occupancy.
func (t *traceSet) summary() any {
	type tierSum struct {
		Tier     string `json:"tier"`
		Recorded uint64 `json:"recorded"`
		Dropped  uint64 `json:"dropped"`
	}
	byTier := map[string]*tierSum{}
	var order []string
	for _, r := range t.recorders() {
		s := byTier[r.Tier()]
		if s == nil {
			s = &tierSum{Tier: r.Tier()}
			byTier[r.Tier()] = s
			order = append(order, r.Tier())
		}
		rec, drop := r.Stats()
		s.Recorded += rec
		s.Dropped += drop
	}
	out := make([]tierSum, 0, len(order))
	for _, tier := range order {
		out = append(out, *byTier[tier])
	}
	return out
}

// dump writes the full trace export to path: the crash drill's
// post-mortem. The rings are owned here, not by the crashed tier, so the
// dump carries everything recorded up to (and including) the crash span.
func (t *traceSet) dump(path string) error {
	return os.WriteFile(path, t.collect().JSON(), 0o644)
}
