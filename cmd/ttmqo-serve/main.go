// Command ttmqo-serve runs the concurrent query-serving gateway in front
// of a simulated sensor network, speaking a length-prefixed binary wire
// protocol (with a JSON debug fallback) over TCP, or drives it with the
// built-in load generators.
//
// Usage:
//
//	ttmqo-serve [-addr :7443] [-side N] [-scheme ttmqo] [-seed S] [-alpha A]
//	            [-tick 250ms] [-quantum 2048ms] [-buffer B] [-quota Q]
//	            [-rate R] [-burst K] [-mtbf D] [-mttr D] [-wal gw.wal]
//	            [-readtimeout 75s] [-write-timeout 30s]
//	            [-max-staged N] [-mailbox-deadline D] [-max-live-subs N]
//	            [-crash-after D] [-crash-outage D]
//	            [-admin 127.0.0.1:9090] [-wire binary]
//	            [-json out.json] [-series out.csv] [-sample 30s]
//	ttmqo-serve -shards K [-waldir DIR] [-addr :7443] [-side N] [-scheme S]
//	            [-seed S] [-alpha A] [-tick 250ms] [-quantum 2048ms]
//	            [-buffer B] [-quota Q] [-rate R] [-burst K] [-mtbf D] [-mttr D]
//	            [-admin 127.0.0.1:9090] [-wire binary]
//	ttmqo-serve -loadgen [-clients 100] [-rounds 24] [-pool 12] [-churn 0.35]
//	            [-maxsubs 2] [-crashround R] [-wal gw.wal] [-seed S]
//	            [-side N] [-scheme ttmqo] [-buffer B] [-admin 127.0.0.1:0]
//	            [-json out.json]
//	ttmqo-serve -loadgen -net [-for 3s] [-clients C] [-maxsubs M] [-pool P]
//	            [-side N] [-seed S] [-wire binary]
//
// Serving mode: clients connect over TCP and send one JSON request per
// line — {"op":"subscribe","query":"SELECT ..."}, {"op":"unsubscribe",
// "sub":N}, {"op":"stats"}, {"op":"ping"} heartbeats, optionally
// {"op":"hello","client":"name"} first — and receive result epochs as they
// are produced. A hello carrying "wire":"binary" (or any request sent as a
// binary frame) switches the response stream to the binary codec; -wire
// json pins the server to newline-delimited JSON for debugging with nc or
// scripts, ignoring such upgrades. A wall-clock pacer advances the
// simulation by -quantum of virtual time every -tick. Semantically equal
// subscriptions (after normalization) share one in-network query; a
// subscriber that stalls -buffer results behind is evicted; a connection
// silent past -readtimeout is dropped (0 keeps the 75s default; negative
// disables). SIGINT drains the gateway and, with -json, writes the obs run
// export (including the gateway counters) before exiting.
//
// Overload resilience: -max-staged bounds the group-commit mailbox (new
// subscribes past the bound are shed with an "overloaded" error carrying a
// retry-after hint, and sustained pressure walks the brownout ladder:
// cache replay off, then fan-out batching, then rejecting all new
// admissions); -mailbox-deadline sheds subscribes whose mailbox sojourn
// exceeded their budget (a per-request deadline_ms overrides it);
// -max-live-subs caps concurrently live subscriptions fleet-wide; and
// -write-timeout drops connections that stop reading their result stream
// (slow-loris defense; 0 keeps the 30s default, negative disables). In
// sharded mode the bounds apply per shard, each shard's backend sits
// behind a circuit breaker, and epochs released without full shard
// coverage are marked degraded with a coverage fraction. The admin plane
// exposes everything under the ttmqo_resilience_* families.
//
// Crash recovery: with -wal, committed session/subscription lifecycle is
// write-ahead logged there, and a restart over a non-empty log recovers the
// previous run by deterministic replay — clients re-attach with their hello
// token and resume streams from their last-seen sequence number. -crash-after
// (requires -wal) kills the gateway abruptly after that wall-clock delay,
// then recovers it and re-serves on the same address: a built-in
// crash/recovery drill. -crash-outage holds the gateway down for that long
// before recovery starts, so readiness probes can observe the outage.
//
// Federation: -shards K (K > 1) shards the deployment into K
// region-partitioned simulations, each behind its own gateway, fronted by
// a consistent-hash router speaking the same wire protocol — sessions
// hash to home shards, cross-shard queries split their nodeid region
// predicate per shard and re-aggregate (SUM/COUNT/MIN/MAX/AVG) at the
// router, and shards advance in parallel. -side sizes each shard's grid,
// so K shards simulate K*(side²-1) sensors with global ids 1..K*(side²-1).
// -waldir gives every shard a write-ahead log (DIR/shard-<i>.wal) so a
// crashed shard can be rebuilt and its canonical upstream streams resumed
// in place. Sharded serving is incompatible with -loadgen, -wal,
// -crash-after, -json and -series. The admin plane exposes per-shard
// ttmqo_shard_* families and the router merge-latency histogram.
//
// Admin plane: -admin mounts an HTTP server (use 127.0.0.1:0 for an
// ephemeral port; the bound address is printed) exposing /metrics
// (Prometheus text format), /healthz (process liveness, always 200),
// /readyz (200 while the gateway actor loop is up, 503 during a crash
// outage), /statusz (JSON gateway snapshot), /tracez (recent simulation
// trace events) and /debug/pprof. Metrics cover gateway admission and
// fan-out counters, WAL appends/compactions/size, radio traffic and
// per-node energy, and a time-to-first-result histogram fed by per-query
// lifecycle spans. The admin plane works in both serving and loadgen mode.
//
// Over-the-wire load generator (-loadgen -net): stands up a real TCP
// server and -clients concurrent socket clients that subscribe to queries
// from a -pool and count delivered result frames for -for of wall clock,
// then print the delivered-message throughput. -wire selects the encoding
// under test (binary by default, json for the comparison run).
//
// Load-generator mode (-loadgen): -clients concurrent goroutines churn
// subscriptions drawn from a -pool of distinct queries for -rounds phased
// ticks, then print admission/dedup counters, fan-out throughput and
// client-observed latency percentiles. With -crashround R (requires -wal)
// the gateway is crashed and recovered at the start of round R and every
// client reconnects and resumes mid-run. The run's obs export is
// deterministic for a given seed regardless of goroutine scheduling. With
// -admin, the load generator scrapes its own /metrics endpoint at the end
// of the soak, validates the exposition with the decoder-side parser, and
// prints a one-line summary — a malformed exposition fails the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	ttmqo "repro"
	"repro/internal/federation"
	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/share"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ttmqo-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":7443", "TCP listen address")
	side := flag.Int("side", 4, "grid side length (side² nodes)")
	schemeName := flag.String("scheme", "ttmqo", "baseline, base-station, in-network or ttmqo")
	seed := flag.Int64("seed", 1, "random seed")
	alpha := flag.Float64("alpha", ttmqo.DefaultAlpha, "termination parameter α")
	tick := flag.Duration("tick", 250*time.Millisecond, "wall-clock pacer period")
	quantum := flag.Duration("quantum", 2048*time.Millisecond, "virtual time simulated per tick")
	buffer := flag.Int("buffer", gateway.DefaultBuffer, "per-subscriber result buffer bound")
	quota := flag.Int("quota", gateway.DefaultSessionQuota, "max live subscriptions per session")
	rate := flag.Float64("rate", gateway.DefaultRate, "subscribe tokens per simulated second")
	burst := flag.Float64("burst", gateway.DefaultBurst, "token bucket burst")
	mtbf := flag.Duration("mtbf", 0, "mean time between node failures (0 disables)")
	mttr := flag.Duration("mttr", 0, "mean node down-time per failure (default 30s when -mtbf is set)")
	wal := flag.String("wal", "", "write-ahead log path; a restart over a non-empty log recovers the previous run")
	readTimeout := flag.Duration("readtimeout", 0, "per-connection read deadline (0 = 75s default, negative disables)")
	crashAfter := flag.Duration("crash-after", 0, "crash the gateway after this wall-clock delay, then recover it (requires -wal)")
	crashOutage := flag.Duration("crash-outage", 0, "hold the crashed gateway down this long before recovery so /readyz probes observe the outage")
	admin := flag.String("admin", "", "admin HTTP address for /metrics, /healthz, /readyz, /statusz, /tracez and /debug/pprof (empty disables; 127.0.0.1:0 picks a port)")
	jsonOut := flag.String("json", "", "write the obs run export (with gateway counters) as JSON to this file on exit")
	seriesOut := flag.String("series", "", "write the sampled time series as CSV to this file on exit")
	sample := flag.Duration("sample", 0, "virtual-time sampling interval (default 30s when -series/-json is set)")
	loadgen := flag.Bool("loadgen", false, "run the built-in load generator instead of serving TCP")
	clients := flag.Int("clients", 100, "loadgen: concurrent clients")
	rounds := flag.Int("rounds", 24, "loadgen: churn rounds (one quantum each)")
	pool := flag.Int("pool", 12, "loadgen: distinct queries in the shared pool")
	churn := flag.Float64("churn", 0.35, "loadgen: per-round per-client churn probability")
	maxsubs := flag.Int("maxsubs", 2, "loadgen: max live subscriptions per client")
	crashround := flag.Int("crashround", 0, "loadgen: crash and recover the gateway at the start of this round (requires -wal)")
	wire := flag.String("wire", "binary", "wire encoding: binary (default; JSON handshake upgrades to binary frames) or json (pin newline-delimited JSON, debug mode)")
	netload := flag.Bool("net", false, "loadgen: drive a real TCP server with socket clients instead of the in-process churn loadgen")
	forDur := flag.Duration("for", 3*time.Second, "netload: wall-clock duration of the -loadgen -net run")
	shards := flag.Int("shards", 1, "shard the deployment into K region partitions behind a federation router (1 = single gateway)")
	waldir := flag.String("waldir", "", "federation: per-shard write-ahead-log directory (DIR/shard-<i>.wal), enables shard crash recovery")
	shareOn := flag.Bool("share", false, "front the serving tier with the cross-query sharing coordinator (partial-aggregate CSE + windowed result cache)")
	cacheWindow := flag.Int("cache-window", 0, "share: result-cache depth in epochs (0 = default, negative disables cached replay; requires -share)")
	maxStaged := flag.Int("max-staged", 0, "admission control: shed new subscribes once this many commands are staged in the group-commit mailbox (0 disables; also arms the brownout ladder)")
	mailboxDeadline := flag.Duration("mailbox-deadline", 0, "admission control: default mailbox sojourn budget for subscribes; a per-request deadline_ms overrides (0 disables)")
	maxLiveSubs := flag.Int("max-live-subs", 0, "admission control: global cap on concurrently live subscriptions (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-connection write deadline guarding against non-reading subscribers (0 = 30s default, negative disables)")
	traceDump := flag.String("trace-dump", "", "write the causal-trace flight-recorder export as JSON to this file on exit (and immediately after a -crash-after drill's crash)")
	flag.Parse()

	switch *wire {
	case "binary", "json":
	default:
		return fmt.Errorf("-wire must be binary or json, got %q", *wire)
	}

	scheme, err := network.ParseScheme(*schemeName)
	if err != nil {
		return err
	}

	if *cacheWindow != 0 && !*shareOn {
		return fmt.Errorf("-cache-window requires -share")
	}
	if *shareOn {
		switch {
		case *loadgen:
			return fmt.Errorf("-share is incompatible with -loadgen")
		case *crashAfter > 0:
			return fmt.Errorf("-share does not compose with the -crash-after drill")
		case *jsonOut != "" || *seriesOut != "":
			return fmt.Errorf("-json/-series support only gateway-direct serving")
		}
	}

	if *shards > 1 {
		switch {
		case *loadgen:
			return fmt.Errorf("-shards is incompatible with -loadgen")
		case *wal != "":
			return fmt.Errorf("-shards uses per-shard logs; set -waldir instead of -wal")
		case *crashAfter > 0:
			return fmt.Errorf("-crash-after supports only single-gateway serving")
		case *jsonOut != "" || *seriesOut != "":
			return fmt.Errorf("-json/-series support only single-gateway serving")
		}
		return serveFederated(federation.Config{
			Shards:          *shards,
			Side:            *side,
			Seed:            *seed,
			Scheme:          scheme,
			Alpha:           *alpha,
			Buffer:          *buffer,
			SessionQuota:    *quota,
			Rate:            *rate,
			Burst:           *burst,
			WALDir:          *waldir,
			Failures:        network.FailureConfig{MTBF: *mtbf, MTTR: *mttr},
			MailboxDeadline: *mailboxDeadline,
			MaxStaged:       *maxStaged,
			MaxLiveSubs:     *maxLiveSubs,
		}, gateway.ServerConfig{
			Addr:         *addr,
			TickEvery:    *tick,
			Quantum:      *quantum,
			ReadTimeout:  *readTimeout,
			WriteTimeout: *writeTimeout,
			ForceJSON:    *wire == "json",
		}, *admin, *shareOn, *cacheWindow, *traceDump)
	}

	if *loadgen && *netload {
		rep, err := gateway.RunNetLoadgen(gateway.NetLoadConfig{
			Clients:       *clients,
			SubsPerClient: *maxsubs,
			Duration:      *forDur,
			Pool:          *pool,
			Side:          *side,
			Seed:          *seed,
			JSON:          *wire == "json",
		})
		if err != nil {
			return err
		}
		fmt.Print(rep.String())
		return nil
	}
	if *loadgen {
		return runLoadgen(gateway.LoadgenConfig{
			Clients:    *clients,
			Rounds:     *rounds,
			Quantum:    *quantum * 4, // loadgen rounds default to coarser ticks
			Pool:       *pool,
			Churn:      *churn,
			MaxSubs:    *maxsubs,
			Seed:       *seed,
			Side:       *side,
			Scheme:     scheme,
			Buffer:     *buffer,
			CrashRound: *crashround,
			WALPath:    *wal,
		}, *admin, *jsonOut)
	}
	if *crashAfter > 0 && *wal == "" {
		return fmt.Errorf("-crash-after requires -wal")
	}

	topo, err := ttmqo.PaperGrid(*side)
	if err != nil {
		return err
	}
	sm := *sample
	if sm <= 0 && (*seriesOut != "" || *jsonOut != "") {
		sm = ttmqo.DefaultSampleInterval
	}
	// The trace ring feeds the admin /tracez endpoint; its Snapshot
	// accessor is safe against the engine goroutine's concurrent Emits.
	var traceBuf *trace.Buffer
	if *admin != "" {
		traceBuf = &trace.Buffer{Max: 2048}
	}
	// Causal tracing mounts unconditionally: the flight recorder is a
	// bounded ring owned here, so it survives crash/recovery swaps and is
	// dumpable (-trace-dump) or exportable (-json) even without -admin.
	ts := newTraceSet()
	gwCfg := gateway.Config{
		Sim: network.Config{
			Topo:     topo,
			Scheme:   scheme,
			Seed:     *seed,
			Alpha:    *alpha,
			Failures: network.FailureConfig{MTBF: *mtbf, MTTR: *mttr},
			Trace:    traceBuf,
		},
		Buffer:          *buffer,
		SessionQuota:    *quota,
		Rate:            *rate,
		Burst:           *burst,
		Sample:          sm,
		WALPath:         *wal,
		MaxStaged:       *maxStaged,
		MailboxDeadline: *mailboxDeadline,
		MaxLiveSubs:     *maxLiveSubs,
		Tracer:          ts.rec(tracing.TierGateway),
	}
	srvCfg := gateway.ServerConfig{
		Addr:         *addr,
		TickEvery:    *tick,
		Quantum:      *quantum,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		ForceJSON:    *wire == "json",
	}

	// A non-empty log from a previous run means a crashed (or killed)
	// server: recover it by replay instead of starting fresh.
	var gw *gateway.Gateway
	if *wal != "" {
		if st, err := os.Stat(*wal); err == nil && st.Size() > 0 {
			gw, err = gateway.Recover(gwCfg)
			if err != nil {
				return fmt.Errorf("recover %s: %w", *wal, err)
			}
			gst, _ := gw.Stats()
			fmt.Printf("ttmqo-serve: recovered %d session(s), %d subscription(s) from %s\n",
				gst.ActiveSessions, gst.ActiveSubscriptions, *wal)
		}
	}
	if gw == nil {
		gw, err = gateway.New(gwCfg)
		if err != nil {
			return err
		}
	}
	if *shareOn {
		return serveShared(shareServeOpts{
			coord: share.Config{
				Upstream:     share.OverGateway(gw),
				Sensors:      topo.Size() - 1,
				Window:       *cacheWindow,
				Buffer:       *buffer,
				SessionQuota: *quota,
			},
			srv:       srvCfg,
			admin:     *admin,
			trace:     traceBuf,
			traces:    ts,
			traceDump: *traceDump,
			closeUp:   gw.Close,
			register: func(reg *telemetry.Registry) {
				gateway.RegisterMetrics(reg, func() *gateway.Gateway { return gw })
			},
			status: func(doc *telemetry.StatusSections) {
				if st, err := gw.Status(); err == nil {
					doc.Gateway = st
				}
				if st, err := gw.Stats(); err == nil {
					doc.Resilience = resilienceSection(st)
				}
			},
			banner: fmt.Sprintf("scheme=%s nodes=%d tick=%v quantum=%v", scheme, topo.Size(), *tick, *quantum),
		})
	}
	srv, err := gateway.NewServer(gw, srvCfg)
	if err != nil {
		gw.Close()
		return err
	}
	fmt.Printf("ttmqo-serve: listening on %s (scheme=%s nodes=%d tick=%v quantum=%v)\n",
		srv.Addr(), scheme, topo.Size(), *tick, *quantum)

	// cur tracks the live gateway across crash/recovery swaps; the admin
	// plane's readiness probe and metric gather hooks read through it.
	var cur atomic.Pointer[gateway.Gateway]
	cur.Store(gw)
	if *admin != "" {
		adm, err := startAdmin(*admin, &cur, traceBuf, ts)
		if err != nil {
			gw.Close()
			srv.Close()
			return err
		}
		defer adm.Close()
	}

	// live guards the current gateway/server pair: the crash drill swaps
	// both under the mutex while the signal handler waits to drain them.
	var mu sync.Mutex
	if *crashAfter > 0 {
		// Pin the recovered server to the originally bound address (":0"
		// resolves once, clients reconnect to the same port).
		srvCfg.Addr = srv.Addr().String()
		go func() {
			time.Sleep(*crashAfter)
			mu.Lock()
			defer mu.Unlock()
			fmt.Println("ttmqo-serve: injecting crash")
			srv.Close()
			gw.Crash()
			if *traceDump != "" {
				// The rings are owned up here, not by the crashed gateway,
				// so the dump carries everything through the crash span.
				if err := ts.dump(*traceDump); err != nil {
					fmt.Fprintln(os.Stderr, "ttmqo-serve: trace dump:", err)
				} else {
					fmt.Printf("ttmqo-serve: trace dump: %s\n", *traceDump)
				}
			}
			if *crashOutage > 0 {
				// Hold the outage so /readyz probes can observe the 503
				// window before recovery flips it back.
				time.Sleep(*crashOutage)
			}
			g2, err := gateway.Recover(gwCfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ttmqo-serve: recover:", err)
				os.Exit(1)
			}
			s2, err := gateway.NewServer(g2, srvCfg)
			if err != nil {
				g2.Close()
				fmt.Fprintln(os.Stderr, "ttmqo-serve: re-serve:", err)
				os.Exit(1)
			}
			gw, srv = g2, s2
			cur.Store(g2)
			gst, _ := gw.Stats()
			fmt.Printf("ttmqo-serve: recovered %d session(s) on %s; clients may re-attach\n",
				gst.ActiveSessions, srv.Addr())
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("ttmqo-serve: draining")

	// Drain order matters: closing the gateway first fails pending
	// commands so connection handlers unblock, then the server stops.
	mu.Lock()
	defer mu.Unlock()
	if err := gw.Close(); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	st, _ := gw.Stats()
	fmt.Printf("sessions=%d subscribes=%d dedup_hits=%d admitted=%d dedup_ratio=%.2f updates=%d evicted=%d recoveries=%d\n",
		st.Sessions, st.Subscribes, st.DedupHits, st.Admitted, st.DedupRatio(), st.Updates, st.Evicted, st.Recoveries)
	if *traceDump != "" {
		if err := ts.dump(*traceDump); err != nil {
			return err
		}
		fmt.Printf("trace dump: %s\n", *traceDump)
	}
	return writeExports(gw, *jsonOut, *seriesOut)
}

// serveFederated runs the sharded serving mode: a federation router over
// K region-partitioned gateway shards behind the same TCP server and
// wire protocol. With shareOn the router is fronted by the sharing
// coordinator, so cross-query CSE and cached replay span the whole fleet.
func serveFederated(cfg federation.Config, srvCfg gateway.ServerConfig, adminAddr string, shareOn bool, cacheWindow int, traceDump string) error {
	ts := newTraceSet()
	cfg.Tracer = ts.rec(tracing.TierRouter)
	cfg.ShardTracer = ts.shardRec()
	rt, err := federation.New(cfg)
	if err != nil {
		return err
	}
	if shareOn {
		return serveShared(shareServeOpts{
			coord: share.Config{
				Upstream:     share.OverRouter(rt),
				Sensors:      cfg.Shards * (cfg.Side*cfg.Side - 1),
				Window:       cacheWindow,
				Buffer:       cfg.Buffer,
				SessionQuota: cfg.SessionQuota,
			},
			srv:       srvCfg,
			admin:     adminAddr,
			traces:    ts,
			traceDump: traceDump,
			closeUp:   rt.Close,
			register: func(reg *telemetry.Registry) {
				federation.RegisterMetrics(reg, func() *federation.Router { return rt })
			},
			status: func(doc *telemetry.StatusSections) {
				st := rt.FedStats()
				doc.Federation = st
				doc.Resilience = fedResilienceSection(st)
			},
			banner: fmt.Sprintf("%d shards × side %d = %d sensors, scheme=%s",
				cfg.Shards, cfg.Side, cfg.Shards*(cfg.Side*cfg.Side-1), cfg.Scheme),
		})
	}
	srv, err := gateway.NewServer(rt, srvCfg)
	if err != nil {
		rt.Close()
		return err
	}
	fmt.Printf("ttmqo-serve: router on %s (%d shards × side %d = %d sensors, scheme=%s)\n",
		srv.Addr(), cfg.Shards, cfg.Side, cfg.Shards*(cfg.Side*cfg.Side-1), cfg.Scheme)

	if adminAddr != "" {
		reg := telemetry.NewRegistry()
		federation.RegisterMetrics(reg, func() *federation.Router { return rt })
		tracing.RegisterMetrics(reg, ts.recorders)
		adm := telemetry.NewAdmin(telemetry.AdminConfig{
			Registry: reg,
			Ready:    rt.Alive,
			Status: func() any {
				st := rt.FedStats()
				return telemetry.StatusSections{
					Federation: st,
					Resilience: fedResilienceSection(st),
					Tracing:    ts.summary(),
				}
			},
			Trace:     ts.renderTrees,
			TraceJSON: ts.traceJSON,
		})
		bound, err := adm.Start(adminAddr)
		if err != nil {
			rt.Close()
			srv.Close()
			return err
		}
		fmt.Printf("ttmqo-serve: admin on http://%s\n", bound)
		defer adm.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("ttmqo-serve: draining")

	// Closing the router first fails staged commands so connection
	// handlers unblock, then the server stops (the single-gateway drain
	// order, fleet-wide).
	if err := rt.Close(); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	st := rt.FedStats()
	fmt.Printf("shards=%d sessions=%d subscribes=%d dedup_hits=%d trees=%d merged_epochs=%d updates=%d merge_latency=%v\n",
		st.Shards, st.Sessions, st.Subscribes, st.DedupHits, st.Trees, st.MergedEpochs, st.Updates, rt.MergeLatency())
	if traceDump != "" {
		if err := ts.dump(traceDump); err != nil {
			return err
		}
		fmt.Printf("trace dump: %s\n", traceDump)
	}
	return nil
}

// resilienceSection distills a gateway stats snapshot into the /statusz
// resilience section: the brownout ladder and the shed counters.
func resilienceSection(st gateway.Stats) map[string]any {
	return map[string]any{
		"brownout_level":       st.BrownoutLevel,
		"brownout_escalations": st.BrownoutEscalations,
		"brownout_recoveries":  st.BrownoutRecoveries,
		"shed_queue":           st.ShedQueue,
		"shed_deadline":        st.ShedDeadline,
		"shed_subs":            st.ShedSubs,
		"shed_brownout":        st.ShedBrownout,
	}
}

// fedResilienceSection distills a federation stats snapshot into the
// /statusz resilience section: breakers, stalls and degraded releases.
func fedResilienceSection(st federation.Stats) map[string]any {
	return map[string]any{
		"shed_deadline":      st.ShedDeadline,
		"degraded_epochs":    st.DegradedEpochs,
		"stalled_shards":     st.StalledShards,
		"shard_stalls":       st.ShardStalls,
		"breaker_trips":      st.BreakerTrips,
		"breaker_probes":     st.BreakerProbes,
		"breaker_recoveries": st.BreakerRecoveries,
		"shard_crashes":      st.ShardCrashes,
		"shard_recoveries":   st.ShardRecoveries,
	}
}

// shareServeOpts parametrizes serveShared: the coordinator's config, the
// TCP server, the admin plane, and the hooks tying the tier beneath the
// coordinator into drain order and metric registration.
type shareServeOpts struct {
	coord     share.Config
	srv       gateway.ServerConfig
	admin     string
	trace     *trace.Buffer
	traces    *traceSet
	traceDump string
	closeUp   func() error
	register  func(*telemetry.Registry)
	// status fills the upstream tier's /statusz sections (gateway or
	// federation plus resilience); serveShared adds share and tracing.
	status func(*telemetry.StatusSections)
	banner string
}

// serveShared fronts the serving tier (single gateway or federation
// router) with the cross-query sharing coordinator and serves it over the
// same TCP wire protocol. On shutdown the coordinator drains first so its
// staged commands fail and connection handlers unblock, then the tier
// beneath it, then the listener.
func serveShared(o shareServeOpts) error {
	if o.traces != nil {
		o.coord.Tracer = o.traces.rec(tracing.TierShare)
	}
	coord, err := share.New(o.coord)
	if err != nil {
		o.closeUp()
		return err
	}
	srv, err := gateway.NewServer(coord, o.srv)
	if err != nil {
		coord.Close()
		o.closeUp()
		return err
	}
	cell, window := o.coord.Cell, o.coord.Window
	if cell <= 0 {
		cell = share.DefaultCell
	}
	switch {
	case window == 0:
		window = share.DefaultWindow
	case window < 0:
		window = 0
	}
	fmt.Printf("ttmqo-serve: sharing coordinator on %s (cell=%d cache-window=%d; %s)\n",
		srv.Addr(), cell, window, o.banner)

	if o.admin != "" {
		reg := telemetry.NewRegistry()
		o.register(reg)
		share.RegisterMetrics(reg, func() *share.Coordinator { return coord })
		if o.traces != nil {
			tracing.RegisterMetrics(reg, o.traces.recorders)
		}
		cfg := telemetry.AdminConfig{
			Registry: reg,
			Ready:    coord.Alive,
			Status: func() any {
				doc := telemetry.StatusSections{Share: coord.ShareStats()}
				if o.traces != nil {
					doc.Tracing = o.traces.summary()
				}
				if o.status != nil {
					o.status(&doc)
				}
				return doc
			},
		}
		if o.traces != nil {
			cfg.Trace = func(w io.Writer) {
				o.traces.renderTrees(w)
				if o.trace != nil {
					fmt.Fprintln(w, "\nsimulation events:")
					for _, e := range o.trace.Snapshot() {
						fmt.Fprintln(w, e)
					}
				}
			}
			cfg.TraceJSON = o.traces.traceJSON
		} else if o.trace != nil {
			cfg.Trace = func(w io.Writer) {
				for _, e := range o.trace.Snapshot() {
					fmt.Fprintln(w, e)
				}
			}
		}
		adm := telemetry.NewAdmin(cfg)
		bound, err := adm.Start(o.admin)
		if err != nil {
			coord.Close()
			o.closeUp()
			srv.Close()
			return err
		}
		fmt.Printf("ttmqo-serve: admin on http://%s\n", bound)
		defer adm.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("ttmqo-serve: draining")

	if err := coord.Close(); err != nil {
		return err
	}
	if err := o.closeUp(); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	st := coord.ShareStats()
	fmt.Printf("sessions=%d subscribes=%d dedup_hits=%d fragments_created=%d fragments_reused=%d reuse_ratio=%.2f cache_hits=%d replayed_epochs=%d updates=%d\n",
		st.Sessions, st.Subscribes, st.DedupHits, st.FragmentsCreated, st.FragmentsReused,
		st.FragmentReuseRatio(), st.CacheHits, st.ReplayedEpochs, st.Updates)
	if o.traceDump != "" && o.traces != nil {
		if err := o.traces.dump(o.traceDump); err != nil {
			return err
		}
		fmt.Printf("trace dump: %s\n", o.traceDump)
	}
	return nil
}

// startAdmin mounts the telemetry admin plane: a registry wired to the
// gateway behind cur (surviving crash/recovery swaps), readiness bound to
// the current gateway's actor loop, /statusz to its live snapshot and
// /tracez to the simulation trace ring.
func startAdmin(addr string, cur *atomic.Pointer[gateway.Gateway], traceBuf *trace.Buffer, ts *traceSet) (*telemetry.Admin, error) {
	reg := telemetry.NewRegistry()
	gateway.RegisterMetrics(reg, cur.Load)
	if ts != nil {
		tracing.RegisterMetrics(reg, ts.recorders)
	}
	cfg := telemetry.AdminConfig{
		Registry: reg,
		Ready: func() bool {
			g := cur.Load()
			return g != nil && g.Alive()
		},
		Status: func() any {
			doc := telemetry.StatusSections{}
			if ts != nil {
				doc.Tracing = ts.summary()
			}
			g := cur.Load()
			if g == nil {
				return doc
			}
			if st, err := g.Status(); err == nil {
				doc.Gateway = st
			}
			if st, err := g.Stats(); err == nil {
				doc.Resilience = resilienceSection(st)
			}
			return doc
		},
	}
	if ts != nil {
		cfg.Trace = func(w io.Writer) {
			ts.renderTrees(w)
			if traceBuf != nil {
				fmt.Fprintln(w, "\nsimulation events:")
				for _, e := range traceBuf.Snapshot() {
					fmt.Fprintln(w, e)
				}
			}
		}
		cfg.TraceJSON = ts.traceJSON
	} else if traceBuf != nil {
		cfg.Trace = func(w io.Writer) {
			for _, e := range traceBuf.Snapshot() {
				fmt.Fprintln(w, e)
			}
		}
	}
	adm := telemetry.NewAdmin(cfg)
	bound, err := adm.Start(addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("ttmqo-serve: admin on http://%s\n", bound)
	return adm, nil
}

// scrapeMetrics fetches url, validates the body with the decoder-side
// exposition parser, and prints a one-line summary. Any malformation is an
// error: the scrape is the load generator's end-of-soak self-check.
func scrapeMetrics(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("scrape %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	samples, err := telemetry.ParseExposition(string(body))
	if err != nil {
		return fmt.Errorf("scrape %s: malformed exposition: %w", url, err)
	}
	for _, name := range []string{
		"ttmqo_gateway_admitted_total",
		"ttmqo_wal_appends_total",
		"ttmqo_radio_messages_total",
		"ttmqo_node_energy_joules",
		"ttmqo_query_time_to_first_result_seconds_count",
	} {
		if _, ok := telemetry.FindSample(samples, name); !ok {
			return fmt.Errorf("scrape %s: exposition lacks %s", url, name)
		}
	}
	names := map[string]bool{}
	for _, s := range samples {
		names[s.Name] = true
	}
	admitted, _ := telemetry.FindSample(samples, "ttmqo_gateway_admitted_total")
	ttfr, _ := telemetry.FindSample(samples, "ttmqo_query_time_to_first_result_seconds_count")
	up, _ := telemetry.FindSample(samples, "ttmqo_gateway_up")
	fmt.Printf("metrics: %d samples across %d series, up=%g admitted=%g ttfr_count=%g (exposition valid)\n",
		len(samples), len(names), up.Value, admitted.Value, ttfr.Value)
	return nil
}

func runLoadgen(cfg gateway.LoadgenConfig, adminAddr, jsonOut string) error {
	var adm *telemetry.Admin
	if adminAddr != "" {
		var cur atomic.Pointer[gateway.Gateway]
		cfg.OnGateway = func(g *gateway.Gateway) { cur.Store(g) }
		var err error
		adm, err = startAdmin(adminAddr, &cur, nil, nil)
		if err != nil {
			return err
		}
		defer adm.Close()
	}
	rep, err := gateway.RunLoadgen(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if adm != nil {
		if err := scrapeMetrics("http://" + adm.Addr() + "/metrics"); err != nil {
			return err
		}
	}
	if jsonOut == "" {
		return nil
	}
	f, err := os.Create(jsonOut)
	if err != nil {
		return err
	}
	if err := ttmqo.WriteJSON(f, rep.Export); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("json: %s\n", jsonOut)
	return nil
}

func writeExports(gw *gateway.Gateway, jsonOut, seriesOut string) error {
	if jsonOut != "" {
		exp, err := gw.Export()
		if err != nil {
			return err
		}
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := ttmqo.WriteJSON(f, exp); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("json: %s\n", jsonOut)
	}
	if seriesOut != "" {
		ser := gw.Series()
		if ser == nil {
			return fmt.Errorf("no series sampled")
		}
		f, err := os.Create(seriesOut)
		if err != nil {
			return err
		}
		if err := ser.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("series: %s (%d samples)\n", seriesOut, ser.Len())
	}
	return nil
}
