// Command ttmqo-workload generates, inspects and replays workload files —
// JSON documents of TinyDB-dialect queries with arrival/termination times,
// shareable across runs and hand-editable.
//
// Usage:
//
//	ttmqo-workload gen -out w.json [-kind random|A|B|C] [-queries N]
//	               [-concurrency C] [-seed S]
//	ttmqo-workload show w.json
//	ttmqo-workload run w.json [-scheme ttmqo] [-side N] [-minutes M] [-seed S]
//	               [-compare] [-parallel P] [-json out.json]
//
// With -compare, run executes the workload under every scheme — fanned
// across -parallel workers (0 = one per CPU; the table is identical at any
// setting) — and prints a comparison table. -json exports the per-scheme
// rows plus a run manifest as machine-readable JSON; the bytes are
// identical at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	ttmqo "repro"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ttmqo-workload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ttmqo-workload gen|show|run ... (see -h)")
	}
	switch args[0] {
	case "gen":
		return genCmd(args[1:])
	case "show":
		return showCmd(args[1:])
	case "run":
		return runCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", "", "output file (required)")
	kind := fs.String("kind", "random", "random, A, B or C")
	queries := fs.Int("queries", 100, "number of queries (random)")
	concurrency := fs.Int("concurrency", 8, "average concurrent queries (random)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var ws []ttmqo.TimedQuery
	switch *kind {
	case "random":
		ws = ttmqo.RandomWorkload(ttmqo.RandomWorkloadConfig{
			Seed:              *seed,
			NumQueries:        *queries,
			TargetConcurrency: *concurrency,
		})
	case "A":
		ws = ttmqo.WorkloadA()
	case "B":
		ws = ttmqo.WorkloadB()
	case "C":
		ws = ttmqo.WorkloadC()
	default:
		return fmt.Errorf("gen: unknown kind %q", *kind)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := workload.SaveJSON(f, ws); err != nil {
		return err
	}
	fmt.Printf("wrote %d queries to %s\n", len(ws), *out)
	return nil
}

func loadFile(path string) ([]ttmqo.TimedQuery, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.LoadJSON(f)
}

func showCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: ttmqo-workload show <file>")
	}
	ws, err := loadFile(args[0])
	if err != nil {
		return err
	}
	var span time.Duration
	aggs := 0
	for _, w := range ws {
		if w.Depart > span {
			span = w.Depart
		}
		if w.Query.IsAggregation() {
			aggs++
		}
		arrive := "t=0"
		if w.Arrive > 0 {
			arrive = "t=" + w.Arrive.Round(time.Second).String()
		}
		life := "forever"
		if w.Depart > 0 {
			life = "until " + w.Depart.Round(time.Second).String()
		}
		fmt.Printf("  q%-4d %-10s %-14s %s\n", w.Query.ID, arrive, life, w.Query)
	}
	fmt.Printf("%d queries (%d aggregation), span %v\n", len(ws), aggs, span.Round(time.Second))
	return nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	schemeName := fs.String("scheme", "ttmqo", "baseline, base-station, in-network or ttmqo")
	side := fs.Int("side", 4, "grid side length")
	minutes := fs.Int("minutes", 0, "simulated minutes (0 = workload span + 1 min)")
	seed := fs.Int64("seed", 1, "random seed")
	compare := fs.Bool("compare", false, "run under every scheme and compare")
	parallel := fs.Int("parallel", 0, "worker pool size for -compare (0 = one worker per CPU)")
	jsonOut := fs.String("json", "", "export the per-scheme rows + manifest as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: ttmqo-workload run [flags] <file>")
	}
	ws, err := loadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	topo, err := ttmqo.PaperGrid(*side)
	if err != nil {
		return err
	}
	dur := time.Duration(*minutes) * time.Minute
	if dur == 0 {
		for _, w := range ws {
			if w.Depart > dur {
				dur = w.Depart
			}
		}
		if dur == 0 {
			dur = 9 * time.Minute
		}
		dur += time.Minute
	}

	schemes := []ttmqo.Scheme{ttmqo.SchemeBaseline, ttmqo.SchemeBSOnly, ttmqo.SchemeInNetworkOnly, ttmqo.SchemeTTMQO}
	if !*compare {
		for _, sc := range schemes {
			if sc.String() == *schemeName {
				schemes = []ttmqo.Scheme{sc}
			}
		}
		if len(schemes) != 1 {
			return fmt.Errorf("unknown scheme %q", *schemeName)
		}
	}

	// Each scheme is an independent simulation world; fan them across the
	// worker pool and print in input order (savings are computed after the
	// fact, so the parallel table matches the serial one byte for byte).
	type outcome struct {
		Scheme          string  `json:"scheme"`
		AvgTxPct        float64 `json:"avg_tx_pct"`
		SavingsPct      float64 `json:"savings_pct"`
		Messages        int     `json:"messages"`
		Retransmissions int     `json:"retransmissions"`
	}
	var tm runner.Timing
	rows, err := runner.MapTimed(*parallel, len(schemes), &tm, func(i int) (outcome, error) {
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo:           topo,
			Scheme:         schemes[i],
			Seed:           *seed,
			DiscardResults: true,
		})
		if err != nil {
			return outcome{}, err
		}
		for _, w := range ws {
			sim.PostAt(w.Arrive, w.Query)
			if w.Depart != 0 {
				sim.CancelAt(w.Depart, w.Query.ID)
			}
		}
		sim.Run(dur)
		return outcome{
			Scheme:          schemes[i].String(),
			AvgTxPct:        sim.AvgTransmissionTime() * 100,
			Messages:        sim.Metrics().Messages(),
			Retransmissions: sim.Metrics().Retransmissions(),
		}, nil
	})
	if err != nil {
		return err
	}
	var baseline float64
	fmt.Printf("%-13s %10s %9s %9s %8s\n", "scheme", "avgTx(%)", "save(%)", "messages", "retrans")
	for i, sc := range schemes {
		if sc == ttmqo.SchemeBaseline {
			baseline = rows[i].AvgTxPct
		}
		rows[i].SavingsPct = metrics.Savings(baseline, rows[i].AvgTxPct) * 100
		fmt.Printf("%-13s %10.4f %9.1f %9d %8d\n",
			sc, rows[i].AvgTxPct, rows[i].SavingsPct,
			rows[i].Messages, rows[i].Retransmissions)
	}
	if *compare {
		fmt.Printf("timing: %s\n", tm.String())
	}
	if *jsonOut != "" {
		m := ttmqo.SweepManifest("workload", *seed, dur, 1)
		m.Nodes = topo.Size()
		m.Workload = fs.Arg(0)
		if len(schemes) == 1 {
			m.Scheme = schemes[0].String()
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := ttmqo.WriteSweepJSON(f, m.Hashed(), ttmqo.SweepStudy{Name: "schemes", Rows: rows}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("json: %s\n", *jsonOut)
	}
	return nil
}
