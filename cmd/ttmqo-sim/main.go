// Command ttmqo-sim runs a single sensor-network simulation scenario and
// prints its radio accounting and result statistics.
//
// Usage:
//
//	ttmqo-sim [-side N] [-scheme baseline|base-station|in-network|ttmqo]
//	          [-workload A|B|C|random] [-minutes M] [-seed S] [-alpha A]
//	          [-concurrency C] [-queries Q] [-runs R] [-parallel P] [-v]
//
// With -workload random, the §4.3 adaptive workload is replayed (arrivals
// and terminations); otherwise the named static workload runs for the whole
// interval. With -runs R > 1 the scenario is replayed under seeds
// S..S+R-1, fanned across -parallel workers (0 = one per CPU), and a
// per-seed summary table is printed instead of the single-run detail.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	ttmqo "repro"
	"repro/internal/runner"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ttmqo-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	side := flag.Int("side", 4, "grid side length (side² nodes)")
	schemeName := flag.String("scheme", "ttmqo", "baseline, base-station, in-network or ttmqo")
	workloadName := flag.String("workload", "C", "A, B, C or random")
	minutes := flag.Int("minutes", 10, "simulated minutes")
	seed := flag.Int64("seed", 1, "random seed")
	alpha := flag.Float64("alpha", ttmqo.DefaultAlpha, "termination parameter α")
	concurrency := flag.Int("concurrency", 8, "average concurrent queries (random workload)")
	queries := flag.Int("queries", 100, "total queries (random workload)")
	runs := flag.Int("runs", 1, "replay the scenario under seeds S..S+R-1 (summary table when > 1)")
	parallel := flag.Int("parallel", 0, "worker pool size for multi-run replays (0 = one worker per CPU)")
	verbose := flag.Bool("v", false, "print per-query delivery counts")
	traceOut := flag.String("trace", "", "write the run's event log as CSV to this file")
	fieldCSV := flag.String("field", "", "replay sensor readings from this CSV trace instead of the synthetic field")
	flag.Parse()

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	topo, err := ttmqo.PaperGrid(*side)
	if err != nil {
		return err
	}
	if *runs > 1 {
		return runMany(multiConfig{
			topo: topo, scheme: scheme, seed: *seed, runs: *runs,
			parallel: *parallel, alpha: *alpha, workload: *workloadName,
			concurrency: *concurrency, queries: *queries,
			minutes: *minutes, fieldCSV: *fieldCSV,
		})
	}
	var buf *ttmqo.Trace
	if *traceOut != "" {
		buf = &ttmqo.Trace{}
	}
	var source ttmqo.Source
	if *fieldCSV != "" {
		f, err := os.Open(*fieldCSV)
		if err != nil {
			return err
		}
		source, err = ttmqo.LoadTraceCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
		Topo:           topo,
		Scheme:         scheme,
		Seed:           *seed,
		Alpha:          *alpha,
		Source:         source,
		DiscardResults: !*verbose,
		Trace:          buf,
	})
	if err != nil {
		return err
	}

	ws, err := buildWorkload(*workloadName, *seed, *queries, *concurrency)
	if err != nil {
		return err
	}
	for _, w := range ws {
		sim.PostAt(w.Arrive, w.Query)
		if w.Depart != 0 {
			sim.CancelAt(w.Depart, w.Query.ID)
		}
	}

	dur := time.Duration(*minutes) * time.Minute
	start := time.Now()
	sim.Run(dur)
	wall := time.Since(start)

	fmt.Printf("scheme=%s nodes=%d workload=%s simulated=%v wall=%v\n",
		scheme, topo.Size(), *workloadName, dur, wall.Round(time.Millisecond))
	fmt.Printf("avg transmission time: %.4f%%\n", sim.AvgTransmissionTime()*100)
	fmt.Printf("radio: %s\n", sim.Metrics())
	if lat := sim.Metrics().Latency(); lat.N() > 0 {
		fmt.Printf("result latency: mean %.0fms, max %.0fms over %d messages\n",
			lat.Mean()*1000, lat.Max()*1000, lat.N())
	}
	if opt := sim.Optimizer(); opt != nil {
		fmt.Printf("optimizer: %d live user queries in %d synthetic queries\n",
			opt.UserCount(), opt.SyntheticCount())
		for _, sq := range opt.SyntheticQueries() {
			fmt.Printf("  syn %d serves %v: %s\n", sq.ID, opt.FromList(sq.ID), sq)
		}
	}
	if buf != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := buf.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace: %s (%s)\n", *traceOut, buf.Summary())
	}
	if *verbose {
		for _, w := range ws {
			id := w.Query.ID
			if n := sim.Results().RowEpochs(id); n > 0 {
				fmt.Printf("  q%d: %d acquisition epochs\n", id, n)
			}
			if n := sim.Results().AggEpochs(id); n > 0 {
				fmt.Printf("  q%d: %d aggregation epochs\n", id, n)
			}
		}
	}
	return nil
}

func buildWorkload(name string, seed int64, queries, concurrency int) ([]ttmqo.TimedQuery, error) {
	switch name {
	case "A":
		return ttmqo.WorkloadA(), nil
	case "B":
		return ttmqo.WorkloadB(), nil
	case "C":
		return ttmqo.WorkloadC(), nil
	case "random":
		return ttmqo.RandomWorkload(ttmqo.RandomWorkloadConfig{
			Seed:              seed,
			NumQueries:        queries,
			TargetConcurrency: concurrency,
		}), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

type multiConfig struct {
	topo        *ttmqo.Topology
	scheme      ttmqo.Scheme
	seed        int64
	runs        int
	parallel    int
	alpha       float64
	workload    string
	concurrency int
	queries     int
	minutes     int
	fieldCSV    string
}

// runMany replays the scenario under runs consecutive seeds, fanned across
// the worker pool. Each replay is an independent simulation world (its own
// source, loaded per cell when replaying a CSV trace), so the per-seed rows
// are identical at any parallelism.
func runMany(cfg multiConfig) error {
	type outcome struct {
		seed    int64
		avgTx   float64
		msgs    int
		retrans int
	}
	dur := time.Duration(cfg.minutes) * time.Minute
	var tm runner.Timing
	rows, err := runner.MapTimed(cfg.parallel, cfg.runs, &tm, func(i int) (outcome, error) {
		seed := cfg.seed + int64(i)
		var source ttmqo.Source
		if cfg.fieldCSV != "" {
			f, err := os.Open(cfg.fieldCSV)
			if err != nil {
				return outcome{}, err
			}
			source, err = ttmqo.LoadTraceCSV(f)
			f.Close()
			if err != nil {
				return outcome{}, err
			}
		}
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo:           cfg.topo,
			Scheme:         cfg.scheme,
			Seed:           seed,
			Alpha:          cfg.alpha,
			Source:         source,
			DiscardResults: true,
		})
		if err != nil {
			return outcome{}, err
		}
		ws, err := buildWorkload(cfg.workload, seed, cfg.queries, cfg.concurrency)
		if err != nil {
			return outcome{}, err
		}
		for _, w := range ws {
			sim.PostAt(w.Arrive, w.Query)
			if w.Depart != 0 {
				sim.CancelAt(w.Depart, w.Query.ID)
			}
		}
		sim.Run(dur)
		return outcome{
			seed:    seed,
			avgTx:   sim.AvgTransmissionTime() * 100,
			msgs:    sim.Metrics().Messages(),
			retrans: sim.Metrics().Retransmissions(),
		}, nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("scheme=%s nodes=%d workload=%s simulated=%v runs=%d\n",
		cfg.scheme, cfg.topo.Size(), cfg.workload, dur, cfg.runs)
	fmt.Printf("%6s %10s %9s %8s\n", "seed", "avgTx(%)", "messages", "retrans")
	var tx stats.Series
	for _, r := range rows {
		tx.Add(r.avgTx)
		fmt.Printf("%6d %10.4f %9d %8d\n", r.seed, r.avgTx, r.msgs, r.retrans)
	}
	fmt.Printf("avg transmission time: %s\n", tx.String())
	fmt.Printf("timing: %s\n", tm.String())
	return nil
}

func parseScheme(s string) (ttmqo.Scheme, error) {
	for _, sc := range []ttmqo.Scheme{
		ttmqo.SchemeBaseline, ttmqo.SchemeBSOnly, ttmqo.SchemeInNetworkOnly, ttmqo.SchemeTTMQO,
	} {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}
