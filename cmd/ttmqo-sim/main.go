// Command ttmqo-sim runs a single sensor-network simulation scenario and
// prints its radio accounting and result statistics.
//
// Usage:
//
//	ttmqo-sim [-side N] [-scheme baseline|base-station|in-network|ttmqo]
//	          [-workload A|B|C|random] [-minutes M] [-seed S] [-alpha A]
//	          [-concurrency C] [-queries Q] [-runs R] [-parallel P] [-v]
//	          [-mtbf D] [-mttr D] [-chaos scenario] [-trace out.csv]
//	          [-field in.csv] [-json out.json] [-series out.csv]
//	          [-sample 30s] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -mtbf enables random node outages (mean time between failures per node);
// -mttr sets the mean repair time (30s when left zero). Failure injection
// maps straight onto the library's FailureConfig.
//
// -chaos injects a scripted fault schedule instead of (or on top of) random
// outages: the argument is a builtin scenario name (none, churn, burst,
// partition, crash, mixed) or a scenario file in the chaos text format (see
// EXPERIMENTS.md). Scenarios with gateway crash steps are rejected here —
// there is no gateway to crash; use ttmqo-serve or the chaos study for
// those. A scenario's "seed" directive overrides -seed.
//
// With -workload random, the §4.3 adaptive workload is replayed (arrivals
// and terminations); otherwise the named static workload runs for the whole
// interval. With -runs R > 1 the scenario is replayed under seeds
// S..S+R-1, fanned across -parallel workers (0 = one per CPU), and a
// per-seed summary table is printed instead of the single-run detail.
//
// -json writes a machine-readable export: for a single run, the manifest,
// final radio metrics, optimizer state and (when sampled) the time series;
// for -runs > 1, the per-seed summary rows under a sweep manifest. -series
// writes the virtual-time metrics series as CSV, sampled every -sample of
// simulated time. -cpuprofile/-memprofile write pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	ttmqo "repro"
	"repro/internal/chaos"
	"repro/internal/runner"
	"repro/internal/stats"
)

// loadScenario resolves -chaos: a readable file is parsed as scenario text,
// anything else is looked up as a builtin name.
func loadScenario(ref string) (*chaos.Scenario, error) {
	if b, err := os.ReadFile(ref); err == nil {
		return chaos.ParseScenario(string(b))
	}
	return chaos.Builtin(ref)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ttmqo-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	side := flag.Int("side", 4, "grid side length (side² nodes)")
	schemeName := flag.String("scheme", "ttmqo", "baseline, base-station, in-network or ttmqo")
	workloadName := flag.String("workload", "C", "A, B, C or random")
	minutes := flag.Int("minutes", 10, "simulated minutes")
	seed := flag.Int64("seed", 1, "random seed")
	alpha := flag.Float64("alpha", ttmqo.DefaultAlpha, "termination parameter α")
	concurrency := flag.Int("concurrency", 8, "average concurrent queries (random workload)")
	queries := flag.Int("queries", 100, "total queries (random workload)")
	runs := flag.Int("runs", 1, "replay the scenario under seeds S..S+R-1 (summary table when > 1)")
	parallel := flag.Int("parallel", 0, "worker pool size for multi-run replays (0 = one worker per CPU)")
	mtbf := flag.Duration("mtbf", 0, "mean time between node failures (0 disables failure injection)")
	mttr := flag.Duration("mttr", 0, "mean node down-time per failure (default 30s when -mtbf is set)")
	chaosRef := flag.String("chaos", "", "scripted fault scenario: builtin name or scenario file (crash steps rejected)")
	verbose := flag.Bool("v", false, "print per-query delivery counts")
	traceOut := flag.String("trace", "", "write the run's event log as CSV to this file")
	fieldCSV := flag.String("field", "", "replay sensor readings from this CSV trace instead of the synthetic field")
	jsonOut := flag.String("json", "", "write a machine-readable run export as JSON to this file")
	seriesOut := flag.String("series", "", "write the sampled time series as CSV to this file")
	sample := flag.Duration("sample", ttmqo.DefaultSampleInterval, "virtual-time sampling interval for -series/-json")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	topo, err := ttmqo.PaperGrid(*side)
	if err != nil {
		return err
	}
	var scenario *chaos.Scenario
	if *chaosRef != "" {
		scenario, err = loadScenario(*chaosRef)
		if err != nil {
			return err
		}
		if len(scenario.Crashes()) > 0 {
			return fmt.Errorf("scenario %q has gateway crash steps and ttmqo-sim has no gateway; use ttmqo-serve (-wal, -crash-after) or ttmqo-bench -fig chaos", scenario.Name)
		}
		if scenario.Seed != 0 {
			*seed = scenario.Seed
		}
	}
	if *runs > 1 {
		return runMany(multiConfig{
			topo: topo, scheme: scheme, seed: *seed, runs: *runs,
			parallel: *parallel, alpha: *alpha, workload: *workloadName,
			concurrency: *concurrency, queries: *queries,
			minutes: *minutes, fieldCSV: *fieldCSV, jsonOut: *jsonOut,
			failures: ttmqo.FailureConfig{MTBF: *mtbf, MTTR: *mttr},
			scenario: scenario,
		})
	}
	var buf *ttmqo.Trace
	if *traceOut != "" {
		buf = &ttmqo.Trace{}
	}
	var source ttmqo.Source
	if *fieldCSV != "" {
		f, err := os.Open(*fieldCSV)
		if err != nil {
			return err
		}
		source, err = ttmqo.LoadTraceCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
		Topo:           topo,
		Scheme:         scheme,
		Seed:           *seed,
		Alpha:          *alpha,
		Source:         source,
		DiscardResults: !*verbose,
		Trace:          buf,
		Failures:       ttmqo.FailureConfig{MTBF: *mtbf, MTTR: *mttr},
	})
	if err != nil {
		return err
	}

	if scenario != nil {
		chaos.Inject(sim, scenario.EngineSteps())
	}

	ws, err := buildWorkload(*workloadName, *seed, *queries, *concurrency)
	if err != nil {
		return err
	}
	for _, w := range ws {
		sim.PostAt(w.Arrive, w.Query)
		if w.Depart != 0 {
			sim.CancelAt(w.Depart, w.Query.ID)
		}
	}

	dur := time.Duration(*minutes) * time.Minute
	var series *ttmqo.TimeSeries
	if *seriesOut != "" || *jsonOut != "" {
		series = sim.StartSeries(*sample)
	}
	start := time.Now()
	sim.Run(dur)
	wall := time.Since(start)

	fmt.Printf("scheme=%s nodes=%d workload=%s simulated=%v wall=%v\n",
		scheme, topo.Size(), *workloadName, dur, wall.Round(time.Millisecond))
	fmt.Printf("avg transmission time: %.4f%%\n", sim.AvgTransmissionTime()*100)
	if *mtbf > 0 {
		fmt.Printf("failures: %d injected (mtbf=%v mttr=%v)\n", sim.Failures(), *mtbf, *mttr)
	}
	if scenario != nil {
		fmt.Printf("chaos: scenario=%s steps=%d horizon=%v\n",
			scenario.Name, len(scenario.Steps), scenario.Horizon())
	}
	fmt.Printf("radio: %s\n", sim.Metrics())
	if lat := sim.Metrics().Latency(); lat.N() > 0 {
		fmt.Printf("result latency: mean %.0fms, max %.0fms over %d messages\n",
			lat.Mean()*1000, lat.Max()*1000, lat.N())
	}
	if sm := ttmqo.SummarizeSpans(sim.Spans().Snapshot()); sm != nil {
		fmt.Printf("query spans: %d admitted, %d flooded, %d first results, ttfr p50 %.0fms p95 %.0fms\n",
			sm.Queries, sm.Flooded, sm.FirstResults, sm.TTFRP50MS, sm.TTFRP95MS)
	}
	if opt := sim.Optimizer(); opt != nil {
		fmt.Printf("optimizer: %d live user queries in %d synthetic queries\n",
			opt.UserCount(), opt.SyntheticCount())
		for _, sq := range opt.SyntheticQueries() {
			fmt.Printf("  syn %d serves %v: %s\n", sq.ID, opt.FromList(sq.ID), sq)
		}
	}
	if buf != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := buf.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace: %s (%s)\n", *traceOut, buf.Summary())
	}
	if *verbose {
		for _, w := range ws {
			id := w.Query.ID
			if n := sim.Results().RowEpochs(id); n > 0 {
				fmt.Printf("  q%d: %d acquisition epochs\n", id, n)
			}
			if n := sim.Results().AggEpochs(id); n > 0 {
				fmt.Printf("  q%d: %d aggregation epochs\n", id, n)
			}
		}
	}
	if *seriesOut != "" {
		f, err := os.Create(*seriesOut)
		if err != nil {
			return err
		}
		if err := series.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("series: %s (%d samples)\n", *seriesOut, series.Len())
	}
	if *jsonOut != "" {
		m := sim.Manifest()
		m.Study = "sim"
		m.Workload = *workloadName
		if scenario != nil {
			m.Chaos = scenario.Name
		}
		m.DurationMS = dur.Milliseconds()
		m.Runs = 1
		re := ttmqo.RunExport{
			Manifest: m.Hashed(),
			Metrics:  ttmqo.CollectFinalMetrics(sim.Metrics(), dur, ttmqo.DefaultEnergyModel()),
			Series:   series,
			Spans:    ttmqo.SummarizeSpans(sim.Spans().Snapshot()),
		}
		if opt := sim.Optimizer(); opt != nil {
			re.Optimizer = &ttmqo.OptimizerState{
				UserQueries:      opt.UserCount(),
				SyntheticQueries: opt.SyntheticCount(),
			}
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := ttmqo.WriteJSON(f, re); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("json: %s\n", *jsonOut)
	}
	return nil
}

func buildWorkload(name string, seed int64, queries, concurrency int) ([]ttmqo.TimedQuery, error) {
	switch name {
	case "A":
		return ttmqo.WorkloadA(), nil
	case "B":
		return ttmqo.WorkloadB(), nil
	case "C":
		return ttmqo.WorkloadC(), nil
	case "random":
		return ttmqo.RandomWorkload(ttmqo.RandomWorkloadConfig{
			Seed:              seed,
			NumQueries:        queries,
			TargetConcurrency: concurrency,
		}), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

type multiConfig struct {
	topo        *ttmqo.Topology
	scheme      ttmqo.Scheme
	seed        int64
	runs        int
	parallel    int
	alpha       float64
	workload    string
	concurrency int
	queries     int
	minutes     int
	fieldCSV    string
	jsonOut     string
	failures    ttmqo.FailureConfig
	scenario    *chaos.Scenario
}

// seedOutcome is one seed's summary row; exported fields so -json replays
// round-trip through encoding/json.
type seedOutcome struct {
	Seed            int64   `json:"seed"`
	AvgTxPct        float64 `json:"avg_tx_pct"`
	Messages        int     `json:"messages"`
	Retransmissions int     `json:"retransmissions"`
}

// runMany replays the scenario under runs consecutive seeds, fanned across
// the worker pool. Each replay is an independent simulation world (its own
// source, loaded per cell when replaying a CSV trace), so the per-seed rows
// are identical at any parallelism.
func runMany(cfg multiConfig) error {
	dur := time.Duration(cfg.minutes) * time.Minute
	var tm runner.Timing
	rows, err := runner.MapTimed(cfg.parallel, cfg.runs, &tm, func(i int) (seedOutcome, error) {
		seed := cfg.seed + int64(i)
		var source ttmqo.Source
		if cfg.fieldCSV != "" {
			f, err := os.Open(cfg.fieldCSV)
			if err != nil {
				return seedOutcome{}, err
			}
			source, err = ttmqo.LoadTraceCSV(f)
			f.Close()
			if err != nil {
				return seedOutcome{}, err
			}
		}
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo:           cfg.topo,
			Scheme:         cfg.scheme,
			Seed:           seed,
			Alpha:          cfg.alpha,
			Source:         source,
			DiscardResults: true,
			Failures:       cfg.failures,
		})
		if err != nil {
			return seedOutcome{}, err
		}
		if cfg.scenario != nil {
			chaos.Inject(sim, cfg.scenario.EngineSteps())
		}
		ws, err := buildWorkload(cfg.workload, seed, cfg.queries, cfg.concurrency)
		if err != nil {
			return seedOutcome{}, err
		}
		for _, w := range ws {
			sim.PostAt(w.Arrive, w.Query)
			if w.Depart != 0 {
				sim.CancelAt(w.Depart, w.Query.ID)
			}
		}
		sim.Run(dur)
		return seedOutcome{
			Seed:            seed,
			AvgTxPct:        sim.AvgTransmissionTime() * 100,
			Messages:        sim.Metrics().Messages(),
			Retransmissions: sim.Metrics().Retransmissions(),
		}, nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("scheme=%s nodes=%d workload=%s simulated=%v runs=%d\n",
		cfg.scheme, cfg.topo.Size(), cfg.workload, dur, cfg.runs)
	fmt.Printf("%6s %10s %9s %8s\n", "seed", "avgTx(%)", "messages", "retrans")
	var tx stats.Series
	for _, r := range rows {
		tx.Add(r.AvgTxPct)
		fmt.Printf("%6d %10.4f %9d %8d\n", r.Seed, r.AvgTxPct, r.Messages, r.Retransmissions)
	}
	fmt.Printf("avg transmission time: %s\n", tx.String())
	fmt.Printf("timing: %s\n", tm.String())
	if cfg.jsonOut != "" {
		m := ttmqo.SweepManifest("sim", cfg.seed, dur, cfg.runs)
		m.Scheme = cfg.scheme.String()
		m.Nodes = cfg.topo.Size()
		m.Workload = cfg.workload
		if cfg.scenario != nil {
			m.Chaos = cfg.scenario.Name
		}
		m.Alpha = cfg.alpha
		f, err := os.Create(cfg.jsonOut)
		if err != nil {
			return err
		}
		if err := ttmqo.WriteSweepJSON(f, m.Hashed(), ttmqo.SweepStudy{Name: "seeds", Rows: rows}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("json: %s\n", cfg.jsonOut)
	}
	return nil
}

func parseScheme(s string) (ttmqo.Scheme, error) {
	for _, sc := range []ttmqo.Scheme{
		ttmqo.SchemeBaseline, ttmqo.SchemeBSOnly, ttmqo.SchemeInNetworkOnly, ttmqo.SchemeTTMQO,
	} {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}
