// Command ttmqo-sim runs a single sensor-network simulation scenario and
// prints its radio accounting and result statistics.
//
// Usage:
//
//	ttmqo-sim [-side N] [-scheme baseline|base-station|in-network|ttmqo]
//	          [-workload A|B|C|random] [-minutes M] [-seed S] [-alpha A]
//	          [-concurrency C] [-queries Q] [-v]
//
// With -workload random, the §4.3 adaptive workload is replayed (arrivals
// and terminations); otherwise the named static workload runs for the whole
// interval.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	ttmqo "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ttmqo-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	side := flag.Int("side", 4, "grid side length (side² nodes)")
	schemeName := flag.String("scheme", "ttmqo", "baseline, base-station, in-network or ttmqo")
	workloadName := flag.String("workload", "C", "A, B, C or random")
	minutes := flag.Int("minutes", 10, "simulated minutes")
	seed := flag.Int64("seed", 1, "random seed")
	alpha := flag.Float64("alpha", ttmqo.DefaultAlpha, "termination parameter α")
	concurrency := flag.Int("concurrency", 8, "average concurrent queries (random workload)")
	queries := flag.Int("queries", 100, "total queries (random workload)")
	verbose := flag.Bool("v", false, "print per-query delivery counts")
	traceOut := flag.String("trace", "", "write the run's event log as CSV to this file")
	fieldCSV := flag.String("field", "", "replay sensor readings from this CSV trace instead of the synthetic field")
	flag.Parse()

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	topo, err := ttmqo.PaperGrid(*side)
	if err != nil {
		return err
	}
	var buf *ttmqo.Trace
	if *traceOut != "" {
		buf = &ttmqo.Trace{}
	}
	var source ttmqo.Source
	if *fieldCSV != "" {
		f, err := os.Open(*fieldCSV)
		if err != nil {
			return err
		}
		source, err = ttmqo.LoadTraceCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
		Topo:           topo,
		Scheme:         scheme,
		Seed:           *seed,
		Alpha:          *alpha,
		Source:         source,
		DiscardResults: !*verbose,
		Trace:          buf,
	})
	if err != nil {
		return err
	}

	var ws []ttmqo.TimedQuery
	switch *workloadName {
	case "A":
		ws = ttmqo.WorkloadA()
	case "B":
		ws = ttmqo.WorkloadB()
	case "C":
		ws = ttmqo.WorkloadC()
	case "random":
		ws = ttmqo.RandomWorkload(ttmqo.RandomWorkloadConfig{
			Seed:              *seed,
			NumQueries:        *queries,
			TargetConcurrency: *concurrency,
		})
	default:
		return fmt.Errorf("unknown workload %q", *workloadName)
	}
	for _, w := range ws {
		sim.PostAt(w.Arrive, w.Query)
		if w.Depart != 0 {
			sim.CancelAt(w.Depart, w.Query.ID)
		}
	}

	dur := time.Duration(*minutes) * time.Minute
	start := time.Now()
	sim.Run(dur)
	wall := time.Since(start)

	fmt.Printf("scheme=%s nodes=%d workload=%s simulated=%v wall=%v\n",
		scheme, topo.Size(), *workloadName, dur, wall.Round(time.Millisecond))
	fmt.Printf("avg transmission time: %.4f%%\n", sim.AvgTransmissionTime()*100)
	fmt.Printf("radio: %s\n", sim.Metrics())
	if lat := sim.Metrics().Latency(); lat.N() > 0 {
		fmt.Printf("result latency: mean %.0fms, max %.0fms over %d messages\n",
			lat.Mean()*1000, lat.Max()*1000, lat.N())
	}
	if opt := sim.Optimizer(); opt != nil {
		fmt.Printf("optimizer: %d live user queries in %d synthetic queries\n",
			opt.UserCount(), opt.SyntheticCount())
		for _, sq := range opt.SyntheticQueries() {
			fmt.Printf("  syn %d serves %v: %s\n", sq.ID, opt.FromList(sq.ID), sq)
		}
	}
	if buf != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := buf.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace: %s (%s)\n", *traceOut, buf.Summary())
	}
	if *verbose {
		for _, w := range ws {
			id := w.Query.ID
			if n := sim.Results().RowEpochs(id); n > 0 {
				fmt.Printf("  q%d: %d acquisition epochs\n", id, n)
			}
			if n := sim.Results().AggEpochs(id); n > 0 {
				fmt.Printf("  q%d: %d aggregation epochs\n", id, n)
			}
		}
	}
	return nil
}

func parseScheme(s string) (ttmqo.Scheme, error) {
	for _, sc := range []ttmqo.Scheme{
		ttmqo.SchemeBaseline, ttmqo.SchemeBSOnly, ttmqo.SchemeInNetworkOnly, ttmqo.SchemeTTMQO,
	} {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}
