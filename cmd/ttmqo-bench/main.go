// Command ttmqo-bench regenerates the paper's evaluation figures as text
// tables.
//
// Usage:
//
//	ttmqo-bench [-fig 2|3|4a|4b|4c|5|ablation|reliability|chaos|lifetime|scaling|federation|share|serve|all]
//	            [-seed N] [-minutes M] [-runs R] [-parallel P] [-md report.md]
//	            [-json out.json] [-benchout BENCH_serve.json] [-benchcheck BENCH_serve.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The -minutes flag sets the simulated duration of packet-level runs;
// -runs averages stochastic points over several workload seeds; -parallel
// caps the worker pool fanning independent simulation cells across CPUs
// (0 = one worker per CPU; results are identical at any setting); -md runs
// every study and writes a self-contained markdown report. -json exports
// the selected studies' rows plus a run manifest as machine-readable JSON
// (byte-identical at any -parallel setting); -cpuprofile/-memprofile write
// pprof profiles of the sweep for performance work.
//
// -fig serve runs the serving hot-path benchmark suite (binary vs JSON
// encode, fan-out, WAL append, dedup lookup) instead of a figure; it takes
// tens of seconds and is excluded from -fig all. -benchout writes the
// suite's report as JSON (the committed baseline lives in
// BENCH_serve.json); -benchcheck compares the fresh run against a baseline
// file and exits non-zero on a >10% regression of the machine-independent
// gauges (binary speedup ratio and allocations per delivered message).
// Both imply -fig serve.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	ttmqo "repro"
	"repro/internal/gateway"
	"repro/internal/share"
)

func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.String("fig", "all", "figure to regenerate: 2, 3, 4a, 4b, 4c, 5, ablation, reliability, chaos, lifetime, scaling, federation, share, serve or all")
	seed := flag.Int64("seed", 1, "random seed")
	minutes := flag.Int("minutes", 10, "simulated minutes per packet-level run")
	runs := flag.Int("runs", 3, "workload seeds averaged per stochastic point")
	parallel := flag.Int("parallel", 0, "worker pool size for sweeps (0 = one worker per CPU)")
	mdOut := flag.String("md", "", "write a full markdown report to this file (runs everything)")
	jsonOut := flag.String("json", "", "export the selected studies' rows + manifest as JSON to this file")
	benchOut := flag.String("benchout", "", "write the serve-suite benchmark report as JSON to this file (implies -fig serve)")
	benchCheck := flag.String("benchcheck", "", "compare the serve suite against this baseline JSON; exit non-zero on >10% regression (implies -fig serve)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	// The serve suite is a host-machine micro-benchmark, not a simulation
	// figure: it self-tunes with testing.Benchmark and takes tens of
	// seconds, so it only runs when asked for by name (never under "all").
	if *fig == "serve" || *benchOut != "" || *benchCheck != "" {
		return runServeSuite(*benchOut, *benchCheck)
	}

	if *mdOut != "" {
		start := time.Now()
		report, err := ttmqo.RunAllExperiments(ttmqo.ReportConfig{
			Seed:        *seed,
			Duration:    time.Duration(*minutes) * time.Minute,
			Runs:        *runs,
			Parallelism: *parallel,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		report.Elapsed = time.Since(start)
		if err := os.WriteFile(*mdOut, []byte(report.Markdown()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			return 1
		}
		if *jsonOut != "" {
			if err := writeJSONFile(*jsonOut, report.Export()); err != nil {
				fmt.Fprintln(os.Stderr, "json:", err)
				return 1
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		fmt.Printf("wrote %s in %v\n", *mdOut, report.Elapsed.Round(time.Second))
		return 0
	}

	dur := time.Duration(*minutes) * time.Minute
	all := *fig == "all"
	ok := true
	// Each study writes its sweep's wall-clock accounting here; dispatch
	// prints it after the table. Studies that ran collect their rows for the
	// -json export (wall-clock timing stays out of it, so the bytes are
	// identical at any -parallel setting).
	var tm ttmqo.SweepTiming
	var studies []ttmqo.SweepStudy
	keep := func(name string, rows any) { studies = append(studies, ttmqo.SweepStudy{Name: name, Rows: rows}) }
	dispatch := func(name string, f func() error) {
		if !all && *fig != name {
			return
		}
		fmt.Printf("=== Figure %s ===\n", name)
		tm = ttmqo.SweepTiming{}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
			ok = false
		}
		if len(tm.Cells) > 0 {
			fmt.Printf("timing: %s\n", tm.String())
		}
		fmt.Println()
	}

	dispatch("2", func() error {
		rows, err := ttmqo.RunFigure2Example()
		if err != nil {
			return err
		}
		keep("figure 2", rows)
		fmt.Printf("%-7s %12s %12s %12s\n", "mode", "acqMsgs", "acqNodes", "aggMsgs")
		for _, r := range rows {
			fmt.Printf("%-7s %8d (%2d) %8d (%d) %8d (%2d)\n", r.Mode,
				r.AcqMessages, r.WantAcqMessages,
				r.AcqNodes, r.WantAcqNodes,
				r.AggMessages, r.WantAggMessages)
		}
		fmt.Println("(parenthesised: the paper's §3.2.2 counts)")
		return nil
	})

	dispatch("3", func() error {
		rows, err := ttmqo.RunFigure3(ttmqo.Fig3Config{Seed: *seed, Duration: dur, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("figure 3", rows)
		fmt.Print(fig3String(rows))
		return nil
	})

	dispatch("4a", func() error {
		pts, err := ttmqo.RunFigure4A(ttmqo.Fig4Config{Seed: *seed, Runs: *runs, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("figure 4a", pts)
		fmt.Print(fig4String(pts))
		return nil
	})

	dispatch("4b", func() error {
		pts, err := ttmqo.RunFigure4B(ttmqo.Fig4Config{Seed: *seed, Runs: *runs, Side: 8, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("figure 4b", pts)
		fmt.Print(fig4String(pts))
		return nil
	})

	dispatch("4c", func() error {
		pts, err := ttmqo.RunFigure4C(ttmqo.Fig4Config{Seed: *seed, Runs: *runs, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("figure 4c", pts)
		fmt.Print(fig4String(pts))
		return nil
	})

	dispatch("5", func() error {
		rows, err := ttmqo.RunFigure5(ttmqo.Fig5Config{Seed: *seed, Duration: dur, Runs: *runs, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("figure 5", rows)
		fmt.Print(fig5String(rows))
		return nil
	})

	dispatch("reliability", func() error {
		rows, err := ttmqo.RunReliability(ttmqo.ReliabilityConfig{Seed: *seed, Duration: dur, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("reliability", rows)
		fmt.Printf("%-13s %8s %14s %9s %10s\n", "scheme", "mtbf", "completeness", "failures", "avgTx(%)")
		for _, r := range rows {
			mtbf := "none"
			if r.MTBF > 0 {
				mtbf = r.MTBF.String()
			}
			fmt.Printf("%-13s %8s %13.1f%% %9d %10.4f\n",
				r.Scheme, mtbf, r.Completeness*100, r.Failures, r.AvgTxPct)
		}
		return nil
	})

	dispatch("chaos", func() error {
		rows, err := ttmqo.RunChaos(ttmqo.ChaosConfig{Seed: *seed, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("chaos", rows)
		fmt.Print(ttmqo.ChaosString(rows))
		return nil
	})

	dispatch("scaling", func() error {
		rows, err := ttmqo.RunScaling(ttmqo.ScalingConfig{Seed: *seed, Duration: dur, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("scaling", rows)
		fmt.Print(ttmqo.ScalingString(rows))
		return nil
	})

	dispatch("federation", func() error {
		rows, err := ttmqo.RunFederationScaling(ttmqo.FederationScalingConfig{Seed: *seed})
		if err != nil {
			return err
		}
		keep("federation", rows)
		fmt.Print(ttmqo.FederationScalingString(rows))
		return nil
	})

	dispatch("share", func() error {
		rows, err := ttmqo.RunShareStudy(ttmqo.ShareStudyConfig{Seed: *seed})
		if err != nil {
			return err
		}
		keep("share", rows)
		fmt.Print(ttmqo.ShareStudyString(rows))
		return nil
	})

	dispatch("lifetime", func() error {
		rows, err := ttmqo.RunLifetime(ttmqo.LifetimeConfig{Seed: *seed, Duration: dur, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("lifetime", rows)
		fmt.Printf("%-13s %10s %14s %9s\n", "scheme", "energy(J)", "lifetime", "gain")
		for _, r := range rows {
			fmt.Printf("%-13s %10.1f %14s %+8.1f%%\n",
				r.Scheme, r.TotalJ, r.Lifetime.Round(time.Hour), r.GainPct)
		}
		return nil
	})

	dispatch("ablation", func() error {
		rows, err := ttmqo.RunAblation(ttmqo.AblationConfig{Seed: *seed, Duration: dur, Parallelism: *parallel, Timing: &tm})
		if err != nil {
			return err
		}
		keep("ablation", rows)
		fmt.Printf("%-12s %10s %10s %9s\n", "variant", "avgTx(%)", "vs full", "messages")
		for _, r := range rows {
			fmt.Printf("%-12s %10.4f %+9.1f%% %9d\n", r.Variant, r.AvgTxPct, r.DeltaPct, r.Messages)
		}
		return nil
	})

	if !ok {
		return 1
	}
	if *jsonOut != "" {
		if len(studies) == 0 {
			fmt.Fprintf(os.Stderr, "json: no studies ran for -fig %s\n", *fig)
			return 1
		}
		m := ttmqo.SweepManifest(*fig, *seed, dur, *runs)
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			return 1
		}
		if err := ttmqo.WriteSweepJSON(f, m, studies...); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "json:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return 0
}

// runServeSuite runs the serving hot-path benchmarks, optionally persists
// the report (-benchout) and gates it against a committed baseline
// (-benchcheck).
func runServeSuite(outPath, checkPath string) int {
	fmt.Println("=== serve: serving hot-path benchmarks ===")
	rep, err := gateway.RunServeBench(gateway.ServeBenchConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve bench:", err)
		return 1
	}
	if err := share.BenchServe(rep); err != nil {
		fmt.Fprintln(os.Stderr, "serve bench (share rows):", err)
		return 1
	}
	fmt.Print(rep.String())
	if outPath != "" {
		if err := writeJSONFile(outPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchout:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if checkPath != "" {
		raw, err := os.ReadFile(checkPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			return 1
		}
		var baseline gateway.ServeBenchReport
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: parse %s: %v\n", checkPath, err)
			return 1
		}
		if bad := gateway.CompareServeBench(&baseline, rep, 0.10); len(bad) != 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: regression against %s:\n", checkPath)
			for _, v := range bad {
				fmt.Fprintln(os.Stderr, "  -", v)
			}
			return 1
		}
		fmt.Printf("benchcheck: ok against %s (speedup %.1fx vs baseline %.1fx)\n",
			checkPath, rep.BinarySpeedup, baseline.BinarySpeedup)
	}
	return 0
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ttmqo.WriteJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fig3String(rows []ttmqo.Fig3Row) string {
	out := fmt.Sprintf("%-9s %6s %-13s %10s %9s %9s %8s\n",
		"workload", "nodes", "scheme", "avgTx(%)", "save(%)", "messages", "retrans")
	for _, r := range rows {
		out += fmt.Sprintf("%-9s %6d %-13s %10.4f %9.1f %9d %8d\n",
			r.Workload, r.Nodes, r.Scheme, r.AvgTxPct, r.SavingsPct, r.Messages, r.Retransmissions)
	}
	return out
}

func fig4String(points []ttmqo.Fig4Point) string {
	out := fmt.Sprintf("%11s %6s %12s %9s %10s %8s\n",
		"concurrency", "alpha", "benefit(%)", "avgSyn", "avgConc", "reinject")
	for _, p := range points {
		out += fmt.Sprintf("%11d %6.2f %12.1f %9.2f %10.1f %8d\n",
			p.Concurrency, p.Alpha, p.BenefitRatio*100, p.AvgSynthetic, p.AvgConcurrent, p.Reinjections)
	}
	return out
}

func fig5String(rows []ttmqo.Fig5Row) string {
	out := fmt.Sprintf("%8s %12s %13s %10s %9s\n",
		"aggFrac", "selectivity", "baseline(%)", "ttmqo(%)", "save(%)")
	for _, r := range rows {
		out += fmt.Sprintf("%8.2f %12.2f %13.4f %10.4f %9.1f\n",
			r.AggFraction, r.Selectivity, r.BaselineTxPct, r.TTMQOTxPct, r.SavingsPct)
	}
	return out
}
