// Alphatuning: explore the §3.1.4 termination parameter α on a churn-heavy
// healthcare-monitoring workload. α tunes how aggressively the base station
// rewrites the synthetic query set when user queries terminate: small α
// re-optimizes eagerly (tight queries, frequent re-injection floods), large
// α leaves stale synthetic queries running (no floods, wasted data).
package main

import (
	"fmt"
	"log"
	"time"

	ttmqo "repro"
)

func main() {
	topo, err := ttmqo.PaperGrid(6)
	if err != nil {
		log.Fatal(err)
	}

	// A ward-monitoring workload: many short-lived queries (clinicians
	// checking on patients) over a long-running base set.
	ws := ttmqo.RandomWorkload(ttmqo.RandomWorkloadConfig{
		Seed:              3,
		NumQueries:        120,
		TargetConcurrency: 10,
		MeanInterarrival:  20 * time.Second,
	})
	var span time.Duration
	for _, w := range ws {
		if w.Depart > span {
			span = w.Depart
		}
	}

	fmt.Printf("%d queries, ~10 concurrent, over %v; sweeping alpha\n\n",
		len(ws), span.Round(time.Minute))
	fmt.Printf("%6s %10s %10s %12s %10s\n", "alpha", "avgTx(%)", "floods", "reinserts", "synAvg")

	for _, alpha := range []float64{0.0001, 0.2, 0.6, 1.0, 2.0} {
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo:           topo,
			Scheme:         ttmqo.SchemeTTMQO,
			Seed:           3,
			Alpha:          alpha,
			DiscardResults: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, w := range ws {
			sim.PostAt(w.Arrive, w.Query)
			sim.CancelAt(w.Depart, w.Query.ID)
		}

		// Sample the synthetic-query count as the run progresses.
		var synSum, synN float64
		step := span / 60
		for t := time.Duration(0); t < span; t += step {
			sim.Run(step)
			synSum += float64(sim.Optimizer().SyntheticCount())
			synN++
		}

		fmt.Printf("%6.2f %10.4f %10d %12d %10.2f\n",
			alpha,
			sim.AvgTransmissionTime()*100,
			sim.Metrics().MessagesOf("query"),
			sim.Metrics().MessagesOf("abort"),
			synSum/synN)
	}

	fmt.Println("\nsmall alpha floods the network with re-injection traffic; large")
	fmt.Println("alpha trades that for stale synthetic queries fetching data nobody")
	fmt.Println("wants. Where the balance tips depends on the workload's churn and")
	fmt.Println("overlap; the paper's Figure 4(b) finds alpha = 0.6 best on its")
	fmt.Println("random workload (see EXPERIMENTS.md for our measurements).")
}
