// Envmonitor: an environmental-monitoring deployment (the paper's §1
// motivating domain) where several independent dashboards watch the same
// 36-node network. Each dashboard poses its own overlapping queries; the
// example runs the workload under all four schemes and reports how much
// radio time the two-tier optimizer saves, plus how the base station
// rewrote the query set.
package main

import (
	"fmt"
	"log"
	"time"

	ttmqo "repro"
)

// dashboards is the multi-tenant workload: a facilities dashboard, a
// climate-research dashboard and an alerting service, all interested in
// similar data at different rates.
var dashboards = []struct {
	owner string
	query string
}{
	{"facilities", "SELECT nodeid, light WHERE light > 250 EPOCH DURATION 4096"},
	{"facilities", "SELECT nodeid, temp WHERE temp > 15 AND temp < 85 EPOCH DURATION 8192"},
	{"climate", "SELECT light, temp WHERE light > 200 EPOCH DURATION 8192"},
	{"climate", "SELECT AVG(temp) WHERE light > 200 EPOCH DURATION 16384"},
	{"climate", "SELECT MAX(light) WHERE light > 250 EPOCH DURATION 8192"},
	{"alerts", "SELECT MAX(temp) WHERE temp > 60 EPOCH DURATION 4096"},
	{"alerts", "SELECT MIN(temp) WHERE temp > 60 EPOCH DURATION 8192"},
	{"alerts", "SELECT nodeid WHERE temp > 75 EPOCH DURATION 4096"},
}

func main() {
	topo, err := ttmqo.PaperGrid(6) // 36 nodes
	if err != nil {
		log.Fatal(err)
	}

	const runFor = 5 * time.Minute
	fmt.Printf("36-node grid, %d dashboard queries, %v simulated\n\n",
		len(dashboards), runFor)

	var baselineTx float64
	for _, scheme := range []ttmqo.Scheme{
		ttmqo.SchemeBaseline, ttmqo.SchemeBSOnly, ttmqo.SchemeInNetworkOnly, ttmqo.SchemeTTMQO,
	} {
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo:   topo,
			Scheme: scheme,
			Seed:   7,
		})
		if err != nil {
			log.Fatal(err)
		}
		batch := make([]ttmqo.Query, 0, len(dashboards))
		for _, d := range dashboards {
			batch = append(batch, ttmqo.MustParseQuery(d.query))
		}
		// One batch admission: the base station nets out the intermediate
		// rewrites and floods only the final synthetic set.
		if _, err := sim.PostBatch(batch); err != nil {
			log.Fatal(err)
		}
		sim.Run(runFor)

		tx := sim.AvgTransmissionTime() * 100
		if scheme == ttmqo.SchemeBaseline {
			baselineTx = tx
		}
		fmt.Printf("%-13s avgTx=%.4f%%  savings=%5.1f%%  result msgs=%d  retrans=%d\n",
			scheme, tx, ttmqo.Savings(baselineTx, tx)*100,
			sim.Metrics().MessagesOf("result"), sim.Metrics().Retransmissions())

		if scheme == ttmqo.SchemeTTMQO {
			fmt.Printf("\nTTMQO's base station rewrote %d dashboard queries into %d synthetic queries:\n",
				len(dashboards), sim.Optimizer().SyntheticCount())
			for _, sq := range sim.Optimizer().SyntheticQueries() {
				from := sim.Optimizer().FromList(sq.ID)
				fmt.Printf("  serves %v: %s\n", from, sq)
			}
			// Every dashboard still receives its own answers.
			fmt.Println("\ndelivered epochs per dashboard query:")
			for i, d := range dashboards {
				id := ttmqo.QueryID(i + 1)
				n := sim.Results().RowEpochs(id) + sim.Results().AggEpochs(id)
				fmt.Printf("  %-11s q%d: %3d epochs  (%s)\n", d.owner, id, n, d.query)
			}
		}
	}
}
