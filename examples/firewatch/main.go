// Firewatch: a wildfire-monitoring deployment combining the library's
// extension features — grouped aggregation (GROUP BY), query lifetimes,
// injected node failures (sensors burn out), and the energy model. A 49-node
// grid watches for hot, dry conditions; a ranger dashboard tracks per-region
// maxima while short-lived investigation queries come and go.
package main

import (
	"fmt"
	"log"
	"time"

	ttmqo "repro"
)

func main() {
	topo, err := ttmqo.PaperGrid(7) // 49 nodes
	if err != nil {
		log.Fatal(err)
	}
	buf := &ttmqo.Trace{Max: 50000}
	sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
		Topo:   topo,
		Scheme: ttmqo.SchemeTTMQO,
		Seed:   21,
		Trace:  buf,
		// Harsh environment: sensors fail roughly every 8 minutes and take
		// ~45 s to watchdog-reboot.
		Failures: ttmqo.FailureConfig{
			MTBF: 8 * time.Minute,
			MTTR: 45 * time.Second,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The standing dashboard: per-region (7-node ID bands) temperature
	// maxima and hot-spot counts, every ~16 s.
	regionMax, err := sim.Post(ttmqo.MustParseQuery(
		"SELECT MAX(temp) GROUP BY nodeid BUCKET 7 EPOCH DURATION 16384"))
	if err != nil {
		log.Fatal(err)
	}
	hotCount, err := sim.Post(ttmqo.MustParseQuery(
		"SELECT COUNT(temp) WHERE temp > 60 EPOCH DURATION 16384"))
	if err != nil {
		log.Fatal(err)
	}

	// A ranger investigates one region for two minutes: full rows, short
	// lifetime — the query cleans itself up.
	investigate, err := sim.Post(ttmqo.MustParseQuery(
		"SELECT nodeid, temp, humidity WHERE temp > 50 EPOCH DURATION 8192 LIFETIME 120s"))
	if err != nil {
		log.Fatal(err)
	}

	const runFor = 12 * time.Minute
	sim.Run(runFor)

	fmt.Printf("firewatch: 49 nodes, %v simulated, %d node outages survived\n\n",
		runFor, sim.Failures())

	// Latest per-region picture.
	aggs := sim.Results().AggsFor(regionMax)
	last := aggs[len(aggs)-1]
	fmt.Printf("region MAX(temp) at t=%v:\n", time.Duration(last.Time))
	for _, r := range last.Results {
		bar := ""
		for i := 0; i < int(r.Value/5); i++ {
			bar += "#"
		}
		fmt.Printf("  region %d (nodes %2d-%2d): %5.1f°C %s\n",
			r.Group, r.Group*7, r.Group*7+6, r.Value, bar)
	}

	counts := sim.Results().AggsFor(hotCount)
	fmt.Printf("\nhot sensors (>60°C) over time: ")
	for i := 0; i < len(counts); i += 4 {
		r := counts[i].Results[0]
		if r.Empty {
			fmt.Print("0 ")
		} else {
			fmt.Printf("%.0f ", r.Value)
		}
	}
	fmt.Println()

	fmt.Printf("\ninvestigation query q%d delivered %d epochs before its LIFETIME expired\n",
		investigate, sim.Results().RowEpochs(investigate))
	if sim.Optimizer().UserCount() != 2 {
		log.Fatalf("expected the investigation to have auto-terminated")
	}

	// Energy outlook under this workload.
	em := ttmqo.DefaultEnergyModel()
	fmt.Printf("\nenergy: %.1f J spent network-wide; projected lifetime %v (battery-limited node)\n",
		sim.Metrics().TotalEnergy(em),
		sim.Metrics().NetworkLifetime(runFor, em).Round(24*time.Hour))
	fmt.Printf("radio: %s\n", sim.Metrics())
	fmt.Printf("trace: %s\n", buf.Summary())
}
