// Trafficgrid: a traffic-monitoring scenario (another of the paper's §1
// motivating domains) with a *dynamic* query population — operators connect,
// watch a region of the 64-node sensor grid for a while, and disconnect.
// The example replays the same adaptive workload under the baseline and
// under TTMQO, showing how the optimizer absorbs query churn at the base
// station (§3.1.4): most arrivals and terminations never touch the network.
package main

import (
	"fmt"
	"log"
	"time"

	ttmqo "repro"
)

func main() {
	topo, err := ttmqo.PaperGrid(8) // 64 nodes
	if err != nil {
		log.Fatal(err)
	}

	// 60 operator sessions arriving every ~40s, ~12 concurrent on average.
	ws := ttmqo.RandomWorkload(ttmqo.RandomWorkloadConfig{
		Seed:              99,
		NumQueries:        60,
		TargetConcurrency: 12,
	})
	var span time.Duration
	for _, w := range ws {
		if w.Depart > span {
			span = w.Depart
		}
	}
	fmt.Printf("64-node grid, %d operator sessions over %v of virtual time\n\n",
		len(ws), span.Round(time.Minute))

	for _, scheme := range []ttmqo.Scheme{ttmqo.SchemeBaseline, ttmqo.SchemeTTMQO} {
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo:           topo,
			Scheme:         scheme,
			Seed:           99,
			DiscardResults: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, w := range ws {
			sim.PostAt(w.Arrive, w.Query)
			sim.CancelAt(w.Depart, w.Query.ID)
		}
		start := time.Now()
		sim.Run(span + time.Minute)
		fmt.Printf("%-9s avgTx=%.4f%%  messages=%d (query floods=%d, aborts=%d)  wall=%v\n",
			scheme,
			sim.AvgTransmissionTime()*100,
			sim.Metrics().Messages(),
			sim.Metrics().MessagesOf("query"),
			sim.Metrics().MessagesOf("abort"),
			time.Since(start).Round(time.Millisecond))
	}

	// How much churn did the base station absorb? Replay the same workload
	// against a standalone optimizer and count the operations that needed
	// no network traffic at all.
	model, err := ttmqo.NewCostModel(topo.LevelSizes(), ttmqo.CostConfig{})
	if err != nil {
		log.Fatal(err)
	}
	opt := ttmqo.NewOptimizer(model, ttmqo.OptimizerOptions{})
	type ev struct {
		at     time.Duration
		arrive bool
		q      ttmqo.Query
	}
	var evs []ev
	for _, w := range ws {
		evs = append(evs, ev{w.Arrive, true, w.Query}, ev{w.Depart, false, w.Query})
	}
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].at < evs[j-1].at; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	silent, total := 0, 0
	for _, e := range evs {
		var ch ttmqo.Change
		var err error
		if e.arrive {
			ch, err = opt.Insert(e.q)
		} else {
			ch, err = opt.Terminate(e.q.ID)
		}
		if err != nil {
			log.Fatal(err)
		}
		total++
		if ch.Empty() {
			silent++
		}
	}
	fmt.Printf("\nbase station absorbed %d of %d query arrivals/terminations silently (%.0f%%)\n",
		silent, total, 100*float64(silent)/float64(total))
}
