// Quickstart: build a simulated 16-node sensor network, pose two TinyDB
// queries through the full TTMQO stack, and read back the answers.
package main

import (
	"fmt"
	"log"
	"time"

	ttmqo "repro"
)

func main() {
	// The paper's evaluation deployment: a 4×4 grid, 20 ft spacing, 50 ft
	// radio range, base station in the corner.
	topo, err := ttmqo.PaperGrid(4)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
		Topo:   topo,
		Scheme: ttmqo.SchemeTTMQO, // both optimization tiers
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two similar user queries. The base-station tier will notice that one
	// covers the other's needs and inject a single synthetic query.
	bright, err := sim.Post(ttmqo.MustParseQuery(
		"SELECT nodeid, light WHERE light > 200 EPOCH DURATION 4096ms"))
	if err != nil {
		log.Fatal(err)
	}
	hottest, err := sim.Post(ttmqo.MustParseQuery(
		"SELECT MAX(light) WHERE light > 250 EPOCH DURATION 8192ms"))
	if err != nil {
		log.Fatal(err)
	}

	// Advance two virtual minutes; the discrete-event simulator makes this
	// take milliseconds of real time.
	sim.Run(2 * time.Minute)

	fmt.Printf("two user queries ran as %d synthetic quer(ies)\n\n",
		sim.Optimizer().SyntheticCount())

	rows := sim.Results().RowsFor(bright)
	fmt.Printf("q%d (bright nodes): %d epochs; last epoch:\n", bright, len(rows))
	last := rows[len(rows)-1]
	for _, r := range last.Rows {
		fmt.Printf("  node %2.0f: light %6.1f\n",
			r.Values[ttmqo.AttrNodeID], r.Values[ttmqo.AttrLight])
	}

	fmt.Printf("\nq%d (MAX light): ", hottest)
	for _, ep := range sim.Results().AggsFor(hottest) {
		if ep.Results[0].Empty {
			fmt.Print("∅ ")
			continue
		}
		fmt.Printf("%.0f ", ep.Results[0].Value)
	}
	fmt.Println()

	fmt.Printf("\nradio: avg transmission time %.4f%%, %s\n",
		sim.AvgTransmissionTime()*100, sim.Metrics())
}
