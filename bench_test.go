package ttmqo_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	ttmqo "repro"
)

// Every figure of the paper's evaluation has a benchmark that regenerates
// it. The benchmarks log the reproduced series (run with -v or read
// EXPERIMENTS.md for the recorded numbers) and time one full regeneration.

// BenchmarkFigure2Example regenerates the §3.2.2 worked example: 20→12
// acquisition messages (8→6 nodes) and 14→7 aggregation messages.
func BenchmarkFigure2Example(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := ttmqo.RunFigure2Example()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-7s acq=%d/%d nodes=%d/%d agg=%d/%d", r.Mode,
					r.AcqMessages, r.WantAcqMessages,
					r.AcqNodes, r.WantAcqNodes,
					r.AggMessages, r.WantAggMessages)
			}
		}
	}
}

// BenchmarkFigure3 regenerates the average-transmission-time bars for one
// (workload, size) cell per sub-benchmark.
func BenchmarkFigure3(b *testing.B) {
	for _, w := range []string{"A", "B", "C"} {
		for _, side := range []int{4, 8} {
			b.Run(fmt.Sprintf("workload%s/%dnodes", w, side*side), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rows, err := ttmqo.RunFigure3(ttmqo.Fig3Config{
						Seed:      1,
						Duration:  5 * time.Minute,
						Sides:     []int{side},
						Workloads: []string{w},
					})
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						for _, r := range rows {
							b.Logf("%-13s avgTx=%.4f%% save=%.1f%%", r.Scheme, r.AvgTxPct, r.SavingsPct)
						}
					}
				}
			})
		}
	}
}

// BenchmarkFigure3Parallel regenerates the full Figure 3 sweep (24 cells)
// at one worker and at one worker per CPU. The ratio of the two is the
// parallel runner's end-to-end speedup on this machine; the rows are
// identical either way.
func BenchmarkFigure3Parallel(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ttmqo.RunFigure3(ttmqo.Fig3Config{
					Seed: 1, Duration: 2 * time.Minute, Parallelism: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4A regenerates the benefit-ratio-versus-concurrency curve.
func BenchmarkFigure4A(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := ttmqo.RunFigure4A(ttmqo.Fig4Config{Seed: 1, Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.Logf("concurrency=%d benefit=%.1f%%", p.Concurrency, p.BenefitRatio*100)
			}
		}
	}
}

// BenchmarkFigure4B regenerates the benefit-ratio-versus-α curve.
func BenchmarkFigure4B(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := ttmqo.RunFigure4B(ttmqo.Fig4Config{Seed: 1, Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.Logf("alpha=%.2f benefit=%.1f%% reinjections=%d", p.Alpha, p.BenefitRatio*100, p.Reinjections)
			}
		}
	}
}

// BenchmarkFigure4C regenerates the synthetic-query-count curves.
func BenchmarkFigure4C(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := ttmqo.RunFigure4C(ttmqo.Fig4Config{Seed: 1, Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.Logf("alpha=%.1f concurrency=%d avgSyn=%.2f", p.Alpha, p.Concurrency, p.AvgSynthetic)
			}
		}
	}
}

// BenchmarkFigure5 regenerates one selectivity series per mix.
func BenchmarkFigure5(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("agg%.0f%%", frac*100), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := ttmqo.RunFigure5(ttmqo.Fig5Config{
					Seed:         1,
					Duration:     5 * time.Minute,
					Runs:         1,
					AggFractions: []float64{frac},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					for _, r := range rows {
						b.Logf("sel=%.1f save=%.1f%%", r.Selectivity, r.SavingsPct)
					}
				}
			}
		})
	}
}

// BenchmarkAblation regenerates the tier-2 mechanism ablation (DESIGN.md's
// design-choice study).
func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := ttmqo.RunAblation(ttmqo.AblationConfig{Seed: 1, Duration: 4 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-12s avgTx=%.4f%% vs-full=%+.1f%%", r.Variant, r.AvgTxPct, r.DeltaPct)
			}
		}
	}
}

// BenchmarkScaling regenerates the network-size scaling curve (extension).
func BenchmarkScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := ttmqo.RunScaling(ttmqo.ScalingConfig{Seed: 1, Duration: 4 * time.Minute,
			Sides: []int{4, 8, 12}})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%3d nodes %-13s save=%.1f%% latency=%.0fms", r.Nodes, r.Scheme, r.SavingsPct, r.MeanLatencyMS)
			}
		}
	}
}

// --- Micro-benchmarks on the building blocks ---

// BenchmarkParseQuery measures the TinyDB-dialect parser.
func BenchmarkParseQuery(b *testing.B) {
	const q = "SELECT MAX(light), MIN(temp) FROM sensors WHERE 100 < light AND light < 600 AND temp >= 20 EPOCH DURATION 8192ms"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ttmqo.ParseQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerInsert measures tier-1 insertion throughput against a
// live table built from the §4.3 random workload.
func BenchmarkOptimizerInsert(b *testing.B) {
	topo, err := ttmqo.PaperGrid(8)
	if err != nil {
		b.Fatal(err)
	}
	model, err := ttmqo.NewCostModel(topo.LevelSizes(), ttmqo.CostConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ws := ttmqo.RandomWorkload(ttmqo.RandomWorkloadConfig{Seed: 1, NumQueries: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := ttmqo.NewOptimizer(model, ttmqo.OptimizerOptions{})
		for j, w := range ws {
			q := w.Query
			q.ID = ttmqo.QueryID(j + 1)
			if _, err := opt.Insert(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkOptimizerChurn measures a full insert/terminate cycle.
func BenchmarkOptimizerChurn(b *testing.B) {
	topo, err := ttmqo.PaperGrid(8)
	if err != nil {
		b.Fatal(err)
	}
	model, err := ttmqo.NewCostModel(topo.LevelSizes(), ttmqo.CostConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ws := ttmqo.RandomWorkload(ttmqo.RandomWorkloadConfig{Seed: 2, NumQueries: 32})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := ttmqo.NewOptimizer(model, ttmqo.OptimizerOptions{})
		for j, w := range ws {
			q := w.Query
			q.ID = ttmqo.QueryID(j + 1)
			if _, err := opt.Insert(q); err != nil {
				b.Fatal(err)
			}
		}
		for j := range ws {
			if _, err := opt.Terminate(ttmqo.QueryID(j + 1)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulationMinute measures packet-simulation throughput: one
// virtual minute of a 64-node network running workload C under TTMQO.
func BenchmarkSimulationMinute(b *testing.B) {
	topo, err := ttmqo.PaperGrid(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo: topo, Scheme: ttmqo.SchemeTTMQO, Seed: 1, DiscardResults: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range ttmqo.WorkloadC() {
			sim.PostAt(w.Arrive, w.Query)
		}
		sim.Run(time.Minute)
	}
}

// BenchmarkFieldReading measures the synthetic field generator under the
// simulator's access pattern: every node sampled at one shared epoch-aligned
// instant before the clock advances. The per-instant oscillator terms are
// memoized in a per-tick snapshot, so 62 of every 63 reads hit the cache.
func BenchmarkFieldReading(b *testing.B) {
	topo, err := ttmqo.PaperGrid(8)
	if err != nil {
		b.Fatal(err)
	}
	f := ttmqo.NewField(topo, ttmqo.FieldConfig{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := time.Duration(i/63) * 2048 * time.Millisecond
		_ = f.Reading(ttmqo.NodeID(1+i%63), ttmqo.AttrLight, t)
	}
}

// BenchmarkFieldReadingColdTick forces a tick-cache miss on every read (a
// fresh instant each call) — the memoization's worst case.
func BenchmarkFieldReadingColdTick(b *testing.B) {
	topo, err := ttmqo.PaperGrid(8)
	if err != nil {
		b.Fatal(err)
	}
	f := ttmqo.NewField(topo, ttmqo.FieldConfig{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Reading(ttmqo.NodeID(1+i%63), ttmqo.AttrLight, time.Duration(i)*time.Second)
	}
}

// BenchmarkFieldReadingCached measures the steady-state hit path: repeated
// reads at one fixed instant.
func BenchmarkFieldReadingCached(b *testing.B) {
	topo, err := ttmqo.PaperGrid(8)
	if err != nil {
		b.Fatal(err)
	}
	f := ttmqo.NewField(topo, ttmqo.FieldConfig{Seed: 1})
	const t = 4096 * time.Millisecond
	f.Reading(1, ttmqo.AttrLight, t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Reading(ttmqo.NodeID(1+i%63), ttmqo.AttrLight, t)
	}
}

// BenchmarkReliability regenerates the node-failure QoS study (the paper's
// §5 future-work direction, built as an extension).
func BenchmarkReliability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := ttmqo.RunReliability(ttmqo.ReliabilityConfig{Seed: 1, Duration: 4 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-13s mtbf=%v completeness=%.1f%% failures=%d",
					r.Scheme, r.MTBF, r.Completeness*100, r.Failures)
			}
		}
	}
}

// BenchmarkGroupByEpoch measures grouped-aggregation processing: one virtual
// minute of a 64-node network running a GROUP BY dashboard.
func BenchmarkGroupByEpoch(b *testing.B) {
	topo, err := ttmqo.PaperGrid(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo: topo, Scheme: ttmqo.SchemeTTMQO, Seed: 1, DiscardResults: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		q := ttmqo.MustParseQuery("SELECT MAX(temp), AVG(temp) GROUP BY nodeid BUCKET 8 EPOCH DURATION 4096")
		sim.PostAt(0, mustID(q, 1))
		sim.Run(time.Minute)
	}
}

// BenchmarkWindowedEpoch measures windowed-aggregate processing.
func BenchmarkWindowedEpoch(b *testing.B) {
	topo, err := ttmqo.PaperGrid(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := ttmqo.NewSimulation(ttmqo.SimulationConfig{
			Topo: topo, Scheme: ttmqo.SchemeTTMQO, Seed: 1, DiscardResults: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		q := ttmqo.MustParseQuery("SELECT WINAVG(light, 8, 2) EPOCH DURATION 4096")
		sim.PostAt(0, mustID(q, 1))
		sim.Run(time.Minute)
	}
}

func mustID(q ttmqo.Query, id ttmqo.QueryID) ttmqo.Query {
	q.ID = id
	return q
}
