package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	l := NewSpanLog()
	l.Admit(1, 10*time.Second, 2)
	l.Flood(1, 10*time.Second)
	l.FirstResult(1, 40*time.Second)
	l.FirstResult(1, 70*time.Second) // later results must not move the mark
	l.Admit(2, 15*time.Second, 0)    // covered by shared queries, no flood
	l.Cancel(2)

	spans := l.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	s := spans[0]
	if s.QueryID != 1 || !s.Flooded || !s.HasResult || s.Injected != 2 {
		t.Fatalf("span 1 = %+v", s)
	}
	if ttfr, ok := s.TTFR(); !ok || ttfr != 30*time.Second {
		t.Fatalf("TTFR = %v ok=%v, want 30s", ttfr, ok)
	}
	s2 := spans[1]
	if s2.Flooded || s2.HasResult || !s2.Cancelled {
		t.Fatalf("span 2 = %+v", s2)
	}
	if _, ok := s2.TTFR(); ok {
		t.Fatal("span 2 has no result but TTFR ok")
	}
}

func TestSpanSnapshotIsCopy(t *testing.T) {
	l := NewSpanLog()
	l.Admit(7, time.Second, 1)
	snap := l.Snapshot()
	snap[0].Injected = 99
	if got := l.Snapshot()[0].Injected; got != 1 {
		t.Fatalf("snapshot aliases internal state: %d", got)
	}
}

// TestSpanLogConcurrent exercises writer/reader races under -race.
func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLog()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			l.Admit(i, time.Duration(i), 1)
			l.Flood(i, time.Duration(i))
			l.FirstResult(i, time.Duration(i+1))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			l.Snapshot()
			l.Len()
		}
	}()
	wg.Wait()
	if l.Len() != 500 {
		t.Fatalf("len = %d, want 500", l.Len())
	}
}
