package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	l := NewSpanLog()
	l.Admit(1, 10*time.Second, 2)
	l.Flood(1, 10*time.Second)
	l.FirstResult(1, 40*time.Second)
	l.FirstResult(1, 70*time.Second) // later results must not move the mark
	l.Admit(2, 15*time.Second, 0)    // covered by shared queries, no flood
	l.Cancel(2)

	spans := l.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	s := spans[0]
	if s.QueryID != 1 || !s.Flooded || !s.HasResult || s.Injected != 2 {
		t.Fatalf("span 1 = %+v", s)
	}
	if ttfr, ok := s.TTFR(); !ok || ttfr != 30*time.Second {
		t.Fatalf("TTFR = %v ok=%v, want 30s", ttfr, ok)
	}
	s2 := spans[1]
	if s2.Flooded || s2.HasResult || !s2.Cancelled {
		t.Fatalf("span 2 = %+v", s2)
	}
	if _, ok := s2.TTFR(); ok {
		t.Fatal("span 2 has no result but TTFR ok")
	}
}

func TestSpanSnapshotIsCopy(t *testing.T) {
	l := NewSpanLog()
	l.Admit(7, time.Second, 1)
	snap := l.Snapshot()
	snap[0].Injected = 99
	if got := l.Snapshot()[0].Injected; got != 1 {
		t.Fatalf("snapshot aliases internal state: %d", got)
	}
}

// TestSpanLogBounded pins the span log's memory flat across a serving-length
// stream of admissions: the live map never outgrows the cap, the FIFO order
// slice's backing array stays O(cap) under head compaction, evictions are
// counted, and the survivors are exactly the most recent window in
// admission order.
func TestSpanLogBounded(t *testing.T) {
	const capacity = 64
	l := NewSpanLogCap(capacity)
	const n = 100_000
	for i := 0; i < n; i++ {
		l.Admit(i, time.Duration(i), 0)
		l.FirstResult(i, time.Duration(i+1))
		if got := l.Len(); got > capacity {
			t.Fatalf("span log grew to %d entries after %d admits (cap %d)", got, i+1, capacity)
		}
		if got := cap(l.order); got > 2*capacity+1 {
			t.Fatalf("order backing array grew to %d slots after %d admits (cap %d)", got, i+1, capacity)
		}
	}
	if got := l.Len(); got != capacity {
		t.Fatalf("span log holds %d entries after a long run, want a full window of %d", got, capacity)
	}
	if got := l.Evicted(); got != n-capacity {
		t.Fatalf("evicted = %d, want %d", got, n-capacity)
	}

	spans := l.Snapshot()
	if len(spans) != capacity {
		t.Fatalf("snapshot holds %d spans, want %d", len(spans), capacity)
	}
	for i, s := range spans {
		if want := n - capacity + i; s.QueryID != want {
			t.Fatalf("snapshot[%d].QueryID = %d, want %d (most recent window in order)", i, s.QueryID, want)
		}
		if !s.HasResult {
			t.Fatalf("surviving span %d lost its result mark", s.QueryID)
		}
	}

	// Updates to an evicted span must not resurrect it oversized: a late
	// FirstResult for a dropped id re-admits it through the same bound.
	l.FirstResult(0, time.Duration(n))
	if got := l.Len(); got != capacity {
		t.Fatalf("late update for an evicted span grew the log to %d (cap %d)", got, capacity)
	}

	// A degenerate capacity clamps instead of breaking eviction.
	tiny := NewSpanLogCap(0)
	for i := 0; i < 10; i++ {
		tiny.Admit(i, time.Duration(i), 0)
	}
	if got := tiny.Len(); got != 1 {
		t.Fatalf("clamped log holds %d entries, want 1", got)
	}
}

// TestSpanLogConcurrent exercises writer/reader races under -race.
func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLog()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			l.Admit(i, time.Duration(i), 1)
			l.Flood(i, time.Duration(i))
			l.FirstResult(i, time.Duration(i+1))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			l.Snapshot()
			l.Len()
		}
	}()
	wg.Wait()
	if l.Len() != 500 {
		t.Fatalf("len = %d, want 500", l.Len())
	}
}
