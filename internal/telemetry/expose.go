package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteExposition encodes the registry in the Prometheus text exposition
// format (version 0.0.4). Output ordering is deterministic: families by
// name, children by label values.
func (r *Registry) WriteExposition(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.Gather() {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Samples {
			switch f.Kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.Name, labelString(f.Labels, s.Labels, "", ""), formatValue(s.Value))
			case KindHistogram:
				for i, bound := range f.Bounds {
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name, labelString(f.Labels, s.Labels, "le", formatValue(bound)), s.BucketCounts[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.Name, labelString(f.Labels, s.Labels, "le", "+Inf"), s.BucketCounts[len(f.Bounds)])
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.Name, labelString(f.Labels, s.Labels, "", ""), formatValue(s.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.Name, labelString(f.Labels, s.Labels, "", ""), s.Count)
			}
		}
	}
	return bw.Flush()
}

// Exposition renders the registry to a string; it is the scrape body the
// admin /metrics endpoint serves.
func (r *Registry) Exposition() string {
	var sb strings.Builder
	r.WriteExposition(&sb) // strings.Builder never errors
	return sb.String()
}

func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(extraValue)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ParsedSample is one decoded exposition line: metric name (with any
// _bucket/_sum/_count suffix intact), sorted flat label pairs, and value.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseExposition is the decoder-side validator for the text format the
// encoder above emits. It checks structure strictly — TYPE lines precede
// samples, metric and label names are legal, label syntax is balanced,
// values parse, histogram buckets are cumulative and le="+Inf" agrees
// with _count — and returns every sample. A scrape that fails to parse
// is a bug in the exposition path, not in the scraper.
func ParseExposition(text string) ([]ParsedSample, error) {
	var samples []ParsedSample
	types := map[string]string{}
	// histogram accounting: family -> label-signature -> buckets
	type histState struct {
		lastLE     float64
		lastCount  uint64
		haveBucket bool
		infCount   uint64
		hasInf     bool
		count      uint64
		hasCount   bool
	}
	hists := map[string]*histState{}

	lineNo := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !validMetricName(fields[2]) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suf)
			if base != s.Name && types[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := types[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %s precedes its TYPE line", lineNo, s.Name)
		}
		if types[fam] == "histogram" {
			key := fam + histKey(s.Labels)
			st := hists[key]
			if st == nil {
				st = &histState{}
				hists[key] = st
			}
			switch {
			case strings.HasSuffix(s.Name, "_bucket"):
				le, ok := s.Labels["le"]
				if !ok {
					return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				c := uint64(s.Value)
				if le == "+Inf" {
					st.infCount, st.hasInf = c, true
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return nil, fmt.Errorf("line %d: bad le %q", lineNo, le)
					}
					if st.haveBucket && b <= st.lastLE {
						return nil, fmt.Errorf("line %d: histogram %s bounds not ascending", lineNo, fam)
					}
					if st.haveBucket && c < st.lastCount {
						return nil, fmt.Errorf("line %d: histogram %s buckets not cumulative", lineNo, fam)
					}
					st.lastLE, st.lastCount, st.haveBucket = b, c, true
				}
				if st.hasInf && st.infCount < st.lastCount {
					return nil, fmt.Errorf("line %d: histogram %s +Inf bucket below inner bucket", lineNo, fam)
				}
			case strings.HasSuffix(s.Name, "_count"):
				st.count, st.hasCount = uint64(s.Value), true
			}
			if st.hasInf && st.hasCount && st.infCount != st.count {
				return nil, fmt.Errorf("line %d: histogram %s le=\"+Inf\" (%d) disagrees with _count (%d)", lineNo, fam, st.infCount, st.count)
			}
		}
		samples = append(samples, s)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("exposition contains no samples")
	}
	return samples, nil
}

func histKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	// insertion sort; label sets are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteByte('|')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(labels[k])
	}
	return sb.String()
}

func parseSampleLine(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// value, optionally followed by a timestamp (we never emit one)
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels decodes a {name="value",...} block starting at text[0]=='{',
// returning the index just past the closing '}'.
func parseLabels(text string, out map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(text) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if text[i] == '}' {
			return i + 1, nil
		}
		j := strings.Index(text[i:], "=\"")
		if j < 0 {
			return 0, fmt.Errorf("malformed label block %q", text)
		}
		name := text[i : i+j]
		if !validLabelName(name) && name != "le" {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += j + 2
		var val strings.Builder
		for {
			if i >= len(text) {
				return 0, fmt.Errorf("unterminated label value")
			}
			c := text[i]
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, fmt.Errorf("dangling escape in label value")
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c", text[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
		if i < len(text) && text[i] == ',' {
			i++
		}
	}
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// FindSample returns the first parsed sample matching name and the given
// label pairs (k1, v1, k2, v2, …); ok reports whether one was found.
func FindSample(samples []ParsedSample, name string, kv ...string) (ParsedSample, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				match = false
				break
			}
		}
		if match {
			return s, true
		}
	}
	return ParsedSample{}, false
}
