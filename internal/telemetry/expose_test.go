package telemetry

import (
	"strings"
	"testing"
)

func buildSample() *Registry {
	r := NewRegistry()
	r.NewCounter("ttmqo_messages_total", "radio messages").Counter().Add(42)
	g := r.NewGauge("ttmqo_node_energy_joules", "per-node energy", "node")
	g.Gauge("1").Set(19999.5)
	g.Gauge("2").Set(20000)
	h := r.NewHistogram("ttmqo_ttfr_seconds", "time to first result", []float64{1, 2, 4, 8})
	h.Histogram().Observe(1.5)
	h.Histogram().Observe(3)
	h.Histogram().Observe(30)
	return r
}

func TestExpositionRoundTrip(t *testing.T) {
	text := buildSample().Exposition()
	samples, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("our own exposition fails our validator: %v\n%s", err, text)
	}
	if s, ok := FindSample(samples, "ttmqo_messages_total"); !ok || s.Value != 42 {
		t.Fatalf("messages_total = %+v ok=%v", s, ok)
	}
	if s, ok := FindSample(samples, "ttmqo_node_energy_joules", "node", "2"); !ok || s.Value != 20000 {
		t.Fatalf("energy{node=2} = %+v ok=%v", s, ok)
	}
	if s, ok := FindSample(samples, "ttmqo_ttfr_seconds_count"); !ok || s.Value != 3 {
		t.Fatalf("ttfr count = %+v ok=%v", s, ok)
	}
	if s, ok := FindSample(samples, "ttmqo_ttfr_seconds_bucket", "le", "+Inf"); !ok || s.Value != 3 {
		t.Fatalf("ttfr +Inf bucket = %+v ok=%v", s, ok)
	}
	if s, ok := FindSample(samples, "ttmqo_ttfr_seconds_bucket", "le", "2"); !ok || s.Value != 1 {
		t.Fatalf("ttfr le=2 bucket = %+v ok=%v", s, ok)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewGauge("g", "weird", "name").Gauge(`a"b\c` + "\n").Set(1)
	text := r.Exposition()
	samples, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("parse: %v\n%q", err, text)
	}
	if got := samples[0].Labels["name"]; got != "a\"b\\c\n" {
		t.Fatalf("label round-trip = %q", got)
	}
}

func TestValidatorRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no samples":          "# TYPE x counter\n",
		"sample before TYPE":  "x 1\n# TYPE x counter\n",
		"bad value":           "# TYPE x counter\nx notanumber\n",
		"bad metric name":     "# TYPE 9x counter\n9x 1\n",
		"unterminated labels": "# TYPE x counter\nx{a=\"b 1\n",
		"duplicate TYPE":      "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"unknown type":        "# TYPE x sometype\nx 1\n",
		"non-cumulative hist": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"inf-count mismatch":  "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"descending bounds":   "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket 1\nh_count 1\n",
		"malformed comment":   "# NOPE x\nx 1\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(text); err == nil {
			t.Errorf("%s: validator accepted malformed exposition:\n%s", name, text)
		}
	}
}

func TestValidatorAcceptsValid(t *testing.T) {
	text := strings.Join([]string{
		"# HELP up liveness",
		"# TYPE up gauge",
		"up 1",
		"# TYPE h histogram",
		`h_bucket{le="0.5"} 0`,
		`h_bucket{le="+Inf"} 2`,
		"h_sum 3.5",
		"h_count 2",
		"",
	}, "\n")
	samples, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
}
