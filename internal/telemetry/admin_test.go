package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func adminGet(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("ttmqo_test_total", "test").Counter().Add(7)
	var ready atomic.Bool
	ready.Store(true)
	a := NewAdmin(AdminConfig{
		Registry: reg,
		Ready:    ready.Load,
		Status:   func() any { return map[string]int{"sessions": 3} },
		Trace:    func(w io.Writer) { io.WriteString(w, "t=0 admit q1\n") },
	})
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	if code, body := adminGet(t, srv, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := adminGet(t, srv, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	ready.Store(false)
	if code, _ := adminGet(t, srv, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while not ready = %d, want 503", code)
	}
	ready.Store(true)
	if code, _ := adminGet(t, srv, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", code)
	}

	code, body := adminGet(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	samples, err := ParseExposition(body)
	if err != nil {
		t.Fatalf("/metrics body fails validator: %v\n%s", err, body)
	}
	if s, ok := FindSample(samples, "ttmqo_test_total"); !ok || s.Value != 7 {
		t.Fatalf("test_total = %+v ok=%v", s, ok)
	}

	if code, body := adminGet(t, srv, "/statusz"); code != http.StatusOK || !strings.Contains(body, `"sessions": 3`) {
		t.Fatalf("/statusz = %d %q", code, body)
	}
	if code, body := adminGet(t, srv, "/tracez"); code != http.StatusOK || !strings.Contains(body, "admit q1") {
		t.Fatalf("/tracez = %d %q", code, body)
	}
	if code, body := adminGet(t, srv, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// TestAdminStatusSections: the composed /statusz document carries one key
// per mounted tier, omits absent tiers, and round-trips as JSON.
func TestAdminStatusSections(t *testing.T) {
	a := NewAdmin(AdminConfig{
		Registry: NewRegistry(),
		Status: func() any {
			return StatusSections{
				Gateway:    map[string]any{"alive": true},
				Share:      map[string]any{"trees": 2},
				Resilience: map[string]any{"brownout_level": 0},
				Tracing:    []map[string]any{{"tier": "gateway", "recorded": 5}},
			}
		},
	})
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	code, body := adminGet(t, srv, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d", code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"gateway", "share", "resilience", "tracing"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/statusz lacks the %s section: %s", key, body)
		}
	}
	// Unmounted tiers are omitted, not served as null.
	if _, ok := doc["federation"]; ok {
		t.Errorf("/statusz serves a federation section this deployment never mounted: %s", body)
	}
}

// TestAdminTraceExport covers /tracez?trace=<id>: the JSON export path,
// the unknown-trace 404, and the 404 when no export hook is mounted.
func TestAdminTraceExport(t *testing.T) {
	a := NewAdmin(AdminConfig{
		Registry: NewRegistry(),
		Trace:    func(w io.Writer) { io.WriteString(w, "tree view\n") },
		TraceJSON: func(id string) ([]byte, bool) {
			if id == "42" || id == "all" {
				return []byte(`{"spans": 1}` + "\n"), true
			}
			return nil, false
		},
	})
	srv := httptest.NewServer(a.Handler())
	defer srv.Close()

	if code, body := adminGet(t, srv, "/tracez"); code != http.StatusOK || !strings.Contains(body, "tree view") {
		t.Fatalf("/tracez = %d %q, want the text tree", code, body)
	}
	code, body := adminGet(t, srv, "/tracez?trace=42")
	if code != http.StatusOK {
		t.Fatalf("/tracez?trace=42 = %d (%s), want 200", code, body)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace export is not JSON: %v\n%s", err, body)
	}
	if code, _ := adminGet(t, srv, "/tracez?trace=all"); code != http.StatusOK {
		t.Fatalf("/tracez?trace=all = %d, want 200", code)
	}
	if code, body := adminGet(t, srv, "/tracez?trace=999"); code != http.StatusNotFound || !strings.Contains(body, "unknown trace") {
		t.Fatalf("/tracez?trace=999 = %d %q, want 404 unknown trace", code, body)
	}

	// Without a TraceJSON hook the export path 404s while the text view
	// still serves.
	bare := NewAdmin(AdminConfig{Registry: NewRegistry()})
	bareSrv := httptest.NewServer(bare.Handler())
	defer bareSrv.Close()
	if code, body := adminGet(t, bareSrv, "/tracez?trace=1"); code != http.StatusNotFound || !strings.Contains(body, "disabled") {
		t.Fatalf("/tracez?trace=1 without a hook = %d %q, want 404 disabled", code, body)
	}
	if code, _ := adminGet(t, bareSrv, "/tracez"); code != http.StatusOK {
		t.Fatalf("/tracez without hooks = %d, want 200", code)
	}
}

func TestAdminStartClose(t *testing.T) {
	a := NewAdmin(AdminConfig{})
	addr, err := a.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", a.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointsListed(t *testing.T) {
	eps := Endpoints()
	want := []string{"/metrics", "/healthz", "/readyz", "/statusz", "/tracez", "/debug/pprof/"}
	if len(eps) != len(want) {
		t.Fatalf("Endpoints() = %v", eps)
	}
	for i, w := range want {
		if eps[i] != w {
			t.Fatalf("Endpoints()[%d] = %q, want %q", i, eps[i], w)
		}
	}
}
