// Package telemetry is the live observability plane: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms, with
// optional labels), a Prometheus text-format encoder and decoder-side
// validator, a per-query lifecycle span log, and an admin HTTP server
// exposing /metrics, /healthz, /readyz, /statusz, /tracez and
// /debug/pprof.
//
// The registry is safe for concurrent use. Values are float64; counters
// enforce monotonicity. Gather output is deterministically ordered
// (families by name, children by label values), so an exposition produced
// from a deterministic simulation is byte-identical across runs.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically non-decreasing value.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Set forces the counter to v if v is an advance; used when mirroring an
// external monotonic counter (e.g. gateway Stats) into the registry.
func (c *Counter) Set(v float64) {
	if math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		if v < math.Float64frombits(old) {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments (or, with a negative delta, decrements) the gauge.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	counts  []uint64  // len(bounds)+1, last is the +Inf bucket
	sum     float64
	samples uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Reset clears all buckets; used when a histogram is rebuilt from an
// authoritative snapshot on each gather.
func (h *Histogram) Reset() {
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum = 0
	h.samples = 0
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts (per bound, then +Inf), the
// sum, and the total sample count.
func (h *Histogram) snapshot() (cum []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.samples
}

// Family is a named metric family with optional labels. A family with no
// label names has exactly one implicit child; With() addresses labeled
// children.
type Family struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []string  // label names, may be empty
	Bounds []float64 // histogram bucket bounds (nil otherwise)

	mu       sync.Mutex
	children map[string]*child // key: joined label values
}

type child struct {
	values  []string // label values, aligned with Family.Labels
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

func (f *Family) child(values ...string) *child {
	if len(values) != len(f.Labels) {
		panic(fmt.Sprintf("telemetry: family %s wants %d label values, got %d", f.Name, len(f.Labels), len(values)))
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += "\xff"
		}
		key += v
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		switch f.Kind {
		case KindCounter:
			c.counter = &Counter{}
		case KindGauge:
			c.gauge = &Gauge{}
		case KindHistogram:
			h := &Histogram{bounds: f.Bounds}
			h.counts = make([]uint64, len(f.Bounds)+1)
			c.hist = h
		}
		f.children[key] = c
	}
	return c
}

// Counter returns the counter child for the given label values.
func (f *Family) Counter(values ...string) *Counter {
	if f.Kind != KindCounter {
		panic("telemetry: " + f.Name + " is not a counter")
	}
	return f.child(values...).counter
}

// Gauge returns the gauge child for the given label values.
func (f *Family) Gauge(values ...string) *Gauge {
	if f.Kind != KindGauge {
		panic("telemetry: " + f.Name + " is not a gauge")
	}
	return f.child(values...).gauge
}

// Histogram returns the histogram child for the given label values.
func (f *Family) Histogram(values ...string) *Histogram {
	if f.Kind != KindHistogram {
		panic("telemetry: " + f.Name + " is not a histogram")
	}
	return f.child(values...).hist
}

// Registry holds metric families and gather hooks.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*Family{}}
}

// OnGather registers a hook invoked (in registration order) at the start
// of every Gather. Hooks let pull-style sources (gateway stats, radio
// metrics, span logs) sync their current values into the registry just
// before exposition.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

func (r *Registry) register(f *Family) *Family {
	if !validMetricName(f.Name) {
		panic("telemetry: invalid metric name " + f.Name)
	}
	for _, l := range f.Labels {
		if !validLabelName(l) {
			panic("telemetry: invalid label name " + l + " on " + f.Name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.families[f.Name]; ok {
		if prev.Kind != f.Kind {
			panic("telemetry: " + f.Name + " re-registered with a different kind")
		}
		return prev
	}
	f.children = map[string]*child{}
	r.families[f.Name] = f
	return f
}

// NewCounter registers (or returns the existing) counter family.
func (r *Registry) NewCounter(name, help string, labels ...string) *Family {
	return r.register(&Family{Name: name, Help: help, Kind: KindCounter, Labels: labels})
}

// NewGauge registers (or returns the existing) gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) *Family {
	return r.register(&Family{Name: name, Help: help, Kind: KindGauge, Labels: labels})
}

// NewHistogram registers (or returns the existing) histogram family with
// the given ascending upper bucket bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...string) *Family {
	if len(bounds) == 0 {
		panic("telemetry: histogram " + name + " needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram " + name + " bounds not strictly ascending")
		}
	}
	return r.register(&Family{Name: name, Help: help, Kind: KindHistogram, Bounds: append([]float64(nil), bounds...), Labels: labels})
}

// Sample is one gathered time-series point.
type Sample struct {
	Labels []string // label values aligned with the family's label names
	Value  float64

	// Histogram-only payload.
	BucketCounts []uint64 // cumulative, aligned with family Bounds then +Inf
	Sum          float64
	Count        uint64
}

// GatheredFamily is a family snapshot with deterministically ordered
// samples.
type GatheredFamily struct {
	Name    string
	Help    string
	Kind    Kind
	Labels  []string
	Bounds  []float64
	Samples []Sample
}

// Gather runs hooks, then snapshots every family, sorted by name with
// children sorted by label values.
func (r *Registry) Gather() []GatheredFamily {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	fams := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })

	out := make([]GatheredFamily, 0, len(fams))
	for _, f := range fams {
		gf := GatheredFamily{Name: f.Name, Help: f.Help, Kind: f.Kind, Labels: f.Labels, Bounds: f.Bounds}
		f.mu.Lock()
		kids := make([]*child, 0, len(f.children))
		for _, c := range f.children {
			kids = append(kids, c)
		}
		f.mu.Unlock()
		sort.Slice(kids, func(i, j int) bool {
			a, b := kids[i].values, kids[j].values
			for k := range a {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return false
		})
		for _, c := range kids {
			s := Sample{Labels: c.values}
			switch f.Kind {
			case KindCounter:
				s.Value = c.counter.Value()
			case KindGauge:
				s.Value = c.gauge.Value()
			case KindHistogram:
				s.BucketCounts, s.Sum, s.Count = c.hist.snapshot()
			}
			gf.Samples = append(gf.Samples, s)
		}
		out = append(out, gf)
	}
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if alpha {
			continue
		}
		if i > 0 && r >= '0' && r <= '9' {
			continue
		}
		return false
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if alpha {
			continue
		}
		if i > 0 && r >= '0' && r <= '9' {
			continue
		}
		return false
	}
	return true
}
