package telemetry

import (
	"sync"
	"time"
)

// QuerySpan is the lifecycle of one admitted query in virtual time:
// admission, tier-1 rewrite (how many synthetic queries the optimizer
// injected), install flood, and the first result delivered to the user.
// All timestamps are virtual-time offsets from the start of the run, so
// spans are pure functions of the seed and command sequence.
type QuerySpan struct {
	QueryID   int           `json:"query_id"`
	AdmitAt   time.Duration `json:"admit_at"`
	FloodAt   time.Duration `json:"flood_at"`
	FirstAt   time.Duration `json:"first_result_at"`
	Injected  int           `json:"injected"` // synthetic queries from the rewrite
	Flooded   bool          `json:"flooded"`
	HasResult bool          `json:"has_result"`
	Cancelled bool          `json:"cancelled"`
}

// TTFR is the time-to-first-result, or (0, false) if no result arrived.
func (s QuerySpan) TTFR() (time.Duration, bool) {
	if !s.HasResult {
		return 0, false
	}
	return s.FirstAt - s.AdmitAt, true
}

// DefaultSpanLogCapacity bounds a SpanLog built by NewSpanLog. Long
// serving runs admit an unbounded stream of queries; the span log is an
// observability window, not an archive, so it retains the most recent
// spans and counts what it dropped.
const DefaultSpanLogCapacity = 4096

// SpanLog records per-query lifecycle spans, bounded to a fixed number of
// live entries with FIFO eviction in admission order. It is internally
// locked: the simulation loop writes while HTTP handlers snapshot.
type SpanLog struct {
	mu      sync.Mutex
	spans   map[int]*QuerySpan
	order   []int
	head    int // index of the oldest live entry in order
	cap     int
	evicted uint64
}

// NewSpanLog returns an empty span log bounded to DefaultSpanLogCapacity.
func NewSpanLog() *SpanLog {
	return NewSpanLogCap(DefaultSpanLogCapacity)
}

// NewSpanLogCap returns an empty span log retaining at most capacity
// spans (values < 1 are clamped to 1).
func NewSpanLogCap(capacity int) *SpanLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanLog{spans: map[int]*QuerySpan{}, cap: capacity}
}

func (l *SpanLog) get(id int, at time.Duration) *QuerySpan {
	s, ok := l.spans[id]
	if !ok {
		if len(l.spans) >= l.cap {
			delete(l.spans, l.order[l.head])
			l.order[l.head] = 0
			l.head++
			l.evicted++
			// Compact the dead prefix once it dominates the slice, so the
			// backing array stays O(cap) instead of growing forever.
			if l.head > len(l.order)/2 {
				l.order = append(l.order[:0], l.order[l.head:]...)
				l.head = 0
			}
		}
		s = &QuerySpan{QueryID: id, AdmitAt: at}
		l.spans[id] = s
		l.order = append(l.order, id)
	}
	return s
}

// Admit marks a query admitted at the given virtual time, recording how
// many synthetic queries the tier-1 rewrite injected alongside it.
func (l *SpanLog) Admit(id int, at time.Duration, injected int) {
	l.mu.Lock()
	s := l.get(id, at)
	s.AdmitAt = at
	s.Injected = injected
	l.mu.Unlock()
}

// Flood marks the install flood for a query.
func (l *SpanLog) Flood(id int, at time.Duration) {
	l.mu.Lock()
	s := l.get(id, at)
	if !s.Flooded {
		s.FloodAt = at
		s.Flooded = true
	}
	l.mu.Unlock()
}

// FirstResult marks the first user-visible result for a query; later
// calls for the same query are no-ops.
func (l *SpanLog) FirstResult(id int, at time.Duration) {
	l.mu.Lock()
	s := l.get(id, at)
	if !s.HasResult {
		s.FirstAt = at
		s.HasResult = true
	}
	l.mu.Unlock()
}

// Cancel marks a query cancelled.
func (l *SpanLog) Cancel(id int) {
	l.mu.Lock()
	if s, ok := l.spans[id]; ok {
		s.Cancelled = true
	}
	l.mu.Unlock()
}

// Len returns the number of retained spans.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

// Evicted returns how many spans the capacity bound has dropped.
func (l *SpanLog) Evicted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// Snapshot returns a copy of every retained span in admission order; safe
// to call from any goroutine.
func (l *SpanLog) Snapshot() []QuerySpan {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QuerySpan, 0, len(l.order)-l.head)
	for _, id := range l.order[l.head:] {
		out = append(out, *l.spans[id])
	}
	return out
}
