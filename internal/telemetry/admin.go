package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminConfig wires an Admin server to its data sources. Every field but
// Registry is optional.
type AdminConfig struct {
	// Registry backs /metrics; required.
	Registry *Registry
	// Ready backs /readyz: nil means always ready, false serves 503.
	// Implementations must be safe to call from the HTTP goroutine.
	Ready func() bool
	// Status produces the /statusz JSON document.
	Status func() any
	// Trace writes recent trace events as text to /tracez.
	Trace func(io.Writer)
	// TraceJSON serves /tracez?trace=<id>: the JSON export for one trace
	// (or the whole flight-recorder contents for the literal "all"),
	// false when the id is unknown. Optional; nil disables the export.
	TraceJSON func(id string) ([]byte, bool)
}

// StatusSections is the composed /statusz document: one section per
// mounted serving tier plus resilience and tracing summaries. Sections
// hold any JSON-marshalable snapshot; nil sections are omitted, so every
// deployment shape serves the same schema with only its tiers present.
type StatusSections struct {
	Gateway    any `json:"gateway,omitempty"`
	Federation any `json:"federation,omitempty"`
	Share      any `json:"share,omitempty"`
	Resilience any `json:"resilience,omitempty"`
	Tracing    any `json:"tracing,omitempty"`
}

// Admin is the operator-facing HTTP plane: Prometheus metrics, health and
// readiness probes, a JSON status snapshot, recent trace events, and the
// standard pprof handlers. It runs beside the gateway and deliberately
// survives gateway crash/recovery cycles, so /readyz can report them.
type Admin struct {
	cfg AdminConfig
	srv *http.Server
	ln  net.Listener
}

// Endpoints lists every path the admin server mounts; the docs-drift
// tests pin README/EXPERIMENTS coverage to this list.
func Endpoints() []string {
	return []string{
		"/metrics",
		"/healthz",
		"/readyz",
		"/statusz",
		"/tracez",
		"/debug/pprof/",
	}
}

// NewAdmin builds the admin server (not yet listening).
func NewAdmin(cfg AdminConfig) *Admin {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	a := &Admin{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	mux.HandleFunc("/statusz", a.handleStatusz)
	mux.HandleFunc("/tracez", a.handleTracez)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return a
}

// Start listens on addr (use host:0 for an ephemeral port) and serves in
// a background goroutine. The bound address is returned.
func (a *Admin) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: admin listen: %w", err)
	}
	a.ln = ln
	go a.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (a *Admin) Addr() string {
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close shuts the server down, waiting briefly for in-flight requests.
func (a *Admin) Close() error {
	if a.ln == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return a.srv.Shutdown(ctx)
}

// Handler exposes the admin mux (tests).
func (a *Admin) Handler() http.Handler { return a.srv.Handler }

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.cfg.Registry.WriteExposition(w)
}

// handleHealthz is process liveness: if the admin plane can answer at
// all, the process is alive.
func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz is serving readiness: 503 while the gateway is crashed or
// draining, 200 once WAL replay has brought a gateway back.
func (a *Admin) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if a.cfg.Ready != nil && !a.cfg.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "not ready\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

func (a *Admin) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var doc any
	if a.cfg.Status != nil {
		doc = a.cfg.Status()
	} else {
		doc = map[string]any{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (a *Admin) handleTracez(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("trace"); id != "" {
		if a.cfg.TraceJSON == nil {
			http.Error(w, "trace export disabled", http.StatusNotFound)
			return
		}
		doc, ok := a.cfg.TraceJSON(id)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown trace %q", id), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if a.cfg.Trace == nil {
		io.WriteString(w, "trace disabled\n")
		return
	}
	a.cfg.Trace(w)
}
