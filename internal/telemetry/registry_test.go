package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(2)
	c.Inc()
	c.Add(-5) // ignored
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	c.Set(10)
	c.Set(4) // regression ignored
	if got := c.Value(); got != 10 {
		t.Fatalf("counter after Set = %v, want 10", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	f := r.NewHistogram("h_seconds", "help", []float64{1, 2, 4})
	h := f.Histogram()
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, sum, n := h.snapshot()
	// buckets: le=1 → {0.5, 1}, le=2 → +1.5, le=4 → +3, +Inf → +100
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if n != 5 || sum != 106 {
		t.Fatalf("n=%d sum=%v, want 5, 106", n, sum)
	}
	h.Reset()
	if _, _, n := h.snapshot(); n != 0 {
		t.Fatalf("after Reset n=%d", n)
	}
}

func TestGatherDeterministicOrder(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		g := r.NewGauge("zz_last", "z")
		g.Gauge().Set(1)
		c := r.NewCounter("aa_first_total", "a", "node")
		c.Counter("9").Inc()
		c.Counter("10").Add(2)
		c.Counter("2").Add(3)
		return r
	}
	a, b := build().Exposition(), build().Exposition()
	if a != b {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "# TYPE aa_first_total counter") {
		t.Fatalf("missing TYPE line:\n%s", a)
	}
	if strings.Index(a, "aa_first_total") > strings.Index(a, "zz_last") {
		t.Fatalf("families not sorted by name:\n%s", a)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("ops_total", "ops", "worker")
	h := r.NewHistogram("lat_seconds", "lat", []float64{0.1, 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Counter("w").Inc()
				h.Histogram().Observe(float64(i%3) / 2)
				if i%100 == 0 {
					r.Gather()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Counter("w").Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	_, _, n := h.Histogram().snapshot()
	if n != 8000 {
		t.Fatalf("histogram n = %d, want 8000", n)
	}
}

func TestOnGatherHook(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("synced", "s")
	calls := 0
	r.OnGather(func() {
		calls++
		g.Gauge().Set(float64(calls))
	})
	r.Gather()
	r.Gather()
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2", calls)
	}
	if got := g.Gauge().Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different kind did not panic")
		}
	}()
	r.NewGauge("x_total", "x")
}
