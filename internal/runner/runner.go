// Package runner provides the bounded worker-pool executor the experiment
// harnesses use to fan independent simulation cells out across CPUs.
//
// Every figure of the paper's evaluation is a sweep over workload ×
// grid-size × scheme × seed cells, and each cell is a fully deterministic,
// single-threaded simulation world. The runner exploits that independence:
// cells run concurrently on a bounded pool of workers, results are
// reassembled in input order, and per-cell wall-clock timing is recorded —
// so a parallel sweep is byte-identical to the serial one, just faster.
package runner

import (
	"runtime"
	"sync"
	"time"
)

// DefaultWorkers resolves a Parallelism knob: values <= 0 mean "one worker
// per available CPU" (runtime.GOMAXPROCS), anything else is taken as-is.
func DefaultWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Timing records the wall-clock accounting of one sweep. A nil *Timing is
// accepted everywhere and means "don't record".
type Timing struct {
	// Workers is the pool size the sweep actually used.
	Workers int
	// Wall is the elapsed time of the whole sweep.
	Wall time.Duration
	// Cells holds each cell's own wall-clock duration, in input order.
	Cells []time.Duration
}

// Total returns the summed per-cell time — the serial-equivalent cost.
func (t *Timing) Total() time.Duration {
	var sum time.Duration
	for _, c := range t.Cells {
		sum += c
	}
	return sum
}

// Max returns the slowest cell's duration (0 if no cells ran).
func (t *Timing) Max() time.Duration {
	var max time.Duration
	for _, c := range t.Cells {
		if c > max {
			max = c
		}
	}
	return max
}

// Mean returns the average per-cell duration (0 if no cells ran).
func (t *Timing) Mean() time.Duration {
	if len(t.Cells) == 0 {
		return 0
	}
	return t.Total() / time.Duration(len(t.Cells))
}

// Speedup returns Total/Wall — how much faster the sweep ran than its
// serial equivalent (1.0 when serial or when nothing was measured).
func (t *Timing) Speedup() float64 {
	if t.Wall <= 0 {
		return 1
	}
	return float64(t.Total()) / float64(t.Wall)
}

// String renders a one-line summary, e.g.
// "24 cells in 1.2s wall (cpu 8.9s, 7.4x on 8 workers, max cell 410ms)".
func (t *Timing) String() string {
	return formatTiming(t)
}

// Map runs fn(i) for i in [0, n) across a bounded pool of workers and
// collects the results in input order, so the output is independent of
// scheduling. workers <= 0 selects one worker per CPU; the pool never
// exceeds n. The first error wins and is returned after all in-flight cells
// drain; results computed before the error are still populated. fn must be
// safe to call concurrently (the simulations are independent value worlds,
// so they are).
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapTimed[T](workers, n, nil, fn)
}

// MapTimed is Map with per-cell wall-clock recording: when tm is non-nil it
// is overwritten with the sweep's Timing.
func MapTimed[T any](workers, n int, tm *Timing, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	var cells []time.Duration
	if tm != nil {
		cells = make([]time.Duration, n)
	}
	start := time.Now()
	if n > 0 {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					cellStart := time.Now()
					v, err := fn(i)
					if cells != nil {
						cells[i] = time.Since(cellStart)
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						continue
					}
					out[i] = v
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
		if firstErr != nil {
			if tm != nil {
				*tm = Timing{Workers: workers, Wall: time.Since(start), Cells: cells}
			}
			return out, firstErr
		}
	}
	if tm != nil {
		*tm = Timing{Workers: workers, Wall: time.Since(start), Cells: cells}
	}
	return out, nil
}
