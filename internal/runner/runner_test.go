package runner

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderPreserved(t *testing.T) {
	out, err := Map(8, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	const workers = 3
	var live, peak int64
	_, err := Map(workers, 50, func(i int) (int, error) {
		n := atomic.AddInt64(&live, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt64(&live, -1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&peak); got > workers {
		t.Fatalf("observed %d concurrent cells, want <= %d", got, workers)
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "cell 5 failed") {
		t.Fatalf("err = %v, want cell 5 failure", err)
	}
	// Successful cells are still populated.
	if out[3] != 3 {
		t.Fatalf("out[3] = %d, want 3", out[3])
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got (%v, %v), want empty success", out, err)
	}
}

func TestMapTimedRecordsCells(t *testing.T) {
	var tm Timing
	_, err := MapTimed(2, 6, &tm, func(i int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", tm.Workers)
	}
	if len(tm.Cells) != 6 {
		t.Fatalf("len(Cells) = %d, want 6", len(tm.Cells))
	}
	for i, c := range tm.Cells {
		if c <= 0 {
			t.Fatalf("cell %d has no recorded duration", i)
		}
	}
	if tm.Wall <= 0 || tm.Total() <= 0 || tm.Max() <= 0 || tm.Mean() <= 0 {
		t.Fatalf("timing aggregates not populated: %+v", tm)
	}
	if tm.Speedup() <= 0 {
		t.Fatalf("Speedup() = %f, want > 0", tm.Speedup())
	}
	if s := tm.String(); !strings.Contains(s, "6 cells") {
		t.Fatalf("String() = %q, want cell count", s)
	}
}

func TestMapSerialEqualsParallel(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("cell-%d", i*7), nil }
	serial, err := Map(1, 40, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(8, 40, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d differs: %q vs %q", i, serial[i], parallel[i])
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := DefaultWorkers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := DefaultWorkers(5); got != 5 {
		t.Fatalf("DefaultWorkers(5) = %d, want 5", got)
	}
}

func TestTimingZeroValues(t *testing.T) {
	var tm Timing
	if tm.Total() != 0 || tm.Max() != 0 || tm.Mean() != 0 {
		t.Fatal("zero Timing should aggregate to zero")
	}
	if tm.Speedup() != 1 {
		t.Fatalf("zero Timing Speedup() = %f, want 1", tm.Speedup())
	}
	if s := tm.String(); s != "no cells" {
		t.Fatalf("zero Timing String() = %q", s)
	}
}
