package runner

import (
	"fmt"
	"time"
)

// formatTiming renders the human-readable sweep summary used by the CLIs
// and the markdown report.
func formatTiming(t *Timing) string {
	if t == nil || len(t.Cells) == 0 {
		return "no cells"
	}
	return fmt.Sprintf("%d cells in %v wall (cpu %v, %.1fx on %d workers, max cell %v)",
		len(t.Cells), t.Wall.Round(time.Millisecond), t.Total().Round(time.Millisecond),
		t.Speedup(), t.Workers, t.Max().Round(time.Millisecond))
}
