// Package cost implements the §3.1.2 cost model that guides the base-station
// query rewriter.
//
// The performance metric is the cost of radio transmission. For a query q
// with result-message length len(q), sending one message costs
// Cstart + Ctrans·len(q). The per-unit-time number of result messages a set
// N_k of nodes generates is
//
//	result(q, N_k) = sel(q, N_k) · |N_k| / epoch_q            (Eq. 1)
//
// and, with N_k the nodes at level k of the routing tree, the per-unit-time
// number of transmissions is
//
//	trans(q) = Σ_k result(q, N_k) · k                          (Eq. 2)
//
// for acquisition queries (each result is forwarded once per hop). For
// aggregation queries the true value lies in [result(q, N), trans(q)]
// depending on where in-network aggregation happens; following the paper we
// use the conservative lower bound result(q, N). Finally
//
//	cost(q) = trans(q) · (Cstart + Ctrans·len(q))              (Eq. 3)
//
// Costs are dimensionless: seconds of airtime per second of wall clock,
// summed over the network.
//
// Selectivity is estimated from per-attribute equi-width histograms under an
// attribute-independence assumption. As in the paper's experiments, a single
// distribution is shared by all levels of the routing tree.
package cost

import (
	"fmt"
	"math"
	"time"

	"repro/internal/field"
	"repro/internal/query"
)

// Defaults for a mica2-class radio: 38.4 kbps ≈ 4.8 bytes/ms, and a couple
// of milliseconds of startup (preamble + MAC) per packet.
const (
	DefaultCstart = 2 * time.Millisecond
	// DefaultCtrans is the airtime per payload byte (the reciprocal of the
	// radio data rate, per §3.1.2's statistics discussion).
	DefaultCtrans = 208 * time.Microsecond
)

// Message length model, in bytes. A result message carries a TinyOS-like
// header plus per-item payload.
const (
	HeaderBytes      = 11 // radio header + origin id + epoch sequence
	BytesPerAttr     = 2  // one 16-bit reading per acquired attribute
	BytesPerAgg      = 5  // operator/attribute tag + 32-bit partial value
	BytesPerQueryTag = 1  // per-query tag in shared (packed) messages
)

// MsgLen returns len(q): the result-message length of a query in bytes.
func MsgLen(q query.Query) int {
	if q.IsAggregation() {
		return HeaderBytes + BytesPerAgg*len(q.Aggs)
	}
	if q.IsWindowed() {
		return HeaderBytes + BytesPerAttr*len(q.Wins)
	}
	return HeaderBytes + BytesPerAttr*len(q.Attrs)
}

// Histogram is an equi-width histogram over one attribute's value range,
// used to estimate predicate selectivity. A fresh histogram is uniform; it
// is refined with observed readings (the paper periodically maintains the
// data distribution; our simulations feed results back in) and decays old
// mass exponentially so the estimate tracks a drifting phenomenon rather
// than averaging over its whole history.
type Histogram struct {
	attr    field.Attr
	lo, hi  float64
	buckets []float64 // weights, not necessarily normalized
	total   float64
	// sinceDecay counts observations since the last decay; every
	// decayEvery observations all weights are halved (amortized O(1) per
	// observation).
	sinceDecay int
	decayEvery int
}

// decayEveryDefault balances responsiveness against estimate noise: with
// tens of nodes reporting a few attributes per epoch, the histogram's
// effective memory spans minutes of virtual time.
const decayEveryDefault = 4096

// NewHistogram returns a uniform histogram with the given bucket count over
// [lo, hi].
func NewHistogram(attr field.Attr, lo, hi float64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	h := &Histogram{
		attr: attr, lo: lo, hi: hi,
		buckets:    make([]float64, buckets),
		decayEvery: decayEveryDefault,
	}
	for i := range h.buckets {
		h.buckets[i] = 1
	}
	h.total = float64(buckets)
	return h
}

// Observe folds one observed reading into the histogram with unit weight.
func (h *Histogram) Observe(v float64) {
	if h.hi <= h.lo {
		return
	}
	idx := int(float64(len(h.buckets)) * (v - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.total++
	h.sinceDecay++
	if h.sinceDecay >= h.decayEvery {
		h.sinceDecay = 0
		h.total = 0
		for i := range h.buckets {
			h.buckets[i] *= 0.5
			h.total += h.buckets[i]
		}
	}
}

// Selectivity returns the estimated fraction of readings in [min, max].
func (h *Histogram) Selectivity(min, max float64) float64 {
	if h.total == 0 || h.hi <= h.lo {
		return 1
	}
	min = math.Max(min, h.lo)
	max = math.Min(max, h.hi)
	if min > max {
		return 0
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	var sum float64
	for i, w := range h.buckets {
		bLo := h.lo + float64(i)*width
		bHi := bLo + width
		overlap := math.Min(max, bHi) - math.Max(min, bLo)
		if overlap > 0 {
			sum += w * overlap / width
		}
	}
	return sum / h.total
}

// Model evaluates the cost equations for a fixed deployment.
type Model struct {
	cstart time.Duration
	ctrans time.Duration
	// levelSizes[k] = |N_k|; levelSizes[0] is the base station and never
	// generates results.
	levelSizes []int
	sensors    int // Σ_{k≥1} |N_k|
	hist       map[field.Attr]*Histogram
}

// Config parametrizes a Model.
type Config struct {
	// Cstart is the per-message startup cost; DefaultCstart if zero.
	Cstart time.Duration
	// Ctrans is the per-byte transmission cost; DefaultCtrans if zero.
	Ctrans time.Duration
	// HistogramBuckets is the bucket count per attribute histogram
	// (default 64).
	HistogramBuckets int
}

// NewModel builds a model for a deployment with the given per-level node
// counts (levelSizes[0] is the base station). Histograms start uniform over
// each attribute's range for the total node count.
func NewModel(levelSizes []int, cfg Config) (*Model, error) {
	if len(levelSizes) == 0 || levelSizes[0] != 1 {
		return nil, fmt.Errorf("cost: levelSizes must start with the base station, got %v", levelSizes)
	}
	if cfg.Cstart == 0 {
		cfg.Cstart = DefaultCstart
	}
	if cfg.Ctrans == 0 {
		cfg.Ctrans = DefaultCtrans
	}
	if cfg.HistogramBuckets == 0 {
		cfg.HistogramBuckets = 64
	}
	m := &Model{
		cstart:     cfg.Cstart,
		ctrans:     cfg.Ctrans,
		levelSizes: append([]int(nil), levelSizes...),
		hist:       make(map[field.Attr]*Histogram, len(field.AllAttrs())),
	}
	total := 0
	for _, s := range levelSizes {
		total += s
	}
	m.sensors = total - 1
	for _, a := range field.AllAttrs() {
		lo, hi := a.Range(total)
		m.hist[a] = NewHistogram(a, lo, hi, cfg.HistogramBuckets)
	}
	return m, nil
}

// Observe feeds a reading into the attribute's histogram, refining future
// selectivity estimates.
func (m *Model) Observe(a field.Attr, v float64) {
	if h, ok := m.hist[a]; ok {
		h.Observe(v)
	}
}

// Selectivity returns sel(q, N): the estimated fraction of nodes whose
// readings satisfy all predicates, under attribute independence.
func (m *Model) Selectivity(preds []query.Predicate) float64 {
	sel := 1.0
	for _, p := range preds {
		h, ok := m.hist[p.Attr]
		if !ok {
			continue
		}
		sel *= h.Selectivity(p.Min, p.Max)
	}
	return sel
}

// ResultRate returns result(q, N_k) of Eq. (1): result messages generated
// per second by the nodes at level k.
func (m *Model) ResultRate(q query.Query, k int) float64 {
	if k <= 0 || k >= len(m.levelSizes) {
		return 0
	}
	return m.Selectivity(q.Preds) * float64(m.levelSizes[k]) / q.Epoch.Seconds()
}

// Trans returns trans(q) of Eq. (2): transmissions per second. For
// aggregation queries it returns the lower bound result(q, N) per §3.1.2.
func (m *Model) Trans(q query.Query) float64 {
	if q.IsAggregation() {
		return m.Selectivity(q.Preds) * float64(m.sensors) / q.Epoch.Seconds()
	}
	// Acquisition-like queries forward each origin's result hop by hop;
	// windowed queries do so only at their reporting instants.
	var sum float64
	for k := 1; k < len(m.levelSizes); k++ {
		sum += m.ResultRate(q, k) * float64(k)
	}
	if q.IsWindowed() {
		sum /= float64(q.Wins[0].Slide)
	}
	return sum
}

// PerMessage returns Cstart + Ctrans·len(q) in seconds.
func (m *Model) PerMessage(q query.Query) float64 {
	return m.cstart.Seconds() + m.ctrans.Seconds()*float64(MsgLen(q))
}

// Cost returns cost(q) of Eq. (3): the expected fraction of time the network
// spends transmitting q's results.
func (m *Model) Cost(q query.Query) float64 {
	return m.Trans(q) * m.PerMessage(q)
}

// Benefit returns benefit(q1, q2) = cost(q1) + cost(q2) − cost(q12) for the
// integrated query q12 (§3.1.2). It does not check rewritability; callers
// gate on query.Rewritable.
func (m *Model) Benefit(q1, q2 query.Query) float64 {
	merged := query.Integrate(q1, q2)
	return m.Cost(q1) + m.Cost(q2) - m.Cost(merged)
}

// BenefitRate implements the Beneficial(q_i, q_j) function of Algorithm 1:
// the benefit of integrating new query qi into synthetic query qj, divided
// by cost(qi). A rate of exactly 1 means qj covers qi — the new query adds
// no work to the network. Non-rewritable pairs return 0 (no benefit
// possible). Rates are clamped to 1 against floating-point drift.
func (m *Model) BenefitRate(qi, qj query.Query) float64 {
	if query.Covers(qj, qi) {
		return 1
	}
	if !query.Rewritable(qi, qj) {
		return 0
	}
	ci := m.Cost(qi)
	if ci <= 0 {
		return 0
	}
	rate := m.Benefit(qj, qi) / ci
	if rate > 1 {
		rate = 1
	}
	return rate
}

// AvgDepth returns d = Σ_k k·|N_k| / |N|, the average depth used in the
// paper's worked example.
func (m *Model) AvgDepth() float64 {
	if m.sensors == 0 {
		return 0
	}
	sum := 0
	for k := 1; k < len(m.levelSizes); k++ {
		sum += k * m.levelSizes[k]
	}
	return float64(sum) / float64(m.sensors)
}

// Sensors returns the number of sensor nodes (excluding the base station).
func (m *Model) Sensors() int { return m.sensors }
