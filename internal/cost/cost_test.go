package cost

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/field"
	"repro/internal/query"
)

// fourLevels: base station + 3 sensors at level 1, 6 at level 2, 6 at
// level 3 (15 sensors).
func fourLevels(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel([]int{1, 3, 6, 6}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil, Config{}); err == nil {
		t.Fatal("empty levelSizes should error")
	}
	if _, err := NewModel([]int{2, 3}, Config{}); err == nil {
		t.Fatal("levelSizes[0] != 1 should error")
	}
}

func TestHistogramUniformSelectivity(t *testing.T) {
	h := NewHistogram(field.AttrLight, 0, 1000, 64)
	cases := []struct {
		min, max, want float64
	}{
		{0, 1000, 1},
		{0, 500, 0.5},
		{250, 750, 0.5},
		{-100, 2000, 1}, // clamped to the range
		{900, 910, 0.01},
		{500, 400, 0}, // empty
	}
	for _, c := range cases {
		got := h.Selectivity(c.min, c.max)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("sel[%f,%f] = %f, want %f", c.min, c.max, got, c.want)
		}
	}
}

func TestHistogramObserveShiftsMass(t *testing.T) {
	h := NewHistogram(field.AttrLight, 0, 1000, 10)
	before := h.Selectivity(0, 100)
	for i := 0; i < 1000; i++ {
		h.Observe(50)
	}
	after := h.Selectivity(0, 100)
	if after <= before {
		t.Fatalf("observing mass at 50 should raise sel[0,100]: %f -> %f", before, after)
	}
	if after < 0.9 {
		t.Fatalf("sel[0,100] = %f after 1000 observations at 50", after)
	}
}

func TestHistogramObserveOutOfRangeClamps(t *testing.T) {
	h := NewHistogram(field.AttrTemp, 0, 100, 4)
	h.Observe(-50)
	h.Observe(500)
	// Mass lands in the edge buckets rather than being lost.
	if h.Selectivity(0, 100) != 1 {
		t.Fatal("full-range selectivity must stay 1")
	}
}

func TestSelectivityIndependence(t *testing.T) {
	m := fourLevels(t)
	preds := []query.Predicate{
		{Attr: field.AttrLight, Min: 0, Max: 500}, // 0.5
		{Attr: field.AttrTemp, Min: 0, Max: 25},   // 0.25
	}
	got := m.Selectivity(preds)
	if math.Abs(got-0.125) > 1e-9 {
		t.Fatalf("selectivity = %f, want 0.125", got)
	}
	if m.Selectivity(nil) != 1 {
		t.Fatal("no predicates means selectivity 1")
	}
}

func TestResultRateEq1(t *testing.T) {
	m := fourLevels(t)
	q := query.MustParse("SELECT light WHERE light >= 0 AND light <= 500 EPOCH DURATION 4096")
	// sel=0.5, |N_2|=6, epoch=4.096s → 0.5*6/4.096.
	want := 0.5 * 6 / 4.096
	if got := m.ResultRate(q, 2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("result rate = %f, want %f", got, want)
	}
	if m.ResultRate(q, 0) != 0 {
		t.Fatal("base station generates no results")
	}
	if m.ResultRate(q, 99) != 0 {
		t.Fatal("levels beyond maxDepth generate no results")
	}
}

func TestTransAcquisitionEq2(t *testing.T) {
	m := fourLevels(t)
	q := query.MustParse("SELECT light EPOCH DURATION 2048")
	// sel=1: Σ k·|N_k|/epoch = (1·3 + 2·6 + 3·6)/2.048 = 33/2.048.
	want := 33.0 / 2.048
	if got := m.Trans(q); math.Abs(got-want) > 1e-9 {
		t.Fatalf("trans = %f, want %f", got, want)
	}
}

func TestTransAggregationLowerBound(t *testing.T) {
	m := fourLevels(t)
	q := query.MustParse("SELECT MAX(light) EPOCH DURATION 2048")
	// Lower bound: sel·|N|/epoch = 15/2.048 (every generating node transmits
	// exactly once).
	want := 15.0 / 2.048
	if got := m.Trans(q); math.Abs(got-want) > 1e-9 {
		t.Fatalf("agg trans = %f, want %f", got, want)
	}
	acq := query.MustParse("SELECT light EPOCH DURATION 2048")
	if m.Trans(q) >= m.Trans(acq) {
		t.Fatal("aggregation lower bound must be below acquisition Eq.2")
	}
}

func TestCostEq3(t *testing.T) {
	m := fourLevels(t)
	q := query.MustParse("SELECT light EPOCH DURATION 2048")
	perMsg := DefaultCstart.Seconds() + DefaultCtrans.Seconds()*float64(MsgLen(q))
	want := m.Trans(q) * perMsg
	if got := m.Cost(q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("cost = %g, want %g", got, want)
	}
}

func TestMsgLen(t *testing.T) {
	acq := query.MustParse("SELECT light, temp")
	if got := MsgLen(acq); got != HeaderBytes+2*BytesPerAttr {
		t.Fatalf("acq len = %d", got)
	}
	agg := query.MustParse("SELECT MAX(light), MIN(light), AVG(temp)")
	if got := MsgLen(agg); got != HeaderBytes+3*BytesPerAgg {
		t.Fatalf("agg len = %d", got)
	}
}

func TestCostMonotonicity(t *testing.T) {
	m := fourLevels(t)
	narrow := query.MustParse("SELECT light WHERE light >= 0 AND light <= 100 EPOCH DURATION 4096")
	wide := query.MustParse("SELECT light WHERE light >= 0 AND light <= 900 EPOCH DURATION 4096")
	if m.Cost(narrow) >= m.Cost(wide) {
		t.Fatal("wider predicate must cost at least as much")
	}
	slow := query.MustParse("SELECT light EPOCH DURATION 8192")
	fast := query.MustParse("SELECT light EPOCH DURATION 2048")
	if m.Cost(slow) >= m.Cost(fast) {
		t.Fatal("shorter epoch must cost more")
	}
}

func TestBenefitSymmetric(t *testing.T) {
	m := fourLevels(t)
	q1 := query.MustParse("SELECT light WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	q2 := query.MustParse("SELECT light WHERE light >= 200 AND light <= 600 EPOCH DURATION 4096")
	if math.Abs(m.Benefit(q1, q2)-m.Benefit(q2, q1)) > 1e-12 {
		t.Fatal("benefit should be symmetric")
	}
}

func TestBenefitRateCoverageIsOne(t *testing.T) {
	m := fourLevels(t)
	syn := query.MustParse("SELECT light, temp WHERE light >= 0 AND light <= 600 EPOCH DURATION 2048")
	q := query.MustParse("SELECT light WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096")
	if got := m.BenefitRate(q, syn); got != 1 {
		t.Fatalf("rate = %f, want exactly 1 for coverage", got)
	}
}

func TestBenefitRateNonRewritable(t *testing.T) {
	m := fourLevels(t)
	a := query.MustParse("SELECT MAX(light) WHERE temp > 20")
	b := query.MustParse("SELECT MAX(light) WHERE temp > 30")
	if got := m.BenefitRate(a, b); got != 0 {
		t.Fatalf("rate = %f, want 0 for non-rewritable pair", got)
	}
}

// The §3.1.3 worked example: with uniform light in [0,1000] and unit message
// cost, q1(280,600)@2 and q2(100,300)@4 must NOT merge; q3(150,500)@4 merges
// with q2; the result then merges with q1. We scale epochs 2→4096ms, 4→8192ms
// (ratios preserved).
func TestPaperRewritingExample(t *testing.T) {
	m := fourLevels(t)
	q1 := query.MustParse("select light where 280<light<600 epoch duration 4096")
	q2 := query.MustParse("select light where 100<light<300 epoch duration 8192")
	q3 := query.MustParse("select light where 150<light<500 epoch duration 8192")

	if b := m.Benefit(q1, q2); b >= 0 {
		t.Fatalf("benefit(q1,q2) = %f, want < 0 (paper: 320/2+200/4-500/2 < 0)", b)
	}
	if b := m.Benefit(q2, q3); b <= 0 {
		t.Fatalf("benefit(q2,q3) = %f, want > 0 (paper: 200/4+350/4-400/4 > 0)", b)
	}
	// The paper claims benefit(q1',q3) < 0, but its own formula gives
	// d/L·(320/2 + 350/4 − 450/2) = +22.5·d/L (the union of (280,600) and
	// (150,500) is (150,600), width 450 — the paper's "350/2" is a typo).
	// The greedy outcome is unchanged because the benefit *rate* against q2'
	// (37.5/87.5) beats q1' (22.5/87.5), so q3 still merges with q2'.
	if m.BenefitRate(q3, q1) >= m.BenefitRate(q3, q2) {
		t.Fatalf("greedy must prefer q2': rate(q3,q1)=%f, rate(q3,q2)=%f",
			m.BenefitRate(q3, q1), m.BenefitRate(q3, q2))
	}
	q23 := query.Integrate(q2, q3)
	if b := m.Benefit(q1, q23); b <= 0 {
		t.Fatalf("benefit(q1,q2'') = %f, want > 0 (paper: 320/2+400/4-500/2 > 0)", b)
	}
	final := query.Integrate(q1, q23)
	// Final: light in (100,600), epoch 4096ms.
	if len(final.Preds) != 1 {
		t.Fatalf("final preds = %v", final.Preds)
	}
	p := final.Preds[0]
	if !(p.Min > 100 && p.Min < 100.01 && p.Max > 599.99 && p.Max < 600) {
		t.Fatalf("final pred = %v, want (100,600)", p)
	}
	if final.Epoch != 4096*time.Millisecond {
		t.Fatalf("final epoch = %v, want 4096ms", final.Epoch)
	}
}

// Property: integrating never yields benefit rate above 1 and coverage
// always yields exactly 1.
func TestBenefitRateBounds(t *testing.T) {
	m := fourLevels(t)
	f := func(lo1, hi1, lo2, hi2 float64, e1, e2 uint8) bool {
		mk := func(lo, hi float64, e uint8) query.Query {
			lo = math.Mod(math.Abs(lo), 1000)
			hi = lo + math.Mod(math.Abs(hi), 1000-lo+1)
			return query.Query{
				Attrs: []field.Attr{field.AttrLight},
				Preds: []query.Predicate{{Attr: field.AttrLight, Min: lo, Max: hi}},
				Epoch: time.Duration(1+int(e)%12) * query.MinEpoch,
			}.Normalize()
		}
		qi := mk(lo1, hi1, e1)
		qj := mk(lo2, hi2, e2)
		rate := m.BenefitRate(qi, qj)
		if rate > 1 {
			return false
		}
		if query.Covers(qj, qi) && rate != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgDepth(t *testing.T) {
	m := fourLevels(t)
	// (1·3 + 2·6 + 3·6)/15 = 33/15 = 2.2
	if got := m.AvgDepth(); math.Abs(got-2.2) > 1e-9 {
		t.Fatalf("avg depth = %f, want 2.2", got)
	}
	if m.Sensors() != 15 {
		t.Fatalf("sensors = %d, want 15", m.Sensors())
	}
}

func TestObserveRefinesSelectivity(t *testing.T) {
	m := fourLevels(t)
	before := m.Selectivity([]query.Predicate{{Attr: field.AttrLight, Min: 0, Max: 100}})
	for i := 0; i < 500; i++ {
		m.Observe(field.AttrLight, 50)
	}
	after := m.Selectivity([]query.Predicate{{Attr: field.AttrLight, Min: 0, Max: 100}})
	if after <= before {
		t.Fatal("Observe should shift estimated selectivity")
	}
}

// Exponential decay: after a distribution shift, the histogram tracks the
// new distribution instead of averaging over its whole history.
func TestHistogramDecayTracksDrift(t *testing.T) {
	h := NewHistogram(field.AttrLight, 0, 1000, 10)
	// Phase 1: mass at 100.
	for i := 0; i < 3*decayEveryDefault; i++ {
		h.Observe(100)
	}
	if s := h.Selectivity(0, 200); s < 0.9 {
		t.Fatalf("phase 1 sel = %f", s)
	}
	// Phase 2: the phenomenon moves to 900.
	for i := 0; i < 3*decayEveryDefault; i++ {
		h.Observe(900)
	}
	hi := h.Selectivity(800, 1000)
	lo := h.Selectivity(0, 200)
	if hi < 0.8 {
		t.Fatalf("after drift, sel[800,1000] = %f, want ≥ 0.8", hi)
	}
	if lo > 0.2 {
		t.Fatalf("after drift, stale sel[0,200] = %f, want ≤ 0.2", lo)
	}
}
