package gateway

import (
	"testing"
	"time"
)

// These tests pin the intern table across the full subscription lifecycle:
// churn through last-unsubscribe and through detach/resume must never leave
// a stale key pointer in the table (which would break pointer-compare
// dedup) or let the table grow past the live query set.

const churnQuantum = 8192 * time.Millisecond

// TestInternChurnReSharesAfterLastUnsubscribe: dropping the last subscriber
// of a canonical query removes its interned key; a later re-subscribe of
// the same canonical text must mint a fresh shared entry and dedup against
// it — no stale-pointer misses, no table growth.
func TestInternChurnReSharesAfterLastUnsubscribe(t *testing.T) {
	gw := newTestGateway(t, Config{SessionQuota: 64, Rate: 1 << 10, Burst: 1 << 10})
	alice, err := gw.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := gw.Register("bob")
	if err != nil {
		t.Fatal(err)
	}

	const text = "SELECT light, temp WHERE light > 100 EPOCH DURATION 8192ms"
	const rounds = 6
	for i := 0; i < rounds; i++ {
		ta := stage(t, alice, text)
		tb := stage(t, bob, "SELECT temp, light WHERE light > 100 EPOCH DURATION 8192ms")
		if _, err := gw.Advance(churnQuantum); err != nil {
			t.Fatal(err)
		}
		subA, err := ta.Wait()
		if err != nil {
			t.Fatal(err)
		}
		subB, err := tb.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if subA.key != subB.key {
			t.Fatalf("round %d: equal canonical queries carry distinct key pointers", i)
		}
		if subA.QueryID() != subB.QueryID() {
			t.Fatalf("round %d: equal canonical queries admitted twice: %d vs %d",
				i, subA.QueryID(), subB.QueryID())
		}
		// Drop both subscribers — the second unsubscribe is the
		// last-unsubscribe that must evict the interned key.
		ua, err := alice.UnsubscribeAsync(subA.ID())
		if err != nil {
			t.Fatal(err)
		}
		ub, err := bob.UnsubscribeAsync(subB.ID())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gw.Advance(churnQuantum); err != nil {
			t.Fatal(err)
		}
		if _, err := ua.Wait(); err != nil {
			t.Fatal(err)
		}
		if _, err := ub.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	st := mustStats(t, gw)
	if st.DedupHits != rounds {
		t.Fatalf("dedup hits = %d, want %d (one per churn round)", st.DedupHits, rounds)
	}
	if st.Admitted != rounds {
		t.Fatalf("admitted = %d, want %d (fresh admission per round after last-unsubscribe)", st.Admitted, rounds)
	}
	if st.ActiveSubscriptions != 0 || st.SharedQueries != 0 {
		t.Fatalf("leftover state: %d subscriptions, %d shared queries", st.ActiveSubscriptions, st.SharedQueries)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if n := gw.keys.size(); n != 0 {
		t.Fatalf("interned keys after churn = %d, want 0", n)
	}
}

// TestInternChurnSharesAcrossDetachResume: a detached session's
// subscription keeps its canonical query admitted, so a new subscriber of
// the same text must dedup against it, and the resumed stream must come
// back on the same shared query — the table holds exactly one key
// throughout.
func TestInternChurnSharesAcrossDetachResume(t *testing.T) {
	gw := newTestGateway(t, Config{SessionQuota: 64})
	alice, err := gw.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	token := alice.Token()

	ta := stage(t, alice, "SELECT light EPOCH DURATION 8192ms")
	if _, err := gw.Advance(churnQuantum); err != nil {
		t.Fatal(err)
	}
	subA, err := ta.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Detach(); err != nil {
		t.Fatal(err)
	}

	// While alice is detached her query stays admitted; bob's semantically
	// equal subscribe must share it, not re-admit.
	bob, err := gw.Register("bob")
	if err != nil {
		t.Fatal(err)
	}
	tb := stage(t, bob, "SELECT light EPOCH DURATION 8192")
	if _, err := gw.Advance(churnQuantum); err != nil {
		t.Fatal(err)
	}
	subB, err := tb.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if subB.QueryID() != subA.QueryID() {
		t.Fatalf("detached query re-admitted: %d vs %d", subB.QueryID(), subA.QueryID())
	}
	if !subB.Shared() {
		t.Fatal("subscription against a detached session's query not marked shared")
	}

	// Resume alice: the revived stream must still share the same key
	// pointer as bob's live subscription.
	sess, infos, err := gw.Attach("alice", token)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("resume infos = %d, want 1", len(infos))
	}
	revived, err := sess.Resume(infos[0].ID, infos[0].LastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if revived.key != subB.key {
		t.Fatal("resumed subscription carries a stale key pointer")
	}
	if revived.QueryID() != subB.QueryID() {
		t.Fatalf("resumed stream on a different query: %d vs %d", revived.QueryID(), subB.QueryID())
	}

	st := mustStats(t, gw)
	if st.Admitted != 1 {
		t.Fatalf("admitted = %d, want 1 (one canonical query throughout)", st.Admitted)
	}
	if st.DedupHits != 1 {
		t.Fatalf("dedup hits = %d, want 1", st.DedupHits)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if n := gw.keys.size(); n != 0 {
		t.Fatalf("interned keys after close = %d, want 0", n)
	}
}
