package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"path/filepath"
	"testing"
	"time"
)

func newWireServer(t *testing.T, gw *Gateway, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.TickEvery == 0 {
		cfg.TickEvery = 5 * time.Millisecond
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 2048 * time.Millisecond
	}
	srv, err := NewServer(gw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

// TestClientServerBinary drives the full TCP path over the binary codec:
// hello (JSON handshake), subscribe, result delivery, stats, unsubscribe
// and the closing handshake — the binary twin of TestServerRoundTrip.
func TestClientServerBinary(t *testing.T) {
	gw := newTestGateway(t, Config{})
	srv := newWireServer(t, gw, ServerConfig{})

	c, err := Dial(srv.Addr().String(), ClientConfig{Binary: true, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	hello, err := c.Hello("alice", "")
	if err != nil {
		t.Fatal(err)
	}
	if hello.Session != "alice" || hello.Token == "" {
		t.Fatalf("hello response %+v", hello)
	}

	if err := c.Send(Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms", Tag: "s1"}); err != nil {
		t.Fatal(err)
	}
	subbed, err := c.RecvType(TypeSubscribed)
	if err != nil {
		t.Fatal(err)
	}
	if subbed.Sub == 0 || subbed.QueryID == 0 || subbed.Canonical == "" {
		t.Fatalf("subscribed response %+v", subbed)
	}

	rows, err := c.RecvType(TypeRows)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Sub != subbed.Sub || len(rows.Rows) == 0 {
		t.Fatalf("rows response %+v", rows)
	}
	for _, row := range rows.Rows {
		if _, ok := row.Values["light"]; !ok {
			t.Fatalf("row missing selected attribute: %+v", row)
		}
	}

	if err := c.Send(Request{Op: OpStats, Tag: "st"}); err != nil {
		t.Fatal(err)
	}
	st, err := c.RecvType(TypeStats)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats == nil || st.Stats.Admitted != 1 || st.Stats.ActiveSessions != 1 {
		t.Fatalf("stats response %+v", st.Stats)
	}

	if err := c.Send(Request{Op: OpUnsubscribe, Sub: subbed.Sub}); err != nil {
		t.Fatal(err)
	}
	closed, err := c.RecvType(TypeClosed)
	if err != nil {
		t.Fatal(err)
	}
	if closed.Sub != subbed.Sub || closed.Reason != ReasonUnsubscribed.String() {
		t.Fatalf("closed response %+v", closed)
	}
}

// TestWireHandshakeCompat pins the negotiation contract at the byte level:
// the hello request and response are JSON in both directions (so any
// pre-binary tool can complete a handshake), and the very next response
// after a Wire:"binary" hello is a binary frame.
func TestWireHandshakeCompat(t *testing.T) {
	gw := newTestGateway(t, Config{})
	srv := newWireServer(t, gw, ServerConfig{})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(conn)

	// JSON hello asking for binary.
	if err := json.NewEncoder(conn).Encode(Request{Op: OpHello, Client: "compat", Wire: "binary"}); err != nil {
		t.Fatal(err)
	}
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if line[0] == FrameMagic {
		t.Fatal("hello response was a binary frame; the handshake must stay JSON")
	}
	var hello Response
	if err := json.Unmarshal(line, &hello); err != nil {
		t.Fatalf("hello response not JSON: %v", err)
	}
	if hello.Type != TypeHello || hello.Session != "compat" {
		t.Fatalf("hello response %+v", hello)
	}

	// The subscribe can still be sent as JSON — framings interleave — but
	// its response must now arrive as a binary frame.
	if err := json.NewEncoder(conn).Encode(Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms"}); err != nil {
		t.Fatal(err)
	}
	first, err := br.ReadByte()
	if err != nil {
		t.Fatal(err)
	}
	if first != FrameMagic {
		t.Fatalf("post-handshake response starts with %#x, want binary frame magic %#x", first, FrameMagic)
	}
	payload, err := readBinaryFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	subbed, err := decodeResponsePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if subbed.Type != TypeSubscribed || subbed.Sub == 0 {
		t.Fatalf("subscribed response %+v", subbed)
	}
}

// TestServerForceJSON: with the -wire json debug mode, a client requesting
// binary still gets NDJSON for every response.
func TestServerForceJSON(t *testing.T) {
	gw := newTestGateway(t, Config{})
	srv := newWireServer(t, gw, ServerConfig{ForceJSON: true})

	c, err := Dial(srv.Addr().String(), ClientConfig{Binary: true, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("debug", ""); err != nil {
		t.Fatal(err)
	}
	// Binary-framed request: the server decodes it but must answer in JSON.
	if err := c.Send(Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms"}); err != nil {
		t.Fatal(err)
	}
	raw, err := c.br.Peek(1)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] == FrameMagic {
		t.Fatal("ForceJSON server emitted a binary frame")
	}
	subbed, err := c.RecvType(TypeSubscribed)
	if err != nil {
		t.Fatal(err)
	}
	if subbed.Sub == 0 {
		t.Fatalf("subscribed response %+v", subbed)
	}
	if _, err := c.RecvType(TypeRows); err != nil {
		t.Fatal(err)
	}
}

// TestServerCrashReattachResumeBinary replays the crash-recovery handshake
// over the binary codec — the WAL below it is binary too, so this covers
// exactly-once resume across the full format change.
func TestServerCrashReattachResumeBinary(t *testing.T) {
	cfg := walConfig(t, filepath.Join(t.TempDir(), "gw.wal"))
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srvCfg := ServerConfig{
		Addr:      "127.0.0.1:0",
		TickEvery: 5 * time.Millisecond,
		Quantum:   2048 * time.Millisecond,
	}
	srv, err := NewServer(gw, srvCfg)
	if err != nil {
		_ = gw.Close()
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr().String(), ClientConfig{Binary: true, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	hello, err := c.Hello("phoenix", "")
	if err != nil {
		t.Fatal(err)
	}
	if hello.Token == "" {
		t.Fatal("hello carried no resume token")
	}
	if err := c.Send(Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms"}); err != nil {
		t.Fatal(err)
	}
	subbed, err := c.RecvType(TypeSubscribed)
	if err != nil {
		t.Fatal(err)
	}
	var lastSeen uint64
	for i := 0; i < 2; i++ {
		r, err := c.RecvType(TypeRows)
		if err != nil {
			t.Fatal(err)
		}
		if r.Seq != lastSeen+1 {
			t.Fatalf("pre-crash seq = %d, want %d", r.Seq, lastSeen+1)
		}
		lastSeen = r.Seq
	}
	c.Close()

	_ = srv.Close()
	if err := gw.Crash(); err != nil {
		t.Fatal(err)
	}
	g2, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer(g2, srvCfg)
	if err != nil {
		_ = g2.Close()
		t.Fatal(err)
	}
	defer func() {
		_ = g2.Close()
		_ = s2.Close()
	}()

	c2, err := Dial(s2.Addr().String(), ClientConfig{Binary: true, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	h2, err := c2.Hello("phoenix", hello.Token)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2.Subs) != 1 || h2.Subs[0].Sub != subbed.Sub {
		t.Fatalf("re-attach listed %+v, want subscription %d", h2.Subs, subbed.Sub)
	}
	if err := c2.Send(Request{Op: OpResume, Sub: subbed.Sub, After: lastSeen}); err != nil {
		t.Fatal(err)
	}
	rs, err := c2.RecvType(TypeSubscribed)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Resumed || rs.Sub != subbed.Sub {
		t.Fatalf("resume response %+v", rs)
	}
	for i := 0; i < 2; i++ {
		r, err := c2.RecvType(TypeRows)
		if err != nil {
			t.Fatal(err)
		}
		if r.Seq != lastSeen+1 {
			t.Fatalf("post-resume seq = %d, want %d", r.Seq, lastSeen+1)
		}
		lastSeen = r.Seq
	}
}

// TestNetLoadgenSmoke exercises the over-the-wire load generator briefly in
// both encodings; delivery counts, not throughput, are asserted (wall-clock
// throughput is not deterministic in CI).
func TestNetLoadgenSmoke(t *testing.T) {
	for _, json := range []bool{false, true} {
		rep, err := RunNetLoadgen(NetLoadConfig{
			Clients:       4,
			SubsPerClient: 1,
			Duration:      300 * time.Millisecond,
			Pool:          4,
			Seed:          1,
			JSON:          json,
			TickEvery:     2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("json=%v: %v", json, err)
		}
		if rep.Messages == 0 {
			t.Fatalf("json=%v: no messages delivered:\n%s", json, rep)
		}
		wantWire := "binary"
		if json {
			wantWire = "json"
		}
		if rep.Wire != wantWire {
			t.Fatalf("wire = %q, want %q", rep.Wire, wantWire)
		}
	}
}

// TestFrameBufPoolReuse: the pooled encode buffer grows once and is reused
// — the pool must hand back byte slices with retained capacity.
func TestFrameBufPoolReuse(t *testing.T) {
	// Under the race detector sync.Pool randomly drops a fraction of Puts
	// (to shake out pool races), so a single put/get round can hand back a
	// fresh buffer even though the code is correct. Retrying makes the odds
	// of every round being dropped negligible.
	for attempt := 0; attempt < 8; attempt++ {
		bp := getFrameBuf()
		*bp = append((*bp)[:0], bytes.Repeat([]byte{0xAB}, 4096)...)
		putFrameBuf(bp)
		got := getFrameBuf()
		if len(*got) != 0 {
			putFrameBuf(got)
			t.Fatalf("pooled buffer not reset: len=%d", len(*got))
		}
		retained := cap(*got) >= 4096
		putFrameBuf(got)
		if retained {
			return
		}
	}
	t.Fatal("pooled buffer lost capacity on every attempt")
}
