package gateway

import (
	"time"

	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// Backend is the serving surface Server drives: session registration and
// re-attachment, virtual-time pacing, and the stats snapshot. The single
// *Gateway implements it directly; the federation router implements it
// over a fleet of shards, which lets one TCP server front either without
// the wire protocol knowing the difference.
type Backend interface {
	// RegisterSession creates a session under a unique client-chosen name.
	RegisterSession(name string) (ServerSession, error)
	// AttachSession re-claims a detached session by name and resume token,
	// reporting its resumable streams.
	AttachSession(name, token string) (ServerSession, []ResumeInfo, error)
	// Advance commits staged commands and moves virtual time forward by d,
	// returning the number of commands applied.
	Advance(d time.Duration) (int, error)
	// ServeStats snapshots the backend's counters and current virtual time.
	ServeStats() (Stats, sim.Time, error)
}

// ServerSession is the per-client surface the connection handler uses.
type ServerSession interface {
	Name() string
	Token() string
	// SubscribeQuery parses and subscribes a TinyDB-dialect query string.
	SubscribeQuery(text string) (ServerSub, error)
	Unsubscribe(id SubID) error
	// Resume revives a detached stream from just after sequence number
	// `after`, replaying the parked tail before going live.
	Resume(id SubID, after uint64) (ServerSub, error)
	// Detach releases the connection but keeps the session resumable.
	Detach() error
	// CloseAsync tears the session down; completion may lag the call.
	CloseAsync() error
}

// BudgetSubscriber is the optional ServerSession extension for deadline
// propagation: a wire subscribe carrying deadline_ms lands here, and the
// budget rides down through whatever mailbox chain the backend has
// (router staging, shard gateway staging) — any hop that out-waits the
// budget sheds the command with ErrOverloaded instead of applying it
// late. Sessions without the extension just ignore budgets.
type BudgetSubscriber interface {
	SubscribeQueryBudget(text string, budget time.Duration) (ServerSub, error)
}

// TracedSubscriber is the optional ServerSession extension for causal
// tracing: a wire subscribe carrying trace_id (and possibly a deadline
// budget) lands here, and the trace context rides down the tier chain so
// every hop's span joins the same trace. A zero trace lets the backend
// derive one deterministically. Sessions without the extension just drop
// the trace, exactly as pre-tracing builds did.
type TracedSubscriber interface {
	SubscribeQueryTraced(text string, budget time.Duration, trace uint64) (ServerSub, error)
}

// BrownoutReporter is the optional Backend extension exposing the
// brownout degradation ladder. The server's pacer coalesces ticks at
// LevelBatching and the connection handlers shed new subscribes at
// LevelShed without even staging them.
type BrownoutReporter interface {
	BrownoutLevel() resilience.Level
}

// ServerSub is one update stream as the connection forwarders consume it.
type ServerSub interface {
	ID() SubID
	QueryID() query.ID
	Shared() bool
	Key() string
	Updates() <-chan Update
	Reason() CloseReason
}

// gwSession adapts *Session to ServerSession (the concrete methods return
// concrete types, so the interface needs thin wrappers).
type gwSession struct{ *Session }

func (s gwSession) SubscribeQuery(text string) (ServerSub, error) {
	sub, err := s.Session.SubscribeQuery(text)
	if err != nil {
		return nil, err
	}
	return sub, nil
}

func (s gwSession) SubscribeQueryBudget(text string, budget time.Duration) (ServerSub, error) {
	sub, err := s.Session.SubscribeQueryBudget(text, budget)
	if err != nil {
		return nil, err
	}
	return sub, nil
}

func (s gwSession) SubscribeQueryTraced(text string, budget time.Duration, trace uint64) (ServerSub, error) {
	sub, err := s.Session.SubscribeQueryTraced(text, budget, trace)
	if err != nil {
		return nil, err
	}
	return sub, nil
}

func (s gwSession) Resume(id SubID, after uint64) (ServerSub, error) {
	sub, err := s.Session.Resume(id, after)
	if err != nil {
		return nil, err
	}
	return sub, nil
}

func (s gwSession) CloseAsync() error {
	t, err := s.Session.CloseAsync()
	if err != nil {
		return err
	}
	go func() { _, _ = t.Wait() }()
	return nil
}

// RegisterSession implements Backend.
func (g *Gateway) RegisterSession(name string) (ServerSession, error) {
	s, err := g.Register(name)
	if err != nil {
		return nil, err
	}
	return gwSession{s}, nil
}

// AttachSession implements Backend.
func (g *Gateway) AttachSession(name, token string) (ServerSession, []ResumeInfo, error) {
	s, infos, err := g.Attach(name, token)
	if err != nil {
		return nil, nil, err
	}
	return gwSession{s}, infos, nil
}

// ServeStats implements Backend.
func (g *Gateway) ServeStats() (Stats, sim.Time, error) {
	sn, err := g.statsAndNow()
	return sn.stats, sn.now, err
}
