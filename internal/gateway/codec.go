package gateway

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/topology"
	"repro/internal/tracing"
)

// Binary wire codec for the serving hot path.
//
// Every frame is length-prefixed and self-describing:
//
//	[0]    FrameMagic (0xB7) — never a JSON line's first byte, so a reader
//	       peeking one byte can tell a binary frame from a legacy
//	       newline-delimited JSON line and the two framings interleave
//	       safely on one stream.
//	[1..]  uvarint payload length (bounded by maxFramePayload)
//	[...]  payload:
//	         [0] WireVersion
//	         [1] frame kind (request op, response type, or WAL op)
//	         ... kind-specific fields
//
// Field primitives: uvarint / zig-zag varint integers, uvarint
// length-prefixed strings, 8-byte little-endian IEEE-754 floats, one-byte
// bools, and one-byte attribute / aggregate-operator codes (field.Attr and
// query.AggOp are already small enums). Result rows ride as (attr, value)
// pairs straight from the simulation's typed form — the binary encoder
// never builds the string-keyed maps the JSON form needs, which is where
// most of the old hot-path garbage came from.
//
// Encoding appends into caller-owned buffers (see frameBufPool) so the
// steady-state fan-out path allocates nothing. Decoding is bounds-checked
// with a sticky error and never panics on malformed input: list counts are
// validated against the remaining payload bytes before any allocation.
//
// The codec carries the serving protocol (Request/Response) and the WAL
// record format symmetrically; JSON remains first-class for the handshake
// and as a -wire json debug fallback (the decoder on both ends
// auto-detects per frame).

// WireVersion is the binary frame format version; a frame with a different
// version byte is rejected, never misparsed.
const WireVersion = 1

// FrameMagic is the first byte of every binary frame. 0xB7 is not valid
// UTF-8-leading JSON ('{', whitespace, ...), so framing auto-detection is
// unambiguous.
const FrameMagic byte = 0xB7

// maxFramePayload bounds a frame's payload, mirroring the 1 MiB line cap
// the JSON scanner used. Oversized or negative lengths are malformed.
const maxFramePayload = 1 << 20

// Request op codes (binary spelling of the Op* strings).
const (
	frameReqHello byte = iota + 1
	frameReqSubscribe
	frameReqUnsubscribe
	frameReqStats
	frameReqPing
	frameReqResume
)

// Response type codes (binary spelling of the Type* strings).
const (
	frameRespHello byte = iota + 1
	frameRespSubscribed
	frameRespRows
	frameRespAgg
	frameRespClosed
	frameRespStats
	frameRespPong
	frameRespError
)

var opToCode = map[string]byte{
	OpHello:       frameReqHello,
	OpSubscribe:   frameReqSubscribe,
	OpUnsubscribe: frameReqUnsubscribe,
	OpStats:       frameReqStats,
	OpPing:        frameReqPing,
	OpResume:      frameReqResume,
}

var codeToOp = map[byte]string{
	frameReqHello:       OpHello,
	frameReqSubscribe:   OpSubscribe,
	frameReqUnsubscribe: OpUnsubscribe,
	frameReqStats:       OpStats,
	frameReqPing:        OpPing,
	frameReqResume:      OpResume,
}

var typeToCode = map[string]byte{
	TypeHello:      frameRespHello,
	TypeSubscribed: frameRespSubscribed,
	TypeRows:       frameRespRows,
	TypeAgg:        frameRespAgg,
	TypeClosed:     frameRespClosed,
	TypeStats:      frameRespStats,
	TypePong:       frameRespPong,
	TypeError:      frameRespError,
}

var codeToType = map[byte]string{
	frameRespHello:      TypeHello,
	frameRespSubscribed: TypeSubscribed,
	frameRespRows:       TypeRows,
	frameRespAgg:        TypeAgg,
	frameRespClosed:     TypeClosed,
	frameRespStats:      TypeStats,
	frameRespPong:       TypePong,
	frameRespError:      TypeError,
}

// allAttrs is the fixed attribute order binary rows are emitted in, so the
// encoding of a row is deterministic regardless of map iteration order
// (the JSON encoder sorts map keys; this is the binary analogue).
var allAttrs = field.AllAttrs()

// frameBufPool recycles encode buffers across responses, WAL records and
// client requests. Buffers start at 1 KiB and grow to fit; oversized ones
// are still pooled (epoch fan-out frames are all roughly the same size, so
// the pool converges on the workload's natural frame size).
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 1024); return &b },
}

func getFrameBuf() *[]byte  { return frameBufPool.Get().(*[]byte) }
func putFrameBuf(b *[]byte) { *b = (*b)[:0]; frameBufPool.Put(b) }

// --- append-style field primitives ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// frameReader decodes one payload with a sticky error; every accessor is
// bounds-checked so malformed frames fail cleanly instead of panicking.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (r *frameReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("gateway: malformed frame: %s at offset %d", what, r.off)
	}
}

func (r *frameReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated byte")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *frameReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *frameReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

func (r *frameReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string length past end")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *frameReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("bytes length past end")
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

func (r *frameReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *frameReader) bool() bool { return r.byte() != 0 }

// count validates a list length against the remaining payload before the
// caller allocates: every element needs at least min bytes, so a malicious
// length can never force a huge allocation from a tiny frame.
func (r *frameReader) count(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64((len(r.b)-r.off)/min)+1 {
		r.fail("list count past end")
		return 0
	}
	return int(n)
}

// more reports whether optional trailing fields remain. Frames from
// pre-tracing peers end exactly where the mandatory fields do and decode
// unchanged; encoders append the trace/provenance trailer only on traced
// traffic (trace id nonzero), so untraced frames stay byte-identical to the
// pre-tracing encoding.
func (r *frameReader) more() bool {
	return r.err == nil && r.off < len(r.b)
}

func (r *frameReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("gateway: malformed frame: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// --- framing ---

// frameHeaderMax is the reserved prefix: magic byte + worst-case uvarint
// length. The actual header is right-aligned against the payload at seal
// time, so short frames simply start a byte or two into the buffer.
const frameHeaderMax = 1 + binary.MaxVarintLen32

// beginFrame reserves header space; payload fields append after it. The
// append*Frame encoders require buf to be empty (len 0) — one frame per
// buffer; sealFrame depends on the header sitting at offset 0.
func beginFrame(buf []byte) []byte {
	return append(buf, make([]byte, frameHeaderMax)...)
}

// sealFrame writes the magic byte and length prefix in front of the
// payload built after beginFrame and returns the finished frame — a
// sub-slice of buf, right-aligned so the frame is contiguous. Callers keep
// the full buf (not the returned view) for pooling, so grown capacity is
// retained.
func sealFrame(buf []byte) []byte {
	payload := len(buf) - frameHeaderMax
	var hdr [frameHeaderMax]byte
	hdr[0] = FrameMagic
	n := binary.PutUvarint(hdr[1:], uint64(payload))
	start := frameHeaderMax - 1 - n
	copy(buf[start:], hdr[:1+n])
	return buf[start:]
}

// readBinaryFrame reads one frame's payload after the magic byte has been
// consumed, appending into scratch (which is grown as needed and returned).
func readBinaryFrame(br *bufio.Reader, scratch []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return scratch, err
	}
	if n > maxFramePayload {
		return scratch, fmt.Errorf("gateway: frame payload %d exceeds %d", n, maxFramePayload)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(br, scratch); err != nil {
		return scratch, err
	}
	return scratch, nil
}

// appendProvTrailer encodes the optional trace/provenance trailer of a
// delivered-result frame: trace id, shard mask, fragment counts, then one
// flags byte packing the cache-hit bit (bit 0) under the brownout rung
// (bits 1..7). Appended only when trace is nonzero.
func appendProvTrailer(b []byte, trace uint64, p tracing.Prov) []byte {
	b = binary.AppendUvarint(b, trace)
	b = binary.AppendUvarint(b, p.Shards)
	b = binary.AppendUvarint(b, uint64(p.Frags))
	b = binary.AppendUvarint(b, uint64(p.Reused))
	flags := byte(p.Rung) << 1
	if p.CacheHit {
		flags |= 1
	}
	return append(b, flags)
}

// wireProvOf converts a response's JSON-form provenance back to the packed
// form the binary trailer encodes; nil means an all-zero record.
func wireProvOf(p *WireProv) tracing.Prov {
	if p == nil {
		return tracing.Prov{}
	}
	return tracing.Prov{
		Shards:   p.ShardMask,
		Frags:    uint16(p.Frags),
		Reused:   uint16(p.Reused),
		CacheHit: p.CacheHit,
		Rung:     uint8(p.Rung),
	}
}

// decodeProvTrailer parses the trailer appendProvTrailer wrote, populating
// the response's TraceID and (when non-empty) Prov.
func decodeProvTrailer(r *frameReader, resp *Response) {
	resp.TraceID = r.uvarint()
	var p WireProv
	p.ShardMask = r.uvarint()
	p.Frags = int(r.uvarint())
	p.Reused = int(r.uvarint())
	flags := r.byte()
	p.CacheHit = flags&1 != 0
	p.Rung = int(flags >> 1)
	if r.err == nil && p != (WireProv{}) {
		resp.Prov = &p
	}
}

// --- Request ---

// appendRequestFrame encodes one client request as a binary frame.
func appendRequestFrame(buf []byte, req *Request) ([]byte, error) {
	code, ok := opToCode[req.Op]
	if !ok {
		return buf, fmt.Errorf("gateway: unknown op %q", req.Op)
	}
	b := beginFrame(buf)
	b = append(b, WireVersion, code)
	b = appendString(b, req.Client)
	b = appendString(b, req.Token)
	b = appendString(b, req.Query)
	b = binary.AppendVarint(b, int64(req.Sub))
	b = binary.AppendUvarint(b, req.After)
	b = appendString(b, req.Tag)
	b = appendString(b, req.Wire)
	b = binary.AppendVarint(b, req.DeadlineMS)
	if req.TraceID != 0 {
		b = binary.AppendUvarint(b, req.TraceID)
	}
	return b, nil
}

// decodeRequestPayload parses a binary request payload (after the magic and
// length prefix have been consumed).
func decodeRequestPayload(p []byte) (Request, error) {
	r := frameReader{b: p}
	if v := r.byte(); r.err == nil && v != WireVersion {
		return Request{}, fmt.Errorf("gateway: unsupported wire version %d", v)
	}
	code := r.byte()
	op, ok := codeToOp[code]
	if r.err == nil && !ok {
		return Request{}, fmt.Errorf("gateway: unknown request code %d", code)
	}
	req := Request{Op: op}
	req.Client = r.str()
	req.Token = r.str()
	req.Query = r.str()
	req.Sub = SubID(r.varint())
	req.After = r.uvarint()
	req.Tag = r.str()
	req.Wire = r.str()
	req.DeadlineMS = r.varint()
	if r.more() {
		req.TraceID = r.uvarint()
	}
	return req, r.finish()
}

// --- Response ---

// appendResponseFrame encodes one server response as a binary frame. The
// fan-out hot path uses appendUpdateFrame instead (same bytes, no
// intermediate Response); this generic form serves the control plane and
// round-trip tests.
func appendResponseFrame(buf []byte, resp *Response) ([]byte, error) {
	code, ok := typeToCode[resp.Type]
	if !ok {
		return buf, fmt.Errorf("gateway: unknown response type %q", resp.Type)
	}
	b := beginFrame(buf)
	b = append(b, WireVersion, code)
	switch resp.Type {
	case TypeHello:
		b = appendString(b, resp.Tag)
		b = appendString(b, resp.Session)
		b = appendString(b, resp.Token)
		b = binary.AppendUvarint(b, uint64(len(resp.Subs)))
		for _, in := range resp.Subs {
			b = binary.AppendVarint(b, int64(in.Sub))
			b = binary.AppendVarint(b, int64(in.QueryID))
			b = appendString(b, in.Canonical)
			b = binary.AppendUvarint(b, in.LastSeq)
		}
	case TypeSubscribed:
		b = appendString(b, resp.Tag)
		b = binary.AppendVarint(b, int64(resp.Sub))
		b = binary.AppendVarint(b, int64(resp.QueryID))
		b = appendBool(b, resp.Shared)
		b = appendBool(b, resp.Resumed)
		b = appendString(b, resp.Canonical)
		if resp.TraceID != 0 {
			b = binary.AppendUvarint(b, resp.TraceID)
		}
	case TypeRows:
		b = binary.AppendVarint(b, int64(resp.Sub))
		b = binary.AppendUvarint(b, resp.Seq)
		b = binary.AppendVarint(b, resp.AtMS)
		// Coverage rides only on degraded epochs, so the common fully-
		// covered frame costs one byte.
		b = appendBool(b, resp.Degraded)
		if resp.Degraded {
			b = appendFloat(b, resp.Coverage)
		}
		b = binary.AppendUvarint(b, uint64(len(resp.Rows)))
		for _, row := range resp.Rows {
			b = binary.AppendVarint(b, int64(row.Node))
			b = binary.AppendUvarint(b, uint64(len(row.Values)))
			// Fixed attribute order keeps the encoding deterministic.
			for _, a := range allAttrs {
				if v, ok := row.Values[a.String()]; ok {
					b = append(b, byte(a))
					b = appendFloat(b, v)
				}
			}
		}
		if resp.TraceID != 0 {
			b = appendProvTrailer(b, resp.TraceID, wireProvOf(resp.Prov))
		}
	case TypeAgg:
		b = binary.AppendVarint(b, int64(resp.Sub))
		b = binary.AppendUvarint(b, resp.Seq)
		b = binary.AppendVarint(b, resp.AtMS)
		b = appendBool(b, resp.Degraded)
		if resp.Degraded {
			b = appendFloat(b, resp.Coverage)
		}
		b = binary.AppendUvarint(b, uint64(len(resp.Aggs)))
		for _, a := range resp.Aggs {
			op, attr, err := splitAggName(a.Agg)
			if err != nil {
				return buf, err
			}
			b = append(b, byte(op), byte(attr))
			b = binary.AppendVarint(b, a.Group)
			b = appendFloat(b, a.Value)
			b = appendBool(b, a.Empty)
		}
		if resp.TraceID != 0 {
			b = appendProvTrailer(b, resp.TraceID, wireProvOf(resp.Prov))
		}
	case TypeClosed:
		b = binary.AppendVarint(b, int64(resp.Sub))
		b = appendString(b, resp.Reason)
	case TypeStats:
		// Stats responses are rare (operator polls, end-of-soak scrapes):
		// the counter struct rides as a JSON blob inside the binary frame
		// rather than dragging its ~30 fields into the hot codec.
		b = appendString(b, resp.Tag)
		b = binary.AppendVarint(b, resp.AtMS)
		blob, err := json.Marshal(resp.Stats)
		if err != nil {
			return buf, err
		}
		b = appendBytes(b, blob)
	case TypePong:
		b = appendString(b, resp.Tag)
	case TypeError:
		b = appendString(b, resp.Tag)
		b = appendString(b, resp.Error)
		b = appendString(b, resp.Code)
		b = binary.AppendVarint(b, resp.RetryAfterMS)
	}
	return b, nil
}

// appendUpdateFrame encodes one delivered update directly from its
// simulation form — the zero-allocation fan-out path. It produces exactly
// the bytes appendResponseFrame(wireUpdate(u)) would, without building the
// intermediate Response, its WireRow slice or its string-keyed maps.
func appendUpdateFrame(buf []byte, u *Update) []byte {
	b := beginFrame(buf)
	if u.Rows != nil || u.Aggs == nil {
		b = append(b, WireVersion, frameRespRows)
		b = binary.AppendVarint(b, int64(u.Sub))
		b = binary.AppendUvarint(b, u.Seq)
		b = binary.AppendVarint(b, int64(u.At.Milliseconds()))
		b = appendBool(b, u.Degraded)
		if u.Degraded {
			b = appendFloat(b, u.Coverage)
		}
		b = binary.AppendUvarint(b, uint64(len(u.Rows)))
		for _, row := range u.Rows {
			b = binary.AppendVarint(b, int64(row.Node))
			b = binary.AppendUvarint(b, uint64(len(row.Values)))
			for _, a := range allAttrs {
				if v, ok := row.Values[a]; ok {
					b = append(b, byte(a))
					b = appendFloat(b, v)
				}
			}
		}
		if u.Trace != 0 {
			b = appendProvTrailer(b, u.Trace, u.Prov)
		}
		return b
	}
	b = append(b, WireVersion, frameRespAgg)
	b = binary.AppendVarint(b, int64(u.Sub))
	b = binary.AppendUvarint(b, u.Seq)
	b = binary.AppendVarint(b, int64(u.At.Milliseconds()))
	b = appendBool(b, u.Degraded)
	if u.Degraded {
		b = appendFloat(b, u.Coverage)
	}
	b = binary.AppendUvarint(b, uint64(len(u.Aggs)))
	for _, a := range u.Aggs {
		b = append(b, byte(a.Agg.Op), byte(a.Agg.Attr))
		b = binary.AppendVarint(b, a.Group)
		b = appendFloat(b, a.Value)
		b = appendBool(b, a.Empty)
	}
	if u.Trace != 0 {
		b = appendProvTrailer(b, u.Trace, u.Prov)
	}
	return b
}

// decodeResponsePayload parses a binary response payload.
func decodeResponsePayload(p []byte) (Response, error) {
	r := frameReader{b: p}
	if v := r.byte(); r.err == nil && v != WireVersion {
		return Response{}, fmt.Errorf("gateway: unsupported wire version %d", v)
	}
	code := r.byte()
	typ, ok := codeToType[code]
	if r.err == nil && !ok {
		return Response{}, fmt.Errorf("gateway: unknown response code %d", code)
	}
	resp := Response{Type: typ}
	switch typ {
	case TypeHello:
		resp.Tag = r.str()
		resp.Session = r.str()
		resp.Token = r.str()
		if n := r.count(4); n > 0 {
			resp.Subs = make([]WireResumeInfo, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				resp.Subs = append(resp.Subs, WireResumeInfo{
					Sub:       SubID(r.varint()),
					QueryID:   query.ID(r.varint()),
					Canonical: r.str(),
					LastSeq:   r.uvarint(),
				})
			}
		}
	case TypeSubscribed:
		resp.Tag = r.str()
		resp.Sub = SubID(r.varint())
		resp.QueryID = query.ID(r.varint())
		resp.Shared = r.bool()
		resp.Resumed = r.bool()
		resp.Canonical = r.str()
		if r.more() {
			resp.TraceID = r.uvarint()
		}
	case TypeRows:
		resp.Sub = SubID(r.varint())
		resp.Seq = r.uvarint()
		resp.AtMS = r.varint()
		resp.Degraded = r.bool()
		if resp.Degraded {
			resp.Coverage = r.float()
		}
		if n := r.count(2); n > 0 {
			resp.Rows = make([]WireRow, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				row := WireRow{Node: topology.NodeID(r.varint())}
				nv := r.count(9)
				if r.err == nil {
					row.Values = make(map[string]float64, nv)
					for j := 0; j < nv && r.err == nil; j++ {
						a := field.Attr(r.byte())
						row.Values[a.String()] = r.float()
					}
				}
				resp.Rows = append(resp.Rows, row)
			}
		}
		if r.more() {
			decodeProvTrailer(&r, &resp)
		}
	case TypeAgg:
		resp.Sub = SubID(r.varint())
		resp.Seq = r.uvarint()
		resp.AtMS = r.varint()
		resp.Degraded = r.bool()
		if resp.Degraded {
			resp.Coverage = r.float()
		}
		if n := r.count(11); n > 0 {
			resp.Aggs = make([]WireAgg, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				ag := query.Agg{Op: query.AggOp(r.byte()), Attr: field.Attr(r.byte())}
				resp.Aggs = append(resp.Aggs, WireAgg{
					Agg:   ag.String(),
					Group: r.varint(),
					Value: r.float(),
					Empty: r.bool(),
				})
			}
		}
		if r.more() {
			decodeProvTrailer(&r, &resp)
		}
	case TypeClosed:
		resp.Sub = SubID(r.varint())
		resp.Reason = r.str()
	case TypeStats:
		resp.Tag = r.str()
		resp.AtMS = r.varint()
		blob := r.bytes()
		if r.err == nil {
			var gm obs.GatewayMetrics
			if err := json.Unmarshal(blob, &gm); err != nil {
				return Response{}, fmt.Errorf("gateway: stats blob: %w", err)
			}
			resp.Stats = &gm
		}
	case TypePong:
		resp.Tag = r.str()
	case TypeError:
		resp.Tag = r.str()
		resp.Error = r.str()
		resp.Code = r.str()
		resp.RetryAfterMS = r.varint()
	}
	return resp, r.finish()
}

// splitAggName parses the "MAX(light)" rendering back into its codes for
// the generic response encoder (the hot path never goes through strings).
func splitAggName(s string) (query.AggOp, field.Attr, error) {
	open := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '(' {
			open = i
			break
		}
	}
	if open < 0 || len(s) == 0 || s[len(s)-1] != ')' {
		return 0, 0, fmt.Errorf("gateway: malformed aggregate name %q", s)
	}
	op, err := query.ParseAggOp(s[:open])
	if err != nil {
		return 0, 0, err
	}
	attr, err := field.ParseAttr(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return op, attr, nil
}

// --- WAL records ---

// WAL op codes (binary spelling of the walOp* strings).
var walOpToCode = map[string]byte{
	walOpRegister:    1,
	walOpSubscribe:   2,
	walOpUnsubscribe: 3,
	walOpClose:       4,
	walOpAdvance:     5,
}

var walCodeToOp = map[byte]string{
	1: walOpRegister,
	2: walOpSubscribe,
	3: walOpUnsubscribe,
	4: walOpClose,
	5: walOpAdvance,
}

// appendWALFrame encodes one log record as a binary frame.
func appendWALFrame(buf []byte, rec *walRecord) ([]byte, error) {
	code, ok := walOpToCode[rec.Op]
	if !ok {
		return buf, fmt.Errorf("gateway: unknown wal op %q", rec.Op)
	}
	b := beginFrame(buf)
	b = append(b, WireVersion, code)
	b = binary.AppendVarint(b, rec.At)
	b = appendString(b, rec.Sess)
	b = appendString(b, rec.Token)
	b = binary.AppendVarint(b, int64(rec.Sub))
	b = appendString(b, rec.Query)
	if rec.Trace != 0 {
		b = binary.AppendUvarint(b, rec.Trace)
	}
	return b, nil
}

// decodeWALPayload parses a binary WAL record payload.
func decodeWALPayload(p []byte) (walRecord, error) {
	r := frameReader{b: p}
	if v := r.byte(); r.err == nil && v != WireVersion {
		return walRecord{}, fmt.Errorf("gateway: unsupported wal version %d", v)
	}
	code := r.byte()
	op, ok := walCodeToOp[code]
	if r.err == nil && !ok {
		return walRecord{}, fmt.Errorf("gateway: unknown wal code %d", code)
	}
	rec := walRecord{Op: op}
	rec.At = r.varint()
	rec.Sess = r.str()
	rec.Token = r.str()
	rec.Sub = SubID(r.varint())
	rec.Query = r.str()
	if r.more() {
		rec.Trace = r.uvarint()
	}
	return rec, r.finish()
}

// decodeFrame splits a raw frame (magic + length + payload) and dispatches
// on kind family; used by the fuzz harness to exercise the whole surface.
func decodeFrame(raw []byte) error {
	if len(raw) == 0 || raw[0] != FrameMagic {
		return fmt.Errorf("gateway: not a binary frame")
	}
	n, sz := binary.Uvarint(raw[1:])
	if sz <= 0 || n > maxFramePayload || uint64(len(raw)-1-sz) < n {
		return fmt.Errorf("gateway: bad frame length")
	}
	p := raw[1+sz : 1+sz+int(n)]
	// A payload is ambiguous between the three families without stream
	// context; try each — none may panic.
	_, errReq := decodeRequestPayload(p)
	_, errResp := decodeResponsePayload(p)
	_, errWAL := decodeWALPayload(p)
	if errReq != nil && errResp != nil && errWAL != nil {
		return errReq
	}
	return nil
}
