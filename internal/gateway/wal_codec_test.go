package gateway

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var walFixture = []walRecord{
	{Op: walOpRegister, At: 0, Sess: "alice", Token: "tok-1"},
	{Op: walOpSubscribe, At: 2048, Sess: "alice", Sub: 1, Query: "SELECT light EPOCH DURATION 2048ms"},
	{Op: walOpAdvance, At: 4096},
	{Op: walOpUnsubscribe, At: 6144, Sess: "alice", Sub: 1},
	{Op: walOpClose, At: 8192, Sess: "alice"},
}

func writeBinaryWAL(t *testing.T, path string, recs []walRecord) {
	t.Helper()
	w, err := createWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALBinaryRoundTripThroughFile: append → read back recovers every
// record bit-exact through the on-disk binary framing.
func TestWALBinaryRoundTripThroughFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gw.wal")
	writeBinaryWAL(t, path, walFixture)
	got, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, walFixture) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, walFixture)
	}
	// The log must actually be binary-framed, not JSON.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[0] != FrameMagic {
		t.Fatalf("wal starts with %#x, want binary frame magic %#x", raw[0], FrameMagic)
	}
}

// TestWALReadsLegacyJSON: a log written by the pre-codec gateway (NDJSON
// lines) recovers unchanged — cross-version compatibility.
func TestWALReadsLegacyJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gw.wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for _, r := range walFixture {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, walFixture) {
		t.Fatalf("legacy read:\n got %+v\nwant %+v", got, walFixture)
	}
}

// TestWALReadsMixedFraming: JSON records followed by binary ones — the
// shape a legacy log takes after the upgraded gateway appends to it.
func TestWALReadsMixedFraming(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gw.wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for _, r := range walFixture[:2] {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range walFixture[2:] {
		b, err := appendWALFrame(nil, &r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(sealFrame(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, walFixture) {
		t.Fatalf("mixed read:\n got %+v\nwant %+v", got, walFixture)
	}
}

// TestWALTornTailTolerated: a crash mid-write leaves a truncated final
// frame; recovery keeps everything before it. Every truncation point
// within the final frame must behave the same.
func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	whole := filepath.Join(dir, "whole.wal")
	writeBinaryWAL(t, whole, walFixture)
	raw, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the last frame starts: encode the prefix alone.
	prefix := filepath.Join(dir, "prefix.wal")
	writeBinaryWAL(t, prefix, walFixture[:len(walFixture)-1])
	praw, err := os.ReadFile(prefix)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(praw) + 1; cut < len(raw); cut++ {
		torn := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(torn, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := readWAL(torn)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !reflect.DeepEqual(got, walFixture[:len(walFixture)-1]) {
			t.Fatalf("cut at %d: got %d records, want %d", cut, len(got), len(walFixture)-1)
		}
	}
}

// TestWALInteriorCorruptionRejected: garbage before the end of the log is
// a real error, not a torn tail.
func TestWALInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	whole := filepath.Join(dir, "whole.wal")
	writeBinaryWAL(t, whole, walFixture)
	raw, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the first frame's payload (skip magic+len).
	raw[4] ^= 0xFF
	bad := filepath.Join(dir, "bad.wal")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readWAL(bad); err == nil {
		t.Fatal("interior corruption accepted")
	}
}
