package gateway

import (
	"fmt"
	"testing"
	"time"
)

func TestInternTable(t *testing.T) {
	tab := newInternTable(0)
	a := tab.intern("SELECT light EPOCH DURATION 2048ms")
	b := tab.intern("SELECT light EPOCH DURATION 2048ms")
	if a != b {
		t.Fatal("interning the same string twice returned distinct pointers")
	}
	c := tab.intern("SELECT temp EPOCH DURATION 2048ms")
	if a == c {
		t.Fatal("distinct strings interned to the same pointer")
	}
	if tab.size() != 2 {
		t.Fatalf("size = %d, want 2", tab.size())
	}
	tab.drop(a)
	if tab.size() != 1 {
		t.Fatalf("size after drop = %d, want 1", tab.size())
	}
	// A dropped key's pointer stays usable; re-interning mints a fresh one.
	if a.String() != "SELECT light EPOCH DURATION 2048ms" {
		t.Fatalf("dropped key lost its string: %q", a.String())
	}
	d := tab.intern("SELECT light EPOCH DURATION 2048ms")
	if d == a {
		t.Fatal("re-intern after drop returned the dropped pointer")
	}
	var nilKey *internedKey
	if nilKey.String() != "" {
		t.Fatal("nil key String() not empty")
	}
	tab.drop(nil) // must not panic
}

// TestDedupSharesInternedKey: semantically equal queries from different
// sessions end up with pointer-identical keys — the property that turns
// key comparisons into pointer compares.
func TestDedupSharesInternedKey(t *testing.T) {
	gw := newTestGateway(t, Config{})
	s1, err := gw.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := gw.Register("bob")
	if err != nil {
		t.Fatal(err)
	}
	t1 := stage(t, s1, "SELECT light, temp EPOCH DURATION 8192ms")
	t2 := stage(t, s2, "SELECT temp, light EPOCH DURATION 8192ms")
	if _, err := gw.Advance(8192 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sub1, err := t1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := t2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if sub1.key != sub2.key {
		t.Fatalf("dedup'd subscriptions carry distinct key pointers: %p vs %p", sub1.key, sub2.key)
	}
	if sub1.Key() != sub2.Key() {
		t.Fatalf("canonical text differs: %q vs %q", sub1.Key(), sub2.Key())
	}
}

// TestInternTableBoundedByLiveQueries: the table shrinks as queries are
// cancelled — no leak across churn.
func TestInternTableBoundedByLiveQueries(t *testing.T) {
	gw := newTestGateway(t, Config{SessionQuota: 64})
	s, err := gw.Register("churner")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tk := stage(t, s, fmt.Sprintf("SELECT light WHERE light > %d EPOCH DURATION 8192ms", i*10))
		if _, err := gw.Advance(8192 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		sub, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		ut, err := s.UnsubscribeAsync(sub.ID())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gw.Advance(8192 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if _, err := ut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := gw.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveSubscriptions != 0 {
		t.Fatalf("active subscriptions = %d, want 0", st.ActiveSubscriptions)
	}
	// Inspect the loop-owned table via the gateway's own synchronization:
	// after Close the loop has exited and the state is quiescent.
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if n := gw.keys.size(); n != 0 {
		t.Fatalf("interned keys after full churn = %d, want 0", n)
	}
}

// BenchmarkInternLookup quantifies the dedup cache's pointer-keyed lookup
// against the string-keyed map it replaced, at a realistic key length.
func BenchmarkInternLookup(b *testing.B) {
	const n = 64
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("SELECT light, temp, humidity WHERE light > %d AND temp < 50 GROUP BY nodeid EPOCH DURATION 8192ms", i)
	}
	b.Run("string-keyed", func(b *testing.B) {
		b.ReportAllocs()
		m := make(map[string]*shared, n)
		for _, k := range keys {
			m[k] = &shared{}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m[keys[i%n]] == nil {
				b.Fatal("miss")
			}
		}
	})
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		tab := newInternTable(n)
		m := make(map[*internedKey]*shared, n)
		ks := make([]*internedKey, n)
		for i, k := range keys {
			ks[i] = tab.intern(k)
			m[ks[i]] = &shared{}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m[ks[i%n]] == nil {
				b.Fatal("miss")
			}
		}
	})
}
