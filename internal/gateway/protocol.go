package gateway

import (
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/topology"
)

// Wire protocol of the serving tier (ttmqo-serve): newline-delimited JSON
// over TCP, one Request per line from the client, one Response per line
// from the server. Subscribing starts an asynchronous stream of "rows"/
// "agg" responses tagged with the subscription id; the stream ends with a
// single "closed" response carrying the reason.

// Request operations.
const (
	OpHello       = "hello"
	OpSubscribe   = "subscribe"
	OpUnsubscribe = "unsubscribe"
	OpStats       = "stats"
	// OpPing is the client heartbeat: it refreshes the server's read
	// deadline and is answered with a TypePong line. Clients that expect to
	// idle longer than the server's ReadTimeout must ping.
	OpPing = "ping"
	// OpResume continues a detached subscription after a reconnect,
	// replaying every retained update with sequence number > After.
	OpResume = "resume"
)

// Request is one client line.
type Request struct {
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Client optionally names the session (OpHello); the server derives a
	// unique name from the connection otherwise.
	Client string `json:"client,omitempty"`
	// Token re-attaches an existing session (OpHello after a disconnect or
	// gateway crash): quote the token from the first hello's response.
	Token string `json:"token,omitempty"`
	// Query is the TinyDB-dialect query text (OpSubscribe).
	Query string `json:"query,omitempty"`
	// Sub identifies the subscription (OpUnsubscribe, OpResume).
	Sub SubID `json:"sub,omitempty"`
	// After is the last sequence number the client processed (OpResume).
	After uint64 `json:"after,omitempty"`
	// Tag is echoed on the direct response so clients can correlate
	// pipelined requests.
	Tag string `json:"tag,omitempty"`
	// Wire requests an outbound encoding on OpHello: "binary" switches the
	// server's responses to the length-prefixed binary framing after the
	// (always-JSON) hello response; empty or "json" keeps NDJSON. A client
	// that sends binary-framed requests gets binary responses regardless.
	Wire string `json:"wire,omitempty"`
	// DeadlineMS attaches a mailbox deadline budget to OpSubscribe and
	// OpResume, in milliseconds: if the command waits longer than the
	// budget in the serving tier's group-commit mailbox it is shed with a
	// TypeError response carrying Code "overloaded" and a retry-after
	// hint, instead of being applied late. Zero means the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// TraceID optionally pins the causal-trace identity of an OpSubscribe:
	// every span and provenance record the serving tiers emit for this
	// subscription carries it. Zero lets the server derive a deterministic
	// trace ID from the session name and subscription id. Optional on the
	// wire — pre-tracing peers simply omit it.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// Response types.
const (
	TypeHello      = "hello"
	TypeSubscribed = "subscribed"
	TypeRows       = "rows"
	TypeAgg        = "agg"
	TypeClosed     = "closed"
	TypeStats      = "stats"
	TypePong       = "pong"
	TypeError      = "error"
)

// WireResumeInfo lists one resumable subscription in a re-attach hello
// response: issue an OpResume with Sub and the last sequence number the
// client saw (at most LastSeq) to continue the stream.
type WireResumeInfo struct {
	Sub       SubID    `json:"sub"`
	QueryID   query.ID `json:"query_id"`
	Canonical string   `json:"canonical"`
	LastSeq   uint64   `json:"last_seq"`
}

// WireRow is one delivered acquisition row.
type WireRow struct {
	Node   topology.NodeID    `json:"node"`
	Values map[string]float64 `json:"values"`
}

// WireAgg is one delivered aggregate value.
type WireAgg struct {
	Agg   string  `json:"agg"`
	Group int64   `json:"group,omitempty"`
	Value float64 `json:"value"`
	Empty bool    `json:"empty,omitempty"`
}

// Response is one server line.
type Response struct {
	Type string `json:"type"`
	Tag  string `json:"tag,omitempty"`
	// Session is the registered session name (TypeHello).
	Session string `json:"session,omitempty"`
	// Token is the session's resume token (TypeHello); quote it in a later
	// hello to re-attach after a disconnect or server crash.
	Token string `json:"token,omitempty"`
	// Subs lists the resumable subscriptions on a re-attach (TypeHello with
	// a token).
	Subs []WireResumeInfo `json:"subs,omitempty"`
	// Sub identifies the subscription the line belongs to.
	Sub SubID `json:"sub,omitempty"`
	// Seq is the per-subscription delivery sequence number (TypeRows,
	// TypeAgg) — the client's resume cursor and dedup key.
	Seq uint64 `json:"seq,omitempty"`
	// Resumed marks a TypeSubscribed response produced by OpResume.
	Resumed bool `json:"resumed,omitempty"`
	// QueryID is the shared in-network query (TypeSubscribed).
	QueryID query.ID `json:"query_id,omitempty"`
	// Shared reports a dedup hit (TypeSubscribed).
	Shared bool `json:"shared,omitempty"`
	// Canonical is the canonical form the query was cached under
	// (TypeSubscribed).
	Canonical string `json:"canonical,omitempty"`
	// AtMS is the epoch's virtual timestamp in milliseconds (TypeRows,
	// TypeAgg) or the current virtual time (TypeStats).
	AtMS int64 `json:"at_ms,omitempty"`
	// Rows carries one acquisition epoch (TypeRows).
	Rows []WireRow `json:"rows,omitempty"`
	// Aggs carries one aggregation epoch (TypeAgg).
	Aggs []WireAgg `json:"aggs,omitempty"`
	// Reason says why the subscription ended (TypeClosed).
	Reason string `json:"reason,omitempty"`
	// Stats is the gateway counter snapshot (TypeStats).
	Stats *obs.GatewayMetrics `json:"stats,omitempty"`
	// Error is the failure message (TypeError).
	Error string `json:"error,omitempty"`
	// Code classifies a TypeError ("overloaded" is the only code so far:
	// the serving tier shed the request under admission control); empty
	// for plain protocol or validation failures.
	Code string `json:"code,omitempty"`
	// RetryAfterMS is the server's backoff floor for an "overloaded"
	// error, in milliseconds; clients jitter on top of it, never below.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Degraded marks a TypeRows/TypeAgg epoch released without full
	// federation shard coverage (a circuit breaker excluded one or more
	// spanned shards); Coverage is then the contributing fraction.
	Degraded bool    `json:"degraded,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
	// TraceID is the subscription's causal-trace identity: on TypeSubscribed
	// it echoes the trace the serving tier assigned (client-pinned or
	// derived), and on TypeRows/TypeAgg it keys the delivery into
	// /tracez?trace=<id>. Zero when tracing is disabled — the frame is then
	// byte-identical to the pre-tracing encoding.
	TraceID uint64 `json:"trace_id,omitempty"`
	// Prov is the delivery's compact provenance record (TypeRows, TypeAgg):
	// which federation shards contributed, cross-query sharing reuse, cache
	// replay, and the brownout rung in force. Present only on traced
	// deliveries with something to report.
	Prov *WireProv `json:"prov,omitempty"`
}

// WireProv is the provenance record stamped on traced deliveries: enough to
// reconstruct where a result came from without fetching the full trace.
type WireProv struct {
	// ShardMask is a bitmask of contributing federation shards (bit k =
	// shard k); zero outside federated deployments.
	ShardMask uint64 `json:"shard_mask,omitempty"`
	// Frags and Reused count the subscription's partial-aggregate fragments
	// and how many were satisfied by cross-query sharing (CSE hits).
	Frags  int `json:"frags,omitempty"`
	Reused int `json:"reused,omitempty"`
	// CacheHit marks epochs replayed from the gateway's windowed result
	// cache rather than computed live.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Rung is the brownout rung in force when the epoch was delivered.
	Rung int `json:"rung,omitempty"`
}

// CodeOverloaded is the Response.Code for admission-control rejections.
const CodeOverloaded = "overloaded"

// wireUpdate converts a delivered update to its wire form.
func wireUpdate(u Update) Response {
	r := Response{Sub: u.Sub, Seq: u.Seq, AtMS: int64(u.At.Milliseconds()),
		Degraded: u.Degraded, Coverage: u.Coverage}
	// Provenance rides only on traced deliveries, mirroring the binary
	// encoder: untraced output stays byte-identical to the pre-tracing wire.
	if u.Trace != 0 {
		r.TraceID = u.Trace
		if !u.Prov.Empty() {
			r.Prov = &WireProv{
				ShardMask: u.Prov.Shards,
				Frags:     int(u.Prov.Frags),
				Reused:    int(u.Prov.Reused),
				CacheHit:  u.Prov.CacheHit,
				Rung:      int(u.Prov.Rung),
			}
		}
	}
	if u.Rows != nil || u.Aggs == nil {
		r.Type = TypeRows
		r.Rows = make([]WireRow, 0, len(u.Rows))
		for _, row := range u.Rows {
			vals := make(map[string]float64, len(row.Values))
			for a, v := range row.Values {
				vals[a.String()] = v
			}
			r.Rows = append(r.Rows, WireRow{Node: row.Node, Values: vals})
		}
		return r
	}
	r.Type = TypeAgg
	r.Aggs = make([]WireAgg, 0, len(u.Aggs))
	for _, a := range u.Aggs {
		r.Aggs = append(r.Aggs, WireAgg{
			Agg:   a.Agg.String(),
			Group: a.Group,
			Value: a.Value,
			Empty: a.Empty,
		})
	}
	return r
}
