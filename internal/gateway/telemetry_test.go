package gateway

import (
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// lgMetricsRun drives one load-generator soak with a registry attached and
// returns the end-of-run exposition text.
func lgMetricsRun(t *testing.T, cfg LoadgenConfig) string {
	t.Helper()
	var cur atomic.Pointer[Gateway]
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg, cur.Load)
	cfg.OnGateway = func(g *Gateway) { cur.Store(g) }
	if _, err := RunLoadgen(cfg); err != nil {
		t.Fatal(err)
	}
	return reg.Exposition()
}

// TestRegisterMetricsDeterministic: the full Prometheus exposition of a
// seeded load-generator run is byte-identical across runs — the registry
// carries no wall-clock state, so the serving tier's metrics inherit the
// repository's determinism guarantee.
func TestRegisterMetricsDeterministic(t *testing.T) {
	cfg := LoadgenConfig{Clients: 24, Rounds: 8, Pool: 8, Seed: 42}
	a := lgMetricsRun(t, cfg)
	b := lgMetricsRun(t, cfg)
	if a != b {
		t.Fatalf("same seed, different expositions:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	samples, err := telemetry.ParseExposition(a)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, name := range []string{
		"ttmqo_gateway_admitted_total",
		"ttmqo_gateway_dedup_hits_total",
		"ttmqo_wal_appends_total",
		"ttmqo_wal_size_bytes",
		"ttmqo_radio_messages_total",
		"ttmqo_radio_bytes_total",
		"ttmqo_energy_total_joules",
		"ttmqo_sim_virtual_time_seconds",
		"ttmqo_query_time_to_first_result_seconds_count",
		"ttmqo_query_spans",
	} {
		if _, ok := telemetry.FindSample(samples, name); !ok {
			t.Errorf("exposition lacks %s", name)
		}
	}
	// Per-node energy must be labeled and non-trivial: the 4x4 grid has 16
	// nodes and the relaying ones spent energy.
	var nodes int
	for _, s := range samples {
		if s.Name == "ttmqo_node_energy_joules" {
			nodes++
		}
	}
	if nodes != 16 {
		t.Errorf("ttmqo_node_energy_joules has %d children, want 16", nodes)
	}
	if s, ok := telemetry.FindSample(samples, "ttmqo_gateway_admitted_total"); !ok || s.Value <= 0 {
		t.Errorf("admitted_total = %+v, want > 0", s)
	}
	if s, ok := telemetry.FindSample(samples, "ttmqo_query_time_to_first_result_seconds_count"); !ok || s.Value <= 0 {
		t.Errorf("ttfr count = %+v, want > 0", s)
	}
}

// TestRegisterMetricsSurvivesCrashRecovery: with a mid-run crash the gather
// hook follows the swapped gateway, and the mirrored counters never run
// backwards even though the recovered gateway re-derives its history.
func TestRegisterMetricsSurvivesCrashRecovery(t *testing.T) {
	var cur atomic.Pointer[Gateway]
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg, cur.Load)

	var midAdmitted float64
	swaps := 0
	cfg := LoadgenConfig{
		Clients: 16, Rounds: 8, Pool: 6, Seed: 7,
		CrashRound: 4,
		WALPath:    filepath.Join(t.TempDir(), "gw.wal"),
		OnGateway: func(g *Gateway) {
			cur.Store(g)
			if swaps == 1 {
				// Recovery swap: gather once against the pre-crash gateway's
				// final snapshot before the new one takes over.
				exp := reg.Exposition()
				s, ok := telemetry.FindSample(mustParse(t, exp), "ttmqo_gateway_admitted_total")
				if !ok {
					t.Error("mid-run exposition lacks admitted_total")
				}
				midAdmitted = s.Value
			}
			swaps++
		},
	}
	if _, err := RunLoadgen(cfg); err != nil {
		t.Fatal(err)
	}
	if swaps != 2 {
		t.Fatalf("OnGateway called %d times, want 2 (initial + recovered)", swaps)
	}
	final := mustParse(t, reg.Exposition())
	if s, ok := telemetry.FindSample(final, "ttmqo_gateway_recoveries_total"); !ok || s.Value != 1 {
		t.Fatalf("recoveries_total = %+v, want 1", s)
	}
	if s, ok := telemetry.FindSample(final, "ttmqo_gateway_admitted_total"); !ok || s.Value < midAdmitted {
		t.Fatalf("admitted_total regressed across recovery: final %+v < mid %v", s, midAdmitted)
	}
}

func mustParse(t *testing.T, text string) []telemetry.ParsedSample {
	t.Helper()
	samples, err := telemetry.ParseExposition(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	return samples
}

// TestTTFRBoundsAscending pins the histogram's bucket ladder shape.
func TestTTFRBoundsAscending(t *testing.T) {
	for i := 1; i < len(TTFRBounds); i++ {
		if TTFRBounds[i] <= TTFRBounds[i-1] {
			t.Fatalf("TTFRBounds not ascending at %d: %v", i, TTFRBounds)
		}
	}
	// The ladder must be wide enough for epoch-scale first results.
	if TTFRBounds[len(TTFRBounds)-1] < 60 {
		t.Fatalf("TTFRBounds top %v too low for epoch-period TTFRs", TTFRBounds[len(TTFRBounds)-1])
	}
	var sb strings.Builder
	r := telemetry.NewRegistry()
	r.NewHistogram("ttmqo_query_time_to_first_result_seconds", "t", TTFRBounds).Histogram().Observe(3)
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ParseExposition(sb.String()); err != nil {
		t.Fatalf("TTFR histogram exposition invalid: %v", err)
	}
}
