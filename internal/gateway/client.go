package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/resilience"
)

// Client is a TCP client for the serving protocol, speaking either wire
// encoding. The handshake is always JSON; with ClientConfig.Binary set the
// client requests the binary framing in its hello and encodes every
// subsequent request as a binary frame. The read side auto-detects the
// server's framing per frame, so the JSON→binary transition needs no
// coordination.
//
// Client is not safe for concurrent use: it is a protocol endpoint for
// tests, the load generator and ad-hoc tooling, not a connection pool.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	enc     *json.Encoder
	binary  bool
	scratch []byte
	timeout time.Duration
}

// ClientConfig parametrizes Dial.
type ClientConfig struct {
	// Binary requests the binary wire encoding (the default in
	// cmd/ttmqo-serve's load generator); zero value speaks NDJSON.
	Binary bool
	// Timeout bounds each Send/Recv; 0 means no deadline.
	Timeout time.Duration
}

// Dial connects to a serving-tier address.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(conn, 32*1024)
	return &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 1<<20),
		bw:      bw,
		enc:     json.NewEncoder(bw),
		binary:  cfg.Binary,
		timeout: cfg.Timeout,
	}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Hello performs the session handshake (JSON both ways) and negotiates the
// configured wire encoding for everything after it. A non-empty token
// re-attaches a detached session.
func (c *Client) Hello(client, token string) (Response, error) {
	req := Request{Op: OpHello, Client: client, Token: token}
	if c.binary {
		req.Wire = "binary"
	}
	// The hello itself always goes out as JSON: the handshake stays
	// debuggable and a pre-binary server still understands it.
	if err := c.deadline(); err != nil {
		return Response{}, err
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	resp, err := c.Recv()
	if err != nil {
		return Response{}, err
	}
	if resp.Type == TypeError {
		return resp, fmt.Errorf("gateway: hello: %s", resp.Error)
	}
	return resp, nil
}

// Send writes one request in the negotiated encoding.
func (c *Client) Send(req Request) error {
	if err := c.deadline(); err != nil {
		return err
	}
	if c.binary {
		bp := getFrameBuf()
		b, err := appendRequestFrame(*bp, &req)
		if err != nil {
			putFrameBuf(bp)
			return err
		}
		*bp = b
		_, err = c.bw.Write(sealFrame(b))
		putFrameBuf(bp)
		if err != nil {
			return err
		}
		return c.bw.Flush()
	}
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ErrPingTimeout marks a Recv that failed because the configured
// read deadline expired — the server went quiet past the client's
// heartbeat window. Retry policy treats it as a reconnect-and-resume
// signal, distinct from protocol errors (which are not retried).
var ErrPingTimeout = errors.New("gateway: ping timeout")

// wrapRead types a read-side failure: deadline expiry becomes
// ErrPingTimeout (matchable with errors.Is), everything else passes
// through untouched.
func wrapRead(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrPingTimeout, err)
	}
	return err
}

// Recv reads the next response, auto-detecting its framing. A read that
// dies on the configured deadline returns an error matching
// ErrPingTimeout.
func (c *Client) Recv() (Response, error) {
	if err := c.deadline(); err != nil {
		return Response{}, err
	}
	first, err := c.br.ReadByte()
	if err != nil {
		return Response{}, wrapRead(err)
	}
	if first == FrameMagic {
		c.scratch, err = readBinaryFrame(c.br, c.scratch)
		if err != nil {
			return Response{}, wrapRead(err)
		}
		return decodeResponsePayload(c.scratch)
	}
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return Response{}, wrapRead(err)
	}
	c.scratch = append(append(c.scratch[:0], first), line...)
	var resp Response
	if err := json.Unmarshal(c.scratch, &resp); err != nil {
		return Response{}, fmt.Errorf("gateway: bad response line: %w", err)
	}
	return resp, nil
}

// RecvType reads responses until one of the wanted type arrives, skipping
// interleaved stream frames; a TypeError response surfaces as an error.
func (c *Client) RecvType(want string) (Response, error) {
	for {
		resp, err := c.Recv()
		if err != nil {
			return Response{}, err
		}
		if resp.Type == want {
			return resp, nil
		}
		if resp.Type == TypeError {
			return resp, fmt.Errorf("gateway: server error while waiting for %q: %s", want, resp.Error)
		}
	}
}

func (c *Client) deadline() error {
	if c.timeout <= 0 {
		return nil
	}
	return c.conn.SetDeadline(time.Now().Add(c.timeout))
}

// OverloadFromResponse converts an "overloaded" TypeError response into
// its typed *resilience.OverloadError (carrying the server's retry-after
// floor); nil for any other response.
func OverloadFromResponse(resp Response) error {
	if resp.Type != TypeError || resp.Code != CodeOverloaded {
		return nil
	}
	return &resilience.OverloadError{
		RetryAfter: time.Duration(resp.RetryAfterMS) * time.Millisecond,
		Reason:     resp.Error,
	}
}

// RetryConfig parametrizes SubscribeRetry.
type RetryConfig struct {
	// Attempts bounds the subscribe tries (8 if <= 0).
	Attempts int
	// Backoff is the jittered delay policy between attempts; its zero
	// value uses the resilience defaults.
	Backoff resilience.Backoff
	// Deadline, when positive, rides the wire as the subscribe's mailbox
	// deadline budget.
	Deadline time.Duration
	// TraceID, when nonzero, pins the subscription's causal-trace identity
	// (rides the wire as trace_id); zero lets the server derive one, echoed
	// back on the TypeSubscribed response.
	TraceID uint64
	// Sleep replaces time.Sleep between attempts (tests inject a
	// recorder).
	Sleep func(time.Duration)
	// OnFrame receives stream responses that interleave with the
	// subscribe round trip (updates for this connection's other
	// subscriptions); dropped when nil.
	OnFrame func(Response)
}

// SubscribeRetry subscribes with the client retry policy: an
// "overloaded" rejection backs off with capped exponential delay plus
// full jitter — floored by the server's retry-after hint — and re-issues
// the subscribe. The retry is idempotent: a shed subscribe was never
// applied, so re-subscribing cannot double-admit, and per-subscription
// Seq numbering keeps delivery exactly-once for consumers that dedup on
// it. Non-overload errors fail immediately.
func (c *Client) SubscribeRetry(queryText, tag string, rc RetryConfig) (Response, error) {
	attempts := rc.Attempts
	if attempts <= 0 {
		attempts = 8
	}
	sleep := rc.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		req := Request{Op: OpSubscribe, Query: queryText, Tag: tag, TraceID: rc.TraceID}
		if rc.Deadline > 0 {
			req.DeadlineMS = rc.Deadline.Milliseconds()
		}
		if err := c.Send(req); err != nil {
			return Response{}, err
		}
		resp, err := c.recvTagged(tag, rc.OnFrame)
		if err != nil {
			return Response{}, err
		}
		if resp.Type == TypeSubscribed {
			return resp, nil
		}
		oe := OverloadFromResponse(resp)
		if oe == nil {
			return resp, fmt.Errorf("gateway: subscribe: %s", resp.Error)
		}
		lastErr = oe
		sleep(rc.Backoff.Delay(attempt, resilience.RetryAfterHint(oe)))
	}
	return Response{}, fmt.Errorf("gateway: subscribe gave up after %d attempts: %w", attempts, lastErr)
}

// recvTagged reads until the tagged direct response (subscribed or
// error) arrives, handing interleaved stream frames to onFrame.
func (c *Client) recvTagged(tag string, onFrame func(Response)) (Response, error) {
	for {
		resp, err := c.Recv()
		if err != nil {
			return Response{}, err
		}
		if (resp.Type == TypeSubscribed || resp.Type == TypeError) && resp.Tag == tag {
			return resp, nil
		}
		if onFrame != nil {
			onFrame(resp)
		}
	}
}
