package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client is a TCP client for the serving protocol, speaking either wire
// encoding. The handshake is always JSON; with ClientConfig.Binary set the
// client requests the binary framing in its hello and encodes every
// subsequent request as a binary frame. The read side auto-detects the
// server's framing per frame, so the JSON→binary transition needs no
// coordination.
//
// Client is not safe for concurrent use: it is a protocol endpoint for
// tests, the load generator and ad-hoc tooling, not a connection pool.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	enc     *json.Encoder
	binary  bool
	scratch []byte
	timeout time.Duration
}

// ClientConfig parametrizes Dial.
type ClientConfig struct {
	// Binary requests the binary wire encoding (the default in
	// cmd/ttmqo-serve's load generator); zero value speaks NDJSON.
	Binary bool
	// Timeout bounds each Send/Recv; 0 means no deadline.
	Timeout time.Duration
}

// Dial connects to a serving-tier address.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(conn, 32*1024)
	return &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 1<<20),
		bw:      bw,
		enc:     json.NewEncoder(bw),
		binary:  cfg.Binary,
		timeout: cfg.Timeout,
	}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Hello performs the session handshake (JSON both ways) and negotiates the
// configured wire encoding for everything after it. A non-empty token
// re-attaches a detached session.
func (c *Client) Hello(client, token string) (Response, error) {
	req := Request{Op: OpHello, Client: client, Token: token}
	if c.binary {
		req.Wire = "binary"
	}
	// The hello itself always goes out as JSON: the handshake stays
	// debuggable and a pre-binary server still understands it.
	if err := c.deadline(); err != nil {
		return Response{}, err
	}
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	resp, err := c.Recv()
	if err != nil {
		return Response{}, err
	}
	if resp.Type == TypeError {
		return resp, fmt.Errorf("gateway: hello: %s", resp.Error)
	}
	return resp, nil
}

// Send writes one request in the negotiated encoding.
func (c *Client) Send(req Request) error {
	if err := c.deadline(); err != nil {
		return err
	}
	if c.binary {
		bp := getFrameBuf()
		b, err := appendRequestFrame(*bp, &req)
		if err != nil {
			putFrameBuf(bp)
			return err
		}
		*bp = b
		_, err = c.bw.Write(sealFrame(b))
		putFrameBuf(bp)
		if err != nil {
			return err
		}
		return c.bw.Flush()
	}
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads the next response, auto-detecting its framing.
func (c *Client) Recv() (Response, error) {
	if err := c.deadline(); err != nil {
		return Response{}, err
	}
	first, err := c.br.ReadByte()
	if err != nil {
		return Response{}, err
	}
	if first == FrameMagic {
		c.scratch, err = readBinaryFrame(c.br, c.scratch)
		if err != nil {
			return Response{}, err
		}
		return decodeResponsePayload(c.scratch)
	}
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return Response{}, err
	}
	c.scratch = append(append(c.scratch[:0], first), line...)
	var resp Response
	if err := json.Unmarshal(c.scratch, &resp); err != nil {
		return Response{}, fmt.Errorf("gateway: bad response line: %w", err)
	}
	return resp, nil
}

// RecvType reads responses until one of the wanted type arrives, skipping
// interleaved stream frames; a TypeError response surfaces as an error.
func (c *Client) RecvType(want string) (Response, error) {
	for {
		resp, err := c.Recv()
		if err != nil {
			return Response{}, err
		}
		if resp.Type == want {
			return resp, nil
		}
		if resp.Type == TypeError {
			return resp, fmt.Errorf("gateway: server error while waiting for %q: %s", want, resp.Error)
		}
	}
}

func (c *Client) deadline() error {
	if c.timeout <= 0 {
		return nil
	}
	return c.conn.SetDeadline(time.Now().Add(c.timeout))
}
