package gateway

import (
	"bufio"
	"errors"
	"testing"
)

// shortWriter accepts up to n bytes, then fails every write — the shape of
// a disk filling up mid-record.
type shortWriter struct {
	n   int
	err error
}

func (w *shortWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	n := w.n
	w.n = 0
	return n, w.err
}

// TestWALAppendShortWriteAccounting: a failed append must account only the
// bytes the writer actually accepted (not the whole frame), and the first
// write error must poison the log so later appends and flushes fail fast
// instead of appending after a torn record.
func TestWALAppendShortWriteAccounting(t *testing.T) {
	boom := errors.New("disk full")
	sw := &shortWriter{n: 10, err: boom}
	// A buffer smaller than one frame forces the writer to drain during
	// append, surfacing the short write inside wal.append itself.
	w := &wal{path: "short-write-test", w: bufio.NewWriterSize(sw, 8)}

	rec := walRecord{Op: walOpRegister, At: 42, Sess: "alice", Token: "0123456789abcdef"}
	err := w.append(rec)
	if !errors.Is(err, boom) {
		t.Fatalf("append after short write = %v, want wrapped %v", err, boom)
	}
	frame := sealFrame(w.buf)
	if w.size >= int64(len(frame)) {
		t.Fatalf("size %d counts the full %d-byte frame despite the short write", w.size, len(frame))
	}
	if w.size > 10+8 {
		// Direct write plus at most one buffered drain: nothing beyond the
		// accepted bytes (and the tiny buffer) may be counted.
		t.Fatalf("size %d exceeds the %d bytes the writer could have accepted", w.size, 10+8)
	}
	sizeAfterFailure := w.size

	// Poisoned: appends and flushes fail fast with the original error and
	// the accounting stays frozen.
	for i := 0; i < 3; i++ {
		if err := w.append(rec); !errors.Is(err, boom) {
			t.Fatalf("append on poisoned wal = %v, want %v", err, boom)
		}
		if err := w.flush(); !errors.Is(err, boom) {
			t.Fatalf("flush on poisoned wal = %v, want %v", err, boom)
		}
	}
	if w.size != sizeAfterFailure {
		t.Fatalf("poisoned wal size moved: %d -> %d", sizeAfterFailure, w.size)
	}
}

// TestWALFlushErrorPoisons: an error surfacing at flush (append fit the
// bufio buffer, the drain failed later) must poison the log too.
func TestWALFlushErrorPoisons(t *testing.T) {
	boom := errors.New("io error")
	sw := &shortWriter{n: 0, err: boom}
	w := &wal{path: "flush-error-test", w: bufio.NewWriterSize(sw, 1<<12)}

	if err := w.append(walRecord{Op: walOpAdvance, At: 1}); err != nil {
		t.Fatalf("buffered append should succeed, got %v", err)
	}
	if err := w.flush(); !errors.Is(err, boom) {
		t.Fatalf("flush = %v, want %v", err, boom)
	}
	if err := w.append(walRecord{Op: walOpAdvance, At: 2}); !errors.Is(err, boom) {
		t.Fatalf("append after failed flush = %v, want %v", err, boom)
	}
}
