package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/topology"
	"repro/internal/tracing"
)

// The serve benchmark suite — the perf trajectory of the serving hot path.
//
// RunServeBench measures the encode→fanout→write path with Go's benchmark
// harness (testing.Benchmark, usable outside `go test`) in both wire
// encodings back to back, and derives two machine-independent gauges:
//
//   - BinarySpeedup: JSON fan-out ns/op divided by binary fan-out ns/op,
//     measured in the same process seconds apart, so machine speed cancels
//     out of the ratio.
//   - AllocsPerMessage: heap allocations per delivered message on the
//     binary fan-out path (the ~0 target of the zero-allocation work).
//
// CompareServeBench gates those gauges (and per-row allocation counts)
// against a committed baseline (BENCH_serve.json): ratios and allocation
// counts are stable across machines, so CI can fail a >10% regression
// without chasing absolute nanoseconds. Absolute ns/op and msgs/sec are
// recorded for the trajectory but deliberately not gated.

// fanSubs is the subscriber fan-out factor the write benchmarks model: one
// update delivered to this many connections per op.
const fanSubs = 8

// burstN is the same-round burst the flush-batching benchmark models: a
// quantum spanning burstN epochs delivers that many updates per
// subscription per Advance, which the forwarder must flush as one write.
const burstN = 4

// countingWriter counts underlying writes — each one models a syscall on a
// real connection.
type countingWriter struct{ writes int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	return len(p), nil
}

// ServeBenchRow is one benchmark measurement.
type ServeBenchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// MsgsPerSec is the delivered-message rate implied by NsPerOp for rows
	// that deliver messages (fan-out and netload rows), 0 otherwise.
	MsgsPerSec float64 `json:"msgs_per_sec,omitempty"`
}

// ServeBenchReport is the serve suite's machine-readable outcome.
type ServeBenchReport struct {
	Rows []ServeBenchRow `json:"rows"`
	// BinarySpeedup is fanout/json ns/op ÷ fanout/binary ns/op — how many
	// times faster the binary hot path moves one update to 8 subscribers.
	BinarySpeedup float64 `json:"binary_speedup"`
	// AllocsPerMessage is heap allocations per delivered message on the
	// binary fan-out path.
	AllocsPerMessage float64 `json:"allocs_per_message"`
	// FlushesPerBurst is the number of underlying connection writes one
	// fan-out round of burstN same-round updates costs on the batched
	// write path — the syscall count the per-round flush batching exists
	// to bound. Gated absolutely at <= 1.5 (one write per round plus
	// measurement slack); the pre-batching path cost burstN.
	FlushesPerBurst float64 `json:"flushes_per_burst"`
	// Sharing-tier gauges, filled by share.BenchServe (the share package
	// sits above this one, so the suite's sharing scenario lives there)
	// from a deterministic virtual-time scenario — exactly reproducible on
	// any machine. FragmentReuseRatio and CacheHitRatio mirror the
	// scenario's coordinator stats; WarmReplaySpeedup is the cold
	// late-subscriber TTFR divided by the cached-replay TTFR, gated
	// absolutely at >= 5.
	FragmentReuseRatio float64 `json:"fragment_reuse_ratio,omitempty"`
	CacheHitRatio      float64 `json:"cache_hit_ratio,omitempty"`
	WarmReplaySpeedup  float64 `json:"warm_replay_speedup,omitempty"`
	// TracingOverheadRatio is fanout/traced ns/op ÷ fanout/binary ns/op —
	// the throughput cost of stamping every delivered frame with its
	// causal-trace trailer (trace ID + provenance). Gated absolutely at
	// <= 1.05: tracing must cost at most 5% of hot-path throughput.
	TracingOverheadRatio float64 `json:"tracing_overhead_ratio,omitempty"`
	// TracedAllocsPerMessage is heap allocations per delivered message on
	// the traced binary fan-out path. Gated against AllocsPerMessage:
	// the trace trailer must add zero allocations per delivery.
	TracedAllocsPerMessage float64 `json:"traced_allocs_per_message"`
	// OverloadP99Ratio is the overload scenario's outcome: the p99
	// subscribe-to-first-result latency of a thundering herd admitted
	// through a bounded staging mailbox (shed clients retrying at round
	// boundaries) divided by the same latency unloaded, both in virtual
	// time. Gated absolutely at <= 4 — admission control must convert
	// overload into bounded delay for the tail, not starvation.
	OverloadP99Ratio float64 `json:"overload_p99_ratio,omitempty"`
	// Note reminds readers which fields are gated.
	Note string `json:"note"`
}

// ServeBenchConfig parametrizes RunServeBench.
type ServeBenchConfig struct {
	// Loadgen adds over-the-wire netload rows (binary and JSON, a second
	// or so each). Trajectory only — wall-clock TCP throughput is an
	// environment observation and is never gated.
	Loadgen bool
	// LoadgenDuration bounds each netload run (default 1s).
	LoadgenDuration time.Duration
}

// benchUpdate builds the canonical workload item: one acquisition epoch of
// a 16-node grid reading two attributes — the shape the paper's serving
// experiments fan out every epoch.
func benchUpdate() Update {
	rows := make([]query.Row, 16)
	for i := range rows {
		rows[i] = query.Row{
			Node: topology.NodeID(1 + i),
			Values: map[field.Attr]float64{
				field.AttrLight: 500 + float64(i)*3.25,
				field.AttrTemp:  20 + float64(i)*0.5,
			},
		}
	}
	return Update{Sub: 7, QueryID: 3, Seq: 42, At: 8192 * time.Millisecond, Rows: rows}
}

func row(name string, r testing.BenchmarkResult, msgsPerOp int) ServeBenchRow {
	ns := float64(r.NsPerOp())
	out := ServeBenchRow{
		Name:        name,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if msgsPerOp > 0 && ns > 0 {
		out.MsgsPerSec = float64(msgsPerOp) * 1e9 / ns
	}
	return out
}

// RunServeBench measures the serving hot path and returns the report.
func RunServeBench(cfg ServeBenchConfig) (*ServeBenchReport, error) {
	u := benchUpdate()
	rep := &ServeBenchReport{
		Note: "gated: binary_speedup, allocs_per_message, tracing_overhead_ratio, traced_allocs_per_message, binary rows' allocs_per_op, warm_replay_speedup, fragment_reuse_ratio, cache_hit_ratio, overload_p99_ratio; ns_per_op and msgs_per_sec are trajectory only",
	}

	// encode: build one frame/line from the update, no I/O.
	encBin := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 4096)
		for i := 0; i < b.N; i++ {
			frame := sealFrame(appendUpdateFrame(buf[:0], &u))
			if len(frame) == 0 {
				b.Fatal("empty frame")
			}
		}
	})
	rep.Rows = append(rep.Rows, row("encode/binary", encBin, 0))

	encJSON := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(wireUpdate(u)); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Rows = append(rep.Rows, row("encode/json", encJSON, 0))

	// fanout: one update through connWriter.writeUpdate to fanSubs
	// connections (discard-backed) — encode, copy, flush per delivery.
	// This is exactly what Server.handle's forwarders execute per epoch.
	mkWriters := func(binary bool) []*connWriter {
		ws := make([]*connWriter, fanSubs)
		for i := range ws {
			ws[i] = newConnWriter(io.Discard)
			if binary {
				ws[i].setBinary()
			}
		}
		return ws
	}
	fanout := func(upd *Update, binary bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			ws := mkWriters(binary)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, w := range ws {
					if err := w.writeUpdate(upd); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	// The gated ratios (traced/binary at 5%, json/binary at 10%) are
	// tighter than the run-to-run noise of benchmarks measured seconds
	// apart. All three fan-out variants are therefore measured
	// interleaved, min-of-3: scheduler and frequency drift hit every
	// variant alike, and each minimum is the stable estimate of what that
	// code path actually costs.
	ut := u
	ut.Trace = 0xC0FFEE
	ut.Prov = tracing.Prov{Shards: 0b11, Frags: 2, Reused: 1, CacheHit: true, Rung: 1}
	var fanBin, fanTraced, fanJSON testing.BenchmarkResult
	for i := 0; i < 3; i++ {
		rb := testing.Benchmark(fanout(&u, true))
		if i == 0 || rb.NsPerOp() < fanBin.NsPerOp() {
			fanBin = rb
		}
		rt := testing.Benchmark(fanout(&ut, true))
		if i == 0 || rt.NsPerOp() < fanTraced.NsPerOp() {
			fanTraced = rt
		}
		rj := testing.Benchmark(fanout(&u, false))
		if i == 0 || rj.NsPerOp() < fanJSON.NsPerOp() {
			fanJSON = rj
		}
	}
	rep.Rows = append(rep.Rows, row("fanout/binary", fanBin, fanSubs))

	rep.Rows = append(rep.Rows, row("fanout/json", fanJSON, fanSubs))

	// fanout/traced: the same binary fan-out with every frame carrying the
	// causal-trace trailer — trace ID plus a full provenance stamp (shard
	// mask, fragment and reuse counts, cache bit, brownout rung). The
	// trailer rides the reused frame buffer, so the traced path must stay
	// allocation-free and within 5% of untraced throughput. Measured
	// interleaved with fanout/binary above.
	rep.Rows = append(rep.Rows, row("fanout/traced", fanTraced, fanSubs))

	// fanout/burst: one round of burstN same-round updates staged through
	// the buffered write path and flushed once — the forwarder's per-round
	// shape after flush batching. The counting writer measures the actual
	// underlying writes (syscalls) per round.
	cw := &countingWriter{}
	burstWriter := newConnWriter(cw)
	burstWriter.setBinary()
	var burstWrites float64
	burst := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cw.writes = 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < burstN; j++ {
				if err := burstWriter.writeUpdateBuffered(&u); err != nil {
					b.Fatal(err)
				}
			}
			if err := burstWriter.flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		burstWrites = float64(cw.writes) / float64(b.N)
	})
	rep.Rows = append(rep.Rows, row("fanout/burst", burst, burstN))
	rep.FlushesPerBurst = burstWrites

	// wal: append one lifecycle record through the reused frame buffer vs
	// the JSON marshalling it replaced.
	rec := walRecord{Op: walOpSubscribe, At: 8192 * 1e6, Sess: "client-00042", Sub: 17,
		Query: "SELECT light, temp WHERE light > 200 EPOCH DURATION 8192ms"}
	walBin := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		w := &wal{w: bufio.NewWriterSize(io.Discard, 64*1024)}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Rows = append(rep.Rows, row("wal/binary", walBin, 0))

	walJSON := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		bw := bufio.NewWriterSize(io.Discard, 64*1024)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := json.Marshal(rec)
			if err != nil {
				b.Fatal(err)
			}
			j = append(j, '\n')
			if _, err := bw.Write(j); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Rows = append(rep.Rows, row("wal/json", walJSON, 0))

	// intern: dedup-cache lookup via interned pointer vs string key.
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("SELECT light, temp WHERE light > %d GROUP BY nodeid EPOCH DURATION 8192ms", i)
	}
	internB := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		tab := newInternTable(len(keys))
		m := make(map[*internedKey]*shared, len(keys))
		ks := make([]*internedKey, len(keys))
		for i, k := range keys {
			ks[i] = tab.intern(k)
			m[ks[i]] = &shared{}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m[ks[i%len(ks)]] == nil {
				b.Fatal("miss")
			}
		}
	})
	rep.Rows = append(rep.Rows, row("dedup/interned", internB, 0))

	stringB := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		m := make(map[string]*shared, len(keys))
		for _, k := range keys {
			m[k] = &shared{}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m[keys[i%len(keys)]] == nil {
				b.Fatal("miss")
			}
		}
	})
	rep.Rows = append(rep.Rows, row("dedup/string", stringB, 0))

	if fanBin.NsPerOp() > 0 {
		rep.BinarySpeedup = float64(fanJSON.NsPerOp()) / float64(fanBin.NsPerOp())
		rep.TracingOverheadRatio = float64(fanTraced.NsPerOp()) / float64(fanBin.NsPerOp())
	}
	rep.AllocsPerMessage = float64(fanBin.AllocsPerOp()) / float64(fanSubs)
	rep.TracedAllocsPerMessage = float64(fanTraced.AllocsPerOp()) / float64(fanSubs)

	// overload: the deterministic virtual-time admission storm. Both rows
	// report virtual nanoseconds (like the share/ttfr rows), and the
	// herd-to-unloaded ratio is the gated gauge.
	ov, err := runOverloadBench()
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows,
		ServeBenchRow{Name: "overload/first-result-unloaded", NsPerOp: float64(ov.Unloaded.Nanoseconds())},
		ServeBenchRow{Name: "overload/p99-under-herd", NsPerOp: float64(ov.HerdP99.Nanoseconds())},
	)
	if ov.Unloaded > 0 {
		rep.OverloadP99Ratio = float64(ov.HerdP99) / float64(ov.Unloaded)
	}

	if cfg.Loadgen {
		d := cfg.LoadgenDuration
		if d <= 0 {
			d = time.Second
		}
		for _, jsonWire := range []bool{false, true} {
			lr, err := RunNetLoadgen(NetLoadConfig{
				Clients:       16,
				SubsPerClient: 2,
				Duration:      d,
				Seed:          1,
				JSON:          jsonWire,
			})
			if err != nil {
				return nil, err
			}
			name := "netload/binary"
			if jsonWire {
				name = "netload/json"
			}
			rep.Rows = append(rep.Rows, ServeBenchRow{Name: name, MsgsPerSec: lr.Throughput()})
		}
	}
	return rep, nil
}

// String renders the report as the benchmark table the CLI prints.
func (r *ServeBenchReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %12s %10s %10s %14s\n", "benchmark", "ns/op", "B/op", "allocs/op", "msgs/sec")
	for _, row := range r.Rows {
		msgs := ""
		if row.MsgsPerSec > 0 {
			msgs = fmt.Sprintf("%14.0f", row.MsgsPerSec)
		}
		fmt.Fprintf(&sb, "%-16s %12.1f %10d %10d %14s\n",
			row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, msgs)
	}
	fmt.Fprintf(&sb, "binary speedup (fanout json/binary): %.1fx\n", r.BinarySpeedup)
	fmt.Fprintf(&sb, "allocs per delivered message (binary): %.2f\n", r.AllocsPerMessage)
	if r.TracingOverheadRatio > 0 {
		fmt.Fprintf(&sb, "tracing overhead (fanout traced/binary): %.3fx\n", r.TracingOverheadRatio)
		fmt.Fprintf(&sb, "allocs per delivered message (traced): %.2f\n", r.TracedAllocsPerMessage)
	}
	if r.FlushesPerBurst > 0 {
		fmt.Fprintf(&sb, "connection writes per %d-update round (batched): %.2f\n", burstN, r.FlushesPerBurst)
	}
	if r.WarmReplaySpeedup > 0 {
		fmt.Fprintf(&sb, "fragment reuse ratio (share scenario): %.2f\n", r.FragmentReuseRatio)
		fmt.Fprintf(&sb, "cache hit ratio (share scenario): %.2f\n", r.CacheHitRatio)
		fmt.Fprintf(&sb, "warm replay speedup (cold ttfr / warm ttfr): %.1fx\n", r.WarmReplaySpeedup)
	}
	if r.OverloadP99Ratio > 0 {
		fmt.Fprintf(&sb, "overload p99 ratio (herd p99 / unloaded first result): %.2fx\n", r.OverloadP99Ratio)
	}
	return sb.String()
}

// CompareServeBench checks current against a committed baseline and returns
// the list of violations (empty = pass). tol is the fractional regression
// allowed on gated gauges (0.10 = 10%). Allocation gauges additionally get
// a half-allocation absolute slack so a 0-alloc baseline doesn't turn
// measurement noise into failures — but a real regression to 1+ allocs per
// op still trips it.
func CompareServeBench(baseline, current *ServeBenchReport, tol float64) []string {
	var bad []string
	if current.BinarySpeedup < baseline.BinarySpeedup*(1-tol) {
		bad = append(bad, fmt.Sprintf(
			"binary_speedup regressed: %.2fx, baseline %.2fx (tolerance %.0f%%)",
			current.BinarySpeedup, baseline.BinarySpeedup, tol*100))
	}
	if current.AllocsPerMessage > baseline.AllocsPerMessage*(1+tol)+0.5 {
		bad = append(bad, fmt.Sprintf(
			"allocs_per_message regressed: %.2f, baseline %.2f",
			current.AllocsPerMessage, baseline.AllocsPerMessage))
	}
	// The acceptance bar is absolute, independent of the baseline.
	if current.AllocsPerMessage > 2 {
		bad = append(bad, fmt.Sprintf(
			"allocs_per_message %.2f exceeds the absolute bound of 2", current.AllocsPerMessage))
	}
	// Tracing gates are absolute and internal to one run: the traced and
	// untraced fan-outs are measured seconds apart in the same process, so
	// machine speed cancels from the ratio. Stamping trace trailers may
	// cost at most 5% throughput and zero extra allocations per delivery.
	if current.TracingOverheadRatio > 1.05 {
		bad = append(bad, fmt.Sprintf(
			"tracing_overhead_ratio %.3fx exceeds the absolute bound of 1.05x (trace trailer too expensive)",
			current.TracingOverheadRatio))
	}
	if current.TracedAllocsPerMessage > current.AllocsPerMessage+0.1 {
		bad = append(bad, fmt.Sprintf(
			"traced_allocs_per_message %.2f exceeds the untraced %.2f: the trace trailer allocates",
			current.TracedAllocsPerMessage, current.AllocsPerMessage))
	}
	// Flush batching is gated absolutely too: a same-round burst must cost
	// ~one connection write, not one per update.
	if current.FlushesPerBurst > 1.5 {
		bad = append(bad, fmt.Sprintf(
			"flushes_per_burst %.2f exceeds the absolute bound of 1.5 (per-update flush regression)",
			current.FlushesPerBurst))
	}
	// The sharing scenario is deterministic virtual time, so its gauges
	// carry no measurement noise: cached replay must keep a late
	// subscriber's first result at least 5x faster than a cold epoch wait,
	// and the CSE/cache ratios must not fall below the committed baseline.
	if current.WarmReplaySpeedup > 0 && current.WarmReplaySpeedup < 5 {
		bad = append(bad, fmt.Sprintf(
			"warm_replay_speedup %.2fx below the absolute bound of 5x (cached replay regression)",
			current.WarmReplaySpeedup))
	}
	if current.FragmentReuseRatio < baseline.FragmentReuseRatio*(1-tol) {
		bad = append(bad, fmt.Sprintf(
			"fragment_reuse_ratio regressed: %.3f, baseline %.3f",
			current.FragmentReuseRatio, baseline.FragmentReuseRatio))
	}
	if current.CacheHitRatio < baseline.CacheHitRatio*(1-tol) {
		bad = append(bad, fmt.Sprintf(
			"cache_hit_ratio regressed: %.3f, baseline %.3f",
			current.CacheHitRatio, baseline.CacheHitRatio))
	}
	// The overload scenario is virtual time as well, so the bound is
	// absolute: a herd squeezed through the bounded staging mailbox must
	// see its p99 first result within 4x the unloaded latency — shedding
	// that starves the tail instead of delaying it trips this.
	if current.OverloadP99Ratio > 4 {
		bad = append(bad, fmt.Sprintf(
			"overload_p99_ratio %.2fx exceeds the absolute bound of 4x (herd tail starved)",
			current.OverloadP99Ratio))
	}
	base := make(map[string]ServeBenchRow, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[r.Name] = r
	}
	for _, r := range current.Rows {
		b, ok := base[r.Name]
		if !ok || !strings.HasSuffix(r.Name, "/binary") {
			continue // new rows and non-binary rows are not gated
		}
		if float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tol)+0.5 {
			bad = append(bad, fmt.Sprintf(
				"%s allocs/op regressed: %d, baseline %d", r.Name, r.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return bad
}
