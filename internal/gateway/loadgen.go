package gateway

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// LoadgenConfig parametrizes RunLoadgen.
type LoadgenConfig struct {
	// Clients is the number of concurrent client goroutines (default 100).
	Clients int
	// Rounds is the number of churn rounds; each round is one Advance of
	// Quantum virtual time (default 24).
	Rounds int
	// Quantum is the virtual time per round (default 8192ms).
	Quantum time.Duration
	// Pool is the number of distinct queries clients draw from (default
	// 12). Clients per-subscription permute attribute and predicate order,
	// so the semantic dedup cache — not textual equality — is what maps
	// them back together.
	Pool int
	// Churn is the per-round probability that a client changes its
	// subscription set (default 0.35).
	Churn float64
	// MaxSubs caps each client's concurrent subscriptions (default 2).
	MaxSubs int
	// Seed drives the simulation, the query pool and every client's
	// decisions.
	Seed int64
	// Side is the deployment grid side (default 4, i.e. 16 nodes).
	Side int
	// Scheme is the optimization scheme (default TTMQO).
	Scheme network.Scheme
	// Buffer overrides the per-subscriber buffer bound (gateway default
	// when 0).
	Buffer int
	// Sample attaches a virtual-time metrics series when positive.
	Sample time.Duration
	// CrashRound, when in [1, Rounds), crashes the gateway at the start of
	// that round and recovers it from WALPath; every client then reconnects
	// (capped exponential backoff with jitter) and resumes its streams from
	// its last-seen sequence numbers. Zero disables the crash.
	CrashRound int
	// WALPath is the write-ahead log used when CrashRound is set (and
	// enables recovery logging even without a crash).
	WALPath string
	// OnGateway, when non-nil, is invoked with each gateway the run drives:
	// the initial one before round 0, and the recovered one right after a
	// CrashRound replay. Callers use it to point a live telemetry admin
	// plane (readiness probes, metric gather hooks) at the current gateway.
	OnGateway func(*Gateway)
}

func (cfg *LoadgenConfig) defaults() {
	if cfg.Clients <= 0 {
		cfg.Clients = 100
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 24
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 8192 * time.Millisecond
	}
	if cfg.Pool <= 0 {
		cfg.Pool = 12
	}
	if cfg.Churn <= 0 {
		cfg.Churn = 0.35
	}
	if cfg.MaxSubs <= 0 {
		cfg.MaxSubs = 2
	}
	if cfg.Side <= 0 {
		cfg.Side = 4
	}
	if cfg.Scheme == 0 {
		cfg.Scheme = network.TTMQO
	}
}

// LoadReport is the outcome of one load-generator run. Export (and
// everything reachable from it) is deterministic for a given config;
// the latency and throughput figures are wall-clock observations.
type LoadReport struct {
	Config    LoadgenConfig
	Stats     Stats
	Export    obs.RunExport
	Latency   stats.Quantiles
	Wall      time.Duration
	Simulated time.Duration
	// SubscribeErrs counts client subscribe attempts rejected by admission
	// control (rate limit or quota) during the run.
	SubscribeErrs int64
	// Reconnects counts successful client re-attachments after the
	// CrashRound crash (0 when no crash was configured).
	Reconnects int64
}

// Throughput returns fanned-out updates per wall-clock second.
func (r *LoadReport) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Stats.Updates) / r.Wall.Seconds()
}

// String renders the human-readable summary the load generator prints.
func (r *LoadReport) String() string {
	var sb strings.Builder
	st := r.Stats
	fmt.Fprintf(&sb, "loadgen: clients=%d rounds=%d quantum=%v pool=%d seed=%d scheme=%s nodes=%d\n",
		r.Config.Clients, r.Config.Rounds, r.Config.Quantum, r.Config.Pool,
		r.Config.Seed, r.Config.Scheme, r.Config.Side*r.Config.Side)
	fmt.Fprintf(&sb, "simulated=%v wall=%v\n", r.Simulated, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&sb, "subscribes=%d unsubscribes=%d rejected=%d dedup_hits=%d admitted=%d dedup_ratio=%.2f\n",
		st.Subscribes, st.Unsubscribes, r.SubscribeErrs, st.DedupHits, st.Admitted, st.DedupRatio())
	fmt.Fprintf(&sb, "epochs=%d updates=%d dropped=%d evicted=%d throughput=%.0f updates/s\n",
		st.Epochs, st.Updates, st.Dropped, st.Evicted, r.Throughput())
	if r.Config.CrashRound > 0 {
		fmt.Fprintf(&sb, "crash: round=%d recoveries=%d reconnects=%d resumes=%d resume_gaps=%d\n",
			r.Config.CrashRound, st.Recoveries, r.Reconnects, st.Resumes, st.ResumeGaps)
	}
	fmt.Fprintf(&sb, "client latency: p50=%.2fms p95=%.2fms p99=%.2fms (n=%d)\n",
		r.Latency.P50(), r.Latency.P95(), r.Latency.P99(), r.Latency.N())
	return sb.String()
}

// lgClient is one synthetic subscriber's state, owned by its goroutine
// between barriers.
type lgClient struct {
	sess    *Session
	rng     *sim.Rand
	jitter  *sim.Rand // backoff jitter; separate so retries never skew churn decisions
	subs    []*Subscription
	pending []lgPending
	// lastSeen is the per-subscription resume cursor: the highest sequence
	// number this client has processed on each stream.
	lastSeen   map[SubID]uint64
	lat        stats.Quantiles
	errs       int64
	reconnects int64
}

type lgPending struct {
	ticket *Ticket
	unsub  *Subscription // nil for subscribes
}

// RunLoadgen drives Clients concurrent goroutines of seeded subscription
// churn through a fresh gateway in phased rounds: every round the clients
// concurrently stage their commands, the coordinator commits them with one
// Advance of virtual time, and the clients drain their result buffers and
// record client-observed latency. The phasing means each round's command
// set is fully staged before its tick, so the group-commit ordering makes
// the returned Export byte-identical for a given config regardless of
// goroutine scheduling — the serving-tier analogue of the repository's
// parallel-sweep determinism.
func RunLoadgen(cfg LoadgenConfig) (*LoadReport, error) {
	cfg.defaults()
	if cfg.CrashRound > 0 && cfg.WALPath == "" {
		return nil, fmt.Errorf("loadgen: CrashRound requires WALPath")
	}
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	gwCfg := Config{
		Sim: network.Config{
			Topo:   topo,
			Scheme: cfg.Scheme,
			Seed:   cfg.Seed,
		},
		Buffer:       cfg.Buffer,
		SessionQuota: cfg.MaxSubs + 2,
		Sample:       cfg.Sample,
		WALPath:      cfg.WALPath,
	}
	gw, err := New(gwCfg)
	if err != nil {
		return nil, err
	}
	defer func() { gw.Close() }()
	if cfg.OnGateway != nil {
		cfg.OnGateway(gw)
	}

	// The shared pool of distinct query shapes; ID 0 so the simulation
	// assigns network identities on admission.
	pool := make([]query.Query, 0, cfg.Pool)
	for _, tq := range workload.Random(workload.RandomConfig{
		Seed:       cfg.Seed + 7777,
		NumQueries: cfg.Pool,
	}) {
		q := tq.Query
		q.ID = 0
		pool = append(pool, q)
	}

	clients := make([]*lgClient, cfg.Clients)
	var wg sync.WaitGroup
	var regErr error
	var regMu sync.Mutex
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := gw.Register(fmt.Sprintf("client-%05d", i))
			if err != nil {
				regMu.Lock()
				regErr = err
				regMu.Unlock()
				return
			}
			clients[i] = &lgClient{
				sess:     sess,
				rng:      sim.NewRand(cfg.Seed + 1000).Fork(int64(i)),
				jitter:   sim.NewRand(cfg.Seed + 2000).Fork(int64(i)),
				lastSeen: make(map[SubID]uint64),
			}
		}(i)
	}
	wg.Wait()
	if regErr != nil {
		return nil, regErr
	}

	start := time.Now()
	for round := 0; round < cfg.Rounds; round++ {
		if cfg.CrashRound > 0 && round == cfg.CrashRound {
			// Kill the gateway mid-run and bring it back from the WAL; the
			// clients reconnect with their session tokens and resume every
			// stream from its last-seen sequence number.
			if err := gw.Crash(); err != nil {
				return nil, err
			}
			gw, err = Recover(gwCfg)
			if err != nil {
				return nil, err
			}
			if cfg.OnGateway != nil {
				cfg.OnGateway(gw)
			}
			var recErr error
			var recMu sync.Mutex
			for _, c := range clients {
				wg.Add(1)
				go func(c *lgClient) {
					defer wg.Done()
					if err := c.reconnect(gw); err != nil {
						recMu.Lock()
						recErr = err
						recMu.Unlock()
					}
				}(c)
			}
			wg.Wait()
			if recErr != nil {
				return nil, recErr
			}
		}

		// Phase A: every client stages this round's commands concurrently.
		for _, c := range clients {
			wg.Add(1)
			go func(c *lgClient) {
				defer wg.Done()
				c.stage(cfg, pool, round)
			}(c)
		}
		wg.Wait()

		// Commit + simulate: the single deterministic tick.
		if _, err := gw.Advance(cfg.Quantum); err != nil {
			return nil, err
		}

		// Phase B: clients resolve their tickets and drain their buffers.
		for _, c := range clients {
			wg.Add(1)
			go func(c *lgClient) {
				defer wg.Done()
				c.resolveAndDrain()
			}(c)
		}
		wg.Wait()
	}
	wall := time.Since(start)

	st, err := gw.Stats()
	if err != nil {
		return nil, err
	}
	exp, err := gw.Export()
	if err != nil {
		return nil, err
	}
	rep := &LoadReport{
		Config:    cfg,
		Stats:     st,
		Export:    exp,
		Wall:      wall,
		Simulated: time.Duration(cfg.Rounds) * cfg.Quantum,
	}
	for _, c := range clients {
		rep.Latency.Merge(&c.lat)
		rep.SubscribeErrs += c.errs
		rep.Reconnects += c.reconnects
	}
	return rep, nil
}

// reconnectBackoff is the delay before reconnect attempt n (0-based):
// exponential from 5ms, capped at 500ms, plus up to 50% uniform jitter so
// a herd of reconnecting clients spreads out.
func reconnectBackoff(n int, rng *sim.Rand) time.Duration {
	d := 5 * time.Millisecond
	for i := 0; i < n && d < 500*time.Millisecond; i++ {
		d *= 2
	}
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	return d + time.Duration(rng.Float64()*float64(d)/2)
}

// reconnect re-attaches one client to a recovered gateway and resumes every
// stream exactly after the last sequence number the client processed.
// Attach failures retry with capped exponential backoff and jitter instead
// of aborting the client.
func (c *lgClient) reconnect(gw *Gateway) error {
	const maxAttempts = 8
	var sess *Session
	var infos []ResumeInfo
	for attempt := 0; ; attempt++ {
		var err error
		sess, infos, err = gw.Attach(c.sess.Name(), c.sess.Token())
		if err == nil {
			break
		}
		if attempt+1 >= maxAttempts {
			return fmt.Errorf("loadgen: reconnect %s: %w", c.sess.Name(), err)
		}
		time.Sleep(reconnectBackoff(attempt, c.jitter))
	}
	c.sess = sess
	c.reconnects++
	subs := make([]*Subscription, 0, len(infos))
	for _, in := range infos {
		sub, err := sess.Resume(in.ID, c.lastSeen[in.ID])
		if err != nil {
			return fmt.Errorf("loadgen: resume %s/%d: %w", c.sess.Name(), in.ID, err)
		}
		subs = append(subs, sub)
	}
	c.subs = subs
	return nil
}

// stage issues this round's commands for one client: round 0 always
// subscribes; later rounds churn with probability cfg.Churn, subscribing
// when below MaxSubs (or on a coin flip) and unsubscribing otherwise.
func (c *lgClient) stage(cfg LoadgenConfig, pool []query.Query, round int) {
	subscribe := false
	unsubscribe := false
	switch {
	case round == 0:
		subscribe = true
	case c.rng.Float64() < cfg.Churn:
		if len(c.subs) == 0 {
			subscribe = true
		} else if len(c.subs) < cfg.MaxSubs && c.rng.Float64() < 0.5 {
			subscribe = true
		} else {
			unsubscribe = true
		}
	}
	if subscribe {
		q := c.variant(pool[c.rng.Intn(len(pool))])
		if t, err := c.sess.SubscribeAsync(q); err == nil {
			c.pending = append(c.pending, lgPending{ticket: t})
		} else {
			c.errs++
		}
	}
	if unsubscribe {
		sub := c.subs[c.rng.Intn(len(c.subs))]
		if t, err := c.sess.UnsubscribeAsync(sub.ID()); err == nil {
			c.pending = append(c.pending, lgPending{ticket: t, unsub: sub})
		}
	}
}

// variant perturbs the textual form of a pool query without changing its
// meaning — reversed attribute lists, duplicated predicates — so the dedup
// cache is exercised on semantics, not string equality.
func (c *lgClient) variant(q query.Query) query.Query {
	v := q.Clone()
	if len(v.Attrs) > 1 && c.rng.Float64() < 0.5 {
		for i, j := 0, len(v.Attrs)-1; i < j; i, j = i+1, j-1 {
			v.Attrs[i], v.Attrs[j] = v.Attrs[j], v.Attrs[i]
		}
	}
	if len(v.Preds) > 0 && c.rng.Float64() < 0.5 {
		// A repeated predicate intersects to itself under normalization.
		v.Preds = append(v.Preds, v.Preds[0])
	}
	return v
}

// resolveAndDrain commits the round for one client: collect ticket
// outcomes, then drain every live subscription's buffer, recording
// client-observed latency (fan-out enqueue to client receive).
func (c *lgClient) resolveAndDrain() {
	for _, p := range c.pending {
		sub, err := p.ticket.Wait()
		switch {
		case p.unsub != nil:
			if err == nil {
				c.dropSub(p.unsub)
			}
		case err != nil:
			c.errs++
		default:
			c.subs = append(c.subs, sub)
		}
	}
	c.pending = c.pending[:0]

	now := time.Now()
	live := c.subs[:0]
	for _, sub := range c.subs {
		open := true
	drain:
		for {
			select {
			case u, ok := <-sub.Updates():
				if !ok {
					open = false
					break drain
				}
				c.lastSeen[u.Sub] = u.Seq
				c.lat.Add(float64(now.Sub(u.Enqueued)) / float64(time.Millisecond))
			default:
				break drain
			}
		}
		if open {
			live = append(live, sub)
		}
	}
	c.subs = live
}

func (c *lgClient) dropSub(sub *Subscription) {
	// Drain whatever was buffered before the unsubscribe committed; the
	// channel is already closed, so this terminates.
	for u := range sub.Updates() {
		c.lastSeen[u.Sub] = u.Seq
		c.lat.Add(float64(time.Since(u.Enqueued)) / float64(time.Millisecond))
	}
	for i, x := range c.subs {
		if x == sub {
			c.subs = append(c.subs[:i], c.subs[i+1:]...)
			return
		}
	}
}
