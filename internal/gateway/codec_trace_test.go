package gateway

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestTraceTrailerRoundTrip: frames carrying the optional trace/provenance
// trailer must round-trip bit-exact through the binary codec — the trailer
// is real wire surface, not a debug side channel.
func TestTraceTrailerRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms", Tag: "s1", TraceID: 0xDEADBEEF},
		{Op: OpSubscribe, Query: "SELECT MAX(light)", Tag: "s2", DeadlineMS: 1500, TraceID: 1},
	}
	for _, want := range reqs {
		frame := encodeFrame(t, func(b []byte) ([]byte, error) {
			return appendRequestFrame(b, &want)
		})
		got, err := decodeRequestPayload(stripFrame(t, frame))
		if err != nil {
			t.Fatalf("traced %s: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("traced %s round trip:\n got %+v\nwant %+v", want.Op, got, want)
		}
	}

	resps := []Response{
		{Type: TypeSubscribed, Tag: "s1", Sub: 2, QueryID: 9, Canonical: "SELECT light", TraceID: 0xDEADBEEF},
		{Type: TypeRows, Sub: 2, Seq: 5, AtMS: 4096, TraceID: 0xDEADBEEF,
			Prov: &WireProv{ShardMask: 0b101, Frags: 3, Reused: 2, CacheHit: true, Rung: 2},
			Rows: []WireRow{{Node: 3, Values: map[string]float64{"light": 512.25}}}},
		{Type: TypeAgg, Sub: 4, Seq: 8, AtMS: 8192, TraceID: 7,
			Prov: &WireProv{Frags: 1},
			Aggs: []WireAgg{{Agg: "MAX(light)", Group: 2, Value: 733.5}}},
		// Traced but provenance-free: the trailer's all-zero prov record
		// must decode back to a nil Prov, not a zero-valued one.
		{Type: TypeRows, Sub: 6, Seq: 2, AtMS: 2048, TraceID: 42,
			Rows: []WireRow{{Node: 1, Values: map[string]float64{"light": 100}}}},
		// Trace plus degraded coverage on one frame.
		{Type: TypeAgg, Sub: 6, Seq: 3, AtMS: 4096, Degraded: true, Coverage: 0.75, TraceID: 11,
			Prov: &WireProv{ShardMask: 0b11},
			Aggs: []WireAgg{{Agg: "AVG(temp)", Empty: true}}},
	}
	for _, want := range resps {
		frame := encodeFrame(t, func(b []byte) ([]byte, error) {
			return appendResponseFrame(b, &want)
		})
		got, err := decodeResponsePayload(stripFrame(t, frame))
		if err != nil {
			t.Fatalf("traced %s: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("traced %s round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}

	rec := walRecord{Op: walOpSubscribe, At: 2048, Sess: "alice", Sub: 3,
		Query: "SELECT light EPOCH DURATION 2048ms", Trace: 0xDEADBEEF}
	frame := encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendWALFrame(b, &rec)
	})
	got, err := decodeWALPayload(stripFrame(t, frame))
	if err != nil {
		t.Fatalf("traced wal record: %v", err)
	}
	if got != rec {
		t.Errorf("traced wal record round trip:\n got %+v\nwant %+v", got, rec)
	}
}

// TestUntracedFramesMatchLegacyEncoding pins backward compatibility from
// both directions. Encoding: an untraced frame carries no trailer, so the
// traced encoding of the same frame is the untraced bytes plus a pure
// suffix — a pre-tracing decoder reading prefix fields sees an identical
// frame. Decoding: a trailer-less payload (exactly what a pre-tracing peer
// emits) decodes with a zero TraceID, a nil Prov, and a zero WAL trace.
func TestUntracedFramesMatchLegacyEncoding(t *testing.T) {
	plainReq := Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms", Tag: "s"}
	tracedReq := plainReq
	tracedReq.TraceID = 0xDEADBEEF
	plainP := stripFrame(t, encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendRequestFrame(b, &plainReq)
	}))
	tracedP := stripFrame(t, encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendRequestFrame(b, &tracedReq)
	}))
	if !bytes.HasPrefix(tracedP, plainP) || len(tracedP) == len(plainP) {
		t.Errorf("request trace trailer is not a pure suffix:\nplain  %x\ntraced %x", plainP, tracedP)
	}
	if got, err := decodeRequestPayload(plainP); err != nil || got.TraceID != 0 {
		t.Errorf("legacy request payload: trace = %d, err = %v; want 0, nil", got.TraceID, err)
	}

	plainResp := Response{Type: TypeRows, Sub: 2, Seq: 5, AtMS: 4096, Rows: []WireRow{
		{Node: 3, Values: map[string]float64{"light": 512.25}},
	}}
	tracedResp := plainResp
	tracedResp.TraceID = 7
	tracedResp.Prov = &WireProv{ShardMask: 0b11, Frags: 2}
	plainP = stripFrame(t, encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendResponseFrame(b, &plainResp)
	}))
	tracedP = stripFrame(t, encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendResponseFrame(b, &tracedResp)
	}))
	if !bytes.HasPrefix(tracedP, plainP) || len(tracedP) == len(plainP) {
		t.Errorf("response prov trailer is not a pure suffix:\nplain  %x\ntraced %x", plainP, tracedP)
	}
	got, err := decodeResponsePayload(plainP)
	if err != nil || got.TraceID != 0 || got.Prov != nil {
		t.Errorf("legacy rows payload: trace = %d, prov = %+v, err = %v; want 0, nil, nil",
			got.TraceID, got.Prov, err)
	}

	plainRec := walRecord{Op: walOpSubscribe, At: 2048, Sess: "a", Sub: 1, Query: "q"}
	tracedRec := plainRec
	tracedRec.Trace = 9
	plainP = stripFrame(t, encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendWALFrame(b, &plainRec)
	}))
	tracedP = stripFrame(t, encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendWALFrame(b, &tracedRec)
	}))
	if !bytes.HasPrefix(tracedP, plainP) || len(tracedP) == len(plainP) {
		t.Errorf("wal trace trailer is not a pure suffix:\nplain  %x\ntraced %x", plainP, tracedP)
	}
	if rec, err := decodeWALPayload(plainP); err != nil || rec.Trace != 0 {
		t.Errorf("legacy wal payload: trace = %d, err = %v; want 0, nil", rec.Trace, err)
	}
}

// TestTraceJSONBinaryCrossDecode: a traced frame marshalled on the JSON
// wire and one round-tripped through the binary codec must decode to the
// same structure — the two wire modes agree on trace and provenance.
func TestTraceJSONBinaryCrossDecode(t *testing.T) {
	req := Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms",
		Tag: "s1", DeadlineMS: 250, TraceID: 0xDEADBEEF}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var viaJSON Request
	if err := json.Unmarshal(raw, &viaJSON); err != nil {
		t.Fatal(err)
	}
	viaBinary, err := decodeRequestPayload(stripFrame(t, encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendRequestFrame(b, &req)
	})))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaJSON, viaBinary) {
		t.Errorf("request wires disagree:\njson   %+v\nbinary %+v", viaJSON, viaBinary)
	}

	resp := Response{Type: TypeRows, Sub: 2, Seq: 5, AtMS: 4096, TraceID: 0xDEADBEEF,
		Prov: &WireProv{ShardMask: 0b101, Frags: 3, Reused: 2, CacheHit: true, Rung: 1},
		Rows: []WireRow{{Node: 3, Values: map[string]float64{"light": 512.25}}}}
	raw, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var respJSON Response
	if err := json.Unmarshal(raw, &respJSON); err != nil {
		t.Fatal(err)
	}
	respBinary, err := decodeResponsePayload(stripFrame(t, encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendResponseFrame(b, &resp)
	})))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(respJSON, respBinary) {
		t.Errorf("response wires disagree:\njson   %+v\nbinary %+v", respJSON, respBinary)
	}

	// Untraced JSON omits the fields entirely — no trace keys leak into
	// the pre-tracing JSON schema.
	plain := Response{Type: TypeRows, Sub: 2, Seq: 5, AtMS: 4096, Rows: []WireRow{
		{Node: 3, Values: map[string]float64{"light": 512.25}},
	}}
	raw, err = json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("trace_id")) || bytes.Contains(raw, []byte("prov")) {
		t.Errorf("untraced JSON frame leaks trace keys: %s", raw)
	}
}
