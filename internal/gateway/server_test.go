package gateway

import (
	"bufio"
	"encoding/json"
	"net"
	"path/filepath"
	"testing"
	"time"
)

// wireClient is a minimal test client for the NDJSON protocol.
type wireClient struct {
	t    *testing.T
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

func dialWire(t *testing.T, addr string) *wireClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &wireClient{t: t, conn: conn, sc: sc, enc: json.NewEncoder(conn)}
}

func (c *wireClient) send(req Request) {
	c.t.Helper()
	if err := c.enc.Encode(req); err != nil {
		c.t.Fatal(err)
	}
}

// recv reads lines until one of the wanted type arrives, failing on errors
// and a dead connection. Result-stream lines ("rows"/"agg") interleave with
// direct responses, so callers skip what they are not waiting for.
func (c *wireClient) recv(want string) Response {
	c.t.Helper()
	for c.sc.Scan() {
		var r Response
		if err := json.Unmarshal(c.sc.Bytes(), &r); err != nil {
			c.t.Fatalf("bad response line %q: %v", c.sc.Text(), err)
		}
		if r.Type == want {
			return r
		}
		if r.Type == TypeError {
			c.t.Fatalf("server error while waiting for %q: %s", want, r.Error)
		}
	}
	c.t.Fatalf("connection closed while waiting for %q: %v", want, c.sc.Err())
	return Response{}
}

// TestServerRoundTrip drives the full TCP path: hello, subscribe, result
// delivery, stats, unsubscribe and the closing handshake.
func TestServerRoundTrip(t *testing.T) {
	gw := newTestGateway(t, Config{})
	srv, err := NewServer(gw, ServerConfig{
		Addr:      "127.0.0.1:0",
		TickEvery: 5 * time.Millisecond,
		Quantum:   2048 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Drain order: gateway first so pending commands fail fast, then
		// the listener (mirrors cmd/ttmqo-serve).
		_ = gw.Close()
		_ = srv.Close()
	}()

	c := dialWire(t, srv.Addr().String())
	c.send(Request{Op: OpHello, Client: "alice", Tag: "h"})
	hello := c.recv(TypeHello)
	if hello.Session != "alice" || hello.Tag != "h" {
		t.Fatalf("hello response %+v", hello)
	}

	c.send(Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms", Tag: "s1"})
	subbed := c.recv(TypeSubscribed)
	if subbed.Sub == 0 || subbed.QueryID == 0 || subbed.Canonical == "" {
		t.Fatalf("subscribed response %+v", subbed)
	}

	rows := c.recv(TypeRows)
	if rows.Sub != subbed.Sub || len(rows.Rows) == 0 {
		t.Fatalf("rows response %+v", rows)
	}

	c.send(Request{Op: OpStats, Tag: "st"})
	st := c.recv(TypeStats)
	if st.Stats == nil || st.Stats.Admitted != 1 || st.Stats.ActiveSessions != 1 {
		t.Fatalf("stats response %+v", st.Stats)
	}

	c.send(Request{Op: OpUnsubscribe, Sub: subbed.Sub})
	closed := c.recv(TypeClosed)
	if closed.Sub != subbed.Sub || closed.Reason != ReasonUnsubscribed.String() {
		t.Fatalf("closed response %+v", closed)
	}
}

// TestServerSharedAcrossConnections: two TCP clients issuing equivalent
// query text land on one shared in-network query.
func TestServerSharedAcrossConnections(t *testing.T) {
	gw := newTestGateway(t, Config{})
	srv, err := NewServer(gw, ServerConfig{
		Addr:      "127.0.0.1:0",
		TickEvery: 5 * time.Millisecond,
		Quantum:   2048 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = gw.Close()
		_ = srv.Close()
	}()

	a := dialWire(t, srv.Addr().String())
	a.send(Request{Op: OpSubscribe, Query: "SELECT light, temp EPOCH DURATION 8192ms"})
	sa := a.recv(TypeSubscribed)

	b := dialWire(t, srv.Addr().String())
	b.send(Request{Op: OpSubscribe, Query: "SELECT temp, light EPOCH DURATION 8192ms"})
	sb := b.recv(TypeSubscribed)

	if sa.QueryID != sb.QueryID {
		t.Errorf("query IDs differ: %d vs %d", sa.QueryID, sb.QueryID)
	}
	if !sb.Shared {
		t.Errorf("second connection's subscription not marked shared")
	}
	if sa.Canonical != sb.Canonical {
		t.Errorf("canonical forms differ: %q vs %q", sa.Canonical, sb.Canonical)
	}
}

// TestServerPingRefreshesReadDeadline: heartbeats keep an otherwise idle
// connection alive past several read timeouts, and going silent gets the
// connection reaped.
func TestServerPingRefreshesReadDeadline(t *testing.T) {
	gw := newTestGateway(t, Config{})
	srv, err := NewServer(gw, ServerConfig{
		Addr:        "127.0.0.1:0",
		TickEvery:   5 * time.Millisecond,
		Quantum:     2048 * time.Millisecond,
		ReadTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = gw.Close()
		_ = srv.Close()
	}()

	c := dialWire(t, srv.Addr().String())
	c.send(Request{Op: OpHello, Client: "beeper"})
	c.recv(TypeHello)
	// Idle for 3× the timeout in total, pinging well inside each window.
	for i := 0; i < 6; i++ {
		time.Sleep(150 * time.Millisecond)
		c.send(Request{Op: OpPing, Tag: "hb"})
		if pong := c.recv(TypePong); pong.Tag != "hb" {
			t.Fatalf("pong response %+v", pong)
		}
	}
	// Now go silent: the server must reap the connection, which surfaces
	// here as EOF (scanner stops with no error).
	_ = c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for c.sc.Scan() {
	}
	if err := c.sc.Err(); err != nil {
		t.Fatalf("expected server-side close (EOF), got %v", err)
	}
}

// TestServerCrashReattachResumeOverTCP drives the crash-recovery handshake
// end to end over the wire: subscribe, note the last seen sequence number,
// crash the gateway, recover it behind a fresh listener, re-attach with
// the hello token and resume — the stream continues at exactly the next
// sequence number.
func TestServerCrashReattachResumeOverTCP(t *testing.T) {
	cfg := walConfig(t, filepath.Join(t.TempDir(), "gw.wal"))
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srvCfg := ServerConfig{
		Addr:      "127.0.0.1:0",
		TickEvery: 5 * time.Millisecond,
		Quantum:   2048 * time.Millisecond,
	}
	srv, err := NewServer(gw, srvCfg)
	if err != nil {
		_ = gw.Close()
		t.Fatal(err)
	}

	c := dialWire(t, srv.Addr().String())
	c.send(Request{Op: OpHello, Client: "phoenix"})
	hello := c.recv(TypeHello)
	if hello.Token == "" {
		t.Fatal("hello carried no resume token")
	}
	c.send(Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms"})
	subbed := c.recv(TypeSubscribed)
	var lastSeen uint64
	for i := 0; i < 2; i++ {
		r := c.recv(TypeRows)
		if r.Seq != lastSeen+1 {
			t.Fatalf("pre-crash seq = %d, want %d", r.Seq, lastSeen+1)
		}
		lastSeen = r.Seq
	}

	_ = srv.Close()
	if err := gw.Crash(); err != nil {
		t.Fatal(err)
	}
	g2, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer(g2, srvCfg)
	if err != nil {
		_ = g2.Close()
		t.Fatal(err)
	}
	defer func() {
		_ = g2.Close()
		_ = s2.Close()
	}()

	c2 := dialWire(t, s2.Addr().String())
	c2.send(Request{Op: OpHello, Client: "phoenix", Token: hello.Token})
	h2 := c2.recv(TypeHello)
	if len(h2.Subs) != 1 || h2.Subs[0].Sub != subbed.Sub {
		t.Fatalf("re-attach listed %+v, want subscription %d", h2.Subs, subbed.Sub)
	}
	if h2.Subs[0].LastSeq < lastSeen {
		t.Fatalf("replayed LastSeq = %d below client cursor %d", h2.Subs[0].LastSeq, lastSeen)
	}
	c2.send(Request{Op: OpResume, Sub: subbed.Sub, After: lastSeen})
	rs := c2.recv(TypeSubscribed)
	if !rs.Resumed || rs.Sub != subbed.Sub {
		t.Fatalf("resume response %+v", rs)
	}
	// Exactly-once across the crash: the stream picks up at the next
	// sequence number with no duplicate and no gap.
	for i := 0; i < 2; i++ {
		r := c2.recv(TypeRows)
		if r.Seq != lastSeen+1 {
			t.Fatalf("post-resume seq = %d, want %d", r.Seq, lastSeen+1)
		}
		lastSeen = r.Seq
	}

	// A stale token is still refused over the wire.
	c3 := dialWire(t, s2.Addr().String())
	c3.send(Request{Op: OpHello, Client: "phoenix", Token: "bogus"})
	var got Response
	for c3.sc.Scan() {
		if err := json.Unmarshal(c3.sc.Bytes(), &got); err != nil {
			t.Fatalf("bad response line %q: %v", c3.sc.Text(), err)
		}
		break
	}
	if got.Type != TypeError {
		t.Fatalf("bad-token hello answered with %+v, want error", got)
	}
}
