//go:build race

package gateway

// raceEnabled reports whether this test binary was built with the race
// detector. Benchmarks measured under race instrumentation carry per-op
// overhead that distorts fine-grained ratios, and sync.Pool deliberately
// drops Puts at random under race — tests sensitive to either consult
// this to relax their bounds.
const raceEnabled = true
