package gateway

import (
	"strings"
	"testing"

	"repro/internal/query"
)

// disorder reverses a rotated copy of xs — enough churn to exercise every
// ordering the normalizer must undo, deterministically from the fuzzed
// mix byte.
func disorder[T any](xs []T, mix uint8) []T {
	if len(xs) < 2 {
		return xs
	}
	n := int(mix) % len(xs)
	out := make([]T, 0, len(xs))
	out = append(out, xs[n:]...)
	out = append(out, xs[:n]...)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// FuzzCanonicalKey pins the byte-stability of the semantic dedup key that
// both the gateway cache and the sharing layer's CSE registry hash on. For
// any parseable input, the key must be identical under: round-tripping the
// key itself through the parser, whitespace inflation of the source text,
// arbitrary reordering of the attribute/aggregate/window/predicate lists,
// and duplicated list entries. A single byte of drift would split one
// shared in-network query into two.
func FuzzCanonicalKey(f *testing.F) {
	seeds := []string{
		"SELECT light EPOCH DURATION 2048ms",
		"SELECT temp, light, humidity WHERE light >= 100 AND light <= 300 EPOCH DURATION 4096ms",
		"select light where 280<light<600 epoch duration 4096",
		"SELECT MAX(light), MIN(temp), COUNT(nodeid) WHERE temp > 20 EPOCH DURATION 8192ms",
		"SELECT SUM(light), AVG(light) WHERE nodeid >= 5 AND nodeid <= 12 EPOCH DURATION 8192",
		"SELECT AVG(light) GROUP BY temp BUCKET 10 EPOCH DURATION 4096",
		"SELECT COUNT(nodeid) WHERE nodeid BETWEEN 3 AND 9 EPOCH DURATION 2048",
		"SELECT WINAVG(light, 8, 2), WINMAX(temp, 4, 2) WHERE light > 100 EPOCH DURATION 4096",
		"SELECT humidity FROM sensors WHERE 10 <= humidity EPOCH DURATION 24576",
		"sElEcT LiGhT, TeMp ePoCh DuRaTiOn 2048",
		"SELECT light WHERE light > 1e3 EPOCH DURATION 4s",
	}
	for _, s := range seeds {
		f.Add(s, uint8(1))
		f.Add(s, uint8(7))
	}
	f.Fuzz(func(t *testing.T, input string, mix uint8) {
		q, err := query.Parse(input)
		if err != nil {
			return
		}
		key := CanonicalKey(q)

		// The key is a fixed point: parsing the canonical rendering and
		// keying it again reproduces the same bytes.
		back, err := query.Parse(key)
		if err != nil {
			t.Fatalf("canonical key %q of %q does not re-parse: %v", key, input, err)
		}
		if k := CanonicalKey(back); k != key {
			t.Fatalf("key not a fixed point for %q:\n first: %q\n again: %q", input, key, k)
		}

		// Whitespace is lexical noise: inflating every separator in the
		// source text must not move the key.
		padded := strings.ReplaceAll(input, " ", " \t  ")
		qp, err := query.Parse(padded)
		if err != nil {
			t.Fatalf("whitespace inflation broke parsing of %q: %v", input, err)
		}
		if k := CanonicalKey(qp); k != key {
			t.Fatalf("whitespace moved the key for %q:\n base:   %q\n padded: %q", input, key, k)
		}

		// List order is semantic noise: the normalizer must undo any
		// permutation of the projection, aggregate, window and predicate
		// lists.
		perm := q.Clone()
		perm.Attrs = disorder(perm.Attrs, mix)
		perm.Aggs = disorder(perm.Aggs, mix)
		perm.Wins = disorder(perm.Wins, mix)
		perm.Preds = disorder(perm.Preds, mix)
		if k := CanonicalKey(perm); k != key {
			t.Fatalf("reordering moved the key for %q (mix=%d):\n base:     %q\n permuted: %q", input, mix, key, k)
		}

		// Duplicate list entries collapse in normalization.
		dup := q.Clone()
		if len(dup.Attrs) > 0 {
			dup.Attrs = append(dup.Attrs, dup.Attrs[0])
		}
		if len(dup.Aggs) > 0 {
			dup.Aggs = append(dup.Aggs, dup.Aggs[0])
		}
		if len(dup.Preds) > 0 {
			dup.Preds = append(dup.Preds, dup.Preds[0])
		}
		if k := CanonicalKey(dup); k != key {
			t.Fatalf("duplicated entries moved the key for %q:\n base: %q\n dup:  %q", input, key, k)
		}
	})
}
