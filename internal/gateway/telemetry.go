package gateway

import (
	"strconv"

	"repro/internal/telemetry"
)

// TTFRBounds are the time-to-first-result histogram's bucket bounds, in
// virtual seconds. Epoch periods run seconds to tens of seconds, so the
// ladder doubles from 1s to 128s.
var TTFRBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// RegisterMetrics mounts the serving tier's metric families on r and
// installs a gather hook that syncs them before every exposition. The
// hook reads through current() so the same registry survives gateway
// crash/recovery cycles: the serve CLI and chaos harness swap the gateway
// under the hook's feet and the scrape follows. A nil current() gateway
// leaves the previous values standing (a scrape mid-swap sees the last
// consistent state).
//
// Counters mirror gateway.Stats through monotonic Set, so a recovery
// whose deterministic replay re-derives a smaller history (drops on
// long-gone live channels are not re-counted) never makes an exposed
// counter run backwards mid-scrape-series. Everything here is a pure
// function of seed and committed command sequence — no wall clock — so
// scrapes at a fixed virtual time are identical across client scheduling
// and experiment parallelism.
func RegisterMetrics(r *telemetry.Registry, current func() *Gateway) {
	up := r.NewGauge("ttmqo_gateway_up", "1 while the gateway actor loop is running, 0 during a crash outage")

	type cf struct {
		fam *telemetry.Family
		get func(Stats) int64
	}
	counters := []cf{
		{r.NewCounter("ttmqo_gateway_sessions_total", "sessions registered"), func(s Stats) int64 { return s.Sessions }},
		{r.NewCounter("ttmqo_gateway_subscribes_total", "subscriptions accepted"), func(s Stats) int64 { return s.Subscribes }},
		{r.NewCounter("ttmqo_gateway_unsubscribes_total", "subscriptions removed"), func(s Stats) int64 { return s.Unsubscribes }},
		{r.NewCounter("ttmqo_gateway_rate_limited_total", "subscribes rejected by the token bucket"), func(s Stats) int64 { return s.RateLimited }},
		{r.NewCounter("ttmqo_gateway_quota_rejected_total", "subscribes rejected by the session quota"), func(s Stats) int64 { return s.QuotaRejected }},
		{r.NewCounter("ttmqo_gateway_admit_errors_total", "network admissions that failed"), func(s Stats) int64 { return s.AdmitErrors }},
		{r.NewCounter("ttmqo_gateway_dedup_hits_total", "subscriptions served by an already-admitted query"), func(s Stats) int64 { return s.DedupHits }},
		{r.NewCounter("ttmqo_gateway_admitted_total", "queries posted into the network"), func(s Stats) int64 { return s.Admitted }},
		{r.NewCounter("ttmqo_gateway_cancelled_total", "refcount-zero query cancellations"), func(s Stats) int64 { return s.Cancelled }},
		{r.NewCounter("ttmqo_gateway_updates_total", "result deliveries fanned out"), func(s Stats) int64 { return s.Updates }},
		{r.NewCounter("ttmqo_gateway_epochs_total", "result epochs from the simulation"), func(s Stats) int64 { return s.Epochs }},
		{r.NewCounter("ttmqo_gateway_dropped_updates_total", "deliveries lost to full buffers"), func(s Stats) int64 { return s.Dropped }},
		{r.NewCounter("ttmqo_gateway_evicted_total", "slow subscribers evicted"), func(s Stats) int64 { return s.Evicted }},
		{r.NewCounter("ttmqo_gateway_detaches_total", "session detaches"), func(s Stats) int64 { return s.Detaches }},
		{r.NewCounter("ttmqo_gateway_attaches_total", "session re-attaches"), func(s Stats) int64 { return s.Attaches }},
		{r.NewCounter("ttmqo_gateway_resumes_total", "subscription streams resumed"), func(s Stats) int64 { return s.Resumes }},
		{r.NewCounter("ttmqo_gateway_resume_gaps_total", "resumes that lost ring-shed updates"), func(s Stats) int64 { return s.ResumeGaps }},
		{r.NewCounter("ttmqo_gateway_ring_dropped_total", "updates shed from bounded resume rings"), func(s Stats) int64 { return s.RingDropped }},
		{r.NewCounter("ttmqo_gateway_idle_reaped_total", "detached sessions reaped by the idle timeout"), func(s Stats) int64 { return s.IdleReaped }},
		{r.NewCounter("ttmqo_gateway_recoveries_total", "gateways rebuilt by WAL replay"), func(s Stats) int64 { return s.Recoveries }},
		{r.NewCounter("ttmqo_wal_appends_total", "write-ahead-log records appended"), func(s Stats) int64 { return s.WALAppends }},
		{r.NewCounter("ttmqo_wal_compactions_total", "write-ahead-log rewrites"), func(s Stats) int64 { return s.WALCompactions }},
		{r.NewCounter("ttmqo_resilience_shed_queue_total", "subscribes shed at staging by the mailbox depth bound"), func(s Stats) int64 { return s.ShedQueue }},
		{r.NewCounter("ttmqo_resilience_shed_deadline_total", "subscribes shed at commit: mailbox sojourn exceeded the deadline budget"), func(s Stats) int64 { return s.ShedDeadline }},
		{r.NewCounter("ttmqo_resilience_shed_subs_total", "subscribes shed by the global concurrent-subscription cap"), func(s Stats) int64 { return s.ShedSubs }},
		{r.NewCounter("ttmqo_resilience_shed_brownout_total", "subscribes shed while the brownout ladder sat at its shed rung"), func(s Stats) int64 { return s.ShedBrownout }},
		{r.NewCounter("ttmqo_resilience_brownout_escalations_total", "brownout ladder steps toward heavier shedding"), func(s Stats) int64 { return s.BrownoutEscalations }},
		{r.NewCounter("ttmqo_resilience_brownout_recoveries_total", "brownout ladder steps back toward normal"), func(s Stats) int64 { return s.BrownoutRecoveries }},
	}

	activeSessions := r.NewGauge("ttmqo_gateway_active_sessions", "currently registered sessions")
	activeSubs := r.NewGauge("ttmqo_gateway_active_subscriptions", "currently live subscriptions")
	sharedQueries := r.NewGauge("ttmqo_gateway_shared_queries", "distinct admitted in-network queries")
	dedupRatio := r.NewGauge("ttmqo_gateway_dedup_ratio", "subscriptions per admitted network query")
	ringUpdates := r.NewGauge("ttmqo_gateway_resume_ring_updates", "updates parked in resume rings (occupancy)")
	walSize := r.NewGauge("ttmqo_wal_size_bytes", "current write-ahead-log size")
	virtualTime := r.NewGauge("ttmqo_sim_virtual_time_seconds", "elapsed virtual time")
	brownoutLevel := r.NewGauge("ttmqo_resilience_brownout_level", "brownout ladder rung: 0 normal, 1 no-replay, 2 batching, 3 shed")

	radioMessages := r.NewCounter("ttmqo_radio_messages_total", "messages put on the air (incl. retries)")
	radioRetrans := r.NewCounter("ttmqo_radio_retransmissions_total", "collision/loss retransmissions")
	radioDropped := r.NewCounter("ttmqo_radio_dropped_total", "messages dropped after retry exhaustion")
	radioClipped := r.NewCounter("ttmqo_radio_clipped_total", "metric updates addressed to out-of-range node IDs")
	radioBytes := r.NewCounter("ttmqo_radio_bytes_total", "payload bytes transmitted")
	avgTxPct := r.NewGauge("ttmqo_radio_avg_tx_pct", "average per-node transmission time, percent of elapsed virtual time")
	nodeEnergy := r.NewGauge("ttmqo_node_energy_joules", "energy spent per node under the mica2 model", "node")
	totalEnergy := r.NewGauge("ttmqo_energy_total_joules", "energy spent across all nodes")

	ttfr := r.NewHistogram("ttmqo_query_time_to_first_result_seconds",
		"virtual time from query admission to the first delivered result", TTFRBounds)
	queriesSeen := r.NewGauge("ttmqo_query_spans", "queries with a recorded lifecycle span")

	r.OnGather(func() {
		g := current()
		if g == nil {
			return
		}
		if g.Alive() {
			up.Gauge().Set(1)
		} else {
			up.Gauge().Set(0)
		}
		st, err := g.Stats()
		if err != nil {
			return
		}
		for _, c := range counters {
			c.fam.Counter().Set(float64(c.get(st)))
		}
		activeSessions.Gauge().Set(float64(st.ActiveSessions))
		activeSubs.Gauge().Set(float64(st.ActiveSubscriptions))
		sharedQueries.Gauge().Set(float64(st.SharedQueries))
		dedupRatio.Gauge().Set(st.DedupRatio())
		walSize.Gauge().Set(float64(st.WALSizeBytes))
		brownoutLevel.Gauge().Set(float64(st.BrownoutLevel))

		if status, err := g.Status(); err == nil {
			ringUpdates.Gauge().Set(float64(status.ResumeRingUpdates))
		}

		exp, err := g.Export()
		if err != nil {
			return
		}
		virtualTime.Gauge().Set(float64(exp.Metrics.SimulatedMS) / 1000)
		radioMessages.Counter().Set(float64(exp.Metrics.Messages))
		radioRetrans.Counter().Set(float64(exp.Metrics.Retransmissions))
		radioDropped.Counter().Set(float64(exp.Metrics.Dropped))
		radioClipped.Counter().Set(float64(exp.Metrics.Clipped))
		radioBytes.Counter().Set(float64(exp.Metrics.Bytes))
		avgTxPct.Gauge().Set(exp.Metrics.AvgTxPct)
		var total float64
		for _, n := range exp.Metrics.Nodes {
			nodeEnergy.Gauge(strconv.Itoa(n.ID)).Set(n.EnergyJ)
			total += n.EnergyJ
		}
		totalEnergy.Gauge().Set(total)

		// The histogram is rebuilt from the authoritative span log each
		// gather: spans gain first results over time, and after a crash the
		// recovered simulation's log replaces the lost one wholesale.
		spans := g.Spans().Snapshot()
		queriesSeen.Gauge().Set(float64(len(spans)))
		h := ttfr.Histogram()
		h.Reset()
		for _, s := range spans {
			if d, ok := s.TTFR(); ok {
				h.Observe(d.Seconds())
			}
		}
	})
}
