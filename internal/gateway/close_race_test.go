package gateway

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/query"
)

// TestSendCloseRaceDropsNoCommand hammers SubscribeAsync from several
// goroutines while the gateway closes. The seal/drain in shutdown must
// guarantee that every command send accepted (nil error) is answered —
// before the fix, a send racing the loop exit could enqueue into the
// mailbox after the loop stopped reading it, and the ticket resolved only
// via the generic done fallback while the command itself was silently
// dropped. Reading the ticket's own channel (not Wait's fallback) proves
// each accepted command got an explicit reply.
func TestSendCloseRaceDropsNoCommand(t *testing.T) {
	q := query.MustParse("SELECT light EPOCH DURATION 8192ms")
	for iter := 0; iter < 30; iter++ {
		gw := newTestGateway(t, Config{SessionQuota: 1 << 20, Rate: 1 << 20, Burst: 1 << 20})
		sess, err := gw.Register(fmt.Sprintf("hammer-%d", iter))
		if err != nil {
			t.Fatal(err)
		}
		var (
			mu      sync.Mutex
			tickets []*Ticket
			wg      sync.WaitGroup
		)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					tk, err := sess.SubscribeAsync(q)
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("SubscribeAsync: %v", err)
						}
						return
					}
					mu.Lock()
					tickets = append(tickets, tk)
					mu.Unlock()
				}
			}()
		}
		time.Sleep(200 * time.Microsecond)
		if err := gw.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		for i, tk := range tickets {
			select {
			case <-tk.done:
			case <-time.After(10 * time.Second):
				t.Fatalf("iter %d: ticket %d/%d never answered: command dropped at close", iter, i, len(tickets))
			}
		}
		// Sealed mailbox: post-close sends must fail deterministically.
		for i := 0; i < 64; i++ {
			if _, err := sess.SubscribeAsync(q); !errors.Is(err, ErrClosed) {
				t.Fatalf("post-close SubscribeAsync = %v, want ErrClosed", err)
			}
		}
		if n := len(gw.inbox); n != 0 {
			t.Fatalf("post-close inbox holds %d undrained messages", n)
		}
	}
}

// TestSendAfterCrashSealed: the crash path must seal the mailbox exactly
// like a clean shutdown — post-crash commands and control requests fail
// with ErrClosed and nothing lingers in the inbox.
func TestSendAfterCrashSealed(t *testing.T) {
	gw := newTestGateway(t, Config{})
	sess, err := gw.Register("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.Crash(); err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("SELECT light EPOCH DURATION 8192ms")
	for i := 0; i < 64; i++ {
		if _, err := sess.SubscribeAsync(q); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-crash SubscribeAsync = %v, want ErrClosed", err)
		}
		if _, err := gw.Advance(time.Second); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-crash Advance = %v, want ErrClosed", err)
		}
		if err := sess.Detach(); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-crash Detach = %v, want ErrClosed", err)
		}
	}
	if n := len(gw.inbox); n != 0 {
		t.Fatalf("post-crash inbox holds %d undrained messages", n)
	}
}

// TestCloseAfterCrashReturns: Close on an already-crashed gateway must
// return immediately. Regression: Close used a bare inbox enqueue in a
// select against done; post-crash both cases are ready, and picking the
// (buffered) enqueue blocked forever on a reply the dead loop never
// sends. The coin flip is per call, so hammer fresh gateways.
func TestCloseAfterCrashReturns(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		gw := newTestGateway(t, Config{})
		if err := gw.Crash(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- gw.Close() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("iter %d: post-crash Close = %v", iter, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: post-crash Close deadlocked", iter)
		}
	}
}
