package gateway

import "testing"

// TestOverloadBenchDeterministic runs the virtual-time admission storm
// twice and checks the properties the bench gate depends on: the gauges
// are bit-identical across runs (no wall clock leaks in), the herd's tail
// pays a real shedding delay (ratio > 1), and the delay stays within the
// acceptance bar (ratio <= 4) — retrying shed subscribers are admitted in
// waves, not starved.
func TestOverloadBenchDeterministic(t *testing.T) {
	a, err := runOverloadBench()
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOverloadBench()
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("overload bench is nondeterministic: %+v vs %+v", a, b)
	}
	if a.Unloaded <= 0 {
		t.Fatalf("unloaded first-result latency = %v, want > 0", a.Unloaded)
	}
	ratio := float64(a.HerdP99) / float64(a.Unloaded)
	if ratio <= 1 {
		t.Fatalf("herd p99 %v <= unloaded %v; the storm never shed", a.HerdP99, a.Unloaded)
	}
	if ratio > 4 {
		t.Fatalf("herd p99 %v is %.2fx unloaded %v, acceptance bar is 4x",
			a.HerdP99, ratio, a.Unloaded)
	}
}
