package gateway

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/workload"
)

// NetLoadConfig parametrizes RunNetLoadgen — the over-the-wire counterpart
// of RunLoadgen. Where RunLoadgen measures the gateway core with in-process
// channels (and is deterministic), the net load generator stands up a real
// TCP server, dials real clients and pushes every fanned-out update through
// the wire codec, so its msgs/sec reflects the full encode→fanout→write→
// decode path. Being wall-clock paced, its numbers are environment
// observations, not deterministic fixtures.
type NetLoadConfig struct {
	// Clients is the number of concurrent TCP connections (default 32).
	Clients int
	// SubsPerClient is the subscription count per connection (default 2).
	SubsPerClient int
	// Duration is how long to stream after all subscriptions are live
	// (default 3s).
	Duration time.Duration
	// Pool is the number of distinct queries drawn from (default 12);
	// clients cycle through it, so the dedup cache collapses the fan-in.
	Pool int
	// Side is the deployment grid side (default 4).
	Side int
	// Seed drives the simulation and the query pool.
	Seed int64
	// JSON pins the NDJSON wire encoding; default is the binary codec.
	JSON bool
	// TickEvery is the server pacer period (default 2ms — a fast pacer, so
	// the run is fan-out-bound rather than timer-bound).
	TickEvery time.Duration
	// Quantum is the virtual time per tick (default 2048ms).
	Quantum time.Duration
}

func (cfg *NetLoadConfig) defaults() {
	if cfg.Clients <= 0 {
		cfg.Clients = 32
	}
	if cfg.SubsPerClient <= 0 {
		cfg.SubsPerClient = 2
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Pool <= 0 {
		cfg.Pool = 12
	}
	if cfg.Side <= 0 {
		cfg.Side = 4
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 2 * time.Millisecond
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 2048 * time.Millisecond
	}
}

// NetLoadReport is the outcome of one over-the-wire load run.
type NetLoadReport struct {
	Config   NetLoadConfig
	Wire     string // "binary" or "json"
	Messages int64  // stream frames (rows/agg) received across all clients
	Rows     int64  // data rows within those frames
	Wall     time.Duration
	Stats    Stats
}

// Throughput returns delivered stream messages per wall-clock second.
func (r *NetLoadReport) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Messages) / r.Wall.Seconds()
}

// String renders the human-readable summary.
func (r *NetLoadReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "netload: wire=%s clients=%d subs/client=%d pool=%d seed=%d nodes=%d\n",
		r.Wire, r.Config.Clients, r.Config.SubsPerClient, r.Config.Pool,
		r.Config.Seed, r.Config.Side*r.Config.Side)
	fmt.Fprintf(&sb, "wall=%v messages=%d rows=%d throughput=%.0f msgs/s\n",
		r.Wall.Round(time.Millisecond), r.Messages, r.Rows, r.Throughput())
	fmt.Fprintf(&sb, "gateway: epochs=%d updates=%d dropped=%d dedup_hits=%d admitted=%d\n",
		r.Stats.Epochs, r.Stats.Updates, r.Stats.Dropped, r.Stats.DedupHits, r.Stats.Admitted)
	return sb.String()
}

// RunNetLoadgen stands up a gateway behind a TCP server, drives Clients
// real connections through the configured wire encoding and measures
// delivered stream throughput over Duration.
func RunNetLoadgen(cfg NetLoadConfig) (*NetLoadReport, error) {
	cfg.defaults()
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	gw, err := New(Config{
		Sim: network.Config{
			Topo:   topo,
			Scheme: network.TTMQO,
			Seed:   cfg.Seed,
		},
		SessionQuota: cfg.SubsPerClient + 1,
		MaxSessions:  cfg.Clients + 1,
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close()
	srv, err := NewServer(gw, ServerConfig{
		Addr:      "127.0.0.1:0",
		TickEvery: cfg.TickEvery,
		Quantum:   cfg.Quantum,
		ForceJSON: cfg.JSON,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	pool := make([]string, 0, cfg.Pool)
	for _, tq := range workload.Random(workload.RandomConfig{
		Seed:       cfg.Seed + 7777,
		NumQueries: cfg.Pool,
	}) {
		pool = append(pool, tq.Query.String())
	}

	var messages, rows atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Clients)
	stop := make(chan struct{})
	ready := make(chan struct{}, cfg.Clients)

	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr().String(), ClientConfig{
				Binary:  !cfg.JSON,
				Timeout: 30 * time.Second,
			})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Hello(fmt.Sprintf("net-%05d", i), ""); err != nil {
				errs <- err
				return
			}
			for s := 0; s < cfg.SubsPerClient; s++ {
				q := pool[(i*cfg.SubsPerClient+s)%len(pool)]
				if err := c.Send(Request{Op: OpSubscribe, Query: q}); err != nil {
					errs <- err
					return
				}
				if _, err := c.RecvType(TypeSubscribed); err != nil {
					errs <- err
					return
				}
			}
			ready <- struct{}{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := c.Recv()
				if err != nil {
					select {
					case <-stop: // server shut down under us: expected
						return
					default:
					}
					errs <- err
					return
				}
				if resp.Type == TypeRows || resp.Type == TypeAgg {
					messages.Add(1)
					rows.Add(int64(len(resp.Rows)))
				}
			}
		}(i)
	}

	for i := 0; i < cfg.Clients; i++ {
		select {
		case <-ready:
		case err := <-errs:
			close(stop)
			srv.Close()
			wg.Wait()
			return nil, err
		}
	}

	start := time.Now()
	time.Sleep(cfg.Duration)
	wall := time.Since(start)
	close(stop)
	srv.Close() // severs connections so blocked Recvs return
	wg.Wait()

	st, err := gw.Stats()
	if err != nil {
		return nil, err
	}
	wire := "binary"
	if cfg.JSON {
		wire = "json"
	}
	rep := &NetLoadReport{
		Config:   cfg,
		Wire:     wire,
		Messages: messages.Load(),
		Rows:     rows.Load(),
		Wall:     wall,
		Stats:    st,
	}
	select {
	case err := <-errs:
		return rep, err
	default:
	}
	return rep, nil
}
