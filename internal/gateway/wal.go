package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/tracing"
)

// Crash recovery for the serving tier.
//
// The gateway's durable state is a write-ahead log of session and
// subscription lifecycle: registrations (with their resume tokens),
// subscription commits keyed by the canonical query text, unsubscriptions
// (explicit or by eviction), session closes, and per-Advance virtual-time
// progress marks. Every record carries the virtual instant of the state
// change, and every state change the log records happens at an Advance
// commit boundary — never in the middle of a simulated quantum — so the log
// is a total order of the serving tier's external inputs.
//
// Because the simulation itself is fully deterministic (seeded randomness,
// FIFO event ordering), that log IS the snapshot: Recover rebuilds a
// crashed gateway by replaying the logged lifecycle against a fresh
// simulation of the same configuration and running it to the last progress
// mark. The replayed world re-derives everything the crash destroyed —
// installed query set, optimizer state, radio accounting, per-subscription
// sequence numbers — bit-for-bit. Replayed result epochs land in each
// subscription's bounded resume ring instead of a client channel; a client
// that reconnects with its session token and last-seen sequence number gets
// the ring's tail replayed from exactly the next sequence, then the live
// stream — exactly-once resumption, with ring overflow surfacing as a
// counted, bounded gap rather than a silent loss.
//
// Compaction ("snapshot") drops the interior progress marks, which dominate
// the log's volume on long runs; the lifecycle records are kept verbatim
// since deterministic replay needs the full admission schedule. It runs
// every Config.SnapshotEvery advances and once after every recovery,
// rewriting the file atomically (temp file + rename).

// WAL record operations.
const (
	walOpRegister    = "reg"
	walOpSubscribe   = "sub"
	walOpUnsubscribe = "unsub"
	walOpClose       = "close"
	walOpAdvance     = "adv"
)

// walRecord is one line of the log. At is the virtual time of the state
// change in nanoseconds — full engine precision, so replay schedules each
// record at the exact instant it originally applied.
type walRecord struct {
	Op    string `json:"op"`
	At    int64  `json:"at"`
	Sess  string `json:"sess,omitempty"`
	Token string `json:"token,omitempty"`
	Sub   SubID  `json:"sub,omitempty"`
	// Query is the canonical query text (walOpSubscribe) — the same string
	// CanonicalKey produces, so the dedup cache rebuilds identically.
	Query string `json:"query,omitempty"`
	// Trace is the subscription's causal trace ID (walOpSubscribe; zero
	// when untraced). Persisting it keeps subscriber-propagated trace
	// contexts stable across crash recovery; derived IDs would replay
	// identically anyway. Optional on the wire, so pre-tracing logs
	// recover cleanly.
	Trace uint64 `json:"trace,omitempty"`
}

// wal is the append handle. All methods run on the gateway loop goroutine.
//
// Records are written as binary frames (see codec.go) through one reused
// encode buffer: appends between flush points batch in the bufio.Writer
// and hit the disk as a single write per group-commit (walAdvance flushes
// once per Advance), with zero allocations per record in steady state.
// readWAL still accepts NDJSON records, so logs written before the binary
// codec recover cleanly.
type wal struct {
	path string
	f    *os.File
	w    *bufio.Writer
	size int64  // bytes accepted by the writer (including buffered ones)
	buf  []byte // reused per-record frame buffer (loop goroutine only)
	// err poisons the log after the first write failure: a WAL that may
	// have dropped or torn a record mid-file must not accept more appends
	// (compaction thresholds and recovery would trust a lie), so every
	// later append/flush fails fast with the original error.
	err error
}

func createWAL(path string) (*wal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("gateway: create wal: %w", err)
	}
	return &wal{path: path, f: f, w: bufio.NewWriter(f)}, nil
}

func (w *wal) append(r walRecord) error {
	if w.err != nil {
		return w.err
	}
	b, err := appendWALFrame(w.buf[:0], &r)
	if err != nil {
		return err
	}
	w.buf = b
	frame := sealFrame(b)
	// Account only for what the writer accepted: a short write (bufio
	// draining to a failing file) must not inflate size past the bytes
	// that can ever reach the disk.
	n, err := w.w.Write(frame)
	w.size += int64(n)
	if err != nil {
		w.err = fmt.Errorf("gateway: wal append %s: %w", w.path, err)
		return w.err
	}
	return nil
}

func (w *wal) flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("gateway: wal flush %s: %w", w.path, err)
		return w.err
	}
	return nil
}

func (w *wal) close() error {
	if w == nil {
		return nil
	}
	ferr := w.w.Flush()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// readWAL parses a log file, auto-detecting the record framing byte by
// byte: a FrameMagic first byte is a binary frame, anything else is a
// legacy NDJSON line, and the two may interleave (a pre-codec log compacted
// by a post-codec gateway). A truncated or malformed final record (torn
// write at crash) is tolerated and dropped; any earlier malformed record is
// an error.
func readWAL(path string) ([]walRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var recs []walRecord
	var scratch []byte
	for {
		first, err := br.ReadByte()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		if first == FrameMagic {
			scratch, err = readBinaryFrame(br, scratch)
			if err != nil {
				// A short read is a torn tail only at end of log; a frame
				// that could not even state its length is torn if nothing
				// follows it.
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return recs, nil
				}
				return nil, fmt.Errorf("gateway: wal %s: %w", path, err)
			}
			r, err := decodeWALPayload(scratch)
			if err != nil {
				// Corrupt payload: legal only as the final record, where it
				// is indistinguishable from a torn write.
				if _, eof := br.ReadByte(); eof == io.EOF {
					return recs, nil
				}
				return nil, fmt.Errorf("gateway: wal %s: malformed record before end of log: %w", path, err)
			}
			recs = append(recs, r)
			continue
		}
		if first == '\n' {
			continue
		}
		line, err := br.ReadSlice('\n')
		tail := err == io.EOF
		if err != nil && !tail {
			return nil, err
		}
		scratch = append(append(scratch[:0], first), line...)
		var r walRecord
		if jerr := json.Unmarshal(scratch, &r); jerr != nil {
			if tail || isAtEOF(br) {
				return recs, nil // torn final line
			}
			return nil, fmt.Errorf("gateway: wal %s: malformed record before end of log", path)
		}
		recs = append(recs, r)
		if tail {
			return recs, nil
		}
	}
}

// isAtEOF reports whether the reader has no bytes left (used to decide if a
// malformed record was the log's torn tail).
func isAtEOF(br *bufio.Reader) bool {
	_, err := br.Peek(1)
	return err == io.EOF
}

// rewriteWAL atomically replaces the log with recs and returns a fresh
// append handle positioned after them.
func rewriteWAL(path string, recs []walRecord) (*wal, error) {
	tmp := path + ".tmp"
	w, err := createWAL(tmp)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if err := w.append(r); err != nil {
			w.close()
			os.Remove(tmp)
			return nil, err
		}
	}
	if err := w.close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{path: path, f: f, w: bufio.NewWriter(f), size: w.size}, nil
}

// compactLog returns the lifecycle records plus a single trailing progress
// mark at now — the "snapshot" form of the log.
func compactLog(lifecycle []walRecord, now sim.Time) []walRecord {
	out := make([]walRecord, 0, len(lifecycle)+1)
	out = append(out, lifecycle...)
	out = append(out, walRecord{Op: walOpAdvance, At: int64(now)})
	return out
}

// Recover rebuilds a crashed gateway from cfg.WALPath by deterministic
// replay: the same simulation configuration is constructed from scratch,
// every logged lifecycle record is re-applied at its original virtual
// instant (admission control bypassed — it already passed once), and the
// engine is run to the last logged progress mark. Sessions come back
// detached with their original tokens and their subscriptions' sequence
// numbers exactly where the crash left them; the most recent Buffer updates
// of each stream sit in its resume ring. Clients re-attach with
// Gateway.Attach (session token) and Session.Resume (last-seen sequence).
//
// Token buckets restart full and the idle-reap clock restarts at recovery,
// which only ever errs in the client's favour.
func Recover(cfg Config) (*Gateway, error) {
	if cfg.WALPath == "" {
		return nil, fmt.Errorf("gateway: Recover requires Config.WALPath")
	}
	recs, err := readWAL(cfg.WALPath)
	if err != nil {
		return nil, err
	}
	g, err := build(cfg)
	if err != nil {
		return nil, err
	}
	g.replaying = true
	var lastNow int64
	for _, r := range recs {
		if r.At > lastNow {
			lastNow = r.At
		}
		if r.Op == walOpAdvance {
			continue
		}
		r := r
		g.sim.Engine().Schedule(sim.Time(r.At), func() {
			if err := g.replay(r); err != nil && g.walErr == nil {
				g.walErr = fmt.Errorf("gateway: replay %s at %v: %w", r.Op, time.Duration(r.At), err)
			}
		})
	}
	g.sim.Run(time.Duration(lastNow))
	g.replaying = false
	if g.walErr != nil {
		return nil, g.walErr
	}
	// Everyone starts detached with a fresh idle clock and a full bucket.
	now := g.sim.Engine().Now()
	for _, s := range g.sessions {
		s.attached = false
		s.idleSince = now
		s.tokens = g.cfg.Burst
	}
	g.stats.Recoveries++
	// The recovery hop: one tier-level span saying how much log the
	// rebuild replayed and how much virtual time it re-derived.
	g.cfg.Tracer.Record(tracing.Span{
		Kind:  tracing.KindWALReplay,
		Shard: g.traceShard(),
		AtMS:  time.Duration(now).Milliseconds(),
		Seq:   uint64(len(recs)),
		Note:  fmt.Sprintf("replayed %d records to %v", len(recs), time.Duration(lastNow)),
	})
	g.walLog = lifecycleRecords(recs)
	w, err := rewriteWAL(cfg.WALPath, compactLog(g.walLog, now))
	if err != nil {
		return nil, err
	}
	g.wal = w
	g.stats.WALCompactions++
	g.stats.WALSizeBytes = w.size
	go g.loop()
	return g, nil
}

func lifecycleRecords(recs []walRecord) []walRecord {
	out := make([]walRecord, 0, len(recs))
	for _, r := range recs {
		if r.Op != walOpAdvance {
			out = append(out, r)
		}
	}
	return out
}

// replay applies one lifecycle record on the loop-owned state. It runs
// inside an engine callback during Recover, before the loop starts.
func (g *Gateway) replay(r walRecord) error {
	switch r.Op {
	case walOpRegister:
		if _, dup := g.sessions[r.Sess]; dup {
			return fmt.Errorf("duplicate session %q", r.Sess)
		}
		s := &Session{
			g:      g,
			name:   r.Sess,
			token:  r.Token,
			live:   make(map[SubID]*Subscription, g.cfg.SessionQuota),
			tokens: g.cfg.Burst,
		}
		g.sessions[r.Sess] = s
		g.stats.Sessions++
		g.stats.ActiveSessions = len(g.sessions)
		return nil
	case walOpSubscribe:
		s := g.sessions[r.Sess]
		if s == nil {
			return fmt.Errorf("unknown session %q", r.Sess)
		}
		q, err := query.Parse(r.Query)
		if err != nil {
			return fmt.Errorf("canonical query %q: %w", r.Query, err)
		}
		n, key, err := canonicalize(q)
		if err != nil {
			return err
		}
		if r.Sub >= g.nextSub {
			g.nextSub = r.Sub + 1
		}
		sub, err := g.admitSub(s, r.Sub, n, key, nil)
		if err != nil {
			return err
		}
		// Restore the causal trace context without re-recording admit
		// spans: the original run already recorded them into the
		// caller-owned flight recorder, which survived the crash.
		if g.cfg.Tracer != nil {
			sub.trace = r.Trace
			if sub.trace == 0 {
				sub.trace = tracing.TraceID(s.name, uint64(sub.id))
			}
			sub.admitAtMS = time.Duration(r.At).Milliseconds()
			sub.spanID = tracing.SpanID(sub.trace, g.cfg.Tracer.Tier(), tracing.KindSubscribe, g.traceShard(), sub.admitAtMS)
		}
		return nil
	case walOpUnsubscribe:
		s := g.sessions[r.Sess]
		if s == nil {
			return fmt.Errorf("unknown session %q", r.Sess)
		}
		return g.applyUnsubscribe(s, r.Sub, ReasonUnsubscribed)
	case walOpClose:
		s := g.sessions[r.Sess]
		if s == nil {
			return fmt.Errorf("unknown session %q", r.Sess)
		}
		return g.applyCloseSession(s)
	default:
		return fmt.Errorf("unknown wal op %q", r.Op)
	}
}

// walAppend writes one lifecycle record; replay mode and disabled logs are
// no-ops. Write failures poison the gateway (surfaced by the next Advance)
// rather than silently dropping durability.
func (g *Gateway) walAppend(r walRecord) {
	if g.wal == nil || g.replaying {
		return
	}
	g.walLog = append(g.walLog, r)
	if err := g.wal.append(r); err != nil && g.walErr == nil {
		g.walErr = err
	}
	g.stats.WALAppends++
	g.stats.WALSizeBytes = g.wal.size
}

func (g *Gateway) walFlush() {
	if g.wal == nil {
		return
	}
	if err := g.wal.flush(); err != nil && g.walErr == nil {
		g.walErr = err
	}
}

// walAdvance writes the per-Advance progress mark and, every SnapshotEvery
// advances, compacts the log.
func (g *Gateway) walAdvance() {
	if g.wal == nil {
		return
	}
	now := g.sim.Engine().Now()
	rec := walRecord{Op: walOpAdvance, At: int64(now)}
	if err := g.wal.append(rec); err != nil && g.walErr == nil {
		g.walErr = err
	}
	g.stats.WALAppends++
	g.stats.WALSizeBytes = g.wal.size
	g.advances++
	if g.cfg.SnapshotEvery > 0 && g.advances%int64(g.cfg.SnapshotEvery) == 0 {
		if err := g.wal.close(); err != nil && g.walErr == nil {
			g.walErr = err
		}
		w, err := rewriteWAL(g.wal.path, compactLog(g.walLog, now))
		if err != nil {
			if g.walErr == nil {
				g.walErr = err
			}
			g.wal = nil
			return
		}
		g.wal = w
		g.stats.WALCompactions++
		g.stats.WALSizeBytes = w.size
		return
	}
	g.walFlush()
}
