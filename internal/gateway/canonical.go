package gateway

import (
	"fmt"

	"repro/internal/query"
)

// CanonicalKey returns the semantic cache key of a client query: the
// canonical rendering of its normalized form with the identity and
// lifecycle metadata stripped. Two queries that request the same data —
// regardless of attribute order, predicate commutation, duplicate list
// entries or the units their epoch was spelled in — canonicalize to the
// same key and therefore share one admitted in-network query; queries that
// differ in any semantic dimension (bounds, epoch, operators, grouping) do
// not.
//
// Normalization (query.Normalize) sorts and deduplicates the attribute,
// aggregate and predicate lists and intersects same-attribute predicates;
// the parser already resolves duration units to a time.Duration. The
// canonical string renders every field in that sorted order with the epoch
// in milliseconds, so it is injective over normalized queries.
func CanonicalKey(q query.Query) string {
	c := q.Normalize()
	c.ID = 0
	c.Lifetime = 0
	return c.String()
}

// canonicalize validates a client query for serving and returns its
// normalized form plus cache key. Subscriptions are continuous: a LIFETIME
// clause is rejected because the gateway owns the query's lifecycle via
// reference counting.
func canonicalize(q query.Query) (query.Query, string, error) {
	n := q.Normalize()
	n.ID = 0
	if n.Lifetime != 0 {
		return query.Query{}, "", fmt.Errorf("gateway: LIFETIME is not supported for subscriptions (the gateway cancels a query when its last subscriber leaves)")
	}
	if err := n.Validate(); err != nil {
		return query.Query{}, "", err
	}
	return n, n.String(), nil
}
