// Package gateway is the concurrent multi-client query-serving tier in
// front of the single-threaded sensor-network simulation: the base
// station's front door. Many client goroutines (or TCP connections, see
// Server) register sessions, subscribe to TinyDB-dialect queries and
// stream per-epoch results back, while one actor goroutine owns the
// network.Simulation and its discrete-event engine.
//
// The bridge between the two worlds is a group-commit mailbox: client
// commands (subscribe, unsubscribe, session close) are staged as they
// arrive and committed only at the next Advance call, sorted by (session
// name, per-session sequence number). A client's own commands therefore
// apply in its program order, concurrent clients apply in a fixed total
// order regardless of goroutine scheduling, and the simulation — including
// every exported metric — stays byte-for-byte deterministic under
// arbitrary client concurrency, provided each Advance's command set is
// submitted before the tick (which the phased load generator and the
// regression tests guarantee, and which a wall-clock pacer approximates
// per tick).
//
// On top of the bridge the gateway applies the paper's tier-1 sharing idea
// once more, at the serving tier: a semantic dedup cache maps every
// subscription whose query canonicalizes to the same normalized form (see
// CanonicalKey) onto one admitted in-network query with reference
// counting, so N subscribers cost the network one query; the tier-1
// optimizer below then merges the distinct admitted queries further.
// Results fan out to per-subscriber bounded buffers; a subscriber that
// stalls past its buffer bound is evicted so one slow client can never
// wedge the simulation or its fast peers. Closing the gateway drains every
// session and cancels each admitted query as its reference count reaches
// zero.
//
// The serving tier also survives its own death. With Config.WALPath set,
// every committed lifecycle change is written to a write-ahead log and
// Recover rebuilds a crashed gateway by deterministic replay (see wal.go).
// Sessions carry resume tokens, every update carries a per-subscription
// sequence number, and a disconnected or crashed-out client re-attaches
// with Gateway.Attach and Session.Resume to pick its streams back up from
// the exact next sequence number — duplicates are impossible to emit twice
// with the same Seq, so client-side dedup on Seq yields exactly-once
// consumption over an at-least-once transport.
package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// defaultEnergy prices exported node activity; the serving tier has no
// reason to deviate from the repository's mica2-flavoured defaults.
var defaultEnergy = metrics.DefaultEnergyModel()

// Defaults for the Config knobs.
const (
	DefaultBuffer       = 64
	DefaultMaxSessions  = 4096
	DefaultSessionQuota = 16
	DefaultRate         = 4.0 // subscribe tokens per simulated second
	DefaultBurst        = 32.0
	// DefaultIdleTimeout is how long (virtual time) a detached session may
	// sit idle before an Advance reaps it.
	DefaultIdleTimeout = 5 * time.Minute
	// DefaultSnapshotEvery is how many Advances pass between WAL
	// compactions.
	DefaultSnapshotEvery = 256
	// DefaultShedRetryAfter is the base retry-after hint attached to
	// overload rejections when Config.ShedRetryAfter is zero.
	DefaultShedRetryAfter = 250 * time.Millisecond
)

// Config parametrizes a Gateway.
type Config struct {
	// Sim configures the simulation the gateway fronts; required fields as
	// in network.New. DiscardResults is forced on (the gateway streams
	// results to subscribers instead of retaining them).
	Sim network.Config
	// Buffer is the per-subscriber result buffer bound (DefaultBuffer if
	// <= 0). A subscriber whose buffer is full when a result arrives is
	// evicted.
	Buffer int
	// MaxSessions caps concurrently registered sessions
	// (DefaultMaxSessions if <= 0).
	MaxSessions int
	// SessionQuota caps live subscriptions per session
	// (DefaultSessionQuota if <= 0).
	SessionQuota int
	// Rate and Burst parametrize each session's token bucket: Rate
	// subscribe tokens accrue per simulated second up to Burst. The bucket
	// is driven by virtual time so admission control is deterministic.
	// Defaults: DefaultRate, DefaultBurst.
	Rate  float64
	Burst float64
	// Sample, when positive, attaches a virtual-time metrics series to the
	// simulation (network.Simulation.StartSeries); retrieve it with Series.
	Sample time.Duration
	// WALPath, when set, enables crash recovery: committed lifecycle
	// changes are logged there and Recover rebuilds the gateway from the
	// file by deterministic replay. New truncates an existing file (fresh
	// run); use Recover to resume one.
	WALPath string
	// IdleTimeout bounds how long a detached session lingers before an
	// Advance reaps it, in virtual time (DefaultIdleTimeout if zero;
	// negative disables reaping). Attached sessions are never reaped.
	IdleTimeout time.Duration
	// SnapshotEvery compacts the WAL every that many Advances
	// (DefaultSnapshotEvery if zero; negative disables periodic
	// compaction).
	SnapshotEvery int
	// OnSim, when set, runs against the freshly built simulation before the
	// actor loop starts — in New and again inside Recover, so
	// engine-scheduled fault injection (chaos scenarios) is re-applied
	// identically to the replayed world.
	OnSim func(*network.Simulation)
	// ChaosLabel, when set, annotates the export manifest's Chaos field
	// with the fault scenario the run was driven under.
	ChaosLabel string
	// MaxStaged, when positive, bounds the group-commit mailbox: a
	// subscribe arriving while MaxStaged commands are already staged is
	// rejected immediately with a typed *resilience.OverloadError
	// carrying a retry-after hint. Unsubscribes and session closes are
	// always staged — they free resources. Zero disables the bound.
	MaxStaged int
	// MailboxDeadline, when positive, is the default sojourn budget for
	// staged subscribes (the CoDel-style deadline on the group-commit
	// mailbox): a subscribe that waits longer than its budget between
	// staging and the committing Advance is shed with ErrOverloaded
	// instead of applied. Per-command budgets (SubscribeAsyncBudget, wire
	// deadline_ms) override it. Zero disables the default deadline.
	MailboxDeadline time.Duration
	// MaxLiveSubs, when positive, caps gateway-wide live subscriptions;
	// subscribes beyond the cap are shed with ErrOverloaded. Zero
	// disables the global cap (per-session quotas still apply).
	MaxLiveSubs int
	// ShedRetryAfter is the base retry-after hint on overload rejections
	// (DefaultShedRetryAfter if zero); the hint grows with mailbox depth.
	ShedRetryAfter time.Duration
	// Brownout parametrizes the degradation ladder's hysteresis; the
	// ladder observes mailbox pressure once per Advance and only ever
	// moves when MaxStaged is set (without a bound there is no pressure
	// signal).
	Brownout resilience.BrownoutConfig
	// Tracer, when set, is this tier's causal-trace flight recorder: every
	// committed subscription is assigned a deterministic trace context and
	// the admit/commit/fan-out/replay hops record bounded spans into the
	// ring. The recorder is caller-owned, so it survives a crash of the
	// gateway underneath it and can be dumped afterwards. Nil disables
	// tracing entirely (every hook is a nil-receiver no-op).
	Tracer *tracing.Recorder
	// TraceShard stamps recorded spans with this gateway's shard ordinal
	// in a federated deployment, offset by one: 0 (the zero value) means
	// "not a shard member", k means shard k-1.
	TraceShard int
}

// SubID identifies one subscription within a gateway.
type SubID int64

// CloseReason says why a subscription's update channel was closed.
type CloseReason uint8

const (
	// ReasonNone: the subscription is still live.
	ReasonNone CloseReason = iota
	// ReasonUnsubscribed: the client unsubscribed.
	ReasonUnsubscribed
	// ReasonEvicted: the subscriber stalled past its buffer bound.
	ReasonEvicted
	// ReasonShutdown: the gateway closed.
	ReasonShutdown
	// ReasonDetached: the session detached (client disconnected); the
	// subscription is resumable with Session.Resume.
	ReasonDetached
	// ReasonCrashed: the gateway crashed; the session is resumable on the
	// recovered gateway via Gateway.Attach + Session.Resume.
	ReasonCrashed
)

func (r CloseReason) String() string {
	switch r {
	case ReasonNone:
		return "live"
	case ReasonUnsubscribed:
		return "unsubscribed"
	case ReasonEvicted:
		return "evicted"
	case ReasonShutdown:
		return "shutdown"
	case ReasonDetached:
		return "detached"
	case ReasonCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Update is one epoch of results delivered to one subscriber. Exactly one
// of Rows and Aggs is non-nil, matching the query's kind.
type Update struct {
	Sub     SubID
	QueryID query.ID
	// Seq is the per-subscription delivery sequence number, starting at 1
	// and incrementing by one per delivered epoch. It is assigned once,
	// survives gateway crashes (deterministic replay regenerates the same
	// numbering), and is the client's resume cursor: after a disconnect or
	// crash, Resume(id, lastSeenSeq) continues the stream from exactly the
	// next sequence number.
	Seq uint64
	// At is the epoch's virtual timestamp.
	At sim.Time
	// Rows is one acquisition epoch (nil for aggregation queries).
	Rows []query.Row
	// Aggs is one aggregation epoch (nil for acquisition queries).
	Aggs []query.AggResult
	// Degraded marks an epoch released without full shard coverage: a
	// tripped circuit breaker excluded one or more spanned shards from
	// the federation merge watermark, so the epoch may be missing those
	// shards' contributions. Coverage is then the fraction of spanned
	// shards that were contributing when the epoch released; both fields
	// are zero on single-gateway and fully-covered updates.
	Degraded bool
	Coverage float64
	// Trace is the subscription's causal trace ID (zero when the serving
	// stack runs untraced); Prov is the compact provenance record every
	// tier stamps on the way up — origin shards, cache-hit flag, fragment
	// reuse and the brownout rung at fan-out. Both are plain values, so
	// stamping costs no allocation on the delivery hot path.
	Trace uint64
	Prov  tracing.Prov
	// Enqueued is the wall-clock instant the gateway fanned the update
	// out, for client-observed latency measurement. It never feeds back
	// into the simulation.
	Enqueued time.Time
}

// Subscription is one client's handle on a (possibly shared) query stream.
// Updates delivers epochs until the subscription ends; after the channel
// closes, Reason reports why.
type Subscription struct {
	id     SubID
	sess   *Session
	key    *internedKey // canonical query key; pointer-shared with shared.key
	qid    query.ID
	shared bool
	ch     chan Update

	// reason is written by the gateway loop strictly before close(ch) and
	// read by the client strictly after the channel closes, so the close
	// itself is the synchronization edge.
	reason CloseReason

	// Loop-owned stream state.
	seq      uint64   // last delivered sequence number
	detached bool     // session detached: deliveries go to the resume ring
	evict    bool     // stalled past the buffer bound; removed at next Advance
	ring     []Update // bounded resume buffer while detached (cap = Config.Buffer)

	// Causal-trace context, assigned at commit (loop-owned, immutable
	// after): the trace ID stamped on every delivery, the subscribe span
	// later hops parent to, and the admit instant for first-result
	// latency. All zero when the gateway runs untraced.
	trace     uint64
	spanID    uint64
	admitAtMS int64
}

// ID returns the subscription's gateway-wide identifier.
func (s *Subscription) ID() SubID { return s.id }

// QueryID returns the in-network user query the subscription reads from;
// subscribers with semantically equal queries share one.
func (s *Subscription) QueryID() query.ID { return s.qid }

// Shared reports whether the subscription attached to an already-admitted
// query (a dedup hit) rather than causing a new network admission.
func (s *Subscription) Shared() bool { return s.shared }

// Key returns the canonical cache key of the subscribed query.
func (s *Subscription) Key() string { return s.key.String() }

// Updates is the subscriber's result stream.
func (s *Subscription) Updates() <-chan Update { return s.ch }

// Reason reports why the stream ended. Only valid after Updates is closed.
func (s *Subscription) Reason() CloseReason { return s.reason }

// TraceID returns the subscription's causal trace ID (zero when the
// gateway runs untraced). Assigned at the commit that admitted the
// subscription, deterministically from the session name and SubID unless
// the subscriber propagated its own context.
func (s *Subscription) TraceID() uint64 { return s.trace }

// Session is one registered client. Its methods may be called from any
// goroutine; commands issued from a single goroutine apply in issue order.
type Session struct {
	g    *Gateway
	name string
	// token authenticates re-attachment after a disconnect or gateway
	// crash. Immutable after registration; derived deterministically from
	// the seed, the name and the registration ordinal (it guards against
	// accidental session takeover in the simulation harness, not against an
	// adversary).
	token string

	mu  sync.Mutex
	seq uint64

	// Loop-owned state; never touched by client goroutines.
	live      map[SubID]*Subscription
	tokens    float64
	closed    bool
	attached  bool     // a client currently holds the session
	idleSince sim.Time // when the session detached (reap clock)
	dropped   int64    // updates dropped on this session's evictions
}

// Name returns the session's registered name.
func (s *Session) Name() string { return s.name }

// Token returns the session's resume token, quoted back in Gateway.Attach
// to re-claim the session after a disconnect or gateway crash.
func (s *Session) Token() string { return s.token }

func (s *Session) nextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.seq
}

// Stats is the gateway's counter snapshot. All counters except the
// wall-clock-free gauges are cumulative since construction. Every field is
// a pure function of the committed command sequence and the simulation
// seed, so snapshots are deterministic under the group-commit ordering.
type Stats struct {
	// Sessions is the cumulative number of registered sessions;
	// ActiveSessions the current gauge.
	Sessions       int64 `json:"sessions"`
	ActiveSessions int   `json:"active_sessions"`
	// Subscribes counts accepted subscriptions; SubscribeErrors counts
	// rejected ones (rate limit, quota, admission failure).
	Subscribes    int64 `json:"subscribes"`
	Unsubscribes  int64 `json:"unsubscribes"`
	RateLimited   int64 `json:"rate_limited"`
	QuotaRejected int64 `json:"quota_rejected"`
	AdmitErrors   int64 `json:"admit_errors"`
	// DedupHits counts subscriptions served by an already-admitted query;
	// Admitted counts queries actually posted into the network; Cancelled
	// counts refcount-zero cancellations.
	DedupHits int64 `json:"dedup_hits"`
	Admitted  int64 `json:"admitted"`
	Cancelled int64 `json:"cancelled"`
	// ActiveSubscriptions and SharedQueries are current gauges.
	ActiveSubscriptions int `json:"active_subscriptions"`
	SharedQueries       int `json:"shared_queries"`
	// Updates counts fanned-out result deliveries; Epochs counts result
	// epochs arriving from the simulation; Dropped counts deliveries lost
	// to full buffers; Evicted counts slow subscribers removed for it.
	Updates int64 `json:"updates"`
	Epochs  int64 `json:"epochs"`
	Dropped int64 `json:"dropped"`
	Evicted int64 `json:"evicted"`
	// Overload-shedding counters (all zero unless the resilience knobs
	// are set). ShedQueue counts subscribes rejected at stage time by the
	// MaxStaged mailbox bound; ShedDeadline counts subscribes shed at the
	// commit boundary because they out-sat their mailbox deadline budget;
	// ShedSubs counts subscribes rejected by the global MaxLiveSubs cap;
	// ShedBrownout counts subscribes rejected while the brownout ladder
	// sat at its shed rung. BrownoutLevel is the ladder's current rung
	// (gauge; see resilience.Level) and BrownoutEscalations /
	// BrownoutRecoveries count its rung transitions.
	ShedQueue           int64 `json:"shed_queue"`
	ShedDeadline        int64 `json:"shed_deadline"`
	ShedSubs            int64 `json:"shed_subs"`
	ShedBrownout        int64 `json:"shed_brownout"`
	BrownoutLevel       int   `json:"brownout_level"`
	BrownoutEscalations int64 `json:"brownout_escalations"`
	BrownoutRecoveries  int64 `json:"brownout_recoveries"`
	// Crash-recovery and reconnection counters. Detaches/Attaches count
	// session disconnect/re-claim pairs; Resumes counts resumed
	// subscription streams and ResumeGaps the resumes that could not
	// splice seamlessly because the bounded resume ring had already
	// dropped wanted updates (RingDropped counts those drops). IdleReaped
	// counts detached sessions closed by the idle timeout; Recoveries is 1
	// on a gateway rebuilt by Recover. After a recovery the counters are
	// the deterministic replay's view of history: evictions replay as
	// unsubscriptions, and drops on long-gone live channels are not
	// re-counted.
	Detaches    int64 `json:"detaches"`
	Attaches    int64 `json:"attaches"`
	Resumes     int64 `json:"resumes"`
	ResumeGaps  int64 `json:"resume_gaps"`
	RingDropped int64 `json:"ring_dropped"`
	IdleReaped  int64 `json:"idle_reaped"`
	Recoveries  int64 `json:"recoveries"`
	// Write-ahead-log accounting. WALAppends counts records written
	// (lifecycle records and per-Advance progress marks), WALCompactions
	// counts log rewrites (periodic snapshots and the one after every
	// recovery), and WALSizeBytes is the log's current size. All zero when
	// the WAL is disabled. Replayed records are not re-counted, so the
	// counters are deterministic across recoveries like everything else.
	WALAppends     int64 `json:"wal_appends"`
	WALCompactions int64 `json:"wal_compactions"`
	WALSizeBytes   int64 `json:"wal_size_bytes"`
}

// DedupRatio is subscriptions served per network query admitted (> 1 means
// the serving tier is sharing).
func (st Stats) DedupRatio() float64 {
	if st.Admitted == 0 {
		return 0
	}
	return float64(st.Subscribes) / float64(st.Admitted)
}

// Metrics converts the snapshot into its obs export form.
func (st Stats) Metrics() obs.GatewayMetrics {
	return obs.GatewayMetrics{
		Sessions:            st.Sessions,
		ActiveSessions:      st.ActiveSessions,
		Subscribes:          st.Subscribes,
		Unsubscribes:        st.Unsubscribes,
		RateLimited:         st.RateLimited,
		QuotaRejected:       st.QuotaRejected,
		AdmitErrors:         st.AdmitErrors,
		DedupHits:           st.DedupHits,
		Admitted:            st.Admitted,
		Cancelled:           st.Cancelled,
		ActiveSubscriptions: st.ActiveSubscriptions,
		SharedQueries:       st.SharedQueries,
		Updates:             st.Updates,
		Epochs:              st.Epochs,
		Dropped:             st.Dropped,
		Evicted:             st.Evicted,
		ShedQueue:           st.ShedQueue,
		ShedDeadline:        st.ShedDeadline,
		ShedSubs:            st.ShedSubs,
		ShedBrownout:        st.ShedBrownout,
		BrownoutLevel:       st.BrownoutLevel,
		BrownoutEscalations: st.BrownoutEscalations,
		BrownoutRecoveries:  st.BrownoutRecoveries,
		Detaches:            st.Detaches,
		Attaches:            st.Attaches,
		Resumes:             st.Resumes,
		ResumeGaps:          st.ResumeGaps,
		RingDropped:         st.RingDropped,
		IdleReaped:          st.IdleReaped,
		Recoveries:          st.Recoveries,
		WALAppends:          st.WALAppends,
		WALCompactions:      st.WALCompactions,
		WALSizeBytes:        st.WALSizeBytes,
		DedupRatio:          st.DedupRatio(),
	}
}

// shared is one admitted in-network query and its subscriber set.
type shared struct {
	key  *internedKey
	qid  query.ID
	q    query.Query
	subs []*Subscription // ordered by SubID (monotonic), so fan-out is deterministic
}

// cmdKind discriminates staged commands.
type cmdKind uint8

const (
	cmdSubscribe cmdKind = iota + 1
	cmdUnsubscribe
	cmdCloseSession
)

// command is one staged client request, committed at the next Advance.
type command struct {
	kind cmdKind
	sess *Session
	seq  uint64
	q    query.Query // subscribe
	key  string      // subscribe
	sub  SubID       // unsubscribe
	done chan result
	// at is the wall-clock staging instant and deadline the subscribe's
	// sojourn budget through the mailbox (<= 0 falls back to
	// Config.MailboxDeadline). Wall clock never feeds the simulation:
	// shed commands leave no WAL record, so replay stays exact.
	at       time.Time
	deadline time.Duration
	// trace is the subscriber-propagated causal context (subscribe only):
	// the upstream trace ID and the span the commit should parent to. A
	// zero context derives a fresh deterministic trace at commit.
	trace tracing.Context
}

type result struct {
	sub *Subscription
	err error
}

// Ticket is the pending half of an asynchronous command; Wait blocks until
// the command commits at an Advance (or the gateway closes).
type Ticket struct {
	g    *Gateway
	done chan result
}

// Wait returns the committed command's outcome. For unsubscribe and
// session-close tickets the Subscription is nil.
func (t *Ticket) Wait() (*Subscription, error) {
	select {
	case r := <-t.done:
		return r.sub, r.err
	case <-t.g.done:
		// The loop exited; shutdown fails every staged command, but prefer
		// a result that raced in over the generic closed error.
		select {
		case r := <-t.done:
			return r.sub, r.err
		default:
			return nil, ErrClosed
		}
	}
}

// control messages handled immediately by the loop (not staged). The
// connection-state messages (register, detach, attach, resume) bypass the
// group-commit mailbox because they never touch the simulation — they only
// move session/channel plumbing — so handling them promptly keeps TCP
// reconnects snappy without costing determinism.
type registerReq struct {
	name  string
	reply chan result2[*Session]
}
type statsReq struct{ reply chan statsNow }
type statusReq struct{ reply chan Status }
type exportReq struct{ reply chan obs.RunExport }
type advanceReq struct {
	d     time.Duration
	reply chan advanceInfo
}
type advanceInfo struct {
	applied int
	now     sim.Time
	err     error
}
type detachReq struct {
	sess  *Session
	reply chan error
}
type attachReq struct {
	name  string
	token string
	reply chan result2[attachResult]
}
type attachResult struct {
	sess *Session
	subs []ResumeInfo
}
type resumeReq struct {
	sess  *Session
	id    SubID
	after uint64
	reply chan result2[*Subscription]
}
type crashReq struct{ reply chan struct{} }

// ResumeInfo describes one resumable subscription of a re-attached
// session, as returned by Gateway.Attach.
type ResumeInfo struct {
	ID      SubID
	Key     string
	QueryID query.ID
	// LastSeq is the stream's last delivered sequence number; a client that
	// has processed everything resumes with after=LastSeq.
	LastSeq uint64
}

type result2[T any] struct {
	v   T
	err error
}

// Gateway is the concurrent serving tier. Construct with New, drive
// virtual time with Advance (or a Server's pacer), and shut down with
// Close.
type Gateway struct {
	cfg    Config
	sim    *network.Simulation
	series *obs.Series

	inbox chan any
	done  chan struct{} // closed when the loop exits

	// sendMu serializes send against loop exit; sealed is set (under the
	// write lock) by seal once the loop will never read the inbox again.
	sendMu sync.RWMutex
	sealed bool

	closeOnce sync.Once
	closeErr  error

	// finalMu guards the post-Close snapshot.
	finalMu     sync.Mutex
	finalStats  Stats
	finalExp    obs.RunExport
	finalStatus Status

	// Loop-owned state.
	sessions map[string]*Session
	// keys interns canonical query keys; byKey is pointer-keyed off it, so
	// dedup lookups hash one word after the single intern of the incoming
	// key, and key equality anywhere on the loop is pointer equality.
	keys       *internTable
	byKey      map[*internedKey]*shared
	byQID      map[query.ID]*shared
	staged     []*command
	evictQueue []*Subscription // stalled subscribers awaiting removal at the next Advance
	nextSub    SubID
	stats      Stats
	// peakSubs is the high-water subscriber count of any single shared
	// query, used to presize new subscriber slices to the fan-out the
	// workload has already demonstrated.
	peakSubs int
	// brown is the loop-owned brownout ladder; brownLevel publishes its
	// rung for cross-goroutine reads (the server pacer and pre-stage
	// shedding), updated only at Advance boundaries.
	brown      *resilience.Brownout
	brownLevel atomic.Int32

	// WAL state (loop-owned; see wal.go).
	wal       *wal
	walLog    []walRecord // in-memory lifecycle records, for compaction
	walErr    error
	replaying bool
	advances  int64
}

// build constructs the gateway and its simulation without starting the
// actor loop — shared by New (fresh run) and Recover (replay first).
func build(cfg Config) (*Gateway, error) {
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.SessionQuota <= 0 {
		cfg.SessionQuota = DefaultSessionQuota
	}
	if cfg.Rate <= 0 {
		cfg.Rate = DefaultRate
	}
	if cfg.Burst <= 0 {
		cfg.Burst = DefaultBurst
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	simCfg := cfg.Sim
	simCfg.DiscardResults = true
	s, err := network.New(simCfg)
	if err != nil {
		return nil, err
	}
	// Presize the hot maps from the configured admission bounds: sessions
	// from the session cap, the dedup cache from the most distinct queries
	// those sessions could hold. Both are capped so a generous config does
	// not preallocate megabytes for a small run.
	sessHint := sizeHint(cfg.MaxSessions, 1024)
	keyHint := sizeHint(cfg.MaxSessions*cfg.SessionQuota, 4096)
	g := &Gateway{
		cfg:      cfg,
		sim:      s,
		inbox:    make(chan any, 256),
		done:     make(chan struct{}),
		sessions: make(map[string]*Session, sessHint),
		keys:     newInternTable(keyHint),
		byKey:    make(map[*internedKey]*shared, keyHint),
		byQID:    make(map[query.ID]*shared, keyHint),
		nextSub:  1,
		brown:    resilience.NewBrownout(cfg.Brownout),
	}
	s.Results().OnRows = g.onRows
	s.Results().OnAggs = g.onAggs
	if cfg.Sample > 0 {
		g.series = s.StartSeries(cfg.Sample)
	}
	if cfg.OnSim != nil {
		cfg.OnSim(s)
	}
	return g, nil
}

// New builds the gateway and its simulation and starts the actor loop.
// With Config.WALPath set it starts a fresh write-ahead log (truncating
// any existing file); use Recover to resume from one instead.
func New(cfg Config) (*Gateway, error) {
	g, err := build(cfg)
	if err != nil {
		return nil, err
	}
	if g.cfg.WALPath != "" {
		w, err := createWAL(g.cfg.WALPath)
		if err != nil {
			return nil, err
		}
		g.wal = w
	}
	go g.loop()
	return g, nil
}

// Series returns the attached virtual-time metrics series (nil unless
// Config.Sample was set). Read it only after Close.
func (g *Gateway) Series() *obs.Series { return g.series }

// send delivers a message to the loop, failing once the gateway is closed.
// The read lock is held across the enqueue: seal (run by the exiting loop
// after done closes) takes the write lock before draining the inbox, so a
// send that returns nil is guaranteed a reply from either the loop or the
// drain — never silently dropped.
func (g *Gateway) send(msg any) error {
	g.sendMu.RLock()
	defer g.sendMu.RUnlock()
	if g.sealed {
		return ErrClosed
	}
	select {
	case g.inbox <- msg:
		return nil
	case <-g.done:
		return ErrClosed
	}
}

// seal closes the mailbox after the loop has exited: once the write lock
// is acquired no sender can still be mid-enqueue, so the drain below
// answers every message that raced in ahead of the close. Runs on the
// loop goroutine (tail of shutdown/crash), after the finals are
// snapshotted and done is closed.
func (g *Gateway) seal() {
	g.sendMu.Lock()
	g.sealed = true
	g.sendMu.Unlock()
	for {
		select {
		case msg := <-g.inbox:
			g.reject(msg)
		default:
			return
		}
	}
}

// reject answers a mailbox message that arrived too late for the loop to
// process. Every reply channel is buffered, so none of these block.
func (g *Gateway) reject(msg any) {
	switch m := msg.(type) {
	case *command:
		m.done <- result{err: ErrClosed}
	case registerReq:
		m.reply <- result2[*Session]{err: ErrClosed}
	case statsReq:
		m.reply <- statsNow{stats: g.finalStats, now: g.sim.Engine().Now()}
	case statusReq:
		m.reply <- g.finalStatus
	case exportReq:
		m.reply <- g.finalExp
	case advanceReq:
		m.reply <- advanceInfo{now: g.sim.Engine().Now(), err: ErrClosed}
	case detachReq:
		m.reply <- ErrClosed
	case attachReq:
		m.reply <- result2[attachResult]{err: ErrClosed}
	case resumeReq:
		m.reply <- result2[*Subscription]{err: ErrClosed}
	case crashReq:
		m.reply <- struct{}{}
	case closeReq:
		m.reply <- nil
	}
}

// ErrClosed is returned for any command issued after Close.
var ErrClosed = fmt.Errorf("gateway: closed")

// sizeHint bounds a configuration-derived map presize so generous limits
// don't translate into large idle allocations.
func sizeHint(n, max int) int {
	if n > max {
		return max
	}
	if n < 0 {
		return 0
	}
	return n
}

// Register creates a session under a unique client-chosen name.
func (g *Gateway) Register(name string) (*Session, error) {
	if name == "" {
		return nil, fmt.Errorf("gateway: empty session name")
	}
	req := registerReq{name: name, reply: make(chan result2[*Session], 1)}
	if err := g.send(req); err != nil {
		return nil, err
	}
	select {
	case r := <-req.reply:
		return r.v, r.err
	case <-g.done:
		return nil, ErrClosed
	}
}

// SubscribeAsync stages a subscription to q; it commits at the next
// Advance. Errors detectable without the simulation (parse-level
// validation, LIFETIME) fail immediately.
func (s *Session) SubscribeAsync(q query.Query) (*Ticket, error) {
	return s.SubscribeAsyncBudget(q, 0)
}

// SubscribeAsyncBudget is SubscribeAsync with an explicit mailbox
// deadline budget: if the command sits staged longer than budget before
// the committing Advance reaches it, it is shed with a typed
// *resilience.OverloadError instead of applied. A budget <= 0 falls back
// to Config.MailboxDeadline. The staged queue itself may also reject the
// command immediately when Config.MaxStaged or the brownout ladder says
// the mailbox is full — that error comes back from this call, not Wait.
func (s *Session) SubscribeAsyncBudget(q query.Query, budget time.Duration) (*Ticket, error) {
	return s.SubscribeAsyncTraced(q, budget, tracing.Context{})
}

// SubscribeAsyncTraced is SubscribeAsyncBudget with an explicit causal
// trace context: tc.Trace becomes the subscription's trace ID and tc.Span
// the parent of the commit's subscribe span, so an upstream tier (the
// federation router, the share coordinator, a wire client quoting
// trace_id) threads one causal path through this gateway. A zero context
// derives a fresh deterministic trace at commit.
func (s *Session) SubscribeAsyncTraced(q query.Query, budget time.Duration, tc tracing.Context) (*Ticket, error) {
	n, key, err := canonicalize(q)
	if err != nil {
		return nil, err
	}
	c := &command{
		kind:     cmdSubscribe,
		sess:     s,
		seq:      s.nextSeq(),
		q:        n,
		key:      key,
		done:     make(chan result, 1),
		at:       time.Now(),
		deadline: budget,
		trace:    tc,
	}
	if err := s.g.send(c); err != nil {
		return nil, err
	}
	return &Ticket{g: s.g, done: c.done}, nil
}

// Subscribe is SubscribeAsync plus waiting for the commit. It blocks until
// the next Advance tick.
func (s *Session) Subscribe(q query.Query) (*Subscription, error) {
	t, err := s.SubscribeAsync(q)
	if err != nil {
		return nil, err
	}
	return t.Wait()
}

// SubscribeQuery parses and subscribes a TinyDB-dialect query string.
func (s *Session) SubscribeQuery(text string) (*Subscription, error) {
	return s.SubscribeQueryBudget(text, 0)
}

// SubscribeQueryBudget is SubscribeQuery with a mailbox deadline budget
// (see SubscribeAsyncBudget).
func (s *Session) SubscribeQueryBudget(text string, budget time.Duration) (*Subscription, error) {
	return s.SubscribeQueryTraced(text, budget, 0)
}

// SubscribeQueryTraced is SubscribeQueryBudget with a wire-propagated
// trace ID (see SubscribeAsyncTraced); zero derives a fresh trace.
func (s *Session) SubscribeQueryTraced(text string, budget time.Duration, trace uint64) (*Subscription, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	t, err := s.SubscribeAsyncTraced(q, budget, tracing.Context{Trace: trace})
	if err != nil {
		return nil, err
	}
	return t.Wait()
}

// UnsubscribeAsync stages the removal of one subscription.
func (s *Session) UnsubscribeAsync(id SubID) (*Ticket, error) {
	c := &command{
		kind: cmdUnsubscribe,
		sess: s,
		seq:  s.nextSeq(),
		sub:  id,
		done: make(chan result, 1),
	}
	if err := s.g.send(c); err != nil {
		return nil, err
	}
	return &Ticket{g: s.g, done: c.done}, nil
}

// Unsubscribe removes one subscription, blocking until the next Advance.
func (s *Session) Unsubscribe(id SubID) error {
	t, err := s.UnsubscribeAsync(id)
	if err != nil {
		return err
	}
	_, err = t.Wait()
	return err
}

// CloseAsync stages the teardown of the whole session: every live
// subscription is unsubscribed and the name is released.
func (s *Session) CloseAsync() (*Ticket, error) {
	c := &command{
		kind: cmdCloseSession,
		sess: s,
		seq:  s.nextSeq(),
		done: make(chan result, 1),
	}
	if err := s.g.send(c); err != nil {
		return nil, err
	}
	return &Ticket{g: s.g, done: c.done}, nil
}

// Close tears the session down, blocking until the next Advance.
func (s *Session) Close() error {
	t, err := s.CloseAsync()
	if err != nil {
		return err
	}
	_, err = t.Wait()
	return err
}

// Advance commits every staged command in deterministic order, runs the
// simulation d of virtual time (fanning results out to subscribers), then
// refills the sessions' token buckets. It returns the number of commands
// committed. Only one driver should call Advance (a Server's pacer, the
// load generator, or a test); concurrent calls serialize. With a WAL
// enabled, a write or compaction failure is reported here — the log is the
// durability story, so it fails loudly rather than silently degrading.
func (g *Gateway) Advance(d time.Duration) (int, error) {
	req := advanceReq{d: d, reply: make(chan advanceInfo, 1)}
	if err := g.send(req); err != nil {
		return 0, err
	}
	select {
	case info := <-req.reply:
		return info.applied, info.err
	case <-g.done:
		return 0, ErrClosed
	}
}

// Detach releases the session's client without closing the session: every
// live subscription's channel closes with ReasonDetached and subsequent
// updates accumulate in bounded per-subscription resume rings. Any updates
// still buffered undelivered in a channel are moved into its ring, so a
// resuming client loses nothing that fits the bound. The Server calls this
// when a named client disconnects; Gateway.Attach re-claims the session.
func (s *Session) Detach() error {
	req := detachReq{sess: s, reply: make(chan error, 1)}
	if err := s.g.send(req); err != nil {
		return err
	}
	select {
	case err := <-req.reply:
		return err
	case <-s.g.done:
		return ErrClosed
	}
}

// Attach re-claims a detached session by name and resume token — after a
// client disconnect, or on a recovered gateway after a crash. It returns
// the session and, for each live subscription, the resume cursor a client
// needs to continue the stream with Session.Resume.
func (g *Gateway) Attach(name, token string) (*Session, []ResumeInfo, error) {
	req := attachReq{name: name, token: token, reply: make(chan result2[attachResult], 1)}
	if err := g.send(req); err != nil {
		return nil, nil, err
	}
	select {
	case r := <-req.reply:
		return r.v.sess, r.v.subs, r.err
	case <-g.done:
		return nil, nil, ErrClosed
	}
}

// Resume continues a detached subscription's stream: it returns a fresh
// Subscription handle (same SubID, new channel) whose channel starts with
// every retained update with Seq > after, then the live stream. If the
// bounded resume ring has already dropped updates the client needs, the
// stream restarts at the oldest retained one and the gap is counted in
// Stats.ResumeGaps — loss is bounded and visible, never silent.
func (s *Session) Resume(id SubID, after uint64) (*Subscription, error) {
	req := resumeReq{sess: s, id: id, after: after, reply: make(chan result2[*Subscription], 1)}
	if err := s.g.send(req); err != nil {
		return nil, err
	}
	select {
	case r := <-req.reply:
		return r.v, r.err
	case <-s.g.done:
		return nil, ErrClosed
	}
}

// Crash kills the gateway abruptly, simulating a process crash for tests
// and chaos scenarios: staged commands fail, attached subscribers' channels
// close with ReasonCrashed, and the WAL is abandoned mid-stream without a
// clean flush — whatever the file holds is what Recover gets, exactly as if
// the process had died. No queries are cancelled and no sessions drain;
// the in-memory state simply ceases to exist.
func (g *Gateway) Crash() error {
	req := crashReq{reply: make(chan struct{}, 1)}
	if err := g.send(req); err != nil {
		return err
	}
	select {
	case <-req.reply:
	case <-g.done:
	}
	return nil
}

// Now returns the simulation's current virtual time.
func (g *Gateway) Now() (sim.Time, error) {
	st, err := g.statsAndNow()
	return st.now, err
}

// Stats returns a counter snapshot. After Close it returns the final
// snapshot.
func (g *Gateway) Stats() (Stats, error) {
	st, err := g.statsAndNow()
	return st.stats, err
}

type statsNow struct {
	stats Stats
	now   sim.Time
}

func (g *Gateway) statsAndNow() (statsNow, error) {
	req := statsReq{reply: make(chan statsNow, 1)}
	if err := g.send(req); err != nil {
		if err == ErrClosed {
			return g.finalStatsNow(), nil
		}
		return statsNow{}, err
	}
	select {
	case st := <-req.reply:
		return st, nil
	case <-g.done:
		return g.finalStatsNow(), nil
	}
}

func (g *Gateway) finalStatsNow() statsNow {
	g.finalMu.Lock()
	defer g.finalMu.Unlock()
	return statsNow{
		stats: g.finalStats,
		now:   sim.Time(g.finalExp.Metrics.SimulatedMS) * sim.Time(time.Millisecond),
	}
}

// Alive reports whether the gateway's actor loop is still running: false
// after Close or Crash, true again only on a gateway rebuilt by Recover.
// It is the readiness signal behind the admin plane's /readyz.
func (g *Gateway) Alive() bool {
	select {
	case <-g.done:
		return false
	default:
		return true
	}
}

// Spans returns the simulation's per-query lifecycle span log. The log is
// internally locked, so it may be snapshotted from any goroutine — and it
// remains readable after Close or Crash for post-mortem TTFR accounting.
func (g *Gateway) Spans() *telemetry.SpanLog { return g.sim.Spans() }

// Status is the operator-facing /statusz snapshot: the serving tier's
// current shape rather than its full counter history. Everything in it is
// deterministic under the group-commit ordering.
type Status struct {
	// Alive is false on the snapshot taken at Close or Crash.
	Alive bool `json:"alive"`
	// NowMS is the current virtual time, in milliseconds.
	NowMS int64 `json:"now_ms"`
	// Sessions counts registered sessions; Attached the subset currently
	// held by a client.
	Sessions int `json:"sessions"`
	Attached int `json:"attached"`
	// ActiveSubscriptions and SharedQueries mirror the Stats gauges;
	// DedupRatio is subscriptions per admitted network query.
	ActiveSubscriptions int     `json:"active_subscriptions"`
	SharedQueries       int     `json:"shared_queries"`
	DedupRatio          float64 `json:"dedup_ratio"`
	// WAL accounting (zero when the WAL is disabled).
	WALSizeBytes   int64 `json:"wal_size_bytes"`
	WALAppends     int64 `json:"wal_appends"`
	WALCompactions int64 `json:"wal_compactions"`
	// ResumeRings counts detached subscriptions buffering for a resume;
	// ResumeRingUpdates is the total updates parked across those rings
	// (the resume-ring occupancy).
	ResumeRings       int `json:"resume_rings"`
	ResumeRingUpdates int `json:"resume_ring_updates"`
	// Queries counts lifecycle spans recorded since the run began.
	Queries int `json:"queries"`
	// BrownoutLevel names the brownout ladder's current rung ("normal",
	// "no-replay", "batching", "shed"); Staged is the group-commit
	// mailbox's current depth.
	BrownoutLevel string `json:"brownout_level"`
	Staged        int    `json:"staged"`
}

// Status returns the /statusz snapshot. After Close or Crash it returns
// the final snapshot with Alive false.
func (g *Gateway) Status() (Status, error) {
	req := statusReq{reply: make(chan Status, 1)}
	if err := g.send(req); err != nil {
		if err == ErrClosed {
			return g.finalStatusSnap(), nil
		}
		return Status{}, err
	}
	select {
	case st := <-req.reply:
		return st, nil
	case <-g.done:
		return g.finalStatusSnap(), nil
	}
}

func (g *Gateway) finalStatusSnap() Status {
	g.finalMu.Lock()
	defer g.finalMu.Unlock()
	return g.finalStatus
}

// status builds the snapshot on the loop goroutine.
func (g *Gateway) status() Status {
	st := Status{
		Alive:               true,
		NowMS:               time.Duration(g.sim.Engine().Now()).Milliseconds(),
		Sessions:            len(g.sessions),
		ActiveSubscriptions: g.stats.ActiveSubscriptions,
		SharedQueries:       g.stats.SharedQueries,
		DedupRatio:          g.stats.DedupRatio(),
		WALSizeBytes:        g.stats.WALSizeBytes,
		WALAppends:          g.stats.WALAppends,
		WALCompactions:      g.stats.WALCompactions,
		Queries:             g.sim.Spans().Len(),
		BrownoutLevel:       g.brown.Level().String(),
		Staged:              len(g.staged),
	}
	for _, s := range g.sessions {
		if s.attached {
			st.Attached++
		}
		for _, sub := range s.live {
			if sub.detached {
				st.ResumeRings++
				st.ResumeRingUpdates += len(sub.ring)
			}
		}
	}
	return st
}

// Export builds the run's obs JSON envelope: manifest, final simulation
// metrics, optimizer state and the gateway counters. Everything in it is a
// pure function of the committed command sequence and the seed — no wall
// clock — so exports are byte-identical across client schedulings. After
// Close it returns the final export.
func (g *Gateway) Export() (obs.RunExport, error) {
	req := exportReq{reply: make(chan obs.RunExport, 1)}
	if err := g.send(req); err != nil {
		if err == ErrClosed {
			g.finalMu.Lock()
			defer g.finalMu.Unlock()
			return g.finalExp, nil
		}
		return obs.RunExport{}, err
	}
	select {
	case exp := <-req.reply:
		return exp, nil
	case <-g.done:
		g.finalMu.Lock()
		defer g.finalMu.Unlock()
		return g.finalExp, nil
	}
}

// Close drains the gateway: staged commands are rejected, every
// subscription ends with ReasonShutdown, every admitted query's reference
// count drops to zero and is cancelled, and the loop exits. Close is
// idempotent; the final Stats and Export remain readable.
func (g *Gateway) Close() error {
	g.closeOnce.Do(func() {
		// The sealed send path, not a bare inbox enqueue: after a crash
		// both the (buffered) inbox send and done are ready, and picking
		// the send would block forever on a reply the exited loop can
		// never give. A nil send is answered by the loop's shutdown or,
		// if a crash races in, by the seal drain.
		reply := make(chan error, 1)
		if err := g.send(closeReq{reply: reply}); err != nil {
			return // already crashed or closed; finals are frozen
		}
		select {
		case g.closeErr = <-reply:
		case <-g.done:
			select {
			case g.closeErr = <-reply:
			default:
			}
		}
	})
	return g.closeErr
}

type closeReq struct{ reply chan error }

// loop is the actor: the only goroutine that touches the simulation and
// the loop-owned session/cache state.
func (g *Gateway) loop() {
	for msg := range g.inbox {
		switch m := msg.(type) {
		case *command:
			if err := g.admitStage(m); err != nil {
				m.done <- result{err: err}
			} else {
				g.staged = append(g.staged, m)
			}
		case registerReq:
			m.reply <- g.register(m.name)
		case statsReq:
			m.reply <- statsNow{stats: g.stats, now: g.sim.Engine().Now()}
		case statusReq:
			m.reply <- g.status()
		case exportReq:
			m.reply <- g.export()
		case advanceReq:
			g.observePressure()
			g.sweepEvicted()
			applied := g.commit()
			g.reap()
			updatesBefore := g.stats.Updates
			g.sim.Run(m.d)
			g.traceFanout(g.stats.Updates - updatesBefore)
			g.refill(m.d)
			g.walAdvance()
			m.reply <- advanceInfo{applied: applied, now: g.sim.Engine().Now(), err: g.walErr}
		case detachReq:
			m.reply <- g.applyDetach(m.sess)
		case attachReq:
			m.reply <- g.applyAttach(m.name, m.token)
		case resumeReq:
			m.reply <- g.applyResume(m.sess, m.id, m.after)
		case crashReq:
			g.crash()
			m.reply <- struct{}{}
			return
		case closeReq:
			g.shutdown()
			m.reply <- nil
			return
		}
	}
}

// admitStage is stage-time admission control on the group-commit
// mailbox: subscribes are rejected while the staged queue sits at its
// MaxStaged bound or the brownout ladder sits at its shed rung.
// Unsubscribes and session closes are always staged — they free
// resources, and shedding them would only deepen an overload.
func (g *Gateway) admitStage(c *command) error {
	if c.kind != cmdSubscribe {
		return nil
	}
	if g.brown.Level() >= resilience.LevelShed {
		g.stats.ShedBrownout++
		return &resilience.OverloadError{RetryAfter: g.retryAfter(), Reason: "brownout"}
	}
	if g.cfg.MaxStaged > 0 && len(g.staged) >= g.cfg.MaxStaged {
		g.stats.ShedQueue++
		return &resilience.OverloadError{RetryAfter: g.retryAfter(), Reason: "queue"}
	}
	return nil
}

// retryAfter is the backoff hint handed to shed clients: the configured
// base, grown with mailbox depth so a deeper backlog pushes retries
// further out instead of re-synchronizing the herd at one instant.
func (g *Gateway) retryAfter() time.Duration {
	base := g.cfg.ShedRetryAfter
	if base <= 0 {
		base = DefaultShedRetryAfter
	}
	if g.cfg.MaxStaged > 0 && len(g.staged) > 0 {
		base += base * time.Duration(len(g.staged)/g.cfg.MaxStaged)
	}
	return base
}

// observePressure feeds the brownout ladder one mailbox-pressure reading
// per Advance (pressured = staged depth at half the MaxStaged bound or
// beyond) and publishes the rung. Without a MaxStaged bound there is no
// pressure signal and the ladder stays at LevelNormal.
func (g *Gateway) observePressure() {
	pressured := g.cfg.MaxStaged > 0 && len(g.staged)*2 >= g.cfg.MaxStaged
	lvl := g.brown.Observe(pressured)
	g.brownLevel.Store(int32(lvl))
	g.stats.BrownoutLevel = int(lvl)
	g.stats.BrownoutEscalations = g.brown.Escalations
	g.stats.BrownoutRecoveries = g.brown.Recoveries
}

// BrownoutLevel returns the brownout ladder's current rung. Readable
// from any goroutine (the server's pacer polls it between ticks); it
// only moves at Advance boundaries.
func (g *Gateway) BrownoutLevel() resilience.Level {
	return resilience.Level(g.brownLevel.Load())
}

func (g *Gateway) register(name string) result2[*Session] {
	if _, dup := g.sessions[name]; dup {
		return result2[*Session]{err: fmt.Errorf("gateway: session %q already registered", name)}
	}
	if len(g.sessions) >= g.cfg.MaxSessions {
		return result2[*Session]{err: fmt.Errorf("gateway: session limit %d reached", g.cfg.MaxSessions)}
	}
	now := g.sim.Engine().Now()
	s := &Session{
		g:         g,
		name:      name,
		token:     g.newToken(name),
		live:      make(map[SubID]*Subscription, g.cfg.SessionQuota),
		tokens:    g.cfg.Burst,
		attached:  true,
		idleSince: now,
	}
	g.sessions[name] = s
	g.stats.Sessions++
	g.stats.ActiveSessions = len(g.sessions)
	// Flush immediately: the client is about to hold this token, so it must
	// survive a crash that hits before the next Advance.
	g.walAppend(walRecord{Op: walOpRegister, At: int64(now), Sess: name, Token: s.token})
	g.walFlush()
	return result2[*Session]{v: s}
}

// newToken derives a session's resume token from the seed, the name and the
// registration ordinal via FNV-1a — deterministic, so recovery determinism
// tests can reproduce it, and unique per registration.
func (g *Gateway) newToken(name string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", g.cfg.Sim.Seed, name, g.stats.Sessions)
	return fmt.Sprintf("%016x", h.Sum64())
}

// applyDetach releases the session's client. Idempotent: detaching a
// detached session is a no-op.
func (g *Gateway) applyDetach(s *Session) error {
	if s.closed {
		return fmt.Errorf("gateway: session %q is closed", s.name)
	}
	if !s.attached {
		return nil
	}
	s.attached = false
	s.idleSince = g.sim.Engine().Now()
	g.stats.Detaches++
	ids := make([]SubID, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sub := s.live[id]
		if sub.detached {
			continue
		}
		sub.reason = ReasonDetached
		// Move updates the client never read out of the channel into the
		// resume ring, then close; a prompt resume replays them losslessly.
	drain:
		for {
			select {
			case u := <-sub.ch:
				g.ringPush(sub, u)
			default:
				break drain
			}
		}
		close(sub.ch)
		sub.detached = true
	}
	return nil
}

func (g *Gateway) applyAttach(name, token string) result2[attachResult] {
	s := g.sessions[name]
	if s == nil {
		return result2[attachResult]{err: fmt.Errorf("gateway: no session %q", name)}
	}
	if s.token != token {
		return result2[attachResult]{err: fmt.Errorf("gateway: bad resume token for session %q", name)}
	}
	if s.attached {
		return result2[attachResult]{err: fmt.Errorf("gateway: session %q is already attached", name)}
	}
	s.attached = true
	g.stats.Attaches++
	ids := make([]SubID, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	subs := make([]ResumeInfo, 0, len(ids))
	for _, id := range ids {
		sub := s.live[id]
		subs = append(subs, ResumeInfo{ID: id, Key: sub.key.String(), QueryID: sub.qid, LastSeq: sub.seq})
	}
	return result2[attachResult]{v: attachResult{sess: s, subs: subs}}
}

func (g *Gateway) applyResume(s *Session, id SubID, after uint64) result2[*Subscription] {
	if s.closed {
		return result2[*Subscription]{err: fmt.Errorf("gateway: session %q is closed", s.name)}
	}
	old, ok := s.live[id]
	if !ok {
		return result2[*Subscription]{err: fmt.Errorf("gateway: session %q has no subscription %d", s.name, id)}
	}
	if !old.detached {
		return result2[*Subscription]{err: fmt.Errorf("gateway: subscription %d is still attached", id)}
	}
	if after > old.seq {
		return result2[*Subscription]{err: fmt.Errorf("gateway: resume after seq %d but only %d delivered", after, old.seq)}
	}
	fresh := &Subscription{
		id:     old.id,
		sess:   s,
		key:    old.key,
		qid:    old.qid,
		shared: old.shared,
		seq:    old.seq,
		ch:     make(chan Update, g.cfg.Buffer),
	}
	// A gap means the bounded ring already shed updates the client still
	// needs; the stream restarts at the oldest retained one.
	if len(old.ring) > 0 {
		if old.ring[0].Seq > after+1 {
			g.stats.ResumeGaps++
		}
	} else if old.seq > after {
		g.stats.ResumeGaps++
	}
	for _, u := range old.ring {
		if u.Seq > after {
			fresh.ch <- u // ring is bounded by the channel's capacity
		}
	}
	s.live[id] = fresh
	if sh := g.byQID[old.qid]; sh != nil {
		for i, x := range sh.subs {
			if x == old {
				sh.subs[i] = fresh
				break
			}
		}
	}
	g.stats.Resumes++
	return result2[*Subscription]{v: fresh}
}

// commit applies every staged command in (session name, sequence) order —
// the group-commit step that makes concurrent clients deterministic.
func (g *Gateway) commit() int {
	if len(g.staged) == 0 {
		return 0
	}
	batch := g.staged
	g.staged = nil
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].sess.name != batch[j].sess.name {
			return batch[i].sess.name < batch[j].sess.name
		}
		return batch[i].seq < batch[j].seq
	})
	now := int64(g.sim.Engine().Now())
	wall := time.Now()
	for _, c := range batch {
		switch c.kind {
		case cmdSubscribe:
			if err := g.checkDeadline(c, wall); err != nil {
				g.traceShed(c, now, "deadline")
				c.done <- result{err: err}
				continue
			}
			sub, err := g.applySubscribe(c)
			if err == nil {
				g.walAppend(walRecord{Op: walOpSubscribe, At: now, Sess: c.sess.name, Sub: sub.id, Query: c.key, Trace: sub.trace})
			}
			c.done <- result{sub: sub, err: err}
		case cmdUnsubscribe:
			err := g.applyUnsubscribe(c.sess, c.sub, ReasonUnsubscribed)
			if err == nil {
				g.walAppend(walRecord{Op: walOpUnsubscribe, At: now, Sess: c.sess.name, Sub: c.sub})
			}
			c.done <- result{err: err}
		case cmdCloseSession:
			err := g.applyCloseSession(c.sess)
			if err == nil {
				g.walAppend(walRecord{Op: walOpClose, At: now, Sess: c.sess.name})
			}
			c.done <- result{err: err}
		}
	}
	return len(batch)
}

// checkDeadline sheds a staged subscribe that out-sat its mailbox
// deadline budget — the CoDel-style control on the group-commit queue:
// under sustained pressure the stage-to-commit sojourn grows, and work
// that blew its budget is dropped at the commit boundary before it costs
// the simulation anything. Shed commands never reach the WAL, so
// crash-recovery replay stays exact.
func (g *Gateway) checkDeadline(c *command, wall time.Time) error {
	budget := c.deadline
	if budget <= 0 {
		budget = g.cfg.MailboxDeadline
	}
	if budget <= 0 || c.at.IsZero() || wall.Sub(c.at) <= budget {
		return nil
	}
	g.stats.ShedDeadline++
	return &resilience.OverloadError{RetryAfter: g.retryAfter(), Reason: "deadline"}
}

func (g *Gateway) applySubscribe(c *command) (*Subscription, error) {
	s := c.sess
	if s.closed {
		return nil, fmt.Errorf("gateway: session %q is closed", s.name)
	}
	if g.cfg.MaxLiveSubs > 0 && g.stats.ActiveSubscriptions >= g.cfg.MaxLiveSubs {
		g.stats.ShedSubs++
		return nil, &resilience.OverloadError{RetryAfter: g.retryAfter(), Reason: "subs"}
	}
	if len(s.live) >= g.cfg.SessionQuota {
		g.stats.QuotaRejected++
		return nil, fmt.Errorf("gateway: session %q at its quota of %d subscriptions", s.name, g.cfg.SessionQuota)
	}
	if s.tokens < 1 {
		g.stats.RateLimited++
		return nil, fmt.Errorf("gateway: session %q rate-limited (%.2g tokens; %g/simulated-second, burst %g)",
			s.name, s.tokens, g.cfg.Rate, g.cfg.Burst)
	}
	sub, err := g.admitSub(s, g.nextSub, c.q, c.key, make(chan Update, g.cfg.Buffer))
	if err != nil {
		return nil, err
	}
	g.nextSub++
	s.tokens--
	g.traceAdmit(sub, c.trace)
	return sub, nil
}

// traceShard is the shard ordinal stamped on this gateway's spans
// (tracing.NoShard unless the serve CLI mounted it as a federation
// member).
func (g *Gateway) traceShard() int {
	if g.cfg.TraceShard > 0 {
		return g.cfg.TraceShard - 1
	}
	return tracing.NoShard
}

func (g *Gateway) nowMS() int64 {
	return time.Duration(g.sim.Engine().Now()).Milliseconds()
}

// traceAdmit assigns the committed subscription its causal trace context
// and records the subscribe hop plus its admit/dedup-hit child span. tc
// is the subscriber-propagated context; a zero context derives the trace
// deterministically from the session name and SubID, so the same command
// sequence yields the same IDs on every run and after every recovery.
func (g *Gateway) traceAdmit(sub *Subscription, tc tracing.Context) {
	if g.cfg.Tracer == nil {
		return
	}
	sub.trace = tc.Trace
	if sub.trace == 0 {
		sub.trace = tracing.TraceID(sub.sess.name, uint64(sub.id))
	}
	at := g.nowMS()
	sub.admitAtMS = at
	shard := g.traceShard()
	sub.spanID = g.cfg.Tracer.Record(tracing.Span{
		Trace:  sub.trace,
		Parent: tc.Span,
		Kind:   tracing.KindSubscribe,
		Shard:  shard,
		AtMS:   at,
		Seq:    uint64(sub.id),
	})
	kind := tracing.KindAdmit
	if sub.shared {
		kind = tracing.KindDedupHit
	}
	g.cfg.Tracer.Record(tracing.Span{
		Trace:  sub.trace,
		Parent: sub.spanID,
		Kind:   kind,
		Shard:  shard,
		AtMS:   at,
		Note:   sub.key.String(),
	})
}

// traceFanout records one tier-level span per Advance round that
// delivered anything: the fan-out burst size and the brownout rung it
// ran under. Tier-level spans carry trace 0 and group together in
// exports.
func (g *Gateway) traceFanout(delivered int64) {
	if g.cfg.Tracer == nil || delivered <= 0 {
		return
	}
	g.cfg.Tracer.Record(tracing.Span{
		Kind:  tracing.KindFanout,
		Shard: g.traceShard(),
		AtMS:  g.nowMS(),
		Seq:   uint64(delivered),
		Rung:  g.stats.BrownoutLevel,
	})
}

// traceShed records an admission-shed hop for subscribers that
// propagated a trace context; derived traces do not exist yet at shed
// time, so untraced sheds stay metric-only.
func (g *Gateway) traceShed(c *command, atNS int64, why string) {
	if g.cfg.Tracer == nil || c.trace.Trace == 0 {
		return
	}
	g.cfg.Tracer.Record(tracing.Span{
		Trace:  c.trace.Trace,
		Parent: c.trace.Span,
		Kind:   tracing.KindShed,
		Shard:  g.traceShard(),
		AtMS:   time.Duration(atNS).Milliseconds(),
		Note:   why,
	})
}

// admitSub runs the dedup-or-admit path and inserts the subscription. It is
// the part of applySubscribe below admission control, shared with WAL
// replay (which bypasses quota, rate limit and ID allocation — the original
// run already passed them). A nil ch makes the subscription detached from
// birth, delivering into its resume ring.
func (g *Gateway) admitSub(s *Session, id SubID, q query.Query, key string, ch chan Update) (*Subscription, error) {
	// The one string hash on the admission path: everything downstream —
	// the dedup lookup, removal, equality — keys on the interned pointer.
	k := g.keys.intern(key)
	sh, hit := g.byKey[k]
	if !hit {
		qid, err := g.sim.Post(q)
		if err != nil {
			g.stats.AdmitErrors++
			g.keys.drop(k)
			return nil, fmt.Errorf("gateway: admit %q: %w", key, err)
		}
		// Presize the subscriber set to the largest fan-out any query has
		// reached so far: under dedup-heavy load (the workload this system
		// exists for) a new shared query tends to accumulate a similar
		// subscriber count, so the slice grows once instead of log(n) times.
		sh = &shared{key: k, qid: qid, q: q, subs: make([]*Subscription, 0, g.peakSubs)}
		g.byKey[k] = sh
		g.byQID[qid] = sh
		g.stats.Admitted++
	} else {
		g.stats.DedupHits++
	}
	sub := &Subscription{
		id:       id,
		sess:     s,
		key:      k,
		qid:      sh.qid,
		shared:   hit,
		ch:       ch,
		detached: ch == nil,
	}
	sh.subs = append(sh.subs, sub) // SubIDs are monotonic: stays ordered
	if len(sh.subs) > g.peakSubs {
		g.peakSubs = len(sh.subs)
	}
	s.live[sub.id] = sub
	g.stats.Subscribes++
	g.stats.ActiveSubscriptions++
	g.stats.SharedQueries = len(g.byKey)
	return sub, nil
}

func (g *Gateway) applyUnsubscribe(s *Session, id SubID, reason CloseReason) error {
	sub, ok := s.live[id]
	if !ok {
		return fmt.Errorf("gateway: session %q has no subscription %d", s.name, id)
	}
	g.removeSub(sub, reason)
	if reason == ReasonUnsubscribed {
		g.stats.Unsubscribes++
	}
	return nil
}

// removeSub detaches a subscription from its session and shared query,
// closes its stream, and cancels the query when the last reference drops.
func (g *Gateway) removeSub(sub *Subscription, reason CloseReason) {
	s := sub.sess
	delete(s.live, sub.id)
	sub.reason = reason
	if !sub.detached {
		close(sub.ch)
	}
	sub.ring = nil
	g.stats.ActiveSubscriptions--

	sh := g.byQID[sub.qid]
	if sh == nil {
		return
	}
	for i, x := range sh.subs {
		if x == sub {
			sh.subs = append(sh.subs[:i], sh.subs[i+1:]...)
			break
		}
	}
	if len(sh.subs) == 0 {
		delete(g.byKey, sh.key)
		g.keys.drop(sh.key)
		delete(g.byQID, sh.qid)
		if err := g.sim.Cancel(sh.qid); err == nil {
			g.stats.Cancelled++
		}
	}
	g.stats.SharedQueries = len(g.byKey)
}

func (g *Gateway) applyCloseSession(s *Session) error {
	if s.closed {
		return fmt.Errorf("gateway: session %q already closed", s.name)
	}
	ids := make([]SubID, 0, len(s.live))
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		g.removeSub(s.live[id], ReasonUnsubscribed)
		g.stats.Unsubscribes++
	}
	s.closed = true
	delete(g.sessions, s.name)
	g.stats.ActiveSessions = len(g.sessions)
	return nil
}

// refill tops up every session's token bucket for d of elapsed virtual
// time.
func (g *Gateway) refill(d time.Duration) {
	add := g.cfg.Rate * d.Seconds()
	for _, s := range g.sessions {
		s.tokens += add
		if s.tokens > g.cfg.Burst {
			s.tokens = g.cfg.Burst
		}
	}
}

// onRows and onAggs run on the loop goroutine, inside sim.Run, as the
// simulation delivers user result epochs.
func (g *Gateway) onRows(ur core.UserRows) {
	sh := g.byQID[ur.QueryID]
	if sh == nil {
		return
	}
	g.stats.Epochs++
	now := time.Now()
	for _, sub := range append([]*Subscription(nil), sh.subs...) {
		g.push(sub, Update{
			Sub:      sub.id,
			QueryID:  ur.QueryID,
			At:       ur.Time,
			Rows:     ur.Rows,
			Enqueued: now,
		})
	}
}

func (g *Gateway) onAggs(ua core.UserAgg) {
	sh := g.byQID[ua.QueryID]
	if sh == nil {
		return
	}
	g.stats.Epochs++
	now := time.Now()
	for _, sub := range append([]*Subscription(nil), sh.subs...) {
		g.push(sub, Update{
			Sub:      sub.id,
			QueryID:  ua.QueryID,
			At:       ua.Time,
			Aggs:     ua.Results,
			Enqueued: now,
		})
	}
}

// push delivers one update without ever blocking the simulation. Every
// delivery attempt stamps the next sequence number. A detached subscriber
// accumulates into its bounded resume ring (oldest shed first). An attached
// subscriber whose buffer is full has stalled past its bound: the update is
// dropped and the subscriber is marked for eviction — the removal itself
// (and its query cancellation) waits for the next Advance boundary, so
// every state change the WAL must record happens at a commit point and
// crash-recovery replay stays exact.
func (g *Gateway) push(sub *Subscription, u Update) {
	sub.seq++
	u.Seq = sub.seq
	// Provenance stamping is plain value writes — no allocation on the
	// fan-out hot path, whether tracing is mounted or not.
	u.Trace = sub.trace
	u.Prov.Rung = uint8(g.stats.BrownoutLevel)
	if g.cfg.TraceShard > 0 {
		u.Prov.Shards = 1 << uint(g.cfg.TraceShard-1)
	}
	if sub.seq == 1 && sub.trace != 0 && !g.replaying {
		// One bounded span per subscription: the first delivered result,
		// with the admit-to-first-result latency as the hop duration.
		at := time.Duration(u.At).Milliseconds()
		g.cfg.Tracer.Record(tracing.Span{
			Trace:  sub.trace,
			Parent: sub.spanID,
			Kind:   tracing.KindFirstResult,
			Shard:  g.traceShard(),
			AtMS:   at,
			DurMS:  at - sub.admitAtMS,
			Seq:    1,
		})
	}
	if sub.detached {
		g.ringPush(sub, u)
		g.stats.Updates++
		return
	}
	select {
	case sub.ch <- u:
		g.stats.Updates++
	default:
		g.stats.Dropped++
		sub.sess.dropped++
		if !sub.evict {
			sub.evict = true
			g.stats.Evicted++
			g.evictQueue = append(g.evictQueue, sub)
		}
	}
}

// ringPush appends to a detached subscription's resume ring, shedding the
// oldest update once the bound is hit. Drops during recovery replay are not
// counted — those updates were delivered live before the crash.
func (g *Gateway) ringPush(sub *Subscription, u Update) {
	if len(sub.ring) >= g.cfg.Buffer {
		sub.ring = sub.ring[1:]
		if !g.replaying {
			g.stats.RingDropped++
		}
	}
	sub.ring = append(sub.ring, u)
}

// sweepEvicted removes the subscribers push marked as stalled. Runs first
// in every Advance, before the staged commands commit.
func (g *Gateway) sweepEvicted() {
	if len(g.evictQueue) == 0 {
		return
	}
	queue := g.evictQueue
	g.evictQueue = nil
	now := int64(g.sim.Engine().Now())
	for _, sub := range queue {
		if cur, ok := sub.sess.live[sub.id]; !ok || cur != sub {
			continue // already removed (or resumed afresh) in the meantime
		}
		g.removeSub(sub, ReasonEvicted)
		g.walAppend(walRecord{Op: walOpUnsubscribe, At: now, Sess: sub.sess.name, Sub: sub.id})
	}
}

// reap closes detached sessions that have sat idle past the timeout; their
// queries cancel once unreferenced. Runs at every Advance, after the
// staged commands commit.
func (g *Gateway) reap() {
	if g.cfg.IdleTimeout <= 0 {
		return
	}
	now := g.sim.Engine().Now()
	var names []string
	for name, s := range g.sessions {
		if !s.attached && now-s.idleSince >= g.cfg.IdleTimeout {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if g.applyCloseSession(g.sessions[name]) == nil {
			g.stats.IdleReaped++
			g.walAppend(walRecord{Op: walOpClose, At: int64(now), Sess: name})
		}
	}
}

func (g *Gateway) export() obs.RunExport {
	m := g.sim.Manifest()
	m.Study = "gateway"
	m.Chaos = g.cfg.ChaosLabel
	m.DurationMS = time.Duration(g.sim.Engine().Now()).Milliseconds()
	m.Runs = 1
	gm := g.stats.Metrics()
	exp := obs.RunExport{
		Manifest: m.Hashed(),
		Metrics:  obs.CollectFinal(g.sim.Metrics(), time.Duration(g.sim.Engine().Now()), defaultEnergy),
		Gateway:  &gm,
		Spans:    obs.SummarizeSpans(g.sim.Spans().Snapshot()),
		Series:   g.series,
	}
	if opt := g.sim.Optimizer(); opt != nil {
		exp.Optimizer = &obs.OptimizerState{
			UserQueries:      opt.UserCount(),
			SyntheticQueries: opt.SyntheticCount(),
		}
	}
	if g.cfg.Tracer != nil {
		exp.Traces = tracing.Collect(g.cfg.Tracer)
	}
	return exp
}

// Tracer returns the flight recorder the gateway was mounted with (nil
// when untraced). The recorder is caller-owned and remains readable
// after Close or Crash.
func (g *Gateway) Tracer() *tracing.Recorder { return g.cfg.Tracer }

// shutdown ends every session, fails the staged commands and snapshots the
// final state for post-Close reads. The WAL is flushed and closed cleanly;
// a clean shutdown is not a crash, but the log is left valid so a later
// Recover still works.
func (g *Gateway) shutdown() {
	for _, c := range g.staged {
		c.done <- result{err: ErrClosed}
	}
	g.staged = nil

	names := make([]string, 0, len(g.sessions))
	for name := range g.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := g.sessions[name]
		ids := make([]SubID, 0, len(s.live))
		for id := range s.live {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			g.removeSub(s.live[id], ReasonShutdown)
		}
		s.closed = true
		delete(g.sessions, name)
	}
	g.stats.ActiveSessions = 0

	if g.wal != nil {
		g.wal.close()
		g.wal = nil
	}

	g.finalMu.Lock()
	g.finalStats = g.stats
	g.finalExp = g.export()
	g.finalStatus = g.status()
	g.finalStatus.Alive = false
	g.finalMu.Unlock()
	close(g.done)
	g.seal()
}

// crash is shutdown's violent sibling: nothing drains, nothing cancels,
// nothing flushes. Attached subscribers see ReasonCrashed; the WAL file is
// abandoned exactly as the last flush left it (buffered bytes are lost,
// like a real process death); the final stats and export stay readable for
// post-mortem assertions.
func (g *Gateway) crash() {
	for _, c := range g.staged {
		c.done <- result{err: ErrClosed}
	}
	g.staged = nil
	// The flight recorder is caller-owned and survives the crash; the
	// crash itself is the last span this incarnation records.
	g.cfg.Tracer.Record(tracing.Span{
		Kind:  tracing.KindCrash,
		Shard: g.traceShard(),
		AtMS:  g.nowMS(),
	})

	if g.wal != nil {
		g.wal.f.Close() // no flush: simulate losing the process mid-stream
		g.wal = nil
	}

	names := make([]string, 0, len(g.sessions))
	for name := range g.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := g.sessions[name]
		ids := make([]SubID, 0, len(s.live))
		for id := range s.live {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			sub := s.live[id]
			if !sub.detached {
				sub.reason = ReasonCrashed
				close(sub.ch)
				sub.detached = true
			}
		}
	}

	g.finalMu.Lock()
	g.finalStats = g.stats
	g.finalExp = g.export()
	g.finalStatus = g.status()
	g.finalStatus.Alive = false
	g.finalMu.Unlock()
	close(g.done)
	g.seal()
}
