package gateway

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/topology"
)

// newTestGateway builds a small gateway and arranges its teardown.
func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	if cfg.Sim.Topo == nil {
		topo, err := topology.PaperGrid(2)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Sim.Topo = topo
	}
	if cfg.Sim.Scheme == 0 {
		cfg.Sim.Scheme = network.TTMQO
	}
	if cfg.Sim.Seed == 0 {
		cfg.Sim.Seed = 1
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gw.Close() })
	return gw
}

// stage subscribes asynchronously and fails the test on a staging error.
func stage(t *testing.T, sess *Session, text string) *Ticket {
	t.Helper()
	ti, err := sess.SubscribeAsync(query.MustParse(text))
	if err != nil {
		t.Fatal(err)
	}
	return ti
}

func mustStats(t *testing.T, gw *Gateway) Stats {
	t.Helper()
	st, err := gw.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGatewayDedupSharesQuery: two clients subscribing semantically equal
// (textually different) queries share one admitted in-network query.
func TestGatewayDedupSharesQuery(t *testing.T) {
	gw := newTestGateway(t, Config{})
	alice, err := gw.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := gw.Register("bob")
	if err != nil {
		t.Fatal(err)
	}

	ta := stage(t, alice, "SELECT MAX(light) WHERE temp > 20 AND humidity < 80 EPOCH DURATION 8192ms")
	tb := stage(t, bob, "SELECT MAX(light) WHERE humidity < 80 AND temp > 20 EPOCH DURATION 8.192s")
	if _, err := gw.Advance(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sa, err := ta.Wait()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := tb.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if sa.Shared() {
		t.Errorf("first subscriber marked shared")
	}
	if !sb.Shared() {
		t.Errorf("second subscriber not marked shared")
	}
	if sa.QueryID() != sb.QueryID() {
		t.Errorf("query IDs differ: %d vs %d", sa.QueryID(), sb.QueryID())
	}
	if sa.Key() != sb.Key() {
		t.Errorf("canonical keys differ: %q vs %q", sa.Key(), sb.Key())
	}
	st := mustStats(t, gw)
	if st.Admitted != 1 || st.DedupHits != 1 {
		t.Errorf("admitted=%d dedup_hits=%d, want 1/1", st.Admitted, st.DedupHits)
	}
	if st.SharedQueries != 1 || st.ActiveSubscriptions != 2 {
		t.Errorf("shared=%d active=%d, want 1/2", st.SharedQueries, st.ActiveSubscriptions)
	}
	if r := st.DedupRatio(); r != 2 {
		t.Errorf("dedup ratio %v, want 2", r)
	}
}

// TestGatewayRefcountCancel: the shared query survives the first
// unsubscribe and is cancelled by the last.
func TestGatewayRefcountCancel(t *testing.T) {
	gw := newTestGateway(t, Config{})
	alice, _ := gw.Register("alice")
	bob, _ := gw.Register("bob")
	ta := stage(t, alice, "SELECT light EPOCH DURATION 8192ms")
	tb := stage(t, bob, "SELECT light EPOCH DURATION 8192ms")
	if _, err := gw.Advance(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sa, _ := ta.Wait()
	sb, _ := tb.Wait()

	tu, err := alice.UnsubscribeAsync(sa.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Advance(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := tu.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, gw); st.Cancelled != 0 || st.SharedQueries != 1 {
		t.Fatalf("query cancelled with a live subscriber: %+v", st)
	}
	if sa.Reason() != ReasonUnsubscribed {
		t.Errorf("reason %v, want unsubscribed", sa.Reason())
	}

	tu, err = bob.UnsubscribeAsync(sb.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Advance(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := tu.Wait(); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, gw)
	if st.Cancelled != 1 || st.SharedQueries != 0 || st.ActiveSubscriptions != 0 {
		t.Fatalf("last unsubscribe did not cancel: %+v", st)
	}
}

// TestGatewayBackpressureEviction: a subscriber that never drains is evicted
// at its buffer bound while a fast co-subscriber of the same shared query
// keeps receiving every epoch; the eviction is visible in the stats and the
// obs export.
func TestGatewayBackpressureEviction(t *testing.T) {
	const buffer = 2
	gw := newTestGateway(t, Config{Buffer: buffer})
	fast, _ := gw.Register("fast")
	slow, _ := gw.Register("slow")
	tf := stage(t, fast, "SELECT light EPOCH DURATION 2048ms")
	ts := stage(t, slow, "SELECT light EPOCH DURATION 2048ms")
	if _, err := gw.Advance(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	fs, err := tf.Wait()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ts.Wait()
	if err != nil {
		t.Fatal(err)
	}

	received := 0
	for round := 0; round < 8; round++ {
		if _, err := gw.Advance(2048 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		// The fast client drains after every tick; the slow one never reads.
		for {
			select {
			case _, ok := <-fs.Updates():
				if !ok {
					t.Fatalf("fast subscriber closed: %v", fs.Reason())
				}
				received++
				continue
			default:
			}
			break
		}
	}

	st := mustStats(t, gw)
	if st.Epochs == 0 {
		t.Fatalf("no epochs delivered")
	}
	if received != int(st.Epochs) {
		t.Errorf("fast subscriber got %d of %d epochs", received, st.Epochs)
	}
	if st.Evicted != 1 {
		t.Errorf("evicted=%d, want 1", st.Evicted)
	}
	if st.Dropped == 0 {
		t.Errorf("no drops recorded for the stalled subscriber")
	}
	// The stalled subscriber's channel is closed with the eviction reason
	// after its buffered backlog (exactly the buffer bound) is drained.
	backlog := 0
	for range ss.Updates() {
		backlog++
	}
	if backlog != buffer {
		t.Errorf("stalled backlog %d, want %d", backlog, buffer)
	}
	if ss.Reason() != ReasonEvicted {
		t.Errorf("reason %v, want evicted", ss.Reason())
	}
	// The shared query must survive: the fast subscriber still holds it.
	if st.Cancelled != 0 || st.SharedQueries != 1 {
		t.Errorf("eviction cancelled a query with live subscribers: %+v", st)
	}

	exp, err := gw.Export()
	if err != nil {
		t.Fatal(err)
	}
	if exp.Gateway == nil {
		t.Fatal("export missing gateway block")
	}
	if exp.Gateway.Evicted != 1 || exp.Gateway.Dropped != st.Dropped {
		t.Errorf("export gateway block disagrees: %+v", exp.Gateway)
	}
}

// TestGatewayEvictionReleasesRefcount: evicting the sole subscriber of a
// shared query must release its refcount and cancel the admitted query
// upstream, exactly like an explicit unsubscribe would — and a later
// subscriber to the same canonical query re-admits it from scratch.
func TestGatewayEvictionReleasesRefcount(t *testing.T) {
	const buffer = 2
	gw := newTestGateway(t, Config{Buffer: buffer})
	slow, _ := gw.Register("slow")
	ts := stage(t, slow, "SELECT light EPOCH DURATION 2048ms")
	if _, err := gw.Advance(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ss, err := ts.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, gw); st.Admitted != 1 || st.SharedQueries != 1 {
		t.Fatalf("admission accounting before eviction: %+v", st)
	}

	// Never drain: the buffer fills, the overflow marks the subscriber for
	// eviction, and the following Advance sweeps it out.
	for round := 0; round < 8; round++ {
		if _, err := gw.Advance(2048 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	st := mustStats(t, gw)
	if st.Evicted != 1 {
		t.Fatalf("evicted=%d, want 1", st.Evicted)
	}
	if ss.Reason() != ReasonEvicted {
		t.Errorf("reason %v, want evicted", ss.Reason())
	}
	// The regression under test: with no other subscriber holding the
	// canonical query, the eviction must drop the refcount to zero and
	// cancel the in-network query instead of leaking it.
	if st.Cancelled != 1 || st.SharedQueries != 0 || st.ActiveSubscriptions != 0 {
		t.Fatalf("eviction leaked the shared query: %+v", st)
	}

	// A fresh subscriber to the same canonical form is a new admission,
	// not a dedup hit against a ghost entry.
	fresh, _ := gw.Register("fresh")
	tf := stage(t, fresh, "SELECT light EPOCH DURATION 2048ms")
	if _, err := gw.Advance(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := tf.Wait(); err != nil {
		t.Fatal(err)
	}
	st = mustStats(t, gw)
	if st.Admitted != 2 || st.DedupHits != 0 || st.SharedQueries != 1 {
		t.Fatalf("re-subscribe after eviction did not re-admit: %+v", st)
	}
}

// TestGatewayQuota: per-session subscription quota rejects the overflow
// subscribe without touching the network.
func TestGatewayQuota(t *testing.T) {
	gw := newTestGateway(t, Config{SessionQuota: 1})
	sess, _ := gw.Register("alice")
	t1 := stage(t, sess, "SELECT light EPOCH DURATION 8192ms")
	t2 := stage(t, sess, "SELECT temp EPOCH DURATION 8192ms")
	if _, err := gw.Advance(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Wait(); err == nil {
		t.Fatal("over-quota subscribe accepted")
	}
	st := mustStats(t, gw)
	if st.QuotaRejected != 1 || st.Admitted != 1 {
		t.Errorf("quota_rejected=%d admitted=%d, want 1/1", st.QuotaRejected, st.Admitted)
	}
}

// TestGatewayRateLimit: the virtual-time token bucket rejects a burst beyond
// its capacity and refills as simulated time advances.
func TestGatewayRateLimit(t *testing.T) {
	gw := newTestGateway(t, Config{Rate: 1, Burst: 1})
	sess, _ := gw.Register("alice")
	t1 := stage(t, sess, "SELECT light EPOCH DURATION 8192ms")
	t2 := stage(t, sess, "SELECT temp EPOCH DURATION 8192ms")
	if _, err := gw.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Wait(); err == nil {
		t.Fatal("burst-exceeding subscribe accepted")
	}
	if st := mustStats(t, gw); st.RateLimited != 1 {
		t.Errorf("rate_limited=%d, want 1", st.RateLimited)
	}
	// One simulated second at Rate 1 restores one token.
	t3 := stage(t, sess, "SELECT temp EPOCH DURATION 8192ms")
	if _, err := gw.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := t3.Wait(); err != nil {
		t.Fatalf("refilled subscribe rejected: %v", err)
	}
}

// TestGatewayShutdown: Close drains live subscriptions with the shutdown
// reason, fails later commands with ErrClosed, and keeps final stats and
// export readable.
func TestGatewayShutdown(t *testing.T) {
	gw := newTestGateway(t, Config{})
	sess, _ := gw.Register("alice")
	ti := stage(t, sess, "SELECT light EPOCH DURATION 8192ms")
	if _, err := gw.Advance(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sub, err := ti.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	for range sub.Updates() {
	}
	if sub.Reason() != ReasonShutdown {
		t.Errorf("reason %v, want shutdown", sub.Reason())
	}
	if _, err := sess.SubscribeAsync(query.MustParse("SELECT light EPOCH DURATION 8192ms")); !errors.Is(err, ErrClosed) {
		t.Errorf("subscribe after close: %v, want ErrClosed", err)
	}
	if _, err := gw.Register("bob"); !errors.Is(err, ErrClosed) {
		t.Errorf("register after close: %v, want ErrClosed", err)
	}
	st, err := gw.Stats()
	if err != nil {
		t.Fatalf("final stats unavailable: %v", err)
	}
	if st.Cancelled != 1 || st.ActiveSubscriptions != 0 {
		t.Errorf("shutdown left state behind: %+v", st)
	}
	if _, err := gw.Export(); err != nil {
		t.Fatalf("final export unavailable: %v", err)
	}
}

// TestLoadgenDeterminism is the subsystem's determinism regression: the same
// seed and workload pushed through the gateway by concurrently-scheduled
// clients must yield byte-identical observability exports, run after run.
func TestLoadgenDeterminism(t *testing.T) {
	cfg := LoadgenConfig{
		Clients: 100,
		Rounds:  10,
		Pool:    8,
		Seed:    42,
		Side:    3,
	}
	export := func() ([]byte, Stats) {
		t.Helper()
		rep, err := RunLoadgen(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteJSON(&buf, rep.Export); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rep.Stats
	}
	b1, st := export()
	b2, _ := export()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("exports differ between identical runs (%d vs %d bytes)", len(b1), len(b2))
	}
	if st.Subscribes == 0 || st.Admitted == 0 {
		t.Fatalf("loadgen did no work: %+v", st)
	}
	if r := st.DedupRatio(); r <= 1 {
		t.Errorf("dedup ratio %.2f, want > 1", r)
	}
	if st.Updates == 0 {
		t.Errorf("no updates fanned out")
	}
}
