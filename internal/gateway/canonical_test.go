package gateway

import (
	"testing"

	"repro/internal/query"
)

// TestCanonicalKeyEquivalence drives the semantic dedup key with pairs of
// textually different but semantically equal queries — the gateway must map
// each pair to one in-network query.
func TestCanonicalKeyEquivalence(t *testing.T) {
	cases := []struct {
		name string
		a, b string
	}{
		{
			name: "attribute order",
			a:    "SELECT light, temp EPOCH DURATION 8192ms",
			b:    "SELECT temp, light EPOCH DURATION 8192ms",
		},
		{
			name: "aggregate order",
			a:    "SELECT MAX(light), MIN(temp) EPOCH DURATION 8192ms",
			b:    "SELECT MIN(temp), MAX(light) EPOCH DURATION 8192ms",
		},
		{
			name: "predicate commutation",
			a:    "SELECT light WHERE temp > 20 AND humidity < 80 EPOCH DURATION 8192ms",
			b:    "SELECT light WHERE humidity < 80 AND temp > 20 EPOCH DURATION 8192ms",
		},
		{
			name: "duplicate predicate intersects to itself",
			a:    "SELECT light WHERE temp > 20 EPOCH DURATION 8192ms",
			b:    "SELECT light WHERE temp > 20 AND temp > 20 EPOCH DURATION 8192ms",
		},
		{
			name: "tighter pair intersects to one range",
			a:    "SELECT light WHERE temp > 20 AND temp > 15 EPOCH DURATION 8192ms",
			b:    "SELECT light WHERE temp > 20 EPOCH DURATION 8192ms",
		},
		{
			name: "epoch units ms vs s",
			a:    "SELECT light EPOCH DURATION 8192ms",
			b:    "SELECT light EPOCH DURATION 8.192s",
		},
		{
			name: "epoch bare number is ms",
			a:    "SELECT light EPOCH DURATION 8192",
			b:    "SELECT light EPOCH DURATION 8192ms",
		},
		{
			name: "duplicate attribute",
			a:    "SELECT light, light EPOCH DURATION 8192ms",
			b:    "SELECT light EPOCH DURATION 8192ms",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			qa, qb := query.MustParse(tc.a), query.MustParse(tc.b)
			ka, kb := CanonicalKey(qa), CanonicalKey(qb)
			if ka != kb {
				t.Fatalf("keys differ:\n a: %q -> %q\n b: %q -> %q", tc.a, ka, tc.b, kb)
			}
		})
	}
}

// TestCanonicalKeyDistinguishes checks that genuinely different queries do
// NOT collide.
func TestCanonicalKeyDistinguishes(t *testing.T) {
	cases := []struct {
		name string
		a, b string
	}{
		{
			name: "different epoch",
			a:    "SELECT light EPOCH DURATION 8192ms",
			b:    "SELECT light EPOCH DURATION 16384ms",
		},
		{
			name: "different attribute",
			a:    "SELECT light EPOCH DURATION 8192ms",
			b:    "SELECT temp EPOCH DURATION 8192ms",
		},
		{
			name: "different predicate bound",
			a:    "SELECT light WHERE temp > 20 EPOCH DURATION 8192ms",
			b:    "SELECT light WHERE temp > 25 EPOCH DURATION 8192ms",
		},
		{
			name: "aggregate vs acquisition",
			a:    "SELECT MAX(light) EPOCH DURATION 8192ms",
			b:    "SELECT light EPOCH DURATION 8192ms",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka := CanonicalKey(query.MustParse(tc.a))
			kb := CanonicalKey(query.MustParse(tc.b))
			if ka == kb {
				t.Fatalf("distinct queries collided on %q", ka)
			}
		})
	}
}

// TestCanonicalKeyIgnoresIdentity verifies the key is independent of the
// client-assigned query ID, so two clients posting the same text dedup.
func TestCanonicalKeyIgnoresIdentity(t *testing.T) {
	a := query.MustParse("SELECT MAX(light) WHERE temp > 20 EPOCH DURATION 8192ms")
	b := a.Clone()
	a.ID, b.ID = 7, 99
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Fatalf("key depends on query ID")
	}
}

// TestCanonicalizeRejectsLifetime: subscriptions are cancelled by
// unsubscribe, not by a LIFETIME clause.
func TestCanonicalizeRejectsLifetime(t *testing.T) {
	q := query.MustParse("SELECT light EPOCH DURATION 8192ms LIFETIME 60s")
	if _, _, err := canonicalize(q); err == nil {
		t.Fatalf("lifetime query accepted")
	}
}
