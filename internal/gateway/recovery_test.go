package gateway

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/topology"
)

// walConfig builds a small gateway config with crash recovery enabled.
func walConfig(t *testing.T, wal string) Config {
	t.Helper()
	topo, err := topology.PaperGrid(2)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Sim:     network.Config{Topo: topo, Scheme: network.TTMQO, Seed: 1},
		WALPath: wal,
	}
}

// drain empties a subscription's channel without blocking.
func drain(sub *Subscription) []Update {
	var out []Update
	for {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				return out
			}
			out = append(out, u)
		default:
			return out
		}
	}
}

// recvN reads exactly n updates, failing on close or timeout.
func recvN(t *testing.T, sub *Subscription, n int) []Update {
	t.Helper()
	out := make([]Update, 0, n)
	for len(out) < n {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				t.Fatalf("stream closed (%s) after %d of %d updates", sub.Reason(), len(out), n)
			}
			out = append(out, u)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d of %d updates", len(out), n)
		}
	}
	return out
}

// TestCrashRecoverResumeExactlyOnce is the core recovery contract at the
// API level: a crash closes live streams with ReasonCrashed, Recover
// rebuilds the gateway from the WAL by deterministic replay, Attach with
// the session token lists the resumable streams, and Resume redelivers the
// replayed history with the exact sequence numbers and timestamps of the
// original run — then continues live with the next number.
func TestCrashRecoverResumeExactlyOnce(t *testing.T) {
	cfg := walConfig(t, filepath.Join(t.TempDir(), "gw.wal"))
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := gw.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	ti, err := sess.SubscribeAsync(query.MustParse("SELECT light EPOCH DURATION 2048"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Advance(2048 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sub, err := ti.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var before []Update
	before = append(before, drain(sub)...)
	for i := 0; i < 3; i++ {
		if _, err := gw.Advance(2048 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		before = append(before, drain(sub)...)
	}
	if len(before) == 0 {
		t.Fatal("no updates before the crash")
	}
	if err := gw.Crash(); err != nil {
		t.Fatal(err)
	}
	// The crash closes the stream; anything stranded in the channel is
	// still readable and counts toward the client's cursor.
	for u := range sub.Updates() {
		before = append(before, u)
	}
	if sub.Reason() != ReasonCrashed {
		t.Fatalf("close reason = %s, want crashed", sub.Reason())
	}
	for i, u := range before {
		if u.Seq != uint64(i+1) {
			t.Fatalf("pre-crash seq[%d] = %d, want contiguous from 1", i, u.Seq)
		}
	}
	last := before[len(before)-1].Seq

	g2, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	s2, infos, err := g2.Attach("alice", sess.Token())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != sub.ID() {
		t.Fatalf("resume infos = %+v, want the one subscription", infos)
	}
	if infos[0].LastSeq != last {
		t.Fatalf("replayed LastSeq = %d, want %d", infos[0].LastSeq, last)
	}

	// Resume from zero: the whole history must come back from the resume
	// ring, byte-for-byte equal in sequence and virtual timestamp.
	r2, err := s2.Resume(infos[0].ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	again := recvN(t, r2, len(before))
	for i, u := range again {
		if u.Seq != before[i].Seq || u.At != before[i].At || len(u.Rows) != len(before[i].Rows) {
			t.Fatalf("replayed update %d = (seq=%d at=%v rows=%d), original (seq=%d at=%v rows=%d)",
				i, u.Seq, u.At, len(u.Rows), before[i].Seq, before[i].At, len(before[i].Rows))
		}
	}

	// The stream continues live exactly where it left off.
	if _, err := g2.Advance(2048 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	next := recvN(t, r2, 1)
	if next[0].Seq != last+1 {
		t.Fatalf("post-recovery seq = %d, want %d", next[0].Seq, last+1)
	}
	st, err := g2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recoveries != 1 || st.Attaches != 1 || st.Resumes != 1 || st.ResumeGaps != 0 {
		t.Fatalf("recovery counters: %+v", st)
	}
}

// TestRecoverIsDeterministic: two independent recoveries of the same WAL
// bytes agree on every counter — replay is a pure function of the log.
func TestRecoverIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(t, filepath.Join(dir, "gw.wal"))
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := gw.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := gw.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	ta := stage(t, a, "SELECT light EPOCH DURATION 2048")
	tb := stage(t, b, "SELECT temp WHERE temp >= 10 EPOCH DURATION 4096")
	if _, err := gw.Advance(4096 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sa, err := ta.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Wait(); err != nil {
		t.Fatal(err)
	}
	tu, err := a.UnsubscribeAsync(sa.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Advance(4096 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := tu.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := gw.Crash(); err != nil {
		t.Fatal(err)
	}

	// Recovery compacts the log in place, so each recovery gets its own
	// copy of the crashed bytes.
	raw, err := os.ReadFile(cfg.WALPath)
	if err != nil {
		t.Fatal(err)
	}
	stats := make([]Stats, 2)
	for i := range stats {
		c := cfg
		c.WALPath = filepath.Join(dir, "copy"+string(rune('0'+i))+".wal")
		if err := os.WriteFile(c.WALPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := Recover(c)
		if err != nil {
			t.Fatal(err)
		}
		st, err := g.Stats()
		if err != nil {
			t.Fatal(err)
		}
		stats[i] = st
		_ = g.Close()
	}
	if stats[0] != stats[1] {
		t.Fatalf("recoveries disagree:\n%+v\n%+v", stats[0], stats[1])
	}
	if stats[0].Subscribes != 2 || stats[0].Unsubscribes != 1 || stats[0].ActiveSubscriptions != 1 {
		t.Fatalf("replayed history wrong: %+v", stats[0])
	}
}

// TestAttachRejectsBadCredentials: a wrong token and an unknown session
// name must both be refused — the token is what stops one harness client
// from hijacking another's streams after a crash.
func TestAttachRejectsBadCredentials(t *testing.T) {
	cfg := walConfig(t, filepath.Join(t.TempDir(), "gw.wal"))
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	sess, err := gw.Register("carol")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := gw.Attach("carol", "not-the-token"); err == nil {
		t.Fatal("attach with a wrong token succeeded")
	}
	if _, _, err := gw.Attach("nobody", sess.Token()); err == nil {
		t.Fatal("attach to an unknown session succeeded")
	}
	if _, _, err := gw.Attach("carol", sess.Token()); err != nil {
		t.Fatalf("legitimate re-attach failed: %v", err)
	}
}

// TestIdleReapClosesDetachedSessions: a detached session that nobody
// re-claims is reaped once virtual time passes the idle timeout, releasing
// its subscriptions (and their shared queries).
func TestIdleReapClosesDetachedSessions(t *testing.T) {
	cfg := walConfig(t, filepath.Join(t.TempDir(), "gw.wal"))
	cfg.IdleTimeout = 10 * time.Second
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	sess, err := gw.Register("dora")
	if err != nil {
		t.Fatal(err)
	}
	ts := stage(t, sess, "SELECT light EPOCH DURATION 2048")
	if _, err := gw.Advance(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Advance(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := mustStats(t, gw); st.IdleReaped != 0 {
		t.Fatalf("reaped before the timeout: %+v", st)
	}
	// Reap runs at the start of each Advance, so the timeout must have
	// expired before the quantum that notices it.
	if _, err := gw.Advance(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Advance(time.Second); err != nil {
		t.Fatal(err)
	}
	st := mustStats(t, gw)
	if st.IdleReaped != 1 || st.ActiveSessions != 0 || st.ActiveSubscriptions != 0 {
		t.Fatalf("idle session not reaped: %+v", st)
	}
	if _, _, err := gw.Attach("dora", sess.Token()); err == nil {
		t.Fatal("attach to a reaped session succeeded")
	}
}

// TestWALCompactionKeepsRecovery: with an aggressive snapshot cadence the
// log is rewritten repeatedly mid-run, and a crash after many compactions
// still recovers the full session state.
func TestWALCompactionKeepsRecovery(t *testing.T) {
	cfg := walConfig(t, filepath.Join(t.TempDir(), "gw.wal"))
	cfg.SnapshotEvery = 2
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := gw.Register("erin")
	if err != nil {
		t.Fatal(err)
	}
	tc := stage(t, sess, "SELECT light EPOCH DURATION 2048")
	if _, err := gw.Advance(2048 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sub, err := tc.Wait()
	if err != nil {
		t.Fatal(err)
	}
	total := len(drain(sub))
	for i := 0; i < 9; i++ {
		if _, err := gw.Advance(2048 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		total += len(drain(sub))
	}
	if err := gw.Crash(); err != nil {
		t.Fatal(err)
	}
	g2, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	_, infos, err := g2.Attach("erin", sess.Token())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].LastSeq < uint64(total) {
		t.Fatalf("compacted log lost state: infos=%+v total=%d", infos, total)
	}
	if st := mustStats(t, g2); st.Recoveries != 1 {
		t.Fatalf("stats after compacted recovery: %+v", st)
	}
}

// TestLoadgenCrashRound: the load generator's built-in crash drill — every
// client must reconnect and the run must stay consistent.
func TestLoadgenCrashRound(t *testing.T) {
	rep, err := RunLoadgen(LoadgenConfig{
		Clients:    8,
		Rounds:     6,
		Pool:       4,
		Seed:       1,
		CrashRound: 3,
		WALPath:    filepath.Join(t.TempDir(), "gw.wal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reconnects != 8 {
		t.Fatalf("reconnects = %d, want every client", rep.Reconnects)
	}
	if rep.Stats.Recoveries != 1 {
		t.Fatalf("recoveries = %d", rep.Stats.Recoveries)
	}
	if rep.Stats.Updates == 0 {
		t.Fatal("no updates delivered across the crash")
	}
}
