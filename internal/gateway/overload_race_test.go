package gateway

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/resilience"
)

// TestEvictionShedRefcountRace races the two overload exits on one
// session: slow-consumer eviction (admitted subscriptions whose updates
// are never drained overflow a one-slot buffer and are swept) against
// admission-control shedding (the same session keeps spamming subscribes
// into a two-slot mailbox, so most are rejected with ErrOverloaded while
// evictions commit on the same Advance boundaries). Every admitted
// subscription shares one canonical query, so a double-release of the
// shared-query refcount — an eviction and a shed resolving the same slot
// — would corrupt the active-subscription and shared-query gauges. Run
// under -race this also exercises the ticket/stats paths for data races.
func TestEvictionShedRefcountRace(t *testing.T) {
	q := query.MustParse("SELECT light EPOCH DURATION 8192ms")
	gw := newTestGateway(t, Config{
		Buffer:       1,
		MaxStaged:    2,
		SessionQuota: 1 << 20,
		Rate:         1 << 20,
		Burst:        1 << 20,
	})
	sess, err := gw.Register("racer")
	if err != nil {
		t.Fatal(err)
	}

	var (
		admitted atomic.Int64
		shed     atomic.Int64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tk, err := sess.SubscribeAsync(q)
				if err != nil {
					if errors.Is(err, resilience.ErrOverloaded) {
						shed.Add(1)
						continue
					}
					t.Errorf("SubscribeAsync: %v", err)
					return
				}
				if _, err := tk.Wait(); err != nil {
					if errors.Is(err, resilience.ErrOverloaded) {
						shed.Add(1)
						continue
					}
					t.Errorf("ticket: %v", err)
					return
				}
				// Admitted — and never drained, so the one-slot buffer
				// overflows within a round and the sub is swept.
				admitted.Add(1)
			}
		}()
	}

	for i := 0; i < 60; i++ {
		if _, err := gw.Advance(8192 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	// Workers parked in tk.Wait need further Advances to resolve their
	// tickets, so keep ticking until they all exit.
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
drain:
	for {
		select {
		case <-workersDone:
			break drain
		default:
			if _, err := gw.Advance(8192 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Quiesce: commit any still-staged subscribes, then give every
	// admitted-but-undrained sub a full round to overflow and a sweep to
	// collect it.
	for i := 0; i < 4; i++ {
		if _, err := gw.Advance(8192 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	st, err := gw.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if shed.Load() == 0 {
		t.Fatal("mailbox bound never shed; the race is vacuous")
	}
	if st.Evicted == 0 {
		t.Fatal("no subscription was evicted; the race is vacuous")
	}
	// The ledger must balance exactly: every admitted subscription is
	// either still live or was evicted — a double-release (or a leaked
	// slot) shows up as an imbalance here.
	if got := int64(st.ActiveSubscriptions) + st.Evicted; got != admitted.Load() {
		t.Fatalf("refcount imbalance: active %d + evicted %d = %d, want admitted %d",
			st.ActiveSubscriptions, st.Evicted, got, admitted.Load())
	}
	// One canonical query: the shared-query gauge is 1 while any sub is
	// live and 0 once all are gone — never negative, never duplicated.
	wantShared := 0
	if st.ActiveSubscriptions > 0 {
		wantShared = 1
	}
	if st.SharedQueries != wantShared {
		t.Fatalf("shared queries = %d with %d live subs, want %d",
			st.SharedQueries, st.ActiveSubscriptions, wantShared)
	}
	if st.Subscribes != admitted.Load() {
		t.Fatalf("committed subscribes = %d, want admitted %d (a shed subscribe was applied)",
			st.Subscribes, admitted.Load())
	}

	// The gateway must still be fully serviceable after the storm.
	tk, err := sess.SubscribeAsync(query.MustParse("SELECT MAX(light) EPOCH DURATION 8192ms"))
	if err != nil {
		t.Fatalf("post-storm subscribe: %v", err)
	}
	if _, err := gw.Advance(8192 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sub, err := tk.Wait()
	if err != nil {
		t.Fatalf("post-storm subscribe: %v", err)
	}
	if _, err := gw.Advance(8192 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.Updates():
		if !ok {
			t.Fatalf("post-storm stream closed immediately (%s)", sub.Reason())
		}
	default:
		t.Fatal("post-storm subscription delivered nothing")
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
}
