package gateway

// Canonical query-key interning for the semantic dedup cache.
//
// Every admitted query's canonical key used to be carried as a plain
// string on the shared entry and on every subscription, and the dedup
// cache hashed the full string on every lookup. Interning stores each
// distinct canonical key exactly once behind a stable pointer: the dedup
// cache becomes a pointer-keyed map (hashing a word, not a string),
// subscription/shared key equality is pointer equality, and the N
// subscriptions of a shared query all alias one allocation. The table is
// loop-owned — only the gateway actor touches it — so it needs no lock,
// and entries are dropped when their shared query's last subscriber
// leaves, keeping it bounded by the live query set.

// internedKey is one canonical key, allocated once per distinct string.
// Identity is the pointer: two subscriptions reference the same query iff
// their keys are the same pointer.
type internedKey struct {
	s string
}

// String returns the underlying canonical text.
func (k *internedKey) String() string {
	if k == nil {
		return ""
	}
	return k.s
}

// internTable maps canonical strings to their unique interned pointer.
type internTable struct {
	m map[string]*internedKey
}

func newInternTable(sizeHint int) *internTable {
	return &internTable{m: make(map[string]*internedKey, sizeHint)}
}

// intern returns the canonical pointer for s, allocating it on first use.
// This is the only place the string is hashed; every downstream lookup
// keys on the returned pointer.
func (t *internTable) intern(s string) *internedKey {
	if k, ok := t.m[s]; ok {
		return k
	}
	k := &internedKey{s: s}
	t.m[s] = k
	return k
}

// drop forgets an interned key once its last referent is gone. Holders of
// the pointer keep a valid (GC-live) key; a later intern of the same
// string simply mints a fresh pointer.
func (t *internTable) drop(k *internedKey) {
	if k != nil {
		delete(t.m, k.s)
	}
}

// size reports the number of live interned keys.
func (t *internTable) size() int { return len(t.m) }
