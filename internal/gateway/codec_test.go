package gateway

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/tracing"
)

// encodeFrame is the test-side convenience wrapper around the two-step
// begin/seal contract the hot path uses with pooled buffers.
func encodeFrame(t *testing.T, enc func([]byte) ([]byte, error)) []byte {
	t.Helper()
	b, err := enc(nil)
	if err != nil {
		t.Fatal(err)
	}
	return sealFrame(b)
}

// stripFrame peels the magic byte and length prefix, returning the payload.
func stripFrame(t *testing.T, frame []byte) []byte {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(frame))
	magic, err := br.ReadByte()
	if err != nil || magic != FrameMagic {
		t.Fatalf("frame magic = %#x, %v", magic, err)
	}
	p, err := readBinaryFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpHello, Client: "alice", Tag: "h", Wire: "binary"},
		{Op: OpHello, Client: "phoenix", Token: "tok-123"},
		{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms", Tag: "s1"},
		{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms", Tag: "d1", DeadlineMS: 1500},
		{Op: OpUnsubscribe, Sub: 7},
		{Op: OpStats, Tag: "st"},
		{Op: OpPing, Tag: "hb"},
		{Op: OpResume, Sub: 3, After: 42},
	}
	for _, want := range cases {
		frame := encodeFrame(t, func(b []byte) ([]byte, error) {
			return appendRequestFrame(b, &want)
		})
		got, err := decodeRequestPayload(stripFrame(t, frame))
		if err != nil {
			t.Fatalf("%s: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", want.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Type: TypeHello, Tag: "h", Session: "alice", Token: "tok"},
		{Type: TypeHello, Session: "phoenix", Token: "tok", Subs: []WireResumeInfo{
			{Sub: 2, QueryID: 9, Canonical: "SELECT light EPOCH DURATION 2048ms", LastSeq: 17},
		}},
		{Type: TypeSubscribed, Tag: "s1", Sub: 2, QueryID: 9, Shared: true, Canonical: "SELECT light"},
		{Type: TypeSubscribed, Sub: 2, QueryID: 9, Resumed: true},
		{Type: TypeRows, Sub: 2, Seq: 5, AtMS: 4096, Rows: []WireRow{
			{Node: 3, Values: map[string]float64{"light": 512.25, "temp": 20.5}},
			{Node: 11, Values: map[string]float64{"nodeid": 11}},
		}},
		{Type: TypeAgg, Sub: 4, Seq: 8, AtMS: 8192, Aggs: []WireAgg{
			{Agg: "MAX(light)", Group: 2, Value: 733.5},
			{Agg: "AVG(temp)", Empty: true},
		}},
		{Type: TypeRows, Sub: 6, Seq: 2, AtMS: 2048, Degraded: true, Coverage: 0.5, Rows: []WireRow{
			{Node: 1, Values: map[string]float64{"light": 100}},
		}},
		{Type: TypeAgg, Sub: 6, Seq: 3, AtMS: 4096, Degraded: true, Coverage: 0.75, Aggs: []WireAgg{
			{Agg: "MAX(light)", Value: 12.5},
		}},
		{Type: TypeClosed, Sub: 2, Reason: "unsubscribed"},
		{Type: TypeStats, Tag: "st", AtMS: 12288, Stats: &obs.GatewayMetrics{Admitted: 3, ActiveSessions: 1}},
		{Type: TypePong, Tag: "hb"},
		{Type: TypeError, Tag: "bad", Error: "no such subscription"},
		{Type: TypeError, Tag: "sh", Error: "gateway overloaded", Code: CodeOverloaded, RetryAfterMS: 25},
	}
	for _, want := range cases {
		frame := encodeFrame(t, func(b []byte) ([]byte, error) {
			return appendResponseFrame(b, &want)
		})
		got, err := decodeResponsePayload(stripFrame(t, frame))
		if err != nil {
			t.Fatalf("%s: %v", want.Type, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	cases := []walRecord{
		{Op: walOpRegister, At: 1024, Sess: "alice", Token: "tok-1"},
		{Op: walOpSubscribe, At: 2048, Sess: "alice", Sub: 3, Query: "SELECT light EPOCH DURATION 2048ms"},
		{Op: walOpUnsubscribe, At: 4096, Sess: "alice", Sub: 3},
		{Op: walOpClose, At: 6144, Sess: "alice"},
		{Op: walOpAdvance, At: 8192},
	}
	for _, want := range cases {
		frame := encodeFrame(t, func(b []byte) ([]byte, error) {
			return appendWALFrame(b, &want)
		})
		got, err := decodeWALPayload(stripFrame(t, frame))
		if err != nil {
			t.Fatalf("%s: %v", want.Op, err)
		}
		if got != want {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", want.Op, got, want)
		}
	}
}

// TestUpdateFrameMatchesGenericEncoder pins the hot path to the generic
// encoder: appendUpdateFrame must produce byte-identical frames to
// appendResponseFrame(wireUpdate(u)) for both rows and aggregate updates.
func TestUpdateFrameMatchesGenericEncoder(t *testing.T) {
	updates := []Update{
		{Sub: 7, QueryID: 3, Seq: 42, At: 6144 * time.Millisecond, Rows: []query.Row{
			{Node: 5, Values: map[field.Attr]float64{field.AttrLight: 512.25, field.AttrTemp: 20.5}},
			{Node: 9, Values: map[field.Attr]float64{
				field.AttrNodeID: 9, field.AttrLight: 1.5, field.AttrTemp: 2.5,
				field.AttrHumidity: 3.5, field.AttrVoltage: 4.5,
			}},
			{Node: 2, Values: map[field.Attr]float64{}},
		}},
		{Sub: 8, QueryID: 4, Seq: 1, At: 2048 * time.Millisecond, Aggs: []query.AggResult{
			{Agg: query.Agg{Op: query.Max, Attr: field.AttrLight}, Group: 2, Value: 733.5},
			{Agg: query.Agg{Op: query.Avg, Attr: field.AttrTemp}, Empty: true},
		}},
		// Traced deliveries carry the provenance trailer on both paths.
		{Sub: 9, QueryID: 5, Seq: 3, At: 4096 * time.Millisecond,
			Trace: 0xDEADBEEF,
			Prov:  tracing.Prov{Shards: 0b101, Frags: 3, Reused: 2, CacheHit: true, Rung: 1},
			Rows: []query.Row{
				{Node: 5, Values: map[field.Attr]float64{field.AttrLight: 512.25}},
			}},
		{Sub: 10, QueryID: 6, Seq: 4, At: 6144 * time.Millisecond,
			Trace: 7,
			Aggs: []query.AggResult{
				{Agg: query.Agg{Op: query.Max, Attr: field.AttrLight}, Value: 12.5},
			}},
	}
	for _, u := range updates {
		fast := sealFrame(appendUpdateFrame(nil, &u))
		resp := wireUpdate(u)
		generic := encodeFrame(t, func(b []byte) ([]byte, error) {
			return appendResponseFrame(b, &resp)
		})
		if !bytes.Equal(fast, generic) {
			t.Errorf("update seq %d: fast path and generic encoder disagree:\nfast    %x\ngeneric %x",
				u.Seq, fast, generic)
		}
	}
}

// TestAppendUpdateFrameZeroAlloc is the tentpole's core claim: encoding a
// fanned-out update into a pre-grown buffer allocates nothing.
func TestAppendUpdateFrameZeroAlloc(t *testing.T) {
	u := Update{Sub: 7, Seq: 42, At: 6144 * time.Millisecond, Rows: []query.Row{
		{Node: 5, Values: map[field.Attr]float64{field.AttrLight: 512.25, field.AttrTemp: 20.5}},
		{Node: 9, Values: map[field.Attr]float64{field.AttrLight: 1.5, field.AttrVoltage: 4.5}},
	}}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		frame := sealFrame(appendUpdateFrame(buf[:0], &u))
		if len(frame) == 0 {
			t.Fatal("empty frame")
		}
	})
	if allocs != 0 {
		t.Errorf("appendUpdateFrame allocates %.1f objects per frame, want 0", allocs)
	}

	// Tracing must not reintroduce allocations: a traced update's
	// provenance trailer rides the same pre-grown buffer.
	u.Trace = 0xDEADBEEF
	u.Prov = tracing.Prov{Shards: 0b11, Frags: 2, Reused: 1, CacheHit: true, Rung: 1}
	allocs = testing.AllocsPerRun(100, func() {
		frame := sealFrame(appendUpdateFrame(buf[:0], &u))
		if len(frame) == 0 {
			t.Fatal("empty frame")
		}
	})
	if allocs != 0 {
		t.Errorf("traced appendUpdateFrame allocates %.1f objects per frame, want 0", allocs)
	}
}

// TestMalformedFramesRejected: corrupt frames must produce errors, never
// panics, and truncating a valid frame at any byte must fail cleanly.
func TestMalformedFramesRejected(t *testing.T) {
	req := Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms", Tag: "s"}
	valid := encodeFrame(t, func(b []byte) ([]byte, error) {
		return appendRequestFrame(b, &req)
	})
	if err := decodeFrame(valid); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	for cut := 0; cut < len(valid); cut++ {
		if err := decodeFrame(valid[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}

	payload := stripFrame(t, valid)
	corrupt := map[string][]byte{
		"empty payload":     {},
		"bad version":       append([]byte{99}, payload[1:]...),
		"unknown op":        {WireVersion, 0xEE},
		"trailing bytes":    append(append([]byte{}, payload...), 0xFF),
		"string past end":   {WireVersion, frameReqHello, 0xFF, 0xFF, 0x01},
		"giant list count":  {WireVersion, frameRespHello, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"truncated varint":  {WireVersion, frameReqPing, 0, 0, 0, 0x80},
		"truncated float64": {WireVersion, frameRespAgg, 2, 1, 0, 1, 1, 1, 0, 1, 2, 3},
	}
	for name, p := range corrupt {
		if _, err := decodeRequestPayload(p); err == nil {
			if _, err := decodeResponsePayload(p); err == nil {
				t.Errorf("%s: accepted by both request and response decoders", name)
			}
		}
	}

	// Oversized length prefix is refused before any read.
	br := bufio.NewReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}))
	if _, err := readBinaryFrame(br, nil); err == nil {
		t.Error("oversized frame length accepted")
	}
}

// FuzzDecodeFrame feeds arbitrary bytes through every decoder: the codec
// must reject garbage with an error, never a panic, and any payload that
// does decode as a request must survive an encode→decode round trip.
func FuzzDecodeFrame(f *testing.F) {
	seedReq := Request{Op: OpSubscribe, Query: "SELECT light EPOCH DURATION 2048ms", Tag: "s"}
	b, _ := appendRequestFrame(nil, &seedReq)
	f.Add(append([]byte{}, sealFrame(b)...))
	seedResp := Response{Type: TypeRows, Sub: 2, Seq: 5, AtMS: 4096, Rows: []WireRow{
		{Node: 3, Values: map[string]float64{"light": 512.25}},
	}}
	b2, _ := appendResponseFrame(nil, &seedResp)
	f.Add(append([]byte{}, sealFrame(b2)...))
	seedWAL := walRecord{Op: walOpSubscribe, At: 2048, Sess: "a", Sub: 1, Query: "q"}
	b3, _ := appendWALFrame(nil, &seedWAL)
	f.Add(append([]byte{}, sealFrame(b3)...))
	f.Add([]byte{FrameMagic, 0x03, WireVersion, frameReqPing, 0x00})
	f.Add([]byte{})
	// Frames with trace/provenance trailers seed the optional-suffix paths.
	tracedReq := Request{Op: OpSubscribe, Query: "SELECT light", Tag: "t", TraceID: 0xDEADBEEF}
	b4, _ := appendRequestFrame(nil, &tracedReq)
	f.Add(append([]byte{}, sealFrame(b4)...))
	tracedResp := Response{Type: TypeRows, Sub: 2, Seq: 5, AtMS: 4096, TraceID: 7,
		Prov: &WireProv{ShardMask: 0b11, Frags: 2, Reused: 1, CacheHit: true, Rung: 1},
		Rows: []WireRow{{Node: 3, Values: map[string]float64{"light": 512.25}}}}
	b5, _ := appendResponseFrame(nil, &tracedResp)
	f.Add(append([]byte{}, sealFrame(b5)...))
	tracedWAL := walRecord{Op: walOpSubscribe, At: 2048, Sess: "a", Sub: 1, Query: "q", Trace: 9}
	b6, _ := appendWALFrame(nil, &tracedWAL)
	f.Add(append([]byte{}, sealFrame(b6)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		_ = decodeFrame(data) // must not panic
		if req, err := decodeRequestPayload(data); err == nil {
			reb, err := appendRequestFrame(nil, &req)
			if err != nil {
				t.Fatalf("re-encode of decoded request failed: %v", err)
			}
			again, err := decodeRequestPayload(stripFrame(t, sealFrame(reb)))
			if err != nil || !reflect.DeepEqual(again, req) {
				t.Fatalf("request not stable across re-encode: %+v vs %+v (%v)", again, req, err)
			}
		}
		if rec, err := decodeWALPayload(data); err == nil {
			reb, err := appendWALFrame(nil, &rec)
			if err != nil {
				t.Fatalf("re-encode of decoded wal record failed: %v", err)
			}
			again, err := decodeWALPayload(stripFrame(t, sealFrame(reb)))
			if err != nil || again != rec {
				t.Fatalf("wal record not stable across re-encode: %+v vs %+v (%v)", again, rec, err)
			}
		}
		// Responses may decode with out-of-range attr/agg codes that have no
		// lossless re-encoding; only the no-panic guarantee applies.
		_, _ = decodeResponsePayload(data)
	})
}

// FuzzRequestRoundTrip fuzzes the structured side: every field combination
// of a request must survive encode→frame→decode bit-exact.
func FuzzRequestRoundTrip(f *testing.F) {
	f.Add(uint8(1), "alice", "tok", "SELECT light", int64(7), uint64(42), "tag", "binary", uint64(0))
	f.Add(uint8(6), "", "", "", int64(-1), uint64(0), "", "", uint64(0))
	f.Add(uint8(1), "alice", "", "SELECT light", int64(0), uint64(0), "t", "", uint64(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, opCode uint8, client, token, qtext string, sub int64, after uint64, tag, wire string, trace uint64) {
		op, ok := codeToOp[opCode%7]
		if !ok {
			t.Skip()
		}
		want := Request{Op: op, Client: client, Token: token, Query: qtext,
			Sub: SubID(sub), After: after, Tag: tag, Wire: wire, TraceID: trace}
		b, err := appendRequestFrame(nil, &want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeRequestPayload(stripFrame(t, sealFrame(b)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	})
}
