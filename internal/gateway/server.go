package gateway

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/resilience"
)

// DefaultReadTimeout is the default per-read deadline on client
// connections. It is deliberately several heartbeat intervals long.
const DefaultReadTimeout = 75 * time.Second

// DefaultWriteTimeout is the default per-write deadline: a slow-loris
// subscriber that stops reading long enough to fill its socket buffers
// is dropped instead of wedging its forwarder goroutines.
const DefaultWriteTimeout = 30 * time.Second

// ServerConfig parametrizes Serve.
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. ":7443" or "127.0.0.1:0".
	Addr string
	// TickEvery is the wall-clock pacer period: every tick the server
	// commits staged client commands and advances the simulation by
	// Quantum of virtual time. Default 250ms.
	TickEvery time.Duration
	// Quantum is the virtual time simulated per tick. Default 2048ms (one
	// minimum epoch), i.e. the simulation runs ~8x faster than real time
	// at the defaults.
	Quantum time.Duration
	// ReadTimeout is the server-side read deadline, refreshed before every
	// request line: a connection that stays silent longer is dropped (its
	// named session detaches and stays resumable until the idle reaper
	// runs). Clients keep quiet periods alive with OpPing heartbeats.
	// DefaultReadTimeout if zero; negative disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout is the server-side write deadline, armed before every
	// response write: a client that stops reading (slow loris) fills its
	// socket buffers, the write expires, and the connection drops — its
	// named session detaches and its subscriptions park in resume rings
	// rather than wedging forwarder goroutines. DefaultWriteTimeout if
	// zero; negative disables the deadline.
	WriteTimeout time.Duration
	// ForceJSON pins every response to the NDJSON encoding, ignoring binary
	// wire negotiation (Request.Wire and binary-framed requests). Debug
	// mode: the stream stays readable with nc/jq at the cost of the
	// hot-path allocation savings. Inbound binary frames are still decoded.
	ForceJSON bool
}

// Server serves the gateway's newline-delimited JSON protocol over TCP and
// drives the simulation with a wall-clock pacer. It fronts any Backend —
// a single *Gateway or a federation router.
type Server struct {
	gw  Backend
	ln  net.Listener
	cfg ServerConfig

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu       sync.Mutex
	nextConn int64
	conns    map[net.Conn]struct{}
}

// NewServer starts listening and pacing. The caller owns the backend and
// should Close it after Server.Close.
func NewServer(gw Backend, cfg ServerConfig) (*Server, error) {
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 250 * time.Millisecond
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 2048 * time.Millisecond
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{gw: gw, ln: ln, cfg: cfg, stop: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	s.wg.Add(2)
	go s.pace()
	go s.accept()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the pacer and listener, severs live connections, and waits
// for the handlers to finish. It does not close the Gateway.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// pace drives virtual time: one Advance per wall tick. Client commands
// that arrived since the previous tick commit at the next one, so a
// subscribe observed over TCP is live within TickEvery.
//
// When the backend's brownout ladder reaches LevelBatching, the pacer
// coalesces pairs of ticks into one double-quantum Advance: virtual time
// progresses at the same rate, but each fan-out round carries twice the
// epochs, so the per-burst flush batching amortizes twice as many writes
// per syscall while the tier is hot.
func (s *Server) pace() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TickEvery)
	defer t.Stop()
	br, _ := s.gw.(BrownoutReporter)
	owe := false // a tick was skipped; the next Advance is double
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			q := s.cfg.Quantum
			switch {
			case owe:
				owe = false
				q = 2 * s.cfg.Quantum
			case br != nil && br.BrownoutLevel() >= resilience.LevelBatching:
				owe = true
				continue
			}
			if _, err := s.gw.Advance(q); err != nil {
				return
			}
		}
	}
}

func (s *Server) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// connWriter serializes responses from the request handler and the
// per-subscription forwarders onto one connection. All encodings go
// through one per-connection bufio.Writer — a response is built into a
// pooled frame buffer (binary) or the encoder's internal buffer (JSON),
// copied into the buffered writer and flushed once, so the steady-state
// fan-out path performs zero allocations and one syscall per response
// instead of allocating an encoder buffer each time.
type connWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder // writes through bw
	binary bool          // outbound framing: binary frames vs NDJSON
	// dl arms the write deadline before each write when the underlying
	// writer is a real connection and timeout is positive; a stalled
	// reader then errors the write instead of wedging the forwarders.
	dl      writeDeadliner
	timeout time.Duration
}

// writeDeadliner is the slice of net.Conn the write-timeout path needs;
// non-socket writers (benchmarks) simply don't implement it.
type writeDeadliner interface{ SetWriteDeadline(time.Time) error }

func newConnWriter(conn io.Writer) *connWriter {
	bw := bufio.NewWriterSize(conn, 32*1024)
	w := &connWriter{bw: bw, enc: json.NewEncoder(bw)}
	if d, ok := conn.(writeDeadliner); ok {
		w.dl = d
	}
	return w
}

// arm refreshes the write deadline; callers hold w.mu.
func (w *connWriter) arm() {
	if w.dl != nil && w.timeout > 0 {
		_ = w.dl.SetWriteDeadline(time.Now().Add(w.timeout))
	}
}

// setBinary switches outbound framing to binary frames; responses written
// before the switch were NDJSON, which the client-side reader detects per
// frame, so the transition point needs no synchronization with the peer.
func (w *connWriter) setBinary() {
	w.mu.Lock()
	w.binary = true
	w.mu.Unlock()
}

func (w *connWriter) write(r Response) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.arm()
	if w.binary {
		bp := getFrameBuf()
		b, err := appendResponseFrame(*bp, &r)
		if err != nil {
			putFrameBuf(bp)
			return err
		}
		*bp = b
		_, err = w.bw.Write(sealFrame(b))
		putFrameBuf(bp)
		if err != nil {
			return err
		}
		return w.bw.Flush()
	}
	if err := w.enc.Encode(r); err != nil {
		return err
	}
	return w.bw.Flush()
}

// writeUpdate is the fan-out hot path: in binary mode the update encodes
// straight from its simulation form into a pooled buffer — no intermediate
// Response, no string-keyed maps, no per-message allocation.
func (w *connWriter) writeUpdate(u *Update) error {
	if err := w.writeUpdateBuffered(u); err != nil {
		return err
	}
	return w.flush()
}

// writeUpdateBuffered stages one update in the connection's write buffer
// without flushing, so a same-round burst of updates costs one syscall
// when the caller flushes once at the end of the burst.
func (w *connWriter) writeUpdateBuffered(u *Update) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.arm()
	if w.binary {
		bp := getFrameBuf()
		b := appendUpdateFrame(*bp, u)
		*bp = b
		_, err := w.bw.Write(sealFrame(b))
		putFrameBuf(bp)
		return err
	}
	return w.enc.Encode(wireUpdate(*u))
}

// flush drains the write buffer to the connection.
func (w *connWriter) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.arm()
	return w.bw.Flush()
}

// traceIDOf reports a subscription's assigned causal-trace identity via
// the optional accessor every traced backend's sub implements; zero (and
// an omitted wire field) when the backend does not trace.
func traceIDOf(sub ServerSub) uint64 {
	if t, ok := sub.(interface{ TraceID() uint64 }); ok {
		return t.TraceID()
	}
	return 0
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	s.mu.Lock()
	s.nextConn++
	id := s.nextConn
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	w := newConnWriter(conn)
	w.timeout = s.cfg.WriteTimeout
	brownout, _ := s.gw.(BrownoutReporter)
	// The reader's buffer bounds a JSON request line the way the old
	// Scanner cap did; binary frames are bounded by maxFramePayload.
	br := bufio.NewReaderSize(conn, 1<<20)
	var scratch []byte // reused binary frame payload buffer

	var sess ServerSession
	// named tracks whether the client claimed the session with an explicit
	// hello: named sessions detach (stay resumable) on disconnect, while
	// anonymous auto-registered ones are torn down.
	var named bool
	// ensure registers lazily so a HELLO can pick the session name first.
	ensure := func(name string) error {
		if sess != nil {
			return nil
		}
		if name == "" {
			name = fmt.Sprintf("conn-%d", id)
		}
		var err error
		sess, err = s.gw.RegisterSession(name)
		return err
	}
	defer func() {
		if sess == nil {
			return
		}
		if named {
			// Keep the session resumable: updates park in the resume rings
			// until the client re-attaches or the idle reaper collects it.
			_ = sess.Detach()
			return
		}
		// Tear the session down at the next tick; the forwarders end
		// when their subscriptions close.
		_ = sess.CloseAsync()
	}()

	// forward pumps one subscription's updates to the connection until it
	// closes, then reports the reason. An Advance delivers a whole round of
	// epochs at once, so the ready burst is staged into the write buffer
	// and flushed with one syscall instead of one per message.
	forward := func(sub ServerSub) {
		defer s.wg.Done()
		ch := sub.Updates()
		for u := range ch {
			for more := true; more; {
				if w.writeUpdateBuffered(&u) != nil {
					conn.Close()
					return
				}
				select {
				case next, ok := <-ch:
					if !ok {
						more = false
					} else {
						u = next
					}
				default:
					more = false
				}
			}
			if w.flush() != nil {
				conn.Close()
				return
			}
		}
		// The closed notice must reach the client or the connection is
		// useless: an evicted slow consumer whose socket is already full
		// times this write out too, and leaving the conn open would park
		// the client on a silent stream until the read timeout. Sever it.
		if w.write(Response{Type: TypeClosed, Sub: sub.ID(), Reason: sub.Reason().String()}) != nil {
			conn.Close()
		}
	}

	for {
		// Refresh the read deadline per request; a silent client is cut
		// loose (and, if named, left resumable) instead of pinning a
		// handler goroutine forever.
		if s.cfg.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		// Auto-detect framing per request: a FrameMagic first byte is a
		// binary frame, anything else is a JSON line. The two interleave
		// freely on one connection.
		first, err := br.ReadByte()
		if err != nil {
			return
		}
		var req Request
		if first == FrameMagic {
			scratch, err = readBinaryFrame(br, scratch)
			if err != nil {
				return
			}
			req, err = decodeRequestPayload(scratch)
			if err != nil {
				_ = w.write(Response{Type: TypeError, Error: fmt.Sprintf("bad request: %v", err)})
				continue
			}
			// A binary-speaking client reads binary; answer in kind unless
			// the operator pinned JSON for debugging.
			if !s.cfg.ForceJSON {
				w.setBinary()
			}
		} else {
			if first == '\n' {
				continue
			}
			line, err := br.ReadSlice('\n')
			if err != nil {
				return
			}
			// Rebuild the full line: the first byte was consumed by the
			// framing peek. json.Unmarshal needs it back in place, so keep
			// a tiny prefix copy rather than a whole-line copy.
			full := append(append(scratch[:0], first), line...)
			scratch = full
			if err := json.Unmarshal(full, &req); err != nil {
				_ = w.write(Response{Type: TypeError, Error: fmt.Sprintf("bad request: %v", err)})
				continue
			}
		}
		fail := func(err error) {
			r := Response{Type: TypeError, Tag: req.Tag, Error: err.Error()}
			// Overload rejections are typed on the wire: the client's
			// retry policy keys on the code and the retry-after floor.
			if errors.Is(err, resilience.ErrOverloaded) {
				r.Code = CodeOverloaded
				r.RetryAfterMS = resilience.RetryAfterHint(err).Milliseconds()
			}
			_ = w.write(r)
		}
		switch req.Op {
		case OpHello:
			// Wire negotiation: the hello response goes out in the current
			// encoding (JSON for a JSON-speaking client — the handshake
			// stays human-readable), then the stream switches.
			upgrade := req.Wire == "binary" && !s.cfg.ForceJSON
			if req.Token != "" {
				// Re-attach: claim a detached session by name + token and
				// report the resumable streams with their cursors.
				if sess != nil {
					fail(fmt.Errorf("connection already has session %q", sess.Name()))
					continue
				}
				se, infos, err := s.gw.AttachSession(req.Client, req.Token)
				if err != nil {
					fail(err)
					continue
				}
				sess, named = se, true
				subs := make([]WireResumeInfo, 0, len(infos))
				for _, in := range infos {
					subs = append(subs, WireResumeInfo{
						Sub:       in.ID,
						QueryID:   in.QueryID,
						Canonical: in.Key,
						LastSeq:   in.LastSeq,
					})
				}
				_ = w.write(Response{Type: TypeHello, Tag: req.Tag, Session: sess.Name(), Token: sess.Token(), Subs: subs})
				if upgrade {
					w.setBinary()
				}
				continue
			}
			if err := ensure(req.Client); err != nil {
				fail(err)
				continue
			}
			named = true
			_ = w.write(Response{Type: TypeHello, Tag: req.Tag, Session: sess.Name(), Token: sess.Token()})
			if upgrade {
				w.setBinary()
			}
		case OpResume:
			if sess == nil {
				fail(fmt.Errorf("no session"))
				continue
			}
			sub, err := sess.Resume(req.Sub, req.After)
			if err != nil {
				fail(err)
				continue
			}
			s.wg.Add(1)
			go forward(sub)
			_ = w.write(Response{
				Type:      TypeSubscribed,
				Tag:       req.Tag,
				Sub:       sub.ID(),
				QueryID:   sub.QueryID(),
				Shared:    sub.Shared(),
				Canonical: sub.Key(),
				Resumed:   true,
				TraceID:   traceIDOf(sub),
			})
		case OpPing:
			_ = w.write(Response{Type: TypePong, Tag: req.Tag})
		case OpSubscribe:
			// At the ladder's shed rung, reject before even staging: the
			// mailbox is the resource brownout protects.
			if brownout != nil && brownout.BrownoutLevel() >= resilience.LevelShed {
				fail(&resilience.OverloadError{RetryAfter: DefaultShedRetryAfter, Reason: "brownout"})
				continue
			}
			if err := ensure(""); err != nil {
				fail(err)
				continue
			}
			var sub ServerSub
			var err error
			budget := time.Duration(req.DeadlineMS) * time.Millisecond
			if ts, ok := sess.(TracedSubscriber); ok {
				// The traced path subsumes the budget path: trace and
				// deadline ride down the tier chain together.
				sub, err = ts.SubscribeQueryTraced(req.Query, budget, req.TraceID)
			} else if bs, ok := sess.(BudgetSubscriber); ok && req.DeadlineMS > 0 {
				sub, err = bs.SubscribeQueryBudget(req.Query, budget)
			} else {
				sub, err = sess.SubscribeQuery(req.Query)
			}
			if err != nil {
				fail(err)
				continue
			}
			s.wg.Add(1)
			go forward(sub)
			_ = w.write(Response{
				Type:      TypeSubscribed,
				Tag:       req.Tag,
				Sub:       sub.ID(),
				QueryID:   sub.QueryID(),
				Shared:    sub.Shared(),
				Canonical: sub.Key(),
				TraceID:   traceIDOf(sub),
			})
		case OpUnsubscribe:
			if sess == nil {
				fail(fmt.Errorf("no session"))
				continue
			}
			if err := sess.Unsubscribe(req.Sub); err != nil {
				fail(err)
				continue
			}
			// The forwarder emits the TypeClosed line when the channel
			// drains; nothing more to say here.
		case OpStats:
			st, now, err := s.gw.ServeStats()
			if err != nil {
				fail(err)
				continue
			}
			gm := st.Metrics()
			_ = w.write(Response{
				Type:  TypeStats,
				Tag:   req.Tag,
				AtMS:  time.Duration(now).Milliseconds(),
				Stats: &gm,
			})
		default:
			fail(fmt.Errorf("unknown op %q", req.Op))
		}
	}
}
