package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// DefaultReadTimeout is the default per-read deadline on client
// connections. It is deliberately several heartbeat intervals long.
const DefaultReadTimeout = 75 * time.Second

// ServerConfig parametrizes Serve.
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. ":7443" or "127.0.0.1:0".
	Addr string
	// TickEvery is the wall-clock pacer period: every tick the server
	// commits staged client commands and advances the simulation by
	// Quantum of virtual time. Default 250ms.
	TickEvery time.Duration
	// Quantum is the virtual time simulated per tick. Default 2048ms (one
	// minimum epoch), i.e. the simulation runs ~8x faster than real time
	// at the defaults.
	Quantum time.Duration
	// ReadTimeout is the server-side read deadline, refreshed before every
	// request line: a connection that stays silent longer is dropped (its
	// named session detaches and stays resumable until the idle reaper
	// runs). Clients keep quiet periods alive with OpPing heartbeats.
	// DefaultReadTimeout if zero; negative disables the deadline.
	ReadTimeout time.Duration
}

// Server serves the gateway's newline-delimited JSON protocol over TCP and
// drives the simulation with a wall-clock pacer.
type Server struct {
	gw  *Gateway
	ln  net.Listener
	cfg ServerConfig

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu       sync.Mutex
	nextConn int64
	conns    map[net.Conn]struct{}
}

// NewServer starts listening and pacing. The caller owns the Gateway and
// should Close it after Server.Close.
func NewServer(gw *Gateway, cfg ServerConfig) (*Server, error) {
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 250 * time.Millisecond
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 2048 * time.Millisecond
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{gw: gw, ln: ln, cfg: cfg, stop: make(chan struct{}), conns: make(map[net.Conn]struct{})}
	s.wg.Add(2)
	go s.pace()
	go s.accept()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the pacer and listener, severs live connections, and waits
// for the handlers to finish. It does not close the Gateway.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// pace drives virtual time: one Advance per wall tick. Client commands
// that arrived since the previous tick commit at the next one, so a
// subscribe observed over TCP is live within TickEvery.
func (s *Server) pace() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if _, err := s.gw.Advance(s.cfg.Quantum); err != nil {
				return
			}
		}
	}
}

func (s *Server) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// connWriter serializes response lines from the request handler and the
// per-subscription forwarders onto one connection.
type connWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func (w *connWriter) write(r Response) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enc.Encode(r)
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	s.mu.Lock()
	s.nextConn++
	id := s.nextConn
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	w := &connWriter{enc: json.NewEncoder(conn)}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	var sess *Session
	// named tracks whether the client claimed the session with an explicit
	// hello: named sessions detach (stay resumable) on disconnect, while
	// anonymous auto-registered ones are torn down.
	var named bool
	// ensure registers lazily so a HELLO can pick the session name first.
	ensure := func(name string) error {
		if sess != nil {
			return nil
		}
		if name == "" {
			name = fmt.Sprintf("conn-%d", id)
		}
		var err error
		sess, err = s.gw.Register(name)
		return err
	}
	defer func() {
		if sess == nil {
			return
		}
		if named {
			// Keep the session resumable: updates park in the resume rings
			// until the client re-attaches or the idle reaper collects it.
			_ = sess.Detach()
			return
		}
		// Tear the session down at the next tick; the forwarders end
		// when their subscriptions close.
		if t, err := sess.CloseAsync(); err == nil {
			go func() { _, _ = t.Wait() }()
		}
	}()

	// forward pumps one subscription's updates to the connection until it
	// closes, then reports the reason.
	forward := func(sub *Subscription) {
		defer s.wg.Done()
		for u := range sub.Updates() {
			if w.write(wireUpdate(u)) != nil {
				conn.Close()
				return
			}
		}
		_ = w.write(Response{Type: TypeClosed, Sub: sub.ID(), Reason: sub.Reason().String()})
	}

	for {
		// Refresh the read deadline per request line; a silent client is
		// cut loose (and, if named, left resumable) instead of pinning a
		// handler goroutine forever.
		if s.cfg.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		if !sc.Scan() {
			return
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			_ = w.write(Response{Type: TypeError, Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		fail := func(err error) {
			_ = w.write(Response{Type: TypeError, Tag: req.Tag, Error: err.Error()})
		}
		switch req.Op {
		case OpHello:
			if req.Token != "" {
				// Re-attach: claim a detached session by name + token and
				// report the resumable streams with their cursors.
				if sess != nil {
					fail(fmt.Errorf("connection already has session %q", sess.Name()))
					continue
				}
				se, infos, err := s.gw.Attach(req.Client, req.Token)
				if err != nil {
					fail(err)
					continue
				}
				sess, named = se, true
				subs := make([]WireResumeInfo, 0, len(infos))
				for _, in := range infos {
					subs = append(subs, WireResumeInfo{
						Sub:       in.ID,
						QueryID:   in.QueryID,
						Canonical: in.Key,
						LastSeq:   in.LastSeq,
					})
				}
				_ = w.write(Response{Type: TypeHello, Tag: req.Tag, Session: sess.Name(), Token: sess.Token(), Subs: subs})
				continue
			}
			if err := ensure(req.Client); err != nil {
				fail(err)
				continue
			}
			named = true
			_ = w.write(Response{Type: TypeHello, Tag: req.Tag, Session: sess.Name(), Token: sess.Token()})
		case OpResume:
			if sess == nil {
				fail(fmt.Errorf("no session"))
				continue
			}
			sub, err := sess.Resume(req.Sub, req.After)
			if err != nil {
				fail(err)
				continue
			}
			s.wg.Add(1)
			go forward(sub)
			_ = w.write(Response{
				Type:      TypeSubscribed,
				Tag:       req.Tag,
				Sub:       sub.ID(),
				QueryID:   sub.QueryID(),
				Shared:    sub.Shared(),
				Canonical: sub.Key(),
				Resumed:   true,
			})
		case OpPing:
			_ = w.write(Response{Type: TypePong, Tag: req.Tag})
		case OpSubscribe:
			if err := ensure(""); err != nil {
				fail(err)
				continue
			}
			sub, err := sess.SubscribeQuery(req.Query)
			if err != nil {
				fail(err)
				continue
			}
			s.wg.Add(1)
			go forward(sub)
			_ = w.write(Response{
				Type:      TypeSubscribed,
				Tag:       req.Tag,
				Sub:       sub.ID(),
				QueryID:   sub.QueryID(),
				Shared:    sub.Shared(),
				Canonical: sub.Key(),
			})
		case OpUnsubscribe:
			if sess == nil {
				fail(fmt.Errorf("no session"))
				continue
			}
			if err := sess.Unsubscribe(req.Sub); err != nil {
				fail(err)
				continue
			}
			// The forwarder emits the TypeClosed line when the channel
			// drains; nothing more to say here.
		case OpStats:
			sn, err := s.gw.statsAndNow()
			if err != nil {
				fail(err)
				continue
			}
			gm := sn.stats.Metrics()
			_ = w.write(Response{
				Type:  TypeStats,
				Tag:   req.Tag,
				AtMS:  time.Duration(sn.now).Milliseconds(),
				Stats: &gm,
			})
		default:
			fail(fmt.Errorf("unknown op %q", req.Op))
		}
	}
}
