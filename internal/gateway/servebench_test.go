package gateway

import (
	"strings"
	"testing"
)

// TestServeBenchReportShape runs the suite (testing.Benchmark self-tunes,
// so this takes a few seconds) and checks the acceptance-bar properties:
// binary at least 5x faster than JSON on the fan-out path, and at most 2
// heap allocations per delivered message.
func TestServeBenchReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("serve bench suite is slow; skipped in -short")
	}
	rep, err := RunServeBench(ServeBenchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"encode/binary", "encode/json", "fanout/binary", "fanout/json",
		"fanout/traced", "fanout/burst", "wal/binary", "wal/json", "dedup/interned",
		"dedup/string", "overload/first-result-unloaded", "overload/p99-under-herd"}
	if len(rep.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), len(want))
	}
	for i, name := range want {
		if rep.Rows[i].Name != name {
			t.Fatalf("row %d = %q, want %q", i, rep.Rows[i].Name, name)
		}
		if rep.Rows[i].NsPerOp <= 0 {
			t.Fatalf("row %q has non-positive ns/op", name)
		}
	}
	if rep.BinarySpeedup < 5 {
		t.Errorf("binary speedup %.2fx, acceptance bar is 5x", rep.BinarySpeedup)
	}
	if rep.AllocsPerMessage > 2 {
		t.Errorf("allocs per delivered message %.2f, acceptance bar is 2", rep.AllocsPerMessage)
	}
	// Flush batching: a burst of burstN same-round updates must hit the
	// connection as ~one write, not one per update.
	if rep.FlushesPerBurst <= 0 || rep.FlushesPerBurst > 1.5 {
		t.Errorf("flushes per %d-update burst = %.2f, want ~1", burstN, rep.FlushesPerBurst)
	}
	// Overload: shedding must cost the herd's tail some rounds (ratio > 1)
	// but stay within the acceptance bar of 4x the unloaded latency.
	if rep.OverloadP99Ratio <= 1 || rep.OverloadP99Ratio > 4 {
		t.Errorf("overload p99 ratio = %.2fx, want in (1, 4]", rep.OverloadP99Ratio)
	}
	// Tracing: stamping trace trailers may cost at most 5% fan-out
	// throughput and zero extra allocations per delivered message. Race
	// instrumentation adds per-op overhead that distorts the fine-grained
	// ratio, so the 5% bound (and the self-comparison that re-checks it)
	// only holds in a non-race build; CI's bench-check gate runs without
	// race.
	maxTracing := 1.05
	if raceEnabled {
		maxTracing = 1.5
	}
	if rep.TracingOverheadRatio <= 0 || rep.TracingOverheadRatio > maxTracing {
		t.Errorf("tracing overhead ratio = %.3fx, want in (0, %.2f]", rep.TracingOverheadRatio, maxTracing)
	}
	if rep.TracedAllocsPerMessage > rep.AllocsPerMessage+0.1 {
		t.Errorf("traced allocs/message %.2f exceeds untraced %.2f",
			rep.TracedAllocsPerMessage, rep.AllocsPerMessage)
	}
	// Self-comparison passes the gate.
	if !raceEnabled {
		if bad := CompareServeBench(rep, rep, 0.10); len(bad) != 0 {
			t.Fatalf("report fails comparison against itself: %v", bad)
		}
	}
	if s := rep.String(); !strings.Contains(s, "fanout/binary") {
		t.Fatalf("String() missing rows:\n%s", s)
	}
}

// TestCompareServeBenchCatchesRegressions doctors a current report in each
// gated dimension and checks the comparator flags it — the property the CI
// gate depends on.
func TestCompareServeBenchCatchesRegressions(t *testing.T) {
	baseline := &ServeBenchReport{
		Rows: []ServeBenchRow{
			{Name: "encode/binary", NsPerOp: 1000, AllocsPerOp: 0},
			{Name: "encode/json", NsPerOp: 9000, AllocsPerOp: 40},
			{Name: "fanout/binary", NsPerOp: 2000, AllocsPerOp: 0, MsgsPerSec: 4e6},
			{Name: "fanout/json", NsPerOp: 20000, AllocsPerOp: 300, MsgsPerSec: 4e5},
		},
		BinarySpeedup:    10,
		AllocsPerMessage: 0,
	}
	clone := func() *ServeBenchReport {
		c := *baseline
		c.Rows = append([]ServeBenchRow(nil), baseline.Rows...)
		return &c
	}

	if bad := CompareServeBench(baseline, clone(), 0.10); len(bad) != 0 {
		t.Fatalf("identical reports flagged: %v", bad)
	}

	// Within tolerance: 8% speedup loss passes a 10% gate.
	ok := clone()
	ok.BinarySpeedup = 9.2
	if bad := CompareServeBench(baseline, ok, 0.10); len(bad) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", bad)
	}

	// Throughput regression: speedup collapses below baseline*(1-tol).
	slow := clone()
	slow.BinarySpeedup = 6
	bad := CompareServeBench(baseline, slow, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "binary_speedup") {
		t.Fatalf("speedup regression not flagged correctly: %v", bad)
	}

	// Allocation regression per message: 1 alloc/msg over a 0 baseline is
	// beyond the half-allocation slack.
	leaky := clone()
	leaky.AllocsPerMessage = 1
	bad = CompareServeBench(baseline, leaky, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "allocs_per_message") {
		t.Fatalf("allocs/message regression not flagged correctly: %v", bad)
	}

	// Absolute bound: even a baseline that itself regressed doesn't excuse
	// exceeding 2 allocs per delivered message.
	badBase := clone()
	badBase.AllocsPerMessage = 3
	worse := clone()
	worse.AllocsPerMessage = 3
	bad = CompareServeBench(badBase, worse, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "absolute bound") {
		t.Fatalf("absolute allocs bound not enforced: %v", bad)
	}

	// Per-row allocation regression on a binary row.
	rowLeak := clone()
	rowLeak.Rows[2].AllocsPerOp = 8
	bad = CompareServeBench(baseline, rowLeak, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "fanout/binary allocs/op") {
		t.Fatalf("per-row allocs regression not flagged correctly: %v", bad)
	}

	// JSON rows are comparison context, not gated.
	jsonDrift := clone()
	jsonDrift.Rows[3].AllocsPerOp = 9000
	if bad := CompareServeBench(baseline, jsonDrift, 0.10); len(bad) != 0 {
		t.Fatalf("non-binary row drift flagged: %v", bad)
	}

	// Overload starvation: the herd's p99 blowing past 4x the unloaded
	// first-result latency trips the absolute gate even though the
	// baseline predates the gauge.
	starved := clone()
	starved.OverloadP99Ratio = 7
	bad = CompareServeBench(baseline, starved, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "overload_p99_ratio") {
		t.Fatalf("overload starvation not flagged correctly: %v", bad)
	}

	// Tracing cost blowing past 5% of untraced fan-out throughput trips
	// the absolute gate even against a pre-tracing baseline.
	costly := clone()
	costly.TracingOverheadRatio = 1.2
	bad = CompareServeBench(baseline, costly, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "tracing_overhead_ratio") {
		t.Fatalf("tracing overhead regression not flagged correctly: %v", bad)
	}

	// The trace trailer allocating (traced path above the untraced one)
	// trips its own gate.
	tracedLeak := clone()
	tracedLeak.TracingOverheadRatio = 1.0
	tracedLeak.TracedAllocsPerMessage = 1
	bad = CompareServeBench(baseline, tracedLeak, 0.10)
	if len(bad) != 1 || !strings.Contains(bad[0], "traced_allocs_per_message") {
		t.Fatalf("traced allocation regression not flagged correctly: %v", bad)
	}

	// Rows new in current (no baseline entry) pass through ungated.
	grown := clone()
	grown.Rows = append(grown.Rows, ServeBenchRow{Name: "netload/binary", MsgsPerSec: 1e5})
	if bad := CompareServeBench(baseline, grown, 0.10); len(bad) != 0 {
		t.Fatalf("new row flagged: %v", bad)
	}
}
