package gateway

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/topology"
)

// The overload rows come from a deterministic admission storm run entirely
// in virtual time: a herd of subscribers slams a gateway whose staging
// mailbox is bounded, shed subscribers retry at the next round boundary
// (the in-process analogue of honoring the wire retry-after hint), and
// every client's subscribe-to-first-result latency is counted in Advance
// rounds. No wall clock enters, so the resulting gauges are exactly
// reproducible on any machine and safe to gate in CI.
const (
	overloadHerdClients   = 24
	overloadHerdMaxStaged = 8
	overloadHerdQuantum   = 8192 * time.Millisecond
	overloadHerdRounds    = 64
)

// overloadBenchResult carries the scenario's two virtual latencies: the
// first-result latency of a single unloaded subscriber, and the p99
// first-result latency across the herd squeezed through the bounded
// mailbox. Their ratio is the gated gauge — shedding is allowed to delay
// the herd's tail, never to starve it.
type overloadBenchResult struct {
	Unloaded time.Duration
	HerdP99  time.Duration
}

func runOverloadBench() (*overloadBenchResult, error) {
	base, err := overloadFirstResults(1, 0)
	if err != nil {
		return nil, fmt.Errorf("overload bench (unloaded): %w", err)
	}
	herd, err := overloadFirstResults(overloadHerdClients, overloadHerdMaxStaged)
	if err != nil {
		return nil, fmt.Errorf("overload bench (herd): %w", err)
	}
	sort.Slice(herd, func(i, j int) bool { return herd[i] < herd[j] })
	return &overloadBenchResult{
		Unloaded: base[0],
		HerdP99:  herd[(len(herd)*99+99)/100-1],
	}, nil
}

// overloadFirstResults runs clients concurrent subscribers against a
// gateway whose staging mailbox holds at most maxStaged commands
// (0 = unbounded) and returns each client's subscribe-to-first-result
// latency in virtual time. A shed client re-subscribes after the next
// Advance, so a client admitted in retry wave k pays k extra rounds —
// exactly the delay admission control is supposed to convert overload
// into.
func overloadFirstResults(clients, maxStaged int) ([]time.Duration, error) {
	topo, err := topology.PaperGrid(2)
	if err != nil {
		return nil, err
	}
	gw, err := New(Config{
		Sim: network.Config{
			Topo:   topo,
			Scheme: network.TTMQO,
			Seed:   1,
		},
		MaxStaged:    maxStaged,
		SessionQuota: clients + 1,
		Rate:         1 << 20,
		Burst:        1 << 20,
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close()
	sess, err := gw.Register("overload-bench")
	if err != nil {
		return nil, err
	}

	q := query.MustParse("SELECT light EPOCH DURATION 8192ms")
	type benchClient struct {
		tk      *Ticket
		sub     *Subscription
		latency time.Duration
		done    bool
	}
	cls := make([]benchClient, clients)
	subscribe := func(c *benchClient) error {
		tk, err := sess.SubscribeAsync(q)
		if err != nil {
			if errors.Is(err, resilience.ErrOverloaded) {
				return nil // shed at enqueue; retry next round
			}
			return err
		}
		c.tk = tk
		return nil
	}
	for i := range cls {
		if err := subscribe(&cls[i]); err != nil {
			return nil, err
		}
	}

	for round := 1; round <= overloadHerdRounds; round++ {
		if _, err := gw.Advance(overloadHerdQuantum); err != nil {
			return nil, err
		}
		now := time.Duration(round) * overloadHerdQuantum
		remaining := 0
		for i := range cls {
			c := &cls[i]
			if c.done {
				continue
			}
			// The Advance command trails every subscribe on the gateway's
			// mailbox, so by now each outstanding ticket has either
			// committed or been shed — Wait cannot block across rounds.
			if c.tk != nil && c.sub == nil {
				sub, err := c.tk.Wait()
				c.tk = nil
				switch {
				case err == nil:
					c.sub = sub
				case !errors.Is(err, resilience.ErrOverloaded):
					return nil, err
				}
			}
			if c.sub != nil {
				select {
				case _, ok := <-c.sub.Updates():
					if ok {
						c.done = true
						c.latency = now
					}
				default:
				}
			}
			if !c.done {
				remaining++
				if c.tk == nil && c.sub == nil {
					if err := subscribe(c); err != nil {
						return nil, err
					}
				}
			}
		}
		if remaining == 0 {
			break
		}
	}

	out := make([]time.Duration, 0, clients)
	for i := range cls {
		if !cls[i].done {
			return nil, fmt.Errorf("client %d starved after %d rounds (maxStaged %d)",
				i, overloadHerdRounds, maxStaged)
		}
		out = append(out, cls[i].latency)
	}
	return out, nil
}
