package node

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// forkTopo: BS at origin with two level-1 parents P1 (node 1) and P2
// (node 2), and a level-2 source S (node 3) in range of both parents but
// not of the BS. P1 has the better link to S.
func forkTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New([]topology.Point{
		{X: 0, Y: 0},    // BS
		{X: 40, Y: 12},  // P1
		{X: 40, Y: -25}, // P2
		{X: 72, Y: 0},   // S
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Level(3); got != 2 {
		t.Fatalf("S level = %d, want 2", got)
	}
	if len(topo.UpperNeighbors(3)) != 2 {
		t.Fatalf("S upper neighbors = %v, want both parents", topo.UpperNeighbors(3))
	}
	return topo
}

// splitSource gives P1 data for query 1 only and P2 data for query 2 only,
// while S matches both — forcing the multicast split at S.
type splitSource struct{}

func (splitSource) Reading(id topology.NodeID, a field.Attr, _ sim.Time) float64 {
	switch a {
	case field.AttrNodeID:
		return float64(id)
	case field.AttrLight: // query 1 wants light >= 500
		if id == 1 || id == 3 {
			return 900
		}
		return 100
	case field.AttrTemp: // query 2 wants temp >= 50
		if id == 2 || id == 3 {
			return 90
		}
		return 10
	default:
		return 0
	}
}

func postSplitQueries(r *rig) {
	q1 := query.MustParse("SELECT light WHERE light >= 500 EPOCH DURATION 4096")
	q1.ID = 1
	q2 := query.MustParse("SELECT temp WHERE temp >= 50 EPOCH DURATION 4096")
	q2.ID = 2
	r.flood(q1, 4096*time.Millisecond)
	r.flood(q2, 4096*time.Millisecond)
}

func TestMulticastSplitsAcrossParents(t *testing.T) {
	topo := forkTopo(t)
	r := newRig(t, topo, InNetwork(), splitSource{})
	postSplitQueries(r)
	r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(2*time.Second))

	// S's shared message serves both queries, but no single parent has data
	// for both: one multicast with per-destination subsets. Each parent
	// must forward only its own subset of S's row.
	fromS := 0
	for _, m := range r.atBS {
		if m.Origin == 3 {
			fromS++
			if len(m.QIDs) != 1 {
				t.Fatalf("relayed subset serves %v, want exactly one query", m.QIDs)
			}
		}
	}
	if fromS != 2 {
		t.Fatalf("S's row arrived %d times, want once per query via different parents", fromS)
	}
	// The multicast itself: exactly one result transmission from S.
	if got := r.coll.MessagesFrom("result", 3); got != 1 {
		t.Fatalf("S transmitted %d result messages, want 1 multicast", got)
	}
}

func TestNoMulticastFallsBackToUnicasts(t *testing.T) {
	topo := forkTopo(t)
	p := InNetwork()
	p.Multicast = false
	r := newRig(t, topo, p, splitSource{})
	postSplitQueries(r)
	r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(2*time.Second))
	// Without multicast the split costs S two unicasts.
	if got := r.coll.MessagesFrom("result", 3); got != 2 {
		t.Fatalf("S transmitted %d result messages, want 2 unicasts", got)
	}
}

func TestLateAggregateForwardedUnmerged(t *testing.T) {
	// Chain BS—1—2. Node 1's slot for an epoch passes, then a partial for
	// that epoch arrives from node 2 (simulated by direct injection): node 1
	// must forward it immediately rather than merge into a dead buffer.
	topo := chain3(t)
	r := newRig(t, topo, InNetwork(), field.UniformField{N: 3})
	q := query.MustParse("SELECT MAX(light) EPOCH DURATION 4096")
	q.ID = 1
	r.flood(q, 4096*time.Millisecond)
	// Run past the first epoch entirely.
	r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(2*time.Second))
	delivered := len(r.atBS)

	// Inject a late partial for the long-past first epoch from node 2.
	st := query.NewAggState(query.Agg{Op: query.Max, Attr: field.AttrLight})
	st.Add(123)
	late := &ResultMsg{
		EpochT: sim.Time(4096 * time.Millisecond),
		QIDs:   []query.ID{1},
		States: []QueryAggState{{QID: 1, State: st}},
	}
	r.engine.After(0, func() {
		r.medium.Send(&radio.Message{
			Kind:    radio.KindResult,
			Src:     2,
			Dests:   []topology.NodeID{1},
			Bytes:   resultMsgBytes(late),
			Payload: late,
		})
	})
	r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(4*time.Second))
	if len(r.atBS) != delivered+1 {
		t.Fatalf("late partial not forwarded: %d -> %d messages at BS", delivered, len(r.atBS))
	}
	got := r.atBS[len(r.atBS)-1]
	if v, _ := got.States[0].State.Result(); v != 123 {
		t.Fatalf("late partial mutated: %v", got.States)
	}
}

func TestRerouteCapStopsLoops(t *testing.T) {
	// All parents dead: the reroute cap must stop traffic rather than loop.
	topo := forkTopo(t)
	r := newRig(t, topo, InNetwork(), splitSource{})
	postSplitQueries(r)
	r.engine.Run(2 * time.Second)
	// Kill both parents before the first epoch.
	r.nodes[1].SetDown(true)
	r.nodes[2].SetDown(true)
	r.engine.Run(60 * time.Second)
	if len(r.atBS) != 0 {
		t.Fatalf("results arrived through dead parents: %d", len(r.atBS))
	}
	// Bounded traffic: S retries each epoch's message at most MaxReroutes
	// times; ~15 epochs × (1 + MaxReroutes) is the ceiling.
	if got := r.coll.MessagesFrom("result", 3); got > 16*(1+MaxReroutes) {
		t.Fatalf("reroute loop: S sent %d result messages", got)
	}
}

func TestRerouteExhaustionTracesDrops(t *testing.T) {
	// A permanently dead parent region: every abandoned result must be
	// attributable in the trace as a drop event naming the exhausted budget,
	// and only the stranded source may emit them.
	topo := forkTopo(t)
	r := newRig(t, topo, InNetwork(), splitSource{})
	postSplitQueries(r)
	r.engine.Run(2 * time.Second)
	r.nodes[1].SetDown(true)
	r.nodes[2].SetDown(true)
	r.engine.Run(60 * time.Second)

	var drops []trace.Event
	for _, e := range r.trace.Events() {
		if e.Kind == trace.KindDrop {
			drops = append(drops, e)
		}
	}
	if len(drops) == 0 {
		t.Fatal("no drop events traced for a dead parent region")
	}
	want := fmt.Sprintf("reroutes=%d", MaxReroutes)
	for _, e := range drops {
		if e.Node != 3 {
			t.Fatalf("drop traced at node %d, want only the source (3): %v", e.Node, e)
		}
		if !strings.Contains(e.Detail, want) {
			t.Fatalf("drop event %v does not name the exhausted budget %q", e, want)
		}
	}
	// Bounded abandonment: at most one drop per multicast leg (S splits
	// each epoch across its two parents) — no amplification loop.
	fires := 0
	for _, e := range r.trace.Events() {
		if e.Kind == trace.KindFire && e.Node == 3 {
			fires++
		}
	}
	if fires == 0 || len(drops) > 2*fires {
		t.Fatalf("drops=%d fires=%d: more abandonments than multicast legs", len(drops), fires)
	}
}

func TestSuspicionClearsOnRecovery(t *testing.T) {
	topo := forkTopo(t)
	r := newRig(t, topo, InNetwork(), splitSource{})
	postSplitQueries(r)
	r.engine.Run(2 * time.Second)
	r.nodes[1].SetDown(true)
	r.engine.Run(20 * time.Second)
	beforeRevive := len(r.atBS)
	if beforeRevive == 0 {
		t.Fatal("failover via P2 should keep some results flowing")
	}
	r.nodes[1].SetDown(false)
	r.engine.Run(80 * time.Second)
	if len(r.atBS) <= beforeRevive {
		t.Fatal("no results after revival")
	}
	// P1 must eventually carry traffic again (suspicion cleared by hearing
	// its transmissions).
	if r.coll.MessagesFrom("result", 1) == 0 {
		t.Fatal("revived parent never reused")
	}
}
