package node

import (
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topology"
)

// stepSource returns per-node values that switch at a configured time —
// used to exercise sleep → wake transitions.
type stepSource struct {
	switchAt sim.Time
	before   map[topology.NodeID]float64
	after    map[topology.NodeID]float64
}

func (s stepSource) Reading(id topology.NodeID, a field.Attr, t sim.Time) float64 {
	if a == field.AttrNodeID {
		return float64(id)
	}
	if a != field.AttrLight {
		return 0
	}
	if t < s.switchAt {
		return s.before[id]
	}
	return s.after[id]
}

func TestWakeBroadcastWhenDataAppears(t *testing.T) {
	topo := chain3(t)
	// Both nodes start below the threshold (they will sleep); node 2's
	// light rises above it after 60s.
	src := stepSource{
		switchAt: sim.Time(60 * time.Second),
		before:   map[topology.NodeID]float64{1: 100, 2: 100},
		after:    map[topology.NodeID]float64{1: 100, 2: 900},
	}
	r := newRig(t, topo, InNetwork(), src)
	q := query.MustParse("SELECT light WHERE light >= 500 EPOCH DURATION 2048")
	q.ID = 1
	r.flood(q, 2048*time.Millisecond)
	r.engine.Run(55 * time.Second)
	if !r.nodes[1].Asleep() || !r.nodes[2].Asleep() {
		t.Fatal("both nodes should be asleep before the switch")
	}
	r.engine.Run(120 * time.Second)
	if r.nodes[2].Asleep() {
		t.Fatal("node 2 should have woken when its data appeared")
	}
	if got := r.coll.MessagesOf("wake"); got == 0 {
		t.Fatal("waking with data must broadcast a wake message")
	}
	if len(r.atBS) == 0 {
		t.Fatal("node 2's rows should flow after waking")
	}
}

func TestNodeWindowedViaRig(t *testing.T) {
	topo := chain3(t)
	r := newRig(t, topo, InNetwork(), field.UniformField{N: 3})
	q := query.MustParse("SELECT WINAVG(light, 4, 2) EPOCH DURATION 2048")
	q.ID = 1
	r.flood(q, sim.Time(2*2048*time.Millisecond))
	r.engine.Run(30 * time.Second)
	if len(r.atBS) == 0 {
		t.Fatal("no windowed reports at base station")
	}
	for _, m := range r.atBS {
		// Uniform field: node 2's light is constant 1000, so every window
		// aggregate equals 1000.
		if m.Origin == 2 && m.Row[field.AttrLight] != 1000 {
			t.Fatalf("window value = %f", m.Row[field.AttrLight])
		}
		if m.EpochT%sim.Time(2*2048*time.Millisecond) != 0 {
			t.Fatalf("report at %v off the slide schedule", m.EpochT)
		}
	}
}

func TestBeaconDigestRepairViaRig(t *testing.T) {
	topo := chain3(t)
	engine := sim.NewEngine()
	coll := metrics.NewCollector(topo.Size())
	rng := sim.NewRand(3)
	medium := radio.New(engine, topo, coll, rng.Fork(0), radio.Config{})
	nodes := make(map[topology.NodeID]*Node)
	for i := 1; i < topo.Size(); i++ {
		id := topology.NodeID(i)
		nodes[id] = New(Config{
			ID: id, Topo: topo, Engine: engine, Medium: medium,
			Source: field.UniformField{N: 3}, Policy: Baseline(),
			MaintenanceInterval: 10 * time.Second,
			Rand:                rng.Fork(int64(i)),
		})
	}
	q := query.MustParse("SELECT light EPOCH DURATION 4096")
	q.ID = 1
	// Node 2 is down during the flood.
	nodes[2].SetDown(true)
	medium.Send(&radio.Message{
		Kind: radio.KindQuery, Src: topology.BaseStation,
		Bytes:   queryMsgBytes(q),
		Payload: &QueryMsg{Q: q, Start: 4096 * time.Millisecond},
	})
	engine.Run(3 * time.Second)
	if len(nodes[2].Queries()) != 0 {
		t.Fatal("down node must miss the flood")
	}
	nodes[2].SetDown(false)
	engine.Run(60 * time.Second)
	if len(nodes[2].Queries()) != 1 {
		t.Fatal("beacon digest repair failed")
	}
	if coll.MessagesOf("beacon") == 0 {
		t.Fatal("beacons should have been sent")
	}
}

func TestSendAggStatesClassSplit(t *testing.T) {
	// Two aggregation queries with identical predicates merge nowhere here
	// (no tier 1 in the rig); at a relay their partial states differ in
	// contributing sets, so the shared-message classes must split.
	topo := chain3(t)
	r := newRig(t, topo, InNetwork(), field.UniformField{N: 3})
	// q1 over everything; q2 only matches node 2 (light=1000).
	q1 := query.MustParse("SELECT MAX(light) EPOCH DURATION 4096")
	q1.ID = 1
	q2 := query.MustParse("SELECT MAX(light) WHERE light >= 900 EPOCH DURATION 4096")
	q2.ID = 2
	r.flood(q1, 4096*time.Millisecond)
	r.flood(q2, 4096*time.Millisecond)
	r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(time.Second))

	// At node 1: q1's state has count 2 (own + node 2), q2's has count 1 —
	// different partials ⇒ two messages at the BS.
	perQID := map[query.ID]int{}
	for _, m := range r.atBS {
		for _, qid := range m.QIDs {
			perQID[qid]++
		}
		for _, st := range m.States {
			switch st.QID {
			case 1:
				if st.State.Count != 2 {
					t.Fatalf("q1 count = %d, want 2", st.State.Count)
				}
			case 2:
				if st.State.Count != 1 {
					t.Fatalf("q2 count = %d, want 1", st.State.Count)
				}
			}
		}
	}
	if perQID[1] != 1 || perQID[2] != 1 {
		t.Fatalf("messages per query = %v", perQID)
	}
}

func TestFiresAtBeforeStart(t *testing.T) {
	topo := chain3(t)
	r := newRig(t, topo, InNetwork(), field.UniformField{N: 3})
	q := query.MustParse("SELECT light EPOCH DURATION 2048")
	q.ID = 1
	// Start far in the future: the aligned clock must not fire it early.
	r.flood(q, sim.Time(20*2048*time.Millisecond))
	r.engine.Run(30 * time.Second)
	if len(r.atBS) != 0 {
		t.Fatalf("query fired before its start: %d messages", len(r.atBS))
	}
	r.engine.Run(60 * time.Second)
	if len(r.atBS) == 0 {
		t.Fatal("query never started")
	}
}
