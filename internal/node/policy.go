// Package node implements the sensor-node runtime: epoch scheduling, sample
// acquisition, result generation, in-network aggregation and routing. The
// tier-2 in-network optimizations of §3.2 — sharing over time (GCD-aligned
// epochs with shared sampling), sharing over space (query-aware dynamic DAG
// routing with multicast), shared/packed result messages, and sleep mode —
// are switchable policies, so the same runtime executes the paper's baseline
// (unmodified TinyDB behaviour) and every ablation in between.
package node

import "time"

// Policy selects the tier-2 behaviours of a node. The zero value is the
// TinyDB baseline: independent per-query epochs, fixed link-quality routing
// tree, one message per query, no sleeping.
type Policy struct {
	// AlignedEpochs snaps every query's epochs to multiples of its duration
	// (§3.2.1 "sharing over time"): queries with the same duration sample
	// together, and a single GCD clock drives the node.
	AlignedEpochs bool
	// QueryAwareDAG replaces the fixed routing tree with per-message parent
	// selection among all upper-level neighbors, preferring neighbors that
	// hold data for the same queries (§3.2.2 "sharing over space").
	QueryAwareDAG bool
	// SharedMessages packs one result message for all queries a reading or
	// partial aggregate serves, instead of one message per query.
	SharedMessages bool
	// Multicast allows a single multicast transmission when different
	// queries are best served by different parents; without it the node
	// falls back to one unicast per parent. Only meaningful with
	// QueryAwareDAG.
	Multicast bool
	// Sleep lets nodes whose readings satisfy no query suspend sampling,
	// result generation and maintenance beacons. Only meaningful with
	// QueryAwareDAG.
	Sleep bool
	// SRT prunes the dissemination of node-id-based queries with TinyDB's
	// Semantic Routing Tree (§3.2.2: "if the query is a region-based query
	// or a node-id based query, the set of answer nodes are known in
	// advance, and more efficient techniques such as SRT can be used").
	// SRT is a TinyDB facility, so it is on in the baseline too.
	SRT bool
}

// InNetwork is the full §3.2 policy set.
func InNetwork() Policy {
	return Policy{
		AlignedEpochs:  true,
		QueryAwareDAG:  true,
		SharedMessages: true,
		Multicast:      true,
		Sleep:          true,
		SRT:            true,
	}
}

// Baseline is the TinyDB single-query behaviour (the comparison baseline of
// §4.1). SRT is part of TinyDB and stays on.
func Baseline() Policy { return Policy{SRT: true} }

// Timing constants of the node runtime.
const (
	// SlotTime staggers transmissions by level within an epoch: a node at
	// level l sends its own results at fire + (maxDepth−l)·SlotTime, so
	// children transmit before parents and partial aggregates can merge on
	// the way up (TinyDB's epoch schedule).
	SlotTime = 200 * time.Millisecond
	// StartGuard delays a query's first epoch so the propagation flood
	// finishes before sampling begins.
	StartGuard = 500 * time.Millisecond
	// SleepCheck is how long a node sleeps before re-evaluating its
	// readings ("wake up after a predefined time", §3.2.2).
	SleepCheck = 8192 * time.Millisecond
	// SleepAfterIdle is how long a node tolerates having no own data and
	// relaying nothing before it goes to sleep. Time-based (rather than
	// firing-count-based) so the behaviour is identical under aligned and
	// independent epoch scheduling.
	SleepAfterIdle = 16384 * time.Millisecond
	// KnowledgeTTL bounds how long an overheard "neighbor has data for
	// query q" observation stays valid, in multiples of the query's epoch.
	KnowledgeTTL = 3
	// DeadSuspicionTTL is how long a neighbor stays routing-blacklisted
	// after a unicast to it went unacknowledged; hearing from it clears the
	// suspicion immediately.
	DeadSuspicionTTL = 60 * time.Second
	// MaxReroutes caps link-failure reroutes per message.
	MaxReroutes = 3
)
