package node

import (
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestSRTPrunesDissemination(t *testing.T) {
	// Chain BS—1—2: a query for nodeid = 1 must not reach (or be forwarded
	// by) node 2, whose subtree is {2}.
	topo := chain3(t)
	r := newRig(t, topo, Baseline(), field.UniformField{N: 3})
	q := query.MustParse("SELECT nodeid WHERE nodeid = 1 EPOCH DURATION 4096")
	q.ID = 1
	r.flood(q, 4096*time.Millisecond)
	r.engine.Run(2 * time.Second)

	if got := r.nodes[1].Queries(); len(got) != 1 {
		t.Fatalf("node 1 must install: %v", got)
	}
	if got := r.nodes[2].Queries(); len(got) != 0 {
		t.Fatalf("node 2 must be pruned: %v", got)
	}
	// BS + node 1 rebroadcast; node 2 stays silent.
	if got := r.coll.MessagesOf("query"); got != 2 {
		t.Fatalf("query messages = %d, want 2", got)
	}

	// The pruned node also swallows the abort silently.
	r.abort(1)
	r.engine.Run(4 * time.Second)
	if got := r.coll.MessagesOf("abort"); got != 2 {
		t.Fatalf("abort messages = %d, want 2 (BS + node 1)", got)
	}
}

func TestSRTOffFloodsEverywhere(t *testing.T) {
	topo := chain3(t)
	p := Baseline()
	p.SRT = false
	r := newRig(t, topo, p, field.UniformField{N: 3})
	q := query.MustParse("SELECT nodeid WHERE nodeid = 1 EPOCH DURATION 4096")
	q.ID = 1
	r.flood(q, 4096*time.Millisecond)
	r.engine.Run(2 * time.Second)
	if got := r.nodes[2].Queries(); len(got) != 1 {
		t.Fatalf("without SRT node 2 installs: %v", got)
	}
	if got := r.coll.MessagesOf("query"); got != 3 {
		t.Fatalf("query messages = %d, want 3", got)
	}
}

func TestSRTValueQueriesUnaffected(t *testing.T) {
	// Value-based queries must still flood ("for a value-based query,
	// flooding is necessary", §3.2.2).
	topo := chain3(t)
	r := newRig(t, topo, Baseline(), field.UniformField{N: 3})
	q := query.MustParse("SELECT light WHERE light > 900 EPOCH DURATION 4096")
	q.ID = 1
	r.flood(q, 4096*time.Millisecond)
	r.engine.Run(2 * time.Second)
	for id, n := range r.nodes {
		if len(n.Queries()) != 1 {
			t.Fatalf("node %d must install a value-based query", id)
		}
	}
}

func TestSRTResultsStillCorrect(t *testing.T) {
	// Grid: nodeid <= 3 with and without SRT must deliver the same rows to
	// the base station.
	topo, err := topology.PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(srt bool) map[topology.NodeID]bool {
		p := Baseline()
		p.SRT = srt
		r := newRig(t, topo, p, field.UniformField{N: topo.Size()})
		q := query.MustParse("SELECT nodeid WHERE nodeid >= 1 AND nodeid <= 3 EPOCH DURATION 4096")
		q.ID = 1
		r.flood(q, 4096*time.Millisecond)
		r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(2*time.Second))
		got := make(map[topology.NodeID]bool)
		for _, m := range r.atBS {
			got[m.Origin] = true
		}
		return got
	}
	with := run(true)
	without := run(false)
	if len(with) != 3 || len(without) != 3 {
		t.Fatalf("rows: with=%v without=%v", with, without)
	}
	for id := range without {
		if !with[id] {
			t.Fatalf("SRT lost node %d's row", id)
		}
	}
}

func TestSubtreeIntervals(t *testing.T) {
	topo := chain3(t)
	cases := []struct {
		id     topology.NodeID
		lo, hi topology.NodeID
	}{
		{0, 0, 2},
		{1, 1, 2},
		{2, 2, 2},
	}
	for _, c := range cases {
		lo, hi := topo.SubtreeInterval(c.id)
		if lo != c.lo || hi != c.hi {
			t.Errorf("subtree(%d) = [%d,%d], want [%d,%d]", c.id, lo, hi, c.lo, c.hi)
		}
	}

	grid, err := topology.PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	// Root covers everything; every node's interval contains itself and is
	// within its parent's.
	if lo, hi := grid.SubtreeInterval(0); lo != 0 || hi != topology.NodeID(grid.Size()-1) {
		t.Fatalf("root subtree = [%d,%d]", lo, hi)
	}
	for i := 1; i < grid.Size(); i++ {
		id := topology.NodeID(i)
		lo, hi := grid.SubtreeInterval(id)
		if id < lo || id > hi {
			t.Fatalf("node %d outside own subtree [%d,%d]", id, lo, hi)
		}
		plo, phi := grid.SubtreeInterval(grid.TreeParent(id))
		if lo < plo || hi > phi {
			t.Fatalf("subtree(%d)=[%d,%d] escapes parent [%d,%d]", id, lo, hi, plo, phi)
		}
	}
}
