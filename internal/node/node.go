package node

import (
	"time"

	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Config wires a Node into a simulation.
type Config struct {
	ID     topology.NodeID
	Topo   *topology.Topology
	Engine *sim.Engine
	Medium *radio.Medium
	Source field.Source
	Policy Policy
	// MaintenanceInterval is the period of network-maintenance beacons
	// (§4.1 counts them); zero disables maintenance traffic.
	MaintenanceInterval time.Duration
	// Rand provides the node's jitter stream.
	Rand *sim.Rand
	// Metrics, when set, receives sensing-activity accounting (sample
	// counts for the energy model).
	Metrics *metrics.Collector
	// Trace, when set, records this node's lifecycle events.
	Trace *trace.Buffer
}

// installed tracks one query running on this node.
type installed struct {
	q     query.Query
	start sim.Time
	timer sim.Handle // per-query timer (independent mode only)
	// rings holds per-attribute sample history for windowed aggregates.
	rings map[field.Attr]*query.WindowRing
}

// pendKey identifies an aggregation assembly buffer.
type pendKey struct {
	qid    query.ID
	epochT sim.Time
}

// Node is one simulated sensor mote.
type Node struct {
	cfg     Config
	id      topology.NodeID
	level   int
	queries map[query.ID]*installed

	// tick is the shared GCD clock (aligned mode).
	tick sim.Handle

	// knowledge[nb][qid] is when we last learned that neighbor nb has data
	// for query qid (piggybacked during propagation, overheard from result
	// traffic, or announced by a wake message).
	knowledge map[topology.NodeID]map[query.ID]sim.Time

	// pending accumulates partial aggregates per (query, epoch) until this
	// node's transmission slot; pendingOwn marks the buffers this node's
	// own reading contributed to.
	pending    map[pendKey][]query.AggState
	pendingOwn map[pendKey]bool

	// aborted tombstones query IDs whose abortion this node has seen, so a
	// query flood arriving after (or racing) its abort flood cannot
	// reinstall the query and set off a query/abort ping-pong storm. Query
	// IDs are never reused, so tombstones are permanent.
	aborted map[query.ID]bool
	// pruned records queries this node's SRT index excluded, so repeated
	// neighbor rebroadcasts are ignored and their aborts need no forward.
	pruned map[query.ID]bool

	asleep       bool
	lastUseful   sim.Time // last instant with own data or addressed traffic
	sawAddressed bool
	wakeCheck    sim.Handle
	maintTimer   sim.Handle

	// down models node failure: the radio is off and all activity is
	// suspended until SetDown(false).
	down bool
	// suspectDead records neighbors whose last unicast went unacknowledged;
	// routing avoids them until they are heard from again or the suspicion
	// expires.
	suspectDead map[topology.NodeID]sim.Time
}

// New creates the node and attaches it to the medium. The base station is
// not a Node; the network package handles node 0 itself.
func New(cfg Config) *Node {
	n := &Node{
		cfg:         cfg,
		id:          cfg.ID,
		level:       cfg.Topo.Level(cfg.ID),
		queries:     make(map[query.ID]*installed),
		knowledge:   make(map[topology.NodeID]map[query.ID]sim.Time),
		pending:     make(map[pendKey][]query.AggState),
		pendingOwn:  make(map[pendKey]bool),
		aborted:     make(map[query.ID]bool),
		pruned:      make(map[query.ID]bool),
		suspectDead: make(map[topology.NodeID]sim.Time),
	}
	cfg.Medium.SetHandler(n.id, n.onReceive)
	if cfg.MaintenanceInterval > 0 {
		// Stagger first beacons across the interval by node ID.
		offset := cfg.MaintenanceInterval * time.Duration(n.id) / time.Duration(cfg.Topo.Size())
		n.maintTimer = cfg.Engine.After(cfg.MaintenanceInterval+offset, n.beacon)
	}
	return n
}

// installedIDs returns the installed query IDs in ascending order; loops
// whose side effects reach the radio must use it instead of ranging over
// the n.queries map directly.
func (n *Node) installedIDs() []query.ID {
	set := make(map[query.ID]bool, len(n.queries))
	for id := range n.queries {
		set[id] = true
	}
	return sortedIDs(set)
}

// Queries returns the IDs of the queries currently installed (tests).
func (n *Node) Queries() []query.ID {
	return n.installedIDs()
}

// Asleep reports whether the node is in sleep mode (tests).
func (n *Node) Asleep() bool { return n.asleep }

// Down reports whether the node is failed.
func (n *Node) Down() bool { return n.down }

// SetDown fails or revives the node. While down the radio is off (nothing
// is heard or sent, unicasts to it go unacknowledged) and all sampling and
// timers are suppressed. A revived node keeps its installed queries but has
// missed any floods that happened meanwhile; the beacon anti-entropy digest
// repairs that within a maintenance interval.
func (n *Node) SetDown(down bool) {
	if down == n.down {
		return
	}
	n.down = down
	if down {
		n.cfg.Trace.Emitf(n.cfg.Engine.Now(), trace.KindFail, n.id, "")
		n.cfg.Medium.SetHandler(n.id, nil)
		// Stale partial aggregates and window histories die with the outage.
		n.pending = make(map[pendKey][]query.AggState)
		n.pendingOwn = make(map[pendKey]bool)
		for _, inst := range n.queries {
			inst.rings = nil
		}
		return
	}
	n.cfg.Trace.Emitf(n.cfg.Engine.Now(), trace.KindRevive, n.id, "")
	n.cfg.Medium.SetHandler(n.id, n.onReceive)
	n.asleep = false
	n.lastUseful = n.cfg.Engine.Now()
	if n.cfg.Policy.AlignedEpochs {
		n.rescheduleTick()
	}
}

// --- Receive path --------------------------------------------------------

func (n *Node) onReceive(d radio.Delivery) {
	if n.down {
		return // radio off; defensive — the handler is detached while down
	}
	// Hearing anything from a neighbor clears its death suspicion.
	delete(n.suspectDead, d.Msg.Src)
	switch msg := d.Msg.Payload.(type) {
	case *QueryMsg:
		n.onQuery(d.Msg.Src, msg)
	case *AbortMsg:
		n.onAbort(msg)
	case *WakeMsg:
		n.learnMany(d.Msg.Src, msg.QIDs)
	case *BeaconMsg:
		n.onBeacon(msg)
	case *ResultMsg:
		n.onResult(d, msg)
	}
}

// onBeacon runs the anti-entropy repair over the sender's installed-query
// digest: re-send a missing query's propagation message, or the abort of a
// query the sender should have dropped. One repair per beacon bounds the
// traffic.
func (n *Node) onBeacon(bm *BeaconMsg) {
	digest := make(map[query.ID]bool, len(bm.QIDs))
	for _, qid := range bm.QIDs {
		digest[qid] = true
	}
	// The sender still runs a query we know is aborted: repair with the
	// abort flood (tombstoned here, so re-sending is loop-free).
	for _, qid := range bm.QIDs {
		if n.aborted[qid] {
			n.cfg.Medium.Send(&radio.Message{
				Kind:    radio.KindAbort,
				Src:     n.id,
				Bytes:   abortMsgBytes(),
				Payload: &AbortMsg{QID: qid},
			})
			return
		}
	}
	// The sender is missing a query we run: re-send its propagation
	// message (the receiver's dup/SRT logic applies as usual). Node-id
	// based queries are skipped under SRT — the sender may have pruned
	// them deliberately, which a digest cannot distinguish from loss.
	for _, qid := range n.installedIDs() {
		inst := n.queries[qid]
		if n.cfg.Policy.SRT {
			if _, nodeIDBased := inst.q.PredFor(field.AttrNodeID); nodeIDBased {
				continue
			}
		}
		if !digest[inst.q.ID] {
			n.cfg.Medium.Send(&radio.Message{
				Kind:    radio.KindQuery,
				Src:     n.id,
				Bytes:   queryMsgBytes(inst.q),
				Payload: &QueryMsg{Q: inst.q, Start: inst.start, SenderHasData: n.matchesNow(inst.q)},
			})
			return
		}
	}
}

// onQuery installs a newly flooded query and rebroadcasts it once,
// piggybacking whether this node currently has data for it (§3.2.2 query
// propagation phase). Control traffic is processed even while asleep
// (low-power listening wakes the radio for long-preamble floods).
func (n *Node) onQuery(src topology.NodeID, qm *QueryMsg) {
	if n.aborted[qm.Q.ID] || n.pruned[qm.Q.ID] {
		return
	}
	if qm.SenderHasData {
		n.learn(src, qm.Q.ID)
	}
	if _, dup := n.queries[qm.Q.ID]; dup {
		return
	}
	// SRT pruning: a node-id-based query whose ID range misses this node's
	// entire routing-tree subtree has no answer node below here; neither
	// install nor forward it. Answer nodes still hear the query from their
	// own tree ancestors, which all overlap the range.
	if n.cfg.Policy.SRT && n.srtPrunes(qm.Q) {
		n.pruned[qm.Q.ID] = true
		return
	}
	inst := &installed{q: qm.Q, start: qm.Start}
	n.queries[qm.Q.ID] = inst
	n.scheduleQuery(inst)
	n.cfg.Trace.Emitf(n.cfg.Engine.Now(), trace.KindInstall, n.id, "q%d start=%v", qm.Q.ID, qm.Start)

	hasData := n.matchesNow(qm.Q)
	fwd := &QueryMsg{Q: qm.Q, Start: qm.Start, SenderHasData: hasData, Hops: qm.Hops + 1}
	n.cfg.Medium.Send(&radio.Message{
		Kind:    radio.KindQuery,
		Src:     n.id,
		Bytes:   queryMsgBytes(qm.Q),
		Payload: fwd,
	})
}

// srtPrunes reports whether the query's node-id predicate excludes this
// node's entire subtree.
func (n *Node) srtPrunes(q query.Query) bool {
	p, ok := q.PredFor(field.AttrNodeID)
	if !ok {
		return false
	}
	lo, hi := n.cfg.Topo.SubtreeInterval(n.id)
	return p.Max < float64(lo) || p.Min > float64(hi)
}

func (n *Node) onAbort(am *AbortMsg) {
	if n.aborted[am.QID] {
		return
	}
	if n.pruned[am.QID] {
		// The query never entered this subtree, so no one below needs the
		// abort either; tombstone silently.
		n.aborted[am.QID] = true
		delete(n.pruned, am.QID)
		return
	}
	// Tombstone first: even a node that never saw the query flood must
	// rebroadcast the abort once (the abort flood may be ahead of the query
	// flood) and must refuse a late installation.
	n.aborted[am.QID] = true
	if inst, ok := n.queries[am.QID]; ok {
		delete(n.queries, am.QID)
		if inst.timer.Pending() {
			inst.timer.Cancel()
		}
		n.cfg.Trace.Emitf(n.cfg.Engine.Now(), trace.KindAbort, n.id, "q%d", am.QID)
	}
	for k := range n.pending {
		if k.qid == am.QID {
			delete(n.pending, k)
			delete(n.pendingOwn, k)
		}
	}
	if len(n.queries) == 0 && n.tick.Pending() {
		n.tick.Cancel()
	}
	n.cfg.Medium.Send(&radio.Message{
		Kind:    radio.KindAbort,
		Src:     n.id,
		Bytes:   abortMsgBytes(),
		Payload: am,
	})
}

// onResult handles result traffic: addressed messages are relayed (or
// merged into this node's partial aggregates); overheard messages refresh
// neighbor knowledge — the broadcast nature of the channel at work.
func (n *Node) onResult(d radio.Delivery, msg *ResultMsg) {
	if !d.Addressed {
		if !n.asleep && n.cfg.Policy.QueryAwareDAG {
			// A neighbor whose own reading contributed to this message has
			// data to share for those queries; pure relaying teaches us
			// nothing about the neighbor's data.
			n.learnMany(d.Msg.Src, msg.OwnQIDs)
		}
		return
	}
	// Addressed traffic marks this node as an active relay and wakes it.
	n.sawAddressed = true
	if n.asleep {
		n.resume()
	}
	n.learnMany(d.Msg.Src, msg.OwnQIDs)

	mine := msg.QueriesFor(n.id)
	if len(mine) == 0 {
		return
	}
	if msg.IsAggregation() {
		n.relayAggregation(msg, mine)
		return
	}
	n.relayAcquisition(msg, mine)
}

// relayAcquisition forwards an origin row toward the base station, trimmed
// to the attributes its remaining queries need.
func (n *Node) relayAcquisition(msg *ResultMsg, mine []query.ID) {
	row := msg.Row
	if trimmed := n.trimRow(msg.Row, mine); trimmed != nil {
		row = trimmed
	}
	out := &ResultMsg{EpochT: msg.EpochT, QIDs: mine, Origin: msg.Origin, Row: row}
	n.route(out)
}

// relayAggregation merges incoming partial states into this node's pending
// buffers when its own slot for the epoch is still ahead; otherwise (late
// arrival, or epochs this node is not running) the states are forwarded
// unmerged — less aggregation, same answer at the base station.
func (n *Node) relayAggregation(msg *ResultMsg, mine []query.ID) {
	mineSet := make(map[query.ID]bool, len(mine))
	for _, id := range mine {
		mineSet[id] = true
	}
	var late []QueryAggState
	for _, qs := range msg.States {
		if !mineSet[qs.QID] {
			continue
		}
		inst, have := n.queries[qs.QID]
		if have && n.slotTime(msg.EpochT) > n.cfg.Engine.Now() && n.firesAt(inst, msg.EpochT) {
			k := pendKey{qid: qs.QID, epochT: msg.EpochT}
			n.pending[k] = mergeState(n.pending[k], qs.State)
			continue
		}
		late = append(late, qs)
	}
	if len(late) == 0 {
		return
	}
	perQuery := make(map[query.ID][]query.AggState)
	for _, qs := range late {
		perQuery[qs.QID] = append(perQuery[qs.QID], qs.State)
	}
	n.sendAggStates(msg.EpochT, perQuery, nil)
}

// --- Epoch scheduling -----------------------------------------------------

// scheduleQuery arms the timers for a fresh installation.
func (n *Node) scheduleQuery(inst *installed) {
	if n.cfg.Policy.AlignedEpochs {
		n.rescheduleTick()
		return
	}
	// Independent mode: a per-query clock with the query's own phase. A
	// late (re)installation — e.g. the anti-entropy repair after an outage
	// — catches up to the next firing on the original phase.
	at := inst.start
	if now := n.cfg.Engine.Now(); at <= now {
		missed := (now-at)/sim.Time(inst.q.Epoch) + 1
		at += missed * sim.Time(inst.q.Epoch)
	}
	inst.timer = n.cfg.Engine.Schedule(at, func() { n.fireOne(inst) })
}

// fireOne drives one query in independent mode.
func (n *Node) fireOne(inst *installed) {
	if _, live := n.queries[inst.q.ID]; !live {
		return
	}
	t := n.cfg.Engine.Now()
	inst.timer = n.cfg.Engine.After(inst.q.Epoch, func() { n.fireOne(inst) })
	if n.asleep || n.down {
		return
	}
	n.processFiring(t, []*installed{inst})
}

// gcdEpoch returns the GCD clock period over installed queries.
func (n *Node) gcdEpoch() time.Duration {
	var g time.Duration
	for _, inst := range n.queries {
		g = query.EpochGCD(g, inst.q.Epoch)
	}
	return g
}

// rescheduleTick (re)arms the shared clock at the next GCD grid point
// (§3.2.1: "we (re)set the node's clock to fire at the GCD of the epoch
// durations of all the queries").
func (n *Node) rescheduleTick() {
	if n.tick.Pending() {
		n.tick.Cancel()
	}
	g := n.gcdEpoch()
	if g <= 0 {
		return
	}
	now := n.cfg.Engine.Now()
	next := (now/g + 1) * g
	n.tick = n.cfg.Engine.Schedule(next, n.onTick)
}

// onTick fires every GCD period; queries whose epoch divides the current
// instant sample together ("a shared data acquisition is conducted for all
// such q_i").
func (n *Node) onTick() {
	t := n.cfg.Engine.Now()
	n.rescheduleTick()
	if n.asleep || n.down {
		return
	}
	// Iterate in sorted query order: without SharedMessages each firing
	// query emits its own message, and emission order feeds the medium's
	// contention model, so map order would leak into the results.
	var firing []*installed
	for _, qid := range n.installedIDs() {
		if inst := n.queries[qid]; n.firesAt(inst, t) {
			firing = append(firing, inst)
		}
	}
	if len(firing) == 0 {
		return
	}
	n.processFiring(t, firing)
}

// firesAt reports whether a query produces an epoch at time t.
func (n *Node) firesAt(inst *installed, t sim.Time) bool {
	if t < inst.start {
		return false
	}
	if n.cfg.Policy.AlignedEpochs {
		return t%inst.q.Epoch == 0
	}
	return (t-inst.start)%inst.q.Epoch == 0
}

// processFiring samples once for all firing queries and generates result
// traffic at this node's transmission slot.
func (n *Node) processFiring(t sim.Time, firing []*installed) {
	n.cfg.Trace.Emitf(t, trace.KindFire, n.id, "%d queries", len(firing))
	// Shared data acquisition: one sample covers every firing query.
	attrSet := make(map[field.Attr]bool)
	for _, inst := range firing {
		for _, a := range inst.q.SampledAttrs() {
			attrSet[a] = true
		}
	}
	sample := make(map[field.Attr]float64, len(attrSet))
	for a := range attrSet {
		sample[a] = n.cfg.Source.Reading(n.id, a, t)
	}
	if n.cfg.Metrics != nil {
		n.cfg.Metrics.CountSamples(n.id, len(attrSet))
	}

	var acqMatched []*installed
	var aggFiring []*installed
	var winReport []*installed
	hadOwnData := false
	for _, inst := range firing {
		matched := inst.q.MatchesRow(sample)
		if inst.q.IsWindowed() {
			// The sample history advances every epoch regardless of the
			// predicate; the node reports at slide boundaries when its
			// current reading qualifies.
			if inst.rings == nil {
				inst.rings = make(map[field.Attr]*query.WindowRing, len(inst.q.Wins))
			}
			for _, w := range inst.q.Wins {
				r, ok := inst.rings[w.Attr]
				if !ok {
					r = query.NewWindowRing(w.Window)
					inst.rings[w.Attr] = r
				}
				r.Push(sample[w.Attr])
			}
			if matched && n.reportsAt(inst, t) {
				hadOwnData = true
				winReport = append(winReport, inst)
			}
			continue
		}
		if inst.q.IsAggregation() {
			aggFiring = append(aggFiring, inst)
			if matched {
				hadOwnData = true
				k := pendKey{qid: inst.q.ID, epochT: t}
				n.pendingOwn[k] = true
				var group int64
				if inst.q.GroupBy != nil {
					group = inst.q.GroupBy.Key(sample[inst.q.GroupBy.Attr])
				}
				for _, a := range inst.q.Aggs {
					st := query.NewGroupedAggState(a, group)
					st.Add(sample[a.Attr])
					n.pending[k] = mergeState(n.pending[k], st)
				}
			}
			continue
		}
		if matched {
			hadOwnData = true
			acqMatched = append(acqMatched, inst)
		}
	}

	slot := n.slotTime(t) + sim.Time(n.jitter())
	if len(acqMatched) > 0 {
		n.cfg.Engine.Schedule(slot, func() { n.sendAcquisition(t, acqMatched, sample) })
	}
	if len(winReport) > 0 {
		n.cfg.Engine.Schedule(slot, func() { n.sendWindowed(t, winReport) })
	}
	if len(aggFiring) > 0 {
		n.cfg.Engine.Schedule(slot, func() { n.finalizeAggregation(t, aggFiring) })
	}

	n.updateSleepState(hadOwnData)
}

// reportsAt reports whether a windowed query emits a result at firing t:
// every Slide epochs on the query's schedule.
func (n *Node) reportsAt(inst *installed, t sim.Time) bool {
	re := sim.Time(inst.q.ReportEvery())
	if re <= 0 {
		return false
	}
	if n.cfg.Policy.AlignedEpochs {
		return t%re == 0
	}
	return (t-inst.start)%re == 0
}

// sendWindowed emits this node's windowed-aggregate rows. Each windowed
// query sends its own message: window values are query-specific derivations,
// so cross-query packing would put conflicting values under one attribute.
func (n *Node) sendWindowed(t sim.Time, reporting []*installed) {
	for _, inst := range reporting {
		row := make(map[field.Attr]float64, len(inst.q.Wins))
		for _, w := range inst.q.Wins {
			if r, ok := inst.rings[w.Attr]; ok {
				if v, okv := r.Aggregate(w.Op); okv {
					row[w.Attr] = v
				}
			}
		}
		if len(row) == 0 {
			continue
		}
		qids := []query.ID{inst.q.ID}
		n.route(&ResultMsg{EpochT: t, QIDs: qids, Origin: n.id, Row: row, OwnQIDs: qids})
	}
}

// slotTime staggers transmissions by level: deeper nodes send earlier so
// parents can merge partial aggregates before their own slot.
func (n *Node) slotTime(epochT sim.Time) sim.Time {
	depth := n.cfg.Topo.MaxDepth()
	return epochT + sim.Time(time.Duration(depth-n.level)*SlotTime)
}

// jitter spreads same-slot transmissions across the first half of the slot
// window, a stand-in for CSMA's random access. The other half of the slot
// leaves room for the airtime and relay hops before the next level's slot.
func (n *Node) jitter() time.Duration {
	return time.Duration(n.cfg.Rand.Float64() * float64(SlotTime) * 0.5)
}

// sendAcquisition emits this node's own readings for the matched
// acquisition queries: one packed message under SharedMessages, one message
// per query otherwise (TinyDB behaviour).
func (n *Node) sendAcquisition(t sim.Time, matched []*installed, sample map[field.Attr]float64) {
	if n.cfg.Policy.SharedMessages {
		ids := make(map[query.ID]bool, len(matched))
		row := make(map[field.Attr]float64)
		for _, inst := range matched {
			ids[inst.q.ID] = true
			for _, a := range inst.q.Attrs {
				row[a] = sample[a]
			}
		}
		qids := sortedIDs(ids)
		n.route(&ResultMsg{EpochT: t, QIDs: qids, Origin: n.id, Row: row, OwnQIDs: qids})
		return
	}
	for _, inst := range matched {
		row := make(map[field.Attr]float64, len(inst.q.Attrs))
		for _, a := range inst.q.Attrs {
			row[a] = sample[a]
		}
		qids := []query.ID{inst.q.ID}
		n.route(&ResultMsg{EpochT: t, QIDs: qids, Origin: n.id, Row: row, OwnQIDs: qids})
	}
}

// finalizeAggregation flushes the pending partial aggregates of the firing
// queries at this node's slot: own reading and child contributions merged
// into one partial state record per (query, aggregate).
func (n *Node) finalizeAggregation(t sim.Time, firing []*installed) {
	perQuery := make(map[query.ID][]query.AggState)
	own := make(map[query.ID]bool)
	for _, inst := range firing {
		k := pendKey{qid: inst.q.ID, epochT: t}
		states, ok := n.pending[k]
		if !ok {
			continue
		}
		delete(n.pending, k)
		perQuery[inst.q.ID] = states
		if n.pendingOwn[k] {
			own[inst.q.ID] = true
			delete(n.pendingOwn, k)
		}
	}
	if len(perQuery) == 0 {
		return
	}
	n.sendAggStates(t, perQuery, own)
}

// sendAggStates emits partial-aggregate messages. Under SharedMessages,
// queries whose entire partial states are identical share one message
// (§3.2.2: "one data message can be packed to share among all of the
// queries whose partial aggregation value are the same"); queries with
// different partials — e.g. a node that aggregated extra children for one
// of them, as node B does in the Figure 2 walk-through — go in separate
// messages. Without SharedMessages every query gets its own message.
func (n *Node) sendAggStates(t sim.Time, perQuery map[query.ID][]query.AggState, own map[query.ID]bool) {
	ownOf := func(qids []query.ID) []query.ID {
		var out []query.ID
		for _, qid := range qids {
			if own[qid] {
				out = append(out, qid)
			}
		}
		return out
	}
	if !n.cfg.Policy.SharedMessages {
		for _, qid := range sortedKeys(perQuery) {
			qs := make([]QueryAggState, 0, len(perQuery[qid]))
			for _, st := range perQuery[qid] {
				qs = append(qs, QueryAggState{QID: qid, State: st})
			}
			qids := []query.ID{qid}
			n.route(&ResultMsg{EpochT: t, QIDs: qids, States: qs, OwnQIDs: ownOf(qids)})
		}
		return
	}
	// Partition queries into classes with identical state lists.
	type class struct {
		states []query.AggState
		qids   []query.ID
	}
	var classes []*class
	for _, qid := range sortedKeys(perQuery) {
		states := perQuery[qid]
		placed := false
		for _, c := range classes {
			if stateListsEqual(c.states, states) {
				c.qids = append(c.qids, qid)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, &class{states: states, qids: []query.ID{qid}})
		}
	}
	for _, c := range classes {
		var qs []QueryAggState
		for _, qid := range c.qids {
			for _, st := range c.states {
				qs = append(qs, QueryAggState{QID: qid, State: st})
			}
		}
		n.route(&ResultMsg{EpochT: t, QIDs: c.qids, States: qs, OwnQIDs: ownOf(c.qids)})
	}
}

// stateListsEqual reports whether two partial-state lists are identical
// (same aggregates, same partial values), i.e. packable into one message.
func stateListsEqual(a, b []query.AggState) bool {
	if len(a) != len(b) {
		return false
	}
	for _, sa := range a {
		found := false
		for _, sb := range b {
			if sa.Agg == sb.Agg {
				found = sa.SameValue(sb)
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func sortedKeys(m map[query.ID][]query.AggState) []query.ID {
	set := make(map[query.ID]bool, len(m))
	for id := range m {
		set[id] = true
	}
	return sortedIDs(set)
}

// --- Routing ---------------------------------------------------------------

// route picks the next hop(s) for a result message and transmits it. Under
// FixedTree everything unicasts to the TinyDB tree parent; under
// QueryAwareDAG the node prefers upper-level neighbors that hold data for
// the same queries, splitting across parents with one multicast when no
// single neighbor serves every query (§3.2.2 result collection phase).
func (n *Node) route(msg *ResultMsg) {
	upper := n.liveUpper()
	if len(upper) == 0 {
		return // cannot happen in a connected topology
	}
	if !n.cfg.Policy.QueryAwareDAG {
		// TinyDB parent selection by link quality; a suspected-dead parent
		// fails over to the next-best upper neighbor.
		n.transmit(msg, []topology.NodeID{upper[0]})
		return
	}
	if len(upper) == 1 || len(msg.QIDs) == 0 {
		n.transmit(msg, []topology.NodeID{upper[0]})
		return
	}

	// Score candidates by how many of the message's queries they have data
	// for; upper is ordered best-link-first, so ties favor stable links.
	now := n.cfg.Engine.Now()
	covered := func(nb topology.NodeID, qid query.ID) bool {
		seen, ok := n.knowledge[nb][qid]
		if !ok {
			return false
		}
		inst, have := n.queries[qid]
		if !have {
			return now-seen <= sim.Time(KnowledgeTTL*query.MinEpoch)
		}
		return now-seen <= sim.Time(KnowledgeTTL)*sim.Time(inst.q.Epoch)
	}
	best := upper[0]
	bestScore := 0
	for _, nb := range upper {
		score := 0
		for _, qid := range msg.QIDs {
			if covered(nb, qid) {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = nb, score
		}
	}
	if bestScore == 0 || bestScore == len(msg.QIDs) {
		n.transmit(msg, []topology.NodeID{best})
		return
	}

	// Partial coverage: greedily assign each query to a knowledgeable
	// parent; queries nobody has data for ride with the primary parent.
	assign := make(map[topology.NodeID][]query.ID)
	for _, qid := range msg.QIDs {
		dest := best
		if !covered(best, qid) {
			for _, nb := range upper {
				if covered(nb, qid) {
					dest = nb
					break
				}
			}
		}
		assign[dest] = append(assign[dest], qid)
	}
	if len(assign) == 1 || !n.cfg.Policy.Multicast {
		if len(assign) == 1 {
			n.transmit(msg, []topology.NodeID{best})
			return
		}
		// Without multicast: one unicast per parent, each with its subset.
		// Emission order affects the radio medium's contention, so iterate
		// the parents in sorted order, never in map order.
		dests := make([]topology.NodeID, 0, len(assign))
		for dest := range assign {
			dests = append(dests, dest)
		}
		sortNodeIDs(dests)
		for _, dest := range dests {
			sub := n.subsetMsg(msg, assign[dest])
			n.transmit(sub, []topology.NodeID{dest})
		}
		return
	}
	// One multicast with a per-destination query mapping in the header.
	dests := make([]topology.NodeID, 0, len(assign))
	for dest := range assign {
		dests = append(dests, dest)
	}
	sortNodeIDs(dests)
	msg.Subsets = assign
	n.transmit(msg, dests)
}

// subsetMsg projects a result message onto a subset of its queries.
func (n *Node) subsetMsg(msg *ResultMsg, qids []query.ID) *ResultMsg {
	out := &ResultMsg{EpochT: msg.EpochT, QIDs: qids, Origin: msg.Origin, Reroutes: msg.Reroutes}
	want := make(map[query.ID]bool, len(qids))
	for _, id := range qids {
		want[id] = true
	}
	for _, id := range msg.OwnQIDs {
		if want[id] {
			out.OwnQIDs = append(out.OwnQIDs, id)
		}
	}
	if msg.IsAggregation() {
		for _, qs := range msg.States {
			if want[qs.QID] {
				out.States = append(out.States, qs)
			}
		}
	} else {
		out.Row = msg.Row
		if trimmed := n.trimRow(msg.Row, qids); trimmed != nil {
			out.Row = trimmed
		}
	}
	return out
}

// trimRow reduces a row to the attributes the given queries request; nil if
// any query is unknown locally (keep everything in that case).
func (n *Node) trimRow(row map[field.Attr]float64, qids []query.ID) map[field.Attr]float64 {
	need := make(map[field.Attr]bool)
	for _, qid := range qids {
		inst, ok := n.queries[qid]
		if !ok {
			return nil
		}
		for _, a := range inst.q.RowAttrs() {
			need[a] = true
		}
	}
	out := make(map[field.Attr]float64, len(need))
	for a := range need {
		if v, ok := row[a]; ok {
			out[a] = v
		}
	}
	return out
}

// liveUpper returns the upper-level neighbors not currently suspected dead
// (best link first); if every candidate is suspected, suspicion is ignored
// — a stale blacklist must not partition the network.
func (n *Node) liveUpper() []topology.NodeID {
	upper := n.cfg.Topo.UpperNeighbors(n.id)
	now := n.cfg.Engine.Now()
	live := make([]topology.NodeID, 0, len(upper))
	for _, nb := range upper {
		if at, ok := n.suspectDead[nb]; ok && now-at < sim.Time(DeadSuspicionTTL) {
			continue
		}
		live = append(live, nb)
	}
	if len(live) == 0 {
		return upper
	}
	return live
}

func (n *Node) transmit(msg *ResultMsg, dests []topology.NodeID) {
	n.cfg.Medium.Send(&radio.Message{
		Kind:    radio.KindResult,
		Src:     n.id,
		Dests:   dests,
		Bytes:   resultMsgBytes(msg),
		Payload: msg,
		Undeliverable: func(dest topology.NodeID) {
			n.onUndeliverable(msg, dest)
		},
	})
}

// onUndeliverable is the link-layer "no ACK" signal: the destination's
// radio was off when the transmission completed. The sender blacklists the
// neighbor and reroutes the affected queries through another parent.
func (n *Node) onUndeliverable(msg *ResultMsg, dest topology.NodeID) {
	if n.down {
		return
	}
	n.suspectDead[dest] = n.cfg.Engine.Now()
	if msg.Reroutes >= MaxReroutes {
		// Reroute budget exhausted: every upper path tried and failed (a
		// permanently dead parent region). The result is abandoned — traced
		// so completeness loss is attributable — rather than looping.
		n.cfg.Trace.Emitf(n.cfg.Engine.Now(), trace.KindDrop, n.id,
			"q%v epoch=%v reroutes=%d dest=%d", msg.QIDs, time.Duration(msg.EpochT), msg.Reroutes, dest)
		return
	}
	sub := n.subsetMsg(msg, msg.QueriesFor(dest))
	if len(sub.QIDs) == 0 {
		return
	}
	sub.Reroutes = msg.Reroutes + 1
	n.route(sub)
}

// --- Sleep mode -------------------------------------------------------------

// updateSleepState implements §3.2.2's sleep rule: a node whose data
// satisfies no query and which is relaying nothing dozes off once it has
// been idle for SleepAfterIdle.
func (n *Node) updateSleepState(hadOwnData bool) {
	if !n.cfg.Policy.Sleep || !n.cfg.Policy.QueryAwareDAG {
		return
	}
	now := n.cfg.Engine.Now()
	if hadOwnData || n.sawAddressed {
		n.lastUseful = now
	}
	n.sawAddressed = false
	if !n.asleep && now-n.lastUseful >= sim.Time(SleepAfterIdle) {
		n.asleep = true
		n.wakeCheck = n.cfg.Engine.After(SleepCheck, n.onWakeCheck)
		n.cfg.Trace.Emitf(now, trace.KindSleep, n.id, "idle since %v", time.Duration(n.lastUseful))
	}
}

// onWakeCheck re-evaluates a sleeping node's readings: if they now satisfy
// a query, the node wakes and broadcasts a one-hop wake message so lower
// neighbors reconsider it as a relay (§3.2.2); otherwise it keeps sleeping.
func (n *Node) onWakeCheck() {
	if !n.asleep {
		return
	}
	var matched []query.ID
	for qid, inst := range n.queries {
		if n.matchesNow(inst.q) {
			matched = append(matched, qid)
		}
	}
	if len(matched) == 0 {
		n.wakeCheck = n.cfg.Engine.After(SleepCheck, n.onWakeCheck)
		return
	}
	n.resume()
	set := make(map[query.ID]bool, len(matched))
	for _, id := range matched {
		set[id] = true
	}
	n.cfg.Medium.Send(&radio.Message{
		Kind:    radio.KindWake,
		Src:     n.id,
		Bytes:   wakeMsgBytes(len(matched)),
		Payload: &WakeMsg{QIDs: sortedIDs(set)},
	})
}

// resume leaves sleep mode; when waking because data reappeared the caller
// sends the wake broadcast.
func (n *Node) resume() {
	if n.asleep {
		n.cfg.Trace.Emitf(n.cfg.Engine.Now(), trace.KindWake, n.id, "")
	}
	n.asleep = false
	n.lastUseful = n.cfg.Engine.Now()
	if n.wakeCheck.Pending() {
		n.wakeCheck.Cancel()
	}
}

// matchesNow evaluates a query's predicates against this node's current
// readings.
func (n *Node) matchesNow(q query.Query) bool {
	now := n.cfg.Engine.Now()
	vals := make(map[field.Attr]float64, len(q.Preds))
	for _, p := range q.Preds {
		vals[p.Attr] = n.cfg.Source.Reading(n.id, p.Attr, now)
	}
	return q.MatchesRow(vals)
}

// --- Maintenance -------------------------------------------------------------

// beacon emits the periodic network-maintenance message; sleeping nodes
// skip it (part of the §3.2.2 energy saving).
func (n *Node) beacon() {
	n.maintTimer = n.cfg.Engine.After(n.cfg.MaintenanceInterval, n.beacon)
	if n.asleep || n.down {
		return
	}
	digest := make(map[query.ID]bool, len(n.queries))
	for qid := range n.queries {
		digest[qid] = true
	}
	qids := sortedIDs(digest)
	n.cfg.Medium.Send(&radio.Message{
		Kind:    radio.KindBeacon,
		Src:     n.id,
		Bytes:   beaconMsgBytes(len(qids)),
		Payload: &BeaconMsg{QIDs: qids},
	})
}

// --- Knowledge --------------------------------------------------------------

func (n *Node) learn(nb topology.NodeID, qid query.ID) {
	m, ok := n.knowledge[nb]
	if !ok {
		m = make(map[query.ID]sim.Time)
		n.knowledge[nb] = m
	}
	m[qid] = n.cfg.Engine.Now()
}

func (n *Node) learnMany(nb topology.NodeID, qids []query.ID) {
	for _, qid := range qids {
		n.learn(nb, qid)
	}
}

// mergeState folds one partial into a state list; partials combine only
// within the same aggregate AND the same GROUP BY bucket.
func mergeState(states []query.AggState, st query.AggState) []query.AggState {
	for i := range states {
		if states[i].Agg == st.Agg && states[i].Group == st.Group {
			states[i].Merge(st)
			return states
		}
	}
	return append(states, st)
}

func sortNodeIDs(ids []topology.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
