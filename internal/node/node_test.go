package node

import (
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// rig is a minimal harness driving Nodes directly (without the network
// package): a base-station handler that records result messages.
type rig struct {
	engine *sim.Engine
	topo   *topology.Topology
	medium *radio.Medium
	coll   *metrics.Collector
	trace  *trace.Buffer
	nodes  map[topology.NodeID]*Node
	atBS   []*ResultMsg
}

func newRig(t *testing.T, topo *topology.Topology, p Policy, src field.Source) *rig {
	t.Helper()
	engine := sim.NewEngine()
	coll := metrics.NewCollector(topo.Size())
	rng := sim.NewRand(3)
	medium := radio.New(engine, topo, coll, rng.Fork(0), radio.Config{})
	r := &rig{engine: engine, topo: topo, medium: medium, coll: coll,
		trace: &trace.Buffer{}, nodes: make(map[topology.NodeID]*Node)}
	for i := 1; i < topo.Size(); i++ {
		id := topology.NodeID(i)
		r.nodes[id] = New(Config{
			ID: id, Topo: topo, Engine: engine, Medium: medium,
			Source: src, Policy: p, Rand: rng.Fork(int64(i)), Trace: r.trace,
		})
	}
	medium.SetHandler(topology.BaseStation, func(d radio.Delivery) {
		if !d.Addressed {
			return
		}
		if m, ok := d.Msg.Payload.(*ResultMsg); ok {
			r.atBS = append(r.atBS, m)
		}
	})
	return r
}

// flood injects a query from the base station.
func (r *rig) flood(q query.Query, start sim.Time) {
	r.medium.Send(&radio.Message{
		Kind: radio.KindQuery, Src: topology.BaseStation,
		Bytes:   queryMsgBytes(q),
		Payload: &QueryMsg{Q: q, Start: start},
	})
}

func (r *rig) abort(qid query.ID) {
	r.medium.Send(&radio.Message{
		Kind: radio.KindAbort, Src: topology.BaseStation,
		Bytes:   abortMsgBytes(),
		Payload: &AbortMsg{QID: qid},
	})
}

func chain3(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New([]topology.Point{{X: 0}, {X: 40}, {X: 80}}, 50)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestFloodInstallsAndRebroadcastsOnce(t *testing.T) {
	topo := chain3(t)
	r := newRig(t, topo, Baseline(), field.UniformField{N: 3})
	q := query.MustParse("SELECT light EPOCH DURATION 4096")
	q.ID = 1
	r.flood(q, 4096*time.Millisecond)
	r.engine.Run(2 * time.Second)
	for id, n := range r.nodes {
		if got := n.Queries(); len(got) != 1 || got[0] != 1 {
			t.Fatalf("node %d queries = %v", id, got)
		}
	}
	// BS + node1 + node2 each transmit exactly once.
	if got := r.coll.MessagesOf("query"); got != 3 {
		t.Fatalf("query messages = %d, want 3", got)
	}
}

func TestTombstoneStopsAbortQueryStorm(t *testing.T) {
	topo := chain3(t)
	r := newRig(t, topo, Baseline(), field.UniformField{N: 3})
	q := query.MustParse("SELECT light EPOCH DURATION 4096")
	q.ID = 1
	// Abort flooded immediately after the query: the floods race through
	// the network; the tombstone must keep total control traffic bounded.
	r.flood(q, 4096*time.Millisecond)
	r.abort(1)
	r.engine.Run(30 * time.Second)
	for id, n := range r.nodes {
		if got := n.Queries(); len(got) != 0 {
			t.Fatalf("node %d still has %v", id, got)
		}
	}
	total := r.coll.MessagesOf("query") + r.coll.MessagesOf("abort")
	if total > 2*(topo.Size())+2 {
		t.Fatalf("control storm: %d control messages", total)
	}
	// A re-flood of the same ID must be refused (tombstone permanence).
	r.flood(q, 8192*time.Millisecond)
	r.engine.Run(30 * time.Second)
	for id, n := range r.nodes {
		if got := n.Queries(); len(got) != 0 {
			t.Fatalf("node %d reinstalled tombstoned query: %v", id, got)
		}
	}
}

func TestIndependentPhasePreserved(t *testing.T) {
	// Baseline: a query flooded at t=1s with start 1s+epoch must fire at
	// 1s+epoch, not on the aligned grid.
	topo := chain3(t)
	r := newRig(t, topo, Baseline(), field.UniformField{N: 3})
	q := query.MustParse("SELECT light EPOCH DURATION 4096")
	q.ID = 1
	start := sim.Time(time.Second + 4096*time.Millisecond)
	r.engine.Schedule(sim.Time(time.Second), func() { r.flood(q, start) })
	r.engine.Run(20 * time.Second)
	if len(r.atBS) == 0 {
		t.Fatal("no results at base station")
	}
	for _, m := range r.atBS {
		if (m.EpochT-start)%sim.Time(4096*time.Millisecond) != 0 {
			t.Fatalf("epoch %v not on the injection phase", m.EpochT)
		}
		if m.EpochT%sim.Time(4096*time.Millisecond) == 0 {
			t.Fatalf("epoch %v unexpectedly on the aligned grid", m.EpochT)
		}
	}
}

func TestAlignedSharedSampling(t *testing.T) {
	// Two same-epoch queries under the in-network policy: one shared result
	// message per node per epoch instead of two.
	topo := chain3(t)
	r := newRig(t, topo, InNetwork(), field.UniformField{N: 3})
	q1 := query.MustParse("SELECT light EPOCH DURATION 4096")
	q1.ID = 1
	q2 := query.MustParse("SELECT temp EPOCH DURATION 4096")
	q2.ID = 2
	r.flood(q1, 4096*time.Millisecond)
	r.flood(q2, 4096*time.Millisecond)
	r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(time.Second))

	// One epoch elapsed: node2 sends 1 shared message (relayed by node1),
	// node1 sends its own + the relay. Total result messages = 3, and the
	// messages at the BS must each serve both queries.
	if got := r.coll.MessagesOf("result"); got != 3 {
		t.Fatalf("result messages = %d, want 3 (shared)", got)
	}
	for _, m := range r.atBS {
		if len(m.QIDs) != 2 {
			t.Fatalf("message serves %v, want both queries", m.QIDs)
		}
		if len(m.Row) != 2 {
			t.Fatalf("row carries %d attrs, want union of 2", len(m.Row))
		}
	}
}

func TestPerQueryMessagesInBaseline(t *testing.T) {
	topo := chain3(t)
	r := newRig(t, topo, Baseline(), field.UniformField{N: 3})
	q1 := query.MustParse("SELECT light EPOCH DURATION 4096")
	q1.ID = 1
	q2 := query.MustParse("SELECT temp EPOCH DURATION 4096")
	q2.ID = 2
	r.flood(q1, 4096*time.Millisecond)
	r.flood(q2, 4096*time.Millisecond)
	r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(time.Second))
	// Per query: node2 origin (2 msgs) + node1 relay (2) + node1 origin (2).
	if got := r.coll.MessagesOf("result"); got != 6 {
		t.Fatalf("result messages = %d, want 6 (per-query)", got)
	}
	for _, m := range r.atBS {
		if len(m.QIDs) != 1 {
			t.Fatalf("baseline message serves %v, want exactly one query", m.QIDs)
		}
	}
}

func TestInNetworkAggregationMergesEnRoute(t *testing.T) {
	// Chain BS—1—2: MAX(light) over both nodes must arrive at the BS as a
	// single message per epoch (node 2's partial merged at node 1).
	topo := chain3(t)
	r := newRig(t, topo, InNetwork(), field.UniformField{N: 3})
	q := query.MustParse("SELECT MAX(light) EPOCH DURATION 4096")
	q.ID = 1
	r.flood(q, 4096*time.Millisecond)
	r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(time.Second))
	if len(r.atBS) != 1 {
		t.Fatalf("messages at BS = %d, want 1 (merged partial)", len(r.atBS))
	}
	st := r.atBS[0].States
	if len(st) != 1 {
		t.Fatalf("states = %v", st)
	}
	v, ok := st[0].State.Result()
	if !ok {
		t.Fatal("empty state")
	}
	// UniformField over 3 nodes: light(2) = 1000 is the max.
	if v != 1000 {
		t.Fatalf("MAX = %f, want 1000", v)
	}
	if st[0].State.Count != 2 {
		t.Fatalf("count = %d, want 2 (both sensors)", st[0].State.Count)
	}
}

func TestDAGPrefersParentWithData(t *testing.T) {
	// Figure 2 topology: G (queried) must route via D (queried) instead of
	// its TinyDB parent C (not queried) once it learns D has data.
	topo, err := topology.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, topo, InNetwork(), field.UniformField{N: topo.Size()})
	// nodeid-based predicate covering D, G, H.
	q := query.MustParse("SELECT nodeid WHERE nodeid >= 4 AND nodeid <= 8 AND nodeid >= 4 EPOCH DURATION 4096")
	q.ID = 1
	// Restrict to D(4), G(7), H(8): nodeid in {4,7,8} is not an interval;
	// use >= 4 and exclude E(5), F(6) via light range instead. Simpler:
	// query nodeid >= 7 (G and H) plus D via a second query is overkill —
	// D, E, F, G, H = nodeid >= 4 matches the paper's q_i exactly.
	r.flood(q, 4096*time.Millisecond)
	r.engine.Run(sim.Time(4096*time.Millisecond) + sim.Time(2*time.Second))

	// All of D..H answered; G's message must have gone through D: D relays
	// more than its own single origin message.
	dTx := r.coll.MessagesFrom("result", topology.Fig2D)
	if dTx < 2 {
		t.Fatalf("D sent %d result messages; expected to relay G's and H's traffic", dTx)
	}
	// C must not relay: its only candidate child G diverted to D.
	if got := r.coll.MessagesFrom("result", topology.Fig2C); got != 0 {
		t.Fatalf("C sent %d result messages, want 0 (G diverted through D)", got)
	}
}

func TestSleepAndWake(t *testing.T) {
	topo := chain3(t)
	// Node 2 reads light=1000, node 1 reads 500 (UniformField over 3).
	r := newRig(t, topo, InNetwork(), field.UniformField{N: 3})
	q := query.MustParse("SELECT light WHERE light >= 900 EPOCH DURATION 2048")
	q.ID = 1
	r.flood(q, 2048*time.Millisecond)
	r.engine.Run(60 * time.Second)
	// Node 1 never matches and only relays node 2's traffic — addressed
	// traffic keeps it awake.
	if r.nodes[1].Asleep() {
		t.Fatal("active relay must not sleep")
	}
	if r.nodes[2].Asleep() {
		t.Fatal("node with data must not sleep")
	}

	// Now a query nobody matches: both nodes sleep.
	r2 := newRig(t, topo, InNetwork(), field.UniformField{N: 3})
	q2 := query.MustParse("SELECT light WHERE light >= 2000 EPOCH DURATION 2048")
	q2.ID = 1
	r2.flood(q2, 2048*time.Millisecond)
	r2.engine.Run(60 * time.Second)
	if !r2.nodes[1].Asleep() || !r2.nodes[2].Asleep() {
		t.Fatal("idle nodes must sleep")
	}
	if got := r2.coll.MessagesOf("result"); got != 0 {
		t.Fatalf("result messages = %d, want 0", got)
	}
}

func TestAbortCancelsTraffic(t *testing.T) {
	topo := chain3(t)
	r := newRig(t, topo, Baseline(), field.UniformField{N: 3})
	q := query.MustParse("SELECT light EPOCH DURATION 2048")
	q.ID = 1
	r.flood(q, 2048*time.Millisecond)
	r.engine.Run(10 * time.Second)
	r.abort(1)
	r.engine.Run(11 * time.Second)
	count := r.coll.MessagesOf("result")
	r.engine.Run(40 * time.Second)
	if got := r.coll.MessagesOf("result"); got != count {
		t.Fatalf("result traffic continued after abort: %d -> %d", count, got)
	}
}

func TestResultMsgSubsets(t *testing.T) {
	m := &ResultMsg{
		QIDs: []query.ID{1, 2, 3},
		Subsets: map[topology.NodeID][]query.ID{
			5: {1, 2},
			6: {3},
		},
	}
	if got := m.QueriesFor(5); len(got) != 2 {
		t.Fatalf("subset for 5 = %v", got)
	}
	if got := m.QueriesFor(9); got != nil {
		t.Fatalf("non-destination subset = %v", got)
	}
	m.Subsets = nil
	if got := m.QueriesFor(9); len(got) != 3 {
		t.Fatalf("nil subsets must mean all queries: %v", got)
	}
}

func TestDistinctStateGroups(t *testing.T) {
	maxAgg := query.Agg{Op: query.Max, Attr: field.AttrLight}
	s1 := query.NewAggState(maxAgg)
	s1.Add(7)
	s2 := query.NewAggState(maxAgg)
	s2.Add(7)
	s3 := query.NewAggState(maxAgg)
	s3.Add(9)
	states := []QueryAggState{
		{QID: 1, State: s1},
		{QID: 2, State: s2}, // same value as s1 → shared
		{QID: 3, State: s3},
	}
	if got := distinctStateGroups(states); got != 2 {
		t.Fatalf("distinct groups = %d, want 2", got)
	}
}

func TestMessageSizes(t *testing.T) {
	q := query.MustParse("SELECT light, temp WHERE light > 5")
	if queryMsgBytes(q) <= 0 || abortMsgBytes() <= 0 || beaconMsgBytes(2) <= 0 || wakeMsgBytes(2) <= 0 {
		t.Fatal("sizes must be positive")
	}
	shared := &ResultMsg{
		QIDs: []query.ID{1, 2},
		Row:  map[field.Attr]float64{field.AttrLight: 1, field.AttrTemp: 2},
	}
	single := &ResultMsg{
		QIDs: []query.ID{1},
		Row:  map[field.Attr]float64{field.AttrLight: 1, field.AttrTemp: 2},
	}
	if resultMsgBytes(shared) <= resultMsgBytes(single) {
		t.Fatal("shared message carries per-query tags")
	}
	// One shared message is cheaper than two per-query messages.
	if resultMsgBytes(shared) >= 2*resultMsgBytes(single) {
		t.Fatal("sharing must be cheaper than duplication")
	}
}
