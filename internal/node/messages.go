package node

import (
	"sort"

	"repro/internal/cost"
	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/topology"
)

// QueryMsg propagates a (synthetic) query through the network. Per §3.2.2's
// query propagation phase, the sender piggybacks whether its own current
// readings satisfy the query so receivers learn which upper-level neighbors
// hold data.
type QueryMsg struct {
	Q query.Query
	// Start is the network-wide time of the query's first epoch.
	Start sim.Time
	// SenderHasData piggybacks the sender's current predicate match.
	SenderHasData bool
	// Hops counts propagation depth (diagnostics).
	Hops int
}

// AbortMsg floods a query abortion.
type AbortMsg struct {
	QID query.ID
}

// BeaconMsg is the periodic network-maintenance message of §4.1. It carries
// the sender's installed query IDs as an anti-entropy digest: a neighbor
// that knows a query the sender is missing re-sends its propagation message
// (repairing nodes that were down during the flood), and a neighbor that
// knows a query in the digest was aborted re-floods the abort.
type BeaconMsg struct {
	QIDs []query.ID
}

// WakeMsg is the one-hop broadcast a waking node sends when its data starts
// satisfying queries, so lower-level neighbors consider it as a relay option
// again (§3.2.2).
type WakeMsg struct {
	// QIDs lists the queries the sender now has data for.
	QIDs []query.ID
}

// ResultMsg carries query results toward the base station. Exactly one of
// Row / States is set: acquisition messages carry one origin row, and
// aggregation messages carry partial aggregate states.
type ResultMsg struct {
	// EpochT is the network-wide fire time of the epoch the data belongs to.
	EpochT sim.Time
	// QIDs lists the (synthetic) queries this message serves. Baseline
	// (per-query) messages have exactly one entry.
	QIDs []query.ID
	// Origin is the node whose reading produced Row (acquisition only).
	Origin topology.NodeID
	// Row holds the acquired attribute values (acquisition only).
	Row map[field.Attr]float64
	// States holds partial aggregates, one per (query, aggregate) pair
	// (aggregation only).
	States []QueryAggState
	// OwnQIDs lists the queries for which the *sender's own reading*
	// contributed to this message (as opposed to pure relaying). Neighbors
	// overhear it to learn who holds data for which queries — the §3.2.2
	// knowledge behind query-aware parent selection.
	OwnQIDs []query.ID
	// Reroutes counts link-failure reroutes of this message; capped to keep
	// a partitioned network from looping traffic forever.
	Reroutes int
	// Subsets optionally maps each multicast destination to the queries it
	// is responsible for forwarding; nil means every destination forwards
	// everything (§3.2.2's packet-header query mapping).
	Subsets map[topology.NodeID][]query.ID
}

// QueryAggState ties a partial aggregate to the query it belongs to.
type QueryAggState struct {
	QID   query.ID
	State query.AggState
}

// IsAggregation reports whether the message carries partial aggregates.
func (m *ResultMsg) IsAggregation() bool { return len(m.States) > 0 }

// QueriesFor returns the queries the given receiver must forward: the
// per-destination subset when present, otherwise all of them.
func (m *ResultMsg) QueriesFor(id topology.NodeID) []query.ID {
	if m.Subsets == nil {
		return m.QIDs
	}
	return m.Subsets[id]
}

// --- On-air size model -------------------------------------------------

// queryMsgBytes sizes a propagation message: header, epoch/start fields and
// the query body (attrs, aggs, predicate ranges).
func queryMsgBytes(q query.Query) int {
	return cost.HeaderBytes + 6 +
		cost.BytesPerAttr*len(q.Attrs) +
		cost.BytesPerAgg*len(q.Aggs) +
		5*len(q.Preds)
}

// resultMsgBytes sizes a result message: header, origin/epoch fields, the
// payload (row values or aggregate states — equal-valued aggregate states
// shared between queries are carried once), per-query tags when the message
// serves several queries, and per-extra-destination addressing for
// multicast.
func resultMsgBytes(m *ResultMsg) int {
	b := cost.HeaderBytes
	if m.IsAggregation() {
		b += distinctStateGroups(m.States) * cost.BytesPerAgg
	} else {
		b += cost.BytesPerAttr * len(m.Row)
	}
	if len(m.QIDs) > 1 {
		b += cost.BytesPerQueryTag * len(m.QIDs)
	}
	if len(m.Subsets) > 1 {
		b += 2 * (len(m.Subsets) - 1)
	}
	return b
}

// distinctStateGroups counts the aggregate states that must physically
// appear in the packet: states with the same operator and identical partial
// value are transmitted once and shared among their queries (§3.2.2).
func distinctStateGroups(states []QueryAggState) int {
	n := 0
	for i := range states {
		shared := false
		for j := 0; j < i; j++ {
			if states[j].State.SameValue(states[i].State) {
				shared = true
				break
			}
		}
		if !shared {
			n++
		}
	}
	return n
}

func abortMsgBytes() int { return cost.HeaderBytes + 2 }
func beaconMsgBytes(installed int) int {
	return cost.HeaderBytes + 4 + cost.BytesPerQueryTag*installed
}
func wakeMsgBytes(n int) int {
	return cost.HeaderBytes + 2 + cost.BytesPerQueryTag*n
}

// sortedIDs returns a sorted copy of a query-ID set.
func sortedIDs(set map[query.ID]bool) []query.ID {
	out := make([]query.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
