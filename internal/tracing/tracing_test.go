package tracing

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestDeterministicIDs: trace and span IDs are pure functions of their
// causal coordinates, never zero, and distinct coordinates hash apart.
func TestDeterministicIDs(t *testing.T) {
	if got, again := TraceID("alice", 3), TraceID("alice", 3); got != again || got == 0 {
		t.Fatalf("TraceID not a stable non-zero function: %d vs %d", got, again)
	}
	if TraceID("alice", 3) == TraceID("alice", 4) {
		t.Fatal("different subscriptions share a trace ID")
	}
	if TraceID("alice", 3) == TraceID("bob", 3) {
		t.Fatal("different sessions share a trace ID")
	}
	a := SpanID(7, TierGateway, KindAdmit, NoShard, 2048)
	if a == 0 || a != SpanID(7, TierGateway, KindAdmit, NoShard, 2048) {
		t.Fatalf("SpanID not a stable non-zero function: %d", a)
	}
	for _, other := range []uint64{
		SpanID(8, TierGateway, KindAdmit, NoShard, 2048),  // trace
		SpanID(7, TierShare, KindAdmit, NoShard, 2048),    // tier
		SpanID(7, TierGateway, KindFanout, NoShard, 2048), // kind
		SpanID(7, TierGateway, KindAdmit, 2, 2048),        // shard
		SpanID(7, TierGateway, KindAdmit, NoShard, 4096),  // time
	} {
		if other == a {
			t.Fatalf("span IDs collide across distinct coordinates: %d", a)
		}
	}
}

// TestRecorderRing: the flight recorder holds the most recent spans in
// insertion order, evicts FIFO past capacity, and counts what it dropped.
func TestRecorderRing(t *testing.T) {
	r := New(TierGateway, 4)
	for i := 0; i < 10; i++ {
		r.Record(Span{Trace: 1, Kind: KindFanout, Shard: NoShard, AtMS: int64(i), Seq: uint64(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(snap))
	}
	for i, s := range snap {
		if want := int64(6 + i); s.AtMS != want {
			t.Fatalf("snapshot[%d].AtMS = %d, want %d (most recent window in order)", i, s.AtMS, want)
		}
		if s.Tier != TierGateway {
			t.Fatalf("recorder did not stamp its tier: %q", s.Tier)
		}
		if s.ID == 0 {
			t.Fatal("recorded span kept a zero ID")
		}
	}
	recorded, dropped := r.Stats()
	if recorded != 10 || dropped != 6 {
		t.Fatalf("stats = (%d recorded, %d dropped), want (10, 6)", recorded, dropped)
	}

	// An explicit ID and tier are preserved, and Record echoes the ID.
	if id := r.Record(Span{Trace: 2, ID: 99, Tier: TierShare, Kind: KindSubscribe, Shard: NoShard}); id != 99 {
		t.Fatalf("Record returned %d for an explicit ID, want 99", id)
	}
	last := r.Snapshot()[3]
	if last.ID != 99 || last.Tier != TierShare {
		t.Fatalf("explicit ID/tier not preserved: %+v", last)
	}
}

// TestNilRecorderSafe: every method on a nil recorder is a no-op — that is
// the whole mechanism for running a tier untraced.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if id := r.Record(Span{Trace: 1, Kind: KindAdmit}); id != 0 {
		t.Fatalf("nil Record returned %d, want 0", id)
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil Snapshot returned %v", s)
	}
	if rec, drop := r.Stats(); rec != 0 || drop != 0 {
		t.Fatalf("nil Stats = (%d, %d)", rec, drop)
	}
	if tier := r.Tier(); tier != "" {
		t.Fatalf("nil Tier = %q", tier)
	}
	e := Collect(r, nil)
	if e.Spans != 0 || len(e.Traces) != 0 {
		t.Fatalf("Collect over nil recorders produced %+v", e)
	}
}

// TestCollectDeterministic: the export groups spans by trace, sorts both
// traces and spans on the total order regardless of recorder order, and
// its JSON form is byte-stable.
func TestCollectDeterministic(t *testing.T) {
	build := func(order []int) *Export {
		gw := New(TierGateway, 0)
		sh := New(TierShare, 0)
		spans := []Span{
			{Trace: 2, Kind: KindSubscribe, Shard: NoShard, AtMS: 1024},
			{Trace: 1, Kind: KindAdmit, Shard: NoShard, AtMS: 2048},
			{Trace: 1, Kind: KindSubscribe, Shard: NoShard, AtMS: 1024},
			{Trace: 0, Kind: KindFanout, Shard: NoShard, AtMS: 4096},
		}
		for _, idx := range order {
			rec := gw
			if idx%2 == 1 {
				rec = sh
			}
			rec.Record(spans[idx])
		}
		return Collect(sh, gw)
	}
	e1 := build([]int{0, 1, 2, 3})
	e2 := build([]int{3, 2, 1, 0})
	if !bytes.Equal(e1.JSON(), e2.JSON()) {
		t.Fatalf("export depends on recording order:\n%s\nvs\n%s", e1.JSON(), e2.JSON())
	}
	if e1.Spans != 4 || len(e1.Traces) != 3 {
		t.Fatalf("export shape: %d spans across %d traces, want 4 across 3", e1.Spans, len(e1.Traces))
	}
	for i := 1; i < len(e1.Traces); i++ {
		if e1.Traces[i-1].Trace >= e1.Traces[i].Trace {
			t.Fatal("traces not sorted by ID")
		}
	}
	tr, ok := e1.Trace(1)
	if !ok || len(tr.Spans) != 2 {
		t.Fatalf("Trace(1) = %+v, %v", tr, ok)
	}
	if tr.Spans[0].Kind != KindSubscribe || tr.Spans[1].Kind != KindAdmit {
		t.Fatalf("spans not sorted on (AtMS, ...): %+v", tr.Spans)
	}
	if _, ok := e1.Trace(42); ok {
		t.Fatal("Trace(42) found a trace that was never recorded")
	}
}

// TestRenderTrees: the text renderer nests children under their parents
// and labels the tier-event group.
func TestRenderTrees(t *testing.T) {
	r := New(TierShare, 0)
	root := r.Record(Span{Trace: 5, Kind: KindSubscribe, Shard: NoShard, AtMS: 1024})
	r.Record(Span{Trace: 5, Parent: root, Kind: KindResidualAdmit, Shard: NoShard, AtMS: 2048, Note: "frag"})
	r.Record(Span{Trace: 0, Kind: KindCrash, Shard: NoShard, AtMS: 4096})

	var sb strings.Builder
	RenderTrees(&sb, Collect(r))
	out := sb.String()
	for _, want := range []string{
		"3 spans across 2 traces",
		"tier events (untraced):",
		"trace 0000000000000005 (2 spans):",
		"share/subscribe",
		"share/subscribe\n    +2.048s   share/residual-admit",
		"(Δ1.024s)",
		"frag",
		"share/crash",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trees lack %q:\n%s", want, out)
		}
	}
}

// TestProvShardList covers the bitmask expansion and the empty check.
func TestProvShardList(t *testing.T) {
	if (Prov{}).Empty() != true {
		t.Fatal("zero Prov not Empty")
	}
	if (Prov{CacheHit: true}).Empty() {
		t.Fatal("cache-hit Prov reported Empty")
	}
	if got := (Prov{}).ShardList(); got != nil {
		t.Fatalf("empty mask expanded to %v", got)
	}
	p := Prov{Shards: 1<<0 | 1<<3 | 1<<63}
	if got, want := p.ShardList(), []int{0, 3, 63}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ShardList = %v, want %v", got, want)
	}
}
