package tracing

import "repro/internal/telemetry"

// RegisterMetrics mounts the tracing plane's metric families on reg and
// installs a gather hook syncing them from the live flight recorders.
// recorders() is read through on every gather so the serve CLI can swap
// tiers (crash drills rebuild gateways) without re-registering; nil
// entries are skipped. The per-hop latency histogram is rebuilt from the
// surviving spans each gather — the flight recorder is the authoritative
// bounded window, and a histogram over it stays a pure function of the
// committed command sequence.
func RegisterMetrics(reg *telemetry.Registry, recorders func() []*Recorder) {
	recordedFam := reg.NewCounter("ttmqo_trace_spans_recorded_total",
		"causal-trace spans recorded into per-tier flight recorders", "tier")
	droppedFam := reg.NewCounter("ttmqo_trace_spans_dropped_total",
		"causal-trace spans evicted from the bounded flight-recorder rings", "tier")
	hopFam := reg.NewHistogram("ttmqo_trace_hop_latency_seconds",
		"virtual-time duration of traced hops (cache replays, watermark waits, first results)",
		HopLatencyBounds, "tier")

	reg.OnGather(func() {
		// Several recorders can share a tier label (every shard gateway is
		// tier "gateway"), so totals accumulate per tier before the
		// monotonic Set.
		rec := map[string]uint64{}
		drop := map[string]uint64{}
		reset := map[string]bool{}
		for _, r := range recorders() {
			if r == nil {
				continue
			}
			tier := r.Tier()
			rc, dr := r.Stats()
			rec[tier] += rc
			drop[tier] += dr
			h := hopFam.Histogram(tier)
			if !reset[tier] {
				h.Reset()
				reset[tier] = true
			}
			for _, s := range r.Snapshot() {
				if s.DurMS > 0 {
					h.Observe(float64(s.DurMS) / 1000)
				}
			}
		}
		for tier, v := range rec {
			recordedFam.Counter(tier).Set(float64(v))
		}
		for tier, v := range drop {
			droppedFam.Counter(tier).Set(float64(v))
		}
	})
}
