// Package tracing is the deterministic, virtual-time causal tracing
// plane for the two-tier serving stack. Every subscription is assigned a
// trace context (a trace ID plus per-hop span IDs) that travels with the
// subscribe down through the share coordinator, the federation router and
// the shard gateways, and back up stamped on every delivered result as a
// compact provenance record.
//
// Determinism is the design constraint: span IDs are FNV-1a hashes of
// their causal coordinates (trace, tier, hop, shard, virtual time) rather
// than random numbers, timestamps are virtual-time offsets, and exports
// are sorted on a total order — so the same seed and committed command
// sequence produce byte-identical trace exports at any parallelism level,
// matching the repo's existing determinism discipline.
//
// Each tier owns a bounded flight-recorder ring (Recorder). The ring is
// allocated by the caller and handed to the tier via its Config, so it
// survives the tier crashing underneath it and can be dumped afterwards —
// the crash dump is the ring, not a copy the dying tier had to produce.
package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tier names used across the stack. The serve CLI labels shard gateways
// "gateway" too (with Span.Shard set), so one query's causal path reads
// share -> router -> gateway regardless of deployment shape.
const (
	TierGateway = "gateway"
	TierRouter  = "router"
	TierShare   = "share"
)

// Hop kinds recorded across the tiers. They are exported so tests and the
// smoke drill assert on names instead of string literals.
const (
	KindSubscribe     = "subscribe"      // a subscription committed at this tier
	KindAdmit         = "admit"          // gateway posted the query into the network
	KindDedupHit      = "dedup-hit"      // gateway served the sub from an already-admitted query
	KindFirstResult   = "first-result"   // first delivery for the subscription
	KindFanout        = "fanout"         // one Advance round's delivery burst (tier-level)
	KindShed          = "shed"           // admission shed the subscribe (note says why)
	KindWALReplay     = "wal-replay"     // recovery replayed the write-ahead log
	KindCrash         = "crash"          // the tier crashed (flight recorder survives)
	KindShardFanout   = "shard-fanout"   // router split the plan onto one shard
	KindMergeRelease  = "merge-release"  // router released an epoch past the watermark barrier
	KindDegraded      = "degraded-release" // epoch released with open breakers excluded
	KindBreakerOpen   = "breaker-open"   // a shard breaker tripped
	KindBreakerClose  = "breaker-close"  // a shard breaker recovered
	KindReattach      = "reattach"       // upstream sessions re-attached after a crash
	KindCSEHit        = "cse-hit"        // share tree reused an already-live fragment
	KindResidualAdmit = "residual-admit" // share tree materialized a new fragment upstream
	KindCacheReplay   = "cache-replay"   // windowed result cache replayed epochs to a late sub
)

// NoShard marks a span that is not tied to one shard.
const NoShard = -1

// DefaultCapacity is the flight-recorder ring depth per tier.
const DefaultCapacity = 4096

// HopLatencyBounds are the per-hop latency histogram bucket bounds in
// virtual seconds; hop durations run from sub-epoch (cache replays) to
// multi-epoch (watermark waits under a stalled shard).
var HopLatencyBounds = []float64{0.25, 1, 4, 16, 64, 256}

// Span is one recorded hop on a trace. AtMS/DurMS are virtual-time
// milliseconds; annotation fields are zero unless the hop sets them.
type Span struct {
	Trace    uint64  `json:"trace"`
	ID       uint64  `json:"id"`
	Parent   uint64  `json:"parent,omitempty"`
	Tier     string  `json:"tier"`
	Kind     string  `json:"kind"`
	Shard    int     `json:"shard"` // NoShard when not tied to one shard
	AtMS     int64   `json:"at_ms"`
	DurMS    int64   `json:"dur_ms,omitempty"`
	Seq      uint64  `json:"seq,omitempty"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Frags    int     `json:"frags,omitempty"`
	Reused   int     `json:"reused,omitempty"`
	Rung     int     `json:"rung,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
	Note     string  `json:"note,omitempty"`
}

// Context is the trace context one tier hands the next: the trace ID and
// the span the downstream hop should parent to. The zero Context means
// "untraced"; tier-level events (fan-out rounds, breaker trips, WAL
// replays) record under trace 0 and group together in exports.
type Context struct {
	Trace uint64
	Span  uint64
}

// Prov is the compact provenance record stamped on every delivered
// result: which shards contributed, whether the windowed cache served it,
// how many fragments were recombined (and how many of those were CSE
// reuse), and the brownout rung at fan-out time. All fields are plain
// values so stamping allocates nothing on the hot path.
type Prov struct {
	Shards   uint64 // bitmask of contributing shard indices (bit i = shard i)
	Frags    uint16 // fragments recombined into this result
	Reused   uint16 // fragments that were CSE hits rather than new admissions
	CacheHit bool   // served from the windowed result cache
	Rung     uint8  // brownout ladder rung at fan-out
}

// Empty reports whether the record carries no provenance at all.
func (p Prov) Empty() bool { return p == Prov{} }

// ShardList expands the shard bitmask into sorted indices.
func (p Prov) ShardList() []int {
	if p.Shards == 0 {
		return nil
	}
	var out []int
	for i := 0; i < 64; i++ {
		if p.Shards&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// TraceID derives the deterministic trace ID for a subscription: FNV-1a
// over the session name and subscription ID. Both are pure functions of
// the committed command sequence, so the ID is reproducible across runs,
// recoveries and parallelism levels. Never zero (zero means untraced).
func TraceID(session string, sub uint64) uint64 {
	h := fnvString(fnvOffset, session)
	h = fnvUint(h, sub)
	if h == 0 {
		return 1
	}
	return h
}

// SpanID derives the deterministic span ID for a hop from its causal
// coordinates. Never zero.
func SpanID(trace uint64, tier, kind string, shard int, atMS int64) uint64 {
	h := fnvUint(fnvOffset, trace)
	h = fnvString(h, tier)
	h = fnvString(h, kind)
	h = fnvUint(h, uint64(int64(shard)))
	h = fnvUint(h, uint64(atMS))
	if h == 0 {
		return 1
	}
	return h
}

// Recorder is one tier's bounded flight-recorder ring. All methods are
// nil-safe: an untracted tier carries a nil recorder and every Record is
// a two-instruction no-op, which is what keeps tracing off the hot path
// when it is not mounted.
type Recorder struct {
	tier string

	mu       sync.Mutex
	buf      []Span
	next     int
	wrapped  bool
	recorded uint64
}

// New returns a flight recorder for one tier; capacity <= 0 uses
// DefaultCapacity.
func New(tier string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{tier: tier, buf: make([]Span, 0, capacity)}
}

// Tier returns the tier label the recorder was mounted with.
func (r *Recorder) Tier() string {
	if r == nil {
		return ""
	}
	return r.tier
}

// Record appends one span to the ring, evicting the oldest when full.
// A zero s.ID is derived from the span's causal coordinates; a zero
// s.Tier takes the recorder's tier. Returns the span ID so callers can
// parent later hops to it. Nil recorders drop everything and return 0.
func (r *Recorder) Record(s Span) uint64 {
	if r == nil {
		return 0
	}
	if s.Tier == "" {
		s.Tier = r.tier
	}
	if s.ID == 0 {
		s.ID = SpanID(s.Trace, s.Tier, s.Kind, s.Shard, s.AtMS)
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % cap(r.buf)
		r.wrapped = true
	}
	r.recorded++
	r.mu.Unlock()
	return s.ID
}

// Snapshot copies the ring contents in insertion order.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	if r.wrapped {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Stats returns how many spans were recorded over the recorder's lifetime
// and how many of those the bounded ring has since evicted.
func (r *Recorder) Stats() (recorded, dropped uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded, r.recorded - uint64(len(r.buf))
}

// TraceSpans is one trace's spans in the export, sorted on the total
// order (AtMS, Tier, Kind, Shard, ID).
type TraceSpans struct {
	Trace uint64 `json:"trace"`
	Spans []Span `json:"spans"`
}

// Export is the deterministic cross-tier trace export: every surviving
// span from every tier's flight recorder, grouped by trace. Trace 0
// groups tier-level events (fan-out rounds, breaker trips, WAL replays)
// that are not tied to one subscription.
type Export struct {
	Spans   int          `json:"spans"`
	Dropped uint64       `json:"dropped"`
	Traces  []TraceSpans `json:"traces"`
}

func spanLess(a, b Span) bool {
	if a.AtMS != b.AtMS {
		return a.AtMS < b.AtMS
	}
	if a.Tier != b.Tier {
		return a.Tier < b.Tier
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Shard != b.Shard {
		return a.Shard < b.Shard
	}
	return a.ID < b.ID
}

// Collect merges the given recorders' rings into one deterministic
// export. Nil recorders are skipped.
func Collect(recs ...*Recorder) *Export {
	e := &Export{}
	var all []Span
	for _, r := range recs {
		if r == nil {
			continue
		}
		all = append(all, r.Snapshot()...)
		_, dropped := r.Stats()
		e.Dropped += dropped
	}
	sort.Slice(all, func(i, j int) bool { return spanLess(all[i], all[j]) })
	e.Spans = len(all)

	byTrace := map[uint64][]Span{}
	var ids []uint64
	for _, s := range all {
		if _, ok := byTrace[s.Trace]; !ok {
			ids = append(ids, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e.Traces = append(e.Traces, TraceSpans{Trace: id, Spans: byTrace[id]})
	}
	return e
}

// Trace returns one trace's spans from the export.
func (e *Export) Trace(id uint64) (TraceSpans, bool) {
	for _, t := range e.Traces {
		if t.Trace == id {
			return t, true
		}
	}
	return TraceSpans{}, false
}

// JSON renders the export as indented JSON with a trailing newline. The
// bytes are a pure function of the recorded spans, so two runs of the
// same seed and command sequence compare byte-equal.
func (e *Export) JSON() []byte {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		// Export contains only plain values; Marshal cannot fail.
		panic(err)
	}
	return append(data, '\n')
}

// RenderTrees writes the human-readable cross-tier span trees: one block
// per trace, spans nested under their parents with the per-hop latency
// delta (virtual time since the parent hop) on each line.
func RenderTrees(w io.Writer, e *Export) {
	fmt.Fprintf(w, "%d spans across %d traces (%d evicted from flight recorders)\n",
		e.Spans, len(e.Traces), e.Dropped)
	for _, t := range e.Traces {
		if t.Trace == 0 {
			fmt.Fprintf(w, "\ntier events (untraced):\n")
		} else {
			fmt.Fprintf(w, "\ntrace %016x (%d spans):\n", t.Trace, len(t.Spans))
		}
		at := map[uint64]int64{}
		for _, s := range t.Spans {
			at[s.ID] = s.AtMS
		}
		kids := map[uint64][]int{}
		var roots []int
		for i, s := range t.Spans {
			if _, ok := at[s.Parent]; s.Parent != 0 && ok && s.Parent != s.ID {
				kids[s.Parent] = append(kids[s.Parent], i)
			} else {
				roots = append(roots, i)
			}
		}
		var walk func(idx, depth int)
		walk = func(idx, depth int) {
			s := t.Spans[idx]
			for i := 0; i < depth; i++ {
				io.WriteString(w, "  ")
			}
			fmt.Fprintf(w, "+%-8s %s/%s", fmtMS(s.AtMS), s.Tier, s.Kind)
			if s.Shard != NoShard {
				fmt.Fprintf(w, " shard=%d", s.Shard)
			}
			if s.Parent != 0 {
				if pAt, ok := at[s.Parent]; ok {
					fmt.Fprintf(w, " (Δ%s)", fmtMS(s.AtMS-pAt))
				}
			}
			if s.DurMS > 0 {
				fmt.Fprintf(w, " dur=%s", fmtMS(s.DurMS))
			}
			if s.CacheHit {
				fmt.Fprintf(w, " cache-hit")
			}
			if s.Frags > 0 {
				fmt.Fprintf(w, " frags=%d reused=%d", s.Frags, s.Reused)
			}
			if s.Degraded {
				fmt.Fprintf(w, " degraded coverage=%.2f", s.Coverage)
			}
			if s.Rung > 0 {
				fmt.Fprintf(w, " rung=%d", s.Rung)
			}
			if s.Seq > 0 {
				fmt.Fprintf(w, " seq=%d", s.Seq)
			}
			if s.Note != "" {
				fmt.Fprintf(w, " %s", s.Note)
			}
			io.WriteString(w, "\n")
			for _, k := range kids[s.ID] {
				walk(k, depth+1)
			}
		}
		for _, r := range roots {
			walk(r, 1)
		}
	}
}

func fmtMS(ms int64) string {
	return (time.Duration(ms) * time.Millisecond).String()
}
