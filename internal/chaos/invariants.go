package chaos

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/gateway"
	"repro/internal/sim"
)

// StreamChecker asserts the delivery invariants of one client's update
// streams across disconnects, crashes and resumes:
//
//   - no duplicate delivery: a sequence number at or below the last one the
//     client processed is counted in Duplicates;
//   - bounded loss: skipped sequence numbers (a resume ring that overflowed
//     while the client was away) are counted in Gaps, never silently lost;
//   - ordering: epoch timestamps within a stream must never regress.
//
// It is not safe for concurrent use; give each client goroutine its own
// checker and Merge them for the report.
type StreamChecker struct {
	// Updates counts fresh (non-duplicate) deliveries; Rows the acquisition
	// rows they carried.
	Updates int64
	Rows    int64
	// Duplicates counts redelivered updates (Seq <= last seen) — the
	// exactly-once violation; the checker drops them like a deduping client.
	Duplicates int64
	// Gaps counts skipped sequence numbers — updates shed by a bounded
	// resume ring while the client was detached.
	Gaps int64
	// OrderViolations counts epoch-timestamp regressions within a stream.
	OrderViolations int64

	last   map[gateway.SubID]uint64
	lastAt map[gateway.SubID]sim.Time
}

// NewStreamChecker returns an empty checker.
func NewStreamChecker() *StreamChecker {
	return &StreamChecker{
		last:   make(map[gateway.SubID]uint64),
		lastAt: make(map[gateway.SubID]sim.Time),
	}
}

// Last returns the stream's last processed sequence number — the cursor to
// pass to Session.Resume after a reconnect.
func (c *StreamChecker) Last(id gateway.SubID) uint64 { return c.last[id] }

// Observe checks one delivered update against the stream's history and
// reports whether it is fresh (not a duplicate). Only fresh updates advance
// the cursor and the counters, mirroring a client that dedups on Seq.
func (c *StreamChecker) Observe(u gateway.Update) bool {
	last := c.last[u.Sub]
	if u.Seq <= last {
		c.Duplicates++
		return false
	}
	if u.Seq > last+1 {
		c.Gaps += int64(u.Seq - last - 1)
	}
	c.last[u.Sub] = u.Seq
	if at, ok := c.lastAt[u.Sub]; ok && u.At < at {
		c.OrderViolations++
	}
	c.lastAt[u.Sub] = u.At
	c.Updates++
	c.Rows += int64(len(u.Rows))
	return true
}

// Merge folds another checker's counters into this one (the per-stream
// cursors stay with their owner).
func (c *StreamChecker) Merge(o *StreamChecker) {
	c.Updates += o.Updates
	c.Rows += o.Rows
	c.Duplicates += o.Duplicates
	c.Gaps += o.Gaps
	c.OrderViolations += o.OrderViolations
}

// CheckGoroutines waits up to wait for the live goroutine count to fall
// back to the pre-run baseline and returns an error if it never does — the
// no-leak-after-drain invariant. A small fixed slack absorbs runtime
// helpers (finalizer and timer goroutines) that come and go on their own.
func CheckGoroutines(baseline int, wait time.Duration) error {
	const slack = 3
	deadline := time.Now().Add(wait)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d live, baseline %d (+%d slack)", n, baseline, slack)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
