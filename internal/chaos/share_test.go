package chaos

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/tracing"
)

// TestShareScenarioValidation covers the config guard rails.
func TestShareScenarioValidation(t *testing.T) {
	if _, err := RunShareScenario(ShareRunConfig{}); err == nil {
		t.Fatal("share drill ran without a WAL directory")
	}
	if _, err := RunShareScenario(ShareRunConfig{WALDir: t.TempDir(), Rounds: shareClearRound + 1}); err == nil {
		t.Fatal("share drill accepted a round budget too short to observe recovery")
	}
}

// TestShareCrashUnderTheCache crashes the gateway underneath the sharing
// coordinator mid-stream, lets a late subscriber replay from cache during
// the outage, recovers the gateway from its WAL and asserts every
// delivery invariant — including value agreement between cached replay
// and live delivery — held across the crash.
func TestShareCrashUnderTheCache(t *testing.T) {
	rep, err := RunShareScenario(ShareRunConfig{
		Seed:   7,
		WALDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.LateReplayed == 0 {
		t.Fatal("mid-outage subscriber replayed nothing from cache")
	}
	if rep.Updates <= rep.UpdatesAtFault {
		t.Fatalf("no post-recovery progress: %d at fault, %d final", rep.UpdatesAtFault, rep.Updates)
	}
	if rep.Duplicates != 0 || rep.Gaps != 0 || rep.OrderViolations != 0 || rep.ValueMismatches != 0 {
		t.Fatalf("delivery invariants broken: dup=%d gaps=%d order=%d values=%d",
			rep.Duplicates, rep.Gaps, rep.OrderViolations, rep.ValueMismatches)
	}
	if rep.Stats.Reattaches != 1 || rep.Stats.UpstreamResumes == 0 {
		t.Fatalf("failover accounting: reattaches=%d resumes=%d",
			rep.Stats.Reattaches, rep.Stats.UpstreamResumes)
	}
}

// TestShareTraceCausalPath asserts — from the drill's exported trace JSON
// alone, with no access to the in-process recorders — the full causal
// path of a delivery through the two-tier stack: a share-tier subscribe
// whose residual fragment admission parents the gateway-tier subscribe
// and admit hops, plus the mid-outage cache-replay hop, the crash and the
// WAL-replay recovery. It also pins determinism: two runs of the same
// seed produce byte-identical exports, regardless of -parallel level or
// what else the test binary is running.
func TestShareTraceCausalPath(t *testing.T) {
	run := func() *ShareReport {
		rep, err := RunShareScenario(ShareRunConfig{Seed: 7, WALDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep, rep2 := run(), run()
	if len(rep.Traces) == 0 {
		t.Fatal("drill exported no trace JSON")
	}
	if !bytes.Equal(rep.Traces, rep2.Traces) {
		t.Fatalf("trace export is not deterministic across identical runs:\nrun1 %d bytes, run2 %d bytes",
			len(rep.Traces), len(rep2.Traces))
	}

	var exp tracing.Export
	if err := json.Unmarshal(rep.Traces, &exp); err != nil {
		t.Fatalf("trace export is not a tracing.Export: %v", err)
	}
	if exp.Spans == 0 || len(exp.Traces) == 0 {
		t.Fatalf("empty trace export: %d spans across %d traces", exp.Spans, len(exp.Traces))
	}

	// Walk every trace for one whose spans chain share/subscribe ->
	// share/residual-admit -> gateway/subscribe -> gateway/admit by
	// parent links, proving the context rode the fragment admission
	// across the tier boundary.
	causal := false
	sawReplay := false
	for _, tr := range exp.Traces {
		if tr.Trace == 0 {
			continue
		}
		byID := map[uint64]tracing.Span{}
		for _, s := range tr.Spans {
			byID[s.ID] = s
		}
		for _, s := range tr.Spans {
			if s.Tier == tracing.TierGateway && s.Kind == tracing.KindAdmit {
				gwSub, ok := byID[s.Parent]
				if !ok || gwSub.Tier != tracing.TierGateway || gwSub.Kind != tracing.KindSubscribe {
					continue
				}
				frag, ok := byID[gwSub.Parent]
				if !ok || frag.Tier != tracing.TierShare || frag.Kind != tracing.KindResidualAdmit {
					continue
				}
				shSub, ok := byID[frag.Parent]
				if ok && shSub.Tier == tracing.TierShare && shSub.Kind == tracing.KindSubscribe {
					causal = true
				}
			}
			if s.Tier == tracing.TierShare && s.Kind == tracing.KindCacheReplay && s.CacheHit {
				sawReplay = true
			}
		}
	}
	if !causal {
		t.Error("no trace chains share/subscribe -> residual-admit -> gateway/subscribe -> admit")
	}
	if !sawReplay {
		t.Error("the mid-outage cache replay left no cache-replay span")
	}

	// The tier-level trace (trace 0) must carry the crash and the WAL
	// replay that recovered from it — the flight recorder outlives the
	// gateway it was recording.
	kinds := map[string]bool{}
	for _, tr := range exp.Traces {
		if tr.Trace != 0 {
			continue
		}
		for _, s := range tr.Spans {
			kinds[s.Kind] = true
		}
	}
	if !kinds[tracing.KindCrash] {
		t.Error("tier-level trace lacks the crash span")
	}
	if !kinds[tracing.KindWALReplay] {
		t.Error("tier-level trace lacks the wal-replay span")
	}
}

// TestShareChaosSoak reruns the sharing drill across seeds and cache
// depths; it rides the `make chaos-soak` target next to the gateway and
// federation soaks.
func TestShareChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short mode")
	}
	for _, window := range []int{0, 2, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			rep, err := RunShareScenario(ShareRunConfig{
				Seed:   seed,
				WALDir: t.TempDir(),
				Window: window,
			})
			if err != nil {
				t.Fatalf("window=%d seed=%d: %v", window, seed, err)
			}
			for _, v := range rep.Violations {
				t.Errorf("window=%d seed=%d violation: %s", window, seed, v)
			}
		}
	}
}

// TestFingerprintLedgerBounded pins the consistency ledger's memory flat
// across a drill-length stream of distinct epochs: the FIFO window never
// outgrows its cap (no map growth, no queue growth), mismatches inside
// the window are still caught, and evicted keys re-pin silently instead
// of false-positiving.
func TestFingerprintLedgerBounded(t *testing.T) {
	const window = 64
	l := newFingerprintLedger(window)
	for i := 0; i < 100_000; i++ {
		k := epochKey{qid: 1, at: time.Duration(i)}
		if l.check(k, "fp") {
			t.Fatalf("first sight of epoch %d reported a mismatch", i)
		}
		if l.size() > window {
			t.Fatalf("ledger grew to %d entries after %d inserts (cap %d)", l.size(), i+1, window)
		}
	}
	if l.size() != window {
		t.Fatalf("ledger holds %d entries after a long run, want a full window of %d", l.size(), window)
	}
	if got := len(l.order); got != window {
		t.Fatalf("FIFO ring holds %d slots, want %d", got, window)
	}
	if got := cap(l.order); got != window {
		t.Fatalf("FIFO ring backing array grew to %d slots, want %d", got, window)
	}

	// A conflicting re-observation inside the window is a mismatch...
	live := epochKey{qid: 1, at: time.Duration(99_999)}
	if !l.check(live, "different") {
		t.Fatal("in-window conflicting fingerprint not reported")
	}
	// ...while an agreeing one is not.
	if l.check(live, "fp") {
		t.Fatal("in-window agreeing fingerprint misreported")
	}
	// An epoch long since evicted re-pins with whatever it now carries.
	if l.check(epochKey{qid: 1, at: 0}, "different") {
		t.Fatal("evicted epoch treated as a mismatch")
	}
	if l.size() != window {
		t.Fatalf("re-pinning an evicted epoch grew the ledger to %d (cap %d)", l.size(), window)
	}
}
