package chaos

import (
	"testing"
)

// TestOverloadStuckShard wedges a shard without crashing it and asserts
// the breaker/degraded-coverage invariants end to end: trip, failed
// probe, recovery, epochs released at partial coverage throughout (no
// watermark deadlock), full coverage restored after the probe.
func TestOverloadStuckShard(t *testing.T) {
	rep, err := RunStuckShardScenario(StuckShardConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Stats.BreakerTrips == 0 || rep.Stats.BreakerRecoveries == 0 {
		t.Fatalf("breaker never cycled: trips=%d recoveries=%d",
			rep.Stats.BreakerTrips, rep.Stats.BreakerRecoveries)
	}
}

// TestOverloadHerd fires the thundering herd at a tiny admission bound
// and asserts bounded mailbox depth, honored retry-after floors and
// exactly-once admission through the backoff re-subscribes.
func TestOverloadHerd(t *testing.T) {
	rep, err := RunHerdScenario(HerdConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Sheds == 0 {
		t.Fatal("herd was never shed; drill is vacuous")
	}
}

// TestOverloadSlowLoris opens a subscriber that stops reading and
// asserts the server drops it while the healthy streams progress.
func TestOverloadSlowLoris(t *testing.T) {
	rep, err := RunSlowLorisScenario(LorisConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if !rep.VictimDropped {
		t.Fatal("loris connection was never severed")
	}
}

// TestOverloadChaosSoak reruns the overload drills across seeds; it
// rides `make chaos-soak` next to the fault-injection soaks.
func TestOverloadChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short mode")
	}
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := RunStuckShardScenario(StuckShardConfig{Seed: seed})
		if err != nil {
			t.Fatalf("stuck-shard seed=%d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("stuck-shard seed=%d violation: %s", seed, v)
		}
	}
	for seed := int64(1); seed <= 2; seed++ {
		rep, err := RunHerdScenario(HerdConfig{Seed: seed})
		if err != nil {
			t.Fatalf("thundering-herd seed=%d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("thundering-herd seed=%d violation: %s", seed, v)
		}
	}
	rep, err := RunSlowLorisScenario(LorisConfig{Seed: 2})
	if err != nil {
		t.Fatalf("slow-loris: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("slow-loris violation: %s", v)
	}
}
