package chaos

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/share"
	"repro/internal/topology"
	"repro/internal/tracing"
)

// Sharing-layer fault drill: crash the upstream gateway underneath the
// `internal/share` coordinator while cached replay and live delivery
// interleave. The coordinator owns the windowed result cache, so a late
// subscriber who joins DURING the outage must still replay the cached
// window immediately; after the gateway is rebuilt from its WAL the
// coordinator re-attaches its fragment sessions and every downstream
// stream resumes in place.
//
// The drill asserts the delivery invariants (no duplicate sequence
// numbers, no skipped sequence numbers, no epoch-timestamp regressions,
// progress after the fault clears) plus a value-consistency check: every
// (query, epoch) pair must carry identical rows and aggregates wherever
// it is observed — a replayed epoch must be byte-equal to what live
// delivery said, across subscribers and across the crash.

// ShareScenarioName is the sharing-layer drill. Like the federation
// drills it stays out of BuiltinNames: it needs a coordinator stack, not
// a bare gateway.
const ShareScenarioName = "crash-under-the-cache"

// Sharing drill rounds: fault at shareFaultRound, a late subscriber joins
// mid-outage at shareLateRound, recovery at shareClearRound.
const (
	shareFaultRound = 6
	shareLateRound  = 7
	shareClearRound = 9
)

// shareLedgerCap bounds the value-consistency ledger: cached replays and
// crash-recovery re-deliveries land within a few windows of the live
// cursor, so a sliding window this deep checks every consistency-relevant
// observation while keeping a long soak's memory flat.
const shareLedgerCap = 512

// epochKey identifies one (query, epoch) delivery for the consistency
// ledger.
type epochKey struct {
	qid query.ID
	at  time.Duration
}

// fingerprintLedger pins the first-seen fingerprint of each (query,
// epoch) and bounds its own memory with FIFO eviction over insertion
// order. Observations whose key has slid off the window are re-pinned
// rather than checked — consistency is enforced across the window where
// replays and recoveries actually land, at O(cap) space no matter how
// long the drill runs.
type fingerprintLedger struct {
	limit int
	seen  map[epochKey]string
	order []epochKey // circular FIFO of live keys once len == limit
	head  int        // next eviction slot when full
}

func newFingerprintLedger(limit int) *fingerprintLedger {
	return &fingerprintLedger{
		limit: limit,
		seen:  make(map[epochKey]string, limit),
		order: make([]epochKey, 0, limit),
	}
}

// check records fp for k on first sight and reports whether a previously
// pinned fingerprint disagrees.
func (l *fingerprintLedger) check(k epochKey, fp string) (mismatch bool) {
	if prev, ok := l.seen[k]; ok {
		return prev != fp
	}
	if len(l.order) == l.limit {
		delete(l.seen, l.order[l.head])
		l.order[l.head] = k
		l.head = (l.head + 1) % l.limit
	} else {
		l.order = append(l.order, k)
	}
	l.seen[k] = fp
	return false
}

// size reports the number of pinned fingerprints (bounded by the cap).
func (l *fingerprintLedger) size() int { return len(l.seen) }

// ShareRunConfig parametrizes the sharing-layer drill.
type ShareRunConfig struct {
	// Seed seeds the gateway's world (1 if zero).
	Seed int64
	// Side is the grid side (4 if zero — 15 sensors).
	Side int
	// Clients is the number of early downstream sessions (DefaultClients
	// if zero).
	Clients int
	// Quantum is the virtual time per round (DefaultQuantum if zero).
	Quantum time.Duration
	// Rounds is the number of advance/drain rounds (DefaultRounds if
	// zero; must exceed shareClearRound+2 so post-recovery progress is
	// observable).
	Rounds int
	// WALDir holds the gateway WAL; required (the drill crashes and
	// recovers the upstream).
	WALDir string
	// Window is the result-cache depth in epochs (share.DefaultWindow if
	// zero).
	Window int
}

// ShareReport is the outcome of the sharing drill; every field is a pure
// function of configuration and seed.
type ShareReport struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Clients  int    `json:"clients"`
	Rounds   int    `json:"rounds"`
	// Updates/Rows are downstream deliveries; UpdatesAtFault the cursor
	// when the gateway crashed; LateReplayed counts the epochs the
	// mid-outage subscriber replayed from cache before recovery.
	Updates        int64 `json:"updates"`
	Rows           int64 `json:"rows"`
	UpdatesAtFault int64 `json:"updates_at_fault"`
	LateReplayed   int64 `json:"late_replayed"`
	// Invariant counters (see StreamChecker).
	Duplicates      int64 `json:"duplicates"`
	Gaps            int64 `json:"gaps"`
	OrderViolations int64 `json:"order_violations"`
	// ValueMismatches counts (query, epoch) observations disagreeing with
	// the first delivery of that epoch.
	ValueMismatches int64 `json:"value_mismatches"`
	// Stats is the final coordinator counter snapshot.
	Stats share.Stats `json:"stats"`
	// Violations lists every invariant breach, sorted; empty means the
	// stack degraded exactly as promised.
	Violations []string `json:"violations,omitempty"`
	// Traces is the causal-trace export (tracing.Export as JSON) collected
	// from the share and gateway flight recorders after the drill. The
	// recorders are owned by the harness, so the export spans the crash:
	// admissions before the fault, the crash and WAL-replay hops, and the
	// mid-outage cache replay are all present. Byte-identical for a given
	// seed at any test parallelism.
	Traces json.RawMessage `json:"traces,omitempty"`
}

// shareQueryPool is the drill workload: overlapping region aggregates
// (shared interior cells), a full-range AVG (basis rewrite) and a region
// acquisition, so recombination, caching and row concatenation all stay
// hot across the crash.
func shareQueryPool(sensors int) []query.Query {
	return []query.Query{
		query.MustParse("SELECT SUM(light), AVG(light) WHERE nodeid >= 1 AND nodeid <= 8 EPOCH DURATION 8192"),
		query.MustParse(fmt.Sprintf("SELECT SUM(light), AVG(light) WHERE nodeid >= 5 AND nodeid <= %d EPOCH DURATION 8192", sensors-3)),
		query.MustParse("SELECT AVG(temp) EPOCH DURATION 8192"),
		query.MustParse("SELECT nodeid, light WHERE nodeid >= 1 AND nodeid <= 12 EPOCH DURATION 8192"),
	}
}

// RunShareScenario drives a gateway+coordinator stack through the
// sharing-layer crash drill in phased rounds (stage, advance, drain,
// check). The gateway crash lands at a round boundary without draining
// first — whatever it strands in flight must come back through WAL
// recovery and the coordinator's fragment resume.
func RunShareScenario(cfg ShareRunConfig) (*ShareReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Side <= 0 {
		cfg.Side = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = DefaultClients
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = DefaultRounds
	}
	if cfg.Rounds <= shareClearRound+2 {
		return nil, fmt.Errorf("chaos: share drill needs more than %d rounds", shareClearRound+2)
	}
	if cfg.WALDir == "" {
		return nil, fmt.Errorf("chaos: share drill needs a WAL directory (ShareRunConfig.WALDir)")
	}

	baseline := runtime.NumGoroutine()
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	// The flight recorders are owned here, not by the tiers, so the crash
	// does not take the trace with it: gateway.Recover reuses the same
	// Config and keeps appending to the same ring.
	gwRec := tracing.New(tracing.TierGateway, 0)
	shareRec := tracing.New(tracing.TierShare, 0)
	gwConfig := func() gateway.Config {
		return gateway.Config{
			Sim:     network.Config{Topo: topo, Scheme: network.TTMQO, Seed: cfg.Seed},
			WALPath: filepath.Join(cfg.WALDir, "share-drill.wal"),
			Tracer:  gwRec,
		}
	}
	gw, err := gateway.New(gwConfig())
	if err != nil {
		return nil, err
	}
	defer func() { _ = gw.Close() }()
	sensors := cfg.Side*cfg.Side - 1
	coord, err := share.New(share.Config{
		Upstream: share.OverGateway(gw),
		Sensors:  sensors,
		Window:   cfg.Window,
		Tracer:   shareRec,
	})
	if err != nil {
		return nil, err
	}
	defer coord.Close()

	rep := &ShareReport{
		Scenario: ShareScenarioName,
		Seed:     cfg.Seed,
		Clients:  cfg.Clients,
		Rounds:   cfg.Rounds,
	}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	// Value consistency ledger: the first delivery of a (query, epoch)
	// pins its content; every later observation — another subscriber's
	// live copy, a cached replay, a post-recovery delivery — must match.
	// The ledger is bounded (FIFO over insertion order) so a long soak
	// holds a sliding window of epochs instead of growing forever.
	truth := newFingerprintLedger(shareLedgerCap)
	check := NewStreamChecker()
	type drillSub struct {
		sub  *share.Sub
		late bool
	}
	var subs []*drillSub
	observe := func(d *drillSub, u gateway.Update) {
		check.Observe(u)
		rep.Rows = check.Rows
		k := epochKey{qid: u.QueryID, at: u.At}
		fp := fmt.Sprintf("%v|%v", u.Rows, u.Aggs)
		if truth.check(k, fp) {
			rep.ValueMismatches++
		}
	}
	drainAll := func() {
		for _, d := range subs {
			if d.sub == nil {
				continue
			}
			for {
				select {
				case u, ok := <-d.sub.Updates():
					if !ok {
						violate("stream %d closed mid-run (%s)", d.sub.ID(), d.sub.Reason())
						d.sub = nil
					} else {
						observe(d, u)
						continue
					}
				default:
				}
				break
			}
		}
	}

	// Early population: every client subscribes two pool queries, so each
	// canonical query has multiple subscribers and the fragment registry
	// is shared from the start.
	pool := shareQueryPool(sensors)
	var tickets []*share.Ticket
	for c := 0; c < cfg.Clients; c++ {
		sess, err := coord.Register(fmt.Sprintf("chaos-%d", c))
		if err != nil {
			return nil, err
		}
		for s := 0; s < 2; s++ {
			tk, err := sess.SubscribeAsync(pool[(c*2+s)%len(pool)])
			if err != nil {
				return nil, err
			}
			tickets = append(tickets, tk)
		}
	}
	if _, err := coord.Advance(cfg.Quantum); err != nil {
		return nil, err
	}
	for _, tk := range tickets {
		sub, err := tk.Wait()
		if err != nil {
			return nil, err
		}
		subs = append(subs, &drillSub{sub: sub})
	}

	var late *drillSub
	var lateTicket *share.Ticket
	down := false
	for round := 1; round < cfg.Rounds; round++ {
		if round == shareFaultRound {
			rep.UpdatesAtFault = check.Updates
			if err := gw.Crash(); err != nil {
				return nil, err
			}
			down = true
		}
		if round == shareLateRound {
			// Mid-outage subscriber: the cache must serve its window even
			// though the upstream is dead.
			sess, err := coord.Register("chaos-late")
			if err != nil {
				return nil, err
			}
			lateTicket, err = sess.SubscribeAsync(pool[0])
			if err != nil {
				return nil, err
			}
		}
		if round == shareClearRound {
			gw2, err := gateway.Recover(gwConfig())
			if err != nil {
				return nil, err
			}
			gw = gw2
			if err := coord.Reattach(share.OverGateway(gw2)); err != nil {
				return nil, err
			}
			down = false
		}
		if _, err := coord.Advance(cfg.Quantum); err != nil {
			// During the outage the upstream refuses to advance; commands
			// still commit and cached replay still flows. Any other round
			// must advance cleanly.
			if !down {
				return nil, err
			}
		}
		if lateTicket != nil {
			sub, err := lateTicket.Wait()
			if err != nil {
				return nil, fmt.Errorf("late subscribe failed mid-outage: %w", err)
			}
			late = &drillSub{sub: sub, late: true}
			subs = append(subs, late)
			lateTicket = nil
		}
		drainAll()
		if down && late != nil && rep.LateReplayed == 0 {
			rep.LateReplayed = int64(check.Last(late.sub.ID()))
		}
	}

	rep.Stats = coord.ShareStats()
	rep.Updates = check.Updates
	rep.Rows = check.Rows
	rep.Duplicates = check.Duplicates
	rep.Gaps = check.Gaps
	rep.OrderViolations = check.OrderViolations

	if check.Duplicates > 0 {
		violate("%d duplicate deliveries", check.Duplicates)
	}
	if check.Gaps > 0 {
		violate("%d skipped sequence numbers", check.Gaps)
	}
	if check.OrderViolations > 0 {
		violate("%d epoch-order regressions", check.OrderViolations)
	}
	if rep.ValueMismatches > 0 {
		violate("%d deliveries disagreed with the pinned (query, epoch) content", rep.ValueMismatches)
	}
	if rep.UpdatesAtFault == 0 {
		violate("no deliveries before the fault round")
	}
	if rep.LateReplayed == 0 {
		violate("mid-outage subscriber got no cached replay")
	}
	if rep.Updates <= rep.UpdatesAtFault {
		violate("no progress after the fault cleared (%d then, %d now)", rep.UpdatesAtFault, rep.Updates)
	}
	if late != nil && late.sub != nil && check.Last(late.sub.ID()) <= uint64(rep.LateReplayed) {
		violate("late subscriber never advanced past its replayed window")
	}
	if rep.Stats.Reattaches != 1 {
		violate("reattaches = %d, want 1", rep.Stats.Reattaches)
	}
	if rep.Stats.UpstreamResumes == 0 {
		violate("recovery resumed no fragment streams")
	}
	if rep.Stats.CacheHits == 0 || rep.Stats.ReplayedEpochs == 0 {
		violate("cache never served a replay (hits=%d, epochs=%d)",
			rep.Stats.CacheHits, rep.Stats.ReplayedEpochs)
	}
	if !coord.Alive() {
		violate("coordinator not alive at end of run")
	}

	if err := coord.Close(); err != nil && err != gateway.ErrClosed {
		violate("coordinator close: %v", err)
	}
	if err := gw.Close(); err != nil && err != gateway.ErrClosed {
		violate("gateway close: %v", err)
	}
	if err := CheckGoroutines(baseline, 2*time.Second); err != nil {
		violate("%v", err)
	}
	sort.Strings(rep.Violations)
	rep.Traces = tracing.Collect(shareRec, gwRec).JSON()
	return rep, nil
}
