package chaos

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestBuiltinRoundTrip(t *testing.T) {
	for _, name := range BuiltinNames() {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatalf("Builtin(%q): %v", name, err)
		}
		back, err := ParseScenario(sc.String())
		if err != nil {
			t.Fatalf("reparse %q:\n%s\n%v", name, sc.String(), err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Errorf("%q did not round-trip:\n%#v\n%#v", name, sc, back)
		}
	}
	if _, err := Builtin("nope"); err == nil {
		t.Fatalf("Builtin(nope) succeeded")
	}
}

func TestParseScenario(t *testing.T) {
	text := `
# a comment
scenario demo
seed 7
at 10s fail 3      # inline comment
at 1m loss 0.25 for 30s
at 90s crash
at 20s revive 3
expect completeness >= 0.5
expect gaps <= 2
`
	sc, err := ParseScenario(text)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "demo" || sc.Seed != 7 || sc.MinCompleteness != 0.5 || sc.MaxGaps != 2 {
		t.Fatalf("header mismatch: %+v", sc)
	}
	if len(sc.Steps) != 4 {
		t.Fatalf("want 4 steps, got %d", len(sc.Steps))
	}
	// Sorted by time: fail@10s, revive@20s, loss@60s, crash@90s.
	kinds := []StepKind{StepFail, StepRevive, StepLoss, StepCrash}
	for i, k := range kinds {
		if sc.Steps[i].Kind != k {
			t.Fatalf("step %d: want %v, got %v", i, k, sc.Steps[i].Kind)
		}
	}
	if got := len(sc.Crashes()); got != 1 {
		t.Fatalf("Crashes: want 1, got %d", got)
	}
	if got := len(sc.EngineSteps()); got != 3 {
		t.Fatalf("EngineSteps: want 3, got %d", got)
	}

	for _, bad := range []string{
		"at 10s fail 3\n",                        // no name
		"scenario x\nfrobnicate\n",               // unknown directive
		"scenario x\nat 10s melt 3\n",            // unknown step
		"scenario x\nat 10s loss 1.5 for 10s\n",  // rate out of range
		"scenario x\nat 10s loss 0.5\n",          // missing for
		"scenario x\nat 10s fail zero\n",         // bad node
		"scenario x\nexpect completeness <= 1\n", // wrong operator
		"scenario x\nexpect latency >= 1\n",      // unknown metric
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) succeeded, want error", bad)
		}
	}
}

func TestDirectivesCoverStepKinds(t *testing.T) {
	have := strings.Join(Directives(), " ")
	for _, k := range []StepKind{StepFail, StepRevive, StepPartition, StepHeal, StepLoss, StepCrash} {
		if !strings.Contains(have, k.String()) {
			t.Errorf("Directives() misses step keyword %q", k)
		}
	}
}

// runBuiltin runs one builtin scenario with a per-test WAL.
func runBuiltin(t *testing.T, name string, seed int64) *Report {
	t.Helper()
	sc, err := Builtin(name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunScenario(RunConfig{
		Scenario: sc,
		Seed:     seed,
		WALPath:  filepath.Join(t.TempDir(), name+".wal"),
	})
	if err != nil {
		t.Fatalf("RunScenario(%s): %v", name, err)
	}
	return rep
}

func TestScenarioNoneIsClean(t *testing.T) {
	rep := runBuiltin(t, "none", 1)
	if len(rep.Violations) != 0 {
		t.Fatalf("violations under no faults: %v", rep.Violations)
	}
	if rep.Updates == 0 || rep.Rows == 0 {
		t.Fatalf("no deliveries: %+v", rep)
	}
	if rep.Completeness < 0.9 {
		t.Fatalf("faultless completeness %.3f < 0.9", rep.Completeness)
	}
	if rep.Crashes != 0 || rep.Reconnects != 0 {
		t.Fatalf("phantom crash activity: %+v", rep)
	}
	if rep.Stats.DedupHits == 0 {
		t.Fatalf("workload never exercised semantic dedup: %+v", rep.Stats)
	}
}

// TestCrashRecoveryInvariants is the acceptance test for the tentpole: a
// scripted scenario kills and restarts the gateway twice mid-run; every
// client must resume its streams with no duplicate delivery and no
// permanently lost epochs (contiguous sequence numbers across both
// crash/recover cycles), with the invariant checker asserting it.
func TestCrashRecoveryInvariants(t *testing.T) {
	rep := runBuiltin(t, "crash", 1)
	if len(rep.Violations) != 0 {
		t.Fatalf("invariant violations: %v", rep.Violations)
	}
	if rep.Crashes != 2 {
		t.Fatalf("want 2 crash/recover cycles, got %d", rep.Crashes)
	}
	if rep.Duplicates != 0 {
		t.Fatalf("duplicate deliveries after resume: %d", rep.Duplicates)
	}
	if rep.Gaps != 0 {
		t.Fatalf("permanently lost epochs (sequence gaps): %d", rep.Gaps)
	}
	if want := int64(rep.Clients * rep.Crashes); rep.Reconnects != want {
		t.Fatalf("reconnects: want %d, got %d", want, rep.Reconnects)
	}
	if rep.Stats.Recoveries != 1 {
		t.Fatalf("final gateway not marked recovered: %+v", rep.Stats)
	}
	if rep.Stats.Attaches != int64(rep.Clients) || rep.Stats.Resumes != int64(rep.Clients) {
		// The final gateway saw the second cycle's re-attachments.
		t.Fatalf("attach/resume accounting off: %+v", rep.Stats)
	}
	if rep.Updates == 0 {
		t.Fatalf("no deliveries survived the crashes")
	}
	// The readiness invariant: one probe before the first round plus a
	// 503-during-outage and 200-after-replay pair per crash, all of which
	// must have seen the expected status (a mismatch is a violation, and
	// Violations was asserted empty above).
	if want := 1 + 2*rep.Crashes; rep.ReadyProbes != want {
		t.Fatalf("readiness probes: want %d, got %d", want, rep.ReadyProbes)
	}
}

func TestScenarioRunsAreDeterministic(t *testing.T) {
	a := runBuiltin(t, "mixed", 5)
	b := runBuiltin(t, "mixed", 5)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same scenario+seed diverged:\n%s\n%s", ja, jb)
	}
}

// TestChaosSoak drives the kitchen-sink scenario; `make chaos-soak` runs it
// under the race detector in CI.
func TestChaosSoak(t *testing.T) {
	rep := runBuiltin(t, "mixed", 3)
	if len(rep.Violations) != 0 {
		t.Fatalf("invariant violations: %v", rep.Violations)
	}
	if rep.Crashes != 2 {
		t.Fatalf("want 2 crashes, got %d", rep.Crashes)
	}
	if rep.FaultEvents != 7 {
		t.Fatalf("want 7 fault events, got %d", rep.FaultEvents)
	}
	if want := 1 + 2*rep.Crashes; rep.ReadyProbes != want {
		t.Fatalf("readiness probes: want %d, got %d", want, rep.ReadyProbes)
	}
}
