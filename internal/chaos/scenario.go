// Package chaos is the fault-injection harness of the serving stack: it
// drives the simulation + gateway tiers through scripted failure schedules
// — node churn, bursty link loss, topology partitions, gateway crashes with
// recovery — while invariant checkers assert that the system degrades the
// way it promises to: no duplicate result delivery, monotonic per-stream
// sequence numbers, bounded completeness loss, and no goroutine leaks after
// drain.
//
// A Scenario is a seeded, composable schedule of Steps in a small text
// format (see ParseScenario); Builtin provides canned scenarios for the
// chaos study and the soak target. Engine-level steps (everything except
// gateway crashes) inject through gateway.Config.OnSim, which re-applies
// them during crash-recovery replay — the recovered world relives the same
// faults, which is what makes recovery deterministic under chaos.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/network"
	"repro/internal/topology"
)

// StepKind discriminates fault-injection steps.
type StepKind uint8

// Step kinds.
const (
	// StepFail takes one node down (idempotently).
	StepFail StepKind = iota + 1
	// StepRevive brings one node back up.
	StepRevive
	// StepPartition cuts the whole routing subtree under a node off the
	// network — a region partition.
	StepPartition
	// StepHeal reverses a partition.
	StepHeal
	// StepLoss raises the radio medium's loss rate to Rate for For, then
	// restores the configured base rate — an interference burst.
	StepLoss
	// StepCrash kills the gateway process; the harness recovers it from its
	// WAL and the clients reconnect and resume. Not injectable into a bare
	// simulation (ttmqo-sim rejects it).
	StepCrash
)

func (k StepKind) String() string {
	switch k {
	case StepFail:
		return "fail"
	case StepRevive:
		return "revive"
	case StepPartition:
		return "partition"
	case StepHeal:
		return "heal"
	case StepLoss:
		return "loss"
	case StepCrash:
		return "crash"
	default:
		return fmt.Sprintf("step(%d)", uint8(k))
	}
}

// Step is one scheduled fault event.
type Step struct {
	// At is the virtual time the step fires.
	At   time.Duration
	Kind StepKind
	// Node is the target (StepFail, StepRevive, StepPartition, StepHeal).
	Node topology.NodeID
	// Rate is the burst loss probability (StepLoss).
	Rate float64
	// For is the burst duration (StepLoss).
	For time.Duration
}

func (s Step) String() string {
	switch s.Kind {
	case StepLoss:
		return fmt.Sprintf("at %v loss %g for %v", s.At, s.Rate, s.For)
	case StepCrash:
		return fmt.Sprintf("at %v crash", s.At)
	default:
		return fmt.Sprintf("at %v %s %d", s.At, s.Kind, s.Node)
	}
}

// Scenario is a named, seeded fault schedule plus the bounds the run is
// expected to stay within.
type Scenario struct {
	Name string
	// Seed overrides the harness seed when non-zero, so a scenario file
	// pins its whole world.
	Seed int64
	// Steps is the schedule, ordered by At.
	Steps []Step
	// MinCompleteness is the lowest acceptable delivered/expected row ratio
	// (harness default when 0) — the "bounded completeness loss" invariant.
	MinCompleteness float64
	// MaxGaps bounds the permitted resume-gap updates (0 = none): sequence
	// numbers skipped because a bounded resume ring overflowed while a
	// client was away.
	MaxGaps int64
}

// Crashes returns the virtual times of the scenario's gateway crashes.
func (sc *Scenario) Crashes() []time.Duration {
	var out []time.Duration
	for _, s := range sc.Steps {
		if s.Kind == StepCrash {
			out = append(out, s.At)
		}
	}
	return out
}

// EngineSteps returns the steps injected directly into the simulation
// engine — everything except gateway crashes.
func (sc *Scenario) EngineSteps() []Step {
	var out []Step
	for _, s := range sc.Steps {
		if s.Kind != StepCrash {
			out = append(out, s)
		}
	}
	return out
}

// Horizon returns the virtual time of the last scheduled effect (including
// the end of loss bursts).
func (sc *Scenario) Horizon() time.Duration {
	var h time.Duration
	for _, s := range sc.Steps {
		end := s.At
		if s.Kind == StepLoss {
			end += s.For
		}
		if end > h {
			h = end
		}
	}
	return h
}

// String renders the scenario in the text format ParseScenario reads; the
// two round-trip.
func (sc *Scenario) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s\n", sc.Name)
	if sc.Seed != 0 {
		fmt.Fprintf(&sb, "seed %d\n", sc.Seed)
	}
	for _, s := range sc.Steps {
		fmt.Fprintln(&sb, s)
	}
	if sc.MinCompleteness > 0 {
		fmt.Fprintf(&sb, "expect completeness >= %g\n", sc.MinCompleteness)
	}
	if sc.MaxGaps > 0 {
		fmt.Fprintf(&sb, "expect gaps <= %d\n", sc.MaxGaps)
	}
	return sb.String()
}

// Directives lists every keyword of the scenario text format, pinned by the
// documentation tests so the EXPERIMENTS walkthrough cannot drift.
func Directives() []string {
	return []string{
		"scenario", "seed", "at", "expect",
		"fail", "revive", "partition", "heal", "loss", "crash",
		"for", "completeness", "gaps",
	}
}

// ParseScenario reads the scenario text format: one directive per line,
// '#' comments. Directives:
//
//	scenario <name>
//	seed <n>
//	at <dur> fail <node>
//	at <dur> revive <node>
//	at <dur> partition <node>
//	at <dur> heal <node>
//	at <dur> loss <rate> for <dur>
//	at <dur> crash
//	expect completeness >= <ratio>
//	expect gaps <= <n>
//
// Durations use Go syntax ("32s", "2m"). Steps are sorted by time; equal
// times keep file order.
func ParseScenario(text string) (*Scenario, error) {
	sc := &Scenario{}
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("chaos: line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "scenario":
			if len(f) != 2 {
				return nil, fail("want: scenario <name>")
			}
			sc.Name = f[1]
		case "seed":
			if len(f) != 2 {
				return nil, fail("want: seed <n>")
			}
			n, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				return nil, fail("bad seed %q: %v", f[1], err)
			}
			sc.Seed = n
		case "at":
			step, err := parseStep(f)
			if err != nil {
				return nil, fail("%v", err)
			}
			sc.Steps = append(sc.Steps, step)
		case "expect":
			if err := parseExpect(sc, f); err != nil {
				return nil, fail("%v", err)
			}
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if sc.Name == "" {
		return nil, fmt.Errorf("chaos: scenario has no name (missing 'scenario <name>' line)")
	}
	sort.SliceStable(sc.Steps, func(i, j int) bool { return sc.Steps[i].At < sc.Steps[j].At })
	return sc, nil
}

func parseStep(f []string) (Step, error) {
	if len(f) < 3 {
		return Step{}, fmt.Errorf("want: at <dur> <step> ...")
	}
	at, err := time.ParseDuration(f[1])
	if err != nil {
		return Step{}, fmt.Errorf("bad time %q: %v", f[1], err)
	}
	step := Step{At: at}
	node := func() (topology.NodeID, error) {
		if len(f) != 4 {
			return 0, fmt.Errorf("want: at <dur> %s <node>", f[2])
		}
		n, err := strconv.Atoi(f[3])
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("bad node %q", f[3])
		}
		return topology.NodeID(n), nil
	}
	switch f[2] {
	case "fail":
		step.Kind = StepFail
		step.Node, err = node()
	case "revive":
		step.Kind = StepRevive
		step.Node, err = node()
	case "partition":
		step.Kind = StepPartition
		step.Node, err = node()
	case "heal":
		step.Kind = StepHeal
		step.Node, err = node()
	case "loss":
		step.Kind = StepLoss
		if len(f) != 6 || f[4] != "for" {
			return Step{}, fmt.Errorf("want: at <dur> loss <rate> for <dur>")
		}
		step.Rate, err = strconv.ParseFloat(f[3], 64)
		if err != nil || step.Rate < 0 || step.Rate >= 1 {
			return Step{}, fmt.Errorf("bad loss rate %q (want [0,1))", f[3])
		}
		step.For, err = time.ParseDuration(f[5])
		if err != nil || step.For <= 0 {
			return Step{}, fmt.Errorf("bad burst duration %q", f[5])
		}
	case "crash":
		step.Kind = StepCrash
		if len(f) != 3 {
			return Step{}, fmt.Errorf("want: at <dur> crash")
		}
	default:
		return Step{}, fmt.Errorf("unknown step %q", f[2])
	}
	if err != nil {
		return Step{}, err
	}
	return step, nil
}

func parseExpect(sc *Scenario, f []string) error {
	if len(f) != 4 {
		return fmt.Errorf("want: expect <metric> <op> <value>")
	}
	switch f[1] {
	case "completeness":
		if f[2] != ">=" {
			return fmt.Errorf("completeness takes >=")
		}
		v, err := strconv.ParseFloat(f[3], 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("bad completeness bound %q (want (0,1])", f[3])
		}
		sc.MinCompleteness = v
	case "gaps":
		if f[2] != "<=" {
			return fmt.Errorf("gaps takes <=")
		}
		n, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("bad gaps bound %q", f[3])
		}
		sc.MaxGaps = n
	default:
		return fmt.Errorf("unknown expect metric %q", f[1])
	}
	return nil
}

// BuiltinNames lists the canned scenarios in study order.
func BuiltinNames() []string {
	return []string{"none", "churn", "burst", "partition", "crash", "mixed"}
}

// Builtin returns a canned scenario by name (see BuiltinNames). The
// schedules assume the harness default 4x4 grid and ~3 minutes of virtual
// time; their seeds are zero so the harness seed applies.
func Builtin(name string) (*Scenario, error) {
	switch name {
	case "none":
		return &Scenario{Name: "none"}, nil
	case "churn":
		// Staggered single-node outages with overlapping lifetimes.
		return &Scenario{Name: "churn", Steps: []Step{
			{At: 16 * time.Second, Kind: StepFail, Node: 5},
			{At: 24 * time.Second, Kind: StepFail, Node: 9},
			{At: 48 * time.Second, Kind: StepRevive, Node: 5},
			{At: 56 * time.Second, Kind: StepFail, Node: 12},
			{At: 64 * time.Second, Kind: StepRevive, Node: 9},
			{At: 96 * time.Second, Kind: StepRevive, Node: 12},
		}}, nil
	case "burst":
		// Two interference bursts of time-varying link loss.
		return &Scenario{Name: "burst", Steps: []Step{
			{At: 32 * time.Second, Kind: StepLoss, Rate: 0.5, For: 32 * time.Second},
			{At: 96 * time.Second, Kind: StepLoss, Rate: 0.7, For: 16 * time.Second},
		}}, nil
	case "partition":
		// A region cut: the subtree under node 2 leaves and rejoins.
		return &Scenario{Name: "partition", Steps: []Step{
			{At: 32 * time.Second, Kind: StepPartition, Node: 2},
			{At: 80 * time.Second, Kind: StepHeal, Node: 2},
		}}, nil
	case "crash":
		// Two gateway crash/recover cycles mid-stream.
		return &Scenario{Name: "crash", Steps: []Step{
			{At: 48 * time.Second, Kind: StepCrash},
			{At: 112 * time.Second, Kind: StepCrash},
		}}, nil
	case "mixed":
		// Everything at once: churn + a burst + a partition around a crash.
		return &Scenario{Name: "mixed", Steps: []Step{
			{At: 16 * time.Second, Kind: StepFail, Node: 9},
			{At: 32 * time.Second, Kind: StepLoss, Rate: 0.4, For: 32 * time.Second},
			{At: 40 * time.Second, Kind: StepPartition, Node: 2},
			{At: 56 * time.Second, Kind: StepCrash},
			{At: 72 * time.Second, Kind: StepRevive, Node: 9},
			{At: 96 * time.Second, Kind: StepHeal, Node: 2},
			{At: 128 * time.Second, Kind: StepCrash},
		}, MinCompleteness: 0.1}, nil
	default:
		return nil, fmt.Errorf("chaos: unknown builtin scenario %q (have %s)",
			name, strings.Join(BuiltinNames(), ", "))
	}
}

// Load resolves a scenario reference: a builtin name, or the contents of a
// scenario file already read into text form.
func Load(nameOrText string) (*Scenario, error) {
	if !strings.Contains(nameOrText, "\n") && !strings.Contains(nameOrText, " ") {
		return Builtin(nameOrText)
	}
	return ParseScenario(nameOrText)
}

// Inject schedules every engine-level step on a simulation. It must run
// before the simulation starts (gateway.Config.OnSim does this at build
// time, including during crash-recovery replay — the recovered world
// relives the same faults). Loss bursts restore the rate the medium had at
// injection time. Crash steps are not engine-level; callers that cannot
// honour them (ttmqo-sim) should reject scenarios where Crashes() is
// non-empty.
func Inject(s *network.Simulation, steps []Step) int {
	base := s.LossRate()
	eng := s.Engine()
	n := 0
	for _, st := range steps {
		st := st
		switch st.Kind {
		case StepFail:
			eng.Schedule(st.At, func() { s.FailNode(st.Node) })
		case StepRevive:
			eng.Schedule(st.At, func() { s.ReviveNode(st.Node) })
		case StepPartition:
			eng.Schedule(st.At, func() { s.FailRegion(st.Node) })
		case StepHeal:
			eng.Schedule(st.At, func() { s.HealRegion(st.Node) })
		case StepLoss:
			eng.Schedule(st.At, func() { s.SetLossRate(st.Rate) })
			eng.Schedule(st.At+st.For, func() { s.SetLossRate(base) })
		default:
			continue
		}
		n++
	}
	return n
}
