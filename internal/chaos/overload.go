package chaos

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/federation"
	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Overload drills: the resilience layer's chaos scenarios, exercising the
// serving stack's behavior under demand it cannot absorb rather than
// under injected faults.
//
//   - thundering-herd: a burst of clients far larger than the admission
//     bound all subscribe at once over real TCP. The mailbox depth must
//     stay bounded, every shed client must honor the server's retry-after
//     floor, and the backoff re-subscribes must not double-admit — each
//     client ends with exactly one live subscription and an exactly-once
//     stream.
//   - slow-loris: a subscriber stops reading its result stream while
//     holding the connection open. The server's write deadline (or the
//     gateway's slow-consumer eviction, whichever fires first) must drop
//     it, the healthy subscribers must keep progressing, and no forwarder
//     goroutine may stay wedged behind the dead socket.
//   - stuck-shard: one federation shard wedges without crashing. Its
//     circuit breaker must trip, cross-shard queries must keep releasing
//     epochs marked degraded with a coverage fraction (no watermark
//     deadlock), and after the shard un-wedges a half-open probe must
//     close the breaker and return coverage to 1.0.

// OverloadScenarioNames lists the overload drills in study order. Like
// the federation drills they stay out of BuiltinNames: they need a
// TCP server or a router fleet, not a bare gateway.
func OverloadScenarioNames() []string {
	return []string{"thundering-herd", "slow-loris", "stuck-shard"}
}

// ---------------------------------------------------------------------------
// thundering-herd

// HerdConfig parametrizes the thundering-herd drill.
type HerdConfig struct {
	// Seed seeds the world (1 if zero).
	Seed int64
	// Side is the grid side (DefaultSide if zero).
	Side int
	// Clients is the herd size (24 if zero); it should dwarf MaxStaged or
	// the drill is vacuous.
	Clients int
	// MaxStaged is the gateway's admission bound (4 if zero).
	MaxStaged int
	// Epochs is how many fresh epochs each subscriber must receive after
	// the herd clears (2 if zero).
	Epochs int
}

// HerdReport is the outcome of the thundering-herd drill.
type HerdReport struct {
	Scenario  string `json:"scenario"`
	Seed      int64  `json:"seed"`
	Clients   int    `json:"clients"`
	MaxStaged int    `json:"max_staged"`
	// Sheds counts client-observed overload rejections (each one slept
	// through the jittered backoff); StatsSheds the server-side total.
	Sheds      int64 `json:"sheds"`
	StatsSheds int64 `json:"stats_sheds"`
	// MaxStagedSeen is the deepest mailbox observed while the herd ran;
	// the bound invariant is MaxStagedSeen <= MaxStaged.
	MaxStagedSeen int `json:"max_staged_seen"`
	// MinSleepMS is the shortest backoff any shed client slept; the
	// retry-after invariant is MinSleepMS >= the server's hint floor.
	MinSleepMS int64 `json:"min_sleep_ms"`
	// P99SubscribeMS is the 99th-percentile wall-clock time from first
	// subscribe attempt to admission across the herd.
	P99SubscribeMS int64 `json:"p99_subscribe_ms"`
	// Updates / invariant counters over the post-admission streams.
	Updates         int64         `json:"updates"`
	Duplicates      int64         `json:"duplicates"`
	Gaps            int64         `json:"gaps"`
	OrderViolations int64         `json:"order_violations"`
	Stats           gateway.Stats `json:"stats"`
	Violations      []string      `json:"violations,omitempty"`
}

// herdRetryAfter is the drill's shed hint floor, small so retries resolve
// in test time while still being asserted against every observed sleep.
const herdRetryAfter = 10 * time.Millisecond

// RunHerdScenario drives the thundering-herd drill over a real TCP
// server: Clients sockets subscribe simultaneously against a MaxStaged
// admission bound and retry shed rejections with the client backoff
// policy until every one of them is admitted.
func RunHerdScenario(cfg HerdConfig) (*HerdReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Side <= 0 {
		cfg.Side = DefaultSide
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 24
	}
	if cfg.MaxStaged <= 0 {
		cfg.MaxStaged = 4
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 2
	}

	baseline := runtime.NumGoroutine()
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	gw, err := gateway.New(gateway.Config{
		Sim:            network.Config{Topo: topo, Scheme: network.TTMQO, Seed: cfg.Seed},
		MaxStaged:      cfg.MaxStaged,
		ShedRetryAfter: herdRetryAfter,
		// Fast hysteresis both ways so the ladder exercises and recovers
		// within the drill's horizon.
		Brownout: resilience.BrownoutConfig{EscalateAfter: 2, RecoverAfter: 2},
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close()
	srv, err := gateway.NewServer(gw, gateway.ServerConfig{
		Addr:      "127.0.0.1:0",
		TickEvery: 10 * time.Millisecond,
		Quantum:   DefaultQuantum,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	addr := srv.Addr().String()

	rep := &HerdReport{
		Scenario:  "thundering-herd",
		Seed:      cfg.Seed,
		Clients:   cfg.Clients,
		MaxStaged: cfg.MaxStaged,
	}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	// Mailbox-depth watcher: samples the gateway's staged depth while the
	// herd runs. admitStage must keep it at or under the bound.
	depthStop := make(chan struct{})
	var depthWG sync.WaitGroup
	var depthMu sync.Mutex
	depthWG.Add(1)
	go func() {
		defer depthWG.Done()
		for {
			select {
			case <-depthStop:
				return
			case <-time.After(2 * time.Millisecond):
				if st, err := gw.Status(); err == nil {
					depthMu.Lock()
					if st.Staged > rep.MaxStagedSeen {
						rep.MaxStagedSeen = st.Staged
					}
					depthMu.Unlock()
				}
			}
		}
	}()

	type herdClient struct {
		check    *StreamChecker
		sheds    int64
		minSleep time.Duration
		latency  time.Duration
		err      error
	}
	pool := queryPool()
	clients := make([]*herdClient, cfg.Clients)
	startGate := make(chan struct{})
	readGate := make(chan struct{})
	var subscribed, done sync.WaitGroup
	for i := range clients {
		hc := &herdClient{check: NewStreamChecker()}
		clients[i] = hc
		subscribed.Add(1)
		done.Add(1)
		go func(i int, hc *herdClient) {
			defer done.Done()
			admitted := false
			defer func() {
				if !admitted {
					subscribed.Done()
				}
			}()
			c, err := gateway.Dial(addr, gateway.ClientConfig{Binary: true, Timeout: 15 * time.Second})
			if err != nil {
				hc.err = err
				return
			}
			defer c.Close()
			if _, err := c.Hello(fmt.Sprintf("herd-%02d", i), ""); err != nil {
				hc.err = err
				return
			}
			<-startGate
			t0 := time.Now()
			_, err = c.SubscribeRetry(pool[i%len(pool)].String(), "h", gateway.RetryConfig{
				Attempts: 400,
				Backoff:  resilience.Backoff{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
				Sleep: func(d time.Duration) {
					hc.sheds++
					if hc.minSleep == 0 || d < hc.minSleep {
						hc.minSleep = d
					}
					time.Sleep(d)
				},
			})
			hc.latency = time.Since(t0)
			if err != nil {
				hc.err = err
				return
			}
			admitted = true
			subscribed.Done()
			<-readGate
			for hc.check.Updates < int64(cfg.Epochs) {
				resp, err := c.Recv()
				if err != nil {
					hc.err = fmt.Errorf("stream read: %w", err)
					return
				}
				if resp.Type != gateway.TypeRows && resp.Type != gateway.TypeAgg {
					continue
				}
				hc.check.Observe(gateway.Update{
					Sub: resp.Sub,
					Seq: resp.Seq,
					At:  sim.Time(resp.AtMS) * sim.Time(time.Millisecond),
				})
			}
		}(i, hc)
	}
	close(startGate)
	subscribed.Wait()
	close(depthStop)
	depthWG.Wait()

	// Every herd member is admitted: the no-double-admit invariant is
	// that the retried subscribes applied exactly once each.
	if st, err := gw.Stats(); err == nil {
		if st.Subscribes != int64(cfg.Clients) {
			violate("subscribes applied = %d, want exactly %d (a shed subscribe double-admitted)", st.Subscribes, cfg.Clients)
		}
		if st.ActiveSubscriptions != cfg.Clients {
			violate("live subscriptions = %d, want %d", st.ActiveSubscriptions, cfg.Clients)
		}
	}
	close(readGate)
	done.Wait()

	check := NewStreamChecker()
	var latencies []time.Duration
	for i, hc := range clients {
		if hc.err != nil {
			violate("client %d: %v", i, hc.err)
			continue
		}
		check.Merge(hc.check)
		rep.Sheds += hc.sheds
		if hc.sheds > 0 && (rep.MinSleepMS == 0 || hc.minSleep.Milliseconds() < rep.MinSleepMS) {
			rep.MinSleepMS = hc.minSleep.Milliseconds()
		}
		latencies = append(latencies, hc.latency)
	}
	if n := len(latencies); n > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rep.P99SubscribeMS = latencies[(n*99+99)/100-1].Milliseconds()
	}
	rep.Updates = check.Updates
	rep.Duplicates = check.Duplicates
	rep.Gaps = check.Gaps
	rep.OrderViolations = check.OrderViolations
	st, err := gw.Stats()
	if err != nil {
		return nil, err
	}
	rep.Stats = st
	rep.StatsSheds = st.ShedQueue + st.ShedDeadline + st.ShedSubs + st.ShedBrownout

	if rep.Sheds == 0 || rep.StatsSheds == 0 {
		violate("herd never overloaded the mailbox (client sheds=%d, server sheds=%d)", rep.Sheds, rep.StatsSheds)
	}
	if rep.MaxStagedSeen > cfg.MaxStaged {
		violate("mailbox depth %d exceeded the %d bound", rep.MaxStagedSeen, cfg.MaxStaged)
	}
	if rep.Sheds > 0 && rep.MinSleepMS < herdRetryAfter.Milliseconds() {
		violate("a shed client slept %dms, under the %v retry-after floor", rep.MinSleepMS, herdRetryAfter)
	}
	if rep.P99SubscribeMS > 30_000 {
		violate("p99 subscribe latency %dms: admission effectively deadlocked", rep.P99SubscribeMS)
	}
	if check.Duplicates > 0 {
		violate("%d duplicate deliveries after backoff re-subscribe", check.Duplicates)
	}
	if check.Gaps > 0 {
		violate("%d skipped sequence numbers", check.Gaps)
	}
	if check.OrderViolations > 0 {
		violate("%d epoch-order regressions", check.OrderViolations)
	}

	if err := srv.Close(); err != nil {
		violate("server close: %v", err)
	}
	if err := gw.Close(); err != nil && err != gateway.ErrClosed {
		violate("gateway close: %v", err)
	}
	if err := CheckGoroutines(baseline, 2*time.Second); err != nil {
		violate("%v", err)
	}
	sort.Strings(rep.Violations)
	return rep, nil
}

// ---------------------------------------------------------------------------
// slow-loris

// LorisConfig parametrizes the slow-loris drill.
type LorisConfig struct {
	// Seed seeds the world (1 if zero).
	Seed int64
	// Side is the grid side (DefaultSide if zero).
	Side int
	// Healthy is the number of well-behaved subscribers that must keep
	// progressing (2 if zero).
	Healthy int
	// Epochs is how many fresh epochs each healthy subscriber must
	// receive while the loris stalls (25 if zero).
	Epochs int
}

// LorisReport is the outcome of the slow-loris drill.
type LorisReport struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Healthy  int    `json:"healthy"`
	// VictimDropped reports that the server terminated the non-reading
	// subscriber's stream; DropReason says how ("evicted" when the
	// gateway's slow-consumer bound fired and the forwarder delivered a
	// closed notice, "severed" when a blocked write hit the write
	// deadline and the whole connection was cut). VictimDropMS is how
	// long after the stall began the drop was observed.
	VictimDropped bool   `json:"victim_dropped"`
	DropReason    string `json:"drop_reason,omitempty"`
	VictimDropMS  int64  `json:"victim_drop_ms"`
	// Updates / invariant counters over the healthy streams.
	Updates         int64         `json:"updates"`
	Duplicates      int64         `json:"duplicates"`
	Gaps            int64         `json:"gaps"`
	OrderViolations int64         `json:"order_violations"`
	Stats           gateway.Stats `json:"stats"`
	Violations      []string      `json:"violations,omitempty"`
}

// RunSlowLorisScenario drives the slow-loris drill: a subscriber that
// stops reading mid-stream must be dropped by the server's write
// deadline (or evicted by the gateway's slow-consumer bound — the races
// are the point) without wedging the fan-out for anyone else.
func RunSlowLorisScenario(cfg LorisConfig) (*LorisReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Side <= 0 {
		cfg.Side = DefaultSide
	}
	if cfg.Healthy <= 0 {
		cfg.Healthy = 2
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 25
	}

	baseline := runtime.NumGoroutine()
	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	gw, err := gateway.New(gateway.Config{
		Sim: network.Config{Topo: topo, Scheme: network.TTMQO, Seed: cfg.Seed},
		// A small buffer makes the slow-consumer bound fire in test time
		// once the loris stops reading.
		Buffer: 256,
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close()
	srv, err := gateway.NewServer(gw, gateway.ServerConfig{
		Addr:      "127.0.0.1:0",
		TickEvery: 5 * time.Millisecond,
		// A fat quantum makes each tick deliver a burst of epochs, so the
		// victim's unread backlog fills its socket buffers in test time.
		Quantum:      16 * DefaultQuantum,
		WriteTimeout: 150 * time.Millisecond,
		// The loris goes silent in both directions, so the read deadline
		// is its hard backstop: once it expires the handler cuts the
		// connection loose no matter what the kernel still has queued.
		ReadTimeout: 2 * time.Second,
		ForceJSON:   true, // fat frames fill the loris's buffers faster
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	addr := srv.Addr().String()

	rep := &LorisReport{Scenario: "slow-loris", Seed: cfg.Seed, Healthy: cfg.Healthy}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	const rowsQuery = "SELECT nodeid, light EPOCH DURATION 2048"

	// The victim speaks raw NDJSON on a shrunken receive buffer: it
	// subscribes, confirms the stream is live, then never reads again.
	vconn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer vconn.Close()
	if tc, ok := vconn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	vr := bufio.NewReader(vconn)
	vreq := func(line string) error {
		_ = vconn.SetDeadline(time.Now().Add(5 * time.Second))
		_, err := fmt.Fprintln(vconn, line)
		return err
	}
	vrecv := func() (gateway.Response, error) {
		_ = vconn.SetDeadline(time.Now().Add(10 * time.Second))
		line, err := vr.ReadBytes('\n')
		if err != nil {
			return gateway.Response{}, err
		}
		var resp gateway.Response
		return resp, json.Unmarshal(line, &resp)
	}
	if err := vreq(`{"op":"hello","client":"loris"}`); err != nil {
		return nil, err
	}
	if resp, err := vrecv(); err != nil || resp.Type != gateway.TypeHello {
		return nil, fmt.Errorf("loris hello: %v (%+v)", err, resp)
	}
	if err := vreq(fmt.Sprintf(`{"op":"subscribe","query":%q}`, rowsQuery)); err != nil {
		return nil, err
	}
	live := false
	for !live {
		resp, err := vrecv()
		if err != nil {
			return nil, fmt.Errorf("loris stream never started: %w", err)
		}
		if resp.Type == gateway.TypeError {
			return nil, fmt.Errorf("loris subscribe: %s", resp.Error)
		}
		live = resp.Type == gateway.TypeRows
	}
	stallStart := time.Now() // from here on the loris never reads

	// The healthy subscribers must progress right through the stall.
	type healthy struct {
		check *StreamChecker
		err   error
	}
	hs := make([]*healthy, cfg.Healthy)
	var wg sync.WaitGroup
	for i := range hs {
		h := &healthy{check: NewStreamChecker()}
		hs[i] = h
		wg.Add(1)
		go func(i int, h *healthy) {
			defer wg.Done()
			c, err := gateway.Dial(addr, gateway.ClientConfig{Timeout: 15 * time.Second})
			if err != nil {
				h.err = err
				return
			}
			defer c.Close()
			if _, err := c.Hello(fmt.Sprintf("healthy-%d", i), ""); err != nil {
				h.err = err
				return
			}
			if err := c.Send(gateway.Request{Op: gateway.OpSubscribe, Query: rowsQuery, Tag: "h"}); err != nil {
				h.err = err
				return
			}
			for h.check.Updates < int64(cfg.Epochs) {
				resp, err := c.Recv()
				if err != nil {
					h.err = fmt.Errorf("stream read: %w", err)
					return
				}
				switch resp.Type {
				case gateway.TypeError:
					h.err = fmt.Errorf("subscribe: %s", resp.Error)
					return
				case gateway.TypeRows, gateway.TypeAgg:
					h.check.Observe(gateway.Update{
						Sub: resp.Sub,
						Seq: resp.Seq,
						At:  sim.Time(resp.AtMS) * sim.Time(time.Millisecond),
					})
				}
			}
		}(i, h)
	}
	wg.Wait()

	// Give the stall time to bite: the slow-consumer bound fires within
	// the first ticks, the forwarder's blocked write hits the write
	// deadline shortly after, and by the end of this window the silent
	// victim has also outlived the server's read deadline.
	time.Sleep(2600 * time.Millisecond)

	// The victim's backlog overflowed during the stall window. Drain it:
	// an evicted stream ends in a closed notice (the slow-consumer bound
	// fired, the forwarder stayed unwedged); a blocked-write sever ends
	// in a hard read error. A quiet timeout is NOT proof the conn is
	// still served — a severed socket's FIN can sit behind megabytes of
	// undeliverable zero-window backlog — so a silent stream gets poked
	// with a ping: a closed peer socket answers data with an RST, while
	// a live handler answers with a pong, which IS the violation.
	_ = vconn.SetDeadline(time.Now().Add(2500 * time.Millisecond))
	poked := false
	for !rep.VictimDropped {
		line, err := vr.ReadBytes('\n')
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if poked {
					violate("loris conn neither reset nor answering %v after it stopped reading", time.Since(stallStart))
					break
				}
				poked = true
				_ = vconn.SetDeadline(time.Now().Add(2500 * time.Millisecond))
				if _, err := fmt.Fprintf(vconn, `{"op":"ping"}`+"\n"); err != nil {
					rep.VictimDropped = true
					rep.DropReason = "severed"
					rep.VictimDropMS = time.Since(stallStart).Milliseconds()
				}
				continue
			}
			rep.VictimDropped = true
			rep.DropReason = "severed"
			rep.VictimDropMS = time.Since(stallStart).Milliseconds()
			break
		}
		var resp gateway.Response
		if json.Unmarshal(line, &resp) != nil {
			continue
		}
		switch resp.Type {
		case gateway.TypeClosed:
			rep.VictimDropped = true
			rep.DropReason = resp.Reason
			rep.VictimDropMS = time.Since(stallStart).Milliseconds()
		case gateway.TypePong:
			violate("loris conn still served %v after it stopped reading (ping answered)", time.Since(stallStart))
			rep.DropReason = "served"
		}
		if rep.DropReason == "served" {
			break
		}
	}

	check := NewStreamChecker()
	for i, h := range hs {
		if h.err != nil {
			violate("healthy client %d: %v", i, h.err)
			continue
		}
		check.Merge(h.check)
	}
	rep.Updates = check.Updates
	rep.Duplicates = check.Duplicates
	rep.Gaps = check.Gaps
	rep.OrderViolations = check.OrderViolations
	if check.Duplicates > 0 {
		violate("%d duplicate deliveries on healthy streams", check.Duplicates)
	}
	if check.Gaps > 0 {
		violate("%d skipped sequence numbers on healthy streams", check.Gaps)
	}
	if check.OrderViolations > 0 {
		violate("%d epoch-order regressions on healthy streams", check.OrderViolations)
	}
	if check.Updates < int64(cfg.Healthy*cfg.Epochs) {
		violate("healthy subscribers starved behind the loris: %d updates, want >= %d",
			check.Updates, cfg.Healthy*cfg.Epochs)
	}

	// Close must not hang on a wedged forwarder: that IS the drill.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			violate("server close: %v", err)
		}
	case <-time.After(10 * time.Second):
		violate("server close wedged behind the loris connection")
	}
	if st, err := gw.Stats(); err == nil {
		rep.Stats = st
	}
	if rep.DropReason == "evicted" && rep.Stats.Evicted == 0 {
		violate("victim stream closed as evicted but the gateway counted no evictions")
	}
	if err := gw.Close(); err != nil && err != gateway.ErrClosed {
		violate("gateway close: %v", err)
	}
	vconn.Close()
	if err := CheckGoroutines(baseline, 2*time.Second); err != nil {
		violate("%v", err)
	}
	sort.Strings(rep.Violations)
	return rep, nil
}

// ---------------------------------------------------------------------------
// stuck-shard

// StuckShardConfig parametrizes the stuck-shard drill.
type StuckShardConfig struct {
	// Seed seeds every shard's world (1 if zero).
	Seed int64
	// Shards is the fleet size (DefaultFedShards if zero).
	Shards int
	// Side is each shard's grid side (DefaultFedSide if zero).
	Side int
	// Clients is the number of downstream sessions (DefaultClients if zero).
	Clients int
	// Quantum is the virtual time per round (DefaultQuantum if zero).
	Quantum time.Duration
	// Rounds is the number of advance/drain rounds (DefaultRounds if zero).
	Rounds int
}

// StuckShardReport is the outcome of the stuck-shard drill.
type StuckShardReport struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Shards   int    `json:"shards"`
	Clients  int    `json:"clients"`
	Rounds   int    `json:"rounds"`
	// Updates at the fault and clear rounds bracket the degraded window:
	// UpdatesAtClear > UpdatesAtFault is the no-watermark-deadlock
	// invariant (epochs kept releasing while the shard was wedged).
	Updates        int64 `json:"updates"`
	UpdatesAtFault int64 `json:"updates_at_fault"`
	UpdatesAtClear int64 `json:"updates_at_clear"`
	// DegradedUpdates counts deliveries marked degraded; MinCoverage is
	// the worst coverage fraction they carried.
	DegradedUpdates int64   `json:"degraded_updates"`
	MinCoverage     float64 `json:"min_coverage"`
	// Invariant counters (see StreamChecker).
	Duplicates      int64            `json:"duplicates"`
	Gaps            int64            `json:"gaps"`
	OrderViolations int64            `json:"order_violations"`
	Stats           federation.Stats `json:"stats"`
	Violations      []string         `json:"violations,omitempty"`
}

// Stuck-shard rounds: the wedge lands at stuckFaultRound and clears at
// stuckClearRound; with the drill's TripAfter=2/Cooldown=2 breaker the
// trip, the failed mid-wedge probe, the re-trip and the successful
// post-clear probe all land inside the default 16-round horizon.
const (
	stuckFaultRound = 4
	stuckClearRound = 8
)

// RunStuckShardScenario drives a router fleet through the stuck-shard
// drill: the victim shard stops advancing without crashing (its gateway
// stays alive and reachable), which only the circuit breaker — not the
// crash or partition machinery — can detect and route around.
func RunStuckShardScenario(cfg StuckShardConfig) (*StuckShardReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultFedShards
	}
	if cfg.Side <= 0 {
		cfg.Side = DefaultFedSide
	}
	if cfg.Clients <= 0 {
		cfg.Clients = DefaultClients
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = DefaultRounds
	}
	if cfg.Rounds <= stuckClearRound+3 {
		return nil, fmt.Errorf("chaos: stuck-shard drill needs more than %d rounds", stuckClearRound+3)
	}

	baseline := runtime.NumGoroutine()
	rt, err := federation.New(federation.Config{
		Shards:  cfg.Shards,
		Side:    cfg.Side,
		Seed:    cfg.Seed,
		Breaker: resilience.BreakerConfig{TripAfter: 2, Cooldown: 2},
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	rep := &StuckShardReport{
		Scenario:    "stuck-shard",
		Seed:        cfg.Seed,
		Shards:      cfg.Shards,
		Clients:     cfg.Clients,
		Rounds:      cfg.Rounds,
		MinCoverage: 1,
	}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	pool := fedQueryPool(cfg.Shards, cfg.Side)
	check := NewStreamChecker()
	var subs []*federation.Sub
	var tickets []*federation.Ticket
	for c := 0; c < cfg.Clients; c++ {
		sess, err := rt.Register(fmt.Sprintf("chaos-%d", c))
		if err != nil {
			return nil, err
		}
		for s := 0; s < 2; s++ {
			tk, err := sess.SubscribeAsync(pool[(c*2+s)%len(pool)])
			if err != nil {
				return nil, err
			}
			tickets = append(tickets, tk)
		}
	}
	if _, err := rt.Advance(cfg.Quantum); err != nil {
		return nil, err
	}
	for _, tk := range tickets {
		sub, err := tk.Wait()
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}

	victim := cfg.Shards - 1
	lastDegraded := false
	drainAll := func() {
		for _, sub := range subs {
			for {
				select {
				case u, ok := <-sub.Updates():
					if !ok {
						violate("stream %d closed mid-run (%s)", sub.ID(), sub.Reason())
						return
					}
					if check.Observe(u) {
						lastDegraded = u.Degraded
						if u.Degraded {
							rep.DegradedUpdates++
							if u.Coverage < rep.MinCoverage {
								rep.MinCoverage = u.Coverage
							}
						}
					}
				default:
					return
				}
			}
		}
	}

	for round := 1; round < cfg.Rounds; round++ {
		if round == stuckFaultRound {
			rep.UpdatesAtFault = check.Updates
			if err := rt.StallShard(victim, true); err != nil {
				return nil, err
			}
		}
		if round == stuckClearRound {
			rep.UpdatesAtClear = check.Updates
			if err := rt.StallShard(victim, false); err != nil {
				return nil, err
			}
		}
		if _, err := rt.Advance(cfg.Quantum); err != nil {
			return nil, err
		}
		drainAll()
	}

	rep.Stats = rt.FedStats()
	rep.Updates = check.Updates
	rep.Duplicates = check.Duplicates
	rep.Gaps = check.Gaps
	rep.OrderViolations = check.OrderViolations

	if check.Duplicates > 0 {
		violate("%d duplicate deliveries", check.Duplicates)
	}
	if check.Gaps > 0 {
		violate("%d skipped sequence numbers", check.Gaps)
	}
	if check.OrderViolations > 0 {
		violate("%d epoch-order regressions", check.OrderViolations)
	}
	if rep.UpdatesAtFault == 0 {
		violate("no deliveries before the wedge")
	}
	if rep.UpdatesAtClear <= rep.UpdatesAtFault {
		violate("watermark deadlock: no releases while the shard was wedged (%d then, %d at clear)",
			rep.UpdatesAtFault, rep.UpdatesAtClear)
	}
	if rep.Updates <= rep.UpdatesAtClear {
		violate("no progress after the wedge cleared (%d then, %d now)", rep.UpdatesAtClear, rep.Updates)
	}
	if rep.DegradedUpdates == 0 {
		violate("breaker never produced a degraded release")
	}
	if rep.MinCoverage <= 0 || rep.MinCoverage >= 1 {
		violate("degraded coverage fraction %v outside (0, 1)", rep.MinCoverage)
	}
	if lastDegraded {
		violate("coverage never returned to 1.0 after the probe closed the breaker")
	}
	if rep.Stats.BreakerTrips == 0 {
		violate("breaker never tripped")
	}
	if rep.Stats.BreakerProbes == 0 {
		violate("breaker never probed half-open")
	}
	if rep.Stats.BreakerRecoveries == 0 {
		violate("breaker never recovered")
	}
	if rep.Stats.DegradedEpochs == 0 {
		violate("router released no degraded epochs")
	}
	if rep.Stats.ShardStalls != 1 {
		violate("shard stalls = %d, want 1", rep.Stats.ShardStalls)
	}
	if rep.Stats.StalledShards != 0 {
		violate("%d shard(s) still wedged at end of run", rep.Stats.StalledShards)
	}
	if got := rt.ShardBreaker(victim); got != resilience.BreakerClosed {
		violate("victim breaker %v at end of run, want closed", got)
	}
	for i := 0; i < cfg.Shards; i++ {
		if !rt.ShardAlive(i) {
			violate("shard %d not alive at end of run", i)
		}
	}

	if err := rt.Close(); err != nil && err != gateway.ErrClosed {
		violate("router close: %v", err)
	}
	if err := CheckGoroutines(baseline, 2*time.Second); err != nil {
		violate("%v", err)
	}
	sort.Strings(rep.Violations)
	return rep, nil
}
