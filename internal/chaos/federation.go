package chaos

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/federation"
	"repro/internal/gateway"
	"repro/internal/query"
)

// Federation fault drills: whole-shard failures injected at the router
// tier, above the engine-level node faults the single-gateway scenarios
// cover.
//
//   - kill-a-shard: crash one shard's gateway mid-stream, run degraded
//     (cross-shard trees stall at the frozen watermark while the healthy
//     shards keep advancing), then rebuild it from its WAL and resume the
//     canonical upstream streams in place.
//   - partition-the-router: cut the router off from a live shard (the
//     shard keeps advancing; its updates park in bounded resume rings),
//     then heal and replay the parked tail.
//
// Both must preserve the delivery invariants downstream: no duplicate
// sequence numbers, no skipped sequence numbers, no epoch-timestamp
// regressions, and progress must resume after the fault clears.

// FedScenarioNames lists the federation drills in study order. They are
// deliberately NOT part of BuiltinNames: the single-gateway chaos study
// iterates the builtins, and these need a router fleet to run against.
func FedScenarioNames() []string {
	return []string{"kill-a-shard", "partition-the-router"}
}

// Federation harness defaults.
const (
	DefaultFedShards = 2
	DefaultFedSide   = 3
	// fedFaultRound injects the fault at the start of this round;
	// fedClearRound recovers/heals at the start of this one.
	fedFaultRound = 5
	fedClearRound = 9
)

// FedRunConfig parametrizes one federation drill.
type FedRunConfig struct {
	// Scenario is one of FedScenarioNames (required).
	Scenario string
	// Seed seeds every shard's world (1 if zero).
	Seed int64
	// Shards is the fleet size (DefaultFedShards if zero).
	Shards int
	// Side is each shard's grid side (DefaultFedSide if zero).
	Side int
	// Clients is the number of downstream sessions (DefaultClients if zero).
	Clients int
	// Quantum is the virtual time per round (DefaultQuantum if zero).
	Quantum time.Duration
	// Rounds is the number of advance/drain rounds (DefaultRounds if zero).
	Rounds int
	// WALDir enables shard recovery; required by kill-a-shard.
	WALDir string
}

// FedReport is the outcome of one federation drill. Like Report, every
// field is a pure function of configuration and seed.
type FedReport struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Shards   int    `json:"shards"`
	Clients  int    `json:"clients"`
	Rounds   int    `json:"rounds"`
	// Updates/Rows are fresh downstream deliveries; UpdatesAtFault is the
	// cursor when the fault landed (progress after the fault clears is
	// asserted against it).
	Updates        int64 `json:"updates"`
	Rows           int64 `json:"rows"`
	UpdatesAtFault int64 `json:"updates_at_fault"`
	// Invariant counters (see StreamChecker).
	Duplicates      int64 `json:"duplicates"`
	Gaps            int64 `json:"gaps"`
	OrderViolations int64 `json:"order_violations"`
	// Stats is the final router counter snapshot.
	Stats federation.Stats `json:"stats"`
	// Violations lists every invariant breach, sorted; empty means the
	// fleet degraded exactly as promised.
	Violations []string `json:"violations,omitempty"`
}

// fedQueryPool returns the drill workload: a cross-shard recombining
// aggregation, a boundary-spanning region acquisition and a sub-epoch
// aggregation, so the merge, translation and watermark paths all stay hot.
func fedQueryPool(shards, side int) []query.Query {
	spn := side*side - 1
	lo, hi := spn, spn+1 // straddle the shard-0/shard-1 boundary
	if shards == 1 {
		lo, hi = 1, spn
	}
	return []query.Query{
		query.MustParse("SELECT MAX(light), AVG(light) EPOCH DURATION 8192"),
		query.MustParse(fmt.Sprintf("SELECT nodeid, light WHERE nodeid >= %d AND nodeid <= %d EPOCH DURATION 8192", lo, hi)),
		query.MustParse("SELECT MIN(temp), COUNT(temp) EPOCH DURATION 4096"),
	}
}

// RunFederationScenario drives a router fleet through one federation
// drill in phased rounds (stage, advance, drain, check), injecting the
// shard fault at a round boundary without draining first — whatever the
// fault strands in flight must come back through the watermark and resume
// machinery, which is the redelivery guarantee under test.
func RunFederationScenario(cfg FedRunConfig) (*FedReport, error) {
	found := false
	for _, n := range FedScenarioNames() {
		if cfg.Scenario == n {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("chaos: unknown federation scenario %q", cfg.Scenario)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultFedShards
	}
	if cfg.Side <= 0 {
		cfg.Side = DefaultFedSide
	}
	if cfg.Clients <= 0 {
		cfg.Clients = DefaultClients
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = DefaultRounds
	}
	kill := cfg.Scenario == "kill-a-shard"
	if kill && cfg.WALDir == "" {
		return nil, fmt.Errorf("chaos: kill-a-shard needs a WAL directory (FedRunConfig.WALDir)")
	}

	baseline := runtime.NumGoroutine()
	rt, err := federation.New(federation.Config{
		Shards: cfg.Shards,
		Side:   cfg.Side,
		Seed:   cfg.Seed,
		WALDir: cfg.WALDir,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	rep := &FedReport{
		Scenario: cfg.Scenario,
		Seed:     cfg.Seed,
		Shards:   cfg.Shards,
		Clients:  cfg.Clients,
		Rounds:   cfg.Rounds,
	}
	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	// Register every session and stage the workload up front; the drill
	// measures steady-state streams through the fault, not churn.
	pool := fedQueryPool(cfg.Shards, cfg.Side)
	check := NewStreamChecker()
	var subs []*federation.Sub
	var tickets []*federation.Ticket
	for c := 0; c < cfg.Clients; c++ {
		sess, err := rt.Register(fmt.Sprintf("chaos-%d", c))
		if err != nil {
			return nil, err
		}
		for s := 0; s < 2; s++ {
			tk, err := sess.SubscribeAsync(pool[(c*2+s)%len(pool)])
			if err != nil {
				return nil, err
			}
			tickets = append(tickets, tk)
		}
	}
	if _, err := rt.Advance(cfg.Quantum); err != nil {
		return nil, err
	}
	for _, tk := range tickets {
		sub, err := tk.Wait()
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}

	// The victim is never shard 0 so some sessions always stay homed on a
	// healthy shard.
	victim := cfg.Shards - 1
	drainOne := func(sub *federation.Sub) {
		for {
			select {
			case u, ok := <-sub.Updates():
				if !ok {
					violate("stream %d closed mid-run (%s)", sub.ID(), sub.Reason())
					return
				}
				check.Observe(u)
			default:
				return
			}
		}
	}
	drainAll := func() {
		for _, sub := range subs {
			drainOne(sub)
		}
	}

	for round := 1; round < cfg.Rounds; round++ {
		if round == fedFaultRound {
			rep.UpdatesAtFault = check.Updates
			if kill {
				if err := rt.CrashShard(victim); err != nil {
					return nil, err
				}
			} else {
				if err := rt.PartitionShard(victim); err != nil {
					return nil, err
				}
			}
		}
		if round == fedClearRound {
			if kill {
				if err := rt.RecoverShard(victim); err != nil {
					return nil, err
				}
			} else {
				if err := rt.HealShard(victim); err != nil {
					return nil, err
				}
			}
		}
		if _, err := rt.Advance(cfg.Quantum); err != nil {
			return nil, err
		}
		drainAll()
	}

	rep.Stats = rt.FedStats()
	rep.Updates = check.Updates
	rep.Rows = check.Rows
	rep.Duplicates = check.Duplicates
	rep.Gaps = check.Gaps
	rep.OrderViolations = check.OrderViolations

	if check.Duplicates > 0 {
		violate("%d duplicate deliveries", check.Duplicates)
	}
	if check.Gaps > 0 {
		violate("%d skipped sequence numbers", check.Gaps)
	}
	if check.OrderViolations > 0 {
		violate("%d epoch-order regressions", check.OrderViolations)
	}
	if rep.UpdatesAtFault == 0 {
		violate("no deliveries before the fault round")
	}
	if rep.Updates <= rep.UpdatesAtFault {
		violate("no progress after the fault cleared (%d then, %d now)", rep.UpdatesAtFault, rep.Updates)
	}
	for i := 0; i < cfg.Shards; i++ {
		if !rt.ShardAlive(i) {
			violate("shard %d not alive at end of run", i)
		}
	}
	if kill {
		if rep.Stats.ShardCrashes != 1 || rep.Stats.ShardRecoveries != 1 {
			violate("crash/recovery cycle = %d/%d, want 1/1", rep.Stats.ShardCrashes, rep.Stats.ShardRecoveries)
		}
	} else {
		if rep.Stats.Partitions != 1 || rep.Stats.Heals != 1 {
			violate("partition/heal cycle = %d/%d, want 1/1", rep.Stats.Partitions, rep.Stats.Heals)
		}
	}
	if rep.Stats.UpstreamResumes == 0 {
		violate("fault cleared without resuming any upstream stream")
	}

	if err := rt.Close(); err != nil && err != gateway.ErrClosed {
		violate("router close: %v", err)
	}
	if err := CheckGoroutines(baseline, 2*time.Second); err != nil {
		violate("%v", err)
	}
	sort.Strings(rep.Violations)
	return rep, nil
}
