package chaos

import (
	"testing"
)

// TestFederationScenarioValidation covers the config guard rails.
func TestFederationScenarioValidation(t *testing.T) {
	if _, err := RunFederationScenario(FedRunConfig{Scenario: "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := RunFederationScenario(FedRunConfig{Scenario: "kill-a-shard"}); err == nil {
		t.Fatal("kill-a-shard ran without a WAL directory")
	}
}

// TestFederationKillAShard crashes a shard mid-stream, recovers it from
// its WAL and asserts the downstream delivery invariants held throughout.
func TestFederationKillAShard(t *testing.T) {
	rep, err := RunFederationScenario(FedRunConfig{
		Scenario: "kill-a-shard",
		Seed:     7,
		WALDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Stats.ShardCrashes != 1 || rep.Stats.ShardRecoveries != 1 {
		t.Fatalf("crash/recovery = %d/%d, want 1/1", rep.Stats.ShardCrashes, rep.Stats.ShardRecoveries)
	}
	if rep.Updates <= rep.UpdatesAtFault {
		t.Fatalf("no post-recovery progress: %d at fault, %d final", rep.UpdatesAtFault, rep.Updates)
	}
	if rep.Duplicates != 0 || rep.Gaps != 0 || rep.OrderViolations != 0 {
		t.Fatalf("delivery invariants broken: dup=%d gaps=%d order=%d",
			rep.Duplicates, rep.Gaps, rep.OrderViolations)
	}
}

// TestFederationPartitionTheRouter cuts the router off from a live shard,
// heals the link and asserts the parked tail replays without loss.
func TestFederationPartitionTheRouter(t *testing.T) {
	rep, err := RunFederationScenario(FedRunConfig{
		Scenario: "partition-the-router",
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Stats.Partitions != 1 || rep.Stats.Heals != 1 {
		t.Fatalf("partition/heal = %d/%d, want 1/1", rep.Stats.Partitions, rep.Stats.Heals)
	}
}

// TestFederationChaosSoak reruns both drills across seeds; it rides the
// `make chaos-soak` target next to the single-gateway soak.
func TestFederationChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short mode")
	}
	for _, scenario := range FedScenarioNames() {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := FedRunConfig{Scenario: scenario, Seed: seed}
			if scenario == "kill-a-shard" {
				cfg.WALDir = t.TempDir()
			}
			rep, err := RunFederationScenario(cfg)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", scenario, seed, err)
			}
			for _, v := range rep.Violations {
				t.Errorf("%s seed=%d violation: %s", scenario, seed, v)
			}
		}
	}
}
