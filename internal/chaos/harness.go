package chaos

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/field"
	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Harness defaults.
const (
	DefaultSide    = 4
	DefaultClients = 4
	DefaultQuantum = 8192 * time.Millisecond
	DefaultRounds  = 16
	// DefaultMinCompleteness is the bounded-loss floor applied when the
	// scenario does not set its own.
	DefaultMinCompleteness = 0.25
)

// RunConfig parametrizes one scenario run of the chaos harness.
type RunConfig struct {
	// Scenario is the fault schedule to drive (required).
	Scenario *Scenario
	// Seed seeds the world (1 if zero); Scenario.Seed overrides it.
	Seed int64
	// Side of the sensor grid (DefaultSide if zero).
	Side int
	// Scheme selects the in-network plan (network.TTMQO if zero).
	Scheme network.Scheme
	// Clients is the number of subscriber sessions (DefaultClients if zero).
	Clients int
	// Quantum is the virtual time per round (DefaultQuantum if zero).
	Quantum time.Duration
	// Rounds is the number of advance/drain rounds; the default covers the
	// scenario's horizon plus four rounds, at least DefaultRounds.
	Rounds int
	// Buffer overrides the gateway's per-subscriber buffer bound.
	Buffer int
	// WALPath enables gateway crash recovery; required when the scenario
	// contains crash steps.
	WALPath string
}

// Report is the outcome of one scenario run. Every field is a pure function
// of the configuration and seed — no wall clock — so reports are
// byte-identical across reruns and parallelism settings.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Clients  int    `json:"clients"`
	Rounds   int    `json:"rounds"`
	// FaultEvents is the number of scheduled fault steps (engine-level
	// injections plus gateway crashes).
	FaultEvents int `json:"fault_events"`
	// Crashes is the number of gateway crash/recover cycles performed;
	// Reconnects the number of client re-attachments they forced.
	Crashes    int   `json:"crashes"`
	Reconnects int64 `json:"reconnects"`
	// Updates/Rows are fresh client-side deliveries; ExpectedRows is the
	// deterministic field's ground truth for the delivered epochs, and
	// Completeness is Rows/ExpectedRows.
	Updates      int64   `json:"updates"`
	Rows         int64   `json:"rows"`
	ExpectedRows int64   `json:"expected_rows"`
	Completeness float64 `json:"completeness"`
	// Invariant counters (see StreamChecker).
	Duplicates      int64 `json:"duplicates"`
	Gaps            int64 `json:"gaps"`
	OrderViolations int64 `json:"order_violations"`
	// Stats is the final gateway counter snapshot.
	Stats gateway.Stats `json:"stats"`
	// ReadyProbes counts the admin /readyz checks performed (crash
	// scenarios only): one before the first round, then one during and one
	// after every crash/recovery cycle. A probe that sees the wrong status
	// — anything but 503 during the outage, anything but 200 once WAL
	// replay finished — is a violation.
	ReadyProbes int `json:"ready_probes"`
	// Violations lists every invariant breach, sorted; empty means the run
	// degraded exactly as promised.
	Violations []string `json:"violations,omitempty"`
}

// hclient is one subscriber session driven by the harness.
type hclient struct {
	name       string
	token      string
	sess       *gateway.Session
	subs       map[gateway.SubID]*gateway.Subscription
	queries    map[gateway.SubID]query.Query
	check      *StreamChecker
	expected   int64
	reconnects int64
	closures   int64 // streams that ended mid-run for a non-crash reason
	jitter     *sim.Rand
}

// queryPool returns the harness's overlapping acquisition workload; clients
// round-robin over it so the gateway's semantic dedup is always in play.
func queryPool() []query.Query {
	return []query.Query{
		query.MustParse("SELECT nodeid, light WHERE light >= 100 AND light <= 900 EPOCH DURATION 4096"),
		query.MustParse("SELECT nodeid, light WHERE light >= 150 AND light <= 850 EPOCH DURATION 8192"),
		query.MustParse("SELECT nodeid, light WHERE light >= 200 EPOCH DURATION 4096"),
	}
}

// RunScenario drives the full serving stack — simulation, gateway, client
// sessions — through one fault scenario in phased rounds: each round stages
// client activity, advances one quantum of virtual time, and drains the
// update streams through the invariant checkers. Crash steps kill the
// gateway at the next round boundary *without* draining first: whatever the
// crash strands in client channels must come back through recovery's resume
// rings, which is precisely the redelivery guarantee under test. Engine-level
// steps (churn, loss, partitions) inject via gateway.Config.OnSim so
// recovery replays them identically.
func RunScenario(cfg RunConfig) (*Report, error) {
	sc := cfg.Scenario
	if sc == nil {
		return nil, fmt.Errorf("chaos: RunConfig.Scenario is required")
	}
	seed := cfg.Seed
	if sc.Seed != 0 {
		seed = sc.Seed
	}
	if seed == 0 {
		seed = 1
	}
	if cfg.Side == 0 {
		cfg.Side = DefaultSide
	}
	if cfg.Scheme == 0 {
		cfg.Scheme = network.TTMQO
	}
	if cfg.Clients <= 0 {
		cfg.Clients = DefaultClients
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = DefaultQuantum
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = int(sc.Horizon()/cfg.Quantum) + 4
		if cfg.Rounds < DefaultRounds {
			cfg.Rounds = DefaultRounds
		}
	}
	crashes := sc.Crashes()
	if len(crashes) > 0 && cfg.WALPath == "" {
		return nil, fmt.Errorf("chaos: scenario %q has crash steps; RunConfig.WALPath is required", sc.Name)
	}

	topo, err := topology.PaperGrid(cfg.Side)
	if err != nil {
		return nil, err
	}
	src := field.New(topo, field.Config{Seed: seed})
	// expect recomputes the ground truth for one delivered epoch from the
	// deterministic field: how many rows a loss-free network would have
	// returned for this query at this instant.
	expect := func(q query.Query, at sim.Time) int64 {
		var n int64
		for i := 1; i < topo.Size(); i++ {
			vals := map[field.Attr]float64{
				field.AttrLight: src.Reading(topology.NodeID(i), field.AttrLight, at),
			}
			if q.MatchesRow(vals) {
				n++
			}
		}
		return n
	}

	gwCfg := gateway.Config{
		Sim: network.Config{
			Topo:   topo,
			Scheme: cfg.Scheme,
			Seed:   seed,
			Source: src,
			Radio:  radio.Config{CollisionFactor: radio.DefaultCollisionFactor},
		},
		Buffer:     cfg.Buffer,
		WALPath:    cfg.WALPath,
		ChaosLabel: sc.Name,
		OnSim:      func(s *network.Simulation) { Inject(s, sc.EngineSteps()) },
	}

	// Crash scenarios get a live admin plane so the readiness transition —
	// 200 before the crash, 503 while the gateway is down, 200 after WAL
	// replay — is asserted as a harness invariant, with the metrics
	// exposition validated at the end of the run. Started before the
	// goroutine baseline so the admin server's accept loop is not counted
	// as a leak; the probe client disables keep-alives for the same reason.
	var cur atomic.Pointer[gateway.Gateway]
	var adm *telemetry.Admin
	var adminURL string
	var probeViolations []string
	probeClient := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	if len(crashes) > 0 {
		reg := telemetry.NewRegistry()
		gateway.RegisterMetrics(reg, cur.Load)
		adm = telemetry.NewAdmin(telemetry.AdminConfig{
			Registry: reg,
			Ready: func() bool {
				g := cur.Load()
				return g != nil && g.Alive()
			},
		})
		addr, err := adm.Start("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("chaos: admin: %w", err)
		}
		defer adm.Close()
		adminURL = "http://" + addr
	}

	baseline := runtime.NumGoroutine()
	gw, err := gateway.New(gwCfg)
	if err != nil {
		return nil, err
	}
	cur.Store(gw)
	closed := false
	defer func() {
		if !closed {
			gw.Close()
		}
	}()

	// Register the clients and stage every initial subscription; the staged
	// batch commits deterministically at the first Advance.
	pool := queryPool()
	clients := make([]*hclient, cfg.Clients)
	type pend struct {
		c *hclient
		q query.Query
		t *gateway.Ticket
	}
	var pending []pend
	for i := range clients {
		c := &hclient{
			name:    fmt.Sprintf("chaos-%02d", i),
			subs:    make(map[gateway.SubID]*gateway.Subscription),
			queries: make(map[gateway.SubID]query.Query),
			check:   NewStreamChecker(),
			jitter:  sim.NewRand(seed + 3000).Fork(int64(i)),
		}
		sess, err := gw.Register(c.name)
		if err != nil {
			return nil, err
		}
		c.sess, c.token = sess, sess.Token()
		clients[i] = c
		q := pool[i%len(pool)]
		t, err := sess.SubscribeAsync(q)
		if err != nil {
			return nil, err
		}
		pending = append(pending, pend{c: c, q: q, t: t})
	}

	// Map each crash instant to the round boundary right after it.
	crashAfter := make([]bool, cfg.Rounds)
	for _, ct := range crashes {
		i := int((ct + cfg.Quantum - 1) / cfg.Quantum) // 1-based round whose end covers ct
		if i < 1 {
			i = 1
		}
		if i > cfg.Rounds {
			i = cfg.Rounds
		}
		crashAfter[i-1] = true
	}

	rep := &Report{
		Scenario:    sc.Name,
		Seed:        seed,
		Clients:     cfg.Clients,
		Rounds:      cfg.Rounds,
		FaultEvents: len(sc.Steps),
	}
	probe := func(phase string, want int) {
		if adm == nil {
			return
		}
		rep.ReadyProbes++
		resp, err := probeClient.Get(adminURL + "/readyz")
		if err != nil {
			probeViolations = append(probeViolations, fmt.Sprintf("readiness: %s probe failed: %v", phase, err))
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			probeViolations = append(probeViolations, fmt.Sprintf("readiness: /readyz %s = %d, want %d", phase, resp.StatusCode, want))
		}
	}
	probe("before first round", http.StatusOK)
	drain := func(c *hclient) {
		for id, sub := range c.subs {
			for {
				done := false
				select {
				case u, ok := <-sub.Updates():
					if !ok {
						// A stream must not end mid-run outside a crash; a
						// closure here means an eviction or similar surprise.
						c.closures++
						delete(c.subs, id)
						done = true
						break
					}
					if c.check.Observe(u) && u.Rows != nil {
						c.expected += expect(c.queries[u.Sub], u.At)
					}
				default:
					done = true
				}
				if done {
					break
				}
			}
		}
	}

	for round := 0; round < cfg.Rounds; round++ {
		if _, err := gw.Advance(cfg.Quantum); err != nil {
			return nil, fmt.Errorf("chaos: advance round %d: %w", round, err)
		}
		if round == 0 {
			for _, p := range pending {
				sub, err := p.t.Wait()
				if err != nil {
					return nil, fmt.Errorf("chaos: subscribe: %w", err)
				}
				p.c.subs[sub.ID()] = sub
				p.c.queries[sub.ID()] = p.q
			}
			pending = nil
		}
		if crashAfter[round] {
			// Kill the gateway with this round's deliveries still sitting
			// undrained in client channels — recovery must bring them back.
			if err := gw.Crash(); err != nil {
				return nil, fmt.Errorf("chaos: crash round %d: %w", round, err)
			}
			rep.Crashes++
			probe(fmt.Sprintf("during crash %d outage", rep.Crashes), http.StatusServiceUnavailable)
			gw, err = gateway.Recover(gwCfg)
			if err != nil {
				return nil, fmt.Errorf("chaos: recover round %d: %w", round, err)
			}
			cur.Store(gw)
			probe(fmt.Sprintf("after recovery %d", rep.Crashes), http.StatusOK)
			errs := make([]error, len(clients))
			var wg sync.WaitGroup
			for ci := range clients {
				wg.Add(1)
				go func(ci int) {
					defer wg.Done()
					errs[ci] = clients[ci].reconnect(gw)
				}(ci)
			}
			wg.Wait()
			for ci, e := range errs {
				if e != nil {
					return nil, fmt.Errorf("chaos: reconnect %s: %w", clients[ci].name, e)
				}
			}
			continue
		}
		for _, c := range clients {
			drain(c)
		}
	}

	// Shut down and drain to the close markers so nothing buffered is
	// missed, then settle the books.
	if err := gw.Close(); err != nil {
		return nil, err
	}
	closed = true
	for _, c := range clients {
		for id, sub := range c.subs {
			for u := range sub.Updates() {
				if c.check.Observe(u) && u.Rows != nil {
					c.expected += expect(c.queries[u.Sub], u.At)
				}
			}
			delete(c.subs, id)
		}
	}

	check := NewStreamChecker()
	var closures int64
	for _, c := range clients {
		check.Merge(c.check)
		rep.Reconnects += c.reconnects
		rep.ExpectedRows += c.expected
		closures += c.closures
	}
	rep.Updates = check.Updates
	rep.Rows = check.Rows
	rep.Duplicates = check.Duplicates
	rep.Gaps = check.Gaps
	rep.OrderViolations = check.OrderViolations
	rep.Completeness = 1
	if rep.ExpectedRows > 0 {
		rep.Completeness = float64(rep.Rows) / float64(rep.ExpectedRows)
	}
	st, err := gw.Stats()
	if err != nil {
		return nil, err
	}
	rep.Stats = st

	minComp := sc.MinCompleteness
	if minComp == 0 {
		minComp = DefaultMinCompleteness
	}
	var v []string
	if rep.Duplicates > 0 {
		v = append(v, fmt.Sprintf("duplicates: %d update(s) delivered twice", rep.Duplicates))
	}
	if rep.Gaps > sc.MaxGaps {
		v = append(v, fmt.Sprintf("gaps: %d sequence number(s) lost, bound %d", rep.Gaps, sc.MaxGaps))
	}
	if rep.OrderViolations > 0 {
		v = append(v, fmt.Sprintf("ordering: %d epoch timestamp regression(s)", rep.OrderViolations))
	}
	if rep.Completeness < minComp {
		v = append(v, fmt.Sprintf("completeness: %.3f below bound %.3f", rep.Completeness, minComp))
	}
	if closures > 0 {
		v = append(v, fmt.Sprintf("closures: %d stream(s) ended mid-run without a crash", closures))
	}
	v = append(v, probeViolations...)
	if adm != nil {
		// One final scrape through the decoder-side validator: a crashed-
		// and-recovered gateway must still serve a well-formed exposition.
		resp, err := probeClient.Get(adminURL + "/metrics")
		if err != nil {
			v = append(v, fmt.Sprintf("metrics: scrape failed: %v", err))
		} else {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				v = append(v, fmt.Sprintf("metrics: scrape read failed: %v", rerr))
			} else if _, perr := telemetry.ParseExposition(string(body)); perr != nil {
				v = append(v, fmt.Sprintf("metrics: malformed exposition: %v", perr))
			}
		}
	}
	if err := CheckGoroutines(baseline, 2*time.Second); err != nil {
		v = append(v, err.Error())
	}
	sort.Strings(v)
	rep.Violations = v
	return rep, nil
}

// reconnect re-claims the client's session on a recovered gateway and
// resumes every stream from its last processed sequence number, with capped
// exponential backoff between attach attempts.
func (c *hclient) reconnect(gw *gateway.Gateway) error {
	const maxAttempts = 8
	var (
		sess  *gateway.Session
		infos []gateway.ResumeInfo
		err   error
	)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			d := time.Duration(1<<uint(attempt)) * time.Millisecond
			if d > 100*time.Millisecond {
				d = 100 * time.Millisecond
			}
			time.Sleep(d + time.Duration(c.jitter.Float64()*float64(d)/2))
		}
		sess, infos, err = gw.Attach(c.name, c.token)
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("attach after %d attempts: %w", maxAttempts, err)
	}
	c.sess = sess
	c.reconnects++
	subs := make(map[gateway.SubID]*gateway.Subscription, len(infos))
	for _, in := range infos {
		sub, rerr := sess.Resume(in.ID, c.check.Last(in.ID))
		if rerr != nil {
			return fmt.Errorf("resume sub %d: %w", in.ID, rerr)
		}
		subs[in.ID] = sub
	}
	c.subs = subs
	return nil
}
