// Package workload generates the query workloads of the paper's evaluation
// (§4): the three static workloads of Figure 3, the §4.3 random adaptive
// workload of Figure 4, and the selectivity-controlled mixes of Figure 5.
package workload

import (
	"fmt"
	"time"

	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/sim"
)

// TimedQuery is one workload entry: a query, when it arrives, and when the
// user terminates it (Depart == 0 means it runs until the end).
type TimedQuery struct {
	Query  query.Query
	Arrive time.Duration
	Depart time.Duration
}

// Epochs allowed by §4.3: 8192 ms to 24576 ms, all divisible by 4096 ms.
// (The paper prints "8092ms", which is not divisible by 4096; see DESIGN.md.)
var Epochs = []time.Duration{
	8192 * time.Millisecond,
	12288 * time.Millisecond,
	16384 * time.Millisecond,
	20480 * time.Millisecond,
	24576 * time.Millisecond,
}

func mustQuery(id query.ID, s string) query.Query {
	q := query.MustParse(s)
	q.ID = id
	return q
}

// A is WORKLOAD_A of §4.2: heavily overlapping acquisition queries over
// light with pairwise-divisible epoch durations — the common savings both
// the base-station tier and the in-network tier can capture, each in its own
// way (tier 1 merges them into one synthetic query; tier 2 shares their
// sampling and messages directly).
func A() []TimedQuery {
	qs := []query.Query{
		mustQuery(1, "SELECT light WHERE light >= 100 AND light <= 600 EPOCH DURATION 4096"),
		mustQuery(2, "SELECT light WHERE light >= 150 AND light <= 650 EPOCH DURATION 8192"),
		mustQuery(3, "SELECT light, temp WHERE light >= 100 AND light <= 700 EPOCH DURATION 4096"),
		mustQuery(4, "SELECT light WHERE light >= 50 AND light <= 600 EPOCH DURATION 16384"),
		mustQuery(5, "SELECT light WHERE light >= 120 AND light <= 640 EPOCH DURATION 8192"),
		mustQuery(6, "SELECT light WHERE light >= 80 AND light <= 620 EPOCH DURATION 4096"),
		mustQuery(7, "SELECT light, temp WHERE light >= 90 AND light <= 660 EPOCH DURATION 8192"),
		mustQuery(8, "SELECT light WHERE light >= 110 AND light <= 630 EPOCH DURATION 4096"),
	}
	return static(qs)
}

// B is WORKLOAD_B of §4.2: queries the base-station tier cannot merge —
// aggregation queries with pairwise different predicates (the §3.1.2
// semantic-correctness constraint forbids rewriting) and acquisition pairs
// whose epoch durations do not divide (merging at the GCD would oversample).
// Only the in-network tier can share their firings, routes and partial
// aggregates.
func B() []TimedQuery {
	qs := []query.Query{
		mustQuery(1, "SELECT MAX(light) WHERE temp >= 10 AND temp <= 60 EPOCH DURATION 8192"),
		mustQuery(2, "SELECT MAX(light) WHERE temp >= 20 AND temp <= 70 EPOCH DURATION 8192"),
		mustQuery(3, "SELECT MAX(light) WHERE temp >= 30 AND temp <= 80 EPOCH DURATION 12288"),
		mustQuery(4, "SELECT MIN(light) WHERE temp >= 15 AND temp <= 65 EPOCH DURATION 8192"),
		mustQuery(5, "SELECT light WHERE light >= 100 AND light <= 500 EPOCH DURATION 8192"),
		mustQuery(6, "SELECT light WHERE light >= 110 AND light <= 520 EPOCH DURATION 12288"),
	}
	return static(qs)
}

// C is WORKLOAD_C of §4.2: a mix exercising the mutual complementarity of
// the two tiers — mergeable acquisitions, an aggregation query derivable
// from an acquisition (tier 1 suppresses it entirely), plus unmergeable
// aggregations and epoch mismatches that only tier 2 can share.
func C() []TimedQuery {
	qs := []query.Query{
		// A mergeable acquisition cluster (tier 1 collapses q1–q3 into one
		// synthetic query).
		mustQuery(1, "SELECT light, temp WHERE light >= 100 AND light <= 700 EPOCH DURATION 4096"),
		mustQuery(2, "SELECT light WHERE light >= 150 AND light <= 600 EPOCH DURATION 8192"),
		mustQuery(3, "SELECT temp WHERE light >= 300 AND light <= 600 EPOCH DURATION 8192"),
		// Aggregations derivable from the acquisition cluster: tier 1
		// suppresses them from the network entirely.
		mustQuery(4, "SELECT MAX(light) WHERE light >= 100 AND light <= 700 EPOCH DURATION 8192"),
		mustQuery(5, "SELECT MIN(light) WHERE light >= 150 AND light <= 650 EPOCH DURATION 8192"),
		// Same-predicate aggregations (tier 1 merges them)...
		mustQuery(6, "SELECT MAX(temp) WHERE temp >= 20 AND temp <= 80 EPOCH DURATION 8192"),
		mustQuery(7, "SELECT MIN(temp) WHERE temp >= 20 AND temp <= 80 EPOCH DURATION 8192"),
		// ...and tier-1-unmergeable aggregations: pairwise different
		// moderate-selectivity predicates and mixed epochs. Tier 1 cannot
		// touch them (§3.1.2 semantic constraint); tier 2 optimizes them
		// with query-aware routing and sleep, and its advantage grows with
		// network size — which is what flips the BS/IN ranking between 16
		// and 64 nodes in the paper's Figure 3.
		mustQuery(8, "SELECT MAX(temp) WHERE temp >= 30 AND temp <= 65 EPOCH DURATION 12288"),
		mustQuery(9, "SELECT MAX(temp) WHERE temp >= 35 AND temp <= 70 EPOCH DURATION 8192"),
		mustQuery(10, "SELECT MIN(temp) WHERE temp >= 40 AND temp <= 75 EPOCH DURATION 12288"),
		mustQuery(11, "SELECT MAX(light) WHERE light >= 300 AND light <= 650 EPOCH DURATION 8192"),
		mustQuery(12, "SELECT MIN(light) WHERE light >= 350 AND light <= 700 EPOCH DURATION 12288"),
		mustQuery(13, "SELECT MAX(humidity) WHERE humidity >= 30 AND humidity <= 65 EPOCH DURATION 8192"),
	}
	return static(qs)
}

// ByName returns a Figure 3 workload by its letter.
func ByName(name string) ([]TimedQuery, error) {
	switch name {
	case "A", "a":
		return A(), nil
	case "B", "b":
		return B(), nil
	case "C", "c":
		return C(), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
}

func static(qs []query.Query) []TimedQuery {
	out := make([]TimedQuery, 0, len(qs))
	for _, q := range qs {
		out = append(out, TimedQuery{Query: q})
	}
	return out
}

// RandomConfig parametrizes the §4.3 adaptive workload.
type RandomConfig struct {
	Seed int64
	// NumQueries is the number of user queries in the run (the paper uses
	// 500).
	NumQueries int
	// MeanInterarrival is the average arrival spacing (paper: 40 s).
	MeanInterarrival time.Duration
	// TargetConcurrency sets the average number of simultaneously running
	// queries; mean duration = TargetConcurrency × MeanInterarrival.
	TargetConcurrency int
	// AggFraction is the probability a query is an aggregation query
	// (default 0.5).
	AggFraction float64
}

// Random generates the §4.3 workload: queries randomly select attributes
// (nodeid, light, temp), aggregations (MAX, MIN), predicates and epoch
// durations, arriving with exponential spacing and departing after an
// exponential duration.
func Random(cfg RandomConfig) []TimedQuery {
	if cfg.NumQueries == 0 {
		cfg.NumQueries = 500
	}
	if cfg.MeanInterarrival == 0 {
		cfg.MeanInterarrival = 40 * time.Second
	}
	if cfg.TargetConcurrency == 0 {
		cfg.TargetConcurrency = 8
	}
	if cfg.AggFraction == 0 {
		cfg.AggFraction = 0.5
	}
	rng := sim.NewRand(cfg.Seed)
	attrs := []field.Attr{field.AttrNodeID, field.AttrLight, field.AttrTemp}
	meanDur := cfg.MeanInterarrival * time.Duration(cfg.TargetConcurrency)

	// User interest is not uniform: most monitoring queries in a deployment
	// watch the same few phenomena (the paper notes real workloads are even
	// more similar than this model, §4.3). Predicate attributes and epochs
	// are therefore drawn with a bias toward the common choices.
	predAttr := func() field.Attr {
		r := rng.Float64()
		switch {
		case r < 0.6:
			return field.AttrLight
		case r < 0.9:
			return field.AttrTemp
		default:
			return field.AttrNodeID
		}
	}
	epoch := func() time.Duration {
		r := rng.Float64()
		switch {
		case r < 0.4:
			return Epochs[0]
		case r < 0.7:
			return Epochs[1]
		case r < 0.85:
			return Epochs[2]
		case r < 0.95:
			return Epochs[3]
		default:
			return Epochs[4]
		}
	}

	out := make([]TimedQuery, 0, cfg.NumQueries)
	var t time.Duration
	for i := 0; i < cfg.NumQueries; i++ {
		t += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		dur := time.Duration(rng.ExpFloat64() * float64(meanDur))
		if dur < query.MinEpoch {
			dur = query.MinEpoch
		}

		q := query.Query{
			ID:    query.ID(i + 1),
			Epoch: epoch(),
		}
		q.Preds = []query.Predicate{randRange(rng, predAttr(), 0.3+0.6*rng.Float64(), 64)}
		if rng.Float64() < cfg.AggFraction {
			ops := []query.AggOp{query.Max, query.Min}
			q.Aggs = []query.Agg{{Op: ops[rng.Intn(2)], Attr: attrs[1+rng.Intn(2)]}}
		} else {
			// Acquisition: a random non-empty subset of the attributes.
			n := 1 + rng.Intn(len(attrs))
			perm := rng.Perm(len(attrs))
			for _, idx := range perm[:n] {
				q.Attrs = append(q.Attrs, attrs[idx])
			}
		}
		out = append(out, TimedQuery{
			Query:  q.Normalize(),
			Arrive: t,
			Depart: t + dur,
		})
	}
	return out
}

// randRange builds a predicate on attr covering the given fraction of its
// value range, at a random position.
func randRange(rng *sim.Rand, attr field.Attr, coverage float64, nodes int) query.Predicate {
	lo, hi := attr.Range(nodes)
	span := hi - lo
	width := span * coverage
	start := lo + (span-width)*rng.Float64()
	return query.Predicate{Attr: attr, Min: start, Max: start + width}
}

// SelectivityConfig parametrizes the Figure 5 workload.
type SelectivityConfig struct {
	Seed int64
	// NumQueries is the number of concurrent queries (paper: 8).
	NumQueries int
	// AggFraction is the share of aggregation queries: 0, 0.5 or 1 in the
	// paper's three series.
	AggFraction float64
	// Selectivity is the range coverage of each query's single predicate
	// (the paper sweeps 0.2 … 1.0).
	Selectivity float64
	// Nodes sizes the nodeid attribute range.
	Nodes int
	// SameEpoch gives every query the same epoch duration (the paper's
	// acquisition series: "8 data acquisition queries with the same epoch
	// duration"); otherwise epochs are drawn from Epochs.
	SameEpoch bool
}

// Selectivity generates the Figure 5 workload: data acquisition queries
// retrieve all attributes; aggregation queries request MAX(light); each
// query has one predicate on a random attribute of (nodeid, light, temp)
// with the configured range coverage. Selectivity 1 yields the full range —
// semantically the same rows, and (crucially for the 100 %-aggregation
// series) identical predicates across queries.
func Selectivity(cfg SelectivityConfig) []TimedQuery {
	if cfg.NumQueries == 0 {
		cfg.NumQueries = 8
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 16
	}
	rng := sim.NewRand(cfg.Seed)
	attrs := []field.Attr{field.AttrNodeID, field.AttrLight, field.AttrTemp}
	nAgg := int(float64(cfg.NumQueries)*cfg.AggFraction + 0.5)

	out := make([]TimedQuery, 0, cfg.NumQueries)
	for i := 0; i < cfg.NumQueries; i++ {
		epoch := Epochs[rng.Intn(len(Epochs))]
		if cfg.SameEpoch {
			epoch = Epochs[0]
		}
		q := query.Query{ID: query.ID(i + 1), Epoch: epoch}
		pa := attrs[rng.Intn(len(attrs))]
		if cfg.Selectivity < 1 {
			q.Preds = []query.Predicate{randRange(rng, pa, cfg.Selectivity, cfg.Nodes)}
		}
		// Selectivity 1 means the predicate admits everything; we emit no
		// predicate at all — semantically identical and, crucially for the
		// 100%-aggregation series, *equal* across queries, which is what
		// lets tier 1 suddenly merge them (the Figure 5 jump).
		if i < nAgg {
			q.Aggs = []query.Agg{{Op: query.Max, Attr: field.AttrLight}}
		} else {
			q.Attrs = []field.Attr{field.AttrNodeID, field.AttrLight, field.AttrTemp}
		}
		out = append(out, TimedQuery{Query: q.Normalize()})
	}
	return out
}

// Validate checks a workload for well-formedness: unique IDs, valid
// queries, ordered lifetimes.
func Validate(ws []TimedQuery) error {
	seen := make(map[query.ID]bool, len(ws))
	for i, w := range ws {
		if err := w.Query.Validate(); err != nil {
			return fmt.Errorf("workload[%d]: %w", i, err)
		}
		if seen[w.Query.ID] {
			return fmt.Errorf("workload[%d]: duplicate ID %d", i, w.Query.ID)
		}
		seen[w.Query.ID] = true
		if w.Depart != 0 && w.Depart <= w.Arrive {
			return fmt.Errorf("workload[%d]: departs (%v) before arriving (%v)", i, w.Depart, w.Arrive)
		}
	}
	return nil
}
