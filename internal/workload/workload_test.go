package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/query"
)

func TestStaticWorkloadsValid(t *testing.T) {
	for _, name := range []string{"A", "B", "C"} {
		ws, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(ws); err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		if len(ws) < 4 {
			t.Fatalf("workload %s too small: %d", name, len(ws))
		}
		for _, w := range ws {
			if w.Arrive != 0 || w.Depart != 0 {
				t.Fatalf("workload %s must be static", name)
			}
		}
	}
	if _, err := ByName("Z"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

// WORKLOAD_B's defining property: no pair is beneficially mergeable at the
// base station — aggregations have pairwise different predicates.
func TestWorkloadBUnmergeableAggs(t *testing.T) {
	ws := B()
	for i, a := range ws {
		for j, b := range ws {
			if i >= j {
				continue
			}
			if a.Query.IsAggregation() && b.Query.IsAggregation() {
				if query.Rewritable(a.Query, b.Query) {
					t.Fatalf("agg queries %d and %d are rewritable; workload B must prevent tier-1 merging", i, j)
				}
			}
		}
	}
}

func TestRandomWorkloadShape(t *testing.T) {
	ws := Random(RandomConfig{Seed: 1, NumQueries: 500, TargetConcurrency: 8})
	if err := Validate(ws); err != nil {
		t.Fatal(err)
	}
	if len(ws) != 500 {
		t.Fatalf("generated %d queries", len(ws))
	}
	// Arrivals strictly ordered; epochs from the allowed set.
	allowed := make(map[time.Duration]bool)
	for _, e := range Epochs {
		allowed[e] = true
	}
	var prev time.Duration
	aggs := 0
	for _, w := range ws {
		if w.Arrive < prev {
			t.Fatal("arrivals must be nondecreasing")
		}
		prev = w.Arrive
		if !allowed[w.Query.Epoch] {
			t.Fatalf("epoch %v not in §4.3 set", w.Query.Epoch)
		}
		if w.Query.IsAggregation() {
			aggs++
		}
		if len(w.Query.Preds) != 1 {
			t.Fatalf("query has %d predicates, want 1", len(w.Query.Preds))
		}
	}
	// ~50% aggregation.
	if aggs < 175 || aggs > 325 {
		t.Fatalf("aggregation share = %d/500, want ≈ 250", aggs)
	}
	// Mean interarrival ≈ 40s (±30%).
	mean := ws[len(ws)-1].Arrive / time.Duration(len(ws))
	if mean < 28*time.Second || mean > 52*time.Second {
		t.Fatalf("mean interarrival = %v, want ≈ 40s", mean)
	}
}

func TestRandomWorkloadConcurrency(t *testing.T) {
	for _, target := range []int{8, 48} {
		ws := Random(RandomConfig{Seed: 2, NumQueries: 500, TargetConcurrency: target})
		// Time-averaged concurrency over the workload span.
		var span time.Duration
		for _, w := range ws {
			if w.Depart > span {
				span = w.Depart
			}
		}
		var busy time.Duration
		for _, w := range ws {
			busy += w.Depart - w.Arrive
		}
		avg := float64(busy) / float64(span)
		if avg < 0.5*float64(target) || avg > 1.6*float64(target) {
			t.Fatalf("target %d: measured avg concurrency %.1f", target, avg)
		}
	}
}

func TestRandomWorkloadDeterministic(t *testing.T) {
	a := Random(RandomConfig{Seed: 7})
	b := Random(RandomConfig{Seed: 7})
	for i := range a {
		if a[i].Arrive != b[i].Arrive || !a[i].Query.Equal(b[i].Query) {
			t.Fatal("same seed must generate the same workload")
		}
	}
}

func TestSelectivityWorkload(t *testing.T) {
	ws := Selectivity(SelectivityConfig{Seed: 3, AggFraction: 0.5, Selectivity: 0.6})
	if err := Validate(ws); err != nil {
		t.Fatal(err)
	}
	if len(ws) != 8 {
		t.Fatalf("got %d queries", len(ws))
	}
	aggs := 0
	for _, w := range ws {
		if w.Query.IsAggregation() {
			aggs++
			if w.Query.Aggs[0].Op != query.Max {
				t.Fatal("aggregation queries request MAX(light)")
			}
		} else if len(w.Query.Attrs) != 3 {
			t.Fatal("acquisition queries retrieve all attributes")
		}
		if len(w.Query.Preds) != 1 {
			t.Fatalf("want exactly one predicate, got %v", w.Query.Preds)
		}
	}
	if aggs != 4 {
		t.Fatalf("agg count = %d, want 4", aggs)
	}
}

func TestSelectivityOneMeansNoPredicate(t *testing.T) {
	ws := Selectivity(SelectivityConfig{Seed: 3, AggFraction: 1, Selectivity: 1})
	for _, w := range ws {
		if len(w.Query.Preds) != 0 {
			t.Fatalf("selectivity 1 must yield no predicate: %v", w.Query)
		}
	}
	// All-aggregation queries with equal (empty) predicates are mutually
	// rewritable — the Figure 5 jump at selectivity 1.
	for i := range ws {
		for j := range ws {
			if i != j && !query.Rewritable(ws[i].Query, ws[j].Query) {
				t.Fatal("tautological predicates must be rewritable")
			}
		}
	}
}

func TestSelectivitySameEpoch(t *testing.T) {
	ws := Selectivity(SelectivityConfig{Seed: 4, Selectivity: 0.8, SameEpoch: true})
	for _, w := range ws {
		if w.Query.Epoch != Epochs[0] {
			t.Fatalf("epoch = %v, want %v", w.Query.Epoch, Epochs[0])
		}
	}
}

func TestValidateRejectsBadWorkloads(t *testing.T) {
	good := query.MustParse("SELECT light EPOCH DURATION 4096")
	good.ID = 1
	dup := good.Clone()
	if err := Validate([]TimedQuery{{Query: good}, {Query: dup}}); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
	bad := good.Clone()
	bad.ID = 2
	if err := Validate([]TimedQuery{{Query: bad, Arrive: 10 * time.Second, Depart: 5 * time.Second}}); err == nil {
		t.Fatal("depart before arrive must be rejected")
	}
	invalid := query.Query{ID: 3}
	if err := Validate([]TimedQuery{{Query: invalid}}); err == nil {
		t.Fatal("invalid query must be rejected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Random(RandomConfig{Seed: 5, NumQueries: 40, TargetConcurrency: 6})
	var buf bytes.Buffer
	if err := SaveJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("len %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if !orig[i].Query.Equal(back[i].Query) {
			t.Fatalf("entry %d query changed:\n%s\n%s", i, orig[i].Query, back[i].Query)
		}
		// Timestamps are stored at millisecond granularity.
		if orig[i].Query.ID != back[i].Query.ID ||
			orig[i].Arrive.Truncate(time.Millisecond) != back[i].Arrive ||
			orig[i].Depart.Truncate(time.Millisecond) != back[i].Depart {
			t.Fatalf("entry %d metadata changed", i)
		}
	}
}

func TestLoadJSONHandEdited(t *testing.T) {
	const doc = `[
	  {"query": "SELECT light WHERE light > 100 EPOCH DURATION 4096"},
	  {"id": 7, "query": "SELECT MAX(temp) GROUP BY nodeid BUCKET 4 EPOCH DURATION 8192",
	   "arrive_ms": 5000, "depart_ms": 90000}
	]`
	ws, err := LoadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("len = %d", len(ws))
	}
	if ws[0].Query.ID != 1 {
		t.Fatalf("missing ID must be assigned: %d", ws[0].Query.ID)
	}
	if ws[1].Query.ID != 7 || ws[1].Arrive != 5*time.Second || ws[1].Depart != 90*time.Second {
		t.Fatalf("entry 1 = %+v", ws[1])
	}
	if ws[1].Query.GroupBy == nil {
		t.Fatal("group spec lost")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := LoadJSON(strings.NewReader(`[{"query": "NOT A QUERY"}]`)); err == nil {
		t.Fatal("bad query must error")
	}
	if _, err := LoadJSON(strings.NewReader(`[{"id":1,"query":"SELECT light"},{"id":1,"query":"SELECT temp"}]`)); err == nil {
		t.Fatal("duplicate IDs must error")
	}
}
