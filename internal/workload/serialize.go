package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/query"
)

// jsonEntry is the on-disk form of one TimedQuery. The query itself is
// stored in the TinyDB dialect (human-editable, and immune to JSON's
// inability to encode the ±Inf bounds of half-open predicates); Parse and
// String round-trip exactly.
type jsonEntry struct {
	ID       query.ID `json:"id"`
	Query    string   `json:"query"`
	ArriveMS int64    `json:"arrive_ms,omitempty"`
	DepartMS int64    `json:"depart_ms,omitempty"`
}

// SaveJSON writes a workload as indented JSON.
func SaveJSON(w io.Writer, ws []TimedQuery) error {
	entries := make([]jsonEntry, 0, len(ws))
	for _, tq := range ws {
		entries = append(entries, jsonEntry{
			ID:       tq.Query.ID,
			Query:    tq.Query.String(),
			ArriveMS: int64(tq.Arrive / time.Millisecond),
			DepartMS: int64(tq.Depart / time.Millisecond),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}

// LoadJSON reads a workload written by SaveJSON (or by hand) and validates
// it.
func LoadJSON(r io.Reader) ([]TimedQuery, error) {
	var entries []jsonEntry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	ws := make([]TimedQuery, 0, len(entries))
	for i, e := range entries {
		q, err := query.Parse(e.Query)
		if err != nil {
			return nil, fmt.Errorf("workload: entry %d: %w", i, err)
		}
		q.ID = e.ID
		if q.ID == 0 {
			q.ID = query.ID(i + 1)
		}
		ws = append(ws, TimedQuery{
			Query:  q,
			Arrive: time.Duration(e.ArriveMS) * time.Millisecond,
			Depart: time.Duration(e.DepartMS) * time.Millisecond,
		})
	}
	if err := Validate(ws); err != nil {
		return nil, err
	}
	return ws, nil
}
