// Package metrics collects the quantities the paper's evaluation reports:
// per-node radio transmission time, message counts by kind, and
// retransmissions. The headline metric is the *average transmission time* —
// "the average percentage of transmission time spent on each node for all
// running queries over the simulation time" (§4.1).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Collector accumulates radio activity during one simulation run. It is not
// safe for concurrent use; the discrete-event engine serializes all access.
type Collector struct {
	txTime   []time.Duration  // per node, indexed by NodeID
	rxTime   []time.Duration  // per node: airtime spent receiving/overhearing
	samples  []int            // per node: attribute samples acquired
	counts   map[string]int   // message counts by kind label
	perNode  map[string][]int // message counts by kind, per sender
	messages int              // total messages put on the air (incl. retries)
	retrans  int
	dropped  int
	clipped  int // metric updates addressed to out-of-range node IDs
	payload  int64 // total bytes transmitted (incl. retries)
	nodes    int
	latency  stats.Series // epoch fire → base-station arrival, seconds
}

// NewCollector returns a collector for a deployment of n nodes.
func NewCollector(n int) *Collector {
	return &Collector{
		txTime:  make([]time.Duration, n),
		rxTime:  make([]time.Duration, n),
		samples: make([]int, n),
		counts:  make(map[string]int),
		perNode: make(map[string][]int),
		nodes:   n,
	}
}

// AddTxTime accrues radio-busy time for a node. Every transmission attempt
// accrues, including ones that end in a collision — retransmission cost is
// real cost (§4.1 counts retransmission messages). Out-of-range node IDs
// accrue nothing but are counted in Clipped so lost accounting is visible.
func (c *Collector) AddTxTime(id topology.NodeID, d time.Duration) {
	if int(id) < 0 || int(id) >= len(c.txTime) {
		c.clipped++
		return
	}
	c.txTime[id] += d
}

// AddRxTime accrues receive airtime for a node — every in-range radio hears
// every transmission, addressed or not, so overhearing costs energy too.
// Out-of-range node IDs are counted in Clipped.
func (c *Collector) AddRxTime(id topology.NodeID, d time.Duration) {
	if int(id) < 0 || int(id) >= len(c.rxTime) {
		c.clipped++
		return
	}
	c.rxTime[id] += d
}

// CountSamples records n attribute acquisitions at a node (one per sampled
// attribute per shared acquisition). Out-of-range node IDs are counted in
// Clipped.
func (c *Collector) CountSamples(id topology.NodeID, n int) {
	if int(id) < 0 || int(id) >= len(c.samples) {
		c.clipped++
		return
	}
	c.samples[id] += n
}

// RxTime returns the accumulated receive airtime of one node.
func (c *Collector) RxTime(id topology.NodeID) time.Duration {
	if int(id) >= len(c.rxTime) {
		return 0
	}
	return c.rxTime[id]
}

// Samples returns the attribute acquisitions of one node.
func (c *Collector) Samples(id topology.NodeID) int {
	if int(id) >= len(c.samples) {
		return 0
	}
	return c.samples[id]
}

// CountMessage records one message of the given kind put on the air by src.
func (c *Collector) CountMessage(kind string, src topology.NodeID, bytes int) {
	c.counts[kind]++
	c.messages++
	c.payload += int64(bytes)
	per, ok := c.perNode[kind]
	if !ok {
		per = make([]int, c.nodes)
		c.perNode[kind] = per
	}
	if int(src) < len(per) {
		per[src]++
	}
}

// MessagesFrom returns how many messages of one kind a node has sent.
func (c *Collector) MessagesFrom(kind string, src topology.NodeID) int {
	per, ok := c.perNode[kind]
	if !ok || int(src) >= len(per) {
		return 0
	}
	return per[src]
}

// SendersOf returns the number of distinct nodes that sent at least one
// message of the given kind (the "involved nodes" count of the Figure 2
// worked example).
func (c *Collector) SendersOf(kind string) int {
	n := 0
	for _, cnt := range c.perNode[kind] {
		if cnt > 0 {
			n++
		}
	}
	return n
}

// AddLatency records how long one result message took from its epoch's
// fire instant to base-station arrival.
func (c *Collector) AddLatency(d time.Duration) {
	if d >= 0 {
		c.latency.Add(d.Seconds())
	}
}

// Latency returns the result-delivery latency statistics (mean, stddev,
// min, max in seconds).
func (c *Collector) Latency() *stats.Series { return &c.latency }

// CountRetransmission records a collision-induced retransmission.
func (c *Collector) CountRetransmission() { c.retrans++ }

// CountDrop records a message abandoned after exhausting retries.
func (c *Collector) CountDrop() { c.dropped++ }

// TxTime returns the accumulated radio-busy time of one node.
func (c *Collector) TxTime(id topology.NodeID) time.Duration {
	if int(id) >= len(c.txTime) {
		return 0
	}
	return c.txTime[id]
}

// TotalTxTime returns the network-wide radio-busy time.
func (c *Collector) TotalTxTime() time.Duration {
	var sum time.Duration
	for _, d := range c.txTime {
		sum += d
	}
	return sum
}

// AvgTransmissionTime returns the paper's metric: the mean, over all nodes,
// of the fraction of the simulated interval each node spent transmitting.
// The result is a fraction in [0, 1]; multiply by 100 for the percentage the
// figures plot.
func (c *Collector) AvgTransmissionTime(simTime time.Duration) float64 {
	if simTime <= 0 || len(c.txTime) == 0 {
		return 0
	}
	var sum float64
	for _, d := range c.txTime {
		sum += d.Seconds() / simTime.Seconds()
	}
	return sum / float64(len(c.txTime))
}

// Messages returns the total number of transmissions, including retries.
func (c *Collector) Messages() int { return c.messages }

// MessagesOf returns the count of messages of one kind.
func (c *Collector) MessagesOf(kind string) int { return c.counts[kind] }

// Retransmissions returns the number of collision-induced retries.
func (c *Collector) Retransmissions() int { return c.retrans }

// Dropped returns the number of messages abandoned after max retries.
func (c *Collector) Dropped() int { return c.dropped }

// Clipped returns how many metric updates (tx/rx accrual, sample counts)
// addressed node IDs outside the deployment and were discarded. A non-zero
// value means some radio accounting was silently lost.
func (c *Collector) Clipped() int { return c.clipped }

// Nodes returns the deployment size the collector was built for.
func (c *Collector) Nodes() int { return c.nodes }

// Bytes returns the total bytes transmitted.
func (c *Collector) Bytes() int64 { return c.payload }

// Kinds returns the message-kind labels seen so far, sorted.
func (c *Collector) Kinds() []string {
	kinds := make([]string, 0, len(c.counts))
	for k := range c.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// String summarizes the collector for logs and the shell.
func (c *Collector) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "messages=%d retrans=%d dropped=%d bytes=%d", c.messages, c.retrans, c.dropped, c.payload)
	if c.clipped > 0 {
		fmt.Fprintf(&sb, " clipped=%d", c.clipped)
	}
	for _, k := range c.Kinds() {
		fmt.Fprintf(&sb, " %s=%d", k, c.counts[k])
	}
	return sb.String()
}

// Savings returns the fractional reduction of a scheme's metric relative to
// a baseline metric: (baseline − value) / baseline. Figures 3 and 5 report
// this as a percentage.
func Savings(baseline, value float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - value) / baseline
}
