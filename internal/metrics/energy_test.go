package metrics

import (
	"math"
	"testing"
	"time"
)

func TestNodeEnergyComponents(t *testing.T) {
	c := NewCollector(3)
	c.AddTxTime(1, 10*time.Second)
	c.AddRxTime(1, 20*time.Second)
	c.CountSamples(1, 100)
	m := EnergyModel{TxPower: 0.06, RxPower: 0.03, SampleEnergy: 1e-4, Battery: 1000}
	got := c.NodeEnergy(1, m)
	want := 0.06*10 + 0.03*20 + 1e-4*100
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("energy = %f, want %f", got, want)
	}
	if c.NodeEnergy(2, m) != 0 {
		t.Fatal("idle node should have zero energy")
	}
	if got := c.TotalEnergy(m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("total = %f, want %f", got, want)
	}
}

func TestEnergyDefaults(t *testing.T) {
	m := DefaultEnergyModel()
	if m.TxPower <= m.RxPower || m.Battery <= 0 || m.SampleEnergy <= 0 {
		t.Fatalf("implausible defaults: %+v", m)
	}
	// Zero-valued model behaves like the defaults.
	c := NewCollector(2)
	c.AddTxTime(1, time.Second)
	if c.NodeEnergy(1, EnergyModel{}) != c.NodeEnergy(1, m) {
		t.Fatal("zero model must take defaults")
	}
}

func TestNetworkLifetime(t *testing.T) {
	c := NewCollector(3)
	// Node 1 draws 60mW continuously for the whole interval; node 2 is
	// idle. Lifetime = battery / power of the busiest node.
	c.AddTxTime(1, 100*time.Second)
	m := EnergyModel{TxPower: 0.06, RxPower: 0.03, SampleEnergy: 1e-4, Battery: 1000}
	life := c.NetworkLifetime(100*time.Second, m)
	// Node 1's average power = (0.06 W × 100 s)/100 s = 0.06 W →
	// lifetime = 1000 J / 0.06 W ≈ 16 667 s.
	want := 1000.0 / 0.06
	if math.Abs(life.Seconds()-want) > 1 {
		t.Fatalf("lifetime = %v, want ≈ %.0fs", life, want)
	}
	// The base station's consumption is ignored.
	c2 := NewCollector(3)
	c2.AddTxTime(0, 100*time.Second)
	if got := c2.NetworkLifetime(100*time.Second, m); got.Seconds() < 1e9 {
		t.Fatalf("BS-only consumption should give ~infinite lifetime, got %v", got)
	}
	if c.NetworkLifetime(0, m) != 0 {
		t.Fatal("zero sim time")
	}
}
