package metrics

import (
	"math"
	"time"

	"repro/internal/topology"
)

// EnergyModel converts radio and sensing activity into Joules. Following
// the paper's premise that "radio transmission is the most energy intensive
// operation a node performs" (§3.1.2), the model charges transmit and
// receive airtime plus per-sample acquisition cost; baseline idle power is
// assumed identical across schemes (the same duty cycling) and excluded, so
// lifetime comparisons isolate exactly what the optimizer changes.
type EnergyModel struct {
	// TxPower is the radio transmit power draw (default 60 mW — mica2 at
	// high output).
	TxPower float64
	// RxPower is the receive/overhear power draw (default 30 mW).
	RxPower float64
	// SampleEnergy is the energy per attribute acquisition (default 90 µJ
	// — a slow ADC read with sensor settling).
	SampleEnergy float64
	// Battery is each node's usable energy budget (default 20 kJ ≈ 2×AA
	// at ~50 % usable capacity).
	Battery float64
}

func (m *EnergyModel) setDefaults() {
	if m.TxPower == 0 {
		m.TxPower = 0.060
	}
	if m.RxPower == 0 {
		m.RxPower = 0.030
	}
	if m.SampleEnergy == 0 {
		m.SampleEnergy = 90e-6
	}
	if m.Battery == 0 {
		m.Battery = 20_000
	}
}

// DefaultEnergyModel returns the mica2-flavoured defaults.
func DefaultEnergyModel() EnergyModel {
	var m EnergyModel
	m.setDefaults()
	return m
}

// NodeEnergy returns the Joules node id has spent under the model.
func (c *Collector) NodeEnergy(id topology.NodeID, m EnergyModel) float64 {
	m.setDefaults()
	return m.TxPower*c.TxTime(id).Seconds() +
		m.RxPower*c.RxTime(id).Seconds() +
		m.SampleEnergy*float64(c.Samples(id))
}

// TotalEnergy returns the network-wide Joules spent.
func (c *Collector) TotalEnergy(m EnergyModel) float64 {
	var sum float64
	for i := 0; i < c.nodes; i++ {
		sum += c.NodeEnergy(topology.NodeID(i), m)
	}
	return sum
}

// NetworkLifetime extrapolates the classic WSN lifetime metric: the time
// until the busiest sensor node exhausts its battery, assuming the measured
// interval's power profile continues. The base station (node 0, mains
// powered) is excluded. Returns +Inf if nothing drew power.
func (c *Collector) NetworkLifetime(simTime time.Duration, m EnergyModel) time.Duration {
	m.setDefaults()
	if simTime <= 0 {
		return 0
	}
	worst := math.Inf(1)
	for i := 1; i < c.nodes; i++ {
		e := c.NodeEnergy(topology.NodeID(i), m)
		if e <= 0 {
			continue
		}
		life := m.Battery / (e / simTime.Seconds())
		if life < worst {
			worst = life
		}
	}
	if math.IsInf(worst, 1) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(worst * float64(time.Second))
}
