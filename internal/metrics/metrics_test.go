package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestAvgTransmissionTime(t *testing.T) {
	c := NewCollector(4)
	c.AddTxTime(0, time.Second)
	c.AddTxTime(1, 2*time.Second)
	// Nodes 2 and 3 idle.
	got := c.AvgTransmissionTime(10 * time.Second)
	want := (0.1 + 0.2 + 0 + 0) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("avg tx time = %f, want %f", got, want)
	}
	if c.AvgTransmissionTime(0) != 0 {
		t.Fatal("zero sim time must yield 0")
	}
}

func TestCounts(t *testing.T) {
	c := NewCollector(2)
	c.CountMessage("result", 0, 20)
	c.CountMessage("result", 1, 30)
	c.CountMessage("query", 1, 10)
	c.CountRetransmission()
	c.CountDrop()
	if c.Messages() != 3 || c.MessagesOf("result") != 2 || c.MessagesOf("query") != 1 {
		t.Fatalf("counts wrong: %s", c)
	}
	if c.Retransmissions() != 1 || c.Dropped() != 1 {
		t.Fatalf("retrans/drops wrong: %s", c)
	}
	if c.Bytes() != 60 {
		t.Fatalf("bytes = %d", c.Bytes())
	}
	kinds := c.Kinds()
	if len(kinds) != 2 || kinds[0] != "query" || kinds[1] != "result" {
		t.Fatalf("kinds = %v", kinds)
	}
	if s := c.String(); !strings.Contains(s, "result=2") {
		t.Fatalf("String() = %q", s)
	}
	if c.MessagesFrom("result", 1) != 1 || c.MessagesFrom("result", 0) != 1 {
		t.Fatal("per-node counts wrong")
	}
	if c.MessagesFrom("bogus", 0) != 0 || c.MessagesFrom("result", 99) != 0 {
		t.Fatal("missing entries must read 0")
	}
	if c.SendersOf("result") != 2 || c.SendersOf("query") != 1 || c.SendersOf("bogus") != 0 {
		t.Fatalf("SendersOf wrong: result=%d query=%d", c.SendersOf("result"), c.SendersOf("query"))
	}
}

func TestTxTimeOutOfRange(t *testing.T) {
	c := NewCollector(2)
	c.AddTxTime(99, time.Second) // discarded, no panic
	if c.TxTime(99) != 0 {
		t.Fatal("out-of-range node should read 0")
	}
	if c.TotalTxTime() != 0 {
		t.Fatal("nothing should have accrued")
	}
	if c.Clipped() != 1 {
		t.Fatalf("clipped = %d, want 1", c.Clipped())
	}
}

// Out-of-range metric updates must not vanish silently: every clipped
// accrual counts, negative IDs don't panic, and the counter surfaces in
// String().
func TestClippedAccounting(t *testing.T) {
	c := NewCollector(2)
	if c.Nodes() != 2 {
		t.Fatalf("Nodes() = %d", c.Nodes())
	}
	c.AddTxTime(5, time.Second)
	c.AddRxTime(-1, time.Second)
	c.CountSamples(2, 3)
	if c.Clipped() != 3 {
		t.Fatalf("clipped = %d, want 3", c.Clipped())
	}
	// In-range updates don't clip.
	c.AddTxTime(1, time.Second)
	c.AddRxTime(0, time.Second)
	c.CountSamples(1, 1)
	if c.Clipped() != 3 {
		t.Fatalf("clipped moved to %d on in-range updates", c.Clipped())
	}
	if s := c.String(); !strings.Contains(s, "clipped=3") {
		t.Fatalf("String() must surface clipping: %q", s)
	}
	// A clean collector's String stays clean.
	if s := NewCollector(2).String(); strings.Contains(s, "clipped") {
		t.Fatalf("clean collector shows clipped: %q", s)
	}
}

func TestSavings(t *testing.T) {
	if got := Savings(10, 2.5); got != 0.75 {
		t.Fatalf("savings = %f, want 0.75", got)
	}
	if got := Savings(0, 5); got != 0 {
		t.Fatal("zero baseline must not divide")
	}
	if got := Savings(10, 12); got != -0.2 {
		t.Fatalf("negative savings = %f", got)
	}
}
