package field

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestTraceSourceStepInterpolation(t *testing.T) {
	ts := NewTraceSource()
	ts.Add(1, AttrLight, sim.Time(10*time.Second), 100)
	ts.Add(1, AttrLight, sim.Time(20*time.Second), 200)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{5 * time.Second, 100},  // before first sample: hold
		{10 * time.Second, 100}, // exact
		{15 * time.Second, 100}, // step
		{20 * time.Second, 200},
		{99 * time.Second, 200}, // after last: hold
	}
	for _, c := range cases {
		if got := ts.Reading(1, AttrLight, sim.Time(c.at)); got != c.want {
			t.Errorf("reading at %v = %f, want %f", c.at, got, c.want)
		}
	}
	// Missing node/attr reads zero; nodeid is the id.
	if ts.Reading(2, AttrLight, 0) != 0 || ts.Reading(1, AttrTemp, 0) != 0 {
		t.Fatal("missing series must read 0")
	}
	if ts.Reading(3, AttrNodeID, 0) != 3 {
		t.Fatal("nodeid pseudo-attribute broken")
	}
}

func TestTraceSourceOutOfOrderAdds(t *testing.T) {
	ts := NewTraceSource()
	ts.Add(1, AttrTemp, sim.Time(30*time.Second), 30)
	ts.Add(1, AttrTemp, sim.Time(10*time.Second), 10)
	ts.Add(1, AttrTemp, sim.Time(20*time.Second), 20)
	if got := ts.Reading(1, AttrTemp, sim.Time(25*time.Second)); got != 20 {
		t.Fatalf("reading = %f, want 20", got)
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	ts := NewTraceSource()
	ts.Add(1, AttrLight, sim.Time(2048*time.Millisecond), 412.5)
	ts.Add(2, AttrTemp, sim.Time(4096*time.Millisecond), 21.25)
	var buf bytes.Buffer
	if err := ts.SaveTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("len = %d", back.Len())
	}
	if got := back.Reading(1, AttrLight, sim.Time(3*time.Second)); got != 412.5 {
		t.Fatalf("reading = %f", got)
	}
	if got := back.Reading(2, AttrTemp, sim.Time(5*time.Second)); got != 21.25 {
		t.Fatalf("reading = %f", got)
	}
}

func TestLoadTraceCSVHeaderAndErrors(t *testing.T) {
	good := "at_ms,node,attr,value\n0,1,light,5\n2048,1,light,7\n"
	ts, err := LoadTraceCSV(strings.NewReader(good))
	if err != nil || ts.Len() != 2 {
		t.Fatalf("ts=%v err=%v", ts, err)
	}
	bad := []string{
		"",
		"x,y\n",
		"0,1,bogus,5\n",
		"0,nope,light,5\n",
		"0,1,light,nope\n",
		"nope,1,light,5\nalso,1,light,5\n",
	}
	for _, doc := range bad {
		if _, err := LoadTraceCSV(strings.NewReader(doc)); err == nil {
			t.Errorf("LoadTraceCSV(%q): expected error", doc)
		}
	}
}

func TestRecordCapturesField(t *testing.T) {
	topo, err := topology.PaperGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	f := New(topo, Config{Seed: 4})
	ts := Record(f, topo, []Attr{AttrLight}, 2048*time.Millisecond, 10*2048*time.Millisecond)
	if ts.Len() != (topo.Size()-1)*11 {
		t.Fatalf("samples = %d", ts.Len())
	}
	// Replay must match the field exactly at the sampled instants.
	at := sim.Time(4 * 2048 * time.Millisecond)
	for i := 1; i < topo.Size(); i++ {
		id := topology.NodeID(i)
		if ts.Reading(id, AttrLight, at) != f.Reading(id, AttrLight, at) {
			t.Fatalf("replay diverges from field at node %d", id)
		}
	}
}
