package field

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

func grid(t *testing.T, side int) *topology.Topology {
	t.Helper()
	topo, err := topology.PaperGrid(side)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestAttrStringRoundTrip(t *testing.T) {
	for _, a := range AllAttrs() {
		got, err := ParseAttr(a.String())
		if err != nil {
			t.Fatalf("ParseAttr(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %v", a, got)
		}
	}
	if _, err := ParseAttr("bogus"); err == nil {
		t.Fatal("expected error for unknown attribute")
	}
}

func TestReadingsWithinRange(t *testing.T) {
	topo := grid(t, 6)
	f := New(topo, Config{Seed: 1})
	for _, a := range AllAttrs() {
		lo, hi := a.Range(topo.Size())
		for i := 0; i < topo.Size(); i++ {
			for _, at := range []sim.Time{0, time.Minute, time.Hour, 5 * time.Hour} {
				v := f.Reading(topology.NodeID(i), a, at)
				if v < lo || v > hi {
					t.Fatalf("%v reading %f outside [%f,%f]", a, v, lo, hi)
				}
			}
		}
	}
}

func TestReadingDeterministic(t *testing.T) {
	topo := grid(t, 4)
	f1 := New(topo, Config{Seed: 7})
	f2 := New(topo, Config{Seed: 7})
	for i := 0; i < topo.Size(); i++ {
		v1 := f1.Reading(topology.NodeID(i), AttrLight, 90*time.Second)
		v2 := f2.Reading(topology.NodeID(i), AttrLight, 90*time.Second)
		if v1 != v2 {
			t.Fatalf("same seed, different reading at node %d: %f vs %f", i, v1, v2)
		}
		// Re-reading the same instant must be stable.
		if v1 != f1.Reading(topology.NodeID(i), AttrLight, 90*time.Second) {
			t.Fatal("re-reading the same instant changed the value")
		}
	}
	f3 := New(topo, Config{Seed: 8})
	diff := false
	for i := 0; i < topo.Size(); i++ {
		if f1.Reading(topology.NodeID(i), AttrLight, 0) != f3.Reading(topology.NodeID(i), AttrLight, 0) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should produce different fields")
	}
}

func TestNodeIDAttr(t *testing.T) {
	topo := grid(t, 4)
	f := New(topo, Config{Seed: 1})
	for i := 0; i < topo.Size(); i++ {
		if got := f.Reading(topology.NodeID(i), AttrNodeID, time.Hour); got != float64(i) {
			t.Fatalf("nodeid reading = %f, want %d", got, i)
		}
	}
}

// Spatial correlation: the average absolute difference between neighbor
// readings must be clearly smaller than between random distant pairs.
func TestSpatialCorrelation(t *testing.T) {
	topo := grid(t, 8)
	f := New(topo, Config{Seed: 3, NoiseAmp: 0.005})
	at := 10 * time.Minute

	var nearSum, farSum float64
	var nearN, farN int
	n := topo.Size()
	for i := 0; i < n; i++ {
		vi := f.Reading(topology.NodeID(i), AttrLight, at)
		for j := i + 1; j < n; j++ {
			vj := f.Reading(topology.NodeID(j), AttrLight, at)
			d := topo.Position(topology.NodeID(i)).Dist(topo.Position(topology.NodeID(j)))
			diff := math.Abs(vi - vj)
			if d <= 30 {
				nearSum += diff
				nearN++
			} else if d >= 100 {
				farSum += diff
				farN++
			}
		}
	}
	near := nearSum / float64(nearN)
	far := farSum / float64(farN)
	if near >= far {
		t.Fatalf("no spatial correlation: near diff %f >= far diff %f", near, far)
	}
}

// Temporal stability: readings one epoch (2048ms) apart change much less
// than the attribute range.
func TestTemporalStability(t *testing.T) {
	topo := grid(t, 6)
	f := New(topo, Config{Seed: 5})
	lo, hi := AttrTemp.Range(topo.Size())
	span := hi - lo
	for i := 0; i < topo.Size(); i++ {
		v1 := f.Reading(topology.NodeID(i), AttrTemp, time.Minute)
		v2 := f.Reading(topology.NodeID(i), AttrTemp, time.Minute+2048*time.Millisecond)
		if math.Abs(v1-v2) > 0.1*span {
			t.Fatalf("node %d temp jumped %f in one epoch (span %f)", i, math.Abs(v1-v2), span)
		}
	}
}

func TestSampleSharedAcquisition(t *testing.T) {
	topo := grid(t, 4)
	f := New(topo, Config{Seed: 1})
	attrs := []Attr{AttrLight, AttrTemp}
	got := f.Sample(5, attrs, time.Minute)
	if len(got) != 2 {
		t.Fatalf("sample returned %d attrs, want 2", len(got))
	}
	for _, a := range attrs {
		if got[a] != f.Reading(5, a, time.Minute) {
			t.Fatal("Sample must agree with Reading")
		}
	}
}

func TestUniformField(t *testing.T) {
	u := UniformField{N: 11}
	lo, hi := AttrLight.Range(11)
	if got := u.Reading(0, AttrLight, 0); got != lo {
		t.Fatalf("node 0 = %f, want %f", got, lo)
	}
	if got := u.Reading(10, AttrLight, 0); got != hi {
		t.Fatalf("node 10 = %f, want %f", got, hi)
	}
	if got := u.Reading(5, AttrLight, time.Hour); got != lo+(hi-lo)*0.5 {
		t.Fatalf("node 5 = %f, want midpoint", got)
	}
	if got := u.Reading(3, AttrNodeID, 0); got != 3 {
		t.Fatalf("nodeid = %f, want 3", got)
	}
	single := UniformField{N: 1}
	if got := single.Reading(0, AttrTemp, 0); got != 0 {
		t.Fatalf("single-node uniform field = %f, want 0", got)
	}
}

func TestHashNoiseBounds(t *testing.T) {
	f := func(a, b, c int64) bool {
		v := hashNoise(a, b, c)
		return v >= -1 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashNoiseSpread(t *testing.T) {
	// The noise should not collapse to a constant.
	var min, max float64 = 1, -1
	for i := int64(0); i < 1000; i++ {
		v := hashNoise(i, 2, 12345)
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max-min < 1.0 {
		t.Fatalf("noise spread %f too small", max-min)
	}
}

func TestAttrRangeNodeID(t *testing.T) {
	lo, hi := AttrNodeID.Range(64)
	if lo != 0 || hi != 63 {
		t.Fatalf("nodeid range = [%f,%f], want [0,63]", lo, hi)
	}
}

// TestTickCacheConsistency asserts the per-tick memo never changes a
// reading: interleaving times (forcing cache hits and misses in every
// order) must produce exactly the values a fresh field produces.
func TestTickCacheConsistency(t *testing.T) {
	topo := grid(t, 4)
	warm := New(topo, Config{Seed: 9})
	times := []sim.Time{0, time.Second, 0, 3 * time.Second, time.Second, 0}
	type key struct {
		id topology.NodeID
		a  Attr
		t  sim.Time
	}
	got := make(map[key]float64)
	for _, at := range times {
		for i := 0; i < topo.Size(); i++ {
			for _, a := range AllAttrs() {
				k := key{topology.NodeID(i), a, at}
				v := warm.Reading(k.id, k.a, k.t)
				if prev, ok := got[k]; ok && prev != v {
					t.Fatalf("%v: reading changed across cache states: %v vs %v", k, prev, v)
				}
				got[k] = v
			}
		}
	}
	// A cold field (fresh caches) agrees on every sampled triple.
	cold := New(topo, Config{Seed: 9})
	for k, v := range got {
		if cv := cold.Reading(k.id, k.a, k.t); cv != v {
			t.Fatalf("%v: warm %v != cold %v", k, v, cv)
		}
	}
}

// TestConcurrentReadings exercises the documented concurrent-read safety:
// goroutines hammering different times and nodes must each see the same
// values a serial reader sees (run under -race to check the tick cache).
func TestConcurrentReadings(t *testing.T) {
	topo := grid(t, 4)
	f := New(topo, Config{Seed: 3})
	ref := New(topo, Config{Seed: 3})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := topology.NodeID((g*7 + i) % topo.Size())
				at := time.Duration((g+i)%5) * time.Second
				if v := f.Reading(id, AttrTemp, at); v < 0 || v > 100 {
					errs <- "reading out of range"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Post-race spot check against an untouched field.
	for i := 0; i < topo.Size(); i++ {
		if f.Reading(topology.NodeID(i), AttrTemp, time.Second) !=
			ref.Reading(topology.NodeID(i), AttrTemp, time.Second) {
			t.Fatal("concurrent access corrupted the field")
		}
	}
}
