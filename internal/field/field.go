// Package field generates the synthetic physical phenomena the simulated
// sensors measure.
//
// The paper runs on TOSSIM with mote sensor boards reading light and
// temperature; readings in real deployments are spatially and temporally
// correlated, a property §3.2.2 explicitly relies on ("the set of sensor
// nodes involved in a query are likely to be spatially connected and
// temporally stable"). This package substitutes a seeded Gaussian-bump field:
// each attribute is a smooth function of position and time — a base level
// plus a spatial gradient, a small set of slowly drifting radial bumps and
// low-amplitude noise — so nearby nodes read similar values and a node's
// value changes slowly. That reproduces exactly the correlation structure
// the in-network optimizer exploits, without TinyOS hardware.
package field

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Attr identifies a sensed attribute. The set matches the paper's
// experiments (§4.3 uses nodeid, light, temp).
type Attr uint8

const (
	// AttrNodeID is the node's identifier, exposed as a pseudo-sensor the
	// way TinyDB does.
	AttrNodeID Attr = iota + 1
	// AttrLight is light intensity in raw ADC-like units, range [0, 1000].
	AttrLight
	// AttrTemp is temperature, range [0, 100].
	AttrTemp
	// AttrHumidity is relative humidity, range [0, 100].
	AttrHumidity
	// AttrVoltage is battery voltage, range [0, 5].
	AttrVoltage

	numAttrs = 5
)

// AllAttrs lists every attribute, in declaration order.
func AllAttrs() []Attr {
	return []Attr{AttrNodeID, AttrLight, AttrTemp, AttrHumidity, AttrVoltage}
}

// String returns the TinyDB-style lowercase name of the attribute.
func (a Attr) String() string {
	switch a {
	case AttrNodeID:
		return "nodeid"
	case AttrLight:
		return "light"
	case AttrTemp:
		return "temp"
	case AttrHumidity:
		return "humidity"
	case AttrVoltage:
		return "voltage"
	default:
		return fmt.Sprintf("attr(%d)", uint8(a))
	}
}

// ParseAttr converts a TinyDB-style attribute name to an Attr.
func ParseAttr(s string) (Attr, error) {
	for _, a := range AllAttrs() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("field: unknown attribute %q", s)
}

// Range returns the [min, max] value range of the attribute for a network of
// n nodes. The optimizer's selectivity estimation uses these bounds as its
// prior data distribution.
func (a Attr) Range(n int) (min, max float64) {
	switch a {
	case AttrNodeID:
		return 0, float64(n - 1)
	case AttrLight:
		return 0, 1000
	case AttrTemp:
		return 0, 100
	case AttrHumidity:
		return 0, 100
	case AttrVoltage:
		return 0, 5
	default:
		return 0, 1
	}
}

// bump is a slowly moving radial feature (a cloud shadow, a heat source...).
type bump struct {
	cx, cy   float64 // center
	vx, vy   float64 // drift in feet/hour
	radius   float64
	amp      float64
	phase    float64 // temporal oscillation phase
	periodHr float64

	// Precomputed at construction for the Reading hot path.
	omega  float64 // 2π/periodHr
	inv2r2 float64 // 1/(2·radius²)
}

// maxBumps bounds the features per attribute; tick relies on it to stay
// allocation-free per bump.
const maxBumps = 4

// tick caches the node-independent terms of an attribute at one virtual
// instant: the network-wide drift, each bump's drifted center and its
// oscillated amplitude. Simulations sample every node at shared, aligned
// epoch instants (§3.2.1), so one tick serves a whole network sweep and the
// per-reading work reduces to the spatial attenuation and noise hash. A
// tick is immutable once published.
type tick struct {
	t      sim.Time
	drift  float64
	n      int
	cx     [maxBumps]float64
	cy     [maxBumps]float64
	ampOsc [maxBumps]float64
}

// attrModel is the per-attribute generative model.
type attrModel struct {
	base     float64 // network-wide mean level
	gradX    float64 // per-foot spatial gradient
	gradY    float64
	bumps    []bump
	noiseAmp float64
	driftAmp float64 // slow network-wide temporal oscillation
	periodHr float64
	min, max float64
	perNode  []float64 // fixed per-node calibration offset

	// static is the time-invariant per-node term, precomputed at
	// construction: base + gradient·position + calibration offset.
	static []float64
	omega  float64 // 2π/periodHr

	// cache holds the most recent tick. Published atomically so the Field
	// stays safe for concurrent reads.
	cache atomic.Pointer[tick]
}

// tickAt returns the node-independent terms for time t, reusing the cached
// tick when t matches (the hot case: every node reads at the same aligned
// epoch instant).
func (m *attrModel) tickAt(t sim.Time) *tick {
	if tk := m.cache.Load(); tk != nil && tk.t == t {
		return tk
	}
	hours := t.Hours()
	tk := &tick{t: t, n: len(m.bumps)}
	tk.drift = m.driftAmp * math.Sin(m.omega*hours)
	for i := range m.bumps {
		b := &m.bumps[i]
		tk.cx[i] = b.cx + b.vx*hours
		tk.cy[i] = b.cy + b.vy*hours
		tk.ampOsc[i] = b.amp * (0.7 + 0.3*math.Sin(b.omega*hours+b.phase))
	}
	m.cache.Store(tk)
	return tk
}

// Field produces deterministic readings for every (node, attribute, time)
// triple. It is immutable after construction apart from an internal
// atomically-published cache, and safe for concurrent reads.
type Field struct {
	topo   *topology.Topology
	px, py []float64 // node positions, flattened for the hot path
	models [numAttrs + 1]*attrModel
}

// Config tunes the generated phenomena.
type Config struct {
	// Seed drives every random choice in the field.
	Seed int64
	// NoiseAmp scales per-reading noise relative to the attribute range
	// (default 0.01). Noise is a deterministic hash of (node, attr, time) so
	// that re-reading the same instant yields the same value.
	NoiseAmp float64
	// Correlation in [0,1] scales the spatial feature sizes; higher values
	// produce larger, smoother features (default 0.6).
	Correlation float64
}

// New builds a field over the given topology.
func New(topo *topology.Topology, cfg Config) *Field {
	if cfg.NoiseAmp == 0 {
		cfg.NoiseAmp = 0.01
	}
	if cfg.Correlation == 0 {
		cfg.Correlation = 0.6
	}
	rng := sim.NewRand(cfg.Seed)
	f := &Field{
		topo: topo,
		px:   make([]float64, topo.Size()),
		py:   make([]float64, topo.Size()),
	}
	// Extent of the deployment, used to scale features.
	var maxX, maxY float64
	for i := 0; i < topo.Size(); i++ {
		p := topo.Position(topology.NodeID(i))
		f.px[i], f.py[i] = p.X, p.Y
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	extent := math.Max(math.Max(maxX, maxY), 1)

	for _, a := range AllAttrs() {
		if a == AttrNodeID {
			continue
		}
		lo, hi := a.Range(topo.Size())
		span := hi - lo
		m := &attrModel{
			base:     lo + span*(0.35+0.3*rng.Float64()),
			gradX:    span * (rng.Float64() - 0.5) * 0.4 / extent,
			gradY:    span * (rng.Float64() - 0.5) * 0.4 / extent,
			noiseAmp: span * cfg.NoiseAmp,
			driftAmp: span * 0.08,
			periodHr: 1 + 2*rng.Float64(),
			min:      lo,
			max:      hi,
		}
		nBumps := 2 + rng.Intn(3) // stays within maxBumps
		for b := 0; b < nBumps; b++ {
			m.bumps = append(m.bumps, bump{
				cx:       rng.Float64() * maxX,
				cy:       rng.Float64() * maxY,
				vx:       (rng.Float64() - 0.5) * extent * 0.2,
				vy:       (rng.Float64() - 0.5) * extent * 0.2,
				radius:   extent * cfg.Correlation * (0.3 + 0.4*rng.Float64()),
				amp:      span * (0.15 + 0.25*rng.Float64()) * signOf(rng.Float64()-0.5),
				phase:    rng.Float64() * 2 * math.Pi,
				periodHr: 0.5 + 1.5*rng.Float64(),
			})
		}
		m.perNode = make([]float64, topo.Size())
		for i := range m.perNode {
			m.perNode[i] = span * 0.02 * rng.NormFloat64()
		}
		m.precompute(f)
		f.models[a] = m
	}
	return f
}

// precompute derives the Reading hot-path terms that never change after
// construction.
func (m *attrModel) precompute(f *Field) {
	if len(m.bumps) > maxBumps {
		panic(fmt.Sprintf("field: %d bumps exceeds maxBumps %d", len(m.bumps), maxBumps))
	}
	m.omega = 2 * math.Pi / m.periodHr
	for i := range m.bumps {
		b := &m.bumps[i]
		b.omega = 2 * math.Pi / b.periodHr
		b.inv2r2 = 1 / (2 * b.radius * b.radius)
	}
	m.static = make([]float64, len(f.px))
	for i := range m.static {
		m.static[i] = m.base + m.gradX*f.px[i] + m.gradY*f.py[i] + m.perNode[i]
	}
}

func signOf(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// Reading returns the value node id senses for attribute a at virtual time t.
// Values are clamped to the attribute range.
func (f *Field) Reading(id topology.NodeID, a Attr, t sim.Time) float64 {
	if a == AttrNodeID {
		return float64(id)
	}
	m := f.models[a]
	if m == nil {
		return 0
	}
	tk := m.tickAt(t)
	px, py := f.px[id], f.py[id]

	v := m.static[id] + tk.drift
	for i := 0; i < tk.n; i++ {
		dx := px - tk.cx[i]
		dy := py - tk.cy[i]
		v += tk.ampOsc[i] * math.Exp(-(dx*dx+dy*dy)*m.bumps[i].inv2r2)
	}
	v += m.noiseAmp * hashNoise(int64(id), int64(a), int64(t))

	if v < m.min {
		v = m.min
	}
	if v > m.max {
		v = m.max
	}
	return v
}

// Sample returns the readings for a set of attributes at once, modelling the
// shared acquisition of §3.2.1 (one physical sample serves every query that
// fires at this instant).
func (f *Field) Sample(id topology.NodeID, attrs []Attr, t sim.Time) map[Attr]float64 {
	out := make(map[Attr]float64, len(attrs))
	for _, a := range attrs {
		out[a] = f.Reading(id, a, t)
	}
	return out
}

// hashNoise maps (node, attr, time) to a deterministic value in [-1, 1],
// so a reading is a pure function of its arguments.
func hashNoise(a, b, c int64) float64 {
	x := uint64(a)*0x9E3779B185EBCA87 ^ uint64(b)*0xC2B2AE3D27D4EB4F ^ uint64(c)*0x165667B19E3779F9
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	// Map the top 53 bits to [0,1), then to [-1,1].
	u := float64(x>>11) / float64(1<<53)
	return 2*u - 1
}

// UniformField is a degenerate Field-compatible generator used by unit tests
// and the paper's §3.1.3 worked example, where readings are assumed uniform:
// node i reads a value linear in i across the attribute range, constant in
// time. It implements Source.
type UniformField struct {
	N int // number of nodes
}

// Reading implements Source: node id reads lo + (id/(N-1))·(hi-lo).
func (u UniformField) Reading(id topology.NodeID, a Attr, _ sim.Time) float64 {
	if a == AttrNodeID {
		return float64(id)
	}
	lo, hi := a.Range(u.N)
	if u.N <= 1 {
		return lo
	}
	return lo + (hi-lo)*float64(id)/float64(u.N-1)
}

// Source abstracts reading generation so simulations can run on the
// correlated Field or on synthetic stand-ins.
type Source interface {
	Reading(id topology.NodeID, a Attr, t sim.Time) float64
}

var (
	_ Source = (*Field)(nil)
	_ Source = UniformField{}
)

// Duration helpers shared by callers that think in epochs.

// Hours converts a sim.Time to fractional hours (exposed for tests).
func Hours(t sim.Time) float64 { return time.Duration(t).Hours() }
