package field

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TraceSource replays recorded sensor readings — the hook for substituting
// a real deployment trace (e.g. the Intel Lab data) for the synthetic
// field. Readings are step-interpolated: a node reports the most recent
// recorded value at or before the query instant, and the first recorded
// value before that. Attributes or nodes absent from the trace read zero.
type TraceSource struct {
	// series[node][attr] is the time-ordered list of samples.
	series map[topology.NodeID]map[Attr][]sample
}

type sample struct {
	at sim.Time
	v  float64
}

// NewTraceSource builds an empty trace; fill it with Add or load one with
// LoadTraceCSV.
func NewTraceSource() *TraceSource {
	return &TraceSource{series: make(map[topology.NodeID]map[Attr][]sample)}
}

// Add records one reading. Samples may be added in any order; they are kept
// sorted per (node, attribute).
func (ts *TraceSource) Add(id topology.NodeID, a Attr, at sim.Time, v float64) {
	byAttr, ok := ts.series[id]
	if !ok {
		byAttr = make(map[Attr][]sample)
		ts.series[id] = byAttr
	}
	s := byAttr[a]
	s = append(s, sample{at: at, v: v})
	// Keep sorted; appends are usually already in order.
	for i := len(s) - 1; i > 0 && s[i].at < s[i-1].at; i-- {
		s[i], s[i-1] = s[i-1], s[i]
	}
	byAttr[a] = s
}

// Reading implements Source by step interpolation.
func (ts *TraceSource) Reading(id topology.NodeID, a Attr, t sim.Time) float64 {
	if a == AttrNodeID {
		return float64(id)
	}
	s := ts.series[id][a]
	if len(s) == 0 {
		return 0
	}
	// Last sample with at ≤ t; before the first sample, hold its value.
	idx := sort.Search(len(s), func(i int) bool { return s[i].at > t })
	if idx == 0 {
		return s[0].v
	}
	return s[idx-1].v
}

// Len returns the total number of recorded samples.
func (ts *TraceSource) Len() int {
	n := 0
	for _, byAttr := range ts.series {
		for _, s := range byAttr {
			n += len(s)
		}
	}
	return n
}

// LoadTraceCSV reads a trace in the format
//
//	at_ms,node,attr,value
//	0,1,light,412.5
//	2048,1,light,415.0
//
// A header row is optional (detected by a non-numeric first field).
func LoadTraceCSV(r io.Reader) (*TraceSource, error) {
	ts := NewTraceSource()
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("field: trace line %d: %w", line+1, err)
		}
		line++
		if line == 1 {
			if _, err := strconv.ParseInt(rec[0], 10, 64); err != nil {
				continue // header row
			}
		}
		atMS, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("field: trace line %d: bad timestamp %q", line, rec[0])
		}
		node, err := strconv.Atoi(rec[1])
		if err != nil || node < 0 {
			return nil, fmt.Errorf("field: trace line %d: bad node %q", line, rec[1])
		}
		attr, err := ParseAttr(rec[2])
		if err != nil {
			return nil, fmt.Errorf("field: trace line %d: %w", line, err)
		}
		v, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("field: trace line %d: bad value %q", line, rec[3])
		}
		ts.Add(topology.NodeID(node), attr, sim.Time(atMS)*sim.Time(time.Millisecond), v)
	}
	if ts.Len() == 0 {
		return nil, fmt.Errorf("field: empty trace")
	}
	return ts, nil
}

// SaveTraceCSV writes the trace in LoadTraceCSV's format, sorted by node,
// attribute and time.
func (ts *TraceSource) SaveTraceCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"at_ms", "node", "attr", "value"}); err != nil {
		return err
	}
	nodes := make([]topology.NodeID, 0, len(ts.series))
	for id := range ts.series {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, id := range nodes {
		attrs := make([]Attr, 0, len(ts.series[id]))
		for a := range ts.series[id] {
			attrs = append(attrs, a)
		}
		sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
		for _, a := range attrs {
			for _, s := range ts.series[id][a] {
				rec := []string{
					strconv.FormatInt(int64(time.Duration(s.at)/time.Millisecond), 10),
					strconv.Itoa(int(id)),
					a.String(),
					strconv.FormatFloat(s.v, 'g', -1, 64),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Record samples a Source at fixed intervals over [0, span] for every
// sensor node and attribute, producing a trace — useful for exporting a
// synthetic field into the CSV form, or capturing a scenario for replay.
func Record(src Source, topo *topology.Topology, attrs []Attr, every, span time.Duration) *TraceSource {
	ts := NewTraceSource()
	for i := 1; i < topo.Size(); i++ {
		id := topology.NodeID(i)
		for _, a := range attrs {
			for at := time.Duration(0); at <= span; at += every {
				ts.Add(id, a, sim.Time(at), src.Reading(id, a, sim.Time(at)))
			}
		}
	}
	return ts
}

var _ Source = (*TraceSource)(nil)
