package topology

// Named node ids for the Figure 2 worked example of the paper. Node 0 is the
// base station; the sensor nodes are A–H.
const (
	Fig2A NodeID = iota + 1
	Fig2B
	Fig2C
	Fig2D
	Fig2E
	Fig2F
	Fig2G
	Fig2H
)

// Figure2 reconstructs the 8-node deployment of the paper's Figure 2. The
// paper gives the TinyDB routing tree and radio ranges pictorially; the
// positions below reproduce every relationship the worked example relies on:
//
//   - TinyDB tree: BS–A, BS–B, A–C, B–D, B–E, B–F, C–G, D–H
//     (so depths: A,B = 1; C,D,E,F = 2; G,H = 3)
//   - G is within radio range of both C and D, with a better link to C
//     (hence its TinyDB parent is C, but the query-aware DAG can divert it
//     through D, putting C and A to sleep)
//   - H's only upper-level neighbor is D
//
// With acquisition queries q_i over {D,E,F,G,H} and q_j over {D,G,H} this
// yields the paper's counts: 20 messages / 8 involved nodes under TinyDB
// versus 12 messages / 6 nodes under the DAG, and 14 versus 7 messages for
// the aggregation variant.
func Figure2() (*Topology, error) {
	positions := []Point{
		{0, 0},    // base station
		{0, 30},   // A
		{30, 0},   // B
		{25, 55},  // C
		{55, 25},  // D
		{50, -15}, // E
		{30, -40}, // F
		{52, 62},  // G
		{80, 45},  // H
	}
	return New(positions, 40)
}
