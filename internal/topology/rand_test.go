package topology

import "math/rand"

// newTestRand returns a seeded source for property tests without importing
// the sim package (keeping topology dependency-free).
func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
