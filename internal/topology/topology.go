// Package topology models the physical deployment of a sensor network: node
// positions, the radio-range neighbor graph, hop levels from the base
// station, and link qualities.
//
// The paper's evaluation deploys nodes uniformly on an n×n grid with the base
// station (node 0) at the upper-left corner, a 50 ft radio range and 20 ft
// grid spacing; NewGrid reproduces that deployment. Arbitrary deployments can
// be built with New for hand-crafted scenarios such as the Figure 2 worked
// example.
package topology

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a sensor node. The base station is always node 0.
type NodeID int

// BaseStation is the NodeID of the sink.
const BaseStation NodeID = 0

// Point is a 2-D position in feet.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Topology is an immutable deployment: positions, neighbor sets within radio
// range, BFS levels (hop count from the base station) and symmetric link
// qualities. Construct with New or NewGrid.
type Topology struct {
	positions  []Point
	radioRange float64

	neighbors [][]NodeID // sorted by NodeID
	level     []int      // hops from base station; -1 if unreachable
	maxDepth  int

	upper [][]NodeID // neighbors at level-1, sorted by link quality (best first)
	lower [][]NodeID // neighbors at level+1

	quality map[[2]NodeID]float64 // link quality in (0,1], keyed with lo<hi

	// subtreeLo/subtreeHi bound the node IDs in each node's routing-tree
	// subtree (itself included) — the per-child index a TinyDB Semantic
	// Routing Tree maintains to prune the dissemination of node-id-based
	// queries. Intervals may over-cover (IDs are not contiguous within a
	// subtree); SRT accepts such false positives.
	subtreeLo []NodeID
	subtreeHi []NodeID
}

// New builds a topology from explicit positions. positions[0] is the base
// station. radioRange bounds which pairs can communicate directly.
func New(positions []Point, radioRange float64) (*Topology, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("topology: no nodes")
	}
	if radioRange <= 0 {
		return nil, fmt.Errorf("topology: non-positive radio range %v", radioRange)
	}
	t := &Topology{
		positions:  append([]Point(nil), positions...),
		radioRange: radioRange,
		quality:    make(map[[2]NodeID]float64),
	}
	t.buildNeighbors()
	t.buildLevels()
	if err := t.checkConnected(); err != nil {
		return nil, err
	}
	t.buildDAG()
	t.buildSubtrees()
	return t, nil
}

// NewGrid builds the paper's deployment: a side×side grid with the given
// spacing (feet) and radio range (feet), base station at the upper-left
// corner. The paper uses spacing 20 ft and range 50 ft.
func NewGrid(side int, spacing, radioRange float64) (*Topology, error) {
	if side < 1 {
		return nil, fmt.Errorf("topology: grid side %d < 1", side)
	}
	positions := make([]Point, 0, side*side)
	for row := 0; row < side; row++ {
		for col := 0; col < side; col++ {
			positions = append(positions, Point{X: float64(col) * spacing, Y: float64(row) * spacing})
		}
	}
	return New(positions, radioRange)
}

// PaperGrid builds the exact evaluation deployment for n = side² nodes:
// 20 ft spacing, 50 ft radio range.
func PaperGrid(side int) (*Topology, error) {
	return NewGrid(side, 20, 50)
}

// NewRandom builds an irregular deployment: n nodes placed uniformly at
// random in a side×side box (base station at the center), re-drawing up to
// 100 times until the radio graph is connected. Real deployments are rarely
// grids; this exercises the algorithms off the paper's regular topology.
func NewRandom(n int, side, radioRange float64, seed int64) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: %d nodes", n)
	}
	rng := newSplitMix(uint64(seed))
	for attempt := 0; attempt < 100; attempt++ {
		positions := make([]Point, 0, n)
		positions = append(positions, Point{X: side / 2, Y: side / 2})
		for i := 1; i < n; i++ {
			positions = append(positions, Point{X: rng.float() * side, Y: rng.float() * side})
		}
		t, err := New(positions, radioRange)
		if err == nil {
			return t, nil
		}
	}
	return nil, fmt.Errorf("topology: no connected random deployment of %d nodes in %.0fx%.0f at range %.0f after 100 draws",
		n, side, side, radioRange)
}

// splitMix is a tiny deterministic PRNG, keeping the package free of
// math/rand (and of the sim package, which would be a dependency cycle).
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed + 0x9E3779B97F4A7C15} }

func (r *splitMix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitMix) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (t *Topology) buildNeighbors() {
	n := len(t.positions)
	t.neighbors = make([][]NodeID, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := t.positions[i].Dist(t.positions[j])
			if d <= t.radioRange {
				t.neighbors[i] = append(t.neighbors[i], NodeID(j))
				t.neighbors[j] = append(t.neighbors[j], NodeID(i))
				// Link quality decays with distance; deterministic so the
				// fixed TinyDB routing tree is reproducible.
				q := 1 - 0.5*d/t.radioRange
				t.quality[linkKey(NodeID(i), NodeID(j))] = q
			}
		}
	}
	for i := range t.neighbors {
		sort.Slice(t.neighbors[i], func(a, b int) bool { return t.neighbors[i][a] < t.neighbors[i][b] })
	}
}

func (t *Topology) buildLevels() {
	n := len(t.positions)
	t.level = make([]int, n)
	for i := range t.level {
		t.level[i] = -1
	}
	t.level[BaseStation] = 0
	queue := []NodeID{BaseStation}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.neighbors[u] {
			if t.level[v] == -1 {
				t.level[v] = t.level[u] + 1
				if t.level[v] > t.maxDepth {
					t.maxDepth = t.level[v]
				}
				queue = append(queue, v)
			}
		}
	}
}

func (t *Topology) checkConnected() error {
	for id, l := range t.level {
		if l == -1 {
			return fmt.Errorf("topology: node %d unreachable from base station", id)
		}
	}
	return nil
}

func (t *Topology) buildDAG() {
	n := len(t.positions)
	t.upper = make([][]NodeID, n)
	t.lower = make([][]NodeID, n)
	for i := 0; i < n; i++ {
		u := NodeID(i)
		for _, v := range t.neighbors[i] {
			switch t.level[v] {
			case t.level[u] - 1:
				t.upper[i] = append(t.upper[i], v)
			case t.level[u] + 1:
				t.lower[i] = append(t.lower[i], v)
			}
		}
		// Best link first so "ties are broken by favoring nodes with a more
		// stable link" falls out of iteration order.
		up := t.upper[i]
		sort.Slice(up, func(a, b int) bool {
			qa, qb := t.Quality(u, up[a]), t.Quality(u, up[b])
			if qa != qb {
				return qa > qb
			}
			return up[a] < up[b]
		})
	}
}

// buildSubtrees computes the node-ID interval of every routing-tree
// subtree by folding children into parents in decreasing-level order.
func (t *Topology) buildSubtrees() {
	n := len(t.positions)
	t.subtreeLo = make([]NodeID, n)
	t.subtreeHi = make([]NodeID, n)
	order := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		t.subtreeLo[i] = NodeID(i)
		t.subtreeHi[i] = NodeID(i)
		order = append(order, NodeID(i))
	}
	sort.Slice(order, func(a, b int) bool { return t.level[order[a]] > t.level[order[b]] })
	for _, id := range order {
		if id == BaseStation {
			continue
		}
		p := t.TreeParent(id)
		if t.subtreeLo[id] < t.subtreeLo[p] {
			t.subtreeLo[p] = t.subtreeLo[id]
		}
		if t.subtreeHi[id] > t.subtreeHi[p] {
			t.subtreeHi[p] = t.subtreeHi[id]
		}
	}
}

// SubtreeInterval returns the [lo, hi] node-ID bound of id's routing-tree
// subtree (id included). This is the SRT index used to prune query
// dissemination: a query over node IDs outside the interval has no answer
// node below id.
func (t *Topology) SubtreeInterval(id NodeID) (lo, hi NodeID) {
	return t.subtreeLo[id], t.subtreeHi[id]
}

// Size returns the number of nodes, including the base station.
func (t *Topology) Size() int { return len(t.positions) }

// Position returns the location of node id.
func (t *Topology) Position(id NodeID) Point { return t.positions[id] }

// RadioRange returns the radio range in feet.
func (t *Topology) RadioRange() float64 { return t.radioRange }

// Neighbors returns the nodes within radio range of id, sorted by NodeID.
// The returned slice is shared; callers must not mutate it.
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.neighbors[id] }

// Level returns the BFS hop count of id from the base station.
func (t *Topology) Level(id NodeID) int { return t.level[id] }

// MaxDepth returns the deepest level in the network.
func (t *Topology) MaxDepth() int { return t.maxDepth }

// UpperNeighbors returns id's neighbors one level closer to the base
// station, best link quality first. These are the DAG edges of §3.2.2.
func (t *Topology) UpperNeighbors(id NodeID) []NodeID { return t.upper[id] }

// LowerNeighbors returns id's neighbors one level farther from the base
// station.
func (t *Topology) LowerNeighbors(id NodeID) []NodeID { return t.lower[id] }

// Quality returns the symmetric link quality between two neighboring nodes
// in (0,1], or 0 if they are out of range of each other.
func (t *Topology) Quality(a, b NodeID) float64 { return t.quality[linkKey(a, b)] }

// InRange reports whether a and b can communicate directly.
func (t *Topology) InRange(a, b NodeID) bool {
	_, ok := t.quality[linkKey(a, b)]
	return ok || a == b
}

// TreeParent returns the TinyDB routing-tree parent of id: the upper-level
// neighbor with the best link quality. The base station has no parent and
// returns -1. This is the fixed, query-ignorant tree the baseline uses.
func (t *Topology) TreeParent(id NodeID) NodeID {
	if id == BaseStation {
		return -1
	}
	up := t.upper[id]
	if len(up) == 0 {
		// Cannot happen in a connected topology: every non-root node has a
		// BFS predecessor.
		return -1
	}
	return up[0]
}

// TreeChildren returns the nodes whose TreeParent is id, sorted by NodeID.
func (t *Topology) TreeChildren(id NodeID) []NodeID {
	var kids []NodeID
	for i := 0; i < t.Size(); i++ {
		child := NodeID(i)
		if child != BaseStation && t.TreeParent(child) == id {
			kids = append(kids, child)
		}
	}
	return kids
}

// NodesAtLevel returns all nodes whose level is k, sorted by NodeID.
func (t *Topology) NodesAtLevel(k int) []NodeID {
	var out []NodeID
	for i, l := range t.level {
		if l == k {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// LevelSizes returns |N_k| for k = 0..MaxDepth, the quantity Eq. (2) of the
// paper sums over.
func (t *Topology) LevelSizes() []int {
	sizes := make([]int, t.maxDepth+1)
	for _, l := range t.level {
		sizes[l]++
	}
	return sizes
}

// AvgDepth returns the average routing-tree depth d = Σ_k k·|N_k| / |N| over
// the sensor nodes (the base station, at level 0, contributes nothing to the
// numerator but is excluded from the denominator as it is not a sensor).
func (t *Topology) AvgDepth() float64 {
	if t.Size() <= 1 {
		return 0
	}
	sum := 0
	for _, l := range t.level {
		sum += l
	}
	return float64(sum) / float64(t.Size()-1)
}

func linkKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}
