package topology

import (
	"testing"
	"testing/quick"
)

func TestPaperGridSmall(t *testing.T) {
	// 4x4 grid, 20ft spacing, 50ft range: each node reaches everything
	// within 50ft — orthogonal neighbors at 20 and 40ft, diagonals at
	// ~28.3ft, knight moves at ~44.7ft.
	topo, err := PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 16 {
		t.Fatalf("size = %d, want 16", topo.Size())
	}
	// Corner node 0: reaches (0,1),(0,2),(1,0),(2,0),(1,1),(1,2),(2,1);
	// the (2,2) diagonal is 56.6ft, out of the 50ft range.
	if got := len(topo.Neighbors(0)); got != 7 {
		t.Fatalf("corner neighbors = %d, want 7: %v", got, topo.Neighbors(0))
	}
	if topo.Level(BaseStation) != 0 {
		t.Fatal("base station must be level 0")
	}
	// Farthest corner (3,3) = node 15: (1,1)?(2,1) knight hop + remainder →
	// 2 hops (e.g. via (1,2) then (3,3) is (2,1) away).
	if topo.Level(15) != 2 {
		t.Fatalf("level(15) = %d, want 2", topo.Level(15))
	}
	if topo.MaxDepth() != 2 {
		t.Fatalf("maxDepth = %d, want 2", topo.MaxDepth())
	}
}

func TestPaperGrid8(t *testing.T) {
	topo, err := PaperGrid(8)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 64 {
		t.Fatalf("size = %d, want 64", topo.Size())
	}
	// Node (7,7) = 63: each hop advances at most (2,1) cells (the 2,2
	// diagonal is out of range), so covering (7,7) needs ⌈14/3⌉ = 5 hops.
	if topo.Level(63) != 5 {
		t.Fatalf("level(63) = %d, want 5", topo.Level(63))
	}
	sizes := topo.LevelSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 64 {
		t.Fatalf("level sizes sum to %d, want 64", total)
	}
	if sizes[0] != 1 {
		t.Fatalf("level 0 size = %d, want 1", sizes[0])
	}
}

func TestLevelsAreBFSConsistent(t *testing.T) {
	topo, err := PaperGrid(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.Size(); i++ {
		id := NodeID(i)
		if id == BaseStation {
			continue
		}
		// Every node must have at least one upper neighbor, and all
		// neighbors must be within one level.
		if len(topo.UpperNeighbors(id)) == 0 {
			t.Fatalf("node %d has no upper neighbors", id)
		}
		for _, nb := range topo.Neighbors(id) {
			dl := topo.Level(nb) - topo.Level(id)
			if dl < -1 || dl > 1 {
				t.Fatalf("neighbor levels differ by %d between %d and %d", dl, id, nb)
			}
		}
	}
}

func TestTreeParentBestQuality(t *testing.T) {
	topo, err := PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < topo.Size(); i++ {
		id := NodeID(i)
		p := topo.TreeParent(id)
		if p < 0 {
			t.Fatalf("node %d has no parent", id)
		}
		if topo.Level(p) != topo.Level(id)-1 {
			t.Fatalf("parent of %d at level %d, node at %d", id, topo.Level(p), topo.Level(id))
		}
		for _, u := range topo.UpperNeighbors(id) {
			if topo.Quality(id, u) > topo.Quality(id, p) {
				t.Fatalf("node %d parent %d has quality %f < neighbor %d quality %f",
					id, p, topo.Quality(id, p), u, topo.Quality(id, u))
			}
		}
	}
}

func TestTreeChildrenInverse(t *testing.T) {
	topo, err := PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[NodeID]bool)
	for i := 0; i < topo.Size(); i++ {
		for _, c := range topo.TreeChildren(NodeID(i)) {
			if topo.TreeParent(c) != NodeID(i) {
				t.Fatalf("child %d of %d has parent %d", c, i, topo.TreeParent(c))
			}
			if seen[c] {
				t.Fatalf("node %d is child of two parents", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != topo.Size()-1 {
		t.Fatalf("tree covers %d nodes, want %d", len(seen), topo.Size()-1)
	}
}

func TestDisconnectedTopologyRejected(t *testing.T) {
	_, err := New([]Point{{0, 0}, {1000, 1000}}, 50)
	if err == nil {
		t.Fatal("expected error for disconnected topology")
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := New(nil, 50); err == nil {
		t.Fatal("empty positions should error")
	}
	if _, err := New([]Point{{0, 0}}, 0); err == nil {
		t.Fatal("zero range should error")
	}
	if _, err := NewGrid(0, 20, 50); err == nil {
		t.Fatal("zero side should error")
	}
}

func TestSingleNode(t *testing.T) {
	topo, err := New([]Point{{0, 0}}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if topo.MaxDepth() != 0 || topo.AvgDepth() != 0 {
		t.Fatal("single-node topology should have depth 0")
	}
}

func TestAvgDepth(t *testing.T) {
	// Chain of 3: BS - n1 - n2 at spacing 40, range 50 → levels 0,1,2.
	topo, err := New([]Point{{0, 0}, {40, 0}, {80, 0}}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Level(2) != 2 {
		t.Fatalf("level(2) = %d, want 2", topo.Level(2))
	}
	if got, want := topo.AvgDepth(), 1.5; got != want {
		t.Fatalf("avgDepth = %f, want %f", got, want)
	}
}

func TestQualitySymmetricAndBounded(t *testing.T) {
	topo, err := PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.Size(); i++ {
		for _, nb := range topo.Neighbors(NodeID(i)) {
			q1 := topo.Quality(NodeID(i), nb)
			q2 := topo.Quality(nb, NodeID(i))
			if q1 != q2 {
				t.Fatalf("quality not symmetric between %d and %d", i, nb)
			}
			if q1 <= 0 || q1 > 1 {
				t.Fatalf("quality %f out of (0,1]", q1)
			}
		}
	}
}

func TestInRange(t *testing.T) {
	topo, err := PaperGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.InRange(0, 1) {
		t.Fatal("adjacent grid nodes must be in range")
	}
	if !topo.InRange(4, 4) {
		t.Fatal("a node is in range of itself")
	}
	if topo.InRange(0, 8) {
		t.Fatal("opposite corners of a 3x3/20ft grid are ~56.6ft apart, out of 50ft range")
	}
}

func TestFigure2Structure(t *testing.T) {
	topo, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	wantLevel := map[NodeID]int{
		Fig2A: 1, Fig2B: 1,
		Fig2C: 2, Fig2D: 2, Fig2E: 2, Fig2F: 2,
		Fig2G: 3, Fig2H: 3,
	}
	for id, l := range wantLevel {
		if topo.Level(id) != l {
			t.Errorf("level(%d) = %d, want %d", id, topo.Level(id), l)
		}
	}
	wantParent := map[NodeID]NodeID{
		Fig2A: BaseStation, Fig2B: BaseStation,
		Fig2C: Fig2A, Fig2D: Fig2B, Fig2E: Fig2B, Fig2F: Fig2B,
		Fig2G: Fig2C, Fig2H: Fig2D,
	}
	for id, p := range wantParent {
		if topo.TreeParent(id) != p {
			t.Errorf("parent(%d) = %d, want %d", id, topo.TreeParent(id), p)
		}
	}
	// G must be able to divert through D (the DAG edge the example uses).
	upG := topo.UpperNeighbors(Fig2G)
	hasD := false
	for _, u := range upG {
		if u == Fig2D {
			hasD = true
		}
	}
	if !hasD {
		t.Fatalf("G's upper neighbors %v must include D", upG)
	}
	// H must have D as its only upper neighbor.
	upH := topo.UpperNeighbors(Fig2H)
	if len(upH) != 1 || upH[0] != Fig2D {
		t.Fatalf("H's upper neighbors = %v, want [D]", upH)
	}
}

// Property: on random connected deployments, levels differ by at most one
// across any edge and every non-root node has an upper neighbor.
func TestLevelInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		// Random positions in a 100x100 box with a generous range keep the
		// graph connected nearly always; skip disconnected draws.
		r := newTestRand(seed)
		n := 5 + r.Intn(20)
		pos := make([]Point, n)
		for i := range pos {
			pos[i] = Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		}
		topo, err := New(pos, 60)
		if err != nil {
			return true // disconnected draw — vacuously fine
		}
		for i := 0; i < topo.Size(); i++ {
			id := NodeID(i)
			if id != BaseStation && len(topo.UpperNeighbors(id)) == 0 {
				return false
			}
			for _, nb := range topo.Neighbors(id) {
				d := topo.Level(nb) - topo.Level(id)
				if d < -1 || d > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRandomDeployment(t *testing.T) {
	topo, err := NewRandom(30, 150, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 30 {
		t.Fatalf("size = %d", topo.Size())
	}
	// Connected by construction; base station at the center.
	p := topo.Position(BaseStation)
	if p.X != 75 || p.Y != 75 {
		t.Fatalf("base station at %v", p)
	}
	for i := 1; i < topo.Size(); i++ {
		if len(topo.UpperNeighbors(NodeID(i))) == 0 {
			t.Fatalf("node %d unreachable", i)
		}
	}
	// Deterministic per seed.
	again, err := NewRandom(30, 150, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.Size(); i++ {
		if topo.Position(NodeID(i)) != again.Position(NodeID(i)) {
			t.Fatal("same seed must give the same deployment")
		}
	}
	if _, err := NewRandom(0, 100, 50, 1); err == nil {
		t.Fatal("zero nodes must error")
	}
	// Impossible density: sparse nodes in a huge box cannot connect.
	if _, err := NewRandom(5, 100000, 30, 1); err == nil {
		t.Fatal("unconnectable deployment must error")
	}
}
