// Package obs is the observability layer of the repository: run manifests
// identifying what exactly a simulation or experiment sweep executed, a
// time-series of per-node radio/optimizer/engine state sampled at a fixed
// virtual-time interval, and machine-readable (JSON, CSV) exporters for
// manifests, time series, final metrics and experiment sweeps.
//
// Everything obs emits is a pure function of the run's inputs — no wall
// clock, no map iteration order — so exported artifacts are byte-identical
// across parallelism settings and across repeated runs with the same seed.
package obs

import (
	"fmt"
	"hash/fnv"
	"io"
)

// Version identifies the tool revision stamped into every manifest. Bump it
// when the simulator's observable behaviour changes, so archived exports
// remain attributable.
const Version = "0.2.0"

// Manifest identifies one run or sweep: what was simulated, under which
// scheme and seed, on which topology, by which tool version. It is attached
// to every JSON export so results stay self-describing after they leave the
// repository. Manifests carry no wall-clock timestamps: two runs of the
// same configuration produce byte-identical manifests.
type Manifest struct {
	// Tool and Version identify the producing binary.
	Tool    string `json:"tool"`
	Version string `json:"version"`
	// Study names the experiment sweep ("figure 3", "ablation", ...) or is
	// empty for a single simulation run.
	Study string `json:"study,omitempty"`
	// Scheme is the optimization scheme name (empty for multi-scheme sweeps).
	Scheme string `json:"scheme,omitempty"`
	// Seed is the base random seed of the run or sweep.
	Seed int64 `json:"seed"`
	// Nodes is the deployment size including the base station (0 when the
	// sweep spans several sizes).
	Nodes int `json:"nodes,omitempty"`
	// Topology summarizes the deployment shape, e.g. "grid side 4, 16 nodes,
	// depth 3, range 50ft".
	Topology string `json:"topology,omitempty"`
	// Workload names the query workload ("A", "B", "C", "random", a file).
	Workload string `json:"workload,omitempty"`
	// Chaos names the fault-injection scenario the run was driven under
	// (empty for fault-free runs).
	Chaos string `json:"chaos,omitempty"`
	// Alpha is the tier-1 termination parameter, when fixed.
	Alpha float64 `json:"alpha,omitempty"`
	// DurationMS is the simulated virtual time per run, in milliseconds.
	DurationMS int64 `json:"duration_ms,omitempty"`
	// Runs is the number of seeds averaged per stochastic point.
	Runs int `json:"runs,omitempty"`
	// ConfigHash fingerprints every field above (FNV-1a 64); two manifests
	// with equal hashes describe the same configuration.
	ConfigHash string `json:"config_hash"`
}

// NewManifest returns a manifest with the tool identity filled in.
func NewManifest(study string) Manifest {
	return Manifest{Tool: "ttmqo", Version: Version, Study: study}
}

// Hashed returns a copy with ConfigHash computed over the canonical
// rendering of every other field.
func (m Manifest) Hashed() Manifest {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%s|%d|%d|%s|%s|%s|%g|%d|%d",
		m.Tool, m.Version, m.Study, m.Scheme, m.Seed, m.Nodes,
		m.Topology, m.Workload, m.Chaos, m.Alpha, m.DurationMS, m.Runs)
	m.ConfigHash = fmt.Sprintf("%016x", h.Sum64())
	return m
}

// WriteJSON marshals v as indented JSON followed by a newline. The encoding
// is deterministic: struct fields render in declaration order and map keys
// are sorted, so identical values yield identical bytes.
func WriteJSON(w io.Writer, v any) error {
	data, err := marshalIndent(v)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
