package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fullFinalMetrics fills every field with a distinct non-zero value so a
// round trip that silently drops a field cannot pass.
func fullFinalMetrics() FinalMetrics {
	return FinalMetrics{
		SimulatedMS:     60000,
		AvgTxPct:        1.25,
		Messages:        100,
		Retransmissions: 7,
		Dropped:         3,
		Clipped:         2,
		Bytes:           4096,
		ByKind:          map[string]int{"query": 10, "result": 90},
		LatencyMeanMS:   120.5,
		LatencyMaxMS:    900.25,
		LatencyCount:    42,
		Nodes: []NodeMetrics{
			{ID: 1, TxMS: 10.5, RxMS: 20.25, Samples: 60, EnergyJ: 1.5},
		},
	}
}

// TestFinalMetricsRoundTrip pins the JSON export: every field survives a
// marshal/unmarshal cycle byte-exactly.
func TestFinalMetricsRoundTrip(t *testing.T) {
	want := fullFinalMetrics()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	var got FinalMetrics
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip lost data:\n got %+v\nwant %+v", got, want)
	}
}

// TestFinalMetricsFieldSet pins the exported key set. A renamed or
// dropped JSON tag (especially the loss-accounting trio retransmissions /
// dropped / clipped) fails here rather than silently changing the export
// schema downstream consumers parse.
func TestFinalMetricsFieldSet(t *testing.T) {
	data, err := json.Marshal(fullFinalMetrics())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"simulated_ms", "avg_tx_pct", "messages", "retransmissions",
		"dropped", "clipped", "bytes", "by_kind",
		"latency_mean_ms", "latency_max_ms", "latency_count", "nodes",
	}
	for _, k := range want {
		if _, ok := doc[k]; !ok {
			t.Errorf("FinalMetrics JSON is missing field %q", k)
		}
	}
	if len(doc) != len(want) {
		t.Errorf("FinalMetrics JSON has %d fields, want %d — update the pinned set: %v", len(doc), len(want), doc)
	}
}

// TestSampleCSVMatchesJSON: every scalar column in the series CSV header
// must be a JSON field of Sample (same name), so the two export formats
// cannot drift apart. Retransmissions, dropped and clipped must appear in
// both.
func TestSampleCSVMatchesJSON(t *testing.T) {
	s := &Series{IntervalMS: 1000, Samples: []Sample{{AtMS: 1000, Retransmissions: 1, Dropped: 2, Clipped: 3}}}
	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	header := strings.TrimSpace(strings.SplitN(csv.String(), "\n", 2)[0])
	cols := strings.Split(header, ",")

	data, err := json.Marshal(Sample{NodeTxMS: []float64{1}, NodeRxMS: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, c := range cols {
		if _, ok := doc[c]; !ok {
			t.Errorf("CSV column %q is not a JSON field of Sample", c)
		}
	}
	for _, c := range []string{"retransmissions", "dropped", "clipped"} {
		found := false
		for _, col := range cols {
			if col == c {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("series CSV header lacks loss column %q", c)
		}
	}
}

func TestSummarizeSpans(t *testing.T) {
	if got := SummarizeSpans(nil); got != nil {
		t.Fatalf("SummarizeSpans(nil) = %+v, want nil", got)
	}
	spans := []telemetry.QuerySpan{
		{QueryID: 1, AdmitAt: 0, FloodAt: 0, Flooded: true, Injected: 2,
			FirstAt: 30 * time.Second, HasResult: true},
		{QueryID: 2, AdmitAt: 10 * time.Second, Injected: 0,
			FirstAt: 20 * time.Second, HasResult: true},
		{QueryID: 3, AdmitAt: 15 * time.Second, Cancelled: true},
	}
	sm := SummarizeSpans(spans)
	if sm.Queries != 3 || sm.Flooded != 1 || sm.FirstResults != 2 || sm.Cancelled != 1 || sm.Injected != 2 {
		t.Fatalf("summary counts = %+v", sm)
	}
	// TTFRs are 30s and 10s → mean 20s, max 30s.
	if sm.TTFRMeanMS != 20000 || sm.TTFRMaxMS != 30000 {
		t.Fatalf("TTFR mean/max = %v/%v, want 20000/30000", sm.TTFRMeanMS, sm.TTFRMaxMS)
	}
	if sm.TTFRP50MS <= 0 || sm.TTFRP95MS < sm.TTFRP50MS {
		t.Fatalf("TTFR quantiles = p50 %v p95 %v", sm.TTFRP50MS, sm.TTFRP95MS)
	}
}

// TestRunExportSpansRoundTrip: the spans block survives the envelope.
func TestRunExportSpansRoundTrip(t *testing.T) {
	exp := RunExport{
		Manifest: NewManifest("unit").Hashed(),
		Metrics:  fullFinalMetrics(),
		Spans: &SpanSummary{Queries: 4, Flooded: 3, FirstResults: 4,
			Injected: 5, TTFRMeanMS: 1500, TTFRP50MS: 1400, TTFRP95MS: 2000, TTFRMaxMS: 2100},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, exp); err != nil {
		t.Fatal(err)
	}
	var got RunExport
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Spans, exp.Spans) {
		t.Fatalf("spans round trip:\n got %+v\nwant %+v", got.Spans, exp.Spans)
	}
	if !strings.Contains(buf.String(), `"ttfr_mean_ms"`) {
		t.Fatal("export JSON lacks ttfr_mean_ms")
	}
}
