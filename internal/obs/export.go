package obs

import (
	"encoding/json"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/tracing"
)

// Study is one named row set inside a sweep export — typically one figure or
// extension study of the paper's evaluation.
type Study struct {
	Name string `json:"name"`
	// Rows is the study's result slice ([]Fig3Row, []AblationRow, ...). It is
	// typed any so one envelope serves every study; decoding uses the
	// concrete row type of the named study.
	Rows any `json:"rows"`
}

// Export is the JSON envelope for experiment sweeps: a manifest plus the
// rows of every study that ran. It deliberately excludes wall-clock timing
// so the bytes are identical at any parallelism setting.
type Export struct {
	Manifest Manifest `json:"manifest"`
	Studies  []Study  `json:"studies"`
}

// NodeMetrics is one node's final accounting.
type NodeMetrics struct {
	ID      int     `json:"id"`
	TxMS    float64 `json:"tx_ms"`
	RxMS    float64 `json:"rx_ms"`
	Samples int     `json:"samples"`
	EnergyJ float64 `json:"energy_j"`
}

// FinalMetrics is the end-of-run accounting of one simulation, flattened
// for export.
type FinalMetrics struct {
	SimulatedMS     int64          `json:"simulated_ms"`
	AvgTxPct        float64        `json:"avg_tx_pct"`
	Messages        int            `json:"messages"`
	Retransmissions int            `json:"retransmissions"`
	Dropped         int            `json:"dropped"`
	Clipped         int            `json:"clipped"`
	Bytes           int64          `json:"bytes"`
	ByKind          map[string]int `json:"by_kind"`
	LatencyMeanMS   float64        `json:"latency_mean_ms"`
	LatencyMaxMS    float64        `json:"latency_max_ms"`
	LatencyCount    int            `json:"latency_count"`
	Nodes           []NodeMetrics  `json:"nodes"`
}

// OptimizerState is the tier-1 optimizer's exported state.
type OptimizerState struct {
	UserQueries      int `json:"user_queries"`
	SyntheticQueries int `json:"synthetic_queries"`
}

// GatewayMetrics is the serving tier's exported counter set (see
// internal/gateway): session registrations, admission-control rejections,
// the semantic-dedup outcome and the fan-out/backpressure accounting.
// Every field is deterministic under the gateway's group-commit ordering.
type GatewayMetrics struct {
	Sessions            int64 `json:"sessions"`
	ActiveSessions      int   `json:"active_sessions"`
	Subscribes          int64 `json:"subscribes"`
	Unsubscribes        int64 `json:"unsubscribes"`
	RateLimited         int64 `json:"rate_limited"`
	QuotaRejected       int64 `json:"quota_rejected"`
	AdmitErrors         int64 `json:"admit_errors"`
	DedupHits           int64 `json:"dedup_hits"`
	Admitted            int64 `json:"admitted"`
	Cancelled           int64 `json:"cancelled"`
	ActiveSubscriptions int   `json:"active_subscriptions"`
	SharedQueries       int   `json:"shared_queries"`
	Updates             int64 `json:"updates"`
	Epochs              int64 `json:"epochs"`
	Dropped             int64 `json:"dropped"`
	Evicted             int64 `json:"evicted"`
	// Overload-shedding and brownout accounting (see gateway.Stats).
	ShedQueue           int64 `json:"shed_queue"`
	ShedDeadline        int64 `json:"shed_deadline"`
	ShedSubs            int64 `json:"shed_subs"`
	ShedBrownout        int64 `json:"shed_brownout"`
	BrownoutLevel       int   `json:"brownout_level"`
	BrownoutEscalations int64 `json:"brownout_escalations"`
	BrownoutRecoveries  int64 `json:"brownout_recoveries"`
	// Crash-recovery and reconnection counters (see gateway.Stats).
	Detaches    int64 `json:"detaches"`
	Attaches    int64 `json:"attaches"`
	Resumes     int64 `json:"resumes"`
	ResumeGaps  int64 `json:"resume_gaps"`
	RingDropped int64 `json:"ring_dropped"`
	IdleReaped  int64 `json:"idle_reaped"`
	Recoveries  int64 `json:"recoveries"`
	// Write-ahead-log accounting (see gateway.Stats).
	WALAppends     int64 `json:"wal_appends"`
	WALCompactions int64 `json:"wal_compactions"`
	WALSizeBytes   int64 `json:"wal_size_bytes"`
	// DedupRatio is subscriptions per admitted network query (> 1 means
	// the serving tier shared work).
	DedupRatio float64 `json:"dedup_ratio"`
}

// SpanSummary aggregates the per-query lifecycle spans of one run: how
// many queries were admitted, how many needed an install flood (vs. being
// covered by already-shared queries), and the time-to-first-result
// distribution in virtual milliseconds. All values are deterministic.
type SpanSummary struct {
	Queries      int `json:"queries"`
	Flooded      int `json:"flooded"`
	FirstResults int `json:"first_results"`
	Cancelled    int `json:"cancelled"`
	// Injected is the total synthetic-query injections across all
	// admissions (the tier-1 rewrite fan-out).
	Injected   int     `json:"injected"`
	TTFRMeanMS float64 `json:"ttfr_mean_ms"`
	TTFRP50MS  float64 `json:"ttfr_p50_ms"`
	TTFRP95MS  float64 `json:"ttfr_p95_ms"`
	TTFRMaxMS  float64 `json:"ttfr_max_ms"`
}

// SummarizeSpans reduces a span snapshot to its export summary; nil when
// no queries were recorded (so the JSON field is omitted).
func SummarizeSpans(spans []telemetry.QuerySpan) *SpanSummary {
	if len(spans) == 0 {
		return nil
	}
	sm := &SpanSummary{Queries: len(spans)}
	var q stats.Quantiles
	var sum, max float64
	for _, s := range spans {
		if s.Flooded {
			sm.Flooded++
		}
		if s.Cancelled {
			sm.Cancelled++
		}
		sm.Injected += s.Injected
		if ttfr, ok := s.TTFR(); ok {
			sm.FirstResults++
			ms := float64(ttfr) / float64(time.Millisecond)
			q.Add(ms)
			sum += ms
			if ms > max {
				max = ms
			}
		}
	}
	if sm.FirstResults > 0 {
		sm.TTFRMeanMS = sum / float64(sm.FirstResults)
		sm.TTFRP50MS = q.P50()
		sm.TTFRP95MS = q.P95()
		sm.TTFRMaxMS = max
	}
	return sm
}

// RunExport is the JSON envelope for a single simulation run: manifest,
// final metrics, optional optimizer state, optional gateway counters and
// optional time series.
type RunExport struct {
	Manifest  Manifest        `json:"manifest"`
	Metrics   FinalMetrics    `json:"metrics"`
	Optimizer *OptimizerState `json:"optimizer,omitempty"`
	Gateway   *GatewayMetrics `json:"gateway,omitempty"`
	Spans     *SpanSummary    `json:"spans,omitempty"`
	Series    *Series         `json:"series,omitempty"`
	// Traces is the causal-trace export collected from the serving
	// tiers' flight recorders (internal/tracing); chaos drills and the
	// serve bench assert on causal paths through it. Deterministic:
	// byte-identical at any parallelism for the same seed and command
	// sequence.
	Traces *tracing.Export `json:"traces,omitempty"`
}

// CollectFinal flattens a metrics collector into the export form. simTime is
// the elapsed virtual time; the energy model prices each node's activity.
func CollectFinal(c *metrics.Collector, simTime time.Duration, em metrics.EnergyModel) FinalMetrics {
	fm := FinalMetrics{
		SimulatedMS:     simTime.Milliseconds(),
		AvgTxPct:        c.AvgTransmissionTime(simTime) * 100,
		Messages:        c.Messages(),
		Retransmissions: c.Retransmissions(),
		Dropped:         c.Dropped(),
		Clipped:         c.Clipped(),
		Bytes:           c.Bytes(),
		ByKind:          make(map[string]int),
	}
	for _, k := range c.Kinds() {
		fm.ByKind[k] = c.MessagesOf(k)
	}
	if lat := c.Latency(); lat.N() > 0 {
		fm.LatencyMeanMS = lat.Mean() * 1000
		fm.LatencyMaxMS = lat.Max() * 1000
		fm.LatencyCount = lat.N()
	}
	for id := 0; id < c.Nodes(); id++ {
		nid := topology.NodeID(id)
		fm.Nodes = append(fm.Nodes, NodeMetrics{
			ID:      id,
			TxMS:    float64(c.TxTime(nid)) / float64(time.Millisecond),
			RxMS:    float64(c.RxTime(nid)) / float64(time.Millisecond),
			Samples: c.Samples(nid),
			EnergyJ: c.NodeEnergy(nid, em),
		})
	}
	return fm
}

func marshalIndent(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
