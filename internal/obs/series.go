package obs

import (
	"fmt"
	"io"
	"time"
)

// Sample is one snapshot of a running simulation, taken by the discrete-event
// engine at a fixed virtual-time interval. All cumulative quantities count
// from the start of the run.
type Sample struct {
	// AtMS is the virtual timestamp of the snapshot, in milliseconds.
	AtMS int64 `json:"at_ms"`
	// Messages, Retransmissions, Dropped and Bytes are the radio totals so
	// far (Messages includes retries).
	Messages        int   `json:"messages"`
	Retransmissions int   `json:"retransmissions"`
	Dropped         int   `json:"dropped"`
	Bytes           int64 `json:"bytes"`
	// TxTotalMS / RxTotalMS sum radio-busy time over all nodes; TxMaxMS is
	// the busiest node's transmit time (the lifetime-limiting node).
	TxTotalMS float64 `json:"tx_total_ms"`
	RxTotalMS float64 `json:"rx_total_ms"`
	TxMaxMS   float64 `json:"tx_max_ms"`
	// NodeTxMS / NodeRxMS are the per-node radio-busy trajectories, indexed
	// by NodeID (index 0 is the base station).
	NodeTxMS []float64 `json:"node_tx_ms,omitempty"`
	NodeRxMS []float64 `json:"node_rx_ms,omitempty"`
	// UserQueries and SyntheticQueries mirror the tier-1 optimizer state
	// (without tier 1, SyntheticQueries is 0 and UserQueries counts the live
	// identity-mapped queries). InstalledQueries counts network queries the
	// base station is collecting results for.
	UserQueries      int `json:"user_queries"`
	SyntheticQueries int `json:"synthetic_queries"`
	InstalledQueries int `json:"installed_queries"`
	// QueueDepth and EventsFired expose the discrete-event engine: pending
	// events and cumulative callbacks executed.
	QueueDepth  int    `json:"queue_depth"`
	EventsFired uint64 `json:"events_fired"`
	// RowEpochs / AggEpochs count delivered result epochs; RowsDelivered
	// counts individual acquisition rows.
	RowEpochs     int `json:"row_epochs"`
	AggEpochs     int `json:"agg_epochs"`
	RowsDelivered int `json:"rows_delivered"`
	// Completeness is RowsDelivered divided by full sensor coverage of every
	// delivered acquisition epoch (rows per epoch × sensor count), in [0, 1].
	// It is a coverage proxy: selection predicates legitimately lower it, so
	// its *trajectory* (sudden drops under failures) is the signal, not its
	// absolute level. 1.0 when no acquisition epochs have been delivered.
	Completeness float64 `json:"completeness"`
	// Clipped counts metric updates addressed to out-of-range node IDs (lost
	// accounting; see metrics.Collector).
	Clipped int `json:"clipped"`
}

// Series is the time-ordered sample log of one run.
type Series struct {
	// IntervalMS is the sampling period, in milliseconds of virtual time.
	IntervalMS int64    `json:"interval_ms"`
	Samples    []Sample `json:"samples"`
}

// NewSeries returns an empty series with the given sampling interval.
func NewSeries(every time.Duration) *Series {
	return &Series{IntervalMS: every.Milliseconds()}
}

// Append records one snapshot.
func (s *Series) Append(smp Sample) { s.Samples = append(s.Samples, smp) }

// Len returns the number of samples recorded.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Samples)
}

// csvHeader is the aggregate time-series column set, one sample per row.
const csvHeader = "at_ms,messages,retransmissions,dropped,bytes," +
	"tx_total_ms,rx_total_ms,tx_max_ms," +
	"user_queries,synthetic_queries,installed_queries," +
	"queue_depth,events_fired,row_epochs,agg_epochs,rows_delivered," +
	"completeness,clipped"

// WriteCSV renders the series as one aggregate row per sample (per-node
// trajectories are in WriteNodeCSV and the JSON form).
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, p := range s.Samples {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%d\n",
			p.AtMS, p.Messages, p.Retransmissions, p.Dropped, p.Bytes,
			p.TxTotalMS, p.RxTotalMS, p.TxMaxMS,
			p.UserQueries, p.SyntheticQueries, p.InstalledQueries,
			p.QueueDepth, p.EventsFired, p.RowEpochs, p.AggEpochs, p.RowsDelivered,
			p.Completeness, p.Clipped); err != nil {
			return err
		}
	}
	return nil
}

// WriteNodeCSV renders the per-node trajectories in long form
// (at_ms,node,tx_ms,rx_ms), ready for group-by-node plotting.
func (s *Series) WriteNodeCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at_ms,node,tx_ms,rx_ms"); err != nil {
		return err
	}
	for _, p := range s.Samples {
		for id := range p.NodeTxMS {
			var rx float64
			if id < len(p.NodeRxMS) {
				rx = p.NodeRxMS[id]
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%.3f\n",
				p.AtMS, id, p.NodeTxMS[id], rx); err != nil {
				return err
			}
		}
	}
	return nil
}
