package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestManifestHash(t *testing.T) {
	m := NewManifest("figure 3")
	m.Seed = 1
	m.DurationMS = 600_000
	h1 := m.Hashed()
	if h1.ConfigHash == "" || len(h1.ConfigHash) != 16 {
		t.Fatalf("hash = %q", h1.ConfigHash)
	}
	if h2 := m.Hashed(); h2 != h1 {
		t.Fatal("hashing is not deterministic")
	}
	m.Seed = 2
	if m.Hashed().ConfigHash == h1.ConfigHash {
		t.Fatal("different configs must hash differently")
	}
	// The hash field itself does not feed the hash: re-hashing a hashed
	// manifest is stable.
	if h1.Hashed() != h1 {
		t.Fatal("re-hashing changed the manifest")
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	m := NewManifest("scaling")
	m.Scheme = "ttmqo"
	m.Seed = 7
	m.Nodes = 64
	m.Workload = "C"
	m.Alpha = 0.6
	m.DurationMS = 120_000
	m.Runs = 3
	m = m.Hashed()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Fatal("JSON export must end with a newline")
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip changed manifest:\n  out: %+v\n  back: %+v", m, back)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	v := Export{
		Manifest: NewManifest("x").Hashed(),
		Studies: []Study{{Name: "s", Rows: []map[string]int{
			{"b": 2, "a": 1, "c": 3}, // map keys must serialize sorted
		}}},
	}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, v); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical values must export identical bytes")
	}
	if !strings.Contains(a.String(), `"a": 1,`) {
		t.Fatalf("map keys not sorted: %s", a.String())
	}
}

func TestSeriesCSVShape(t *testing.T) {
	s := NewSeries(30 * time.Second)
	if s.IntervalMS != 30_000 {
		t.Fatalf("interval = %d", s.IntervalMS)
	}
	s.Append(Sample{AtMS: 0, Completeness: 1})
	s.Append(Sample{
		AtMS: 30_000, Messages: 10, Retransmissions: 1, Dropped: 0, Bytes: 420,
		TxTotalMS: 12.5, RxTotalMS: 80.25, TxMaxMS: 3.125,
		NodeTxMS: []float64{0, 6.25, 6.25}, NodeRxMS: []float64{5, 37.625, 37.625},
		UserQueries: 2, SyntheticQueries: 1, InstalledQueries: 1,
		QueueDepth: 4, EventsFired: 99, RowEpochs: 3, AggEpochs: 1,
		RowsDelivered: 6, Completeness: 1, Clipped: 0,
	})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != len(header) {
			t.Fatalf("row width %d != header width %d: %q", got, len(header), row)
		}
	}
	if header[0] != "at_ms" || header[len(header)-1] != "clipped" {
		t.Fatalf("header = %v", header)
	}
	if !strings.HasPrefix(lines[2], "30000,10,1,0,420,12.500,80.250,3.125,2,1,1,4,99,3,1,6,1.000000,0") {
		t.Fatalf("row = %q", lines[2])
	}

	var nodeBuf bytes.Buffer
	if err := s.WriteNodeCSV(&nodeBuf); err != nil {
		t.Fatal(err)
	}
	nodeLines := strings.Split(strings.TrimRight(nodeBuf.String(), "\n"), "\n")
	// Header + 3 nodes for the second sample (first sample has no nodes).
	if len(nodeLines) != 4 {
		t.Fatalf("node lines = %d: %q", len(nodeLines), nodeBuf.String())
	}
	if nodeLines[0] != "at_ms,node,tx_ms,rx_ms" {
		t.Fatalf("node header = %q", nodeLines[0])
	}
	if nodeLines[2] != "30000,1,6.250,37.625" {
		t.Fatalf("node row = %q", nodeLines[2])
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := NewSeries(10 * time.Second)
	s.Append(Sample{AtMS: 0, Completeness: 1})
	s.Append(Sample{AtMS: 10_000, Messages: 5, NodeTxMS: []float64{0, 1.5}, Completeness: 0.875})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var back Series
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, s) {
		t.Fatalf("round trip changed series:\n  out: %+v\n  back: %+v", s, back)
	}
}

func TestCollectFinal(t *testing.T) {
	c := metrics.NewCollector(3)
	c.AddTxTime(1, 500*time.Millisecond)
	c.AddRxTime(2, time.Second)
	c.CountSamples(1, 4)
	c.CountMessage("result", 1, 30)
	c.CountMessage("query", 0, 20)
	c.CountRetransmission()
	c.AddLatency(250 * time.Millisecond)
	c.AddTxTime(99, time.Second) // clipped

	fm := CollectFinal(c, time.Minute, metrics.DefaultEnergyModel())
	if fm.SimulatedMS != 60_000 || fm.Messages != 2 || fm.Retransmissions != 1 {
		t.Fatalf("basic fields wrong: %+v", fm)
	}
	if fm.Clipped != 1 {
		t.Fatalf("clipped = %d", fm.Clipped)
	}
	if fm.ByKind["result"] != 1 || fm.ByKind["query"] != 1 {
		t.Fatalf("by kind = %v", fm.ByKind)
	}
	if fm.LatencyCount != 1 || fm.LatencyMeanMS != 250 {
		t.Fatalf("latency = %+v", fm)
	}
	if len(fm.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(fm.Nodes))
	}
	if fm.Nodes[1].TxMS != 500 || fm.Nodes[1].Samples != 4 || fm.Nodes[1].EnergyJ == 0 {
		t.Fatalf("node 1 = %+v", fm.Nodes[1])
	}
	if fm.Nodes[2].RxMS != 1000 {
		t.Fatalf("node 2 = %+v", fm.Nodes[2])
	}
	// JSON round trip of the full run envelope.
	re := RunExport{
		Manifest:  NewManifest("").Hashed(),
		Metrics:   fm,
		Optimizer: &OptimizerState{UserQueries: 2, SyntheticQueries: 1},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, re); err != nil {
		t.Fatal(err)
	}
	var back RunExport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, re) {
		t.Fatalf("run export round trip changed:\n  out: %+v\n  back: %+v", re, back)
	}
}
