package sim

import "math/rand"

// Rand is the deterministic random source threaded through every stochastic
// component of the simulator (collision draws, backoff jitter, workload
// generation). It wraps math/rand with an explicit seed so that a simulation
// is a pure function of its configuration.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream labelled by id. Components each fork
// their own stream so that adding a random draw in one component does not
// perturb the others.
func (r *Rand) Fork(id int64) *Rand {
	return NewRand(r.r.Int63() ^ (id * 0x5851F42D4C957F2D))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Int63n returns a uniform value in [0, n).
func (r *Rand) Int63n(n int64) int64 { return r.r.Int63n(n) }

// NormFloat64 returns a standard normal deviate.
func (r *Rand) NormFloat64() float64 { return r.r.NormFloat64() }

// ExpFloat64 returns an exponential deviate with rate 1.
func (r *Rand) ExpFloat64() float64 { return r.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Shuffle pseudo-randomises the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.r.Shuffle(n, swap) }
