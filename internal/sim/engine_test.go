package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("event order broken: got %v", got)
		}
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms", e.Now())
	}
}

func TestEngineTimeOrdering(t *testing.T) {
	e := NewEngine()
	var got []Time
	times := []Time{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	for _, at := range times {
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	want := []Time{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i)*time.Second, func() { fired++ })
	}
	e.Run(3 * time.Second)
	if fired != 3 {
		t.Fatalf("fired = %d, want 3 (events at exactly until must fire)", fired)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
	e.Run(10 * time.Second)
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	// Clock advances to until even with an empty queue.
	if e.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want 10s", e.Now())
	}
}

func TestEngineAfterRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(time.Second, func() {
		e.After(500*time.Millisecond, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 1500*time.Millisecond {
		t.Fatalf("After fired at %v, want 1.5s", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.Schedule(time.Second, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending")
	}
	if !h.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if h.Cancel() {
		t.Fatal("second cancel should fail")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if h.Pending() {
		t.Fatal("cancelled handle reports pending")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(time.Second, func() {})
	e.RunAll()
	if h.Cancel() {
		t.Fatal("cancelling a fired event must report false")
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*time.Second, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	e.Schedule(time.Second, func() {})
}

func TestEngineScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling nil func must panic")
		}
	}()
	e.Schedule(time.Second, nil)
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(time.Second, func() { fired++; e.Halt() })
	e.Schedule(2*time.Second, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after Halt", fired)
	}
	// A subsequent Run resumes.
	e.Run(3 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after resume", fired)
	}
}

func TestEngineLenAndFired(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	h.Cancel()
	if e.Len() != 1 {
		t.Fatalf("Len = %d after cancel, want 1", e.Len())
	}
	e.RunAll()
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired())
	}
}

func TestEngineRecursiveScheduling(t *testing.T) {
	// An event chain where each event schedules the next must run in order
	// and terminate.
	e := NewEngine()
	const n = 1000
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < n {
			e.After(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
	if e.Now() != Time(n-1)*time.Millisecond {
		t.Fatalf("clock = %v, want %v", e.Now(), Time(n-1)*time.Millisecond)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the engine executes exactly one event per scheduled (non-cancelled)
// entry.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fireTimes []Time
		for _, d := range delays {
			e.Schedule(Time(d)*time.Millisecond, func() {
				fireTimes = append(fireTimes, e.Now())
			})
		}
		e.RunAll()
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRandForkIndependence(t *testing.T) {
	// Forked streams must be stable regardless of how much the sibling
	// stream is consumed after forking.
	base1 := NewRand(7)
	f1 := base1.Fork(1)
	v1 := f1.Float64()

	base2 := NewRand(7)
	f2 := base2.Fork(1)
	base2.Float64() // consuming the parent later must not affect the fork
	v2 := f2.Float64()

	if v1 != v2 {
		t.Fatal("fork streams must be independent of later parent usage")
	}

	// Distinct ids should give distinct streams.
	base3 := NewRand(7)
	g1 := base3.Fork(1)
	g2 := base3.Fork(2)
	diff := false
	for i := 0; i < 16; i++ {
		if g1.Float64() != g2.Float64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("forks with different ids should differ")
	}
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(time.Second, func() {
		e.After(-5*time.Second, func() { fired = true })
	})
	e.RunAll()
	if !fired {
		t.Fatal("negative After must clamp to now and still fire")
	}
	if e.Now() != time.Second {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestRunSkipsCancelledHead(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(time.Second, func() { t.Fatal("cancelled event fired") })
	fired := false
	e.Schedule(2*time.Second, func() { fired = true })
	h.Cancel()
	e.Run(90 * time.Second)
	if !fired {
		t.Fatal("later event must fire after skipping the cancelled head")
	}
}

func TestRandCoversDistributions(t *testing.T) {
	r := NewRand(5)
	if v := r.Intn(10); v < 0 || v >= 10 {
		t.Fatalf("Intn = %d", v)
	}
	if v := r.Int63n(100); v < 0 || v >= 100 {
		t.Fatalf("Int63n = %d", v)
	}
	_ = r.NormFloat64()
	if v := r.ExpFloat64(); v < 0 {
		t.Fatalf("ExpFloat64 = %f", v)
	}
	perm := r.Perm(5)
	seen := map[int]bool{}
	for _, v := range perm {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Perm = %v", perm)
	}
	vals := []int{1, 2, 3, 4}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("Shuffle lost elements: %v", vals)
	}
}

// TestEngineLenCounterInvariant cross-checks the O(1) pending counter
// against a brute-force scan through a randomized schedule/cancel/fire mix.
func TestEngineLenCounterInvariant(t *testing.T) {
	e := NewEngine()
	rng := NewRand(7)
	scan := func() int {
		n := 0
		for _, ev := range e.queue {
			if !ev.cancelled {
				n++
			}
		}
		return n
	}
	var handles []Handle
	for step := 0; step < 500; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			handles = append(handles, e.After(time.Duration(rng.Intn(1000))*time.Millisecond, func() {}))
		case 2:
			if len(handles) > 0 {
				h := handles[rng.Intn(len(handles))]
				h.Cancel()
				h.Cancel() // double-cancel must not double-decrement
			}
		case 3:
			e.Step()
		}
		if got, want := e.Len(), scan(); got != want {
			t.Fatalf("step %d: Len() = %d, scan = %d", step, got, want)
		}
	}
	e.RunAll()
	if e.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", e.Len())
	}
}
