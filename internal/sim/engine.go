// Package sim provides the discrete-event simulation engine that underpins
// the packet-level sensor-network simulator.
//
// The engine keeps a virtual clock and an ordered heap of scheduled events.
// Events scheduled for the same instant fire in scheduling order, which —
// together with explicitly seeded randomness (see Rand) — makes every
// simulation in this repository fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp, expressed as the duration elapsed since the
// start of the simulation. Using time.Duration keeps all arithmetic in the
// standard time units without tying the simulation to the wall clock.
type Time = time.Duration

// Event is a scheduled callback. The zero value is invalid; events are
// created through Engine.Schedule and Engine.After.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
	// index is maintained by the heap implementation; -1 once popped.
	index int
	// cancelled events stay in the heap but are skipped when popped.
	cancelled bool
}

// Handle identifies a scheduled event so that it can be cancelled.
type Handle struct {
	ev *event
	e  *Engine
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.cancelled || h.ev.index < 0 {
		return false
	}
	h.ev.cancelled = true
	h.e.pending--
	return true
}

// Pending reports whether the event is still waiting to fire.
func (h Handle) Pending() bool {
	return h.ev != nil && !h.ev.cancelled && h.ev.index >= 0
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all interaction with a running simulation happens from
// within event callbacks, which the engine serialises.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	pending int // non-cancelled events in the queue, kept in O(1)
	halted  bool
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-cancelled) events. The count is
// maintained incrementally on Schedule/Cancel/Step, so Len is O(1) even
// with a large queue.
func (e *Engine) Len() int { return e.pending }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule enqueues fn to run at the absolute virtual time at. Scheduling in
// the past (at < Now) is a programming error and panics: allowing it would
// silently reorder causality.
func (e *Engine) Schedule(at Time, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.pending++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev, e: e}
}

// After enqueues fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.pending--
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the next event lies
// strictly beyond until. The clock is left at min(until, last event time);
// events at exactly until do fire.
func (e *Engine) Run(until Time) {
	e.halted = false
	for !e.halted && e.queue.Len() > 0 {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue drains. Intended for tests; a
// simulation with periodic maintenance never drains, so prefer Run.
func (e *Engine) RunAll() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// Halt stops Run/RunAll after the current event returns. Useful for
// terminating a simulation early from inside a callback.
func (e *Engine) Halt() { e.halted = true }

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
