package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Stddev() != 0 || s.N() != 0 {
		t.Fatal("empty series must be zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%f", s.N(), s.Mean())
	}
	// Sample stddev of the classic example: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev = %f, want %f", s.Stddev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSeriesSinglePoint(t *testing.T) {
	var s Series
	s.Add(42)
	if s.Mean() != 42 || s.Stddev() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("%+v", s)
	}
}

// Property: Welford matches the naive two-pass computation.
func TestSeriesMatchesNaive(t *testing.T) {
	f := func(vs []float64) bool {
		clean := make([]float64, 0, len(vs))
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			clean = append(clean, v)
		}
		if len(clean) < 2 {
			return true
		}
		var s Series
		var sum float64
		for _, v := range clean {
			s.Add(v)
			sum += v
		}
		mean := sum / float64(len(clean))
		var m2 float64
		for _, v := range clean {
			m2 += (v - mean) * (v - mean)
		}
		naiveVar := m2 / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(s.Mean()-mean) < 1e-6*math.Max(1, math.Abs(mean)) &&
			math.Abs(s.Var()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	var q Quantiles
	if q.N() != 0 || q.P50() != 0 || q.Quantile(0.99) != 0 {
		t.Fatalf("empty collection not zero-valued")
	}
}

func TestQuantilesSingle(t *testing.T) {
	var q Quantiles
	q.Add(7)
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if got := q.Quantile(p); got != 7 {
			t.Errorf("Quantile(%v) = %v, want 7", p, got)
		}
	}
}

func TestQuantilesInterpolation(t *testing.T) {
	var q Quantiles
	// Insert 1..100 out of order; quantiles must sort internally.
	for i := 100; i >= 1; i-- {
		q.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1},
		{0.5, 50.5},
		{0.95, 95.05},
		{0.99, 99.01},
		{1, 100},
	}
	for _, tc := range cases {
		if got := q.Quantile(tc.p); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// TestQuantilesDuplicates: ties must not confuse rank interpolation — every
// quantile of a constant collection is that constant, and a bimodal tie
// interpolates between the two values only in the crossover band.
func TestQuantilesDuplicates(t *testing.T) {
	var q Quantiles
	for i := 0; i < 10; i++ {
		q.Add(5)
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got := q.Quantile(p); got != 5 {
			t.Errorf("constant collection: Quantile(%v) = %v, want 5", p, got)
		}
	}
	var b Quantiles
	for i := 0; i < 5; i++ {
		b.Add(1)
		b.Add(2)
	}
	if got := b.Quantile(0); got != 1 {
		t.Errorf("bimodal min = %v, want 1", got)
	}
	if got := b.Quantile(1); got != 2 {
		t.Errorf("bimodal max = %v, want 2", got)
	}
	if got := b.P50(); got < 1 || got > 2 {
		t.Errorf("bimodal p50 = %v, want within [1, 2]", got)
	}
}

// TestQuantilesMergeEmpty: merging an empty collection is a no-op in either
// direction, and the merged-into empty collection adopts the donor's data.
func TestQuantilesMergeEmpty(t *testing.T) {
	var full, empty Quantiles
	for i := 1; i <= 4; i++ {
		full.Add(float64(i))
	}
	p50 := full.P50()
	full.Merge(&empty)
	if full.N() != 4 || full.P50() != p50 {
		t.Fatalf("merge of empty changed the collection: n=%d p50=%v", full.N(), full.P50())
	}
	empty.Merge(&full)
	if empty.N() != 4 || empty.P50() != p50 {
		t.Fatalf("empty.Merge(full): n=%d p50=%v, want 4/%v", empty.N(), empty.P50(), p50)
	}
	var a, b Quantiles
	a.Merge(&b)
	if a.N() != 0 || a.P50() != 0 {
		t.Fatalf("empty.Merge(empty) not zero-valued: n=%d", a.N())
	}
}

// TestQuantilesAddAfterQuery: Add and Merge must invalidate the sorted
// order established by a previous quantile query.
func TestQuantilesAddAfterQuery(t *testing.T) {
	var q Quantiles
	q.Add(10)
	q.Add(20)
	if got := q.Quantile(1); got != 20 {
		t.Fatalf("max = %v, want 20", got)
	}
	q.Add(5) // smaller than everything seen; must re-sort on next query
	if got := q.Quantile(0); got != 5 {
		t.Fatalf("min after late Add = %v, want 5", got)
	}
	var donor Quantiles
	donor.Add(1)
	q.Merge(&donor)
	if got := q.Quantile(0); got != 1 {
		t.Fatalf("min after Merge = %v, want 1", got)
	}
}

func TestQuantilesMerge(t *testing.T) {
	var a, b, all Quantiles
	for i := 1; i <= 50; i++ {
		a.Add(float64(i))
		all.Add(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Add(float64(i))
		all.Add(float64(i))
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(p) != all.Quantile(p) {
			t.Errorf("merged Quantile(%v) = %v, want %v", p, a.Quantile(p), all.Quantile(p))
		}
	}
}
