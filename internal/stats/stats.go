// Package stats provides the small summary-statistics toolkit the
// experiment harnesses use to report multi-seed results honestly: running
// mean and standard deviation (Welford's algorithm) and min/max. The
// parallel sweep executor lives in package runner.
package stats

import (
	"fmt"
	"math"
)

// Series accumulates scalar observations with Welford's online algorithm —
// numerically stable, single pass, O(1) memory.
type Series struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (s *Series) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		s.min = math.Min(s.min, v)
		s.max = math.Max(s.max, v)
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the observation count.
func (s *Series) N() int { return s.n }

// Mean returns the sample mean (0 for an empty series).
func (s *Series) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 points).
func (s *Series) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Series) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extremes (0 for an empty series).
func (s *Series) Min() float64 {
	return s.min
}

// Max returns the largest observation.
func (s *Series) Max() float64 {
	return s.max
}

// String renders "mean ± stddev (n=N)".
func (s *Series) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.Stddev(), s.n)
}
