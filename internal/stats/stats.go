// Package stats provides the small summary-statistics toolkit the
// experiment harnesses use to report multi-seed results honestly: running
// mean and standard deviation (Welford's algorithm) and min/max. The
// parallel sweep executor lives in package runner.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Series accumulates scalar observations with Welford's online algorithm —
// numerically stable, single pass, O(1) memory.
type Series struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (s *Series) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		s.min = math.Min(s.min, v)
		s.max = math.Max(s.max, v)
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the observation count.
func (s *Series) N() int { return s.n }

// Mean returns the sample mean (0 for an empty series).
func (s *Series) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 points).
func (s *Series) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Series) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extremes (0 for an empty series).
func (s *Series) Min() float64 {
	return s.min
}

// Max returns the largest observation.
func (s *Series) Max() float64 {
	return s.max
}

// String renders "mean ± stddev (n=N)".
func (s *Series) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.Stddev(), s.n)
}

// Quantiles accumulates observations for exact quantile queries — the
// latency-percentile companion to Series. It retains every observation
// (O(n) memory), which suits the load generator's bounded sample sizes;
// switch to a sketch if a use case ever outgrows it.
type Quantiles struct {
	xs     []float64
	sorted bool
}

// Add folds one observation in.
func (q *Quantiles) Add(v float64) {
	q.xs = append(q.xs, v)
	q.sorted = false
}

// Merge folds another collection's observations in.
func (q *Quantiles) Merge(o *Quantiles) {
	q.xs = append(q.xs, o.xs...)
	q.sorted = false
}

// N returns the observation count.
func (q *Quantiles) N() int { return len(q.xs) }

// Quantile returns the p-quantile (0 ≤ p ≤ 1) by linear interpolation
// between closest ranks; 0 for an empty collection.
func (q *Quantiles) Quantile(p float64) float64 {
	if len(q.xs) == 0 {
		return 0
	}
	if !q.sorted {
		sort.Float64s(q.xs)
		q.sorted = true
	}
	if p <= 0 {
		return q.xs[0]
	}
	if p >= 1 {
		return q.xs[len(q.xs)-1]
	}
	rank := p * float64(len(q.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return q.xs[lo]
	}
	frac := rank - float64(lo)
	return q.xs[lo]*(1-frac) + q.xs[hi]*frac
}

// P50, P95 and P99 are the conventional latency percentiles.
func (q *Quantiles) P50() float64 { return q.Quantile(0.50) }

// P95 returns the 95th percentile.
func (q *Quantiles) P95() float64 { return q.Quantile(0.95) }

// P99 returns the 99th percentile.
func (q *Quantiles) P99() float64 { return q.Quantile(0.99) }
