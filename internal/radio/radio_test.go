package radio

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
)

// chain builds BS—1—2 with 40ft spacing and 50ft range: 0↔1 and 1↔2 are
// neighbors; 0 and 2 are not.
func chain(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.New([]topology.Point{{X: 0}, {X: 40}, {X: 80}}, 50)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

type harness struct {
	engine *sim.Engine
	topo   *topology.Topology
	coll   *metrics.Collector
	medium *Medium
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	topo := chain(t)
	engine := sim.NewEngine()
	coll := metrics.NewCollector(topo.Size())
	med := New(engine, topo, coll, sim.NewRand(1), cfg)
	return &harness{engine: engine, topo: topo, coll: coll, medium: med}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	h := newHarness(t, Config{})
	var got []Delivery
	for i := 0; i < 3; i++ {
		id := topology.NodeID(i)
		h.medium.SetHandler(id, func(d Delivery) { got = append(got, d) })
	}
	h.medium.Send(&Message{Kind: KindBeacon, Src: 1, Bytes: 10})
	h.engine.RunAll()
	if len(got) != 2 {
		t.Fatalf("deliveries = %d, want 2 (both neighbors of node 1)", len(got))
	}
	for _, d := range got {
		if !d.Addressed {
			t.Fatal("broadcast is addressed to everyone")
		}
		if d.Msg.Src != 1 {
			t.Fatal("wrong source")
		}
	}
}

func TestUnicastOverheard(t *testing.T) {
	h := newHarness(t, Config{})
	var at0, at2 *Delivery
	h.medium.SetHandler(0, func(d Delivery) { at0 = &d })
	h.medium.SetHandler(2, func(d Delivery) { at2 = &d })
	h.medium.Send(&Message{Kind: KindResult, Src: 1, Dests: []topology.NodeID{0}, Bytes: 10})
	h.engine.RunAll()
	if at0 == nil || !at0.Addressed {
		t.Fatal("addressed receiver must get an addressed delivery")
	}
	if at2 == nil || at2.Addressed {
		t.Fatal("neighbor must overhear the unicast (broadcast nature of the channel)")
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	h := newHarness(t, Config{})
	heard := false
	h.medium.SetHandler(2, func(Delivery) { heard = true })
	h.medium.Send(&Message{Kind: KindBeacon, Src: 0, Bytes: 10})
	h.engine.RunAll()
	if heard {
		t.Fatal("node 2 is out of range of node 0")
	}
}

func TestAirtimeAccrual(t *testing.T) {
	h := newHarness(t, Config{Cstart: 2 * time.Millisecond, Ctrans: 100 * time.Microsecond})
	h.medium.Send(&Message{Kind: KindResult, Src: 1, Bytes: 30})
	h.engine.RunAll()
	want := 2*time.Millisecond + 30*100*time.Microsecond
	if got := h.coll.TxTime(1); got != want {
		t.Fatalf("tx time = %v, want %v", got, want)
	}
	if h.coll.Messages() != 1 || h.coll.MessagesOf("result") != 1 {
		t.Fatalf("counts: %s", h.coll)
	}
}

func TestSenderSerialization(t *testing.T) {
	// Two back-to-back sends from one node must not overlap: second delivery
	// lands at 2× airtime.
	h := newHarness(t, Config{Cstart: time.Millisecond, Ctrans: 0})
	var deliveredAt []sim.Time
	h.medium.SetHandler(0, func(Delivery) { deliveredAt = append(deliveredAt, h.engine.Now()) })
	h.medium.Send(&Message{Kind: KindResult, Src: 1, Dests: []topology.NodeID{0}, Bytes: 10})
	h.medium.Send(&Message{Kind: KindResult, Src: 1, Dests: []topology.NodeID{0}, Bytes: 10})
	h.engine.RunAll()
	if len(deliveredAt) != 2 {
		t.Fatalf("deliveries = %d", len(deliveredAt))
	}
	air := h.medium.Airtime(10)
	if deliveredAt[0] != sim.Time(air) || deliveredAt[1] != sim.Time(2*air) {
		t.Fatalf("delivery times = %v, want %v and %v", deliveredAt, air, 2*air)
	}
}

func TestSleepingNodeHearsNothing(t *testing.T) {
	h := newHarness(t, Config{})
	heard := 0
	h.medium.SetHandler(0, func(Delivery) { heard++ })
	h.medium.SetHandler(0, nil) // sleep
	h.medium.Send(&Message{Kind: KindBeacon, Src: 1, Bytes: 5})
	h.engine.RunAll()
	if heard != 0 {
		t.Fatal("detached node must not receive")
	}
}

func TestCollisionsCauseRetransmissions(t *testing.T) {
	// Force heavy contention: many simultaneous senders in range, high
	// collision factor.
	topo, err := topology.PaperGrid(4)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	coll := metrics.NewCollector(topo.Size())
	med := New(engine, topo, coll, sim.NewRand(7), Config{CollisionFactor: 0.5})
	for i := 0; i < topo.Size(); i++ {
		med.SetHandler(topology.NodeID(i), func(Delivery) {})
	}
	for i := 1; i < topo.Size(); i++ {
		med.Send(&Message{Kind: KindResult, Src: topology.NodeID(i), Bytes: 20})
	}
	engine.RunAll()
	if coll.Retransmissions() == 0 {
		t.Fatal("heavy contention must cause retransmissions")
	}
	// Reliability: despite collisions, the final retry always succeeds, so
	// nothing is dropped.
	if coll.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0 (lossless assumption)", coll.Dropped())
	}
	// Retransmissions cost airtime: total messages > initial sends.
	if coll.Messages() <= topo.Size()-1 {
		t.Fatal("retries must be counted as messages")
	}
}

func TestNoCollisionsWhenFactorZero(t *testing.T) {
	h := newHarness(t, Config{})
	for i := 0; i < 3; i++ {
		h.medium.SetHandler(topology.NodeID(i), func(Delivery) {})
	}
	for i := 0; i < 3; i++ {
		h.medium.Send(&Message{Kind: KindResult, Src: topology.NodeID(i), Bytes: 20})
	}
	h.engine.RunAll()
	if h.coll.Retransmissions() != 0 {
		t.Fatal("collision factor 0 must disable collisions")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, time.Duration) {
		topo, _ := topology.PaperGrid(4)
		engine := sim.NewEngine()
		coll := metrics.NewCollector(topo.Size())
		med := New(engine, topo, coll, sim.NewRand(42), Config{CollisionFactor: 0.3})
		for i := 0; i < topo.Size(); i++ {
			med.SetHandler(topology.NodeID(i), func(Delivery) {})
		}
		for i := 1; i < topo.Size(); i++ {
			med.Send(&Message{Kind: KindResult, Src: topology.NodeID(i), Bytes: 25})
		}
		engine.RunAll()
		return coll.Messages(), coll.TotalTxTime()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 || t1 != t2 {
		t.Fatalf("same seed diverged: (%d,%v) vs (%d,%v)", m1, t1, m2, t2)
	}
}

func TestMulticastAddressing(t *testing.T) {
	h := newHarness(t, Config{})
	msg := &Message{Kind: KindResult, Src: 1, Dests: []topology.NodeID{0, 2}, Bytes: 10}
	addressed := 0
	for _, id := range []topology.NodeID{0, 2} {
		h.medium.SetHandler(id, func(d Delivery) {
			if d.Addressed {
				addressed++
			}
		})
	}
	h.medium.Send(msg)
	h.engine.RunAll()
	if addressed != 2 {
		t.Fatalf("addressed deliveries = %d, want 2", addressed)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindResult: "result", KindQuery: "query", KindAbort: "abort",
		KindBeacon: "beacon", KindWake: "wake",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestZeroByteMessageClamped(t *testing.T) {
	h := newHarness(t, Config{})
	h.medium.SetHandler(0, func(Delivery) {})
	h.medium.Send(&Message{Kind: KindBeacon, Src: 1, Bytes: 0})
	h.engine.RunAll()
	if h.coll.Bytes() != 1 {
		t.Fatalf("bytes = %d, want clamped to 1", h.coll.Bytes())
	}
}
