// Package radio simulates the packet-level wireless medium: broadcast
// delivery within radio range, per-message airtime (Cstart + Ctrans·len),
// carrier queueing per node, and contention-dependent collisions with
// backoff and retransmission.
//
// This is the substitute for TOSSIM's packet-level radio stack (§4.1). Two
// properties of real sensor radios matter to the paper and are reproduced
// faithfully:
//
//   - the *broadcast nature* of the channel: every neighbor hears every
//     transmission, addressed or not, which is what lets the in-network
//     optimizer piggyback information and learn which neighbors hold data
//     for which queries (§3.2.2);
//   - *contention*: the more messages on the air in a neighborhood, the more
//     collisions and retransmissions, which is why cutting the number of
//     result messages saves more than proportionally (§4.3's observation
//     that savings can exceed the 7/8 analytic bound).
//
// The paper otherwise assumes a lossless environment; with retries enabled
// (the default) delivery is eventually reliable.
package radio

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Kind classifies messages for accounting (§4.1 counts result, query
// propagation/abortion, maintenance, and retransmission messages).
type Kind uint8

// Message kinds.
const (
	KindResult Kind = iota + 1
	KindQuery
	KindAbort
	KindBeacon
	KindWake
)

// String returns the accounting label of the kind.
func (k Kind) String() string {
	switch k {
	case KindResult:
		return "result"
	case KindQuery:
		return "query"
	case KindAbort:
		return "abort"
	case KindBeacon:
		return "beacon"
	case KindWake:
		return "wake"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one packet on the air. Payloads are passed by reference rather
// than serialized; Bytes carries the on-air length the payload would have.
type Message struct {
	Kind Kind
	Src  topology.NodeID
	// Dests lists the addressed receivers: nil means broadcast, one entry is
	// a unicast, several entries are a multicast (§3.2.2 sends one multicast
	// when different queries need different parents).
	Dests   []topology.NodeID
	Bytes   int
	Payload any
	// Undeliverable, if set, is invoked once per addressed destination whose
	// radio is off (failed node) when the transmission completes — the
	// link-layer "no ACK" signal senders use for failover routing.
	Undeliverable func(to topology.NodeID)
}

// addressedTo reports whether id is an addressed receiver.
func (m *Message) addressedTo(id topology.NodeID) bool {
	if m.Dests == nil {
		return true
	}
	for _, d := range m.Dests {
		if d == id {
			return true
		}
	}
	return false
}

// Delivery hands a received message to a node. Addressed is false for
// overheard traffic — delivered anyway because the channel is broadcast.
type Delivery struct {
	To        topology.NodeID
	Addressed bool
	Msg       *Message
}

// Handler consumes deliveries for one node.
type Handler func(Delivery)

// Config tunes the medium.
type Config struct {
	// Cstart is the per-message startup airtime (default 2 ms).
	Cstart time.Duration
	// Ctrans is the airtime per byte (default 208 µs ≈ 38.4 kbps).
	Ctrans time.Duration
	// CollisionFactor is the per-contender collision probability; the
	// probability a transmission with k concurrent in-range contenders
	// collides is 1 − (1−CollisionFactor)^k. Zero disables collisions.
	CollisionFactor float64
	// LossRate is the per-transmission probability of a contention-free
	// link-layer loss (fading, interference). Lost transmissions follow
	// the same backoff/retry path as collisions. Zero disables it.
	LossRate float64
	// MaxRetries bounds collision retries per message (default 5). The
	// final retry always succeeds, matching the paper's lossless
	// assumption while still costing airtime for every attempt.
	MaxRetries int
	// BackoffBase is the base retransmission backoff (default 20 ms);
	// attempt i waits i·BackoffBase plus uniform jitter of the same scale.
	BackoffBase time.Duration
}

// DefaultCollisionFactor makes contention visible without dominating.
const DefaultCollisionFactor = 0.05

func (c *Config) setDefaults() {
	if c.Cstart == 0 {
		c.Cstart = 2 * time.Millisecond
	}
	if c.Ctrans == 0 {
		c.Ctrans = 208 * time.Microsecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 5
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 20 * time.Millisecond
	}
}

// Medium is the shared radio channel.
type Medium struct {
	cfg      Config
	engine   *sim.Engine
	topo     *topology.Topology
	rng      *sim.Rand
	coll     *metrics.Collector
	tracer   *trace.Buffer
	handlers []Handler
	// busyUntil serializes each node's transmissions (half-duplex radio).
	busyUntil []sim.Time
	// active tracks in-flight transmissions for the contention estimate.
	active []activeTx
}

type activeTx struct {
	src        topology.NodeID
	start, end sim.Time
}

// New builds a medium over the topology, driven by the engine, accounting
// into coll, with randomness from rng.
func New(engine *sim.Engine, topo *topology.Topology, coll *metrics.Collector, rng *sim.Rand, cfg Config) *Medium {
	cfg.setDefaults()
	return &Medium{
		cfg:       cfg,
		engine:    engine,
		topo:      topo,
		rng:       rng,
		coll:      coll,
		handlers:  make([]Handler, topo.Size()),
		busyUntil: make([]sim.Time, topo.Size()),
	}
}

// SetTracer attaches a structured event log; nil detaches it.
func (m *Medium) SetTracer(t *trace.Buffer) { m.tracer = t }

// SetLossRate overrides the per-transmission loss probability at runtime —
// the burst-loss hook used by chaos scenarios to model time-varying link
// quality (interference bursts, weather fades). Call it only from within an
// engine callback, like every other mutation of a running simulation. The
// rate is clamped to [0, 1).
func (m *Medium) SetLossRate(r float64) {
	if r < 0 {
		r = 0
	}
	if r >= 1 {
		r = 0.999
	}
	m.cfg.LossRate = r
}

// LossRate returns the current per-transmission loss probability.
func (m *Medium) LossRate() float64 { return m.cfg.LossRate }

// SetHandler registers the receive callback for a node. Passing nil detaches
// the node (it stops hearing traffic — used for sleep mode).
func (m *Medium) SetHandler(id topology.NodeID, h Handler) {
	m.handlers[id] = h
}

// Airtime returns the on-air duration of a message of the given length.
func (m *Medium) Airtime(bytes int) time.Duration {
	return m.cfg.Cstart + time.Duration(bytes)*m.cfg.Ctrans
}

// Send queues msg for transmission from msg.Src. The message is transmitted
// when the sender's radio is free, may collide and retry, and is delivered
// to every in-range neighbor (addressed or overhearing) when it completes.
func (m *Medium) Send(msg *Message) {
	if msg.Bytes <= 0 {
		msg.Bytes = 1
	}
	m.attempt(msg, 1)
}

func (m *Medium) attempt(msg *Message, try int) {
	now := m.engine.Now()
	start := now
	if m.busyUntil[msg.Src] > start {
		start = m.busyUntil[msg.Src]
	}
	air := m.Airtime(msg.Bytes)
	end := start + air
	m.busyUntil[msg.Src] = end

	m.engine.Schedule(start, func() {
		m.transmit(msg, try, air)
	})
}

// transmit puts the message on the air: accrues airtime, decides collision,
// and either schedules delivery or a retry.
func (m *Medium) transmit(msg *Message, try int, air time.Duration) {
	now := m.engine.Now()
	end := now + air

	contenders := m.contention(msg.Src, now, end)
	m.pruneActive(now)
	m.active = append(m.active, activeTx{src: msg.Src, start: now, end: end})

	// Every attempt costs airtime and is counted (§4.1).
	m.coll.AddTxTime(msg.Src, air)
	m.coll.CountMessage(msg.Kind.String(), msg.Src, msg.Bytes)
	m.tracer.Emitf(now, trace.KindTx, msg.Src, "%s %dB try=%d dests=%v",
		msg.Kind, msg.Bytes, try, msg.Dests)

	collided := false
	if try <= m.cfg.MaxRetries {
		pOK := 1 - m.cfg.LossRate
		for i := 0; i < contenders; i++ {
			pOK *= 1 - m.cfg.CollisionFactor
		}
		if pOK < 1 {
			collided = m.rng.Float64() > pOK
		}
	}

	if collided {
		m.coll.CountRetransmission()
		m.tracer.Emitf(now, trace.KindRetry, msg.Src, "%s contenders=%d try=%d",
			msg.Kind, contenders, try)
		backoff := time.Duration(try)*m.cfg.BackoffBase +
			time.Duration(m.rng.Float64()*float64(m.cfg.BackoffBase))
		m.engine.Schedule(end+sim.Time(backoff), func() {
			m.attempt(msg, try+1)
		})
		return
	}

	m.engine.Schedule(end, func() {
		for _, nb := range m.topo.Neighbors(msg.Src) {
			h := m.handlers[nb]
			if h == nil {
				continue // radio off (failed node)
			}
			// Every powered radio in range spends the airtime receiving,
			// addressed or merely overhearing.
			m.coll.AddRxTime(nb, air)
			h(Delivery{To: nb, Addressed: msg.addressedTo(nb), Msg: msg})
		}
		if msg.Undeliverable == nil || msg.Dests == nil {
			return
		}
		for _, dest := range msg.Dests {
			if m.handlers[dest] == nil || !m.topo.InRange(msg.Src, dest) {
				msg.Undeliverable(dest)
			}
		}
	})
}

// contention counts in-flight transmissions overlapping [start, end] from
// senders within interference range (twice the radio range) of src.
func (m *Medium) contention(src topology.NodeID, start, end sim.Time) int {
	interfere := 2 * m.topo.RadioRange()
	pos := m.topo.Position(src)
	n := 0
	for _, tx := range m.active {
		if tx.end <= start || tx.start >= end || tx.src == src {
			continue
		}
		if pos.Dist(m.topo.Position(tx.src)) <= interfere {
			n++
		}
	}
	return n
}

func (m *Medium) pruneActive(now sim.Time) {
	kept := m.active[:0]
	for _, tx := range m.active {
		if tx.end > now {
			kept = append(kept, tx)
		}
	}
	m.active = kept
}
