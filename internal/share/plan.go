// Package share is the tier-2 cross-query sharing layer: partial-aggregate
// common-subexpression elimination plus a windowed result cache, sitting
// between the gateway's semantic dedup cache and the in-network optimizer.
//
// TTMQO itself only shares work when one query's region and epoch contain
// another's. This layer goes further: it decomposes each live query's
// region×attribute×aggregate into grid-aligned fragments, keeps a
// refcounted registry of materialized fragments across the whole live
// query set, and plans every new query as a composition of fragments that
// already stream plus a minimal residual — only the residual reaches the
// optimizer and pays a network flood. Fragment streams are recombined per
// epoch (SUM/COUNT add, MIN/MAX fold, AVG from a SUM+COUNT basis exactly
// as the federation merger does) to synthesize each subscriber's answer.
package share

import (
	"math"
	"sort"

	"repro/internal/field"
	"repro/internal/gateway"
	"repro/internal/query"
	"repro/internal/sim"
)

// fragQuery is one shareable fragment: a grid-aligned (or edge-residual)
// sub-region of a query, carrying the query's basis aggregate list.
type fragQuery struct {
	q   query.Query
	key string // canonical key of q; the registry identity
}

// avgSrc names the basis aggregates a downstream AVG recombines from.
type avgSrc struct {
	sum query.Agg
	cnt query.Agg
}

// sharePlan is the decomposition of one canonical downstream query.
type sharePlan struct {
	q   query.Query // canonical downstream form
	key string      // gateway.CanonicalKey(q)
	agg bool        // aggregation (recombine) vs acquisition (concatenate)
	// passthrough: the query could not be decomposed (GROUP BY or windowed
	// aggregates); it rides as a single exact fragment, still deduplicated
	// and cached by key.
	passthrough bool
	frags       []fragQuery
	// avg maps a downstream AVG agg to its SUM/COUNT basis pair.
	avg map[query.Agg]avgSrc
}

// planShare canonicalizes q and decomposes it into cell-aligned fragments
// over the sensor id space 1..sensors. Interior cells are aligned to
// multiples of cell so overlapping queries decompose into byte-identical
// fragment keys; the edges keep exact residual ranges so the fragment set
// partitions the query's node set exactly (required for aggregate
// correctness — every sensor is counted once).
func planShare(q query.Query, sensors, cell int) (*sharePlan, error) {
	n := q.Normalize()
	n.ID = 0
	if n.Lifetime != 0 {
		return nil, errLifetime
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	p := &sharePlan{q: n, key: n.String(), agg: n.IsAggregation()}

	// GROUP BY buckets and windowed aggregates are not decomposable into
	// region partials here (group keys and window states live inside the
	// network); they pass through whole but still share by canonical key.
	if n.GroupBy != nil || len(n.Wins) > 0 {
		p.passthrough = true
		f := n.Clone()
		f.Lifetime = 0
		f = f.Normalize()
		p.frags = []fragQuery{{q: f, key: f.String()}}
		return p, nil
	}

	// Basis-aggregate rewrite: AVG is not recombinable from AVG partials,
	// so fragments stream SUM+COUNT instead (deduplicated against explicit
	// SUMs/COUNTs, mirroring the federation planner).
	upAggs := n.Aggs
	if p.agg {
		upAggs = make([]query.Agg, 0, len(n.Aggs)+2)
		seen := make(map[query.Agg]bool, len(n.Aggs)+2)
		add := func(a query.Agg) {
			if !seen[a] {
				seen[a] = true
				upAggs = append(upAggs, a)
			}
		}
		for _, a := range n.Aggs {
			if a.Op != query.Avg {
				add(a)
				continue
			}
			src := avgSrc{
				sum: query.Agg{Op: query.Sum, Attr: a.Attr},
				cnt: query.Agg{Op: query.Count, Attr: a.Attr},
			}
			add(src.sum)
			add(src.cnt)
			if p.avg == nil {
				p.avg = make(map[query.Agg]avgSrc, 1)
			}
			p.avg[a] = src
		}
	}

	// The queried sensor id range, clipped to the deployment.
	lo, hi := 1, sensors
	if pred, ok := n.PredFor(field.AttrNodeID); ok {
		lo = int(math.Ceil(math.Max(pred.Min, 1)))
		hi = int(math.Floor(math.Min(pred.Max, float64(sensors))))
	}

	mkFrag := func(flo, fhi int) fragQuery {
		f := n.Clone()
		f.Aggs = append([]query.Agg(nil), upAggs...)
		f.Lifetime = 0
		preds := f.Preds[:0]
		for _, pr := range f.Preds {
			if pr.Attr != field.AttrNodeID {
				preds = append(preds, pr)
			}
		}
		// Drop the region predicate when the fragment covers the whole
		// deployment so equal-coverage queries share one canonical form.
		if flo > 1 || fhi < sensors {
			preds = append(preds, query.Predicate{
				Attr: field.AttrNodeID, Min: float64(flo), Max: float64(fhi),
			})
		}
		f.Preds = preds
		f = f.Normalize()
		return fragQuery{q: f, key: f.String()}
	}

	// Aligned interior cells: [s, s+cell-1] with s ≡ 1 (mod cell).
	first := ((lo-1+cell-1)/cell)*cell + 1
	cur := lo
	for s := first; s+cell-1 <= hi; s += cell {
		if s > cur {
			p.frags = append(p.frags, mkFrag(cur, s-1)) // left edge residual
		}
		p.frags = append(p.frags, mkFrag(s, s+cell-1))
		cur = s + cell
	}
	if cur <= hi {
		p.frags = append(p.frags, mkFrag(cur, hi)) // right residual (or whole range)
	}
	return p, nil
}

// accKey identifies one partial-aggregate accumulator within an epoch.
type accKey struct {
	agg   query.Agg
	group int64
}

// accPartial folds per-fragment aggregate results of one (agg, group).
type accPartial struct {
	sum   float64
	min   float64
	max   float64
	count int64 // contributing non-empty partials
}

// shareAcc accumulates one virtual instant's fragment results until every
// planned fragment has contributed.
type shareAcc struct {
	at   sim.Time
	got  map[int]bool // fragment indices seen this epoch
	rows []query.Row
	aggs map[accKey]*accPartial
	ord  []accKey
	// degraded/coverage propagate partial shard coverage from upstream
	// (federation breaker exclusions): the composed epoch is degraded if
	// any fragment's was, at the worst fragment's coverage fraction.
	degraded bool
	coverage float64
	// shards is the provenance shard mask OR'd over contributing
	// fragments (zero when the upstream tier is untraced).
	shards uint64
}

func newShareAcc(at sim.Time) *shareAcc {
	return &shareAcc{at: at, got: make(map[int]bool, 4), coverage: 1}
}

// complete reports whether all n planned fragments contributed.
func (a *shareAcc) complete(n int) bool { return len(a.got) >= n }

// cov is the composed coverage fraction (1 unless degraded).
func (a *shareAcc) cov() float64 {
	if !a.degraded {
		return 1
	}
	return a.coverage
}

// add folds one fragment's epoch into the accumulator.
func (a *shareAcc) add(idx int, u gateway.Update) {
	a.got[idx] = true
	a.shards |= u.Prov.Shards
	if u.Degraded {
		a.degraded = true
		if u.Coverage < a.coverage {
			a.coverage = u.Coverage
		}
	}
	a.rows = append(a.rows, u.Rows...)
	if len(u.Aggs) == 0 {
		return
	}
	if a.aggs == nil {
		a.aggs = make(map[accKey]*accPartial, len(u.Aggs))
	}
	for _, r := range u.Aggs {
		k := accKey{agg: r.Agg, group: r.Group}
		p, ok := a.aggs[k]
		if !ok {
			p = &accPartial{min: math.Inf(1), max: math.Inf(-1)}
			a.aggs[k] = p
			a.ord = append(a.ord, k)
		}
		if r.Empty {
			continue
		}
		p.count++
		p.sum += r.Value
		p.min = math.Min(p.min, r.Value)
		p.max = math.Max(p.max, r.Value)
	}
}

// finish recombines the accumulated fragments into the downstream query's
// shape: rows sorted by node id, aggregates in the query's canonical agg
// order with AVG rebuilt from its SUM/COUNT basis.
func (a *shareAcc) finish(p *sharePlan) ([]query.Row, []query.AggResult) {
	var rows []query.Row
	if len(a.rows) > 0 {
		rows = append([]query.Row(nil), a.rows...)
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
	}
	if !p.agg {
		return rows, nil
	}

	groupSet := make(map[int64]bool, 4)
	for _, k := range a.ord {
		groupSet[k.group] = true
	}
	groups := make([]int64, 0, len(groupSet))
	for g := range groupSet {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })

	out := make([]query.AggResult, 0, len(p.q.Aggs)*len(groups))
	for _, ag := range p.q.Aggs {
		for _, g := range groups {
			r := query.AggResult{Time: a.at, Agg: ag, Group: g}
			if src, ok := p.avg[ag]; ok {
				sum, sok := a.aggs[accKey{agg: src.sum, group: g}]
				cnt, cok := a.aggs[accKey{agg: src.cnt, group: g}]
				if !sok || !cok || cnt.count == 0 || cnt.sum == 0 {
					r.Empty = true
				} else {
					r.Value = sum.sum / cnt.sum
				}
				out = append(out, r)
				continue
			}
			pt, ok := a.aggs[accKey{agg: ag, group: g}]
			if !ok || pt.count == 0 {
				r.Empty = true
				out = append(out, r)
				continue
			}
			switch ag.Op {
			case query.Sum, query.Count:
				r.Value = pt.sum
			case query.Min:
				r.Value = pt.min
			case query.Max:
				r.Value = pt.max
			case query.Avg:
				// Only reachable on passthrough plans (single exact
				// fragment), where folding one AVG partial is the identity.
				r.Value = pt.sum / float64(pt.count)
			}
			out = append(out, r)
		}
	}
	return rows, out
}
