package share

import (
	"reflect"
	"testing"

	"repro/internal/gateway"
)

// TestBenchServeGauges pins the sharing rows of the serve suite: the
// scenario must produce both TTFR rows, hit the absolute warm-replay
// bound the bench gate enforces, and be byte-deterministic across runs
// (virtual time only — rerunning must reproduce every gauge exactly).
func TestBenchServeGauges(t *testing.T) {
	run := func() *gateway.ServeBenchReport {
		t.Helper()
		rep := &gateway.ServeBenchReport{}
		if err := BenchServe(rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()

	var cold, warm float64
	for _, r := range rep.Rows {
		switch r.Name {
		case "share/ttfr-cold":
			cold = r.NsPerOp
		case "share/ttfr-warm":
			warm = r.NsPerOp
		}
	}
	if cold == 0 || warm == 0 {
		t.Fatalf("missing share TTFR rows: %+v", rep.Rows)
	}
	if rep.WarmReplaySpeedup < 5 {
		t.Fatalf("warm replay speedup %.2fx below the 5x gate (cold %.0fns, warm %.0fns)",
			rep.WarmReplaySpeedup, cold, warm)
	}
	if rep.FragmentReuseRatio <= 0 {
		t.Fatalf("fragment reuse ratio %v, want > 0 (overlapping queries share no fragments?)", rep.FragmentReuseRatio)
	}
	if rep.CacheHitRatio <= 0 {
		t.Fatalf("cache hit ratio %v, want > 0 (late subscriber missed the cache?)", rep.CacheHitRatio)
	}

	// The gate must pass a fresh run against itself as baseline, and the
	// scenario must reproduce exactly.
	if bad := gateway.CompareServeBench(rep, rep, 0.10); len(bad) != 0 {
		t.Fatalf("self-comparison violations: %v", bad)
	}
	again := run()
	if !reflect.DeepEqual(rep, again) {
		t.Fatalf("share bench not deterministic:\n first: %+v\n again: %+v", rep, again)
	}
}
