package share

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/field"
	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/topology"
)

// The coordinator must be drivable by the TCP server exactly like a
// gateway or a federation router.
var (
	_ gateway.Backend       = (*Coordinator)(nil)
	_ gateway.ServerSession = (*Session)(nil)
	_ gateway.ServerSub     = (*Sub)(nil)
)

const testQuantum = 2048 * time.Millisecond

// testSide 4 gives 15 sensors: with cell 4 the id space decomposes into
// three aligned cells [1,4] [5,8] [9,12] and a residual [13,15].
const (
	testSide    = 4
	testSensors = testSide*testSide - 1
	testCell    = 4
)

func newTestGateway(t *testing.T, cfg gateway.Config) *gateway.Gateway {
	t.Helper()
	if cfg.Sim.Topo == nil {
		topo, err := topology.PaperGrid(testSide)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Sim.Topo = topo
	}
	if cfg.Sim.Scheme == 0 {
		cfg.Sim.Scheme = network.TTMQO
	}
	if cfg.Sim.Seed == 0 {
		cfg.Sim.Seed = 1
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gw.Close() })
	return gw
}

func newTestCoord(t *testing.T, gcfg gateway.Config, ccfg Config) (*Coordinator, *gateway.Gateway) {
	t.Helper()
	gw := newTestGateway(t, gcfg)
	ccfg.Upstream = OverGateway(gw)
	if ccfg.Sensors == 0 {
		ccfg.Sensors = testSensors
	}
	if ccfg.Cell == 0 {
		ccfg.Cell = testCell
	}
	c, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, gw
}

func stageShare(t *testing.T, s *Session, text string) *Ticket {
	t.Helper()
	tk, err := s.SubscribeAsync(query.MustParse(text))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func advance(t *testing.T, c *Coordinator, d time.Duration) {
	t.Helper()
	if _, err := c.Advance(d); err != nil {
		t.Fatal(err)
	}
}

func drainSub(sub *Sub, into *[]gateway.Update) {
	for {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				return
			}
			*into = append(*into, u)
		default:
			return
		}
	}
}

// checkStream asserts contiguous sequence numbers and strictly
// increasing virtual time.
func checkStream(t *testing.T, updates []gateway.Update) {
	t.Helper()
	for i, u := range updates {
		if u.Seq != uint64(i+1) {
			t.Fatalf("update %d has seq %d (dupe or gap)", i, u.Seq)
		}
		if i > 0 && u.At <= updates[i-1].At {
			t.Fatalf("update %d at %v, not after %v", i, u.At, updates[i-1].At)
		}
	}
}

// TestPlanShareDecomposition pins the fragment geometry: aligned interior
// cells, exact edge residuals, full-range predicate elision and the
// AVG→SUM+COUNT basis rewrite.
func TestPlanShareDecomposition(t *testing.T) {
	q := query.MustParse("SELECT AVG(temp) WHERE nodeid >= 3 AND nodeid <= 13 EPOCH DURATION 8192ms")
	p, err := planShare(q, testSensors, testCell)
	if err != nil {
		t.Fatal(err)
	}
	wantRanges := [][2]int{{3, 4}, {5, 8}, {9, 12}, {13, 13}}
	if len(p.frags) != len(wantRanges) {
		t.Fatalf("got %d fragments, want %d: %+v", len(p.frags), len(wantRanges), p.frags)
	}
	for i, fq := range p.frags {
		pred, ok := fq.q.PredFor(field.AttrNodeID)
		if !ok {
			t.Fatalf("fragment %d has no region predicate", i)
		}
		if int(pred.Min) != wantRanges[i][0] || int(pred.Max) != wantRanges[i][1] {
			t.Errorf("fragment %d range [%v,%v], want %v", i, pred.Min, pred.Max, wantRanges[i])
		}
		if len(fq.q.Aggs) != 2 || fq.q.Aggs[0].Op == query.Avg || fq.q.Aggs[1].Op == query.Avg {
			t.Errorf("fragment %d aggs %v, want SUM+COUNT basis", i, fq.q.Aggs)
		}
	}
	if len(p.avg) != 1 {
		t.Errorf("avg basis map has %d entries, want 1", len(p.avg))
	}

	// A query naming the full range explicitly and one with no region
	// predicate must decompose to identical fragment keys.
	qa := query.MustParse(fmt.Sprintf("SELECT MAX(light) WHERE nodeid >= 1 AND nodeid <= %d EPOCH DURATION 8192ms", testSensors))
	qb := query.MustParse("SELECT MAX(light) EPOCH DURATION 8192ms")
	pa, err := planShare(qa, testSensors, testCell)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := planShare(qb, testSensors, testCell)
	if err != nil {
		t.Fatal(err)
	}
	if len(pa.frags) != len(pb.frags) {
		t.Fatalf("full-range forms decompose differently: %d vs %d", len(pa.frags), len(pb.frags))
	}
	for i := range pa.frags {
		if pa.frags[i].key != pb.frags[i].key {
			t.Errorf("fragment %d keys differ:\n  %s\n  %s", i, pa.frags[i].key, pb.frags[i].key)
		}
	}

	// GROUP BY passes through as one exact fragment.
	qg := query.MustParse("SELECT AVG(light) GROUP BY temp BUCKET 10 EPOCH DURATION 8192ms")
	pg, err := planShare(qg, testSensors, testCell)
	if err != nil {
		t.Fatal(err)
	}
	if !pg.passthrough || len(pg.frags) != 1 {
		t.Fatalf("GROUP BY plan not passthrough: %+v", pg)
	}
}

// TestCoordinatorSharesFragments: two overlapping-but-not-containable
// region queries share their common interior cells, so the second query
// admits strictly fewer upstream queries than its fragment count.
func TestCoordinatorSharesFragments(t *testing.T) {
	c, gw := newTestCoord(t, gateway.Config{}, Config{})
	sess, err := c.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	// [1,8] = cells {1-4, 5-8}; [5,12] = cells {5-8, 9-12}: the 5-8 cell
	// is the common subexpression.
	tkA := stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 1 AND nodeid <= 8 EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	subA, err := tkA.Wait()
	if err != nil {
		t.Fatal(err)
	}
	admittedAfterA := mustGwStats(t, gw).Admitted

	tkB := stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 5 AND nodeid <= 12 EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	subB, err := tkB.Wait()
	if err != nil {
		t.Fatal(err)
	}
	st := c.ShareStats()
	gst := mustGwStats(t, gw)
	if admittedAfterA != 2 {
		t.Fatalf("query A admitted %d upstream fragments, want 2", admittedAfterA)
	}
	if gst.Admitted != 3 {
		t.Fatalf("A+B admitted %d upstream fragments, want 3 (cell 5-8 shared)", gst.Admitted)
	}
	if st.FragmentsReused != 1 || st.FragmentsCreated != 3 {
		t.Fatalf("reuse accounting: created=%d reused=%d, want 3/1", st.FragmentsCreated, st.FragmentsReused)
	}
	if r := st.FragmentReuseRatio(); math.Abs(r-0.25) > 1e-9 {
		t.Errorf("reuse ratio %v, want 0.25", r)
	}

	// Both subscribers must stream correct sums: drive some epochs and
	// compare against a direct gateway subscription of query A's region.
	direct, err := gw.Register("direct")
	if err != nil {
		t.Fatal(err)
	}
	dtk, err := direct.SubscribeAsync(query.MustParse("SELECT SUM(light) WHERE nodeid >= 1 AND nodeid <= 8 EPOCH DURATION 8192ms"))
	if err != nil {
		t.Fatal(err)
	}
	advance(t, c, testQuantum)
	dsub, err := dtk.Wait()
	if err != nil {
		t.Fatal(err)
	}

	var ua, ub, ud []gateway.Update
	for i := 0; i < 12; i++ {
		advance(t, c, testQuantum)
		drainSub(subA, &ua)
		drainSub(subB, &ub)
		for {
			select {
			case u := <-dsub.Updates():
				ud = append(ud, u)
				continue
			default:
			}
			break
		}
	}
	checkStream(t, ua)
	checkStream(t, ub)
	if len(ua) == 0 || len(ub) == 0 || len(ud) == 0 {
		t.Fatalf("missing deliveries: A=%d B=%d direct=%d", len(ua), len(ub), len(ud))
	}

	// Compare composed SUMs against the direct stream at matching epochs.
	dByAt := make(map[int64]float64)
	for _, u := range ud {
		if len(u.Aggs) == 1 && !u.Aggs[0].Empty {
			dByAt[int64(u.At)] = u.Aggs[0].Value
		}
	}
	matched := 0
	for _, u := range ua {
		if len(u.Aggs) != 1 {
			t.Fatalf("composed update carries %d aggs, want 1", len(u.Aggs))
		}
		want, ok := dByAt[int64(u.At)]
		if !ok || u.Aggs[0].Empty {
			continue
		}
		if math.Abs(u.Aggs[0].Value-want) > 1e-9 {
			t.Fatalf("epoch %v: composed SUM %v != direct %v", u.At, u.Aggs[0].Value, want)
		}
		matched++
	}
	if matched == 0 {
		t.Fatal("no overlapping epochs between composed and direct streams")
	}
}

func mustGwStats(t *testing.T, gw *gateway.Gateway) gateway.Stats {
	t.Helper()
	st, err := gw.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCoordinatorAvgComposition: AVG over a decomposed region recombines
// from the SUM+COUNT basis to the exact value of a direct subscription.
func TestCoordinatorAvgComposition(t *testing.T) {
	c, gw := newTestCoord(t, gateway.Config{}, Config{})
	sess, err := c.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	tk := stageShare(t, sess, "SELECT AVG(temp) EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}

	direct, err := gw.Register("direct")
	if err != nil {
		t.Fatal(err)
	}
	dtk, err := direct.SubscribeAsync(query.MustParse("SELECT AVG(temp) EPOCH DURATION 8192ms"))
	if err != nil {
		t.Fatal(err)
	}
	advance(t, c, testQuantum)
	dsub, err := dtk.Wait()
	if err != nil {
		t.Fatal(err)
	}

	var us, ud []gateway.Update
	for i := 0; i < 12; i++ {
		advance(t, c, testQuantum)
		drainSub(sub, &us)
		for {
			select {
			case u := <-dsub.Updates():
				ud = append(ud, u)
				continue
			default:
			}
			break
		}
	}
	checkStream(t, us)
	dByAt := make(map[int64]float64)
	for _, u := range ud {
		if len(u.Aggs) == 1 && !u.Aggs[0].Empty {
			dByAt[int64(u.At)] = u.Aggs[0].Value
		}
	}
	matched := 0
	for _, u := range us {
		if len(u.Aggs) != 1 || u.Aggs[0].Agg.Op != query.Avg {
			t.Fatalf("composed update aggs = %v, want one AVG", u.Aggs)
		}
		want, ok := dByAt[int64(u.At)]
		if !ok || u.Aggs[0].Empty {
			continue
		}
		if math.Abs(u.Aggs[0].Value-want) > 1e-9 {
			t.Fatalf("epoch %v: composed AVG %v != direct %v", u.At, u.Aggs[0].Value, want)
		}
		matched++
	}
	if matched == 0 {
		t.Fatal("no overlapping epochs between composed and direct streams")
	}
}

// TestCoordinatorAcquisitionComposition: row queries concatenate fragment
// rows back into node order.
func TestCoordinatorAcquisitionComposition(t *testing.T) {
	c, _ := newTestCoord(t, gateway.Config{}, Config{})
	sess, err := c.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	tk := stageShare(t, sess, "SELECT nodeid, light WHERE nodeid >= 2 AND nodeid <= 10 EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var us []gateway.Update
	for i := 0; i < 12; i++ {
		advance(t, c, testQuantum)
		drainSub(sub, &us)
	}
	checkStream(t, us)
	if len(us) == 0 {
		t.Fatal("no composed acquisition epochs")
	}
	for _, u := range us {
		for i, r := range u.Rows {
			if r.Node < 2 || r.Node > 10 {
				t.Fatalf("row outside region: node %d", r.Node)
			}
			if i > 0 && u.Rows[i-1].Node > r.Node {
				t.Fatalf("rows not in node order at epoch %v", u.At)
			}
		}
	}
}

// TestCoordinatorLateSubscriberReplay: a subscriber joining a live query
// replays the cached window immediately instead of waiting out an epoch.
func TestCoordinatorLateSubscriberReplay(t *testing.T) {
	c, _ := newTestCoord(t, gateway.Config{}, Config{Window: 3})
	early, err := c.Register("early")
	if err != nil {
		t.Fatal(err)
	}
	tk := stageShare(t, early, "SELECT MIN(light) EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	esub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var eu []gateway.Update
	for i := 0; i < 12; i++ {
		advance(t, c, testQuantum)
		drainSub(esub, &eu)
	}
	if len(eu) < 3 {
		t.Fatalf("early subscriber got only %d epochs", len(eu))
	}

	late, err := c.Register("late")
	if err != nil {
		t.Fatal(err)
	}
	ltk := stageShare(t, late, "SELECT MIN(light) EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	lsub, err := ltk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var lu []gateway.Update
	drainSub(lsub, &lu)
	if len(lu) != 3 {
		t.Fatalf("late subscriber replayed %d epochs immediately, want 3", len(lu))
	}
	checkStream(t, lu)

	// Replayed values must equal what the early subscriber saw live.
	eByAt := make(map[int64]float64)
	for _, u := range eu {
		eByAt[int64(u.At)] = u.Aggs[0].Value
	}
	for _, u := range lu {
		want, ok := eByAt[int64(u.At)]
		if !ok {
			t.Fatalf("replayed epoch %v never seen live", u.At)
		}
		if math.Abs(u.Aggs[0].Value-want) > 1e-9 {
			t.Fatalf("replayed epoch %v: %v != live %v", u.At, u.Aggs[0].Value, want)
		}
	}

	// The replay must splice seamlessly into the live stream: no dupes,
	// no regressions across the boundary.
	for i := 0; i < 4; i++ {
		advance(t, c, testQuantum)
		drainSub(lsub, &lu)
		drainSub(esub, &eu)
	}
	checkStream(t, lu)
	checkStream(t, eu)
	if len(lu) < 4 {
		t.Fatalf("late subscriber stalled after replay: %d epochs", len(lu))
	}

	st := c.ShareStats()
	if st.CacheHits != 1 || st.ReplayedEpochs != 3 {
		t.Fatalf("cache accounting: hits=%d replayed=%d, want 1/3", st.CacheHits, st.ReplayedEpochs)
	}
	if st.CacheHitRatio() <= 0 {
		t.Errorf("cache hit ratio %v, want > 0", st.CacheHitRatio())
	}
}

// TestCoordinatorSynthesizedReplay: a NEW query whose fragments all
// already stream for other queries gets its window synthesized from the
// fragment caches — a cache hit without any prior subscriber of that
// exact query.
func TestCoordinatorSynthesizedReplay(t *testing.T) {
	c, _ := newTestCoord(t, gateway.Config{}, Config{Window: 3})
	sess, err := c.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Two queries that together materialize cells 1-4, 5-8, 9-12 and
	// residual 13-15.
	tkA := stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 1 AND nodeid <= 8 EPOCH DURATION 8192ms")
	tkB := stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 9 AND nodeid <= 15 EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	subA, err := tkA.Wait()
	if err != nil {
		t.Fatal(err)
	}
	subB, err := tkB.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var ua, ub []gateway.Update
	for i := 0; i < 12; i++ {
		advance(t, c, testQuantum)
		drainSub(subA, &ua)
		drainSub(subB, &ub)
	}
	if len(ua) < 3 || len(ub) < 3 {
		t.Fatalf("warm-up too short: %d/%d epochs", len(ua), len(ub))
	}

	// The spanning query [1,15] composes entirely from live fragments.
	tkC := stageShare(t, sess, "SELECT SUM(light) EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	subC, err := tkC.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var uc []gateway.Update
	drainSub(subC, &uc)
	if len(uc) == 0 {
		t.Fatal("covered query got no synthesized replay")
	}
	checkStream(t, uc)

	// Synthesized SUM over [1,15] must equal SUM[1,8] + SUM[9,15] at the
	// same epochs.
	aByAt := make(map[int64]float64)
	for _, u := range ua {
		aByAt[int64(u.At)] = u.Aggs[0].Value
	}
	bByAt := make(map[int64]float64)
	for _, u := range ub {
		bByAt[int64(u.At)] = u.Aggs[0].Value
	}
	for _, u := range uc[:min(len(uc), 3)] {
		a, aok := aByAt[int64(u.At)]
		b, bok := bByAt[int64(u.At)]
		if !aok || !bok {
			t.Fatalf("synthesized epoch %v missing from live streams", u.At)
		}
		if want := a + b; math.Abs(u.Aggs[0].Value-want) > 1e-9 {
			t.Fatalf("synthesized SUM at %v = %v, want %v", u.At, u.Aggs[0].Value, want)
		}
	}

	st := c.ShareStats()
	gw := mustGwStats2(t, c)
	if st.FragmentsCreated != 4 {
		t.Errorf("created %d fragments, want 4 (C admitted nothing new)", st.FragmentsCreated)
	}
	_ = gw
	if st.CacheHits == 0 || st.ReplayedEpochs == 0 {
		t.Errorf("synthesis not counted as cache hit: %+v", st)
	}
}

func mustGwStats2(t *testing.T, c *Coordinator) gateway.Stats {
	t.Helper()
	st, _, err := c.ServeStats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCoordinatorEvictionReleasesFragments is the sharing-layer side of
// the eviction-refcount regression: when a stalled subscriber is evicted
// and it was the canonical query's last reference, every fragment the
// query held must decref — and fragments at refcount zero must cancel
// their upstream queries.
func TestCoordinatorEvictionReleasesFragments(t *testing.T) {
	c, gw := newTestCoord(t, gateway.Config{}, Config{Buffer: 2})
	slow, err := c.Register("slow")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := c.Register("fast")
	if err != nil {
		t.Fatal(err)
	}
	// The slow session's query holds cells 1-4 and 5-8; the fast one
	// shares cell 1-4 only.
	tkS := stageShare(t, slow, "SELECT SUM(light) WHERE nodeid >= 1 AND nodeid <= 8 EPOCH DURATION 8192ms")
	tkF := stageShare(t, fast, "SELECT SUM(light) WHERE nodeid >= 1 AND nodeid <= 4 EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	if _, err := tkS.Wait(); err != nil {
		t.Fatal(err)
	}
	fsub, err := tkF.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st := c.ShareStats(); st.FragmentsActive != 2 {
		t.Fatalf("fragments=%d, want 2", st.FragmentsActive)
	}

	// Never drain the slow subscriber; it overflows and is evicted.
	var fu []gateway.Update
	for i := 0; i < 16; i++ {
		advance(t, c, testQuantum)
		drainSub(fsub, &fu)
	}
	st := c.ShareStats()
	if st.Evicted != 1 {
		t.Fatalf("evicted=%d, want 1", st.Evicted)
	}
	if st.Trees != 1 || st.FragmentsActive != 1 {
		t.Fatalf("eviction leaked shared state: trees=%d fragments=%d, want 1/1", st.Trees, st.FragmentsActive)
	}
	if st.FragmentsCancelled != 1 {
		t.Fatalf("fragments_cancelled=%d, want 1 (cell 5-8 released)", st.FragmentsCancelled)
	}

	// The upstream must see the refcount-zero cancel; the shared cell
	// 1-4 must survive for the fast subscriber.
	advance(t, c, testQuantum)
	gst := mustGwStats(t, gw)
	if gst.Cancelled != 1 || gst.SharedQueries != 1 {
		t.Fatalf("upstream cancel not propagated: %+v", gst)
	}
	checkStream(t, fu)
	if len(fu) == 0 {
		t.Fatal("fast subscriber starved by the eviction")
	}
}

// TestCoordinatorOverRouter: the coordinator composes with the federation
// tier — fragments stream through a sharded router and still recombine.
func TestCoordinatorOverRouter(t *testing.T) {
	rt, err := federation.New(federation.Config{Shards: 2, Side: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	sensors := 2 * (3*3 - 1) // 16 global sensors
	c, err := New(Config{Upstream: OverRouter(rt), Sensors: sensors, Cell: testCell})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	sess, err := c.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	// [5,12] straddles the shard boundary at 8|9: the coordinator splits
	// it into cells 5-8 and 9-12, and the router spans each across its
	// shards as needed.
	tk := stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 5 AND nodeid <= 12 EPOCH DURATION 8192ms")
	advance(t, c, 8192*time.Millisecond)
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var us []gateway.Update
	for i := 0; i < 8; i++ {
		advance(t, c, 8192*time.Millisecond)
		drainSub(sub, &us)
	}
	checkStream(t, us)
	if len(us) < 2 {
		t.Fatalf("only %d composed epochs through the router", len(us))
	}
	if st := c.ShareStats(); st.FragmentsActive != 2 {
		t.Errorf("fragments=%d, want 2", st.FragmentsActive)
	}
}

// TestCoordinatorReattachAfterCrash: the upstream gateway crashes and is
// rebuilt from its WAL; the coordinator re-attaches its sessions, resumes
// every fragment stream, and downstream subscribers see a pause — never a
// duplicate, gap or epoch regression. The windowed cache keeps serving
// late subscribers across the outage.
func TestCoordinatorReattachAfterCrash(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "share.wal")
	topo, err := topology.PaperGrid(testSide)
	if err != nil {
		t.Fatal(err)
	}
	mkCfg := func() gateway.Config {
		return gateway.Config{
			Sim:     network.Config{Topo: topo, Scheme: network.TTMQO, Seed: 1},
			WALPath: wal,
		}
	}
	gw, err := gateway.New(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Upstream: OverGateway(gw), Sensors: testSensors, Cell: testCell, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	sess, err := c.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	tk := stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 3 AND nodeid <= 13 EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var us []gateway.Update
	for i := 0; i < 12; i++ {
		advance(t, c, testQuantum)
		drainSub(sub, &us)
	}
	if len(us) < 2 {
		t.Fatalf("warm-up delivered only %d epochs", len(us))
	}

	// Crash the gateway abruptly and rebuild it from the WAL.
	if err := gw.Crash(); err != nil {
		t.Fatal(err)
	}
	gw2, err := gateway.Recover(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = gw2.Close() })
	if err := c.Reattach(OverGateway(gw2)); err != nil {
		t.Fatal(err)
	}

	// A late subscriber during the outage window still hits the cache.
	late, err := c.Register("late")
	if err != nil {
		t.Fatal(err)
	}
	ltk := stageShare(t, late, "SELECT SUM(light) WHERE nodeid >= 3 AND nodeid <= 13 EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	lsub, err := ltk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var lu []gateway.Update
	drainSub(lsub, &lu)
	if len(lu) == 0 {
		t.Fatal("cache did not survive the crash")
	}

	before := len(us)
	for i := 0; i < 12; i++ {
		advance(t, c, testQuantum)
		drainSub(sub, &us)
		drainSub(lsub, &lu)
	}
	checkStream(t, us)
	checkStream(t, lu)
	if len(us) <= before {
		t.Fatalf("no progress after reattach: %d then, %d now", before, len(us))
	}
	st := c.ShareStats()
	if st.Reattaches != 1 || st.UpstreamResumes == 0 {
		t.Fatalf("failover accounting: reattaches=%d resumes=%d", st.Reattaches, st.UpstreamResumes)
	}
	_ = fmt.Sprintf
}

// TestCoordinatorDetachResume: the downstream detach/resume path parks
// and replays tails exactly like the gateway's.
func TestCoordinatorDetachResume(t *testing.T) {
	c, _ := newTestCoord(t, gateway.Config{}, Config{})
	sess, err := c.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	tk := stageShare(t, sess, "SELECT COUNT(light) EPOCH DURATION 8192ms")
	advance(t, c, testQuantum)
	sub, err := tk.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var us []gateway.Update
	for i := 0; i < 8; i++ {
		advance(t, c, testQuantum)
		drainSub(sub, &us)
	}
	if len(us) == 0 {
		t.Fatal("no epochs before detach")
	}
	last := us[len(us)-1].Seq

	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		advance(t, c, testQuantum)
	}
	s2, infos, err := c.Attach("alice", sess.Token())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != sub.ID() {
		t.Fatalf("resume infos = %+v", infos)
	}
	rsub, err := s2.Resume(sub.ID(), last)
	if err != nil {
		t.Fatal(err)
	}
	var ru []gateway.Update
	for {
		select {
		case u := <-rsub.Updates():
			ru = append(ru, u)
			continue
		default:
		}
		break
	}
	if len(ru) == 0 {
		t.Fatal("no parked tail replayed")
	}
	for i, u := range ru {
		if u.Seq != last+uint64(i+1) {
			t.Fatalf("resumed seq %d, want %d", u.Seq, last+uint64(i+1))
		}
	}
}
