package share

import (
	"time"

	"repro/internal/federation"
	"repro/internal/gateway"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/tracing"
)

// Upstream is the surface the coordinator drives fragments against: a
// single gateway (OverGateway) or a federation router fleet (OverRouter).
// Everything the coordinator needs is the async subscribe/ticket shape
// plus session attach/resume for crash failover — the blocking
// ServerSession API would deadlock here, because the coordinator itself
// is the component driving Advance.
type Upstream interface {
	Advance(d time.Duration) (int, error)
	Now() (sim.Time, error)
	Alive() bool
	Register(name string) (UpstreamSession, error)
	Attach(name, token string) (UpstreamSession, []gateway.ResumeInfo, error)
	ServeStats() (gateway.Stats, sim.Time, error)
}

// UpstreamSession is one coordinator-owned session on the upstream tier.
type UpstreamSession interface {
	Name() string
	Token() string
	SubscribeAsync(q query.Query) (UpstreamTicket, error)
	// UnsubscribeAsync stages a cancel; completion may lag the call.
	UnsubscribeAsync(id gateway.SubID) error
	Resume(id gateway.SubID, after uint64) (UpstreamSub, error)
}

// UpstreamTicket resolves to a fragment stream at the next Advance.
type UpstreamTicket interface {
	Wait() (UpstreamSub, error)
}

// tracedUpstreamSession is the optional UpstreamSession extension for
// causal tracing: a residual fragment admission carries the coordinator's
// trace context upstream so the gateway/router spans it causes join the
// fragment's trace. Both built-in adapters implement it.
type tracedUpstreamSession interface {
	SubscribeAsyncTraced(q query.Query, tc tracing.Context) (UpstreamTicket, error)
}

// UpstreamSub is one live fragment stream.
type UpstreamSub interface {
	ID() gateway.SubID
	QueryID() query.ID
	Updates() <-chan gateway.Update
}

// ---------------------------------------------------------------------------
// Gateway adapter

type gwUpstream struct{ g *gateway.Gateway }

// OverGateway adapts a single gateway as the coordinator's upstream.
func OverGateway(g *gateway.Gateway) Upstream { return gwUpstream{g} }

func (u gwUpstream) Advance(d time.Duration) (int, error) { return u.g.Advance(d) }
func (u gwUpstream) Now() (sim.Time, error)               { return u.g.Now() }
func (u gwUpstream) Alive() bool                          { return u.g.Alive() }
func (u gwUpstream) ServeStats() (gateway.Stats, sim.Time, error) {
	return u.g.ServeStats()
}

func (u gwUpstream) Register(name string) (UpstreamSession, error) {
	s, err := u.g.Register(name)
	if err != nil {
		return nil, err
	}
	return gwUpSession{s}, nil
}

func (u gwUpstream) Attach(name, token string) (UpstreamSession, []gateway.ResumeInfo, error) {
	s, infos, err := u.g.Attach(name, token)
	if err != nil {
		return nil, nil, err
	}
	return gwUpSession{s}, infos, nil
}

type gwUpSession struct{ s *gateway.Session }

func (s gwUpSession) Name() string  { return s.s.Name() }
func (s gwUpSession) Token() string { return s.s.Token() }

func (s gwUpSession) SubscribeAsync(q query.Query) (UpstreamTicket, error) {
	tk, err := s.s.SubscribeAsync(q)
	if err != nil {
		return nil, err
	}
	return gwTicket{tk}, nil
}

func (s gwUpSession) SubscribeAsyncTraced(q query.Query, tc tracing.Context) (UpstreamTicket, error) {
	tk, err := s.s.SubscribeAsyncTraced(q, 0, tc)
	if err != nil {
		return nil, err
	}
	return gwTicket{tk}, nil
}

func (s gwUpSession) UnsubscribeAsync(id gateway.SubID) error {
	tk, err := s.s.UnsubscribeAsync(id)
	if err != nil {
		return err
	}
	go func() { _, _ = tk.Wait() }()
	return nil
}

func (s gwUpSession) Resume(id gateway.SubID, after uint64) (UpstreamSub, error) {
	sub, err := s.s.Resume(id, after)
	if err != nil {
		return nil, err
	}
	return sub, nil
}

type gwTicket struct{ tk *gateway.Ticket }

func (t gwTicket) Wait() (UpstreamSub, error) {
	sub, err := t.tk.Wait()
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// ---------------------------------------------------------------------------
// Federation router adapter

type fedUpstream struct{ r *federation.Router }

// OverRouter adapts a federation router fleet as the coordinator's
// upstream, so cross-query sharing composes with sharded deployments:
// fragments the coordinator materializes are themselves planned across
// shards by the router.
func OverRouter(r *federation.Router) Upstream { return fedUpstream{r} }

func (u fedUpstream) Advance(d time.Duration) (int, error) { return u.r.Advance(d) }
func (u fedUpstream) Now() (sim.Time, error)               { return u.r.Now(), nil }
func (u fedUpstream) Alive() bool                          { return u.r.Alive() }
func (u fedUpstream) ServeStats() (gateway.Stats, sim.Time, error) {
	return u.r.ServeStats()
}

func (u fedUpstream) Register(name string) (UpstreamSession, error) {
	s, err := u.r.Register(name)
	if err != nil {
		return nil, err
	}
	return fedUpSession{s}, nil
}

func (u fedUpstream) Attach(name, token string) (UpstreamSession, []gateway.ResumeInfo, error) {
	s, infos, err := u.r.Attach(name, token)
	if err != nil {
		return nil, nil, err
	}
	return fedUpSession{s}, infos, nil
}

type fedUpSession struct{ s *federation.Session }

func (s fedUpSession) Name() string  { return s.s.Name() }
func (s fedUpSession) Token() string { return s.s.Token() }

func (s fedUpSession) SubscribeAsync(q query.Query) (UpstreamTicket, error) {
	tk, err := s.s.SubscribeAsync(q)
	if err != nil {
		return nil, err
	}
	return fedTicket{tk}, nil
}

func (s fedUpSession) SubscribeAsyncTraced(q query.Query, tc tracing.Context) (UpstreamTicket, error) {
	tk, err := s.s.SubscribeAsyncTraced(q, 0, tc)
	if err != nil {
		return nil, err
	}
	return fedTicket{tk}, nil
}

func (s fedUpSession) UnsubscribeAsync(id gateway.SubID) error {
	tk, err := s.s.UnsubscribeAsync(id)
	if err != nil {
		return err
	}
	go func() { _, _ = tk.Wait() }()
	return nil
}

func (s fedUpSession) Resume(id gateway.SubID, after uint64) (UpstreamSub, error) {
	sub, err := s.s.Resume(id, after)
	if err != nil {
		return nil, err
	}
	return fedServerSub{sub}, nil
}

type fedTicket struct{ tk *federation.Ticket }

func (t fedTicket) Wait() (UpstreamSub, error) {
	sub, err := t.tk.Wait()
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// fedServerSub narrows a resumed gateway.ServerSub to the upstream shape.
type fedServerSub struct{ s gateway.ServerSub }

func (f fedServerSub) ID() gateway.SubID              { return f.s.ID() }
func (f fedServerSub) QueryID() query.ID              { return f.s.QueryID() }
func (f fedServerSub) Updates() <-chan gateway.Update { return f.s.Updates() }
