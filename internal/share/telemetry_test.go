package share

import (
	"testing"

	"repro/internal/gateway"
	"repro/internal/telemetry"
)

// TestShareMetricsExposition: the sharing layer's metric families expose
// the counters and derived ratios the scaling study depends on, and the
// exposition is a deterministic function of the committed workload.
func TestShareMetricsExposition(t *testing.T) {
	run := func() string {
		c, _ := newTestCoord(t, gateway.Config{}, Config{Window: 3})
		reg := telemetry.NewRegistry()
		RegisterMetrics(reg, func() *Coordinator { return c })

		sess, err := c.Register("alice")
		if err != nil {
			t.Fatal(err)
		}
		tkA := stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 1 AND nodeid <= 8 EPOCH DURATION 8192ms")
		tkB := stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 5 AND nodeid <= 12 EPOCH DURATION 8192ms")
		advance(t, c, testQuantum)
		if _, err := tkA.Wait(); err != nil {
			t.Fatal(err)
		}
		subB, err := tkB.Wait()
		if err != nil {
			t.Fatal(err)
		}
		var ub []gateway.Update
		for i := 0; i < 12; i++ {
			advance(t, c, testQuantum)
			drainSub(subB, &ub)
		}
		// A latecomer on B's query exercises the cache-hit path.
		late, err := c.Register("late")
		if err != nil {
			t.Fatal(err)
		}
		ltk := stageShare(t, late, "SELECT SUM(light) WHERE nodeid >= 5 AND nodeid <= 12 EPOCH DURATION 8192ms")
		advance(t, c, testQuantum)
		if _, err := ltk.Wait(); err != nil {
			t.Fatal(err)
		}
		return reg.Exposition()
	}

	a := run()
	if b := run(); a != b {
		t.Fatalf("same workload, different expositions:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	samples, err := telemetry.ParseExposition(a)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	want := map[string]float64{
		"ttmqo_share_fragments_created_total": 3,
		"ttmqo_share_fragments_reused_total":  1,
		"ttmqo_share_fragment_reuse_ratio":    0.25,
		"ttmqo_share_trees":                   2,
		"ttmqo_share_fragments_active":        3,
		"ttmqo_cache_hits_total":              1,
		"ttmqo_cache_hit_ratio":               1.0 / 3.0, // A and B cold-missed, the latecomer hit
		"ttmqo_share_subscribes_total":        3,
		"ttmqo_share_dedup_hits_total":        1,
		"ttmqo_share_active_sessions":         2,
	}
	for name, v := range want {
		got, ok := telemetry.FindSample(samples, name)
		if !ok {
			t.Errorf("exposition lacks %s", name)
			continue
		}
		if got.Value != v {
			t.Errorf("%s = %v, want %v", name, got.Value, v)
		}
	}
	for _, name := range []string{
		"ttmqo_cache_replayed_epochs_total",
		"ttmqo_share_merged_epochs_total",
		"ttmqo_share_updates_total",
	} {
		if got, ok := telemetry.FindSample(samples, name); !ok || got.Value <= 0 {
			t.Errorf("%s = %v (present=%v), want > 0", name, got.Value, ok)
		}
	}
}
