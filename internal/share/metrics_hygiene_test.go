package share

import (
	"strings"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/gateway"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// TestMetricsHygieneFullStack is the registry-wide hygiene gate: it mounts
// every metric family the serving stack can expose — gateway, share,
// federation and tracing — on one registry over live, loaded tiers, then
// walks the full gather and holds each family to the naming contract
// (ttmqo_ prefix, help text, unit-suffix conventions) and the whole scrape
// to the strict decoder-side validator.
func TestMetricsHygieneFullStack(t *testing.T) {
	reg := telemetry.NewRegistry()

	// Stack 1: share coordinator over a single traced gateway.
	gwRec := tracing.New(tracing.TierGateway, 0)
	shareRec := tracing.New(tracing.TierShare, 0)
	c, gw := newTestCoord(t, gateway.Config{Tracer: gwRec}, Config{Window: 3, Tracer: shareRec})
	gateway.RegisterMetrics(reg, func() *gateway.Gateway { return gw })
	RegisterMetrics(reg, func() *Coordinator { return c })

	// Stack 2: a second coordinator over a sharded federation router,
	// feeding the router/shard families and the router-tier recorder.
	routerRec := tracing.New(tracing.TierRouter, 0)
	shardRecs := map[int]*tracing.Recorder{}
	rt, err := federation.New(federation.Config{
		Shards: 2, Side: 3, Seed: 1,
		Tracer: routerRec,
		ShardTracer: func(i int) *tracing.Recorder {
			if shardRecs[i] == nil {
				shardRecs[i] = tracing.New(tracing.TierGateway, 0)
			}
			return shardRecs[i]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	fc, err := New(Config{Upstream: OverRouter(rt), Sensors: 16, Cell: testCell})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fc.Close() })
	federation.RegisterMetrics(reg, func() *federation.Router { return rt })
	tracing.RegisterMetrics(reg, func() []*tracing.Recorder {
		recs := []*tracing.Recorder{gwRec, shareRec, routerRec}
		for i := 0; i < 2; i++ {
			recs = append(recs, shardRecs[i])
		}
		return recs
	})

	// Load both stacks: overlapping queries through the share planner and a
	// shard-straddling query through the router, plus enough epochs that
	// deliveries, caches and histograms all have data.
	sess, err := c.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 1 AND nodeid <= 8 EPOCH DURATION 8192ms")
	stageShare(t, sess, "SELECT SUM(light) WHERE nodeid >= 5 AND nodeid <= 12 EPOCH DURATION 8192ms")
	fsess, err := fc.Register("fed")
	if err != nil {
		t.Fatal(err)
	}
	stageShare(t, fsess, "SELECT SUM(light) WHERE nodeid >= 5 AND nodeid <= 12 EPOCH DURATION 8192ms")
	for i := 0; i < 8; i++ {
		advance(t, c, 8192*time.Millisecond)
		if _, err := fc.Advance(8192 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	fams := reg.Gather()
	if len(fams) == 0 {
		t.Fatal("loaded registry gathered no families")
	}
	seen := map[string]bool{}
	for _, f := range fams {
		if seen[f.Name] {
			t.Errorf("family %s gathered twice", f.Name)
		}
		seen[f.Name] = true
		if !strings.HasPrefix(f.Name, "ttmqo_") {
			t.Errorf("family %s lacks the ttmqo_ namespace prefix", f.Name)
		}
		if strings.TrimSpace(f.Help) == "" {
			t.Errorf("family %s has no help text", f.Name)
		}
		switch f.Kind {
		case telemetry.KindCounter:
			if !strings.HasSuffix(f.Name, "_total") {
				t.Errorf("counter %s does not end in _total", f.Name)
			}
		case telemetry.KindGauge:
			if strings.HasSuffix(f.Name, "_total") {
				t.Errorf("gauge %s ends in _total", f.Name)
			}
		case telemetry.KindHistogram:
			if !strings.HasSuffix(f.Name, "_seconds") {
				t.Errorf("histogram %s does not carry a _seconds unit suffix", f.Name)
			}
			if len(f.Bounds) == 0 {
				t.Errorf("histogram %s has no buckets", f.Name)
			}
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %s gathered no samples from the loaded stack", f.Name)
		}
	}

	// The composed scrape must survive the strict decoder — the same
	// validator the admin smoke test runs over the wire.
	text := reg.Exposition()
	samples, err := telemetry.ParseExposition(text)
	if err != nil {
		t.Fatalf("full-stack exposition fails the strict validator: %v", err)
	}

	// One marker family per tier proves nothing silently failed to mount,
	// and the tracing plane reports every tier's flight recorder.
	for _, name := range []string{
		"ttmqo_gateway_up",
		"ttmqo_share_trees",
		"ttmqo_router_up",
		"ttmqo_resilience_brownout_level",
		"ttmqo_query_time_to_first_result_seconds_count",
		"ttmqo_trace_hop_latency_seconds_count",
	} {
		if _, ok := telemetry.FindSample(samples, name); !ok {
			t.Errorf("scrape lacks %s", name)
		}
	}
	for _, tier := range []string{tracing.TierGateway, tracing.TierShare, tracing.TierRouter} {
		s, ok := telemetry.FindSample(samples, "ttmqo_trace_spans_recorded_total", "tier", tier)
		if !ok {
			t.Errorf("scrape lacks ttmqo_trace_spans_recorded_total{tier=%q}", tier)
			continue
		}
		if s.Value <= 0 {
			t.Errorf("tier %s recorded no spans under load", tier)
		}
	}
}
