package share

import (
	"fmt"
	"time"

	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/query"
	"repro/internal/topology"
)

// The sharing-tier rows of the serve benchmark suite. Unlike the encode
// and fan-out rows, these run a scripted virtual-time scenario rather
// than a wall-clock microbenchmark: two overlapping aggregation queries
// warm the fragment registry and the result cache, then a late
// subscriber joins a warm query. Every number is a pure function of the
// seed, so the gauges are byte-identical on any machine and CI can gate
// them without tolerance games.
const (
	benchQuantum = 1024 * time.Millisecond
	benchEpochMS = 8192
	// benchRounds bounds the drain loops; a healthy scenario resolves its
	// first results in a few epochs.
	benchRounds = 64
)

// BenchServe runs the sharing scenario and fills the report's sharing
// rows (share/ttfr-cold, share/ttfr-warm — virtual-time TTFR, not
// machine time) and gauges (fragment reuse ratio, cache hit ratio, warm
// replay speedup).
func BenchServe(rep *gateway.ServeBenchReport) error {
	topo, err := topology.PaperGrid(4)
	if err != nil {
		return err
	}
	gw, err := gateway.New(gateway.Config{
		Sim: network.Config{Topo: topo, Scheme: network.TTMQO, Seed: 1},
	})
	if err != nil {
		return err
	}
	defer gw.Close()
	coord, err := New(Config{
		Upstream: OverGateway(gw),
		Sensors:  topo.Size() - 1,
		Cell:     4,
		Window:   4,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	elapsed := time.Duration(0)
	adv := func() error {
		_, err := coord.Advance(benchQuantum)
		elapsed += benchQuantum
		return err
	}
	texts := [2]string{
		fmt.Sprintf("SELECT SUM(light), AVG(light) WHERE nodeid >= 1 AND nodeid <= 8 EPOCH DURATION %d", benchEpochMS),
		fmt.Sprintf("SELECT SUM(light), AVG(light) WHERE nodeid >= 5 AND nodeid <= 12 EPOCH DURATION %d", benchEpochMS),
	}

	// Cold: two overlapping queries staged at virtual zero. Their shared
	// interior cells land in one fragment each; TTFR is a full epoch wait.
	var tks [2]*Ticket
	for i, text := range texts {
		sess, err := coord.Register(fmt.Sprintf("bench-cold-%d", i))
		if err != nil {
			return err
		}
		if tks[i], err = sess.SubscribeAsync(query.MustParse(text)); err != nil {
			return err
		}
	}
	if err := adv(); err != nil {
		return err
	}
	var first [2]time.Duration
	var chans [2]<-chan gateway.Update
	for i, tk := range tks {
		sub, err := tk.Wait()
		if err != nil {
			return err
		}
		first[i] = -1
		chans[i] = sub.Updates()
	}
	for r := 0; r < benchRounds && (first[0] < 0 || first[1] < 0); r++ {
		if err := adv(); err != nil {
			return err
		}
		for i, ch := range chans {
			for drained := false; !drained; {
				select {
				case <-ch:
					if first[i] < 0 {
						first[i] = elapsed
					}
				default:
					drained = true
				}
			}
		}
	}
	cold := max(first[0], first[1])
	if cold <= 0 {
		return fmt.Errorf("share bench: no cold first result within %d rounds", benchRounds)
	}

	// Warm: a late subscriber to an already-materialized query replays
	// cached epochs at the very advance that commits its subscribe.
	late, err := coord.Register("bench-late")
	if err != nil {
		return err
	}
	warmAt := elapsed
	tw, err := late.SubscribeAsync(query.MustParse(texts[0]))
	if err != nil {
		return err
	}
	if err := adv(); err != nil {
		return err
	}
	subw, err := tw.Wait()
	if err != nil {
		return err
	}
	warm := time.Duration(-1)
	for r := 0; r < benchRounds && warm < 0; r++ {
		select {
		case <-subw.Updates():
			warm = elapsed - warmAt
		default:
			if err := adv(); err != nil {
				return err
			}
		}
	}
	if warm <= 0 {
		return fmt.Errorf("share bench: no warm first result within %d rounds", benchRounds)
	}

	st := coord.ShareStats()
	rep.Rows = append(rep.Rows,
		gateway.ServeBenchRow{Name: "share/ttfr-cold", NsPerOp: float64(cold.Nanoseconds())},
		gateway.ServeBenchRow{Name: "share/ttfr-warm", NsPerOp: float64(warm.Nanoseconds())},
	)
	rep.FragmentReuseRatio = st.FragmentReuseRatio()
	rep.CacheHitRatio = st.CacheHitRatio()
	rep.WarmReplaySpeedup = float64(cold) / float64(warm)
	return nil
}

func max(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
