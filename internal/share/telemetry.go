package share

import (
	"repro/internal/telemetry"
)

// RegisterMetrics mounts the sharing layer's metric families on r and
// installs a gather hook that syncs them before every exposition. It
// follows the gateway's contract: counters mirror Stats through monotonic
// Set, the hook reads through current() so the registry survives the
// coordinator being swapped (or absent — a nil current() leaves the last
// consistent values standing), and everything is a pure function of the
// committed command sequence, never the wall clock.
//
// Two derived gauges headline the layer: ttmqo_share_fragment_reuse_ratio
// (how often a planned fragment was already streaming) and
// ttmqo_cache_hit_ratio (how often a new subscriber's window replayed
// from cache instead of waiting out an epoch).
func RegisterMetrics(r *telemetry.Registry, current func() *Coordinator) {
	type cf struct {
		fam *telemetry.Family
		get func(Stats) int64
	}
	counters := []cf{
		{r.NewCounter("ttmqo_share_sessions_total", "sharing-layer sessions registered"), func(s Stats) int64 { return s.Sessions }},
		{r.NewCounter("ttmqo_share_subscribes_total", "subscriptions accepted by the sharing layer"), func(s Stats) int64 { return s.Subscribes }},
		{r.NewCounter("ttmqo_share_unsubscribes_total", "subscriptions removed"), func(s Stats) int64 { return s.Unsubscribes }},
		{r.NewCounter("ttmqo_share_quota_rejected_total", "subscribes rejected by the session quota"), func(s Stats) int64 { return s.QuotaRejected }},
		{r.NewCounter("ttmqo_share_dedup_hits_total", "subscriptions served by an already-live canonical query"), func(s Stats) int64 { return s.DedupHits }},
		{r.NewCounter("ttmqo_share_fragments_created_total", "fragments newly materialized upstream"), func(s Stats) int64 { return s.FragmentsCreated }},
		{r.NewCounter("ttmqo_share_fragments_reused_total", "planned fragments satisfied by the registry"), func(s Stats) int64 { return s.FragmentsReused }},
		{r.NewCounter("ttmqo_share_fragments_cancelled_total", "refcount-zero fragment cancellations"), func(s Stats) int64 { return s.FragmentsCancelled }},
		{r.NewCounter("ttmqo_share_merged_epochs_total", "complete epochs recombined from fragments"), func(s Stats) int64 { return s.MergedEpochs }},
		{r.NewCounter("ttmqo_share_partial_dropped_total", "incomplete epochs superseded by a later complete one"), func(s Stats) int64 { return s.PartialDropped }},
		{r.NewCounter("ttmqo_share_late_dropped_total", "fragment epochs arriving behind the release watermark"), func(s Stats) int64 { return s.LateDropped }},
		{r.NewCounter("ttmqo_share_updates_total", "result deliveries fanned out downstream"), func(s Stats) int64 { return s.Updates }},
		{r.NewCounter("ttmqo_share_evicted_total", "slow subscribers evicted"), func(s Stats) int64 { return s.Evicted }},
		{r.NewCounter("ttmqo_share_ring_dropped_total", "updates shed from bounded resume rings"), func(s Stats) int64 { return s.RingDropped }},
		{r.NewCounter("ttmqo_share_resumes_total", "downstream subscription streams resumed"), func(s Stats) int64 { return s.Resumes }},
		{r.NewCounter("ttmqo_share_resume_gaps_total", "resumes that lost ring-shed updates"), func(s Stats) int64 { return s.ResumeGaps }},
		{r.NewCounter("ttmqo_share_reattaches_total", "upstream failovers re-attached"), func(s Stats) int64 { return s.Reattaches }},
		{r.NewCounter("ttmqo_share_upstream_resumes_total", "fragment streams resumed after an upstream failover"), func(s Stats) int64 { return s.UpstreamResumes }},
		{r.NewCounter("ttmqo_cache_hits_total", "new subscribers whose window replayed from cache"), func(s Stats) int64 { return s.CacheHits }},
		{r.NewCounter("ttmqo_cache_misses_total", "new subscribers with no cached window"), func(s Stats) int64 { return s.CacheMisses }},
		{r.NewCounter("ttmqo_cache_replayed_epochs_total", "cached epochs replayed to late subscribers"), func(s Stats) int64 { return s.ReplayedEpochs }},
		{r.NewCounter("ttmqo_resilience_replay_sheds_total", "cache replays skipped under brownout pressure"), func(s Stats) int64 { return s.ReplaySheds }},
		{r.NewCounter("ttmqo_resilience_share_shed_deadline_total", "subscribes shed: coordinator mailbox sojourn exceeded the budget"), func(s Stats) int64 { return s.ShedDeadline }},
		{r.NewCounter("ttmqo_resilience_share_degraded_epochs_total", "epochs recombined from degraded (partial-coverage) upstream updates"), func(s Stats) int64 { return s.DegradedEpochs }},
	}

	activeSessions := r.NewGauge("ttmqo_share_active_sessions", "currently registered sharing-layer sessions")
	trees := r.NewGauge("ttmqo_share_trees", "distinct live canonical queries (share trees)")
	fragments := r.NewGauge("ttmqo_share_fragments_active", "distinct fragments streaming upstream")
	upSessions := r.NewGauge("ttmqo_share_upstream_sessions", "pooled upstream sessions owned by the coordinator")
	reuseRatio := r.NewGauge("ttmqo_share_fragment_reuse_ratio", "reused / (created + reused) planned fragments")
	hitRatio := r.NewGauge("ttmqo_cache_hit_ratio", "cache hits / (hits + misses) for new subscribers")

	r.OnGather(func() {
		c := current()
		if c == nil {
			return
		}
		st := c.ShareStats()
		for _, f := range counters {
			f.fam.Counter().Set(float64(f.get(st)))
		}
		activeSessions.Gauge().Set(float64(st.ActiveSessions))
		trees.Gauge().Set(float64(st.Trees))
		fragments.Gauge().Set(float64(st.FragmentsActive))
		upSessions.Gauge().Set(float64(st.UpstreamSessions))
		reuseRatio.Gauge().Set(st.FragmentReuseRatio())
		hitRatio.Gauge().Set(st.CacheHitRatio())
	})
}
